#!/usr/bin/env python3
"""Perf regression gate: compare two `go test -bench -benchmem` outputs.

Usage: perfgate.py BASE.txt HEAD.txt [--threshold 0.10]

Parses the raw benchmark lines of both files, takes the median over
repeated runs (-count=N) per benchmark, and fails (exit 1) when any
benchmark present on both sides regressed by more than the threshold in
ns/op or allocs/op. Benchmarks that exist on only one side (added or
removed by the change) are reported but never gate.

The CI job also renders a benchstat report next to this gate for the
human-readable statistics; this script is the pass/fail decision so the
gate does not depend on benchstat's output format.
"""

import re
import sys
from statistics import median

LINE = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op"
    r"(?:\s+[\d.]+ B/op\s+([\d.]+) allocs/op)?"
)


def parse(path):
    runs = {}
    with open(path) as f:
        for line in f:
            m = LINE.match(line.strip())
            if not m:
                continue
            name, ns, allocs = m.group(1), float(m.group(2)), m.group(3)
            entry = runs.setdefault(name, {"ns": [], "allocs": []})
            entry["ns"].append(ns)
            if allocs is not None:
                entry["allocs"].append(float(allocs))
    return {
        name: {
            "ns": median(e["ns"]),
            "allocs": median(e["allocs"]) if e["allocs"] else None,
        }
        for name, e in runs.items()
    }


def main():
    argv = sys.argv[1:]
    args, threshold = [], 0.10
    i = 0
    while i < len(argv):
        a = argv[i]
        if a.startswith("--threshold"):
            if "=" in a:
                threshold = float(a.split("=", 1)[1])
            else:
                i += 1
                threshold = float(argv[i])
        else:
            args.append(a)
        i += 1
    base, head = parse(args[0]), parse(args[1])

    failed = []
    for name in sorted(set(base) | set(head)):
        if name not in base:
            print(f"  new       {name}: {head[name]['ns']:.0f} ns/op (no base, not gated)")
            continue
        if name not in head:
            print(f"  removed   {name}")
            continue
        b, h = base[name], head[name]
        ns_ratio = h["ns"] / b["ns"] if b["ns"] else 1.0
        verdict = "ok"
        if ns_ratio > 1 + threshold:
            verdict = "REGRESSION"
            failed.append(f"{name}: ns/op {b['ns']:.0f} -> {h['ns']:.0f} (x{ns_ratio:.2f})")
        alloc_note = ""
        if b["allocs"] is not None and h["allocs"] is not None:
            base_allocs, head_allocs = b["allocs"], h["allocs"]
            alloc_note = f"  allocs/op {base_allocs:.1f} -> {head_allocs:.1f}"
            # Gate allocs with an absolute grace of 1 alloc/op so a 0->1
            # change on a tiny benchmark is caught by review, not noise.
            if head_allocs > base_allocs * (1 + threshold) and head_allocs > base_allocs + 1:
                verdict = "REGRESSION"
                failed.append(
                    f"{name}: allocs/op {base_allocs:.1f} -> {head_allocs:.1f}")
        print(f"  {verdict:10} {name}: ns/op {b['ns']:.0f} -> {h['ns']:.0f} (x{ns_ratio:.2f}){alloc_note}")

    if failed:
        print(f"\nperf gate FAILED (> {threshold:.0%} regression):", file=sys.stderr)
        for f in failed:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nperf gate passed (threshold {threshold:.0%})")


if __name__ == "__main__":
    main()
