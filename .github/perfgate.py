#!/usr/bin/env python3
"""Perf regression gate: compare benchmark outputs from two commits.

Modes:

  perfgate.py BASE.txt HEAD.txt [--threshold 0.10]
      Compare two `go test -bench -benchmem` outputs. Parses the raw
      benchmark lines of both files, takes the median over repeated
      runs (-count=N) per benchmark, and fails (exit 1) when any
      benchmark present on both sides regressed by more than the
      threshold in ns/op or allocs/op.

  perfgate.py --p99 BASE_DIR HEAD_DIR [--threshold 0.15]
      Compare tail latency between two directories of reallocbench
      JSON reports (one file per repetition, e.g. base1.json..baseN.json).
      For every run name present on both sides, takes the median
      p99_latency_us across the repetitions and fails when head's
      median regressed by more than the threshold. Medians over
      repeated full runs — not a single draw — because tail latency on
      shared runners is noisy; see BENCH_PR6.json for the measured
      spread that motivated this.

  perfgate.py --selftest
      Proves the p99 gate actually gates: builds synthetic report
      pairs in a temp dir, asserts a 2x injected p99 regression fails
      and a near-par pair passes. Run by CI before the real gate so a
      parsing bug cannot silently turn the gate green.

In both comparison modes, benchmarks/runs that exist on only one side
(added or removed by the change) are reported but never gate.

The CI job also renders a benchstat report next to this gate for the
human-readable statistics; this script is the pass/fail decision so the
gate does not depend on benchstat's output format.
"""

import json
import os
import re
import sys
import tempfile
from statistics import median

LINE = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op"
    r"(?:\s+[\d.]+ B/op\s+([\d.]+) allocs/op)?"
)


def parse(path):
    runs = {}
    with open(path) as f:
        for line in f:
            m = LINE.match(line.strip())
            if not m:
                continue
            name, ns, allocs = m.group(1), float(m.group(2)), m.group(3)
            entry = runs.setdefault(name, {"ns": [], "allocs": []})
            entry["ns"].append(ns)
            if allocs is not None:
                entry["allocs"].append(float(allocs))
    return {
        name: {
            "ns": median(e["ns"]),
            "allocs": median(e["allocs"]) if e["allocs"] else None,
        }
        for name, e in runs.items()
    }


def gate_bench(base_path, head_path, threshold):
    base, head = parse(base_path), parse(head_path)

    failed = []
    for name in sorted(set(base) | set(head)):
        if name not in base:
            print(f"  new       {name}: {head[name]['ns']:.0f} ns/op (no base, not gated)")
            continue
        if name not in head:
            print(f"  removed   {name}")
            continue
        b, h = base[name], head[name]
        ns_ratio = h["ns"] / b["ns"] if b["ns"] else 1.0
        verdict = "ok"
        if ns_ratio > 1 + threshold:
            verdict = "REGRESSION"
            failed.append(f"{name}: ns/op {b['ns']:.0f} -> {h['ns']:.0f} (x{ns_ratio:.2f})")
        alloc_note = ""
        if b["allocs"] is not None and h["allocs"] is not None:
            base_allocs, head_allocs = b["allocs"], h["allocs"]
            alloc_note = f"  allocs/op {base_allocs:.1f} -> {head_allocs:.1f}"
            # Gate allocs with an absolute grace of 1 alloc/op so a 0->1
            # change on a tiny benchmark is caught by review, not noise.
            if head_allocs > base_allocs * (1 + threshold) and head_allocs > base_allocs + 1:
                verdict = "REGRESSION"
                failed.append(
                    f"{name}: allocs/op {base_allocs:.1f} -> {head_allocs:.1f}")
        print(f"  {verdict:10} {name}: ns/op {b['ns']:.0f} -> {h['ns']:.0f} (x{ns_ratio:.2f}){alloc_note}")

    return failed


def load_p99(dirpath):
    """Median p99_latency_us per run name over every report in dirpath."""
    samples = {}
    files = sorted(
        os.path.join(dirpath, f)
        for f in os.listdir(dirpath)
        if f.endswith(".json")
    )
    if not files:
        print(f"no .json reports in {dirpath}", file=sys.stderr)
        sys.exit(2)
    for path in files:
        with open(path) as f:
            report = json.load(f)
        for run in report.get("runs", []):
            p99 = run.get("p99_latency_us", 0.0)
            if run.get("name") and p99 > 0:
                samples.setdefault(run["name"], []).append(p99)
    return {name: median(vals) for name, vals in samples.items()}, len(files)


def gate_p99(base_dir, head_dir, threshold):
    base, nbase = load_p99(base_dir)
    head, nhead = load_p99(head_dir)
    print(f"p99 gate: median over {nbase} base / {nhead} head report(s)")

    failed = []
    for name in sorted(set(base) | set(head)):
        if name not in base:
            print(f"  new       {name}: p99 {head[name]:.1f}us (no base, not gated)")
            continue
        if name not in head:
            print(f"  removed   {name}")
            continue
        ratio = head[name] / base[name]
        verdict = "ok"
        if ratio > 1 + threshold:
            verdict = "REGRESSION"
            failed.append(
                f"{name}: p99 {base[name]:.1f}us -> {head[name]:.1f}us (x{ratio:.2f})")
        print(f"  {verdict:10} {name}: p99 {base[name]:.1f}us -> {head[name]:.1f}us (x{ratio:.2f})")
    return failed


def run_p99(base_dir, head_dir, threshold):
    failed = gate_p99(base_dir, head_dir, threshold)
    if failed:
        print(f"\np99 gate FAILED (> {threshold:.0%} regression):", file=sys.stderr)
        for f in failed:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\np99 gate passed (threshold {threshold:.0%})")
    return 0


def selftest():
    """The gate must fail on an injected 2x p99 regression and pass near par."""

    def write_reports(d, side, p99s):
        os.makedirs(d, exist_ok=True)
        for i, p99_by_name in enumerate(p99s):
            runs = [
                {"name": n, "p99_latency_us": v, "throughput_rps": 1.0}
                for n, v in p99_by_name.items()
            ]
            with open(os.path.join(d, f"{side}{i}.json"), "w") as f:
                json.dump({"scenario": "burst", "runs": runs}, f)

    with tempfile.TemporaryDirectory() as tmp:
        # Injected regression: head p99 doubled on one run; repetition
        # noise (±10%) must not mask it through the median.
        base = [{"sharded-8": 70.0, "sequential": 400.0},
                {"sharded-8": 77.0, "sequential": 430.0},
                {"sharded-8": 64.0, "sequential": 380.0}]
        bad = [{"sharded-8": 140.0, "sequential": 405.0},
               {"sharded-8": 152.0, "sequential": 395.0},
               {"sharded-8": 129.0, "sequential": 415.0}]
        write_reports(os.path.join(tmp, "base"), "base", base)
        write_reports(os.path.join(tmp, "bad"), "head", bad)
        rc = run_p99(os.path.join(tmp, "base"), os.path.join(tmp, "bad"), 0.15)
        if rc == 0:
            print("selftest FAILED: 2x injected p99 regression passed the gate",
                  file=sys.stderr)
            return 1

        # Near par (within noise, below threshold) must pass, including a
        # head-only run name which is reported but never gated.
        good = [{"sharded-8": 73.0, "sequential": 410.0, "sharded-8-new": 50.0},
                {"sharded-8": 68.0, "sequential": 385.0, "sharded-8-new": 55.0},
                {"sharded-8": 75.0, "sequential": 420.0, "sharded-8-new": 48.0}]
        write_reports(os.path.join(tmp, "good"), "head", good)
        rc = run_p99(os.path.join(tmp, "base"), os.path.join(tmp, "good"), 0.15)
        if rc != 0:
            print("selftest FAILED: near-par head failed the gate", file=sys.stderr)
            return 1

    print("\nselftest passed: injected regression fails, near-par passes")
    return 0


def main():
    argv = sys.argv[1:]
    args, threshold, mode = [], None, "bench"
    i = 0
    while i < len(argv):
        a = argv[i]
        if a.startswith("--threshold"):
            if "=" in a:
                threshold = float(a.split("=", 1)[1])
            else:
                i += 1
                threshold = float(argv[i])
        elif a == "--p99":
            mode = "p99"
        elif a == "--selftest":
            mode = "selftest"
        else:
            args.append(a)
        i += 1

    if mode == "selftest":
        sys.exit(selftest())

    if mode == "p99":
        sys.exit(run_p99(args[0], args[1], 0.15 if threshold is None else threshold))

    failed = gate_bench(args[0], args[1], 0.10 if threshold is None else threshold)
    if failed:
        print(f"\nperf gate FAILED (> {threshold or 0.10:.0%} regression):", file=sys.stderr)
        for f in failed:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nperf gate passed (threshold {threshold or 0.10:.0%})")


if __name__ == "__main__":
    main()
