// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - placement policy: PreferEmpty (displacement-avoiding) vs LowestSlot
//     (the literal pecking order) inside the reservation scheduler;
//   - trimming: amortized rebuild vs incremental (deamortized) rebuild vs
//     no trimming at all;
//   - the alignment wrapper's overhead on already-aligned input.
package realloc

import (
	"fmt"
	"testing"

	"repro/internal/alignsched"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trim"
	"repro/internal/workload"
)

// BenchmarkAblationPlacementPolicy compares the two PLACE heuristics
// under identical churn. PreferEmpty should show fewer reallocs/req.
func BenchmarkAblationPlacementPolicy(b *testing.B) {
	for name, policy := range map[string]core.PlacementPolicy{
		"prefer-empty": core.PreferEmpty,
		"lowest-slot":  core.LowestSlot,
	} {
		b.Run(name, func(b *testing.B) {
			s := core.New(core.WithPlacementPolicy(policy), core.WithMaxIntervals(1<<24))
			churn(b, s, workload.Config{Seed: 77, Gamma: 8, Horizon: 4096, Steps: 1 << 30})
		})
	}
}

// BenchmarkAblationTrimming compares the trimming variants over a
// grow/shrink oscillation that crosses n* boundaries.
func BenchmarkAblationTrimming(b *testing.B) {
	factory := func() sched.Scheduler { return core.New(core.WithMaxIntervals(1 << 24)) }
	variants := map[string]func() sched.Scheduler{
		"none":        factory,
		"amortized":   func() sched.Scheduler { return trim.New(8, factory) },
		"incremental": func() sched.Scheduler { return trim.NewIncremental(8, factory) },
	}
	for name, make := range variants {
		b.Run(name, func(b *testing.B) {
			s := make()
			total, maxOne := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := s.Insert(Job{Name: fmt.Sprintf("a%d", i), Window: Win(0, 1<<18)})
				if err != nil {
					b.Fatal(err)
				}
				total += c.Reallocations
				if c.Reallocations > maxOne {
					maxOne = c.Reallocations
				}
				if i%2 == 1 {
					c, err := s.Delete(fmt.Sprintf("a%d", i-1))
					if err != nil {
						b.Fatal(err)
					}
					total += c.Reallocations
					if c.Reallocations > maxOne {
						maxOne = c.Reallocations
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(total)/float64(b.N), "reallocs/req")
			b.ReportMetric(float64(maxOne), "worst-request")
		})
	}
}

// BenchmarkAblationAlignmentWrapper measures the Section 5 wrapper's
// overhead when the input is already aligned (pure bookkeeping cost).
func BenchmarkAblationAlignmentWrapper(b *testing.B) {
	variants := map[string]func() sched.Scheduler{
		"bare":    func() sched.Scheduler { return core.New(core.WithMaxIntervals(1 << 24)) },
		"wrapped": func() sched.Scheduler { return alignsched.New(core.New(core.WithMaxIntervals(1 << 24))) },
	}
	for name, make := range variants {
		b.Run(name, func(b *testing.B) {
			churn(b, make(), workload.Config{Seed: 3, Gamma: 8, Horizon: 4096, Steps: 1 << 30})
		})
	}
}
