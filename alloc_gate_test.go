// Allocation gates: pin the hot paths the interned-ID refactor made
// allocation-free, so a regression that reintroduces per-request heap
// traffic fails CI instead of quietly eroding throughput.
//
// "Steady state" means the scheduler has reached its high-water marks:
// interned IDs recycle through the free list, jobState structs recycle
// through the spare pool, and the internal maps have stopped growing.
// The gates churn one job against a warmed-up background population and
// require ZERO allocations per insert+delete pair.
//
// Excluded under -race: the race runtime inserts its own allocations.

//go:build !race

package realloc

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/trim"
)

// gateZero runs fn under testing.AllocsPerRun and fails on any
// allocation.
func gateZero(t *testing.T, what string, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, fn); avg > 0 {
		t.Errorf("%s allocates %.2f allocs/op in steady state, want 0", what, avg)
	}
}

// TestAllocGateCoreInsertDelete pins the reservation core's
// insert+delete hit path at zero steady-state allocations, for both the
// base level (span <= 32, pecking-order displacement) and a
// reservation level (span > 32, RESERVE/PLACE machinery).
func TestAllocGateCoreInsertDelete(t *testing.T) {
	for _, span := range []int64{16, 64, 1024} {
		t.Run(fmt.Sprintf("span=%d", span), func(t *testing.T) {
			s := core.New(core.WithMaxIntervals(1 << 24))
			// Background population in disjoint windows, plus warmup churn
			// so every map, the ID table, and the jobState pool reach
			// their high-water marks.
			for i := int64(0); i < 32; i++ {
				j := jobs.Job{Name: fmt.Sprintf("bg%d", i),
					Window: jobs.Window{Start: i * span, End: (i + 1) * span}}
				if _, err := s.Insert(j); err != nil {
					t.Fatal(err)
				}
			}
			churn := jobs.Job{Name: "churn", Window: jobs.Window{Start: 0, End: span}}
			for i := 0; i < 64; i++ {
				if _, err := s.Insert(churn); err != nil {
					t.Fatal(err)
				}
				if _, err := s.Delete(churn.Name); err != nil {
					t.Fatal(err)
				}
			}
			gateZero(t, "core insert+delete", func() {
				if _, err := s.Insert(churn); err != nil {
					t.Fatal(err)
				}
				if _, err := s.Delete(churn.Name); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

// TestAllocGateTrimIncrementalNonRebuild pins the deamortized trimming
// wrapper's non-transition path (no n* crossing, no parity migration in
// flight) at zero steady-state allocations per insert+delete pair.
func TestAllocGateTrimIncrementalNonRebuild(t *testing.T) {
	s := trim.NewIncremental(8, func() Scheduler {
		return core.New(core.WithMaxIntervals(1 << 24))
	})
	// Population 16 against n* = 32: the churn job oscillates n between
	// 16 and 17, far from both the doubling threshold (32) and the
	// halving threshold (8), so no transition starts.
	for i := 0; i < 24; i++ {
		j := jobs.Job{Name: fmt.Sprintf("bg%d", i),
			Window: jobs.Window{Start: int64(i) * 64, End: int64(i+1) * 64}}
		if _, err := s.Insert(j); err != nil {
			t.Fatal(err)
		}
	}
	for i := 23; i >= 16; i-- {
		if _, err := s.Delete(fmt.Sprintf("bg%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	churn := jobs.Job{Name: "churn", Window: jobs.Window{Start: 0, End: 64}}
	// Warmup churn: drain any in-flight transition and reach the queue's
	// compaction steady state.
	for i := 0; i < 256; i++ {
		if _, err := s.Insert(churn); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Delete(churn.Name); err != nil {
			t.Fatal(err)
		}
	}
	if s.InTransition() {
		t.Fatal("setup error: still in a parity transition after warmup")
	}
	if got := s.NStar(); got != 32 {
		t.Fatalf("setup error: n* = %d, want 32", got)
	}
	gateZero(t, "trim.Incremental insert+delete", func() {
		if _, err := s.Insert(churn); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Delete(churn.Name); err != nil {
			t.Fatal(err)
		}
	})
}
