// Architecture-hygiene test: the repo's layering is enforced by the
// declarative import-DAG analyzer in internal/analysis (the same one
// cmd/reallocvet runs in CI), so a violation fails `go test` instead of
// surviving as an unwritten convention.
//
// The sanctioned layering lives in one place now —
// analysis.DefaultLayerRules — which covers every package in the
// module, bottom-up: the stdlib-only leaves (mathx, hdr, ident,
// analysis), the currencies and model (metrics, jobs, align, sched,
// wal, pma), the schedulers (core, trim, edf, naive, ...), the
// composition layers (multi, alignsched, shard), the harnesses, the
// public API, and the commands. This test replaces the old ad-hoc
// foundation-only import walk: the analyzer checks all packages, and
// because no internal rule sanctions "repro", it also subsumes the old
// no-upward-imports test (internals must never depend on the public
// API).
package realloc

import (
	"testing"

	"repro/internal/analysis"
)

func TestArchLayering(t *testing.T) {
	pkgs, err := analysis.Load(".", analysis.LoadSyntax, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	layering := analysis.Layering(analysis.ModulePath, analysis.DefaultLayerRules())
	for _, d := range analysis.Run(pkgs, []*analysis.Analyzer{layering}) {
		t.Errorf("%s", d)
	}
}
