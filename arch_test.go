// Architecture-hygiene tests: the layering of the foundation packages
// is enforced by parsing their imports, so a violation fails CI instead
// of surviving as an unwritten convention.
//
// The sanctioned layering, bottom-up:
//
//	mathx, hdr, ident     — stdlib only
//	metrics               — the cost/latency currencies; stdlib + hdr
//	jobs                  — the shared model; stdlib + mathx
//	align                 — pure window geometry; jobs + mathx
//	sched                 — the interface layer; jobs + metrics
//	core                  — the paper's reservation scheduler; it may
//	                        use the model (jobs), the cost currencies
//	                        (metrics), integer helpers (mathx), window
//	                        geometry (align), and the interface layer it
//	                        implements (sched) — and NOTHING else: no
//	                        wrappers, no workloads, no shard front-end.
//
// Everything above (trim, multi, alignsched, shard, workload, ...) may
// depend downward freely; nothing here may depend upward or sideways.
package realloc

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// archAllow maps each checked package directory to the internal imports
// it is allowed, beyond the standard library. An import of any other
// repro/... package — or of any external module — is a layering
// violation.
var archAllow = map[string][]string{
	"internal/mathx":   {},
	"internal/hdr":     {},
	"internal/metrics": {"repro/internal/hdr"},
	"internal/ident":   {},
	"internal/jobs":    {"repro/internal/mathx"},
	"internal/align":   {"repro/internal/jobs", "repro/internal/mathx"},
	"internal/sched":   {"repro/internal/jobs", "repro/internal/metrics"},
	"internal/core": {
		"repro/internal/align",
		"repro/internal/ident",
		"repro/internal/jobs",
		"repro/internal/mathx",
		"repro/internal/metrics",
		"repro/internal/sched",
	},
}

func TestArchFoundationImports(t *testing.T) {
	fset := token.NewFileSet()
	for dir, allowList := range archAllow {
		allowed := make(map[string]bool, len(allowList))
		for _, p := range allowList {
			allowed[p] = true
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		checked := 0
		for _, entry := range entries {
			name := entry.Name()
			if entry.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Errorf("parse %s: %v", path, err)
				continue
			}
			checked++
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				switch {
				case strings.HasPrefix(p, "repro/"):
					if !allowed[p] {
						t.Errorf("%s imports %s — not in %s's sanctioned layer set %v",
							path, p, dir, allowList)
					}
				case strings.Contains(p, "."):
					t.Errorf("%s imports external module %s — foundation packages are stdlib-only", path, p)
				}
			}
		}
		if checked == 0 {
			t.Errorf("%s: no non-test Go files checked — did the package move?", dir)
		}
	}
}

// TestArchNoUpwardImports: no internal package may import the root
// package (repro) — the public API depends on the internals, never the
// reverse.
func TestArchNoUpwardImports(t *testing.T) {
	fset := token.NewFileSet()
	err := filepath.WalkDir("internal", func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if perr != nil {
			t.Errorf("parse %s: %v", path, perr)
			return nil
		}
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "repro" {
				t.Errorf("%s imports the root package — internals must not depend on the public API", path)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
