// Differential tests for batched admission: replay identical request
// streams through ApplyBatch and per-request Apply on every stack
// variant and require the two execution modes to be observably
// equivalent — identical final assignments, feasible schedules, the
// same per-request failure verdicts, and the ≤1-migration-per-request
// bound on every reported cost.
package realloc

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/multi"
	"repro/internal/sched"
	"repro/internal/trim"
	"repro/internal/workload"
)

// batchVariants enumerates the stack layers with a bulk path. Each
// build must return a fresh deterministic scheduler.
func batchVariants() []struct {
	name     string
	build    func() sched.Scheduler
	machines int
	minSpan  int64
} {
	coreF := func() sched.Scheduler { return core.New() }
	return []struct {
		name     string
		build    func() sched.Scheduler
		machines int
		minSpan  int64
	}{
		{"core", coreF, 1, 1},
		{"trim", func() sched.Scheduler { return trim.New(8, coreF) }, 1, 1},
		{"trim-incremental", func() sched.Scheduler { return trim.NewIncremental(8, coreF) }, 1, 2},
		{"multi", func() sched.Scheduler { return multi.New(3, coreF) }, 3, 1},
		{"full-stack", func() sched.Scheduler { return New(WithMachines(4)) }, 4, 1},
	}
}

// applyAll is the per-request reference executor: it applies every
// request in order, collecting the per-request errors without stopping.
func applyAll(s sched.Scheduler, reqs []jobs.Request) []error {
	errs := make([]error, len(reqs))
	for i, r := range reqs {
		_, errs[i] = sched.Apply(s, r)
	}
	return errs
}

// applyChunked drives the batch path in chunks of size b, asserting the
// migration bound on every reported cost, and returns per-request errors.
func applyChunked(t *testing.T, s sched.Scheduler, reqs []jobs.Request, b int) []error {
	t.Helper()
	errs := make([]error, len(reqs))
	for off := 0; off < len(reqs); off += b {
		end := off + b
		if end > len(reqs) {
			end = len(reqs)
		}
		costs, err := sched.ApplyBatch(s, reqs[off:end])
		for k, c := range costs {
			if c.Migrations > 1 {
				t.Fatalf("request %d reported %d migrations, bound is 1", off+k, c.Migrations)
			}
		}
		if err != nil {
			var be *sched.BatchError
			if !errors.As(err, &be) {
				t.Fatalf("ApplyBatch returned a non-batch error: %v", err)
			}
			for k := range costs {
				errs[off+k] = be.At(k)
			}
		}
	}
	return errs
}

func assertSameSchedule(t *testing.T, label string, ref, got sched.Scheduler) {
	t.Helper()
	refAsn, gotAsn := ref.Assignment(), got.Assignment()
	if len(refAsn) != len(gotAsn) {
		t.Fatalf("%s: %d jobs batched vs %d sequential", label, len(gotAsn), len(refAsn))
	}
	for name, p := range refAsn {
		if gotAsn[name] != p {
			t.Fatalf("%s: job %q placed at %+v batched vs %+v sequential", label, name, gotAsn[name], p)
		}
	}
	if err := got.SelfCheck(); err != nil {
		t.Fatalf("%s: batched self-check: %v", label, err)
	}
	if err := feasible.VerifySchedule(got.Jobs(), gotAsn, got.Machines()); err != nil {
		t.Fatalf("%s: batched schedule infeasible: %v", label, err)
	}
}

// TestBatchDifferentialCleanStreams: on γ-underallocated streams (no
// request fails) the batch path must land on the exact same schedule as
// per-request execution, for every chunk size.
func TestBatchDifferentialCleanStreams(t *testing.T) {
	for _, v := range batchVariants() {
		t.Run(v.name, func(t *testing.T) {
			g, err := workload.NewGenerator(workload.Config{
				Seed: 41, Machines: v.machines, Gamma: 8, Horizon: 2048,
				MinSpan: v.minSpan, Steps: 600,
			})
			if err != nil {
				t.Fatal(err)
			}
			seq := g.Sequence()

			ref := v.build()
			for i, e := range applyAll(ref, seq) {
				if e != nil {
					t.Fatalf("reference request %d failed on a clean stream: %v", i, e)
				}
			}
			for _, b := range []int{1, 7, 64, 256} {
				s := v.build()
				for i, e := range applyChunked(t, s, seq, b) {
					if e != nil {
						t.Fatalf("batch=%d request %d failed on a clean stream: %v", b, i, e)
					}
				}
				assertSameSchedule(t, fmt.Sprintf("%s batch=%d", v.name, b), ref, s)
			}
		})
	}
}

// TestBatchDifferentialDirtyStreams: streams salted with duplicate
// inserts and unknown deletes must produce the same per-request
// verdicts (failure or success, same sentinel) and the same final
// schedule in both modes — a statically rejected request never mutates
// state.
func TestBatchDifferentialDirtyStreams(t *testing.T) {
	for _, v := range batchVariants() {
		t.Run(v.name, func(t *testing.T) {
			g, err := workload.NewGenerator(workload.Config{
				Seed: 43, Machines: v.machines, Gamma: 8, Horizon: 2048,
				MinSpan: v.minSpan, Steps: 300,
			})
			if err != nil {
				t.Fatal(err)
			}
			var seq []jobs.Request
			for i, r := range g.Sequence() {
				seq = append(seq, r)
				switch {
				case i%11 == 3 && r.Kind == jobs.Insert:
					seq = append(seq, r) // immediate duplicate
				case i%13 == 5:
					seq = append(seq, jobs.DeleteReq(fmt.Sprintf("ghost-%d", i)))
				case i%17 == 7 && r.Kind == jobs.Insert:
					// delete straight after its insert, then re-insert
					seq = append(seq, jobs.DeleteReq(r.Name),
						jobs.InsertReq(r.Name, r.Window.Start, r.Window.End))
				}
			}

			ref := v.build()
			refErrs := applyAll(ref, seq)
			for _, b := range []int{1, 7, 64} {
				s := v.build()
				gotErrs := applyChunked(t, s, seq, b)
				for i := range seq {
					if (refErrs[i] == nil) != (gotErrs[i] == nil) {
						t.Fatalf("batch=%d request %d (%s): sequential err %v, batched err %v",
							b, i, seq[i], refErrs[i], gotErrs[i])
					}
					if refErrs[i] != nil && !sameSentinel(refErrs[i], gotErrs[i]) {
						t.Fatalf("batch=%d request %d (%s): sentinel mismatch: %v vs %v",
							b, i, seq[i], refErrs[i], gotErrs[i])
					}
				}
				assertSameSchedule(t, fmt.Sprintf("%s dirty batch=%d", v.name, b), ref, s)
			}
		})
	}
}

func sameSentinel(a, b error) bool {
	for _, sentinel := range []error{sched.ErrDuplicateJob, sched.ErrUnknownJob, sched.ErrInfeasible, sched.ErrMisaligned} {
		if errors.Is(a, sentinel) {
			return errors.Is(b, sentinel)
		}
	}
	return true // both failed with non-sentinel errors: accept
}

// TestBatchDifferentialSharded replays one stream through the sharded
// front-end's Apply and ApplyBatch from a single goroutine. Routing is
// deterministic and the stream is underallocated (no overflow), so the
// final snapshots must agree exactly.
func TestBatchDifferentialSharded(t *testing.T) {
	g, err := workload.NewGenerator(workload.Config{
		Seed: 47, Machines: 8, Gamma: 8, Horizon: 4096, Steps: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := g.Sequence()

	ref := NewSharded(WithMachines(8), WithShards(4))
	defer ref.Close()
	for i, r := range seq {
		if _, err := ref.Apply(r); err != nil {
			t.Fatalf("reference request %d failed: %v", i, err)
		}
	}
	refSnap := ref.Snapshot()

	for _, b := range []int{1, 16, 128, 1200} {
		s := NewSharded(WithMachines(8), WithShards(4))
		for off := 0; off < len(seq); off += b {
			end := off + b
			if end > len(seq) {
				end = len(seq)
			}
			costs, err := s.ApplyBatch(seq[off:end])
			if err != nil {
				t.Fatalf("batch=%d chunk at %d failed: %v", b, off, err)
			}
			for k, c := range costs {
				if c.Migrations > 1 {
					t.Fatalf("batch=%d request %d reported %d migrations", b, off+k, c.Migrations)
				}
			}
		}
		if err := s.SelfCheck(); err != nil {
			t.Fatalf("batch=%d self-check: %v", b, err)
		}
		snap := s.Snapshot()
		if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
			t.Fatalf("batch=%d infeasible: %v", b, err)
		}
		if len(snap.Assignment) != len(refSnap.Assignment) {
			t.Fatalf("batch=%d: %d jobs vs %d sequential", b, len(snap.Assignment), len(refSnap.Assignment))
		}
		for name, p := range refSnap.Assignment {
			if snap.Assignment[name] != p {
				t.Fatalf("batch=%d: job %q at %+v vs sequential %+v", b, name, snap.Assignment[name], p)
			}
		}
		s.Close()
	}
}

// TestBatchDifferentialShardedDirty salts the sharded stream with the
// patterns the per-request path resolves through the routing table —
// duplicate inserts, ghost deletes, and delete→re-insert and
// insert→delete→re-insert chains on one name (which may hop shards) —
// and requires the same per-request verdicts and the same final
// snapshot in both modes.
func TestBatchDifferentialShardedDirty(t *testing.T) {
	g, err := workload.NewGenerator(workload.Config{
		Seed: 53, Machines: 8, Gamma: 8, Horizon: 4096, Steps: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	var seq []jobs.Request
	for i, r := range g.Sequence() {
		seq = append(seq, r)
		switch {
		case i%11 == 3 && r.Kind == jobs.Insert:
			seq = append(seq, r) // immediate duplicate
		case i%13 == 5:
			seq = append(seq, jobs.DeleteReq(fmt.Sprintf("ghost-%d", i)))
		case i%7 == 2 && r.Kind == jobs.Insert:
			// delete straight after its insert, then re-insert — the
			// chain that exercises same-shard ride-behind and the
			// cross-shard deferred path.
			seq = append(seq, jobs.DeleteReq(r.Name),
				jobs.InsertReq(r.Name, r.Window.Start, r.Window.End))
		}
	}

	ref := NewSharded(WithMachines(8), WithShards(4))
	defer ref.Close()
	refErrs := make([]error, len(seq))
	for i, r := range seq {
		_, refErrs[i] = ref.Apply(r)
	}
	refSnap := ref.Snapshot()

	for _, b := range []int{1, 7, 64, 500} {
		s := NewSharded(WithMachines(8), WithShards(4))
		gotErrs := make([]error, len(seq))
		for off := 0; off < len(seq); off += b {
			end := off + b
			if end > len(seq) {
				end = len(seq)
			}
			_, err := s.ApplyBatch(seq[off:end])
			if err != nil {
				var be *sched.BatchError
				if !errors.As(err, &be) {
					t.Fatalf("batch=%d: non-batch error %v", b, err)
				}
				if len(be.Evicted) > 0 {
					t.Fatalf("batch=%d shed jobs on an underallocated stream: %v", b, be.Evicted)
				}
				for k := end - off - 1; k >= 0; k-- {
					gotErrs[off+k] = be.At(k)
				}
			}
		}
		for i := range seq {
			if (refErrs[i] == nil) != (gotErrs[i] == nil) {
				t.Fatalf("batch=%d request %d (%s): sequential err %v, batched err %v",
					b, i, seq[i], refErrs[i], gotErrs[i])
			}
			if refErrs[i] != nil && !sameSentinel(refErrs[i], gotErrs[i]) {
				t.Fatalf("batch=%d request %d (%s): sentinel mismatch: %v vs %v",
					b, i, seq[i], refErrs[i], gotErrs[i])
			}
		}
		if err := s.SelfCheck(); err != nil {
			t.Fatalf("batch=%d self-check: %v", b, err)
		}
		snap := s.Snapshot()
		if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
			t.Fatalf("batch=%d infeasible: %v", b, err)
		}
		if len(snap.Assignment) != len(refSnap.Assignment) {
			t.Fatalf("batch=%d: %d jobs vs %d sequential", b, len(snap.Assignment), len(refSnap.Assignment))
		}
		for name, p := range refSnap.Assignment {
			if snap.Assignment[name] != p {
				t.Fatalf("batch=%d: job %q at %+v vs sequential %+v", b, name, snap.Assignment[name], p)
			}
		}
		s.Close()
	}
}

// TestBatchDifferentialBurstWaves runs the Burst scenario — the batch
// path's target workload — through the full stack in both modes.
func TestBatchDifferentialBurstWaves(t *testing.T) {
	cfg := workload.BurstConfig{Seed: 3, Machines: 4, Horizon: 1024, Waves: 3}
	reqs, err := workload.Burst(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := New(WithMachines(4))
	for i, e := range applyAll(ref, reqs) {
		if e != nil {
			t.Fatalf("reference request %d failed: %v", i, e)
		}
	}
	s := New(WithMachines(4))
	for i, e := range applyChunked(t, s, reqs, 128) {
		if e != nil {
			t.Fatalf("batched request %d failed: %v", i, e)
		}
	}
	assertSameSchedule(t, "burst", ref, s)
}

// TestBatchDifferentialTraceReplay runs the cluster-trace-shaped
// scenario (diurnal curve, Pareto tails) through every stack variant
// in both modes. Generation is γ-underallocated per variant, so no
// request may fail and the schedules must agree exactly.
func TestBatchDifferentialTraceReplay(t *testing.T) {
	for _, v := range batchVariants() {
		t.Run(v.name, func(t *testing.T) {
			reqs, err := workload.TraceReplay(workload.TraceConfig{
				Seed: 59, Machines: v.machines, Gamma: 8, Horizon: 2048,
				MinSpan: v.minSpan, Steps: 800,
			})
			if err != nil {
				t.Fatal(err)
			}
			ref := v.build()
			for i, e := range applyAll(ref, reqs) {
				if e != nil {
					t.Fatalf("reference request %d failed on a clean trace: %v", i, e)
				}
			}
			for _, b := range []int{1, 32, 256} {
				s := v.build()
				for i, e := range applyChunked(t, s, reqs, b) {
					if e != nil {
						t.Fatalf("batch=%d request %d failed on a clean trace: %v", b, i, e)
					}
				}
				assertSameSchedule(t, fmt.Sprintf("%s trace batch=%d", v.name, b), ref, s)
			}
		})
	}
}

// TestBatchDifferentialAdversarial runs the trim-threshold walk — the
// rebuild-storm worst case — through every stack variant in both
// modes. The storm maximizes resize churn, so this is the directed
// check that batching never diverges from per-request execution in the
// middle of a rebuild (or a deamortized transition).
func TestBatchDifferentialAdversarial(t *testing.T) {
	for _, v := range batchVariants() {
		t.Run(v.name, func(t *testing.T) {
			reqs, err := workload.Adversarial(workload.AdversarialConfig{
				Seed: 61, Machines: v.machines, Gamma: 8, Horizon: 1024,
				MinSpan: v.minSpan, Cycles: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			ref := v.build()
			for i, e := range applyAll(ref, reqs) {
				if e != nil {
					t.Fatalf("reference request %d failed on a clean storm: %v", i, e)
				}
			}
			for _, b := range []int{1, 32, 256} {
				s := v.build()
				for i, e := range applyChunked(t, s, reqs, b) {
					if e != nil {
						t.Fatalf("batch=%d request %d failed on a clean storm: %v", b, i, e)
					}
				}
				assertSameSchedule(t, fmt.Sprintf("%s adversarial batch=%d", v.name, b), ref, s)
			}
		})
	}
}

// TestWithBatchSizeRunAutoChunks: Run must feed batch-sized stacks
// through the bulk path and land on the same schedule as per-request
// execution; the sharded front-end reports its configured size too.
func TestWithBatchSizeRunAutoChunks(t *testing.T) {
	g, err := workload.NewGenerator(workload.Config{Seed: 51, Machines: 2, Gamma: 8, Horizon: 1024, Steps: 300})
	if err != nil {
		t.Fatal(err)
	}
	seq := g.Sequence()

	ref := New(WithMachines(2))
	if _, err := Run(ref, seq); err != nil {
		t.Fatal(err)
	}
	batched := New(WithMachines(2), WithBatchSize(64))
	if bs, ok := batched.(interface{ BatchSize() int }); !ok || bs.BatchSize() != 64 {
		t.Fatal("WithBatchSize not surfaced on the built stack")
	}
	if _, err := Run(batched, seq); err != nil {
		t.Fatal(err)
	}
	assertSameSchedule(t, "run-batched", ref, batched)

	sh := NewSharded(WithMachines(4), WithShards(2), WithBatchSize(32))
	defer sh.Close()
	if sh.BatchSize() != 32 {
		t.Fatalf("sharded BatchSize = %d, want 32", sh.BatchSize())
	}
	if _, err := Run(sh, seq); err != nil {
		t.Fatal(err)
	}
	if err := Verify(sh); err != nil {
		t.Fatal(err)
	}
}
