// Benchmarks regenerating the repository's experiment tables (E1..E11 in
// DESIGN.md), one per table. Beyond wall-clock time, each benchmark
// reports the metric the paper actually bounds — reallocations or
// migrations per request — via b.ReportMetric.
//
// Run everything with:
//
//	go test -bench=. -benchmem ./...
package realloc

import (
	"fmt"
	"testing"

	"repro/internal/alignsched"
	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/lowerbound"
	"repro/internal/mixed"
	"repro/internal/multi"
	"repro/internal/naive"
	"repro/internal/pma"
	"repro/internal/sched"
	"repro/internal/sized"
	"repro/internal/trim"
	"repro/internal/workload"
)

// churn runs b.N requests from a fresh γ-underallocated generator against
// the scheduler, reporting reallocations and migrations per request.
func churn(b *testing.B, s sched.Scheduler, cfg workload.Config) {
	b.Helper()
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	totalRealloc, totalMigr := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := sched.Apply(s, g.Next())
		if err != nil {
			b.Fatalf("request %d: %v", i, err)
		}
		totalRealloc += c.Reallocations
		totalMigr += c.Migrations
	}
	b.StopTimer()
	b.ReportMetric(float64(totalRealloc)/float64(b.N), "reallocs/req")
	b.ReportMetric(float64(totalMigr)/float64(b.N), "migrations/req")
}

// BenchmarkE1ReservationCost regenerates E1: steady-state churn on the
// single-machine reservation scheduler (Theorem 1's cost bound).
func BenchmarkE1ReservationCost(b *testing.B) {
	for _, target := range []int{256, 4096} {
		b.Run(fmt.Sprintf("n=%d", target), func(b *testing.B) {
			s := core.New(core.WithMaxIntervals(1 << 24))
			churn(b, s, workload.Config{
				Seed: 1, Gamma: 8, Horizon: int64(64 * target), Target: target,
				Steps: 1 << 30,
			})
		})
	}
}

// BenchmarkE2NaiveLogDelta regenerates E2: worst-case cascades of the
// naive pecking-order scheduler at growing Δ.
func BenchmarkE2NaiveLogDelta(b *testing.B) {
	for _, delta := range []int64{1 << 10, 1 << 18} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			s := naive.New()
			fill := workload.NestedCascade(delta, 0)
			if _, err := sched.Run(s, fill, nil); err != nil {
				b.Fatal(err)
			}
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := s.Insert(Job{Name: fmt.Sprintf("p%d", i), Window: Win(0, 1)})
				if err != nil {
					b.Fatal(err)
				}
				total += c.Reallocations
				if _, err := s.Delete(fmt.Sprintf("p%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(total)/float64(b.N), "reallocs/probe")
		})
	}
}

// BenchmarkE3EDFBrittle and BenchmarkE3ReservationRobust regenerate E3:
// the same urgent-insert probe against both schedulers.
func BenchmarkE3EDFBrittle(b *testing.B) {
	benchE3(b, func() sched.Scheduler { return edf.New(1, edf.TieByArrival) })
}

// BenchmarkE3ReservationRobust is E3's reservation-side series.
func BenchmarkE3ReservationRobust(b *testing.B) {
	benchE3(b, func() sched.Scheduler {
		return alignsched.New(core.New(core.WithMaxIntervals(1 << 24)))
	})
}

func benchE3(b *testing.B, factory func() sched.Scheduler) {
	const n = 512
	s := factory()
	if _, err := sched.Run(s, lowerbound.FrontInsertSequence(n, 0), nil); err != nil {
		b.Fatal(err)
	}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("urgent%d", i)
		before := s.Assignment()
		if _, err := sched.Apply(s, InsertReq(name, 0, 1)); err != nil {
			b.Fatal(err)
		}
		moved, _ := before.Diff(s.Assignment())
		total += moved + 1
		if _, err := sched.Apply(s, DeleteReq(name)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/float64(b.N), "reallocs/probe")
}

// BenchmarkE4MigrationLB regenerates E4: the adaptive Lemma 11 adversary
// on the full stack (one iteration = one 6m-request round).
func BenchmarkE4MigrationLB(b *testing.B) {
	for _, m := range []int{2, 8} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			totalMigr, totalReq := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := alignsched.New(multi.New(m, func() sched.Scheduler { return core.New() }))
				b.StartTimer()
				res, err := lowerbound.RunLemma11(s, 1)
				if err != nil {
					b.Fatal(err)
				}
				totalMigr += res.TotalMigrations
				totalReq += res.Requests
			}
			b.StopTimer()
			b.ReportMetric(float64(totalMigr)/float64(totalReq), "migrations/req")
		})
	}
}

// BenchmarkE5QuadraticLB regenerates E5: one iteration = one Lemma 12
// toggle pair on a fully subscribed chain (Θ(eta) cost each).
func BenchmarkE5QuadraticLB(b *testing.B) {
	const eta = 256
	s := edf.New(1, edf.TieByArrival)
	if _, err := sched.Run(s, lowerbound.Lemma12Sequence(eta, 0), nil); err != nil {
		b.Fatal(err)
	}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k, w := range []Window{Win(0, 1), Win(eta, eta+1)} {
			name := fmt.Sprintf("t%d-%d", i, k)
			before := s.Assignment()
			if _, err := sched.Apply(s, Request(InsertReq(name, w.Start, w.End))); err != nil {
				b.Fatal(err)
			}
			moved, _ := before.Diff(s.Assignment())
			total += moved + 1
			if _, err := sched.Apply(s, DeleteReq(name)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/float64(2*b.N), "reallocs/toggle")
}

// BenchmarkE6MixedSizes regenerates E6: one iteration = one Observation 13
// sweep (2γ slides of the size-k job).
func BenchmarkE6MixedSizes(b *testing.B) {
	for _, k := range []int64{16, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := mixed.RunObservation13(k, 2, 1)
				if err != nil {
					b.Fatal(err)
				}
				total += res.TotalCost
			}
			b.StopTimer()
			b.ReportMetric(float64(total)/float64(b.N), "reallocs/sweep")
		})
	}
}

// BenchmarkE7Migrations regenerates E7: multi-machine churn with the
// migration bound.
func BenchmarkE7Migrations(b *testing.B) {
	for _, m := range []int{2, 8} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			s := multi.New(m, func() sched.Scheduler { return core.New() })
			churn(b, s, workload.Config{
				Seed: int64(m), Machines: m, Gamma: 12, Horizon: 4096, Steps: 1 << 30,
			})
		})
	}
}

// BenchmarkE8HistoryIndependence regenerates E8: one iteration builds the
// same job multiset along two histories and compares reservation
// snapshots.
func BenchmarkE8HistoryIndependence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := workload.NewGenerator(workload.Config{
			Seed: int64(i), Gamma: 8, Horizon: 1024, Steps: 150,
		})
		if err != nil {
			b.Fatal(err)
		}
		s1 := core.New()
		if _, err := sched.Run(s1, g.Sequence(), nil); err != nil {
			b.Fatal(err)
		}
		s2 := core.New()
		for _, j := range g.Active() {
			if _, err := s2.Insert(j); err != nil {
				b.Fatal(err)
			}
		}
		snap1, snap2 := s1.ReservationSnapshot(), s2.ReservationSnapshot()
		if len(snap1) != len(snap2) {
			b.Fatal("history independence violated")
		}
		for k := range snap1 {
			if snap1[k] != snap2[k] {
				b.Fatal("history independence violated")
			}
		}
	}
}

// BenchmarkE9GammaSweep regenerates E9's headline row: churn exactly at
// the guaranteed slack γ=8.
func BenchmarkE9GammaSweep(b *testing.B) {
	s := core.New()
	churn(b, s, workload.Config{Seed: 9, Gamma: 8, Horizon: 2048, Steps: 1 << 30})
}

// BenchmarkE10Rebuild regenerates E10: grow/shrink cycles across n*
// boundaries under the trimming wrapper (one iteration = one
// insert+delete pair).
func BenchmarkE10Rebuild(b *testing.B) {
	s := trim.New(8, func() sched.Scheduler { return core.New(core.WithMaxIntervals(1 << 24)) })
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c1, err := s.Insert(Job{Name: fmt.Sprintf("g%d", i), Window: Win(0, 1<<40)})
		if err != nil {
			b.Fatal(err)
		}
		// Delete every other job to keep the population oscillating.
		total += c1.Reallocations
		if i%2 == 1 {
			c2, err := s.Delete(fmt.Sprintf("g%d", i-1))
			if err != nil {
				b.Fatal(err)
			}
			total += c2.Reallocations
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/float64(b.N), "reallocs/req")
	b.ReportMetric(float64(s.Rebuilds()), "rebuilds")
}

// BenchmarkE11EndToEnd regenerates E11: the full Theorem 1 stack under
// unaligned churn on 4 machines, through the public API.
func BenchmarkE11EndToEnd(b *testing.B) {
	s := New(WithMachines(4))
	g, err := workload.NewGenerator(workload.Config{
		Seed: 11, Machines: 4, Gamma: 24, Horizon: 8192, Steps: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	totalRealloc, totalMigr := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := g.Next()
		if r.Kind == 0 { // insert: widen the window so it is unaligned
			r.Window.End += r.Window.Span() / 3
		}
		c, err := sched.Apply(s, r)
		if err != nil {
			b.Fatal(err)
		}
		totalRealloc += c.Reallocations
		totalMigr += c.Migrations
	}
	b.StopTimer()
	b.ReportMetric(float64(totalRealloc)/float64(b.N), "reallocs/req")
	b.ReportMetric(float64(totalMigr)/float64(b.N), "migrations/req")
}

// BenchmarkE12SizedJobs regenerates E12: one iteration = one slide sweep
// of the size-k job over the block-aligned sized scheduler.
func BenchmarkE12SizedJobs(b *testing.B) {
	for _, k := range []int64{16, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sized.RunSlide(k, 2, 1)
				if err != nil {
					b.Fatal(err)
				}
				total += res.TotalCost
			}
			b.StopTimer()
			b.ReportMetric(float64(total)/float64(b.N), "reallocs/sweep")
		})
	}
}

// BenchmarkE15PMA regenerates E15: PMA inserts (the framework's
// sparse-array sibling), reporting amortized moves per insert.
func BenchmarkE15PMA(b *testing.B) {
	p := pma.New()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		moves, err := p.Insert(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		total += moves
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/float64(b.N), "moves/insert")
}
