// Package client is the Go client for reallocd, the repro network
// front-end. One Client is one connection, bound to one tenant at
// Dial time; it is safe for concurrent use and pipelines requests —
// many submits can be in flight before the first ack returns.
//
// Synchronous helpers (Submit, Batch, Drain, Snapshot, Resize) block
// for their ack. SubmitAsync returns a Pending handle so open-loop
// callers can keep the pipe full; admission pushback arrives as
// ErrOverload, deadline expiry as ErrDeadline — both are per-request
// verdicts, the connection stays healthy. Err frames and transport
// failures are connection-fatal: every outstanding and future call
// fails with the same error.
package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/jobs"
	"repro/internal/wire"
)

// Sentinel errors for per-request server verdicts. All are wrapped
// with server detail where available; match with errors.Is.
//
// Every sentinel aliases internal/fault — the repo's unified error
// vocabulary, re-exported by the public realloc package — so a remote
// caller branches on exactly the errors.Is targets an embedded caller
// does: errors.Is(err, realloc.ErrOverload) holds whether the overload
// was raised by realloc.Sharded directly or decoded from a CodeOverload
// ack here. ErrOverload is an alias of that one sentinel, not a
// parallel species.
var (
	// ErrOverload: the tenant's inflight budget was exhausted; back
	// off and retry.
	ErrOverload = fault.ErrOverload
	// ErrDeadline: the request's deadline passed before it executed;
	// it mutated nothing.
	ErrDeadline = fault.ErrDeadlineExceeded
	// ErrInfeasible: the request was rejected by the scheduler as
	// infeasible.
	ErrInfeasible = fault.ErrInfeasible
	// ErrDuplicate: insert of a name that is already scheduled.
	ErrDuplicate = fault.ErrDuplicateJob
	// ErrUnknownJob: delete of a name that is not scheduled.
	ErrUnknownJob = fault.ErrUnknownJob
	// ErrClosed: the server (or this client) is shut down.
	ErrClosed = fault.ErrClosed
	// ErrBadRequest: the server rejected the request as malformed.
	ErrBadRequest = fault.ErrBadRequest
	// ErrFenced: the server has been deposed by a newer primary epoch
	// and refuses writes; redial the promoted follower.
	ErrFenced = fault.ErrFenced
)

func codeErr(code wire.Code, detail string) error {
	var base error
	switch code {
	case wire.CodeOK:
		return nil
	case wire.CodeOverload:
		return ErrOverload
	case wire.CodeDeadline:
		return ErrDeadline
	case wire.CodeInfeasible:
		base = ErrInfeasible
	case wire.CodeDuplicate:
		base = ErrDuplicate
	case wire.CodeUnknownJob:
		base = ErrUnknownJob
	case wire.CodeClosed:
		return ErrClosed
	case wire.CodeBadRequest:
		base = ErrBadRequest
	case wire.CodeFenced:
		base = ErrFenced
	default:
		base = fmt.Errorf("client: server error (code %d)", code)
	}
	if detail == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, detail)
}

// Snapshot is a consistent view of the tenant's schedule.
type Snapshot struct {
	Machines int
	Jobs     []wire.PlacedJob
}

// DialOption customizes Dial, mirroring realloc.New's functional
// options. The zero-option call Dial(addr, tenant) behaves exactly as
// it always has.
type DialOption func(*dialConfig)

type dialConfig struct {
	timeout  time.Duration
	attempts int
	backoff  time.Duration
	deadline time.Duration
	fallback []string
}

// WithDialTimeout bounds each connection attempt — TCP connect plus
// the Hello/Welcome handshake (default 30s).
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.timeout = d }
}

// WithRedial retries a failed dial: up to attempts rounds over the
// address list (the primary address plus any WithFallback addresses),
// sleeping backoff between rounds. The default is one round, no
// retry. This is the failover-aware mode: after a primary dies, a
// redialing client finds the promoted follower on its fallback list.
func WithRedial(attempts int, backoff time.Duration) DialOption {
	return func(c *dialConfig) {
		if attempts > 0 {
			c.attempts = attempts
		}
		c.backoff = backoff
	}
}

// WithDeadline sets the client's default per-request deadline, applied
// whenever a submit passes a zero timeout (default: none).
func WithDeadline(d time.Duration) DialOption {
	return func(c *dialConfig) { c.deadline = d }
}

// WithFallback appends failover addresses tried, in order, after the
// primary address within every dial round.
func WithFallback(addrs ...string) DialOption {
	return func(c *dialConfig) { c.fallback = append(c.fallback, addrs...) }
}

// Client is one tenant-bound connection to a reallocd server.
type Client struct {
	nc               net.Conn
	tenant           string
	shards, machines int
	deadline         time.Duration // default per-request deadline (WithDeadline)

	// wmu serializes the write side (frame encode + bufio flush) and
	// ID allocation.
	wmu    sync.Mutex
	bw     *bufio.Writer
	wbuf   []byte
	nextID uint64

	// mu guards the demux table and the sticky fatal error.
	mu      sync.Mutex
	pending map[uint64]chan wire.Frame
	err     error
	closed  bool
	rdone   chan struct{}
}

// Dial connects to a reallocd server and performs the Hello/Welcome
// handshake for the given tenant. With no options it makes one attempt
// against addr; see WithRedial/WithFallback for the failover-aware
// variants.
func Dial(addr, tenant string, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{timeout: 30 * time.Second, attempts: 1}
	for _, o := range opts {
		o(&cfg)
	}
	addrs := append([]string{addr}, cfg.fallback...)
	var err error
	for round := 0; round < cfg.attempts; round++ {
		if round > 0 && cfg.backoff > 0 {
			time.Sleep(cfg.backoff)
		}
		for _, a := range addrs {
			var c *Client
			if c, err = dialOne(a, tenant, &cfg); err == nil {
				return c, nil
			}
		}
	}
	return nil, err
}

// dialOne makes one connection attempt with the config's timeout
// covering connect plus handshake.
func dialOne(addr, tenant string, cfg *dialConfig) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, cfg.timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:       nc,
		tenant:   tenant,
		deadline: cfg.deadline,
		bw:       bufio.NewWriter(nc),
		pending:  make(map[uint64]chan wire.Frame),
		rdone:    make(chan struct{}),
	}
	hello := wire.Frame{Kind: wire.KindHello, Version: wire.Version, Tenant: tenant}
	c.wmu.Lock()
	c.wbuf, err = wire.WriteFrame(c.bw, c.wbuf, &hello)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: hello: %w", err)
	}
	nc.SetReadDeadline(time.Now().Add(cfg.timeout))
	welcome, _, err := wire.ReadFrame(nc, nil)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	nc.SetReadDeadline(time.Time{})
	switch welcome.Kind {
	case wire.KindWelcome:
	case wire.KindErr:
		nc.Close()
		return nil, codeErr(welcome.Code, welcome.Detail)
	default:
		nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected %s frame", welcome.Kind)
	}
	c.shards, c.machines = welcome.Shards, welcome.Machines
	go c.readLoop()
	return c, nil
}

// Tenant returns the tenant this connection is bound to.
func (c *Client) Tenant() string { return c.tenant }

// Shards reports the tenant scheduler's shard count (from Welcome).
func (c *Client) Shards() int { return c.shards }

// Machines reports the machine pool size at handshake time.
func (c *Client) Machines() int { return c.machines }

// readLoop demultiplexes acks to their waiting calls by request ID.
func (c *Client) readLoop() {
	defer close(c.rdone)
	var buf []byte
	for {
		f, b, err := wire.ReadFrame(c.nc, buf)
		buf = b
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		if f.Kind == wire.KindErr {
			// Connection-fatal server verdict.
			c.fail(codeErr(f.Code, f.Detail))
			c.nc.Close()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ID]
		if ok {
			delete(c.pending, f.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f // buffered: never blocks
		}
	}
}

// fail poisons the client: every outstanding and future call returns
// err (the first fatal error sticks).
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
}

// register allocates an ID and its ack channel. The caller must hold
// wmu (register and write must be atomic so acks can't outrun the
// table entry — they can't anyway, but IDs must be written in
// allocation order for debuggability).
func (c *Client) register() (uint64, chan wire.Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, nil, c.err
	}
	if c.closed {
		return 0, nil, ErrClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan wire.Frame, 1)
	c.pending[id] = ch
	return id, ch, nil
}

// call sends f (assigning its ID) and returns the ack channel.
func (c *Client) call(f *wire.Frame) (chan wire.Frame, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	f.ID = id
	c.wbuf, err = wire.WriteFrame(c.bw, c.wbuf, f)
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		err = fmt.Errorf("%w: %v", ErrClosed, err)
		c.fail(err)
		return nil, err
	}
	return ch, nil
}

// Pending is an in-flight request handle from SubmitAsync.
type Pending struct {
	c  *Client
	ch chan wire.Frame
}

// Wait blocks for the ack and returns the request's verdict.
func (p *Pending) Wait() error {
	f, ok := <-p.ch
	if !ok {
		p.c.mu.Lock()
		err := p.c.err
		p.c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	return codeErr(f.Code, f.Detail)
}

// SubmitAsync sends one request without waiting for its ack. A zero
// timeout means the WithDeadline default, or no deadline without one.
// Acks may settle in any order; each Pending resolves independently.
func (c *Client) SubmitAsync(r jobs.Request, timeout time.Duration) (*Pending, error) {
	if timeout <= 0 {
		timeout = c.deadline
	}
	f := wire.Frame{Kind: wire.KindSubmit, Req: r, DeadlineUS: deadlineUS(timeout)}
	ch, err := c.call(&f)
	if err != nil {
		return nil, err
	}
	return &Pending{c: c, ch: ch}, nil
}

// Submit sends one request and waits for its verdict.
func (c *Client) Submit(r jobs.Request) error { return c.SubmitDeadline(r, 0) }

// SubmitDeadline sends one request with a deadline and waits for its
// verdict. ErrDeadline means the request expired un-executed.
func (c *Client) SubmitDeadline(r jobs.Request, timeout time.Duration) error {
	p, err := c.SubmitAsync(r, timeout)
	if err != nil {
		return err
	}
	return p.Wait()
}

// Batch sends a request batch and returns per-request verdicts
// (nil for success), index-aligned with reqs. The returned error
// covers transport failure only.
func (c *Client) Batch(reqs []jobs.Request, timeout time.Duration) ([]error, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if timeout <= 0 {
		timeout = c.deadline
	}
	f := wire.Frame{Kind: wire.KindBatch, Batch: reqs, DeadlineUS: deadlineUS(timeout)}
	ch, err := c.call(&f)
	if err != nil {
		return nil, err
	}
	ack, ok := <-ch
	if !ok {
		return nil, c.stickyErr()
	}
	if len(ack.Codes) != len(reqs) {
		return nil, fmt.Errorf("client: batch ack holds %d codes for %d requests", len(ack.Codes), len(reqs))
	}
	errs := make([]error, len(reqs))
	for i, code := range ack.Codes {
		errs[i] = codeErr(code, "")
	}
	return errs, nil
}

// Drain blocks until everything this tenant had queued before the
// call has been served, and returns the scheduler's drain verdict.
func (c *Client) Drain() error {
	ch, err := c.call(&wire.Frame{Kind: wire.KindDrain})
	if err != nil {
		return err
	}
	f, ok := <-ch
	if !ok {
		return c.stickyErr()
	}
	return codeErr(f.Code, f.Detail)
}

// Snapshot fetches a consistent view of the tenant's schedule.
func (c *Client) Snapshot() (Snapshot, error) {
	ch, err := c.call(&wire.Frame{Kind: wire.KindSnapshotReq})
	if err != nil {
		return Snapshot{}, err
	}
	f, ok := <-ch
	if !ok {
		return Snapshot{}, c.stickyErr()
	}
	return Snapshot{Machines: f.Machines, Jobs: f.Jobs}, nil
}

// Resize re-partitions the tenant's machine pool to the given size.
func (c *Client) Resize(machines int) error {
	ch, err := c.call(&wire.Frame{Kind: wire.KindResize, Machines: machines})
	if err != nil {
		return err
	}
	f, ok := <-ch
	if !ok {
		return c.stickyErr()
	}
	return codeErr(f.Code, f.Detail)
}

// Close tears down the connection. Outstanding calls fail with
// ErrClosed. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.rdone
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.nc.Close()
	<-c.rdone
	return err
}

func (c *Client) stickyErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrClosed
}

func deadlineUS(timeout time.Duration) uint64 {
	if timeout <= 0 {
		return 0
	}
	us := timeout / time.Microsecond
	if us == 0 {
		us = 1
	}
	return uint64(us)
}
