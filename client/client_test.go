package client_test

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	realloc "repro"
	"repro/client"
	"repro/internal/jobs"
	"repro/internal/wire"
)

// script is a hand-driven fake server: it accepts one connection,
// performs the Hello/Welcome handshake, and then runs fn over the
// framed connection. It exists so tests can drop the connection at an
// exact point in the pipeline — something a real server won't do on
// demand.
func script(t *testing.T, fn func(nc net.Conn, buf []byte)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		f, buf, err := wire.ReadFrame(nc, nil)
		if err != nil || f.Kind != wire.KindHello {
			return
		}
		buf, err = wire.WriteFrame(nc, buf, &wire.Frame{Kind: wire.KindWelcome, Shards: 1, Machines: 4})
		if err != nil {
			return
		}
		fn(nc, buf)
	}()
	return ln.Addr().String()
}

// TestConnDropMidPipeline: with dozens of submits in flight, the
// server dies after acking only a few. Every unresolved Pending must
// settle with an error that matches the unified ErrClosed sentinel —
// through both the client's alias and the public realloc package —
// and no goroutine may leak.
func TestConnDropMidPipeline(t *testing.T) {
	const total, acked = 64, 8
	addr := script(t, func(nc net.Conn, buf []byte) {
		for i := 0; i < acked; i++ {
			f, b, err := wire.ReadFrame(nc, buf)
			buf = b
			if err != nil {
				t.Errorf("server read %d: %v", i, err)
				return
			}
			if buf, err = wire.WriteFrame(nc, buf, &wire.Frame{Kind: wire.KindAck, ID: f.ID, Code: wire.CodeOK}); err != nil {
				return
			}
		}
		// One more read proves the pipeline is still full, then die.
		wire.ReadFrame(nc, buf)
	})

	base := runtime.NumGoroutine()
	c, err := client.Dial(addr, "acme")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	pendings := make([]*client.Pending, 0, total)
	for i := 0; i < total; i++ {
		p, err := c.SubmitAsync(jobs.InsertReq("job", jobs.Time(i*16), jobs.Time(i*16+8)), 0)
		if err != nil {
			// The drop raced the submit: the error must already be typed.
			if !errors.Is(err, client.ErrClosed) {
				t.Fatalf("submit %d failed untyped: %v", i, err)
			}
			continue
		}
		pendings = append(pendings, p)
	}

	okCount := 0
	for i, p := range pendings {
		err := p.Wait()
		switch {
		case err == nil:
			okCount++
		case errors.Is(err, client.ErrClosed) && errors.Is(err, realloc.ErrClosed):
			// The unified vocabulary: one sentinel, visible through
			// both import paths.
		default:
			t.Fatalf("pending %d resolved untyped: %v", i, err)
		}
	}
	if okCount != acked {
		t.Fatalf("%d requests acked OK, want %d", okCount, acked)
	}

	// The client is poisoned: future calls fail with the same sentinel.
	if err := c.Submit(jobs.InsertReq("after", 0, 8)); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("submit after drop = %v, want ErrClosed", err)
	}
	c.Close()

	// No goroutine leaks: the read loop and everything it spawned are
	// gone once Close returns (poll briefly; the runtime needs a
	// moment to retire exiting goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDialOptionsDeadlineAndVerdicts: WithDeadline supplies the
// default submit deadline on the wire, and server verdict codes decode
// to the unified sentinels.
func TestDialOptionsDeadlineAndVerdicts(t *testing.T) {
	gotDeadline := make(chan uint64, 1)
	addr := script(t, func(nc net.Conn, buf []byte) {
		f, buf, err := wire.ReadFrame(nc, buf)
		if err != nil {
			return
		}
		gotDeadline <- f.DeadlineUS
		if buf, err = wire.WriteFrame(nc, buf, &wire.Frame{Kind: wire.KindAck, ID: f.ID, Code: wire.CodeOK}); err != nil {
			return
		}
		if f, buf, err = wire.ReadFrame(nc, buf); err != nil {
			return
		}
		wire.WriteFrame(nc, buf, &wire.Frame{Kind: wire.KindAck, ID: f.ID, Code: wire.CodeOverload, Detail: "busy"})
	})

	c, err := client.Dial(addr, "acme",
		client.WithDialTimeout(5*time.Second),
		client.WithDeadline(250*time.Millisecond))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if err := c.Submit(jobs.InsertReq("a", 0, 8)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if us := <-gotDeadline; us != 250_000 {
		t.Fatalf("wire deadline = %dus, want 250000 (the WithDeadline default)", us)
	}
	err = c.Submit(jobs.InsertReq("b", 16, 24))
	if !errors.Is(err, client.ErrOverload) || !errors.Is(err, realloc.ErrOverload) {
		t.Fatalf("overload verdict = %v, want the unified ErrOverload", err)
	}
}

// TestDialRedialAndFallback: a dead primary with a live fallback
// connects within one round; an all-dead list fails after the
// configured attempts with a real error.
func TestDialRedialAndFallback(t *testing.T) {
	// A dead address: bind, grab the port, close.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	live := script(t, func(nc net.Conn, buf []byte) {
		f, buf, err := wire.ReadFrame(nc, buf)
		if err != nil {
			return
		}
		wire.WriteFrame(nc, buf, &wire.Frame{Kind: wire.KindAck, ID: f.ID, Code: wire.CodeOK})
	})

	c, err := client.Dial(deadAddr, "acme",
		client.WithDialTimeout(2*time.Second),
		client.WithFallback(live))
	if err != nil {
		t.Fatalf("dial with live fallback: %v", err)
	}
	if err := c.Submit(jobs.InsertReq("a", 0, 8)); err != nil {
		t.Fatalf("submit via fallback: %v", err)
	}
	c.Close()

	if _, err := client.Dial(deadAddr, "acme",
		client.WithDialTimeout(time.Second),
		client.WithRedial(3, time.Millisecond)); err == nil {
		t.Fatal("dial of a dead address succeeded")
	}
}
