// Command reallocbench replays workload scenarios against the
// sequential Theorem 1 stack and the concurrent sharded front-end, and
// emits a machine-readable benchmark report: throughput, p50/p99
// request latency, and total reallocation/migration costs per
// configuration.
//
// Usage:
//
//	reallocbench                          # mixed scenario, shards {1,4,8}, BENCH_PR1.json
//	reallocbench -scenario cloud -requests 20000
//	reallocbench -shards 1,2,4,8,16 -drivers 16 -out bench.json
//	reallocbench -quick                   # small parameters for smoke runs
//	reallocbench -scenario elastic        # autoscaling: elastic resize vs rebuild, BENCH_PR2.json
//	reallocbench -scenario burst -batch 64  # arrival/departure waves, batched vs
//	                                        # per-request admission, BENCH_PR3.json
//	reallocbench -scenario burst -wal       # WAL-on vs WAL-off durability tax,
//	                                        # BENCH_PR5.json
//	reallocbench -scaling                   # GOMAXPROCS x shard-count scaling
//	                                        # study with open-loop arrival-rate
//	                                        # latency curves, BENCH_PR6.json
//	reallocbench -scenario trace -skew 0.3  # cluster-trace shape: diurnal curve,
//	                                        # Pareto tails, hot-key skew aimed at
//	                                        # one shard, BENCH_TRACE.json
//	reallocbench -scenario adversarial      # trim-threshold walk forcing rebuild
//	                                        # storms, BENCH_ADVERSARIAL.json
//
// The trace and adversarial runs embed a reallocation-cost-over-time
// curve (fixed-resolution buckets over the request stream) in each
// run's JSON, so storms show up as spikes instead of vanishing into
// totals.
//
// Request latencies are recorded into allocation-free HDR histograms
// (internal/hdr), not retained sample slices, so quick and full runs
// report identical quantile semantics and the benchmark driver itself
// stays off the GC profile it measures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	realloc "repro"
	"repro/internal/hdr"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/workload"
)

// Report is the top-level JSON document.
type Report struct {
	Scenario string `json:"scenario"`
	Machines int    `json:"machines"`
	Requests int    `json:"requests"`
	Drivers  int    `json:"drivers"`
	Runs     []Run  `json:"runs"`
	// Compare holds per-run ratios against a prior report (-compare FILE):
	// how this binary's runs stack up against, say, the previous PR's.
	Compare []CompareRow `json:"compare,omitempty"`
}

// Run is one benchmarked configuration.
type Run struct {
	Name          string       `json:"name"`
	Shards        int          `json:"shards"` // 0 = sequential (unsharded) stack
	Batch         int          `json:"batch,omitempty"`
	Drivers       int          `json:"drivers"`
	Served        int          `json:"served"`
	Failures      int          `json:"failures"`
	WallMillis    float64      `json:"wall_ms"`
	ThroughputRPS float64      `json:"throughput_rps"`
	NsPerOp       float64      `json:"ns_per_op"`
	AllocsPerOp   float64      `json:"allocs_per_op"`
	BytesPerOp    float64      `json:"bytes_per_op"`
	P50LatencyUS  float64      `json:"p50_latency_us"`
	P90LatencyUS  float64      `json:"p90_latency_us"`
	P99LatencyUS  float64      `json:"p99_latency_us"`
	P999LatencyUS float64      `json:"p999_latency_us"`
	MaxLatencyUS  float64      `json:"max_latency_us"`
	Reallocations int          `json:"reallocations"`
	Migrations    int          `json:"migrations"`
	Overflow      int          `json:"overflow,omitempty"`
	Curve         []CurvePoint `json:"curve,omitempty"`
	ShardDetail   []ShardStats `json:"shard_detail,omitempty"`
}

// CurvePoint is one bucket of a run's reallocation-cost-over-time
// curve: the requests completed while the bucket was current paid
// Reallocations reassignments and Migrations cross-machine moves.
// Sequential runs bucket by request index; sharded runs bucket by
// completion order across all drivers.
type CurvePoint struct {
	Start         int `json:"start"`
	Requests      int `json:"requests"`
	Reallocations int `json:"reallocations"`
	Migrations    int `json:"migrations"`
}

// recordCurves turns on per-run cost curves; set once in main for the
// scenarios whose whole point is cost-over-time shape.
var recordCurves bool

// orderedReplay turns on the drivers' reorder bound (orderGate); set
// once in main for the scenarios whose feasibility guarantee is
// order-sensitive (trace, adversarial).
var orderedReplay bool

// curveRecorder buckets per-request costs into a fixed number of
// curve points. Concurrent drivers share one recorder: the bucket is
// chosen by an atomic completion counter and the cells are atomics.
type curveRecorder struct {
	width int
	seq   atomic.Int64
	cells []struct{ reqs, reallocs, migr atomic.Int64 }
}

// newCurveRecorder sizes a recorder for `total` requests, or returns
// nil (a no-op recorder) when curves are disabled.
func newCurveRecorder(total int) *curveRecorder {
	if !recordCurves || total <= 0 {
		return nil
	}
	const buckets = 64
	w := (total + buckets - 1) / buckets
	if w < 1 {
		w = 1
	}
	return &curveRecorder{
		width: w,
		cells: make([]struct{ reqs, reallocs, migr atomic.Int64 }, (total+w-1)/w),
	}
}

func (c *curveRecorder) record(cost metrics.Cost) {
	if c == nil {
		return
	}
	i := int(c.seq.Add(1)-1) / c.width
	if i >= len(c.cells) {
		i = len(c.cells) - 1
	}
	c.cells[i].reqs.Add(1)
	c.cells[i].reallocs.Add(int64(cost.Reallocations))
	c.cells[i].migr.Add(int64(cost.Migrations))
}

func (c *curveRecorder) points() []CurvePoint {
	if c == nil {
		return nil
	}
	out := make([]CurvePoint, len(c.cells))
	for i := range c.cells {
		out[i] = CurvePoint{
			Start:         i * c.width,
			Requests:      int(c.cells[i].reqs.Load()),
			Reallocations: int(c.cells[i].reallocs.Load()),
			Migrations:    int(c.cells[i].migr.Load()),
		}
	}
	return out
}

// CompareRow relates one run to the same-named run of a prior report.
type CompareRow struct {
	Name             string  `json:"name"`
	BaseThroughput   float64 `json:"base_throughput_rps"`
	ThroughputRatio  float64 `json:"throughput_ratio"` // this / base; > 1 is faster
	BaseAllocsPerOp  float64 `json:"base_allocs_per_op,omitempty"`
	AllocsPerOpRatio float64 `json:"allocs_per_op_ratio,omitempty"` // this / base; < 1 is leaner
}

// allocSampler brackets a serve loop with runtime.MemStats readings so a
// run can report whole-process allocs/op and bytes/op alongside wall
// time. It measures everything the run allocates — drivers, front-end,
// the scheduler stack — which is exactly the GC pressure a server built
// on this stack would see.
type allocSampler struct{ before runtime.MemStats }

func startAllocSample() *allocSampler {
	s := &allocSampler{}
	runtime.GC()
	runtime.ReadMemStats(&s.before)
	return s
}

// finish folds allocs/op, bytes/op, and ns/op for `ops` operations into r.
func (s *allocSampler) finish(r *Run, wall time.Duration, ops int) {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if ops > 0 {
		r.AllocsPerOp = float64(after.Mallocs-s.before.Mallocs) / float64(ops)
		r.BytesPerOp = float64(after.TotalAlloc-s.before.TotalAlloc) / float64(ops)
		r.NsPerOp = float64(wall.Nanoseconds()) / float64(ops)
	}
}

// ShardStats is the per-shard slice of a sharded run. The latency
// columns come from the shard worker's own dispatch-boundary HDR
// histogram (enqueue to served), not the client-side clock.
type ShardStats struct {
	Shard         int     `json:"shard"`
	Machines      int     `json:"machines"`
	Requests      int     `json:"requests"`
	Failures      int     `json:"failures"`
	Rerouted      int     `json:"rerouted"`
	Overflow      int     `json:"overflow"`
	Batches       int     `json:"batches"`
	Active        int     `json:"active"`
	Reallocations int     `json:"reallocations"`
	Migrations    int     `json:"migrations"`
	P50DispatchUS float64 `json:"p50_dispatch_us,omitempty"`
	P99DispatchUS float64 `json:"p99_dispatch_us,omitempty"`
	MaxDispatchUS float64 `json:"max_dispatch_us,omitempty"`
}

func main() {
	var (
		scenario = flag.String("scenario", "mixed", "workload scenario: mixed, cloud, clinic, sliding, burst, elastic, trace, or adversarial")
		machines = flag.Int("machines", 8, "total machine pool")
		requests = flag.Int("requests", 20000, "request count (scenario permitting)")
		shardSet = flag.String("shards", "1,4,8", "comma-separated shard counts for the sharded runs")
		drivers  = flag.Int("drivers", 8, "concurrent driver goroutines for the sharded runs")
		batch    = flag.Int("batch", 0, "add batched (ApplyBatch) runs with this chunk size; 0 disables (burst defaults to 512)")
		walOn    = flag.Bool("wal", false, "add WAL-enabled twins of the sharded runs (group-commit durability); with -scenario burst the default output becomes BENCH_PR5.json")
		seed     = flag.Int64("seed", 1, "scenario seed")
		out      = flag.String("out", "BENCH_PR1.json", "output JSON path")
		compare  = flag.String("compare", "", "prior report JSON to compare against (adds a compare section)")
		quick    = flag.Bool("quick", false, "small parameters for smoke runs")
		memprof  = flag.String("memprofile", "", "write an allocation profile of the runs to this file")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the runs to this file")
		scaling  = flag.Bool("scaling", false, "run the GOMAXPROCS x shard-count scaling study (closed-loop + open-loop arrival-rate curves); default output BENCH_PR6.json")
		procsSet = flag.String("procs", "", "comma-separated GOMAXPROCS ladder for -scaling (default: powers of two up to NumCPU)")
		ratesSet = flag.String("rates", "0.5,0.75,0.9", "open-loop arrival rates for -scaling, as fractions of the measured closed-loop throughput")
		baseline = flag.String("baseline", "", "prior burst report to embed as the dispatch baseline twin in the -scaling output")
		twinReps = flag.Int("twinreps", 3, "repetitions per dispatch-twin config in -scaling; the median-p99 run is reported")
		skew     = flag.Float64("skew", 0.3, "trace scenario: fraction of inserts whose names route to one shard of the first multi-shard run")
	)
	flag.Parse()

	if *quick {
		*requests = 2000
	}
	if *scaling {
		if *out == "BENCH_PR1.json" {
			*out = "BENCH_PR6.json"
		}
		runScalingStudy(scalingConfig{
			seed: *seed, machines: *machines, requests: *requests,
			drivers: *drivers, twinReps: *twinReps, shardSet: *shardSet,
			procsSet: *procsSet, ratesSet: *ratesSet, baseline: *baseline, out: *out,
		})
		return
	}
	if *scenario == "burst" {
		// The burst scenario exists to compare batched vs per-request
		// admission; default the batch size and the report name. The
		// default chunk is sized for the shard fan-out: a driver's chunk
		// spreads across every shard, so chunks well above the shard
		// count amortize the per-shard round trip.
		if *batch == 0 {
			*batch = 512
		}
		if *out == "BENCH_PR1.json" {
			*out = "BENCH_PR4.json"
		}
		if *walOn {
			*out = strings.Replace(*out, "BENCH_PR4.json", "BENCH_PR5.json", 1)
		}
	}
	if *scenario == "elastic" {
		if *out == "BENCH_PR1.json" {
			*out = "BENCH_PR2.json"
		}
		// The elastic scenario benchmarks one sharded scheduler through
		// pool resizes: it runs at the first -shards value when the flag
		// is given explicitly, else at 4 shards.
		elasticShards := 4
		if shardsFlagSet() {
			counts, err := parseShards(*shardSet)
			if err != nil {
				fail(err)
			}
			elasticShards = counts[0]
		}
		runElasticScenario(*seed, *machines, *requests, *drivers, elasticShards, *out)
		return
	}
	switch *scenario {
	case "trace":
		recordCurves, orderedReplay = true, true
		if *out == "BENCH_PR1.json" {
			*out = "BENCH_TRACE.json"
		}
	case "adversarial":
		recordCurves, orderedReplay = true, true
		if *out == "BENCH_PR1.json" {
			*out = "BENCH_ADVERSARIAL.json"
		}
	}
	shardCountsForSkew, err := parseShards(*shardSet)
	if err != nil {
		fail(err)
	}
	reqs, err := buildScenario(*scenario, *seed, *machines, *requests, *skew, firstMultiShard(shardCountsForSkew))
	if err != nil {
		fail(err)
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	shardCounts, err := parseShards(*shardSet)
	if err != nil {
		fail(err)
	}

	rep := Report{Scenario: *scenario, Machines: *machines, Requests: len(reqs), Drivers: *drivers}

	printRun := func(r Run) {
		fmt.Printf("%-20s  %10.0f req/s  %8.0f ns/op  %6.1f allocs/op  p50 %7.1fus  p90 %7.1fus  p99 %7.1fus  p99.9 %8.1fus  max %8.1fus  realloc %d  migr %d  fail %d  overflow %d\n",
			r.Name, r.ThroughputRPS, r.NsPerOp, r.AllocsPerOp, r.P50LatencyUS, r.P90LatencyUS,
			r.P99LatencyUS, r.P999LatencyUS, r.MaxLatencyUS,
			r.Reallocations, r.Migrations, r.Failures, r.Overflow)
	}
	seqRun := runSequential(reqs, *machines)
	rep.Runs = append(rep.Runs, seqRun)
	printRun(seqRun)
	if *batch > 1 {
		r := runSequentialBatched(reqs, *machines, *batch)
		rep.Runs = append(rep.Runs, r)
		printRun(r)
	}

	for _, s := range shardCounts {
		r := runSharded(reqs, *machines, s, *drivers, "")
		rep.Runs = append(rep.Runs, r)
		printRun(r)
		if *walOn {
			w := runSharded(reqs, *machines, s, *drivers, walTempDir())
			rep.Runs = append(rep.Runs, w)
			printRun(w)
		}
		if *batch > 1 {
			b := runShardedBatched(reqs, *machines, s, *drivers, *batch, "")
			rep.Runs = append(rep.Runs, b)
			printRun(b)
			if *walOn {
				w := runShardedBatched(reqs, *machines, s, *drivers, *batch, walTempDir())
				rep.Runs = append(rep.Runs, w)
				printRun(w)
			}
		}
	}

	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			fail(err)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("wrote allocation profile to %s\n", *memprof)
	}

	if *compare != "" {
		rows, err := compareReports(*compare, rep.Runs)
		if err != nil {
			fail(err)
		}
		rep.Compare = rows
		for _, row := range rows {
			fmt.Printf("vs %s: %-20s  throughput x%.2f  allocs/op x%.2f\n",
				*compare, row.Name, row.ThroughputRatio, row.AllocsPerOpRatio)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, dir := range walScratch {
		os.RemoveAll(dir)
	}
}

// compareReports loads a prior report and relates this run's numbers to
// its same-named runs. Runs without a counterpart are skipped.
func compareReports(path string, runs []Run) ([]CompareRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("compare: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("compare %s: %w", path, err)
	}
	byName := make(map[string]Run, len(base.Runs))
	for _, r := range base.Runs {
		byName[r.Name] = r
	}
	var rows []CompareRow
	for _, r := range runs {
		b, ok := byName[r.Name]
		if !ok || b.ThroughputRPS == 0 {
			continue
		}
		row := CompareRow{
			Name:            r.Name,
			BaseThroughput:  b.ThroughputRPS,
			ThroughputRatio: r.ThroughputRPS / b.ThroughputRPS,
		}
		if b.AllocsPerOp > 0 {
			row.BaseAllocsPerOp = b.AllocsPerOp
			row.AllocsPerOpRatio = r.AllocsPerOp / b.AllocsPerOp
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// firstMultiShard picks the shard count the trace scenario's skew aims
// at: the first run with >1 shard (routing a hot fraction to "shard 0"
// of a 1-shard run would be meaningless).
func firstMultiShard(counts []int) int {
	for _, c := range counts {
		if c > 1 {
			return c
		}
	}
	return 0
}

func buildScenario(name string, seed int64, machines, requests int, skew float64, skewShards int) ([]jobs.Request, error) {
	switch name {
	case "trace":
		cfg := workload.TraceConfig{
			Seed: seed, Machines: machines, Horizon: 1 << 13, Steps: requests,
		}
		if skew > 0 && skewShards > 1 {
			// The sharded runs use the default routing policy, which is
			// exactly NewRing(shards, DefaultReplicas) — an identical
			// driver-side ring aims the hot keys at shard 0 of the first
			// multi-shard run.
			ring := shard.NewRing(skewShards, shard.DefaultReplicas)
			cfg.HotFraction = skew
			cfg.HotRoute = func(name string) bool { return ring.Route(name, skewShards) == 0 }
		}
		return workload.TraceReplay(cfg)
	case "adversarial":
		cfg := workload.AdversarialConfig{
			Seed: seed, Machines: machines, Horizon: 1 << 12,
		}
		// Scale the wave count to the requested sequence length: each
		// cycle is roughly 2x the default peak population in requests.
		peak := int(cfg.Horizon) * machines / 16
		if cycles := requests / (2 * peak); cycles > 0 {
			cfg.Cycles = cycles
		} else {
			cfg.Cycles = 1
		}
		return workload.Adversarial(cfg)
	case "mixed":
		return workload.Mixed(workload.MixedConfig{
			Seed: seed, Machines: machines, Horizon: 1 << 14, Steps: requests,
		})
	case "cloud":
		return workload.Cloud(workload.CloudConfig{
			Seed: seed, Machines: machines, Steps: requests,
		})
	case "clinic":
		return workload.Clinic(workload.ClinicConfig{Seed: seed})
	case "sliding":
		return workload.Sliding(workload.SlidingConfig{Seed: seed, Steps: requests})
	case "burst":
		cfg := workload.BurstConfig{Seed: seed, Machines: machines}
		if err := (&cfg).Fill(); err != nil {
			return nil, err
		}
		// Scale the wave count to the requested sequence length; each
		// wave pair is roughly 2*WaveSize requests.
		if waves := requests / (2 * cfg.WaveSize); waves > 0 {
			cfg.Waves = waves
		} else {
			cfg.Waves = 1
		}
		return workload.Burst(cfg)
	default:
		return nil, fmt.Errorf("unknown scenario %q (want mixed, cloud, clinic, sliding, burst, elastic, trace, or adversarial)", name)
	}
}

// shardsFlagSet reports whether -shards was passed explicitly.
func shardsFlagSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			set = true
		}
	})
	return set
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runSequential replays the scenario single-threaded against the plain
// Theorem 1 stack.
func runSequential(reqs []jobs.Request, machines int) Run {
	s := realloc.New(realloc.WithMachines(machines))
	lat := hdr.New()
	failed := make(map[string]bool)
	curve := newCurveRecorder(len(reqs))
	var reallocs, migrations, failures, served int
	mem := startAllocSample()
	start := time.Now()
	for _, r := range reqs {
		if r.Kind == jobs.Delete && failed[r.Name] {
			continue
		}
		t0 := time.Now()
		c, err := realloc.Apply(s, r)
		lat.Record(int64(time.Since(t0)))
		if err != nil {
			failures++
			if r.Kind == jobs.Insert {
				failed[r.Name] = true
			}
			continue
		}
		served++
		reallocs += c.Reallocations
		migrations += c.Migrations
		curve.record(c)
	}
	wall := time.Since(start)
	run := Run{
		Name: "sequential", Shards: 0, Drivers: 1,
		Served: served, Failures: failures,
		Reallocations: reallocs, Migrations: migrations,
		Curve: curve.points(),
	}
	mem.finish(&run, wall, int(lat.Count()))
	return finishRun(run, wall, lat.Snapshot())
}

// runSequentialBatched replays the scenario single-threaded through the
// plain stack's bulk path in chunks of `batch`. Each request in a chunk
// is charged the chunk's wall time as its latency — that is what a
// caller queueing behind the batch observes.
func runSequentialBatched(reqs []jobs.Request, machines, batch int) Run {
	s := realloc.New(realloc.WithMachines(machines))
	lat := hdr.New()
	failed := make(map[string]bool)
	curve := newCurveRecorder(len(reqs))
	var reallocs, migrations, failures, served int
	mem := startAllocSample()
	start := time.Now()
	for off := 0; off < len(reqs); off += batch {
		end := off + batch
		if end > len(reqs) {
			end = len(reqs)
		}
		chunk := filterFailed(reqs[off:end], failed)
		if len(chunk) == 0 {
			continue
		}
		t0 := time.Now()
		costs, err := realloc.ApplyBatch(s, chunk)
		lat.RecordN(int64(time.Since(t0)), uint64(len(chunk)))
		var be *realloc.BatchError
		if err != nil {
			be, _ = err.(*realloc.BatchError)
		}
		for i, r := range chunk {
			if be != nil && be.At(i) != nil {
				failures++
				if r.Kind == jobs.Insert {
					failed[r.Name] = true
				}
				continue
			}
			served++
			reallocs += costs[i].Reallocations
			migrations += costs[i].Migrations
			curve.record(costs[i])
		}
	}
	wall := time.Since(start)
	run := Run{
		Name: fmt.Sprintf("sequential-batch%d", batch), Shards: 0, Batch: batch, Drivers: 1,
		Served: served, Failures: failures,
		Reallocations: reallocs, Migrations: migrations,
		Curve: curve.points(),
	}
	mem.finish(&run, wall, int(lat.Count()))
	return finishRun(run, wall, lat.Snapshot())
}

// filterFailed drops deletes of jobs whose insert already failed.
func filterFailed(chunk []jobs.Request, failed map[string]bool) []jobs.Request {
	out := make([]jobs.Request, 0, len(chunk))
	for _, r := range chunk {
		if r.Kind == jobs.Delete && failed[r.Name] {
			continue
		}
		out = append(out, r)
	}
	return out
}

// walTempDir allocates a scratch WAL directory for one durable run; it
// is removed when the process exits normally.
func walTempDir() string {
	dir, err := os.MkdirTemp("", "reallocbench-wal-*")
	if err != nil {
		fail(err)
	}
	walScratch = append(walScratch, dir)
	return dir
}

var walScratch []string

// partitionLanes splits the request stream across driver lanes,
// keeping every request for a given name in one lane (a delete must
// trail its insert) and assigning names to lanes round-robin in order
// of first appearance. The lanes used to be chosen by hashing the
// name — the same hash family the scheduler's consistent-hash ring
// routes by — so a workload deliberately skewed against the ring
// (the trace scenario's hot keys) was accidentally skewed against
// the driver too, and the overloaded hot lanes lagged hundreds of
// requests behind the cold ones. Round-robin balances lane load by
// construction, whatever the workload's key distribution. The second
// return value carries each lane request's index in the original
// stream, for the drivers that bound replay reordering (orderGate).
func partitionLanes(reqs []jobs.Request, drivers int) ([][]jobs.Request, [][]int) {
	lanes := make([][]jobs.Request, drivers)
	idxs := make([][]int, drivers)
	laneOf := make(map[string]int, len(reqs))
	next := 0
	for i, r := range reqs {
		lane, ok := laneOf[r.Name]
		if !ok {
			lane = next
			laneOf[r.Name] = lane
			next = (next + 1) % drivers
		}
		lanes[lane] = append(lanes[lane], r)
		idxs[lane] = append(idxs[lane], i)
	}
	return lanes, idxs
}

// orderGate bounds how far concurrent lanes may run ahead of the
// replay's prefix frontier — the largest f such that requests 0..f-1
// have all been applied (or skipped). The workload generators
// guarantee γ-underallocation per PREFIX of the request stream; an
// unboundedly reordered replay can hold an active set no prefix ever
// held — inserts from step 800 alive alongside jobs the generator
// deleted by step 200 — which transiently exceeds the budget and
// rejects requests the scheduler serves in any near-order replay
// (the skewed trace deterministically lost one request this way).
// Keeping every in-flight request within `drift` of the frontier
// caps that excess at a sliver the generators' slack absorbs, while
// all lanes still run concurrently inside the window. Only the
// order-sensitive scenarios pay for the gate: elsewhere it is nil
// and the drivers' hot loops are untouched.
type orderGate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	applied  []bool
	frontier int
	drift    int
}

// orderDrift is how far (in stream indexes) any in-flight request may
// run ahead of the replay's prefix frontier. 32 is tight enough that
// the full-size skewed trace replays cleanly, yet wide enough to keep
// every lane busy inside the window.
const orderDrift = 32

// newOrderGate returns a gate for `total` requests, or nil (a no-op)
// when the scenario's replay is not order-sensitive. Waiting is
// deadlock-free for any drift as long as each lane waits on the
// smallest unapplied index it holds — the lane owning the global
// smallest has it as its frontier and never blocks. The chunked driver
// therefore waits on a chunk's FIRST index and bounds chunks to one
// batch-sized stream window, rather than demanding a drift that covers
// a whole chunk's stream span.
func newOrderGate(total, drift int) *orderGate {
	if !orderedReplay || total <= 0 {
		return nil
	}
	g := &orderGate{applied: make([]bool, total), drift: drift}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// wait blocks until the frontier is within drift of idx. The lane
// holding the smallest unapplied index never blocks (its index IS the
// frontier), so the gate cannot deadlock.
func (g *orderGate) wait(idx int) {
	if g == nil {
		return
	}
	g.mu.Lock()
	for g.frontier < idx-g.drift {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// done marks idx applied and advances the frontier across any newly
// contiguous prefix, waking lanes that were waiting on it. Skipped
// requests (deletes of failed inserts) must be marked too, or the
// frontier stalls forever.
func (g *orderGate) done(idx int) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.applied[idx] = true
	moved := false
	for g.frontier < len(g.applied) && g.applied[g.frontier] {
		g.frontier++
		moved = true
	}
	if moved {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// shardedOpts builds the sharded scheduler options of one run; a
// non-empty walDir turns on group-commit durability.
func shardedOpts(machines, shards int, walDir string) []realloc.Option {
	opts := []realloc.Option{realloc.WithMachines(machines), realloc.WithShards(shards)}
	if walDir != "" {
		opts = append(opts, realloc.WithWAL(walDir))
	}
	return opts
}

// runShardedBatched replays the scenario against the sharded front-end
// from `drivers` concurrent goroutines, each carving its name-
// partitioned lane into chunks of `batch` served via ApplyBatch. A
// non-empty walDir appends every batch to a write-ahead log before it
// is acknowledged (the "-wal" twin runs).
func runShardedBatched(reqs []jobs.Request, machines, shards, drivers, batch int, walDir string) Run {
	s := realloc.NewSharded(shardedOpts(machines, shards, walDir)...)
	defer s.Close()

	lanes, laneIdxs := partitionLanes(reqs, drivers)
	gate := newOrderGate(len(reqs), orderDrift)

	lat := hdr.New() // concurrent-safe: all lanes record into one histogram
	curve := newCurveRecorder(len(reqs))
	var wg sync.WaitGroup
	mem := startAllocSample()
	start := time.Now()
	for li, rs := range lanes {
		wg.Add(1)
		go func(rs []jobs.Request, idxs []int) {
			defer wg.Done()
			failed := make(map[string]bool)
			for off := 0; off < len(rs); {
				end := off + batch
				if end > len(rs) {
					end = len(rs)
				}
				if gate != nil {
					// A lane's requests are spread across the whole
					// stream, so a chunk of `batch` lane requests spans
					// ~batch*drivers stream indexes — far more reordering
					// than the gate's drift tolerates (and waiting out a
					// whole chunk's span can deadlock lanes against each
					// other). Bound each chunk to one global window of
					// orderDrift stream indexes instead: the lanes'
					// chunks then tile the stream in drift-sized epochs,
					// and since the gate only waits on a chunk's first
					// index, replay stays within ~2*orderDrift of stream
					// order whatever the batch size — at the cost of
					// smaller chunks (~orderDrift/drivers requests each)
					// for the order-sensitive scenarios only.
					epochEnd := (idxs[off]/orderDrift + 1) * orderDrift
					end = off + sort.SearchInts(idxs[off:end], epochEnd)
				}
				chunk := filterFailed(rs[off:end], failed)
				if len(chunk) == 0 {
					for _, idx := range idxs[off:end] {
						gate.done(idx)
					}
					off = end
					continue
				}
				gate.wait(idxs[off])
				t0 := time.Now()
				costs, err := s.ApplyBatch(chunk)
				lat.RecordN(int64(time.Since(t0)), uint64(len(chunk)))
				var be *realloc.BatchError
				if err != nil {
					be, _ = err.(*realloc.BatchError)
				}
				for i, r := range chunk {
					if be != nil && be.At(i) != nil {
						if r.Kind == jobs.Insert {
							failed[r.Name] = true
						}
						continue
					}
					curve.record(costs[i])
				}
				for _, idx := range idxs[off:end] {
					gate.done(idx)
				}
				off = end
			}
		}(rs, laneIdxs[li])
	}
	wg.Wait()
	wall := time.Since(start)

	rep := s.Report()
	tot := rep.Total()
	run := Run{
		Name:          walSuffix(fmt.Sprintf("sharded-%d-batch%d", shards, batch), walDir),
		Shards:        shards,
		Batch:         batch,
		Drivers:       drivers,
		Served:        rep.Served(),
		Failures:      tot.Failures,
		Overflow:      tot.Overflow,
		Reallocations: tot.Cost.Reallocations,
		Migrations:    tot.Cost.Migrations,
		Curve:         curve.points(),
	}
	mem.finish(&run, wall, int(lat.Count()))
	run.ShardDetail = shardDetail(rep.Shards)
	return finishRun(run, wall, lat.Snapshot())
}

// walSuffix appends "-wal" to a run name when the run was durable.
func walSuffix(name, walDir string) string {
	if walDir != "" {
		return name + "-wal"
	}
	return name
}

// runSharded replays the scenario against the sharded front-end from
// `drivers` concurrent goroutines, partitioning requests by job name so
// each job's insert/delete order is preserved within its lane. A
// non-empty walDir appends every request to a write-ahead log before it
// is acknowledged (the "-wal" twin runs).
func runSharded(reqs []jobs.Request, machines, shards, drivers int, walDir string) Run {
	s := realloc.NewSharded(shardedOpts(machines, shards, walDir)...)
	defer s.Close()

	lanes, laneIdxs := partitionLanes(reqs, drivers)
	gate := newOrderGate(len(reqs), orderDrift)

	lat := hdr.New() // concurrent-safe: all lanes record into one histogram
	curve := newCurveRecorder(len(reqs))
	var wg sync.WaitGroup
	mem := startAllocSample()
	start := time.Now()
	for li, rs := range lanes {
		wg.Add(1)
		go func(rs []jobs.Request, idxs []int) {
			defer wg.Done()
			failed := make(map[string]bool)
			for k, r := range rs {
				if r.Kind == jobs.Delete && failed[r.Name] {
					gate.done(idxs[k])
					continue
				}
				gate.wait(idxs[k])
				t0 := time.Now()
				c, err := s.Apply(r)
				lat.Record(int64(time.Since(t0)))
				gate.done(idxs[k])
				if err != nil {
					if r.Kind == jobs.Insert {
						failed[r.Name] = true
					}
					continue
				}
				curve.record(c)
			}
		}(rs, laneIdxs[li])
	}
	wg.Wait()
	wall := time.Since(start)

	rep := s.Report()
	tot := rep.Total()
	run := Run{
		Name:          walSuffix(fmt.Sprintf("sharded-%d", shards), walDir),
		Shards:        shards,
		Drivers:       drivers,
		Served:        rep.Served(),
		Failures:      tot.Failures,
		Overflow:      tot.Overflow,
		Reallocations: tot.Cost.Reallocations,
		Migrations:    tot.Cost.Migrations,
		Curve:         curve.points(),
	}
	mem.finish(&run, wall, int(lat.Count()))
	run.ShardDetail = shardDetail(rep.Shards)
	return finishRun(run, wall, lat.Snapshot())
}

// finishRun folds wall time, throughput, and the client-observed
// latency quantiles into the run.
func finishRun(r Run, wall time.Duration, lat hdr.Snapshot) Run {
	r.WallMillis = float64(wall.Microseconds()) / 1e3
	if wall > 0 {
		r.ThroughputRPS = float64(lat.Count()) / wall.Seconds()
	}
	r.P50LatencyUS = quantileUS(lat, 0.50)
	r.P90LatencyUS = quantileUS(lat, 0.90)
	r.P99LatencyUS = quantileUS(lat, 0.99)
	r.P999LatencyUS = quantileUS(lat, 0.999)
	r.MaxLatencyUS = float64(lat.Max()) / 1e3
	return r
}

// quantileUS returns the q-quantile of a latency histogram in
// microseconds.
func quantileUS(l hdr.Snapshot, q float64) float64 {
	if l.Count() == 0 {
		return 0
	}
	return float64(l.Quantile(q)) / 1e3
}

// shardDetail converts a report's per-shard aggregates into JSON rows,
// including each worker's dispatch-boundary latency quantiles.
func shardDetail(shards []metrics.ShardCost) []ShardStats {
	out := make([]ShardStats, 0, len(shards))
	for _, sc := range shards {
		st := ShardStats{
			Shard: sc.Shard, Machines: sc.Machines, Requests: sc.Requests,
			Failures: sc.Failures, Rerouted: sc.Rerouted, Overflow: sc.Overflow,
			Batches: sc.Batches, Active: sc.Active,
			Reallocations: sc.Cost.Reallocations, Migrations: sc.Cost.Migrations,
		}
		if sc.Latency.Count() > 0 {
			st.P50DispatchUS = quantileUS(sc.Latency, 0.50)
			st.P99DispatchUS = quantileUS(sc.Latency, 0.99)
			st.MaxDispatchUS = float64(sc.Latency.Max()) / 1e3
		}
		out = append(out, st)
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reallocbench:", err)
	os.Exit(2)
}

// --- elastic scenario: autoscaling with elastic resize vs rebuild ------------

// ElasticReport is the BENCH_PR2.json document: the same autoscaling
// workload served twice — once by the elastic resize control path, once
// by tearing the scheduler down and rebuilding it at the new size.
type ElasticReport struct {
	Scenario     string       `json:"scenario"`
	Shards       int          `json:"shards"`
	BaseMachines int          `json:"base_machines"`
	PeakMachines int          `json:"peak_machines"`
	Requests     int          `json:"requests"`
	Drivers      int          `json:"drivers"`
	Elastic      ElasticSide  `json:"elastic"`
	Rebuild      ElasticSide  `json:"rebuild"`
	Resizes      []ResizeStat `json:"resizes"`
}

// ElasticSide aggregates one strategy's run.
type ElasticSide struct {
	Phases []PhaseStat `json:"phases"`
	// FailedRequests must be zero for a well-formed scenario.
	FailedRequests int `json:"failed_requests"`
	// MovedJobs is the migration bill of the pool-size changes: evicted
	// re-placements for the elastic side, full re-inserts for the
	// rebuild side.
	MovedJobs     int     `json:"moved_jobs"`
	ResizeMillis  float64 `json:"resize_ms"`
	WallMillis    float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

// PhaseStat is one phase of one strategy.
type PhaseStat struct {
	Name          string  `json:"name"`
	Machines      int     `json:"machines"`
	Requests      int     `json:"requests"`
	Failed        int     `json:"failed"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50LatencyUS  float64 `json:"p50_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
}

// ResizeStat mirrors realloc.ResizeCost for the JSON report.
type ResizeStat struct {
	Shard         int `json:"shard"`
	Delta         int `json:"delta"`
	Evicted       int `json:"evicted"`
	Reinserted    int `json:"reinserted"`
	Dropped       int `json:"dropped"`
	Reallocations int `json:"reallocations"`
	Migrations    int `json:"migrations"`
}

func runElasticScenario(seed int64, machines, requests, drivers, shards int, out string) {
	steps := requests / 3
	if steps < 200 {
		steps = 200
	}
	phases, err := workload.Elastic(workload.ElasticConfig{
		Seed: seed, BaseMachines: machines, PeakMachines: 2 * machines, StepsPerPhase: steps,
	})
	if err != nil {
		fail(err)
	}
	total := 0
	for _, p := range phases {
		total += len(p.Reqs)
	}
	rep := ElasticReport{
		Scenario: "elastic", Shards: shards,
		BaseMachines: machines, PeakMachines: 2 * machines,
		Requests: total, Drivers: drivers,
	}

	// Elastic side: one scheduler, resized in place at phase boundaries.
	es := realloc.NewSharded(realloc.WithMachines(machines), realloc.WithShards(shards))
	eStart := time.Now()
	for _, p := range phases {
		r0 := time.Now()
		rc, err := es.Resize(p.Machines)
		if err != nil {
			fail(fmt.Errorf("elastic resize to %d: %w", p.Machines, err))
		}
		rep.Elastic.ResizeMillis += ms(time.Since(r0))
		rep.Elastic.MovedJobs += rc.Cost.Migrations
		ps := servePhase(es, p, drivers)
		rep.Elastic.Phases = append(rep.Elastic.Phases, ps)
		rep.Elastic.FailedRequests += ps.Failed
		fmt.Printf("elastic %-7s  %2d machines  %8.0f req/s  p99 %7.1fus  fail %d  resize-migr %d\n",
			ps.Name, ps.Machines, ps.ThroughputRPS, ps.P99LatencyUS, ps.Failed, rc.Cost.Migrations)
	}
	rep.Elastic.WallMillis = ms(time.Since(eStart))
	for _, rc := range es.Report().Resizes {
		rep.Resizes = append(rep.Resizes, ResizeStat{
			Shard: rc.Shard, Delta: rc.Delta, Evicted: rc.Evicted,
			Reinserted: rc.Reinserted, Dropped: rc.Dropped,
			Reallocations: rc.Cost.Reallocations, Migrations: rc.Cost.Migrations,
		})
	}
	es.Close()

	// Rebuild side: same phases, but every pool-size change tears the
	// scheduler down and re-inserts the whole active set at the new size
	// — every resident job pays a move.
	rs := realloc.NewSharded(realloc.WithMachines(machines), realloc.WithShards(shards))
	rStart := time.Now()
	cur := machines
	for _, p := range phases {
		if p.Machines != cur {
			r0 := time.Now()
			snap := rs.Snapshot()
			rs.Close()
			rs = realloc.NewSharded(realloc.WithMachines(p.Machines), realloc.WithShards(shards))
			for _, j := range snap.Jobs {
				if _, err := rs.Insert(j); err != nil {
					fail(fmt.Errorf("rebuild reinsert %q: %w", j.Name, err))
				}
			}
			rep.Rebuild.MovedJobs += len(snap.Jobs)
			rep.Rebuild.ResizeMillis += ms(time.Since(r0))
			cur = p.Machines
		}
		ps := servePhase(rs, p, drivers)
		rep.Rebuild.Phases = append(rep.Rebuild.Phases, ps)
		rep.Rebuild.FailedRequests += ps.Failed
		fmt.Printf("rebuild %-7s  %2d machines  %8.0f req/s  p99 %7.1fus  fail %d\n",
			ps.Name, ps.Machines, ps.ThroughputRPS, ps.P99LatencyUS, ps.Failed)
	}
	rep.Rebuild.WallMillis = ms(time.Since(rStart))
	rs.Close()

	for i := range []int{0, 1} {
		side := []*ElasticSide{&rep.Elastic, &rep.Rebuild}[i]
		if side.WallMillis > 0 {
			side.ThroughputRPS = float64(total) / (side.WallMillis / 1e3)
		}
	}

	fmt.Printf("moved jobs at pool changes: elastic %d vs rebuild %d\n",
		rep.Elastic.MovedJobs, rep.Rebuild.MovedJobs)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// servePhase replays one phase from `drivers` goroutines, partitioning
// requests by job name so each job's insert/delete order is preserved
// within its lane.
func servePhase(s *realloc.Sharded, p workload.ElasticPhase, drivers int) PhaseStat {
	lanes, _ := partitionLanes(p.Reqs, drivers)
	lat := hdr.New()
	var failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for _, rs := range lanes {
		wg.Add(1)
		go func(rs []jobs.Request) {
			defer wg.Done()
			skip := make(map[string]bool)
			for _, r := range rs {
				if r.Kind == jobs.Delete && skip[r.Name] {
					continue
				}
				t0 := time.Now()
				_, err := s.Apply(r)
				lat.Record(int64(time.Since(t0)))
				if err != nil {
					failed.Add(1)
					if r.Kind == jobs.Insert {
						skip[r.Name] = true
					}
				}
			}
		}(rs)
	}
	wg.Wait()
	wall := time.Since(start)
	snap := lat.Snapshot()
	ps := PhaseStat{
		Name: p.Name, Machines: p.Machines,
		Requests: int(snap.Count()), Failed: int(failed.Load()),
		P50LatencyUS: quantileUS(snap, 0.50),
		P99LatencyUS: quantileUS(snap, 0.99),
	}
	if wall > 0 {
		ps.ThroughputRPS = float64(snap.Count()) / wall.Seconds()
	}
	return ps
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
