package main

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/jobs"
)

// mkStream builds a request stream of `n` inserts round-robining over
// `names` distinct job names, so lane affinity and balance are easy to
// assert against.
func mkStream(n, names int) []jobs.Request {
	reqs := make([]jobs.Request, n)
	for i := range reqs {
		reqs[i] = jobs.InsertReq(fmt.Sprintf("job-%03d", i%names), jobs.Time(i), jobs.Time(i+1))
	}
	return reqs
}

// partitionLanes must keep every request of a job name in one lane (the
// whole point of lane partitioning: per-job insert/delete order), and
// must balance names across lanes by construction — NOT by hashing the
// name, which correlated lane load with the scheduler's consistent-hash
// ring and let a ring-skewed workload skew the drivers too.
func TestPartitionLanesNameAffinityAndBalance(t *testing.T) {
	const drivers = 4
	reqs := mkStream(400, 40)
	lanes, idxs := partitionLanes(reqs, drivers)

	laneOf := make(map[string]int)
	total := 0
	for li, rs := range lanes {
		if len(rs) != len(idxs[li]) {
			t.Fatalf("lane %d: %d requests but %d indexes", li, len(rs), len(idxs[li]))
		}
		total += len(rs)
		for k, r := range rs {
			if prev, ok := laneOf[r.Name]; ok && prev != li {
				t.Fatalf("job %s split across lanes %d and %d", r.Name, prev, li)
			}
			laneOf[r.Name] = li
			if reqs[idxs[li][k]].Name != r.Name {
				t.Fatalf("lane %d slot %d: index %d names %s, want %s",
					li, k, idxs[li][k], reqs[idxs[li][k]].Name, r.Name)
			}
			if k > 0 && idxs[li][k] <= idxs[li][k-1] {
				t.Fatalf("lane %d indexes not increasing at slot %d", li, k)
			}
		}
	}
	if total != len(reqs) {
		t.Fatalf("lanes hold %d requests, want %d", total, len(reqs))
	}
	// Round-robin assignment: 40 names over 4 lanes is exactly 10 each.
	names := make(map[int]int)
	for _, li := range laneOf {
		names[li]++
	}
	for li := 0; li < drivers; li++ {
		if names[li] != 10 {
			t.Fatalf("lane %d got %d names, want 10 (round-robin)", li, names[li])
		}
	}
}

// The gate must hold every in-flight index within drift of the prefix
// frontier: with the frontier stuck at 0 (index 0 not yet done), any
// index beyond the drift blocks until 0 completes.
func TestOrderGateBoundsDrift(t *testing.T) {
	defer func(prev bool) { orderedReplay = prev }(orderedReplay)
	orderedReplay = true

	g := newOrderGate(100, 8)
	if g == nil {
		t.Fatal("gate is nil with orderedReplay set")
	}
	g.wait(8) // within drift of frontier 0: must not block

	released := make(chan struct{})
	go func() {
		g.wait(9) // one past the drift: blocks until the frontier moves
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("wait(9) returned with frontier at 0 and drift 8")
	default:
	}
	g.done(0)
	<-released
}

// done must advance the frontier across the whole newly contiguous
// prefix, not just one slot — out-of-order completions inside the drift
// window pile up until the missing index lands.
func TestOrderGateFrontierSkipsContiguousPrefix(t *testing.T) {
	defer func(prev bool) { orderedReplay = prev }(orderedReplay)
	orderedReplay = true

	g := newOrderGate(10, 1)
	for _, idx := range []int{1, 2, 3, 4} {
		g.done(idx)
	}
	g.wait(1) // frontier still 0: 1-drift = 0 ≤ 0, fine
	g.done(0) // frontier jumps 0 → 5
	g.wait(6) // needs frontier ≥ 5: returns only if the jump happened
}

// Concurrent lanes replaying disjoint index sets through the gate must
// terminate (no deadlock) for a drift far smaller than a lane's span —
// the property the batched driver relies on by always waiting on its
// chunk's smallest unapplied index.
func TestOrderGateConcurrentLanesNoDeadlock(t *testing.T) {
	defer func(prev bool) { orderedReplay = prev }(orderedReplay)
	orderedReplay = true

	const total, lanes = 1000, 5
	g := newOrderGate(total, 4)
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for idx := l; idx < total; idx += lanes {
				g.wait(idx)
				g.done(idx)
			}
		}(l)
	}
	wg.Wait()
	if g.frontier != total {
		t.Fatalf("frontier %d after all lanes done, want %d", g.frontier, total)
	}
}
