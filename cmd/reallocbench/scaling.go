// The -scaling mode: a GOMAXPROCS x shard-count study of the sharded
// front-end, emitted as BENCH_PR6.json.
//
// Two kinds of curves per (procs, shards) point:
//
//   - closed-loop: the usual driver loop (next request leaves when the
//     previous one returns) — measures capacity;
//   - open-loop: requests arrive on a fixed schedule at a fraction of
//     the measured capacity, and latency is taken from the SCHEDULED
//     arrival time, not the actual send — so server-side queueing shows
//     up in the tail instead of being silently omitted (the
//     "coordinated omission" trap of closed-loop harnesses).
//
// With -baseline FILE the report also embeds a dispatch twin: the burst
// scenario replayed by this binary (MPSC ring dispatch) next to the
// runs recorded by the pre-ring binary (mutex + buffered channel),
// with per-run p99 ratios.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	realloc "repro"
	"repro/internal/hdr"
	"repro/internal/jobs"
)

type scalingConfig struct {
	seed     int64
	machines int
	requests int
	drivers  int
	twinReps int
	shardSet string
	procsSet string
	ratesSet string
	baseline string
	out      string
}

// ScalingReport is the BENCH_PR6.json document.
type ScalingReport struct {
	Scenario      string        `json:"scenario"`
	CPUs          int           `json:"cpus"`
	GoVersion     string        `json:"go_version"`
	Machines      int           `json:"machines"`
	Requests      int           `json:"requests"`
	Drivers       int           `json:"drivers"`
	ProcsLadder   []int         `json:"gomaxprocs_ladder"`
	ShardLadder   []int         `json:"shard_ladder"`
	ClosedLoop    []ScalingRun  `json:"closed_loop"`
	OpenLoop      []OpenLoopRun `json:"open_loop"`
	DispatchBurst *DispatchTwin `json:"dispatch_burst,omitempty"`
}

// ScalingRun is one closed-loop capacity point.
type ScalingRun struct {
	Procs int `json:"gomaxprocs"`
	Run
}

// OpenLoopRun is one open-loop arrival-rate point. Latencies are
// measured from each request's scheduled arrival time.
type OpenLoopRun struct {
	Name           string  `json:"name"`
	Procs          int     `json:"gomaxprocs"`
	Shards         int     `json:"shards"`
	TargetFraction float64 `json:"target_fraction"` // of measured closed-loop capacity
	TargetRPS      float64 `json:"target_rps"`
	AchievedRPS    float64 `json:"achieved_rps"`
	Requests       int     `json:"requests"`
	Failures       int     `json:"failures"`
	P50LatencyUS   float64 `json:"p50_latency_us"`
	P90LatencyUS   float64 `json:"p90_latency_us"`
	P99LatencyUS   float64 `json:"p99_latency_us"`
	P999LatencyUS  float64 `json:"p999_latency_us"`
	MaxLatencyUS   float64 `json:"max_latency_us"`
}

// DispatchTwin pairs this binary's burst runs (MPSC ring dispatch)
// with a prior report's runs (mutex + buffered channel dispatch). Each
// head entry is the median-p99 run of Reps repetitions — one real,
// complete run selected for representativeness, because single burst
// runs have heavy tail variance (GC, scheduler jitter).
type DispatchTwin struct {
	Reps         int                `json:"reps"`
	Head         []Run              `json:"head"`
	BaselineFile string             `json:"baseline_file,omitempty"`
	Baseline     []Run              `json:"baseline,omitempty"`
	P99Ratio     map[string]float64 `json:"p99_ratio,omitempty"` // head/baseline; < 1 is a tail win
}

func runScalingStudy(cfg scalingConfig) {
	shardCounts, err := parseShards(cfg.shardSet)
	if err != nil {
		fail(err)
	}
	procs, err := parseProcsLadder(cfg.procsSet)
	if err != nil {
		fail(err)
	}
	rates, err := parseRates(cfg.ratesSet)
	if err != nil {
		fail(err)
	}
	reqs, err := buildScenario("mixed", cfg.seed, cfg.machines, cfg.requests, 0, 0)
	if err != nil {
		fail(err)
	}

	rep := ScalingReport{
		Scenario: "scaling", CPUs: runtime.NumCPU(), GoVersion: runtime.Version(),
		Machines: cfg.machines, Requests: len(reqs), Drivers: cfg.drivers,
		ProcsLadder: procs, ShardLadder: shardCounts,
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		for _, sc := range shardCounts {
			if sc > cfg.machines {
				fmt.Printf("skip procs=%d shards=%d: more shards than machines\n", p, sc)
				continue
			}
			closed := runSharded(reqs, cfg.machines, sc, cfg.drivers, "")
			closed.Name = fmt.Sprintf("closed-p%d-s%d", p, sc)
			rep.ClosedLoop = append(rep.ClosedLoop, ScalingRun{Procs: p, Run: closed})
			fmt.Printf("%-18s  %10.0f req/s  p50 %7.1fus  p99 %7.1fus  p99.9 %8.1fus\n",
				closed.Name, closed.ThroughputRPS, closed.P50LatencyUS, closed.P99LatencyUS, closed.P999LatencyUS)
			for _, frac := range rates {
				target := closed.ThroughputRPS * frac
				if target <= 0 {
					continue
				}
				ol := runOpenLoop(reqs, cfg.machines, sc, cfg.drivers, target)
				ol.Procs, ol.Shards, ol.TargetFraction = p, sc, frac
				ol.Name = fmt.Sprintf("open-p%d-s%d-r%.2f", p, sc, frac)
				rep.OpenLoop = append(rep.OpenLoop, ol)
				fmt.Printf("%-18s  target %8.0f  achieved %8.0f req/s  p50 %7.1fus  p99 %7.1fus  p99.9 %8.1fus\n",
					ol.Name, ol.TargetRPS, ol.AchievedRPS, ol.P50LatencyUS, ol.P99LatencyUS, ol.P999LatencyUS)
			}
		}
	}
	runtime.GOMAXPROCS(prev)

	rep.DispatchBurst = runDispatchTwin(cfg)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(cfg.out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", cfg.out)
}

// runDispatchTwin replays the burst scenario with the current (MPSC
// ring) dispatch and, when -baseline was given, embeds the prior
// binary's same-named runs and the head/baseline p99 ratios. The twin
// must be invoked with the same -machines/-requests/-drivers/-seed the
// baseline report was produced with for the ratios to mean anything.
func runDispatchTwin(cfg scalingConfig) *DispatchTwin {
	burst, err := buildScenario("burst", cfg.seed, cfg.machines, cfg.requests, 0, 0)
	if err != nil {
		fail(err)
	}
	reps := cfg.twinReps
	if reps < 1 {
		reps = 1
	}
	twin := &DispatchTwin{Reps: reps}
	twin.Head = append(twin.Head, medianP99Run(reps, func() Run { return runSequential(burst, cfg.machines) }))
	twin.Head = append(twin.Head, medianP99Run(reps, func() Run { return runSequentialBatched(burst, cfg.machines, 512) }))
	twin.Head = append(twin.Head, medianP99Run(reps, func() Run { return runSharded(burst, cfg.machines, 8, cfg.drivers, "") }))
	twin.Head = append(twin.Head, medianP99Run(reps, func() Run { return runShardedBatched(burst, cfg.machines, 8, cfg.drivers, 512, "") }))
	for _, r := range twin.Head {
		fmt.Printf("burst %-20s  %10.0f req/s  p99 %7.1fus\n", r.Name, r.ThroughputRPS, r.P99LatencyUS)
	}
	if cfg.baseline == "" {
		return twin
	}
	data, err := os.ReadFile(cfg.baseline)
	if err != nil {
		fail(fmt.Errorf("baseline: %w", err))
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fail(fmt.Errorf("baseline %s: %w", cfg.baseline, err))
	}
	twin.BaselineFile = cfg.baseline
	twin.Baseline = base.Runs
	byName := make(map[string]Run, len(base.Runs))
	for _, r := range base.Runs {
		byName[r.Name] = r
	}
	twin.P99Ratio = make(map[string]float64)
	for _, r := range twin.Head {
		if b, ok := byName[r.Name]; ok && b.P99LatencyUS > 0 {
			ratio := r.P99LatencyUS / b.P99LatencyUS
			twin.P99Ratio[r.Name] = ratio
			fmt.Printf("p99 vs baseline %-20s  %7.1fus -> %7.1fus  (x%.2f)\n",
				r.Name, b.P99LatencyUS, r.P99LatencyUS, ratio)
		}
	}
	return twin
}

// runOpenLoop replays the scenario against the sharded front-end at a
// fixed aggregate arrival rate, split across name-partitioned lanes
// proportionally to lane size. Each lane's k-th slot is scheduled at
// start + k/laneRate; a request that finds its slot in the past is sent
// immediately but still charged from the slot time.
func runOpenLoop(reqs []jobs.Request, machines, shards, drivers int, targetRPS float64) OpenLoopRun {
	s := realloc.NewSharded(shardedOpts(machines, shards, "")...)
	defer s.Close()

	lanes, _ := partitionLanes(reqs, drivers)

	lat := hdr.New()
	var failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for _, rs := range lanes {
		if len(rs) == 0 {
			continue
		}
		laneRate := targetRPS * float64(len(rs)) / float64(len(reqs))
		interval := time.Duration(float64(time.Second) / laneRate)
		wg.Add(1)
		go func(rs []jobs.Request, interval time.Duration) {
			defer wg.Done()
			skip := make(map[string]bool)
			for k, r := range rs {
				// Skipped deletes still occupy their arrival slot so the
				// offered rate stays on schedule.
				sched := start.Add(time.Duration(k) * interval)
				if r.Kind == jobs.Delete && skip[r.Name] {
					continue
				}
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				_, err := s.Apply(r)
				lat.Record(int64(time.Since(sched)))
				if err != nil {
					failed.Add(1)
					if r.Kind == jobs.Insert {
						skip[r.Name] = true
					}
				}
			}
		}(rs, interval)
	}
	wg.Wait()
	wall := time.Since(start)

	snap := lat.Snapshot()
	ol := OpenLoopRun{
		TargetRPS: targetRPS,
		Requests:  int(snap.Count()),
		Failures:  int(failed.Load()),
	}
	if wall > 0 {
		ol.AchievedRPS = float64(snap.Count()) / wall.Seconds()
	}
	ol.P50LatencyUS = quantileUS(snap, 0.50)
	ol.P90LatencyUS = quantileUS(snap, 0.90)
	ol.P99LatencyUS = quantileUS(snap, 0.99)
	ol.P999LatencyUS = quantileUS(snap, 0.999)
	ol.MaxLatencyUS = float64(snap.Max()) / 1e3
	return ol
}

// medianP99Run runs fn reps times and returns the run whose p99 is the
// median of the repetitions — a real, complete run, not a synthetic
// blend of several.
func medianP99Run(reps int, fn func() Run) Run {
	runs := make([]Run, reps)
	for i := range runs {
		runs[i] = fn()
	}
	sort.Slice(runs, func(i, k int) bool { return runs[i].P99LatencyUS < runs[k].P99LatencyUS })
	return runs[(reps-1)/2]
}

// parseProcsLadder parses -procs, defaulting to powers of two up to
// NumCPU (plus NumCPU itself when it is not a power of two).
func parseProcsLadder(s string) ([]int, error) {
	if s == "" {
		n := runtime.NumCPU()
		var out []int
		for p := 1; p < n; p *= 2 {
			out = append(out, p)
		}
		return append(out, n), nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad -procs entry %q", part)
		}
		out = append(out, p)
	}
	return out, nil
}

// parseRates parses -rates as fractions in (0, 1].
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f <= 0 || f > 1 {
			return nil, fmt.Errorf("bad -rates entry %q (want a fraction in (0,1])", part)
		}
		out = append(out, f)
	}
	return out, nil
}
