// Command reallocd serves the repro reallocating scheduler over TCP as
// a multi-tenant front-end. Each tenant (named by the client's Hello
// frame) gets its own lazily created sharded Theorem 1 scheduler;
// requests from all of a tenant's connections are coalesced into
// group-committed ApplyBatch calls; a bounded per-tenant inflight
// budget sheds overload with explicit rejections instead of queueing.
//
// Usage:
//
//	reallocd -addr :7411 -shards 4 -machines 16
//	reallocd -addr :7411 -wal /var/lib/reallocd -fsync     # durable tenants
//
// With -wal, each tenant logs to its own subdirectory and is recovered
// from it on its first connection after a restart.
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight requests finish,
// acks flush, tenant WALs close, then the process exits 0.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	realloc "repro"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7411", "listen address")
		shards     = flag.Int("shards", 4, "shards per tenant scheduler")
		machines   = flag.Int("machines", 16, "machines per tenant pool")
		inflight   = flag.Int("inflight", 1024, "per-tenant inflight admission budget")
		batch      = flag.Int("batch", 128, "max requests coalesced into one ApplyBatch")
		maxTenants = flag.Int("max-tenants", 0, "tenant limit (0 = unbounded)")
		walRoot    = flag.String("wal", "", "WAL root directory (empty = in-memory tenants)")
		fsync      = flag.Bool("fsync", false, "fsync each WAL group commit (requires -wal)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "reallocd: ", log.LstdFlags|log.Lmicroseconds)

	cfg := server.Config{
		NewScheduler: func(tenant string) (*shard.Scheduler, error) {
			opts := []realloc.Option{
				realloc.WithShards(*shards),
				realloc.WithMachines(*machines),
			}
			if *walRoot == "" {
				logger.Printf("tenant %q: created (in-memory)", tenant)
				return realloc.NewSharded(opts...), nil
			}
			dir := filepath.Join(*walRoot, tenantDir(tenant))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
			if *fsync {
				opts = append(opts, realloc.WithWALFsync())
			}
			// OpenRecovered handles both a fresh directory and an
			// existing log: recover, replay, and continue appending.
			s, rec, err := realloc.OpenRecovered(dir, opts...)
			if err != nil {
				return nil, fmt.Errorf("recovering tenant %q from %s: %w", tenant, dir, err)
			}
			logger.Printf("tenant %q: wal=%s checkpoint=%v replayed=%d requests (%d failures)",
				tenant, dir, rec.CheckpointLoaded, rec.RequestsReplayed, rec.ReplayFailures)
			return s, nil
		},
		MaxInflight: *inflight,
		BatchLimit:  *batch,
		MaxTenants:  *maxTenants,
		Logf:        logger.Printf,
	}

	s, err := server.Listen(*addr, cfg)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	logger.Printf("listening on %s (shards=%d machines=%d inflight=%d batch=%d wal=%q)",
		s.Addr(), *shards, *machines, *inflight, *batch, *walRoot)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	logger.Printf("%s: draining...", got)
	if err := s.Close(); err != nil {
		logger.Fatalf("close: %v", err)
	}
	logger.Printf("drained; bye")
}

// tenantDir maps a tenant name to a safe directory name: word
// characters pass through, everything else is %XX-escaped (collision
// free, unlike stripping).
func tenantDir(tenant string) string {
	var b strings.Builder
	for i := 0; i < len(tenant); i++ {
		c := tenant[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}
