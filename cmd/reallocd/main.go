// Command reallocd serves the repro reallocating scheduler over TCP as
// a multi-tenant front-end. Each tenant (named by the client's Hello
// frame) gets its own lazily created sharded Theorem 1 scheduler;
// requests from all of a tenant's connections are coalesced into
// group-committed ApplyBatch calls; a bounded per-tenant inflight
// budget sheds overload with explicit rejections instead of queueing.
//
// Usage:
//
//	reallocd -addr :7411 -shards 4 -machines 16
//	reallocd -addr :7411 -wal /var/lib/reallocd -fsync     # durable tenants
//	reallocd -addr :7411 -wal /var/lib/a -repl :7412       # primary, ships WAL
//	reallocd -addr :7413 -wal /var/lib/b -follow :7412 \
//	         -promote-after 2s                             # warm follower
//
// With -wal, each tenant logs to its own subdirectory and is recovered
// from it on its first connection after a restart.
//
// With -repl the daemon is a replication primary: followers connect to
// the -repl address, install each tenant's latest checkpoint, and then
// receive every group commit before its ack is released. On SIGTERM
// with a follower connected, the primary seals the log and hands the
// primary role over (the follower promotes with a bumped fencing
// epoch) instead of just draining.
//
// With -follow the daemon is a warm follower: it serves nothing until
// it is promoted — by the primary's handoff, or automatically once the
// primary has been unreachable for -promote-after — and then starts
// accepting clients on -addr with the warm schedulers, writing a
// machine-readable report to -failover-json if set.
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight requests finish,
// acks flush, tenant WALs close, then the process exits 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	realloc "repro"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7411", "listen address")
		shards       = flag.Int("shards", 4, "shards per tenant scheduler")
		machines     = flag.Int("machines", 16, "machines per tenant pool")
		inflight     = flag.Int("inflight", 1024, "per-tenant inflight admission budget")
		batch        = flag.Int("batch", 128, "max requests coalesced into one ApplyBatch")
		maxTenants   = flag.Int("max-tenants", 0, "tenant limit (0 = unbounded)")
		walRoot      = flag.String("wal", "", "WAL root directory (empty = in-memory tenants)")
		fsync        = flag.Bool("fsync", false, "fsync each WAL group commit (requires -wal)")
		replAddr     = flag.String("repl", "", "replication listen address: ship the WAL to followers (requires -wal)")
		follow       = flag.String("follow", "", "primary replication address: run as a warm follower (requires -wal)")
		promoteAfter = flag.Duration("promote-after", 0, "with -follow: self-promote after the primary is unreachable this long (0 = explicit handoff only)")
		failoverJSON = flag.String("failover-json", "", "with -follow: write a promotion report to this file")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "reallocd: ", log.LstdFlags|log.Lmicroseconds)

	if *replAddr != "" && *walRoot == "" {
		logger.Fatalf("-repl requires -wal: followers install checkpoints and segments from the WAL directory")
	}
	if *follow != "" && *walRoot == "" {
		logger.Fatalf("-follow requires -wal: the follower mirrors the primary's WAL there")
	}
	if *follow != "" && *replAddr != "" {
		logger.Fatalf("-follow and -repl are mutually exclusive (a promoted follower restarts as a primary to ship)")
	}

	baseOpts := func() []realloc.Option {
		return []realloc.Option{
			realloc.WithShards(*shards),
			realloc.WithMachines(*machines),
		}
	}

	if *follow != "" {
		runFollower(logger, *follow, *addr, *walRoot, *promoteAfter, *failoverJSON, *fsync,
			*inflight, *batch, *maxTenants, baseOpts)
		return
	}

	// Primary (or standalone) mode. With -repl, every tenant WAL is
	// exported to the replication source BEFORE it is opened, so the
	// very first observed byte (the segment header) ships too.
	var src *repl.Source
	fenced := make(chan struct{})
	if *replAddr != "" {
		epoch, err := repl.ReadEpoch(*walRoot)
		if err != nil {
			logger.Fatalf("reading fencing epoch: %v", err)
		}
		src = repl.NewSource(repl.SourceConfig{
			Epoch:    epoch,
			Logf:     logger.Printf,
			OnFenced: func() { close(fenced) },
		})
		raddr, err := src.Listen(*replAddr)
		if err != nil {
			logger.Fatalf("replication listen %s: %v", *replAddr, err)
		}
		logger.Printf("replicating on %s (fencing epoch %d)", raddr, epoch)
	}

	cfg := server.Config{
		NewScheduler: func(tenant string) (*shard.Scheduler, error) {
			opts := baseOpts()
			if *walRoot == "" {
				logger.Printf("tenant %q: created (in-memory)", tenant)
				return realloc.NewSharded(opts...), nil
			}
			dir := filepath.Join(*walRoot, repl.TenantDir(tenant))
			if reason, ok := repl.Discarded(dir); ok {
				return nil, fmt.Errorf("tenant %q: mirror at %s was discarded at promotion (%s); refusing to recover an incomplete WAL — restore it from a live replica or remove the directory to start empty", tenant, dir, reason)
			}
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
			if *fsync {
				opts = append(opts, realloc.WithWALFsync())
			}
			if src != nil {
				opts = append(opts, realloc.WithWALObserver(src.Export(tenant, dir)))
			}
			// OpenRecovered handles both a fresh directory and an
			// existing log: recover, replay, and continue appending.
			s, rec, err := realloc.OpenRecovered(dir, opts...)
			if err != nil {
				return nil, fmt.Errorf("recovering tenant %q from %s: %w", tenant, dir, err)
			}
			logRecovery(logger, tenant, dir, rec)
			return s, nil
		},
		MaxInflight: *inflight,
		BatchLimit:  *batch,
		MaxTenants:  *maxTenants,
		Logf:        logger.Printf,
	}

	s, err := server.Listen(*addr, cfg)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	logger.Printf("listening on %s (shards=%d machines=%d inflight=%d batch=%d wal=%q)",
		s.Addr(), *shards, *machines, *inflight, *batch, *walRoot)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	var got os.Signal
	select {
	case got = <-sig:
	case <-fenced:
		// A follower promoted past this primary (it was presumed dead
		// behind a partition and a replacement is serving). Seal the
		// write path immediately: any write acked from here on would
		// diverge from the new epoch and be lost.
		logger.Printf("FENCED: a follower promoted past this primary; sealing the write path")
		if err := s.Close(); err != nil {
			logger.Fatalf("close after fence: %v", err)
		}
		src.Close()
		logger.Printf("deposed; bye")
		return
	}

	if src != nil {
		if total, warm := src.Followers(); total > 0 {
			logger.Printf("%s: handing off to a follower (%d connected, %d warm)...", got, total, warm)
			epoch, err := s.Handoff(src, fmt.Sprintf("%s handoff", got))
			if err != nil {
				logger.Printf("handoff failed (%v); draining instead", err)
			} else {
				logger.Printf("handed off at epoch %d; bye", epoch)
				src.Close()
				return
			}
		}
	}
	logger.Printf("%s: draining...", got)
	if err := s.Close(); err != nil {
		logger.Fatalf("close: %v", err)
	}
	if src != nil {
		src.Close()
	}
	logger.Printf("drained; bye")
}

// logRecovery reports every Recovery field: what seeded the scheduler,
// how much history was replayed (records vs the requests inside them,
// resizes included), how many replay rejections were counted (benign
// checkpoint overlap), and how many torn-tail bytes were truncated.
func logRecovery(logger *log.Logger, tenant, dir string, rec *realloc.Recovery) {
	logger.Printf("tenant %q: wal=%s checkpoint=%v checkpoint_jobs=%d replayed_records=%d replayed_requests=%d replayed_resizes=%d replay_failures=%d truncated_bytes=%d",
		tenant, dir, rec.CheckpointLoaded, rec.CheckpointJobs,
		rec.RecordsReplayed, rec.RequestsReplayed, rec.ResizesReplayed,
		rec.ReplayFailures, rec.TruncatedBytes)
}

// runFollower is the -follow mode: mirror the primary until promoted,
// then serve the warm schedulers on addr.
func runFollower(logger *log.Logger, primary, addr, walRoot string, promoteAfter time.Duration,
	failoverJSON string, fsync bool, inflight, batch, maxTenants int, baseOpts func() []realloc.Option) {
	fol, err := repl.NewFollower(repl.FollowerConfig{
		Primary: primary,
		Dir:     walRoot,
		NewScheduler: func(tenant string, ck *wal.Checkpoint) (*shard.Scheduler, error) {
			return realloc.NewShardedFromCheckpoint(ck, baseOpts()...)
		},
		Fsync:        fsync,
		PromoteAfter: promoteAfter,
		Logf:         logger.Printf,
	})
	if err != nil {
		logger.Fatalf("follower: %v", err)
	}
	logger.Printf("following %s (wal=%s promote-after=%v)", primary, walRoot, promoteAfter)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		got := <-sig
		select {
		case <-fol.Promoted():
			// Promotion already happened: hand the signal to the
			// serving loop's drain below.
			sig <- got
		default:
			logger.Printf("%s before promotion: stopping follower", got)
			fol.Close()
			os.Exit(0)
		}
	}()

	if err := fol.Run(); err != nil {
		logger.Fatalf("follower: %v", err)
	}
	select {
	case <-fol.Promoted():
	default:
		logger.Printf("follower stopped without promotion; bye")
		return
	}

	stats := fol.Stats()
	logger.Printf("promoted: epoch=%d tenants=%d records=%d requests=%d failures=%d promote_ms=%.1f reason=%q",
		stats.Epoch, stats.Tenants, stats.Records, stats.Requests, stats.Failures, stats.PromoteMS, stats.Reason)
	if failoverJSON != "" {
		writeFailoverReport(logger, failoverJSON, stats)
	}

	cfg := server.Config{
		NewScheduler: func(tenant string) (*shard.Scheduler, error) {
			if s := fol.Adopt(tenant); s != nil {
				logger.Printf("tenant %q: adopted warm from replication", tenant)
				return s, nil
			}
			// Not replicated (or created after promotion): recover
			// from (or create under) the mirror root like a primary.
			// A promotion tombstone means the mirror is an incomplete
			// prefix of the old primary's WAL: recovering it would
			// silently serve stale state, so refuse loudly instead.
			dir := filepath.Join(walRoot, repl.TenantDir(tenant))
			if reason, ok := repl.Discarded(dir); ok {
				return nil, fmt.Errorf("tenant %q: mirror at %s was discarded at promotion (%s); refusing to recover an incomplete WAL — restore it from a live replica or remove the directory to start empty", tenant, dir, reason)
			}
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
			opts := baseOpts()
			if fsync {
				opts = append(opts, realloc.WithWALFsync())
			}
			s, rec, err := realloc.OpenRecovered(dir, opts...)
			if err != nil {
				return nil, fmt.Errorf("recovering tenant %q from %s: %w", tenant, dir, err)
			}
			logRecovery(logger, tenant, dir, rec)
			return s, nil
		},
		MaxInflight: inflight,
		BatchLimit:  batch,
		MaxTenants:  maxTenants,
		Logf:        logger.Printf,
	}
	s, err := server.Listen(addr, cfg)
	if err != nil {
		logger.Fatalf("listen %s: %v", addr, err)
	}
	logger.Printf("serving promoted state on %s (epoch %d)", s.Addr(), stats.Epoch)

	got := <-sig
	logger.Printf("%s: draining...", got)
	if err := s.Close(); err != nil {
		logger.Fatalf("close: %v", err)
	}
	logger.Printf("drained; bye")
}

// failoverReport is the machine-readable promotion record CI asserts
// against (field names are part of the smoke-test contract).
type failoverReport struct {
	Epoch     uint64  `json:"epoch"`
	Tenants   int     `json:"tenants"`
	Records   int     `json:"records_replayed"`
	Requests  int     `json:"requests_replayed"`
	Failures  int     `json:"replay_failures"`
	PromoteMS float64 `json:"promote_ms"`
	Reason    string  `json:"reason"`
}

func writeFailoverReport(logger *log.Logger, path string, st repl.FollowerStats) {
	rep := failoverReport{
		Epoch:     st.Epoch,
		Tenants:   st.Tenants,
		Records:   st.Records,
		Requests:  st.Requests,
		Failures:  st.Failures,
		PromoteMS: st.PromoteMS,
		Reason:    st.Reason,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		logger.Printf("failover report: %v", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		logger.Printf("failover report: %v", err)
	}
}
