// Command reallocload drives a reallocd server with an open-loop
// workload and reports coordinated-omission-free latency.
//
// Open loop means arrivals follow a fixed schedule (-rate per tenant)
// regardless of how fast the server acks: request i of a tenant is
// DUE at start + i/rate, and its latency is measured from that due
// time — not from the moment the client got around to sending it — so
// a server stall inflates the tail of every request queued behind it,
// exactly as real clients would experience it.
//
// Each tenant gets one connection and a pipelined submit stream of
// window-rotating inserts with delete churn. Per-request overload and
// deadline verdicts are counted, not fatal; protocol errors and lost
// acks are fatal in -strict mode.
//
//	reallocload -addr 127.0.0.1:7411 -tenants 2 -rate 2000 -duration 5s
//	reallocload ... -deadline 50ms -out BENCH_SERVE.json -strict -maxp99us 50000
//
// Exit status: 0 on a clean run; 1 on transport failure; 2 when
// -strict finds protocol errors or lost acks, or p99 exceeds -maxp99us.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/hdr"
	"repro/internal/jobs"
)

// Report is the machine-readable result, shaped like the BENCH_*.json
// files reallocbench emits.
type Report struct {
	Addr          string  `json:"addr"`
	Tenants       int     `json:"tenants"`
	RatePerTenant float64 `json:"rate_per_tenant_rps"`
	DurationSec   float64 `json:"duration_sec"`
	DeadlineUS    uint64  `json:"deadline_us,omitempty"`
	Scheduled     int     `json:"scheduled"`
	Acked         int     `json:"acked"`
	OK            int     `json:"ok"`
	Overload      int     `json:"overload"`
	Deadline      int     `json:"deadline"`
	Failures      int     `json:"failures"`
	ProtoErrors   int     `json:"proto_errors"`
	LostAcks      int     `json:"lost_acks"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50LatencyUS  float64 `json:"p50_latency_us"`
	P90LatencyUS  float64 `json:"p90_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
	P999LatencyUS float64 `json:"p999_latency_us"`
	MaxLatencyUS  float64 `json:"max_latency_us"`
}

type counters struct {
	scheduled, acked           atomic.Int64
	ok, overload, dl, failures atomic.Int64
	protoErrors                atomic.Int64
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7411", "reallocd address")
		tenants  = flag.Int("tenants", 2, "number of tenants (one connection each)")
		rate     = flag.Float64("rate", 1000, "open-loop arrival rate per tenant (req/s)")
		duration = flag.Duration("duration", 5*time.Second, "run length")
		deadline = flag.Duration("deadline", 0, "per-request deadline (0 = none)")
		span     = flag.Int64("span", 4096, "job window span (timeslots)")
		churn    = flag.Int("churn", 4, "delete every Nth inserted job (0 = never)")
		out      = flag.String("out", "", "write JSON report to this path")
		strict   = flag.Bool("strict", false, "exit 2 on protocol errors or lost acks")
		maxP99US = flag.Float64("maxp99us", 0, "exit 2 if p99 latency exceeds this (µs, 0 = no gate)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "reallocload: ", log.LstdFlags)

	lat := hdr.New()
	var c counters
	var wg sync.WaitGroup
	start := time.Now()
	for ti := 0; ti < *tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			runTenant(logger, fmt.Sprintf("load-%d", ti), *addr, *rate, *duration,
				*deadline, *span, *churn, lat, &c)
		}(ti)
	}
	wg.Wait()
	wall := time.Since(start)

	snap := lat.Snapshot()
	rep := Report{
		Addr:          *addr,
		Tenants:       *tenants,
		RatePerTenant: *rate,
		DurationSec:   duration.Seconds(),
		Scheduled:     int(c.scheduled.Load()),
		Acked:         int(c.acked.Load()),
		OK:            int(c.ok.Load()),
		Overload:      int(c.overload.Load()),
		Deadline:      int(c.dl.Load()),
		Failures:      int(c.failures.Load()),
		ProtoErrors:   int(c.protoErrors.Load()),
		LostAcks:      int(c.scheduled.Load() - c.acked.Load()),
		ThroughputRPS: float64(c.acked.Load()) / wall.Seconds(),
		P50LatencyUS:  float64(snap.Quantile(0.50)) / 1e3,
		P90LatencyUS:  float64(snap.Quantile(0.90)) / 1e3,
		P99LatencyUS:  float64(snap.Quantile(0.99)) / 1e3,
		P999LatencyUS: float64(snap.Quantile(0.999)) / 1e3,
		MaxLatencyUS:  float64(snap.Max()) / 1e3,
	}
	if *deadline > 0 {
		rep.DeadlineUS = uint64(*deadline / time.Microsecond)
	}

	logger.Printf("%d scheduled, %d acked (%d ok, %d overload, %d deadline, %d failed), p50=%.0fµs p99=%.0fµs max=%.0fµs",
		rep.Scheduled, rep.Acked, rep.OK, rep.Overload, rep.Deadline, rep.Failures,
		rep.P50LatencyUS, rep.P99LatencyUS, rep.MaxLatencyUS)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			logger.Fatalf("marshal: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			logger.Fatalf("write %s: %v", *out, err)
		}
		logger.Printf("report: %s", *out)
	}

	if *strict && (rep.ProtoErrors > 0 || rep.LostAcks > 0) {
		logger.Printf("STRICT FAIL: %d protocol errors, %d lost acks", rep.ProtoErrors, rep.LostAcks)
		os.Exit(2)
	}
	if *maxP99US > 0 && rep.P99LatencyUS > *maxP99US {
		logger.Printf("STRICT FAIL: p99 %.0fµs exceeds ceiling %.0fµs", rep.P99LatencyUS, *maxP99US)
		os.Exit(2)
	}
}

// runTenant drives one tenant's open-loop schedule to completion.
func runTenant(logger *log.Logger, tenant, addr string, rate float64, duration, deadline time.Duration,
	span int64, churn int, lat *hdr.Histogram, c *counters) {
	cl, err := client.Dial(addr, tenant)
	if err != nil {
		logger.Printf("%s: dial: %v", tenant, err)
		c.protoErrors.Add(1)
		return
	}
	defer cl.Close()

	interval := time.Duration(float64(time.Second) / rate)
	total := int(duration.Seconds() * rate)
	start := time.Now()
	var inner sync.WaitGroup
	for i := 0; i < total; i++ {
		due := start.Add(time.Duration(i) * interval)
		// Open loop: wait for the schedule, never for the server.
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		var req jobs.Request
		name := fmt.Sprintf("%s-%06d", tenant, i)
		if churn > 0 && i%churn == churn-1 {
			req = jobs.DeleteReq(fmt.Sprintf("%s-%06d", tenant, i-1))
		} else {
			s := (int64(i) % 16) * span
			req = jobs.InsertReq(name, s, s+span)
		}
		c.scheduled.Add(1)
		p, err := cl.SubmitAsync(req, deadline)
		if err != nil {
			// Connection-fatal: everything after this would fail too.
			logger.Printf("%s: submit %d: %v", tenant, i, err)
			c.protoErrors.Add(1)
			break
		}
		inner.Add(1)
		go func(due time.Time) {
			defer inner.Done()
			err := p.Wait()
			// Latency from the DUE time: coordinated-omission free.
			lat.Record(int64(time.Since(due)))
			c.acked.Add(1)
			switch {
			case err == nil:
				c.ok.Add(1)
			case isVerdict(err, client.ErrOverload):
				c.overload.Add(1)
			case isVerdict(err, client.ErrDeadline):
				c.dl.Add(1)
			case isVerdict(err, client.ErrDuplicate), isVerdict(err, client.ErrUnknownJob),
				isVerdict(err, client.ErrInfeasible):
				c.failures.Add(1) // per-request verdicts, not protocol errors
			default:
				c.failures.Add(1)
				c.protoErrors.Add(1)
			}
		}(due)
	}
	inner.Wait()
}

func isVerdict(err, target error) bool {
	return err != nil && errors.Is(err, target)
}
