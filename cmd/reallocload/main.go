// Command reallocload drives a reallocd server with an open-loop
// workload and reports coordinated-omission-free latency.
//
// Open loop means arrivals follow a fixed schedule (-rate per tenant)
// regardless of how fast the server acks: request i of a tenant is
// DUE at start + i/rate, and its latency is measured from that due
// time — not from the moment the client got around to sending it — so
// a server stall inflates the tail of every request queued behind it,
// exactly as real clients would experience it.
//
// Each tenant gets one connection and a pipelined submit stream of
// window-rotating inserts with delete churn. Per-request overload and
// deadline verdicts are counted, not fatal; protocol errors and lost
// acks are fatal in -strict mode.
//
//	reallocload -addr 127.0.0.1:7411 -tenants 2 -rate 2000 -duration 5s
//	reallocload ... -deadline 50ms -out BENCH_SERVE.json -strict -maxp99us 50000
//
// Failover testing: -ackedlog records every acknowledged-OK insert
// ("I name") and every attempted delete ("D name") the moment it
// happens, -tolerate-drop makes a mid-run connection loss a counted
// outcome instead of a failure, and -verify addr replays the acked
// log against a (promoted) server's snapshots, asserting that every
// insert the old primary acked — and no later delete touched — is
// still scheduled. That is the zero-lost-acks check.
//
//	reallocload ... -ackedlog acked.log -tolerate-drop   # during the kill
//	reallocload -verify 127.0.0.1:7413 -ackedlog acked.log
//
// Scenarios: -scenario churn (default) synthesizes the window-rotating
// insert/delete stream inline. -scenario trace replays a pregenerated
// cluster-trace-shaped workload (diurnal rate curve, bounded-Pareto
// spans, hot-key skew aimed at shard 0 of the server's per-tenant ring
// via -skew/-shards), and -scenario adversarial replays the
// n*-threshold walk — both built per tenant from -seed so the served
// path sees the same storms the embedded benchmarks do. Deletes whose
// inserts were shed by admission control ack unknown-job; those are
// counted separately, not as failures. -ackedlog only makes sense for
// churn's monotone names and is rejected for the replay scenarios.
//
//	reallocload ... -scenario trace -skew 0.8 -shards 4
//
// Exit status: 0 on a clean run; 1 on transport failure; 2 when
// -strict finds protocol errors or lost acks, p99 exceeds -maxp99us,
// or -verify finds missing acked writes.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/hdr"
	"repro/internal/jobs"
	"repro/internal/shard"
	"repro/internal/workload"
)

// Report is the machine-readable result, shaped like the BENCH_*.json
// files reallocbench emits.
type Report struct {
	Addr          string  `json:"addr"`
	Scenario      string  `json:"scenario"`
	Tenants       int     `json:"tenants"`
	RatePerTenant float64 `json:"rate_per_tenant_rps"`
	DurationSec   float64 `json:"duration_sec"`
	DeadlineUS    uint64  `json:"deadline_us,omitempty"`
	Scheduled     int     `json:"scheduled"`
	Acked         int     `json:"acked"`
	Dropped       int     `json:"dropped,omitempty"`
	OK            int     `json:"ok"`
	Overload      int     `json:"overload"`
	Deadline      int     `json:"deadline"`
	Unknown       int     `json:"unknown,omitempty"`
	Failures      int     `json:"failures"`
	ProtoErrors   int     `json:"proto_errors"`
	LostAcks      int     `json:"lost_acks"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50LatencyUS  float64 `json:"p50_latency_us"`
	P90LatencyUS  float64 `json:"p90_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
	P999LatencyUS float64 `json:"p999_latency_us"`
	MaxLatencyUS  float64 `json:"max_latency_us"`
}

type counters struct {
	scheduled, acked           atomic.Int64
	ok, overload, dl, failures atomic.Int64
	unknown                    atomic.Int64
	protoErrors, dropped       atomic.Int64
}

// ackLog is the durable record of acknowledged writes: one "I name"
// line per acked-OK insert, one "D name" line per attempted delete.
// The verify pass treats (acked inserts) minus (attempted deletes) as
// the set that MUST survive a failover. Lines are flushed on every
// append — the log must be complete up to the moment the process (or
// the primary) dies.
type ackLog struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

func openAckLog(path string) (*ackLog, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &ackLog{f: f, w: bufio.NewWriter(f)}, nil
}

func (a *ackLog) add(op byte, name string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.w.WriteByte(op)
	a.w.WriteByte(' ')
	a.w.WriteString(name)
	a.w.WriteByte('\n')
	a.w.Flush()
	a.mu.Unlock()
}

func (a *ackLog) close() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.w.Flush()
	a.f.Sync()
	a.f.Close()
	a.mu.Unlock()
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7411", "reallocd address")
		tenants  = flag.Int("tenants", 2, "number of tenants (one connection each)")
		rate     = flag.Float64("rate", 1000, "open-loop arrival rate per tenant (req/s)")
		duration = flag.Duration("duration", 5*time.Second, "run length")
		deadline = flag.Duration("deadline", 0, "per-request deadline (0 = none)")
		span     = flag.Int64("span", 4096, "job window span (timeslots)")
		churn    = flag.Int("churn", 4, "delete every Nth inserted job (0 = never)")
		out      = flag.String("out", "", "write JSON report to this path")
		strict   = flag.Bool("strict", false, "exit 2 on protocol errors or lost acks")
		maxP99US = flag.Float64("maxp99us", 0, "exit 2 if p99 latency exceeds this (µs, 0 = no gate)")
		ackPath  = flag.String("ackedlog", "", "record acked-OK inserts and attempted deletes to this file")
		tolerate = flag.Bool("tolerate-drop", false, "count a mid-run connection loss as an outcome, not a failure")
		verify   = flag.String("verify", "", "verify an -ackedlog against this server's snapshots instead of generating load")
		scenario = flag.String("scenario", "churn", "workload shape: churn, trace, or adversarial")
		seed     = flag.Int64("seed", 1, "base seed for the trace/adversarial scenarios (tenant index is mixed in)")
		skew     = flag.Float64("skew", 0.5, "trace scenario: fraction of inserts aimed at one shard of the server ring (0 = no skew)")
		shards   = flag.Int("shards", 4, "trace scenario: shard count of the server's per-tenant ring (reallocd -shards)")
		machines = flag.Int("machines", 16, "trace/adversarial scenarios: machine count the generator budgets for (reallocd -machines)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "reallocload: ", log.LstdFlags)

	if *verify != "" {
		if *ackPath == "" {
			logger.Fatalf("-verify requires -ackedlog")
		}
		os.Exit(runVerify(logger, *verify, *ackPath))
	}

	switch *scenario {
	case "churn", "trace", "adversarial":
	default:
		logger.Fatalf("unknown scenario %q (want churn, trace, or adversarial)", *scenario)
	}
	if *ackPath != "" && *verify == "" && *scenario != "churn" {
		// The verify pass derives tenants from churn's monotone name
		// scheme; a replayed trace would silently verify nothing.
		logger.Fatalf("-ackedlog requires -scenario churn")
	}

	var acks *ackLog
	if *ackPath != "" {
		var err error
		if acks, err = openAckLog(*ackPath); err != nil {
			logger.Fatalf("ackedlog: %v", err)
		}
		defer acks.close()
	}

	// The replay scenarios are pregenerated so the open loop spends its
	// schedule on the wire, not on the generator: one decorrelated
	// sequence per tenant (the generator splitmixes its seed, so
	// adjacent per-tenant seeds do not alias).
	loads := make([][]jobs.Request, *tenants)
	if *scenario != "churn" {
		total := int(duration.Seconds() * *rate)
		for ti := range loads {
			reqs, err := buildTenantLoad(*scenario, *seed+int64(ti), total, *machines, *skew, *shards)
			if err != nil {
				logger.Fatalf("scenario %s: %v", *scenario, err)
			}
			loads[ti] = reqs
		}
	}

	lat := hdr.New()
	var c counters
	var wg sync.WaitGroup
	start := time.Now()
	for ti := 0; ti < *tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			runTenant(logger, fmt.Sprintf("load-%d", ti), *addr, *rate, *duration,
				*deadline, *span, *churn, loads[ti], lat, &c, acks, *tolerate)
		}(ti)
	}
	wg.Wait()
	wall := time.Since(start)

	snap := lat.Snapshot()
	rep := Report{
		Addr:          *addr,
		Scenario:      *scenario,
		Tenants:       *tenants,
		RatePerTenant: *rate,
		DurationSec:   duration.Seconds(),
		Scheduled:     int(c.scheduled.Load()),
		Acked:         int(c.acked.Load()),
		Dropped:       int(c.dropped.Load()),
		OK:            int(c.ok.Load()),
		Overload:      int(c.overload.Load()),
		Deadline:      int(c.dl.Load()),
		Unknown:       int(c.unknown.Load()),
		Failures:      int(c.failures.Load()),
		ProtoErrors:   int(c.protoErrors.Load()),
		LostAcks:      int(c.scheduled.Load() - c.acked.Load() - c.dropped.Load()),
		ThroughputRPS: float64(c.acked.Load()) / wall.Seconds(),
		P50LatencyUS:  float64(snap.Quantile(0.50)) / 1e3,
		P90LatencyUS:  float64(snap.Quantile(0.90)) / 1e3,
		P99LatencyUS:  float64(snap.Quantile(0.99)) / 1e3,
		P999LatencyUS: float64(snap.Quantile(0.999)) / 1e3,
		MaxLatencyUS:  float64(snap.Max()) / 1e3,
	}
	if *deadline > 0 {
		rep.DeadlineUS = uint64(*deadline / time.Microsecond)
	}

	logger.Printf("%s: %d scheduled, %d acked (%d ok, %d overload, %d deadline, %d unknown, %d failed), %d dropped, p50=%.0fµs p99=%.0fµs max=%.0fµs",
		rep.Scenario, rep.Scheduled, rep.Acked, rep.OK, rep.Overload, rep.Deadline, rep.Unknown,
		rep.Failures, rep.Dropped, rep.P50LatencyUS, rep.P99LatencyUS, rep.MaxLatencyUS)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			logger.Fatalf("marshal: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			logger.Fatalf("write %s: %v", *out, err)
		}
		logger.Printf("report: %s", *out)
	}

	if *strict && (rep.ProtoErrors > 0 || rep.LostAcks > 0) {
		logger.Printf("STRICT FAIL: %d protocol errors, %d lost acks", rep.ProtoErrors, rep.LostAcks)
		os.Exit(2)
	}
	if *maxP99US > 0 && rep.P99LatencyUS > *maxP99US {
		logger.Printf("STRICT FAIL: p99 %.0fµs exceeds ceiling %.0fµs", rep.P99LatencyUS, *maxP99US)
		os.Exit(2)
	}
}

// buildTenantLoad pregenerates one tenant's replay scenario. The trace
// is sized to the open-loop schedule exactly; the adversarial walk is
// sized by cycles, so its length tracks total only approximately — the
// replay just runs the sequence it got.
func buildTenantLoad(scenario string, seed int64, total, machines int, skew float64, shards int) ([]jobs.Request, error) {
	switch scenario {
	case "trace":
		cfg := workload.TraceConfig{Seed: seed, Machines: machines, Horizon: 1 << 12, Steps: total}
		if skew > 0 && shards > 1 {
			// reallocd builds each tenant's scheduler with the default
			// routing policy — NewRing(shards, DefaultReplicas) — so an
			// identical client-side ring aims the hot keys at shard 0.
			ring := shard.NewRing(shards, shard.DefaultReplicas)
			cfg.HotFraction = skew
			cfg.HotRoute = func(name string) bool { return ring.Route(name, shards) == 0 }
		}
		return workload.TraceReplay(cfg)
	case "adversarial":
		cfg := workload.AdversarialConfig{Seed: seed, Machines: machines, Horizon: 1 << 11}
		peak := int(cfg.Horizon) * machines / 16
		if cycles := total / (2 * peak); cycles > 0 {
			cfg.Cycles = cycles
		} else {
			cfg.Cycles = 1
		}
		return workload.Adversarial(cfg)
	default:
		return nil, fmt.Errorf("no pregenerated load for scenario %q", scenario)
	}
}

// runTenant drives one tenant's open-loop schedule to completion. A
// non-nil reqs replays that pregenerated sequence; otherwise the churn
// scenario synthesizes its requests inline.
func runTenant(logger *log.Logger, tenant, addr string, rate float64, duration, deadline time.Duration,
	span int64, churn int, reqs []jobs.Request, lat *hdr.Histogram, c *counters, acks *ackLog, tolerate bool) {
	cl, err := client.Dial(addr, tenant)
	if err != nil {
		logger.Printf("%s: dial: %v", tenant, err)
		c.protoErrors.Add(1)
		return
	}
	defer cl.Close()

	interval := time.Duration(float64(time.Second) / rate)
	total := int(duration.Seconds() * rate)
	if reqs != nil {
		total = len(reqs)
	}
	start := time.Now()
	var inner sync.WaitGroup
	for i := 0; i < total; i++ {
		due := start.Add(time.Duration(i) * interval)
		// Open loop: wait for the schedule, never for the server.
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		var req jobs.Request
		var name string
		insert := true
		if reqs != nil {
			req = reqs[i]
			name = req.Name
			insert = req.Kind == jobs.Insert
		} else {
			name = fmt.Sprintf("%s-%06d", tenant, i)
			if churn > 0 && i%churn == churn-1 {
				insert = false
				name = fmt.Sprintf("%s-%06d", tenant, i-1)
				req = jobs.DeleteReq(name)
			} else {
				s := (int64(i) % 16) * span
				req = jobs.InsertReq(name, s, s+span)
			}
		}
		if !insert {
			// A delete is logged when ATTEMPTED, not when acked: once
			// it is on the wire the job may be gone whether or not the
			// ack made it back, so the name can no longer be required
			// to survive a failover.
			acks.add('D', name)
		}
		c.scheduled.Add(1)
		p, err := cl.SubmitAsync(req, deadline)
		if err != nil {
			// Connection-fatal: everything after this would fail too.
			if tolerate && isVerdict(err, client.ErrClosed) {
				logger.Printf("%s: connection lost at request %d (tolerated)", tenant, i)
				c.dropped.Add(1)
				break
			}
			logger.Printf("%s: submit %d: %v", tenant, i, err)
			c.protoErrors.Add(1)
			break
		}
		inner.Add(1)
		go func(due time.Time, name string, insert bool) {
			defer inner.Done()
			err := p.Wait()
			if tolerate && isVerdict(err, client.ErrClosed) {
				// The connection died before this ack: the write is in
				// limbo (it may or may not have committed), which is
				// exactly what the failover verifier tolerates.
				c.dropped.Add(1)
				return
			}
			// Latency from the DUE time: coordinated-omission free.
			lat.Record(int64(time.Since(due)))
			c.acked.Add(1)
			switch {
			case err == nil:
				c.ok.Add(1)
				if insert {
					acks.add('I', name)
				}
			case isVerdict(err, client.ErrOverload):
				c.overload.Add(1)
			case isVerdict(err, client.ErrDeadline):
				c.dl.Add(1)
			case isVerdict(err, client.ErrUnknownJob) && !insert:
				// The delete's insert was shed upstream (admission budget
				// or infeasibility): an expected storm outcome, not a
				// failure of the served path.
				c.unknown.Add(1)
			case isVerdict(err, client.ErrDuplicate), isVerdict(err, client.ErrUnknownJob),
				isVerdict(err, client.ErrInfeasible):
				c.failures.Add(1) // per-request verdicts, not protocol errors
			default:
				c.failures.Add(1)
				c.protoErrors.Add(1)
			}
		}(due, name, insert)
	}
	inner.Wait()
}

func isVerdict(err, target error) bool {
	return err != nil && errors.Is(err, target)
}

// runVerify is the zero-lost-acks check: parse the acked log into the
// per-tenant set of names that MUST still be scheduled (acked-OK
// inserts with no delete attempt), snapshot each tenant on the
// (promoted) server, and report anything missing. Returns the process
// exit code.
func runVerify(logger *log.Logger, addr, ackPath string) int {
	f, err := os.Open(ackPath)
	if err != nil {
		logger.Printf("verify: %v", err)
		return 1
	}
	defer f.Close()

	// expected[tenant] = set of names that must survive.
	expected := make(map[string]map[string]bool)
	// A 'D' line tombstones its name permanently, regardless of where
	// it appears relative to the 'I' line: waits are pipelined, so the
	// insert's acked-OK line can land in the log AFTER the delete
	// attempt for the same name. Names are never reused within a run,
	// so order-independent tombstoning is exact.
	deleted := make(map[string]bool)
	tenantOf := func(name string) string {
		// Names are "<tenant>-%06d"; the tenant itself may contain '-'.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			return name[:i]
		}
		return name
	}
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if len(line) < 3 || line[1] != ' ' {
			continue
		}
		op, name := line[0], line[2:]
		lines++
		ten := tenantOf(name)
		set := expected[ten]
		if set == nil {
			set = make(map[string]bool)
			expected[ten] = set
		}
		switch op {
		case 'I':
			if !deleted[name] {
				set[name] = true
			}
		case 'D':
			deleted[name] = true
			delete(set, name)
		}
	}
	if err := sc.Err(); err != nil {
		logger.Printf("verify: reading %s: %v", ackPath, err)
		return 1
	}

	tenants := make([]string, 0, len(expected))
	for t := range expected {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)

	missing, checked := 0, 0
	for _, ten := range tenants {
		cl, err := client.Dial(addr, ten, client.WithRedial(10, 200*time.Millisecond))
		if err != nil {
			logger.Printf("verify: dial %s as %q: %v", addr, ten, err)
			return 1
		}
		snap, err := cl.Snapshot()
		cl.Close()
		if err != nil {
			logger.Printf("verify: snapshot %q: %v", ten, err)
			return 1
		}
		have := make(map[string]bool, len(snap.Jobs))
		for _, pj := range snap.Jobs {
			have[pj.Job.Name] = true
		}
		for name := range expected[ten] {
			checked++
			if !have[name] {
				if missing < 20 {
					logger.Printf("verify: LOST ACK: %q was acked but is not scheduled", name)
				}
				missing++
			}
		}
	}
	logger.Printf("verify: %d log lines, %d required names across %d tenants, %d missing",
		lines, checked, len(tenants), missing)
	if missing > 0 {
		logger.Printf("VERIFY FAIL: %d acked writes lost", missing)
		return 2
	}
	logger.Printf("verify: zero lost acks")
	return 0
}
