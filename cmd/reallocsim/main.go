// Command reallocsim runs the repository's experiments (E1..E17 in
// DESIGN.md), each reproducing one claim of "Reallocation Problems in
// Scheduling" (SPAA 2013), and prints the resulting tables.
//
// Usage:
//
//	reallocsim -list               # enumerate experiments
//	reallocsim                     # run everything (full parameters)
//	reallocsim -quick              # run everything with small parameters
//	reallocsim -exp E3             # run one experiment
//	reallocsim -exp E5 -format csv # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sim"
)

func main() {
	var (
		expID  = flag.String("exp", "all", "experiment ID (E1..E17) or 'all'")
		quick  = flag.Bool("quick", false, "use small parameters (seconds instead of minutes)")
		format = flag.String("format", "text", "output format: text or csv")
		list   = flag.Bool("list", false, "list experiments and exit")
		outDir = flag.String("out", "", "also write one <ID>.csv per experiment into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range sim.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "reallocsim: unknown format %q\n", *format)
		os.Exit(2)
	}

	var tables []*sim.Table
	if *expID == "all" {
		ts, err := sim.RunAll(*quick)
		if err != nil {
			fail(err)
		}
		tables = ts
	} else {
		e, ok := sim.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "reallocsim: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		t, err := e.Run(*quick)
		if err != nil {
			fail(err)
		}
		tables = []*sim.Table{t}
	}

	for _, t := range tables {
		var err error
		if *format == "csv" {
			err = t.CSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err != nil {
			fail(err)
		}
		if *outDir != "" {
			if err := writeCSVFile(*outDir, t); err != nil {
				fail(err)
			}
		}
	}
}

func writeCSVFile(dir string, t *sim.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV(f)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "reallocsim: %v\n", err)
	os.Exit(1)
}
