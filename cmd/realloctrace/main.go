// Command realloctrace records, replays, and minimizes request traces
// (JSON Lines, see internal/trace) against any of the repository's
// schedulers, and converts binary WAL directories to the same JSONL
// format.
//
// Usage:
//
//	realloctrace -mode gen   -steps 500 -seed 7 > churn.jsonl
//	realloctrace -mode record -in churn.jsonl > annotated.jsonl
//	realloctrace -mode replay -in annotated.jsonl      # verify costs match
//	realloctrace -mode shrink -in failing.jsonl        # minimize a reproducer
//	realloctrace -mode waldump -wal ./waldir > log.jsonl  # WAL -> JSONL
//
// The -sched flag selects the scheduler: stack (default, the full
// Theorem 1 composition), core, naive, or edf. -machines sets m where
// supported.
//
// waldump reads a durability directory (realloc.WithWAL) without
// modifying it: the checkpointed jobs are emitted as insert events (the
// trace that rebuilds the image), then every log record follows in
// append order — batches flattened, resizes and torn-tail diagnostics
// as '#' comment lines, which the trace reader skips — so a binary WAL
// becomes a replayable, diffable trace artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	realloc "repro"
	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/naive"
	"repro/internal/sched"
	"repro/internal/stress"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	var (
		mode     = flag.String("mode", "record", "gen | record | replay | shrink | waldump")
		in       = flag.String("in", "", "input trace file (default stdin)")
		walDir   = flag.String("wal", "", "waldump: WAL directory (realloc.WithWAL)")
		schedKnd = flag.String("sched", "stack", "scheduler: stack | core | naive | edf")
		machines = flag.Int("machines", 1, "machine count (stack and edf)")
		steps    = flag.Int("steps", 500, "gen: number of requests")
		seed     = flag.Int64("seed", 1, "gen: random seed")
		gamma    = flag.Int64("gamma", 8, "gen: underallocation slack")
	)
	flag.Parse()

	factory := func() sched.Scheduler {
		switch *schedKnd {
		case "stack":
			return realloc.New(realloc.WithMachines(*machines))
		case "core":
			return core.New(core.WithMaxIntervals(1 << 24))
		case "naive":
			return naive.New()
		case "edf":
			return edf.New(*machines, edf.TieByArrival)
		default:
			fmt.Fprintf(os.Stderr, "realloctrace: unknown scheduler %q\n", *schedKnd)
			os.Exit(2)
			return nil
		}
	}

	switch *mode {
	case "gen":
		g, err := workload.NewGenerator(workload.Config{
			Seed: *seed, Gamma: *gamma, Machines: *machines, Steps: *steps,
			Horizon: 4096,
		})
		if err != nil {
			fail(err)
		}
		if err := trace.Write(os.Stdout, g.Sequence()); err != nil {
			fail(err)
		}

	case "record":
		reqs, err := trace.Read(input(*in))
		if err != nil {
			fail(err)
		}
		if _, err := trace.Record(factory(), reqs, os.Stdout); err != nil {
			fail(err)
		}

	case "replay":
		events, err := trace.ReadEvents(input(*in))
		if err != nil {
			fail(err)
		}
		if err := trace.Replay(factory(), events); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "realloctrace: %d events replayed, all recorded costs match\n", len(events))

	case "shrink":
		reqs, err := trace.Read(input(*in))
		if err != nil {
			fail(err)
		}
		if !stress.Fails(stress.Factory(factory), reqs) {
			fmt.Fprintln(os.Stderr, "realloctrace: trace does not fail; nothing to shrink")
			os.Exit(1)
		}
		small := stress.Shrink(stress.Factory(factory), reqs)
		fmt.Fprintf(os.Stderr, "realloctrace: shrunk %d -> %d requests\n", len(reqs), len(small))
		if err := trace.Write(os.Stdout, small); err != nil {
			fail(err)
		}

	case "waldump":
		if *walDir == "" {
			fmt.Fprintln(os.Stderr, "realloctrace: waldump needs -wal DIR")
			os.Exit(2)
		}
		if err := dumpWAL(*walDir, os.Stdout); err != nil {
			fail(err)
		}

	default:
		fmt.Fprintf(os.Stderr, "realloctrace: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// dumpWAL converts a durability directory to the JSONL trace format.
func dumpWAL(dir string, w io.Writer) error {
	rec, err := wal.Read(dir)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if ck := rec.Checkpoint; ck != nil {
		fmt.Fprintf(w, "# checkpoint: %d job(s) on %d machine(s) across %d shard(s) %v; log replays from segment %d\n",
			len(ck.Jobs), ck.Machines(), len(ck.ShardMachines), ck.ShardMachines, ck.StartSeg)
		for _, j := range ck.Jobs {
			if err := enc.Encode(trace.FromRequest(realloc.InsertReq(j.Name, j.Window.Start, j.Window.End))); err != nil {
				return err
			}
		}
		fmt.Fprintln(w, "# end of checkpoint image; log tail follows")
	}
	for _, r := range rec.Records {
		switch r.Kind {
		case wal.KindRequest:
			if err := enc.Encode(trace.FromRequest(r.Req)); err != nil {
				return err
			}
		case wal.KindBatch:
			fmt.Fprintf(w, "# batch of %d\n", len(r.Batch))
			for _, req := range r.Batch {
				if err := enc.Encode(trace.FromRequest(req)); err != nil {
					return err
				}
			}
		case wal.KindResize:
			if r.Resize.Shard < 0 {
				fmt.Fprintf(w, "# resize pool to %d machines\n", r.Resize.Machines)
			} else {
				fmt.Fprintf(w, "# resize shard %d by %+d machines\n", r.Resize.Shard, r.Resize.Delta)
			}
		}
	}
	if rec.TruncatedBytes > 0 {
		fmt.Fprintf(w, "# torn tail: %d byte(s) of an interrupted group commit not replayable\n", rec.TruncatedBytes)
	}
	return nil
}

func input(path string) io.Reader {
	if path == "" {
		return os.Stdin
	}
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	return f
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "realloctrace: %v\n", err)
	os.Exit(1)
}
