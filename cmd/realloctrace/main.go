// Command realloctrace records, replays, and minimizes request traces
// (JSON Lines, see internal/trace) against any of the repository's
// schedulers.
//
// Usage:
//
//	realloctrace -mode gen   -steps 500 -seed 7 > churn.jsonl
//	realloctrace -mode record -in churn.jsonl > annotated.jsonl
//	realloctrace -mode replay -in annotated.jsonl      # verify costs match
//	realloctrace -mode shrink -in failing.jsonl        # minimize a reproducer
//
// The -sched flag selects the scheduler: stack (default, the full
// Theorem 1 composition), core, naive, or edf. -machines sets m where
// supported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	realloc "repro"
	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/naive"
	"repro/internal/sched"
	"repro/internal/stress"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		mode     = flag.String("mode", "record", "gen | record | replay | shrink")
		in       = flag.String("in", "", "input trace file (default stdin)")
		schedKnd = flag.String("sched", "stack", "scheduler: stack | core | naive | edf")
		machines = flag.Int("machines", 1, "machine count (stack and edf)")
		steps    = flag.Int("steps", 500, "gen: number of requests")
		seed     = flag.Int64("seed", 1, "gen: random seed")
		gamma    = flag.Int64("gamma", 8, "gen: underallocation slack")
	)
	flag.Parse()

	factory := func() sched.Scheduler {
		switch *schedKnd {
		case "stack":
			return realloc.New(realloc.WithMachines(*machines))
		case "core":
			return core.New(core.WithMaxIntervals(1 << 24))
		case "naive":
			return naive.New()
		case "edf":
			return edf.New(*machines, edf.TieByArrival)
		default:
			fmt.Fprintf(os.Stderr, "realloctrace: unknown scheduler %q\n", *schedKnd)
			os.Exit(2)
			return nil
		}
	}

	switch *mode {
	case "gen":
		g, err := workload.NewGenerator(workload.Config{
			Seed: *seed, Gamma: *gamma, Machines: *machines, Steps: *steps,
			Horizon: 4096,
		})
		if err != nil {
			fail(err)
		}
		if err := trace.Write(os.Stdout, g.Sequence()); err != nil {
			fail(err)
		}

	case "record":
		reqs, err := trace.Read(input(*in))
		if err != nil {
			fail(err)
		}
		if _, err := trace.Record(factory(), reqs, os.Stdout); err != nil {
			fail(err)
		}

	case "replay":
		events, err := trace.ReadEvents(input(*in))
		if err != nil {
			fail(err)
		}
		if err := trace.Replay(factory(), events); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "realloctrace: %d events replayed, all recorded costs match\n", len(events))

	case "shrink":
		reqs, err := trace.Read(input(*in))
		if err != nil {
			fail(err)
		}
		if !stress.Fails(stress.Factory(factory), reqs) {
			fmt.Fprintln(os.Stderr, "realloctrace: trace does not fail; nothing to shrink")
			os.Exit(1)
		}
		small := stress.Shrink(stress.Factory(factory), reqs)
		fmt.Fprintf(os.Stderr, "realloctrace: shrunk %d -> %d requests\n", len(reqs), len(small))
		if err := trace.Write(os.Stdout, small); err != nil {
			fail(err)
		}

	default:
		fmt.Fprintf(os.Stderr, "realloctrace: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func input(path string) io.Reader {
	if path == "" {
		return os.Stdin
	}
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	return f
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "realloctrace: %v\n", err)
	os.Exit(1)
}
