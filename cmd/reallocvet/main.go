// Command reallocvet is the repo's multichecker: it runs the four
// custom analyzers (layering, hotpath, poolhygiene, determinism) from
// internal/analysis over the tree and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/reallocvet ./...        # analyze packages
//	go run ./cmd/reallocvet -selftest    # prove each analyzer fires
//
// The self-test mirrors the perfgate --selftest discipline: before CI
// trusts a clean run, it injects one known violation per analyzer into
// a scratch tree and requires the analyzer to flag it — so a silently
// broken analyzer cannot masquerade as a clean tree.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	selftest := flag.Bool("selftest", false, "inject one known violation per analyzer and require each to be flagged")
	flag.Parse()

	if *selftest {
		if err := runSelftest(); err != nil {
			fmt.Fprintf(os.Stderr, "reallocvet selftest: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("reallocvet selftest: ok (all 4 analyzers flag their injected violation)")
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", analysis.LoadTypes, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reallocvet: load: %v\n", err)
		os.Exit(1)
	}
	diags := analysis.Run(pkgs, analysis.Suite())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "reallocvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	fmt.Printf("reallocvet: ok — %d packages, 0 findings\n", len(pkgs))
}
