package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

// injection is one known-bad fixture: files laid out under a scratch
// tree, and the analyzer that must flag them.
type injection struct {
	name  string
	files map[string]string // relative path -> source
	run   func(pkgs []*analysis.Package) []analysis.Diagnostic
}

// runSelftest materializes each injection in a temp tree, runs the
// corresponding analyzer, and fails unless the analyzer reports at
// least one diagnostic of its own name. A gate that cannot fail is no
// gate; this proves each analyzer still fires before a clean tree run
// is trusted.
func runSelftest() error {
	for _, inj := range injections() {
		dir, err := os.MkdirTemp("", "reallocvet-selftest-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		for rel, src := range inj.files {
			path := filepath.Join(dir, filepath.FromSlash(rel))
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				return err
			}
		}
		pkgs, err := analysis.LoadFixtureTree(dir, analysis.LoadTypes, ".")
		if err != nil {
			return fmt.Errorf("%s: load injected fixture: %v", inj.name, err)
		}
		diags := inj.run(pkgs)
		hit := false
		for _, d := range diags {
			if d.Analyzer == inj.name {
				hit = true
			}
		}
		if !hit {
			return fmt.Errorf("analyzer %q did not flag its injected violation (got %d diagnostics: %v)",
				inj.name, len(diags), diags)
		}
		fmt.Printf("  %-13s flags injected violation: ok\n", inj.name)
	}
	return nil
}

func injections() []injection {
	runSuite := func(a *analysis.Analyzer) func([]*analysis.Package) []analysis.Diagnostic {
		return func(pkgs []*analysis.Package) []analysis.Diagnostic {
			return analysis.Run(pkgs, []*analysis.Analyzer{a})
		}
	}
	return []injection{
		{
			name: "layering",
			files: map[string]string{
				"lay/dep/dep.go":   "package dep\n\nconst N = 1\n",
				"lay/leaf/leaf.go": "package leaf\n\nimport \"lay/dep\"\n\nconst M = dep.N\n",
			},
			// lay/leaf is declared a stdlib-only leaf, but imports lay/dep.
			run: runSuite(analysis.Layering("lay", map[string]analysis.LayerRule{
				"lay/dep":  {},
				"lay/leaf": {},
			})),
		},
		{
			name: "hotpath",
			files: map[string]string{
				"hot/hot.go": `package hot

import "fmt"

//reallocvet:hotpath
func Format(n int) string {
	return fmt.Sprintf("%d", n) // fmt in a hot path: must be flagged
}
`,
			},
			run: runSuite(analysis.Hotpath()),
		},
		{
			name: "poolhygiene",
			files: map[string]string{
				"pool/pool.go": `package pool

import "sync"

type scratch struct{ names []string }

var p = sync.Pool{New: func() any { return new(scratch) }}

// put returns s without clearing names: the pool pins the strings.
func put(s *scratch) {
	p.Put(s)
}
`,
			},
			run: runSuite(analysis.Poolhygiene()),
		},
		{
			name: "determinism",
			files: map[string]string{
				"det/det.go": `//reallocvet:deterministic
package det

// Order walks a map and emits in iteration order: nondeterministic.
func Order(m map[string]int, emit func(string)) {
	for k := range m {
		emit(k)
	}
}
`,
			},
			run: runSuite(analysis.Determinism()),
		},
	}
}
