// Composition tests: every sensible stacking of the wrappers must behave
// as a correct reallocating scheduler under the same churn.
package realloc

import (
	"fmt"
	"testing"

	"repro/internal/alignsched"
	"repro/internal/core"
	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/multi"
	"repro/internal/naive"
	"repro/internal/sched"
	"repro/internal/trim"
	"repro/internal/workload"
)

func coreF() sched.Scheduler { return core.New(core.WithMaxIntervals(1 << 24)) }

// Every composition under aligned churn.
func TestWrapperCompositions(t *testing.T) {
	comps := map[string]func() sched.Scheduler{
		"core": coreF,
		"trim(core)": func() sched.Scheduler {
			return trim.New(8, coreF)
		},
		"inc(core)": func() sched.Scheduler {
			return trim.NewIncremental(8, coreF)
		},
		"multi(core)": func() sched.Scheduler {
			return multi.New(3, coreF)
		},
		"multi(trim(core))": func() sched.Scheduler {
			return multi.New(3, func() sched.Scheduler { return trim.New(8, coreF) })
		},
		"multi(inc(core))": func() sched.Scheduler {
			return multi.New(3, func() sched.Scheduler { return trim.NewIncremental(8, coreF) })
		},
		"align(multi(trim(core)))": func() sched.Scheduler {
			return alignsched.New(multi.New(3, func() sched.Scheduler { return trim.New(8, coreF) }))
		},
		"align(multi(trim(naive)))": func() sched.Scheduler {
			return alignsched.New(multi.New(3, func() sched.Scheduler {
				return trim.New(8, func() sched.Scheduler { return naive.New() })
			}))
		},
	}
	for name, factory := range comps {
		t.Run(name, func(t *testing.T) {
			m := 1
			s := factory()
			if s.Machines() > 1 {
				m = s.Machines()
			}
			g, err := workload.NewGenerator(workload.Config{
				Seed: 5, Machines: m, Gamma: 16, Horizon: 2048, MinSpan: 2, Steps: 300,
			})
			if err != nil {
				t.Fatal(err)
			}
			rec, err2 := runAndSummarize(s, g.Sequence())
			if err2 != nil {
				t.Fatal(err2)
			}
			if err := s.SelfCheck(); err != nil {
				t.Fatal(err)
			}
			if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), m); err != nil {
				t.Fatal(err)
			}
			if rec.max > 40 {
				t.Errorf("worst request cost %d implausibly high for 300 requests", rec.max)
			}
			if s.Machines() > 1 && rec.maxMigr > 1 {
				t.Errorf("worst migrations %d > 1", rec.maxMigr)
			}
		})
	}
}

type runStats struct {
	max, maxMigr int
}

func runAndSummarize(s sched.Scheduler, reqs []jobs.Request) (runStats, error) {
	var st runStats
	for i, r := range reqs {
		c, err := sched.Apply(s, r)
		if err != nil {
			return st, fmt.Errorf("request %d (%s): %w", i, r, err)
		}
		if c.Reallocations > st.max {
			st.max = c.Reallocations
		}
		if c.Migrations > st.maxMigr {
			st.maxMigr = c.Migrations
		}
	}
	return st, nil
}
