// Differential tests: run the same request sequences through independent
// implementations and cross-validate their answers.
//
//   - cost accounting: every scheduler's self-reported cost must agree
//     with an assignment-diff measurement taken around each request;
//   - completeness: on feasible aligned sequences, naive pecking order,
//     the reservation scheduler, and EDF must all keep feasible
//     schedules for the same job set;
//   - ablation sanity: both placement policies maintain all invariants.
package realloc

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/multi"
	"repro/internal/naive"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestReportedCostsMatchAssignmentDiffs cross-validates the cost
// accounting of every scheduler against an external observer.
func TestReportedCostsMatchAssignmentDiffs(t *testing.T) {
	factories := map[string]func() sched.Scheduler{
		"core":  func() sched.Scheduler { return core.New() },
		"naive": func() sched.Scheduler { return naive.New() },
		"edf":   func() sched.Scheduler { return edf.New(1, edf.TieByArrival) },
		"multi": func() sched.Scheduler {
			return multi.New(3, func() sched.Scheduler { return core.New() })
		},
	}
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) {
			m := 1
			if name == "multi" {
				m = 3
			}
			g, err := workload.NewGenerator(workload.Config{
				Seed: 17, Machines: m, Gamma: 12, Horizon: 1024, Steps: 250,
			})
			if err != nil {
				t.Fatal(err)
			}
			s := factory()
			before := s.Assignment()
			for i, r := range g.Sequence() {
				c, err := sched.Apply(s, r)
				if err != nil {
					t.Fatalf("request %d (%s): %v", i, r, err)
				}
				after := s.Assignment()
				moved, migrated := before.Diff(after)
				if r.Kind == jobs.Insert {
					moved++ // initial placement convention
				}
				if c.Reallocations != moved {
					t.Fatalf("request %d (%s): reported %d reallocations, observed %d",
						i, r, c.Reallocations, moved)
				}
				if c.Migrations != migrated {
					t.Fatalf("request %d (%s): reported %d migrations, observed %d",
						i, r, c.Migrations, migrated)
				}
				before = after
			}
		})
	}
}

// TestAllSchedulersStayFeasibleOnSameSequence replays one sequence
// through every scheduler and verifies all remain feasible with
// identical active sets.
func TestAllSchedulersStayFeasibleOnSameSequence(t *testing.T) {
	g, err := workload.NewGenerator(workload.Config{Seed: 23, Gamma: 8, Horizon: 2048, Steps: 400})
	if err != nil {
		t.Fatal(err)
	}
	seq := g.Sequence()
	schedulers := map[string]sched.Scheduler{
		"core":        core.New(),
		"naive":       naive.New(),
		"edf":         edf.New(1, edf.TieByArrival),
		"full-stack":  New(),
		"deamortized": New(WithDeamortization()),
	}
	for name, s := range schedulers {
		seqCopy := seq
		if name == "deamortized" {
			// The incremental wrapper needs spans >= 2.
			seqCopy = filterSpan1(seq)
		}
		if _, err := sched.Run(s, seqCopy, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), s.Machines()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// All schedulers that served the full sequence hold the same job set.
	want := len(schedulers["core"].Jobs())
	for _, name := range []string{"naive", "edf", "full-stack"} {
		if got := len(schedulers[name].Jobs()); got != want {
			t.Errorf("%s holds %d jobs, core holds %d", name, got, want)
		}
	}
}

// filterSpan1 removes span-1 inserts and their deletes.
func filterSpan1(seq []jobs.Request) []jobs.Request {
	dropped := map[string]bool{}
	var out []jobs.Request
	for _, r := range seq {
		switch {
		case r.Kind == jobs.Insert && r.Window.Span() < 2:
			dropped[r.Name] = true
		case r.Kind == jobs.Delete && dropped[r.Name]:
		default:
			out = append(out, r)
		}
	}
	return out
}

// TestPlacementPoliciesBothSound runs the ablation variants through the
// full invariant suite; LowestSlot may cost more but must stay correct.
func TestPlacementPoliciesBothSound(t *testing.T) {
	f := func(seed int64) bool {
		g1, err := workload.NewGenerator(workload.Config{Seed: seed, Gamma: 8, Horizon: 1024, Steps: 150})
		if err != nil {
			return false
		}
		seq := g1.Sequence()
		for _, policy := range []core.PlacementPolicy{core.PreferEmpty, core.LowestSlot} {
			s := core.New(core.WithPlacementPolicy(policy))
			if _, err := sched.RunChecked(s, seq, nil); err != nil {
				return false
			}
			if err := s.VerifyLemma8(); err != nil {
				return false
			}
			if feasible.VerifySchedule(s.Jobs(), s.Assignment(), 1) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestNaiveVsCoreCostOrdering: on nested-cascade probes the reservation
// scheduler must beat the naive scheduler once Δ is large.
func TestNaiveVsCoreCostOrdering(t *testing.T) {
	const delta = 1 << 14
	fill := workload.NestedCascade(delta, 0)

	nv := naive.New()
	if _, err := sched.Run(nv, fill, nil); err != nil {
		t.Fatal(err)
	}
	cr := core.New(core.WithMaxIntervals(1 << 24))
	if _, err := sched.Run(cr, fill, nil); err != nil {
		t.Fatal(err)
	}
	worst := func(s sched.Scheduler) int {
		maxC := 0
		for p := 0; p < 20; p++ {
			name := fmt.Sprintf("probe%d", p)
			c, err := s.Insert(jobs.Job{Name: name, Window: jobs.Window{Start: 0, End: 1}})
			if err != nil {
				t.Fatal(err)
			}
			if c.Reallocations > maxC {
				maxC = c.Reallocations
			}
			if _, err := s.Delete(name); err != nil {
				t.Fatal(err)
			}
		}
		return maxC
	}
	nWorst, cWorst := worst(nv), worst(cr)
	if cWorst >= nWorst {
		t.Errorf("reservation worst %d not below naive worst %d at delta=%d", cWorst, nWorst, delta)
	}
	if nWorst < 10 {
		t.Errorf("naive worst %d suspiciously small (cascade not exercised)", nWorst)
	}
}
