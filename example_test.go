package realloc_test

import (
	"fmt"
	"sort"

	realloc "repro"
)

// The basic lifecycle: insert jobs with windows, read the schedule,
// delete. Costs report how many jobs each request rescheduled.
func Example() {
	s := realloc.New()

	for _, j := range []realloc.Job{
		{Name: "a", Window: realloc.Win(0, 8)},
		{Name: "b", Window: realloc.Win(0, 8)},
		{Name: "c", Window: realloc.Win(4, 6)},
	} {
		if _, err := s.Insert(j); err != nil {
			panic(err)
		}
	}

	names := make([]string, 0, 3)
	asn := s.Assignment()
	for name := range asn {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := asn[name]
		fmt.Printf("%s runs in its window: %v\n", name, p.Slot >= 0 && p.Slot < 8)
	}

	cost, _ := s.Delete("b")
	fmt.Printf("deleting b rescheduled %d other jobs\n", cost.Reallocations)
	// Output:
	// a runs in its window: true
	// b runs in its window: true
	// c runs in its window: true
	// deleting b rescheduled 0 other jobs
}

// Multi-machine scheduling guarantees at most one migration per request
// (Theorem 1).
func ExampleNew_multiMachine() {
	s := realloc.New(realloc.WithMachines(3))
	worst := 0
	for i := 0; i < 9; i++ {
		name := fmt.Sprintf("job%d", i)
		if _, err := s.Insert(realloc.Job{Name: name, Window: realloc.Win(0, 64)}); err != nil {
			panic(err)
		}
	}
	// Drain one machine's jobs first: the balance invariant then forces
	// rebalancing migrations — never more than one per request.
	for _, i := range []int{0, 3, 6, 1, 4, 7, 2, 5, 8} {
		cost, err := s.Delete(fmt.Sprintf("job%d", i))
		if err != nil {
			panic(err)
		}
		if cost.Migrations > worst {
			worst = cost.Migrations
		}
	}
	fmt.Printf("worst migrations in one request: %d\n", worst)
	// Output:
	// worst migrations in one request: 1
}

// The EDF baseline shows the brittleness the paper's scheduler avoids.
func ExampleNewEDF() {
	edf := realloc.NewEDF(1)
	robust := realloc.New()

	for i := 0; i < 50; i++ {
		j := realloc.Job{
			Name:   fmt.Sprintf("task%02d", i),
			Window: realloc.Win(0, int64(800+i)), // staggered deadlines
		}
		if _, err := edf.Insert(j); err != nil {
			panic(err)
		}
		if _, err := robust.Insert(j); err != nil {
			panic(err)
		}
	}
	urgent := realloc.Job{Name: "urgent", Window: realloc.Win(0, 1)}
	ce, _ := edf.Insert(urgent)
	cr, _ := robust.Insert(urgent)
	fmt.Printf("EDF rescheduled everyone: %v\n", ce.Reallocations > 50)
	fmt.Printf("reservations rescheduled O(1) jobs: %v\n", cr.Reallocations <= 3)
	// Output:
	// EDF rescheduled everyone: true
	// reservations rescheduled O(1) jobs: true
}
