// Adversary: replay the paper's lower-bound constructions and watch the
// bounds appear in the measurements.
//
//  1. The Lemma 12 toggle chain (no slack): every toggle forces the whole
//     chain of jobs to shift — Θ(s²) total reallocations for any scheduler.
//  2. The EDF brittleness cascade (plenty of slack): EDF still shifts
//     every job on an urgent insert, while the reservation scheduler
//     moves O(1).
//
// Run with: go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	realloc "repro"
)

func main() {
	lemma12()
	fmt.Println()
	brittleness()
}

// lemma12 builds the fully subscribed chain: job j may run at slot j or
// j+1 only. Toggling a forcing job at either end moves every chain job.
func lemma12() {
	const eta = 100
	s := realloc.NewEDF(1)
	for j := 0; j < eta; j++ {
		if _, err := s.Insert(realloc.Job{
			Name:   fmt.Sprintf("chain-%03d", j),
			Window: realloc.Win(int64(j), int64(j)+2),
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("Lemma 12 — a fully subscribed chain of %d jobs (zero slack):\n", eta)
	total := 0
	for cycle := 0; cycle < 3; cycle++ {
		for _, w := range []realloc.Window{realloc.Win(0, 1), realloc.Win(eta, eta+1)} {
			before := s.Assignment()
			name := fmt.Sprintf("force-%d-%d", cycle, w.Start)
			if _, err := s.Insert(realloc.Job{Name: name, Window: w}); err != nil {
				log.Fatal(err)
			}
			mid := s.Assignment()
			m1, _ := before.Diff(mid)
			if _, err := s.Delete(name); err != nil {
				log.Fatal(err)
			}
			m2, _ := mid.Diff(s.Assignment())
			total += m1 + m2 + 1
			fmt.Printf("  toggling a forcing job at %-9v -> %3d chain moves over the 2 requests\n", w, m1+m2)
		}
	}
	fmt.Printf("  total cost of 12 requests: %d — Θ(s·η): quadratic growth, unavoidable without slack\n", total)
}

// brittleness contrasts EDF and the reservation scheduler on the SAME
// heavily underallocated instance.
func brittleness() {
	const n = 200
	build := func(s realloc.Scheduler) {
		for i := 0; i < n; i++ {
			if _, err := s.Insert(realloc.Job{
				Name:   fmt.Sprintf("task-%03d", i),
				Window: realloc.Win(0, int64(16*n+i)), // staggered deadlines, 16x slack
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	probe := func(s realloc.Scheduler) int {
		before := s.Assignment()
		if _, err := s.Insert(realloc.Job{Name: "urgent", Window: realloc.Win(0, 1)}); err != nil {
			log.Fatal(err)
		}
		moved, _ := before.Diff(s.Assignment())
		if _, err := s.Delete("urgent"); err != nil {
			log.Fatal(err)
		}
		return moved + 1
	}

	edf := realloc.NewEDF(1)
	build(edf)
	reservation := realloc.New()
	build(reservation)

	fmt.Printf("EDF brittleness — %d flexible jobs, one urgent insert at slot 0 (16x slack):\n", n)
	fmt.Printf("  EDF         rescheduled %3d jobs\n", probe(edf))
	fmt.Printf("  reservation rescheduled %3d jobs\n", probe(reservation))
	fmt.Println("  same request, same slack: the reservation system absorbs it in O(1).")
}
