// Clinic: the paper's motivating example. Patients call to book
// appointments within availability windows, some cancel, and walk-ins
// demand urgent slots. The reallocating scheduler keeps everyone booked
// while rescheduling very few existing patients per request — compare
// the same stream served by an EDF-style rebooking desk.
//
// Run with: go run ./examples/clinic
package main

import (
	"fmt"
	"log"
	"math/rand"

	realloc "repro"
)

// day is 32 quarter-hour slots: a clinic morning.
const horizon = 512

func main() {
	rng := rand.New(rand.NewSource(2013)) // the paper's vintage

	reservation := realloc.New()
	edf := realloc.NewEDF(1)

	type stats struct{ requests, moved, worst int }
	var rs, es stats

	apply := func(name string, insert bool, w realloc.Window) {
		var req realloc.Request
		if insert {
			req = realloc.InsertReq(name, w.Start, w.End)
		} else {
			req = realloc.DeleteReq(name)
		}
		for _, side := range []struct {
			s  realloc.Scheduler
			st *stats
		}{{reservation, &rs}, {edf, &es}} {
			c, err := realloc.Apply(side.s, req)
			if err != nil {
				log.Fatalf("%s: %v", req, err)
			}
			side.st.requests++
			side.st.moved += c.Reallocations
			if c.Reallocations > side.st.worst {
				side.st.worst = c.Reallocations
			}
		}
	}

	// Morning rush: 40 patients book flexible windows.
	booked := []string{}
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("patient-%02d", i)
		start := rng.Int63n(horizon / 2)
		span := int64(64 + rng.Intn(192)) // half-hour to 3-hour flexibility
		end := start + span
		if end > horizon {
			end = horizon
		}
		apply(name, true, realloc.Win(start, end))
		booked = append(booked, name)
	}

	// Midday churn: cancellations and urgent walk-ins with one-slot
	// windows (the celebrity at the restaurant).
	urgent := 0
	for round := 0; round < 20; round++ {
		// One cancellation...
		i := rng.Intn(len(booked))
		apply(booked[i], false, realloc.Window{})
		booked = append(booked[:i], booked[i+1:]...)
		// ...and one walk-in demanding a specific slot region.
		name := fmt.Sprintf("walkin-%02d", urgent)
		urgent++
		start := rng.Int63n(horizon - 8)
		apply(name, true, realloc.Win(start, start+8))
		booked = append(booked, name)
	}

	fmt.Printf("clinic day: %d requests served, %d patients on the books\n\n",
		rs.requests, reservation.Active())
	fmt.Printf("%-24s %18s %18s\n", "scheduler", "reschedules/request", "worst single request")
	fmt.Printf("%-24s %18.2f %18d\n", "reservation (paper)",
		float64(rs.moved)/float64(rs.requests), rs.worst)
	fmt.Printf("%-24s %18.2f %18d\n", "EDF rebooking desk",
		float64(es.moved)/float64(es.requests), es.worst)
	fmt.Println("\npatients dislike being rescheduled; the reservation scheduler" +
		"\nbounds that pain per booking, EDF does not.")
}
