// Cloud: batch jobs with deadlines scheduled across a pool of machines.
// Jobs arrive and finish continuously; the scheduler keeps a feasible
// plan while migrating at most one job between machines per request —
// migrations are expensive (container state must move), so the Theorem 1
// bound matters operationally.
//
// The second half drives the same pool through the concurrent sharded
// front-end: four submitter goroutines fire requests at a 4-shard
// scheduler and the per-shard cost report shows how the load spread.
//
// The third section autoscales: the sharded pool grows for a traffic
// burst and shrinks back afterward, with the resize bill (evictions and
// migrations) printed next to what a rebuild-from-scratch would pay.
//
// Run with: go run ./examples/cloud
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	realloc "repro"
)

const (
	machines = 4
	horizon  = 4096
)

func main() {
	s := realloc.New(realloc.WithMachines(machines))
	rng := rand.New(rand.NewSource(7))

	totalMigrations, totalReallocs, worstMigr := 0, 0, 0
	running := []string{}
	id := 0

	for step := 0; step < 2000; step++ {
		var (
			cost realloc.Cost
			err  error
		)
		if len(running) > 120 && rng.Intn(2) == 0 {
			// A batch job finished.
			i := rng.Intn(len(running))
			cost, err = s.Delete(running[i])
			running = append(running[:i], running[i+1:]...)
		} else {
			// A new batch job with a deadline: pick an arrival point and a
			// completion window wide enough to keep the pool underallocated.
			name := fmt.Sprintf("batch-%05d", id)
			id++
			start := rng.Int63n(horizon * 3 / 4)
			span := int64(256 + rng.Intn(1024))
			end := start + span
			if end > horizon {
				end = horizon
			}
			cost, err = s.Insert(realloc.Job{Name: name, Window: realloc.Win(start, end)})
			running = append(running, name)
		}
		if err != nil {
			log.Fatalf("step %d: %v", step, err)
		}
		totalMigrations += cost.Migrations
		totalReallocs += cost.Reallocations
		if cost.Migrations > worstMigr {
			worstMigr = cost.Migrations
		}
	}

	perMachine := make([]int, machines)
	for _, p := range s.Assignment() {
		perMachine[p.Machine]++
	}

	fmt.Printf("cloud pool: %d machines, %d jobs in flight after 2000 requests\n\n", machines, s.Active())
	fmt.Printf("total reallocations: %d (%.2f per request)\n",
		totalReallocs, float64(totalReallocs)/2000)
	fmt.Printf("total migrations:    %d (%.3f per request, worst single request %d)\n",
		totalMigrations, float64(totalMigrations)/2000, worstMigr)
	fmt.Printf("\nload per machine:\n")
	for i, n := range perMachine {
		fmt.Printf("  machine %d: %3d jobs %s\n", i, n, bar(n))
	}
	fmt.Println("\nTheorem 1 guarantees at most ONE migration per request —" +
		"\nobserve worst single request above.")

	shardedVariant()
}

// shardedVariant replays a similar churn concurrently: four submitter
// goroutines with disjoint job namespaces hammer a 4-shard front-end —
// inserts through the synchronous path, deletes fire-and-forget through
// the asynchronous one, with a single Drain barrier at the end.
func shardedVariant() {
	const submitters = 4
	s := realloc.NewSharded(realloc.WithMachines(machines), realloc.WithShards(4))
	defer s.Close()

	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			var running []string
			for step := 0; step < 500; step++ {
				if len(running) > 30 && rng.Intn(2) == 0 {
					// A job finished: fire-and-forget the delete. The
					// insert was synchronous, so the job is settled and
					// the async delete cannot outrun it; completion
					// lands in the shard report.
					i := rng.Intn(len(running))
					if err := s.Submit(realloc.DeleteReq(running[i])); err != nil {
						log.Fatalf("submitter %d: %v", g, err)
					}
					running = append(running[:i], running[i+1:]...)
					continue
				}
				name := fmt.Sprintf("pool%d-%05d", g, step)
				start := rng.Int63n(horizon * 3 / 4)
				span := int64(256 + rng.Intn(1024))
				end := start + span
				if end > horizon {
					end = horizon
				}
				if _, err := s.Insert(realloc.Job{Name: name, Window: realloc.Win(start, end)}); err != nil {
					log.Fatalf("submitter %d: %v", g, err)
				}
				running = append(running, name)
			}
		}(g)
	}
	wg.Wait()
	if err := s.Drain(); err != nil {
		log.Fatalf("drain: %v", err)
	}
	if err := realloc.Verify(s); err != nil {
		log.Fatalf("verify: %v", err)
	}

	fmt.Printf("\n--- sharded front-end: %d submitters x 500 requests, %d shards over %d machines ---\n",
		submitters, s.Shards(), s.Machines())
	fmt.Println(s.Report())
	fmt.Println("\nEach shard is an independent Theorem 1 stack; consistent hashing" +
		"\nof job names spread the concurrent load above.")

	autoscaleVariant()
}

// autoscaleVariant breathes the machine pool under live traffic: scale
// up for a burst (no job moves), scale down after it drains (only the
// drained machines' jobs move). A rebuild-from-scratch would instead
// move every resident job at every pool change.
func autoscaleVariant() {
	s := realloc.NewSharded(realloc.WithMachines(machines), realloc.WithShards(4))
	defer s.Close()
	rng := rand.New(rand.NewSource(11))

	var running []string
	churn := func(steps, survivors int) {
		for i := 0; i < steps; i++ {
			if len(running) > survivors && rng.Intn(2) == 0 {
				k := rng.Intn(len(running))
				if _, err := s.Delete(running[k]); err != nil {
					log.Fatalf("autoscale delete: %v", err)
				}
				running = append(running[:k], running[k+1:]...)
				continue
			}
			name := fmt.Sprintf("auto-%05d", len(running)+i*7919)
			start := rng.Int63n(horizon * 3 / 4)
			end := start + int64(256+rng.Intn(1024))
			if end > horizon {
				end = horizon
			}
			if _, err := s.Insert(realloc.Job{Name: name, Window: realloc.Win(start, end)}); err != nil {
				continue // a smaller pool may be momentarily full
			}
			running = append(running, name)
		}
	}

	fmt.Printf("\n--- autoscaling: the pool breathes %d -> %d -> %d machines under load ---\n",
		machines, 2*machines, machines)
	churn(400, 60)
	resident := s.Active()

	up, err := s.Resize(2 * machines)
	if err != nil {
		log.Fatalf("scale-up: %v", err)
	}
	fmt.Printf("scale-up   to %2d machines: %3d resident jobs, %d migrations (growing moves nothing)\n",
		s.Machines(), resident, up.Cost.Migrations)
	churn(600, 160) // the burst

	// Burst over: drain back toward the steady population, then shrink.
	for len(running) > 60 {
		k := rng.Intn(len(running))
		if _, err := s.Delete(running[k]); err != nil {
			log.Fatalf("autoscale drain: %v", err)
		}
		running = append(running[:k], running[k+1:]...)
	}
	resident = s.Active()
	down, err := s.Resize(machines)
	if err != nil {
		log.Fatalf("scale-down: %v", err)
	}
	fmt.Printf("scale-down to %2d machines: %3d resident jobs, %d migrations (vs %d for a rebuild)\n",
		s.Machines(), resident, down.Cost.Migrations, resident)
	fmt.Printf("            %d jobs evicted across shards, %d re-placed, %d dropped\n",
		down.Evicted, down.Reinserted, down.Dropped)

	if err := realloc.Verify(s); err != nil {
		log.Fatalf("autoscale verify: %v", err)
	}
	fmt.Println("\nShrinking moved only the drained machines' jobs — Theorem 1's" +
		"\nmigration discipline extended to the machine pool itself.")
}

func bar(n int) string {
	out := make([]byte, n/2)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
