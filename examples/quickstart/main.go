// Quickstart: insert a handful of jobs with deadlines, delete one, and
// watch how few jobs the reallocating scheduler moves per request.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	realloc "repro"
	"repro/internal/viz"
)

func main() {
	// A single-machine scheduler with the full Theorem 1 stack:
	// alignment, trimming, and reservation-based pecking order.
	s := realloc.New()

	// Jobs are unit length; a window [a, d) means "run me in one of the
	// timeslots a..d-1". Windows need not be aligned or disjoint.
	inserts := []realloc.Job{
		{Name: "backup", Window: realloc.Win(0, 100)},
		{Name: "report", Window: realloc.Win(10, 30)},
		{Name: "build", Window: realloc.Win(10, 14)},
		{Name: "deploy", Window: realloc.Win(12, 13)}, // only slot 12 works
		{Name: "scan", Window: realloc.Win(0, 50)},
	}
	for _, j := range inserts {
		cost, err := s.Insert(j)
		if err != nil {
			log.Fatalf("insert %s: %v", j.Name, err)
		}
		fmt.Printf("insert %-7s window %-9v -> %d job(s) rescheduled\n",
			j.Name, j.Window, cost.Reallocations)
	}

	fmt.Println("\ncurrent schedule (jobs shown by first letter, '-' marks each window):")
	if err := viz.Render(os.Stdout, s.Jobs(), s.Assignment(), 1, viz.Options{
		From: 0, To: 40, ShowWindows: true,
	}); err != nil {
		log.Fatal(err)
	}

	cost, err := s.Delete("report")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelete report -> %d job(s) rescheduled\n", cost.Reallocations)
	fmt.Printf("%d jobs remain active\n", s.Active())
}
