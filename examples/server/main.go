// Serving demo: an in-process reallocd, two tenants sharing it over
// loopback TCP, and the namespace isolation that makes identical job
// names coexist.
//
//	go run ./examples/server
package main

import (
	"fmt"
	"log"

	realloc "repro"
	"repro/client"
	"repro/internal/server"
)

func main() {
	srv, err := server.Listen("127.0.0.1:0", server.Config{
		NewScheduler: func(tenant string) (*realloc.Sharded, error) {
			return realloc.NewSharded(realloc.WithShards(2), realloc.WithMachines(4)), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("reallocd listening on %s\n\n", srv.Addr())

	for _, tenant := range []string{"clinic-north", "clinic-south"} {
		c, err := client.Dial(srv.Addr().String(), tenant)
		if err != nil {
			log.Fatal(err)
		}
		// Both tenants book the same patient names into the same
		// windows — separate namespaces, no conflict.
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("patient-%d", i)
			if err := c.Submit(realloc.InsertReq(name, int64(i%3)*8, int64(i%3)*8+8)); err != nil {
				log.Fatalf("%s: %s: %v", tenant, name, err)
			}
		}
		snap, err := c.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d jobs on %d machines\n", tenant, len(snap.Jobs), snap.Machines)
		for _, pj := range snap.Jobs {
			fmt.Printf("  %-10s window [%d,%d) -> machine %d, slot %d\n",
				pj.Job.Name, pj.Job.Window.Start, pj.Job.Window.End,
				pj.Placement.Machine, pj.Placement.Slot)
		}
		fmt.Println()
		c.Close()
	}
}
