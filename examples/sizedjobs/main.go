// Sizedjobs: the paper's first open question, explored live. Jobs of
// power-of-two sizes up to k share a machine with unit jobs; sliding the
// big job across the timeline forces Ω(k) reallocations per sweep
// (Observation 13), and the block-aligned greedy scheduler matches it
// with an O(k) upper bound per request.
//
// Run with: go run ./examples/sizedjobs
package main

import (
	"fmt"
	"log"

	"repro/internal/jobs"
	"repro/internal/sized"
)

func main() {
	const k, gamma = 8, 2
	horizon := int64(2 * gamma * k)

	s := sized.New()
	window := jobs.Window{Start: 0, End: horizon}

	fmt.Printf("timeline of %d slots, one size-%d job among %d unit jobs\n\n", horizon, k, k)

	// k unit jobs anywhere on the timeline.
	for i := 0; i < k; i++ {
		if _, err := s.Insert(sized.Job{Name: fmt.Sprintf("unit-%02d", i), Size: 1, Window: window}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := s.Insert(sized.Job{Name: "tank", Size: k,
		Window: jobs.Window{Start: 0, End: k}}); err != nil {
		log.Fatal(err)
	}

	// Slide the big job across every aligned position and watch the cost.
	total := 0
	for pos := int64(1); pos < horizon/k; pos++ {
		if _, err := s.Delete("tank"); err != nil {
			log.Fatal(err)
		}
		c, err := s.Insert(sized.Job{Name: "tank", Size: k,
			Window: jobs.Window{Start: pos * k, End: (pos + 1) * k}})
		if err != nil {
			log.Fatal(err)
		}
		total += c.Reallocations
		fmt.Printf("slide to [%2d,%2d): %d jobs rescheduled (O(k)=%d bound)\n",
			pos*k, (pos+1)*k, c.Reallocations, k+1)
		if err := s.SelfCheck(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\none full sweep cost: %d — at least k=%d (Observation 13), at most (k+1) per slide\n",
		total, k)
	fmt.Println("the bounds meet: this is why the paper restricts its main theorem to unit jobs.")
}
