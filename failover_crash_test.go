package realloc_test

// The chaos failover harness: a real primary process (server + WAL +
// replication source) is SIGKILLed mid-burst while an in-process warm
// follower tails its WAL. The follower must self-promote within a
// bounded time, and every write the dead primary ACKNOWLEDGED must be
// present in the promoted schedule — the zero-lost-acks contract. The
// primary runs as a separate OS process (the test binary re-execs
// itself, the standard helper-process pattern) because nothing short
// of kill -9 proves the guarantee: an in-process "crash" cannot model
// the kernel flushing already-written socket bytes after the process
// is gone.

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	realloc "repro"
	"repro/client"
	"repro/internal/jobs"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wal"
)

const failoverHelperEnv = "REALLOC_FAILOVER_PRIMARY_DIR"

// TestFailoverPrimaryProcess is not a test: it is the primary process
// body, run only when the harness re-execs the test binary with the
// env gate set.
func TestFailoverPrimaryProcess(t *testing.T) {
	walRoot := os.Getenv(failoverHelperEnv)
	if walRoot == "" {
		t.Skip("helper process body; run via TestFailoverCrashPromote")
	}
	src := repl.NewSource(repl.SourceConfig{Epoch: 0})
	replAddr, err := src.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("repl listen: %v", err)
	}
	cfg := server.Config{
		NewScheduler: func(tenant string) (*shard.Scheduler, error) {
			dir := walRoot + "/" + repl.TenantDir(tenant)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
			obs := src.Export(tenant, dir)
			s, _, err := realloc.OpenRecovered(dir,
				realloc.WithShards(2), realloc.WithMachines(8),
				realloc.WithWALObserver(obs))
			return s, err
		},
	}
	s, err := server.Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	// The parent parses these two lines to wire everything up.
	fmt.Printf("PRIMARY_ADDR=%s\n", s.Addr())
	fmt.Printf("REPL_ADDR=%s\n", replAddr)
	os.Stdout.Sync()
	// Serve until killed. The parent SIGKILLs this process; nothing
	// below the select runs.
	select {}
}

// ackTracker mirrors what reallocload's -ackedlog records: the set of
// names whose insert was acked OK and that no delete attempt touched.
// That set MUST survive the failover. A delete attempt tombstones the
// name permanently — the insert's ack can arrive after the delete was
// already submitted (they are pipelined), and must not resurrect it.
type ackTracker struct {
	mu       sync.Mutex
	required map[string]bool
	deleted  map[string]bool
}

func (a *ackTracker) ackedInsert(name string) {
	a.mu.Lock()
	if !a.deleted[name] {
		a.required[name] = true
	}
	a.mu.Unlock()
}

func (a *ackTracker) attemptDelete(name string) {
	a.mu.Lock()
	a.deleted[name] = true
	delete(a.required, name)
	a.mu.Unlock()
}

func (a *ackTracker) snapshot() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.required))
	for n := range a.required {
		names = append(names, n)
	}
	return names
}

func TestFailoverCrashPromote(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a helper process and runs a multi-second burst")
	}
	primaryWAL := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=TestFailoverPrimaryProcess", "-test.v")
	cmd.Env = append(os.Environ(), failoverHelperEnv+"="+primaryWAL)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start primary: %v", err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
		}
		cmd.Wait()
	}()

	var primaryAddr, replAddr string
	sc := bufio.NewScanner(stdout)
	deadline := time.Now().Add(30 * time.Second)
	for (primaryAddr == "" || replAddr == "") && sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "PRIMARY_ADDR="); ok {
			primaryAddr = v
		}
		if v, ok := strings.CutPrefix(line, "REPL_ADDR="); ok {
			replAddr = v
		}
		if time.Now().After(deadline) {
			break
		}
	}
	if primaryAddr == "" || replAddr == "" {
		t.Fatalf("primary process never announced its addresses")
	}
	// Keep draining the pipe so the child never blocks on stdout.
	go func() {
		for sc.Scan() {
		}
	}()

	// The warm follower, in-process: self-promotes once the primary
	// has been dead for PromoteAfter.
	fol, err := repl.NewFollower(repl.FollowerConfig{
		Primary: replAddr,
		Dir:     t.TempDir(),
		NewScheduler: func(_ string, ck *wal.Checkpoint) (*shard.Scheduler, error) {
			return realloc.NewShardedFromCheckpoint(ck, realloc.WithShards(2), realloc.WithMachines(8))
		},
		PromoteAfter: 500 * time.Millisecond,
		RedialEvery:  50 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("follower: %v", err)
	}
	defer fol.Close() // stops the post-promotion fencing dialer
	runErr := make(chan error, 1)
	go func() { runErr <- fol.Run() }()

	// The burst: two tenants, pipelined inserts with delete churn,
	// tracking exactly what the primary acked.
	const tenants = 2
	const perTenant = 2000
	const killAfterAcks = 400
	track := &ackTracker{required: make(map[string]bool), deleted: make(map[string]bool)}
	acks := make(chan struct{}, tenants*perTenant)

	clients := make([]*client.Client, tenants)
	for ti := range clients {
		c, err := client.Dial(primaryAddr, fmt.Sprintf("chaos-%d", ti))
		if err != nil {
			t.Fatalf("dial tenant %d: %v", ti, err)
		}
		clients[ti] = c
		defer c.Close()
	}

	// Wait for the follower to be warm on both tenants before the
	// burst: the zero-lost-acks contract covers installed followers.
	for ti, c := range clients {
		if err := c.Submit(jobs.InsertReq(fmt.Sprintf("warmup-%d", ti), 1<<40, 1<<40+8)); err != nil {
			t.Fatalf("warmup insert %d: %v", ti, err)
		}
		track.ackedInsert(fmt.Sprintf("warmup-%d", ti))
	}
	waitFor(t, "follower warm on both tenants", func() bool {
		st := fol.Stats()
		return st.Tenants == tenants && st.Warm == tenants
	})

	var wg sync.WaitGroup
	for ti, c := range clients {
		wg.Add(1)
		go func(ti int, c *client.Client) {
			defer wg.Done()
			tenant := fmt.Sprintf("chaos-%d", ti)
			var inner sync.WaitGroup
			for i := 0; i < perTenant; i++ {
				name := fmt.Sprintf("%s-%06d", tenant, i)
				var req jobs.Request
				insert := true
				if i%5 == 4 {
					insert = false
					name = fmt.Sprintf("%s-%06d", tenant, i-1)
					req = jobs.DeleteReq(name)
					track.attemptDelete(name)
				} else {
					s := int64(i) * 16
					req = jobs.InsertReq(name, s, s+8)
				}
				p, err := c.SubmitAsync(req, 0)
				if err != nil {
					if !errors.Is(err, client.ErrClosed) {
						t.Errorf("%s: submit %d failed untyped: %v", tenant, i, err)
					}
					return // primary is dead; the burst is over for this tenant
				}
				inner.Add(1)
				go func(name string, insert bool) {
					defer inner.Done()
					err := p.Wait()
					switch {
					case err == nil:
						if insert {
							track.ackedInsert(name)
						}
						acks <- struct{}{}
					case errors.Is(err, client.ErrClosed):
						// In limbo: the kill raced this request. Fine.
					case errors.Is(err, client.ErrDuplicate), errors.Is(err, client.ErrUnknownJob),
						errors.Is(err, client.ErrOverload), errors.Is(err, client.ErrInfeasible):
						// Per-request verdict; not acked OK, so not required.
					default:
						t.Errorf("%s: %s resolved untyped: %v", tenant, name, err)
					}
				}(name, insert)
				// Pace lightly so the kill lands genuinely mid-burst.
				if i%64 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
			inner.Wait()
		}(ti, c)
	}

	// Kill -9 the primary mid-burst.
	for n := 0; n < killAfterAcks; n++ {
		<-acks
	}
	killAt := time.Now()
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill primary: %v", err)
	}
	killed = true
	t.Logf("primary SIGKILLed after %d acks", killAfterAcks)

	wg.Wait() // every Pending has resolved, typed

	// Bounded recovery: the follower must promote well inside
	// PromoteAfter + redial slack + promotion work.
	const recoveryBound = 15 * time.Second
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("follower run: %v", err)
		}
	case <-time.After(recoveryBound):
		t.Fatalf("follower did not promote within %v of the kill", recoveryBound)
	}
	recovery := time.Since(killAt)
	st := fol.Stats()
	t.Logf("promoted: epoch=%d records=%d requests=%d failures=%d promote_ms=%.1f recovery=%v",
		st.Epoch, st.Records, st.Requests, st.Failures, st.PromoteMS, recovery)
	if recovery > recoveryBound {
		t.Fatalf("recovery took %v, bound is %v", recovery, recoveryBound)
	}
	if st.Epoch != 1 {
		t.Fatalf("promoted epoch = %d, want 1", st.Epoch)
	}

	// Zero lost acks: every name the dead primary acked (and no delete
	// touched) is in the promoted schedule.
	lost := 0
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("chaos-%d", ti)
		s := fol.Adopt(tenant)
		if s == nil {
			t.Fatalf("no promoted scheduler for %s", tenant)
		}
		snap := s.Snapshot()
		have := make(map[string]bool, len(snap.Jobs))
		for _, j := range snap.Jobs {
			have[j.Name] = true
		}
		for _, name := range track.snapshot() {
			if !strings.HasPrefix(name, tenant+"-") && !strings.HasPrefix(name, "warmup-") {
				continue
			}
			if strings.HasPrefix(name, "warmup-") && name != fmt.Sprintf("warmup-%d", ti) {
				continue
			}
			if !have[name] {
				if lost < 10 {
					t.Errorf("LOST ACK: %s was acked by the primary but is missing after failover", name)
				}
				lost++
			}
		}
		s.Close()
	}
	if lost > 0 {
		t.Fatalf("%d acked writes lost in failover", lost)
	}
	t.Logf("zero lost acks across %d required names", len(track.snapshot()))
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
