// Package align implements the paper's alignment machinery:
//
//   - ALIGNED(W): the largest aligned window contained in an arbitrary
//     window W (Section 5); |ALIGNED(W)| >= |W|/4.
//   - The tower-function level thresholds L1 = 32, L_{l+1} = 2^{Ll/4}
//     of the interval decomposition (Section 4).
//   - The decomposition of a level-l window into its aligned level-l
//     intervals of exactly Ll slots.
//
// A window is aligned when its span is a power of two and its start is a
// multiple of its span. Recursively aligned windows are laminar: any two
// are disjoint or nested.
package align

import (
	"fmt"

	"repro/internal/jobs"
	"repro/internal/mathx"
)

// BaseLevelSpan is L1: the largest span handled by the base level of the
// reservation scheduler. Windows with span <= BaseLevelSpan are level-0
// ("base") windows scheduled by constant-depth pecking order.
const BaseLevelSpan = int64(32) // 2^5, the paper's L1 = 2^5

// NumLevels is the number of reservation levels representable with spans
// up to mathx.MaxSpan = 2^62: level 1 covers (32, 256], level 2 covers
// (256, 2^62]. (The paper's L3 = 2^64 exceeds every representable span,
// so level 2 is the top level in practice.)
const NumLevels = 3 // levels 0, 1, 2

// levelBounds[l] is L_l, the exclusive lower span bound of level l.
// Level l handles spans in (levelBounds[l], levelBounds[l+1]].
var levelBounds = [NumLevels + 1]int64{
	1,             // L0: base level handles spans (1, 32]... see note below
	32,            // L1 = 2^5
	256,           // L2 = 2^{32/4} = 2^8
	mathx.MaxSpan, // L3 is 2^64 in the paper; clamped to MaxSpan
}

// LevelThreshold returns L_l for l in [0, NumLevels]. L_0 is reported as 1.
func LevelThreshold(l int) int64 {
	if l < 0 || l > NumLevels {
		panic(fmt.Sprintf("align: LevelThreshold(%d) out of range", l))
	}
	return levelBounds[l]
}

// LevelOfSpan returns the reservation level of an aligned span:
// 0 for spans <= 32, 1 for (32, 256], 2 for (256, 2^62].
// It panics if span is not a positive power of two.
func LevelOfSpan(span int64) int {
	if !mathx.IsPow2(span) {
		panic(fmt.Sprintf("align: LevelOfSpan of non-power-of-two %d", span))
	}
	switch {
	case span <= levelBounds[1]:
		return 0
	case span <= levelBounds[2]:
		return 1
	default:
		return 2
	}
}

// IntervalSpan returns the span Ll of level-l intervals, for l >= 1.
// Level-l windows are partitioned into aligned blocks of exactly this
// many slots. (Level 0 has no intervals; its jobs are scheduled by the
// base-level pecking-order scheduler.)
func IntervalSpan(l int) int64 {
	if l < 1 || l >= NumLevels {
		panic(fmt.Sprintf("align: IntervalSpan(%d) out of range [1,%d]", l, NumLevels-1))
	}
	return levelBounds[l]
}

// NumSpansAtLevel returns how many distinct aligned spans exist at level
// l >= 1: spans 2*Ll, 4*Ll, ..., L_{l+1}. The paper's Equation 1 bounds
// this by lg(L_{l+1}) = Ll/4.
func NumSpansAtLevel(l int) int {
	lo := mathx.Log2Exact(levelBounds[l])
	hi := mathx.Log2Exact(levelBounds[l+1])
	return hi - lo
}

// SpansAtLevel returns the distinct aligned spans of level l >= 1 in
// increasing order: 2*Ll, 4*Ll, ..., L_{l+1}.
func SpansAtLevel(l int) []int64 {
	return spanTable[l]
}

// spanTable precomputes SpansAtLevel for every level: the spans are a
// pure function of the constant tower bounds, and interval creation
// calls this on the reservation hot path. Callers must not mutate the
// returned slice.
var spanTable = func() [NumLevels][]int64 {
	var tbl [NumLevels][]int64
	for l := 0; l < NumLevels; l++ {
		spans := make([]int64, 0, NumSpansAtLevel(l))
		for s := 2 * levelBounds[l]; s <= levelBounds[l+1] && s > 0; s *= 2 {
			spans = append(spans, s)
		}
		tbl[l] = spans
	}
	return tbl
}()

// Aligned returns ALIGNED(W): a largest aligned window contained in W.
// When several largest aligned windows exist the leftmost is returned,
// making the reduction deterministic. The result's span is at least
// span(W)/4 (Section 5). Windows entirely at negative times have no
// aligned sub-window of span > ... alignment requires Start >= 0; the
// caller must supply windows with End > 0. Aligned panics if no aligned
// sub-window exists (possible only when W ⊆ (-inf, 1) misses slot 0).
func Aligned(w jobs.Window) jobs.Window {
	if w.Span() <= 0 {
		panic(fmt.Sprintf("align: Aligned of empty window %v", w))
	}
	// Try spans from the largest power of two <= span(W) downward. For
	// each candidate span s, the leftmost s-aligned start inside W is
	// AlignUp(W.Start, s); it fits iff start+s <= W.End.
	for s := mathx.FloorPow2(w.Span()); s >= 1; s /= 2 {
		start := mathx.AlignUp(mathx.MaxI64(w.Start, 0), s)
		if start+s <= w.End {
			return jobs.Window{Start: start, End: start + s}
		}
	}
	panic(fmt.Sprintf("align: window %v contains no aligned sub-window (negative times?)", w))
}

// EnclosingAligned returns the unique aligned window of the given span
// that contains timeslot t. span must be a power of two and t >= 0.
func EnclosingAligned(t jobs.Time, span int64) jobs.Window {
	if !mathx.IsPow2(span) {
		panic(fmt.Sprintf("align: EnclosingAligned span %d not a power of two", span))
	}
	if t < 0 {
		panic(fmt.Sprintf("align: EnclosingAligned of negative time %d", t))
	}
	start := mathx.AlignDown(t, span)
	return jobs.Window{Start: start, End: start + span}
}

// IntervalsOf decomposes an aligned level-l window (l >= 1) into its
// level-l intervals, returned in increasing order. The window's span must
// be a multiple (indeed a power-of-two multiple) of IntervalSpan(l).
func IntervalsOf(w jobs.Window, l int) []jobs.Window {
	is := IntervalSpan(l)
	if !w.IsAligned() || w.Span()%is != 0 || w.Span() <= is {
		panic(fmt.Sprintf("align: IntervalsOf(%v, %d): not a level-%d window", w, l, l))
	}
	n := w.Span() / is
	out := make([]jobs.Window, 0, n)
	for s := w.Start; s < w.End; s += is {
		out = append(out, jobs.Window{Start: s, End: s + is})
	}
	return out
}

// IntervalIndex returns which level-l interval of window w contains
// timeslot t, as an index in [0, span(w)/Ll).
func IntervalIndex(w jobs.Window, l int, t jobs.Time) int64 {
	if !w.Contains(t) {
		panic(fmt.Sprintf("align: IntervalIndex: %d not in %v", t, w))
	}
	return (t - w.Start) / IntervalSpan(l)
}

// VerifyRecursivelyAligned reports an error naming the first job whose
// window is not aligned, or nil if all are. (Recursive alignment of a set
// is equivalent to every member being aligned, since aligned windows are
// automatically laminar.)
func VerifyRecursivelyAligned(js []jobs.Job) error {
	for _, j := range js {
		if !j.Window.IsAligned() {
			return fmt.Errorf("align: job %q window %v is not aligned", j.Name, j.Window)
		}
	}
	return nil
}

// Laminar reports whether two aligned windows satisfy the laminar
// property (equal, disjoint, or nested). For genuinely aligned windows
// this always holds; the function exists for property tests.
func Laminar(a, b jobs.Window) bool {
	if !a.Overlaps(b) {
		return true
	}
	return a.ContainsWindow(b) || b.ContainsWindow(a)
}
