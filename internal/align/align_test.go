package align

import (
	"testing"
	"testing/quick"

	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/workload"
)

func win(start, end int64) jobs.Window { return jobs.Window{Start: start, End: end} }

func TestLevelThresholds(t *testing.T) {
	if LevelThreshold(1) != 32 {
		t.Errorf("L1 = %d, want 32", LevelThreshold(1))
	}
	if LevelThreshold(2) != 256 {
		t.Errorf("L2 = %d, want 256 (2^{32/4})", LevelThreshold(2))
	}
	if LevelThreshold(3) != mathx.MaxSpan {
		t.Errorf("L3 = %d, want MaxSpan", LevelThreshold(3))
	}
	// The paper's recurrence: Ll = 4*lg(L_{l+1}) for l >= 1.
	if LevelThreshold(1) != 4*int64(mathx.Log2Exact(LevelThreshold(2))) {
		t.Error("L1 != 4*lg(L2)")
	}
}

func TestLevelOfSpan(t *testing.T) {
	cases := []struct {
		span int64
		want int
	}{
		{1, 0}, {2, 0}, {32, 0},
		{64, 1}, {128, 1}, {256, 1},
		{512, 2}, {1 << 20, 2}, {1 << 62, 2},
	}
	for _, c := range cases {
		if got := LevelOfSpan(c.span); got != c.want {
			t.Errorf("LevelOfSpan(%d) = %d, want %d", c.span, got, c.want)
		}
	}
}

func TestLevelOfSpanPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for span 48")
		}
	}()
	LevelOfSpan(48)
}

func TestIntervalSpan(t *testing.T) {
	if IntervalSpan(1) != 32 || IntervalSpan(2) != 256 {
		t.Errorf("IntervalSpan = %d,%d want 32,256", IntervalSpan(1), IntervalSpan(2))
	}
}

func TestNumSpansAtLevel(t *testing.T) {
	// Level 1: spans 64, 128, 256 -> 3 = lg(256)-lg(32).
	if got := NumSpansAtLevel(1); got != 3 {
		t.Errorf("NumSpansAtLevel(1) = %d, want 3", got)
	}
	// Equation 1: number of distinct spans <= lg(L_{l+1}) = Ll/4.
	if int64(NumSpansAtLevel(1)) > LevelThreshold(1)/4 {
		t.Error("Equation 1 violated at level 1")
	}
	if int64(NumSpansAtLevel(2)) > LevelThreshold(2)/4 {
		t.Error("Equation 1 violated at level 2")
	}
	got := SpansAtLevel(1)
	want := []int64{64, 128, 256}
	if len(got) != len(want) {
		t.Fatalf("SpansAtLevel(1) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SpansAtLevel(1) = %v, want %v", got, want)
		}
	}
}

func TestAlignedExamples(t *testing.T) {
	cases := []struct {
		in   jobs.Window
		want jobs.Window
	}{
		{win(0, 8), win(0, 8)},   // already aligned
		{win(1, 9), win(4, 8)},   // span 8 -> aligned span 4
		{win(3, 4), win(3, 4)},   // span 1 always aligned
		{win(5, 12), win(8, 12)}, // span 7 -> span 4 at 8
		{win(1, 16), win(8, 16)}, // span 15 -> span 8
		{win(0, 1024), win(0, 1024)},
		{win(7, 8), win(7, 8)},
	}
	for _, c := range cases {
		if got := Aligned(c.in); !got.Equal(c.want) {
			t.Errorf("Aligned(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property (Lemma 10 precondition): ALIGNED(W) ⊆ W, is aligned, and has
// span >= span(W)/4.
func TestAlignedProperty(t *testing.T) {
	f := func(sRaw uint16, spanRaw uint16) bool {
		start := int64(sRaw)
		span := int64(spanRaw%4096) + 1
		w := win(start, start+span)
		a := Aligned(w)
		return a.IsAligned() && w.ContainsWindow(a) && 4*a.Span() >= w.Span()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Aligned is idempotent on aligned windows.
func TestAlignedIdempotent(t *testing.T) {
	f := func(sRaw uint16, e uint8) bool {
		span := int64(1) << (e % 12)
		start := mathx.AlignDown(int64(sRaw), span)
		w := win(start, start+span)
		return Aligned(w).Equal(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnclosingAligned(t *testing.T) {
	w := EnclosingAligned(37, 32)
	if !w.Equal(win(32, 64)) {
		t.Errorf("EnclosingAligned(37,32) = %v", w)
	}
	if !w.IsAligned() || !w.Contains(37) {
		t.Error("enclosing window not aligned/containing")
	}
	if got := EnclosingAligned(0, 1); !got.Equal(win(0, 1)) {
		t.Errorf("EnclosingAligned(0,1) = %v", got)
	}
}

func TestIntervalsOf(t *testing.T) {
	w := win(0, 128) // level-1 window: span 128 in (32,256]
	ivs := IntervalsOf(w, 1)
	if len(ivs) != 4 {
		t.Fatalf("got %d intervals, want 4", len(ivs))
	}
	for i, iv := range ivs {
		if iv.Span() != 32 || iv.Start != int64(i)*32 || !iv.IsAligned() {
			t.Errorf("interval %d = %v", i, iv)
		}
	}
}

func TestIntervalIndex(t *testing.T) {
	w := win(128, 256)
	if got := IntervalIndex(w, 1, 128); got != 0 {
		t.Errorf("index of 128 = %d", got)
	}
	if got := IntervalIndex(w, 1, 200); got != 2 {
		t.Errorf("index of 200 = %d, want 2", got)
	}
	if got := IntervalIndex(w, 1, 255); got != 3 {
		t.Errorf("index of 255 = %d, want 3", got)
	}
}

func TestVerifyRecursivelyAligned(t *testing.T) {
	good := []jobs.Job{
		{Name: "a", Window: win(0, 4)},
		{Name: "b", Window: win(4, 8)},
		{Name: "c", Window: win(0, 64)},
	}
	if err := VerifyRecursivelyAligned(good); err != nil {
		t.Errorf("aligned set rejected: %v", err)
	}
	bad := append(good, jobs.Job{Name: "d", Window: win(1, 3)})
	if err := VerifyRecursivelyAligned(bad); err == nil {
		t.Error("misaligned set accepted")
	}
}

// Property: any two aligned windows are laminar (the key structural fact
// behind the paper's Lemma 2).
func TestAlignedLaminarProperty(t *testing.T) {
	f := func(a uint16, ea uint8, b uint16, eb uint8) bool {
		sa := int64(1) << (ea % 10)
		sb := int64(1) << (eb % 10)
		wa := jobs.Window{Start: mathx.AlignDown(int64(a), sa)}
		wa.End = wa.Start + sa
		wb := jobs.Window{Start: mathx.AlignDown(int64(b), sb)}
		wb.End = wb.Start + sb
		return Laminar(wa, wb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntervalsOfPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntervalsOf accepted a non-level-1 window")
		}
	}()
	IntervalsOf(win(0, 32), 1) // span == Ll, not a level-1 window
}

// Lemma 2 measured: for a recursively aligned gamma-underallocated set,
// any aligned window W overlaps at most m|W|/gamma jobs of span <= |W|.
func TestLemma2CountingBound(t *testing.T) {
	f := func(seed int64) bool {
		g, err := workload.NewGenerator(workload.Config{
			Seed: seed, Gamma: 8, Horizon: 512, Steps: 120,
		})
		if err != nil {
			return false
		}
		for _, r := range g.Sequence() {
			_ = r
		}
		active := g.Active()
		// Every aligned window over the horizon.
		for span := int64(1); span <= 512; span *= 2 {
			for start := int64(0); start < 512; start += span {
				w := jobs.Window{Start: start, End: start + span}
				count := int64(0)
				for _, j := range active {
					if j.Window.Span() <= span && j.Window.Overlaps(w) {
						count++
					}
				}
				if count*8 > span { // m=1, gamma=8
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
