package align_test

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/jobs"
)

// ALIGNED(W) keeps at least a quarter of any window (Section 5).
func ExampleAligned() {
	w := jobs.Window{Start: 3, End: 30} // span 27, unaligned
	a := align.Aligned(w)
	fmt.Printf("ALIGNED(%v) = %v (span %d >= %d/4)\n", w, a, a.Span(), w.Span())
	// Output:
	// ALIGNED([3,30)) = [8,16) (span 8 >= 27/4)
}

// Levels partition spans by the tower thresholds L1=32, L2=256.
func ExampleLevelOfSpan() {
	for _, span := range []int64{8, 32, 64, 256, 4096} {
		fmt.Printf("span %4d -> level %d\n", span, align.LevelOfSpan(span))
	}
	// Output:
	// span    8 -> level 0
	// span   32 -> level 0
	// span   64 -> level 1
	// span  256 -> level 1
	// span 4096 -> level 2
}

// A level-1 window decomposes into intervals of exactly L1 = 32 slots.
func ExampleIntervalsOf() {
	w := jobs.Window{Start: 128, End: 256} // span 128, level 1
	for _, iv := range align.IntervalsOf(w, 1) {
		fmt.Println(iv)
	}
	// Output:
	// [128,160)
	// [160,192)
	// [192,224)
	// [224,256)
}
