// Package alignsched implements the paper's Section 5 reduction from
// arbitrary windows to recursively aligned windows: every inserted
// window W is replaced by ALIGNED(W), a largest aligned sub-window,
// whose span is at least |W|/4. Lemma 10 shows a 4γ-underallocated
// instance stays γ-underallocated after the replacement, so composing
// this wrapper over the multi-machine reservation scheduler yields the
// full Theorem 1 scheduler for arbitrary (unaligned) windows.
package alignsched

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/ident"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Scheduler aligns windows before delegating to an aligned-only inner
// scheduler.
type Scheduler struct {
	inner sched.Scheduler

	// names is the per-scheduler ID space; wins holds each active job's
	// original (unaligned) window, indexed by interned ID.
	names *ident.Table
	wins  []jobs.Window

	// evicted accumulates jobs the inner scheduler's batch rebuilds
	// shed; see sched.BatchEvictor.
	evicted []string
}

// setWin records the original window of an interned job.
func (s *Scheduler) setWin(id ident.ID, w jobs.Window) {
	for int(id) >= len(s.wins) {
		s.wins = append(s.wins, jobs.Window{})
	}
	s.wins[id] = w
}

// dropName releases a tracked name, if present.
func (s *Scheduler) dropName(name string) {
	if id, ok := s.names.Get(name); ok {
		s.names.Release(id)
	}
}

// TakeBatchEvictions implements sched.BatchEvictor.
func (s *Scheduler) TakeBatchEvictions() []string {
	ev := s.evicted
	s.evicted = nil
	return ev
}

var _ sched.Scheduler = (*Scheduler)(nil)

// New wraps an aligned-only scheduler.
func New(inner sched.Scheduler) *Scheduler {
	return &Scheduler{inner: inner, names: ident.New()}
}

// Machines returns the inner scheduler's machine count.
func (s *Scheduler) Machines() int { return s.inner.Machines() }

// Active returns the number of active jobs.
func (s *Scheduler) Active() int { return s.names.Len() }

// Jobs returns the active jobs with their original (unaligned) windows.
func (s *Scheduler) Jobs() []jobs.Job {
	out := make([]jobs.Job, 0, s.names.Len())
	s.names.Range(func(id ident.ID, name string) bool {
		out = append(out, jobs.Job{Name: name, Window: s.wins[id]})
		return true
	})
	return out
}

// Assignment returns the inner assignment; every placement lies inside
// the aligned sub-window and therefore inside the original window.
func (s *Scheduler) Assignment() jobs.Assignment { return s.inner.Assignment() }

// Insert replaces the job's window with ALIGNED(W) and delegates.
func (s *Scheduler) Insert(j jobs.Job) (metrics.Cost, error) {
	if err := j.Validate(); err != nil {
		return metrics.Cost{}, err
	}
	if j.Window.End <= 0 {
		return metrics.Cost{}, fmt.Errorf("alignsched: window %v lies entirely before time 0", j.Window)
	}
	if _, ok := s.names.Get(j.Name); ok {
		return metrics.Cost{}, fmt.Errorf("%w: %q", sched.ErrDuplicateJob, j.Name)
	}
	aligned := align.Aligned(j.Window)
	cost, err := s.inner.Insert(jobs.Job{Name: j.Name, Window: aligned})
	if err != nil {
		return cost, err
	}
	s.setWin(s.names.Intern(j.Name), j.Window)
	return cost, nil
}

// Delete removes an active job.
func (s *Scheduler) Delete(name string) (metrics.Cost, error) {
	id, ok := s.names.Get(name)
	if !ok {
		return metrics.Cost{}, fmt.Errorf("%w: %q", sched.ErrUnknownJob, name)
	}
	cost, err := s.inner.Delete(name)
	if err != nil {
		return cost, err
	}
	s.names.Release(id)
	return cost, nil
}

// AddMachines implements sched.Elastic when the inner scheduler does.
func (s *Scheduler) AddMachines(n int) error {
	el, ok := s.inner.(sched.Elastic)
	if !ok {
		return fmt.Errorf("%w: alignsched over %T", sched.ErrNotElastic, s.inner)
	}
	return el.AddMachines(n)
}

// RemoveMachines implements sched.Elastic when the inner scheduler
// does. Evicted jobs are returned with their original (unaligned)
// windows so the caller can re-place them elsewhere.
func (s *Scheduler) RemoveMachines(n int) (metrics.Cost, []jobs.Job, error) {
	el, ok := s.inner.(sched.Elastic)
	if !ok {
		return metrics.Cost{}, nil, fmt.Errorf("%w: alignsched over %T", sched.ErrNotElastic, s.inner)
	}
	cost, evicted, err := el.RemoveMachines(n)
	if err != nil {
		return cost, nil, err
	}
	out := make([]jobs.Job, 0, len(evicted))
	for _, j := range evicted {
		id, ok := s.names.Get(j.Name)
		if !ok {
			return cost, out, fmt.Errorf("alignsched: evicted job %q has no tracked original window", j.Name)
		}
		out = append(out, jobs.Job{Name: j.Name, Window: s.wins[id]})
		s.names.Release(id)
	}
	return cost, out, nil
}

// SelfCheck validates the wrapper and the inner scheduler.
func (s *Scheduler) SelfCheck() error {
	if err := s.inner.SelfCheck(); err != nil {
		return err
	}
	if n := s.names.Len(); s.inner.Active() != n {
		return fmt.Errorf("alignsched: inner has %d jobs, wrapper tracks %d", s.inner.Active(), n)
	}
	asn := s.inner.Assignment()
	var fail error
	s.names.Range(func(id ident.ID, name string) bool {
		orig := s.wins[id]
		p, ok := asn[name]
		switch {
		case !ok:
			fail = fmt.Errorf("alignsched: job %q missing from inner assignment", name)
		case !orig.Contains(p.Slot):
			fail = fmt.Errorf("alignsched: job %q at slot %d outside original window %v", name, p.Slot, orig)
		case !align.Aligned(orig).Contains(p.Slot):
			fail = fmt.Errorf("alignsched: job %q at slot %d outside aligned window %v", name, p.Slot, align.Aligned(orig))
		}
		return fail == nil
	})
	return fail
}
