package alignsched

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/multi"
	"repro/internal/sched"
)

func win(start, end int64) jobs.Window { return jobs.Window{Start: start, End: end} }

func job(name string, start, end int64) jobs.Job {
	return jobs.Job{Name: name, Window: win(start, end)}
}

func TestAlignsUnalignedWindows(t *testing.T) {
	s := New(core.New())
	// Window [3, 17) (span 14) -> largest aligned sub-window [8, 16).
	if _, err := s.Insert(job("a", 3, 17)); err != nil {
		t.Fatal(err)
	}
	p := s.Assignment()["a"]
	if p.Slot < 8 || p.Slot >= 16 {
		t.Errorf("slot %d outside aligned sub-window [8,16)", p.Slot)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	// Jobs() reports the original window.
	if got := s.Jobs()[0].Window; !got.Equal(win(3, 17)) {
		t.Errorf("Jobs() window %v", got)
	}
}

func TestRejections(t *testing.T) {
	s := New(core.New())
	if _, err := s.Insert(job("a", 0, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(job("a", 0, 8)); !errors.Is(err, sched.ErrDuplicateJob) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := s.Delete("ghost"); !errors.Is(err, sched.ErrUnknownJob) {
		t.Errorf("unknown: %v", err)
	}
	if _, err := s.Insert(jobs.Job{Name: "neg", Window: win(-10, -2)}); err == nil {
		t.Error("pre-zero window accepted")
	}
}

func TestDelete(t *testing.T) {
	s := New(core.New())
	if _, err := s.Insert(job("a", 5, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if s.Active() != 0 {
		t.Error("job not deleted")
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// End-to-end Theorem 1 stack: align over multi over core, with unaligned
// windows and multiple machines.
func TestFullStackChurn(t *testing.T) {
	m := 3
	s := New(multi.New(m, func() sched.Scheduler { return core.New() }))
	rng := rand.New(rand.NewSource(7))
	active := []string{}
	id := 0
	for step := 0; step < 400; step++ {
		if len(active) > 40 && rng.Intn(2) == 0 {
			i := rng.Intn(len(active))
			if _, err := s.Delete(active[i]); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			active = append(active[:i], active[i+1:]...)
		} else {
			// Arbitrary unaligned windows over a 4096 horizon with generous
			// slack: spans 64..1024 and only ~60 active jobs on 3 machines.
			span := 64 + rng.Int63n(960)
			start := rng.Int63n(3000)
			name := fmt.Sprintf("u%d", id)
			id++
			if _, err := s.Insert(job(name, start, start+span)); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			active = append(active, name)
		}
		if step%20 == 0 {
			if err := s.SelfCheck(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), m); err != nil {
		t.Fatal(err)
	}
}

// Property: the schedule always places jobs inside their ORIGINAL windows
// even though the inner scheduler only saw the aligned sub-windows.
func TestPlacementInOriginalWindowProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(core.New())
		for i := 0; i < 30; i++ {
			span := 16 + rng.Int63n(200)
			start := rng.Int63n(2000)
			if _, err := s.Insert(job(fmt.Sprintf("p%d", i), start, start+span)); err != nil {
				return false
			}
		}
		asn := s.Assignment()
		for _, j := range s.Jobs() {
			if !j.Window.Contains(asn[j.Name].Slot) {
				return false
			}
		}
		return s.SelfCheck() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
