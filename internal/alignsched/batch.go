// Batched admission for the alignment wrapper: window replacement is a
// pure per-request transformation, so ApplyBatch aligns every insert's
// window, resolves the statically certain rejections (malformed or
// pre-zero windows, duplicates of committed jobs, deletes of names the
// batch cannot have created) in one pass, and forwards the surviving
// requests to the inner scheduler's bulk path in one call. Requests
// whose verdict depends on the outcome of an earlier request in the
// same batch (a duplicate of, or a delete of, a name the batch itself
// inserts) are delegated — the inner layers run the same duplicate and
// existence checks with the same sentinel errors, so the observable
// behavior matches the sequential path either way.
package alignsched

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
)

var _ sched.BatchScheduler = (*Scheduler)(nil)

// ApplyBatch aligns, prevalidates, and forwards the batch. See
// sched.BatchScheduler for the shared bulk semantics.
func (s *Scheduler) ApplyBatch(reqs []jobs.Request) ([]metrics.Cost, error) {
	costs := make([]metrics.Cost, len(reqs))
	errs := make([]error, len(reqs))

	// Copy-on-write overlays over the committed originals, tracking only
	// batch-touched names. present: the name is certainly active
	// (committed, not deleted by the batch so far). pending: the batch
	// inserts the name, success still unknown.
	present := make(map[string]bool, len(reqs))
	isPresent := func(name string) bool {
		if v, ok := present[name]; ok {
			return v
		}
		_, ok := s.names.Get(name)
		return ok
	}
	pending := make(map[string]bool)

	innerReqs := make([]jobs.Request, 0, len(reqs))
	innerIdx := make([]int, 0, len(reqs)) // inner position -> batch index
	origWin := make([]jobs.Window, len(reqs))

	for i, r := range reqs {
		switch r.Kind {
		case jobs.Insert:
			j := jobs.Job{Name: r.Name, Window: r.Window}
			if err := j.Validate(); err != nil {
				errs[i] = err
				continue
			}
			if j.Window.End <= 0 {
				errs[i] = fmt.Errorf("alignsched: window %v lies entirely before time 0", j.Window)
				continue
			}
			if isPresent(r.Name) {
				errs[i] = fmt.Errorf("%w: %q", sched.ErrDuplicateJob, r.Name)
				continue
			}
			aligned := align.Aligned(j.Window)
			innerReqs = append(innerReqs, jobs.Request{Kind: jobs.Insert, Name: r.Name, Window: aligned})
			innerIdx = append(innerIdx, i)
			origWin[i] = j.Window
			pending[r.Name] = true
		case jobs.Delete:
			if !isPresent(r.Name) && !pending[r.Name] {
				errs[i] = fmt.Errorf("%w: %q", sched.ErrUnknownJob, r.Name)
				continue
			}
			innerReqs = append(innerReqs, r)
			innerIdx = append(innerIdx, i)
			present[r.Name] = false
			delete(pending, r.Name)
		default:
			errs[i] = fmt.Errorf("sched: unknown request kind %d", r.Kind)
		}
	}

	cs, err := sched.ApplyBatch(s.inner, innerReqs)
	for _, name := range sched.TakeBatchEvictions(s.inner) {
		s.dropName(name)
		s.evicted = append(s.evicted, name)
	}
	var be *sched.BatchError
	if err != nil {
		be, _ = err.(*sched.BatchError)
	}
	for k, i := range innerIdx {
		costs[i] = cs[k]
		var e error
		switch {
		case be != nil:
			e = be.At(k)
		case err != nil:
			e = err
		}
		errs[i] = e
		if e != nil {
			continue
		}
		if reqs[i].Kind == jobs.Insert {
			s.setWin(s.names.Intern(reqs[i].Name), origWin[i])
		} else {
			s.dropName(reqs[i].Name)
		}
	}
	return costs, sched.NewBatchError(errs)
}
