// Package analysis is the repo's static-analysis toolkit: a small,
// stdlib-only framework shaped like golang.org/x/tools/go/analysis, and
// the four reallocvet analyzers built on it (layering, hotpath,
// poolhygiene, determinism).
//
// Why not the real go/analysis? The repo's build discipline is
// zero-external-dependency (see arch_test.go's stdlib-only rule, which
// this package now enforces for the whole tree), so the framework is
// re-implemented on go/ast + go/types. The API mirrors the upstream
// shape — Analyzer{Name, Doc, Run(*Pass)}, Pass.Reportf, and an
// analysistest-style fixture runner with `// want "regexp"` comments —
// so analyzers written here port to x/tools mechanically if the policy
// ever changes.
//
// Directives understood by the suite (all are line comments):
//
//	//reallocvet:hotpath
//	    On a function's doc comment: the function is a steady-state
//	    hot path; the hotpath analyzer flags allocation-causing
//	    constructs inside it.
//	//reallocvet:deterministic
//	    Anywhere in a file (conventionally above the package clause):
//	    the whole package must produce deterministic iteration; the
//	    determinism analyzer checks every range-over-map in it.
//	//reallocvet:allow <analyzer> (reason)
//	    On or immediately above a flagged line: suppresses that
//	    analyzer's diagnostics for the line. The reason is mandatory —
//	    an allow without one is itself a diagnostic.
//	//reallocvet:orderinsensitive (reason)
//	    Alias for `allow determinism`: the loop body is proven
//	    order-insensitive by the stated reason.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. It mirrors the upstream
// go/analysis Analyzer shape, minus facts and requires (the suite has
// no cross-analyzer dependencies).
type Analyzer struct {
	Name string // short lowercase identifier, used in diagnostics and allow directives
	Doc  string // one-paragraph description

	// NeedTypes declares that Run reads Pass.Types/Pass.Info. Packages
	// loaded without type information (LoadSyntax) skip such analyzers.
	NeedTypes bool

	Run func(*Pass) error
}

// A Pass provides one analyzer with one package's syntax and types.
type Pass struct {
	Analyzer *Analyzer

	Path  string // package import path ("repro/internal/core")
	Fset  *token.FileSet
	Files []*ast.File

	// Types and Info are nil when the package was loaded syntax-only;
	// analyzers with NeedTypes set never see that.
	Types *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Suppression is applied centrally:
// a diagnostic whose line carries (or whose previous line carries) a
// matching `//reallocvet:allow` directive is dropped; malformed allow
// directives (no analyzer name, or no reason) are reported instead, so
// a suppression is always a documented decision.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows, allowDiags := collectAllows(pkg)
		diags = append(diags, allowDiags...)
		for _, a := range analyzers {
			if a.NeedTypes && pkg.Types == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Types:    pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			start := len(diags)
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Pos:      token.Position{Filename: pkg.Path},
					Message:  fmt.Sprintf("analyzer failed: %v", err),
				})
			}
			// Filter the diagnostics this pass produced through the
			// package's allow table.
			kept := diags[:start]
			for _, d := range diags[start:] {
				if !allows.allowed(a.Name, d.Pos) {
					kept = append(kept, d)
				}
			}
			diags = kept
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// allowTable records, per file and line, which analyzers are suppressed.
type allowTable struct {
	// byFile[filename][line] -> set of analyzer names ("*" = all).
	byFile map[string]map[int]map[string]bool
}

func (t allowTable) allowed(analyzer string, pos token.Position) bool {
	lines := t.byFile[pos.Filename]
	if lines == nil {
		return false
	}
	set := lines[pos.Line]
	return set[analyzer] || set["*"]
}

// collectAllows scans a package's comments for allow directives. An
// allow on line N suppresses diagnostics on line N and line N+1, so it
// can sit at the end of the flagged line or on its own line above.
func collectAllows(pkg *Package) (allowTable, []Diagnostic) {
	t := allowTable{byFile: make(map[string]map[int]map[string]bool)}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if name == "" || reason == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "reallocvet",
						Pos:      pos,
						Message:  "malformed allow directive: want //reallocvet:allow <analyzer> (reason) or //reallocvet:orderinsensitive (reason)",
					})
					continue
				}
				lines := t.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					t.byFile[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					set := lines[ln]
					if set == nil {
						set = make(map[string]bool)
						lines[ln] = set
					}
					set[name] = true
				}
			}
		}
	}
	return t, bad
}

// parseAllow recognises the suppression directives. ok reports that the
// comment is an allow-family directive at all; name/reason are empty
// when the directive is malformed.
func parseAllow(text string) (name, reason string, ok bool) {
	switch {
	case strings.HasPrefix(text, "//reallocvet:allow"):
		rest := strings.TrimPrefix(text, "//reallocvet:allow")
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return "", "", true
		}
		name = fields[0]
		reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
		return name, reason, true
	case strings.HasPrefix(text, "//reallocvet:orderinsensitive"):
		reason = strings.TrimSpace(strings.TrimPrefix(text, "//reallocvet:orderinsensitive"))
		return "determinism", reason, true
	}
	return "", "", false
}

// hasDirective reports whether the comment group contains the given
// `//reallocvet:<name>` directive.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	want := "//reallocvet:" + directive
	for _, c := range doc.List {
		text := c.Text
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// fileHasDirective reports whether any comment in the file carries the
// directive (used for the package-scoped `deterministic` marker, which
// conventionally sits right above the package clause).
func fileHasDirective(f *ast.File, directive string) bool {
	for _, cg := range f.Comments {
		if hasDirective(cg, directive) {
			return true
		}
	}
	return false
}

// pkgIsDeterministic reports whether any file in the package carries
// the //reallocvet:deterministic marker.
func pkgIsDeterministic(files []*ast.File) bool {
	for _, f := range files {
		if fileHasDirective(f, "deterministic") {
			return true
		}
	}
	return false
}
