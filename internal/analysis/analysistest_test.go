package analysis

// An analysistest-style fixture runner: fixture packages live under
// testdata/src/<tree>/<pkg>/, and lines expecting a diagnostic carry a
// trailing `// want "regexp"` comment (multiple quoted patterns allowed
// on one line). The runner fails on any unmatched expectation AND on
// any unexpected diagnostic, so fixtures double as negative tests:
// a construct with no want comment asserts the analyzer stays quiet.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture loads testdata/src/<tree> (type-checked unless mode says
// otherwise), runs the analyzers, and matches diagnostics against the
// fixtures' want comments.
func runFixture(t *testing.T, mode Mode, tree string, analyzers ...*Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", "src", tree)
	pkgs, err := LoadFixtureTree(root, mode, ".")
	if err != nil {
		t.Fatalf("load fixture tree %s: %v", root, err)
	}

	var wants []*expectation
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			qs := quotedRE.FindAllStringSubmatch(m[1], -1)
			if len(qs) == 0 {
				t.Errorf("%s:%d: malformed want comment (no quoted pattern): %s", path, i+1, line)
				continue
			}
			for _, q := range qs {
				re, err := regexp.Compile(q[1])
				if err != nil {
					t.Errorf("%s:%d: bad want pattern %q: %v", path, i+1, q[1], err)
					continue
				}
				wants = append(wants, &expectation{file: abs, line: i + 1, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	diags := Run(pkgs, analyzers)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
