package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

var sortishName = regexp.MustCompile(`(?i)^sort`)

// Determinism returns the analyzer for packages marked
// `//reallocvet:deterministic`: every `range` over a map must either
// feed a sort (the collect-keys-then-sort pattern) or carry a
// `//reallocvet:orderinsensitive (reason)` annotation proving the loop
// body commutes. Go randomizes map iteration order per run, so an
// unsorted, order-sensitive map walk in a deterministic package is
// exactly the nondeterminism bug class the PR 2/3 differential
// harnesses caught at runtime (trim recovery, batch routing); this
// makes the rule itself machine-checked.
func Determinism() *Analyzer {
	a := &Analyzer{
		Name:      "determinism",
		Doc:       "range over a map in a //reallocvet:deterministic package must feed a sort or be annotated order-insensitive",
		NeedTypes: true,
	}
	a.Run = func(pass *Pass) error {
		if !pkgIsDeterministic(pass.Files) {
			return nil
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkDetFunc(pass, fn)
			}
		}
		return nil
	}
	return a
}

func checkDetFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := typeOf(info, rng.X).Underlying().(*types.Map); !isMap {
			return true
		}
		if feedsSort(info, fn, rng) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"range over map %s in deterministic package %s: iteration order is randomized — collect and sort, or annotate //reallocvet:orderinsensitive (reason)",
			types.ExprString(rng.X), pass.Path)
		return true
	})
}

// feedsSort reports whether the loop collects into a slice that the
// enclosing function later sorts: the canonical
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// shape (any sort/slices sort call, or a helper whose name starts with
// "sort", counts).
func feedsSort(info *types.Info, fn *ast.FuncDecl, rng *ast.RangeStmt) bool {
	// Collect append targets inside the loop body.
	targets := map[string]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					targets[types.ExprString(as.Lhs[i])] = true
				}
			}
		}
		return true
	})
	if len(targets) == 0 {
		return false
	}
	// Is any target later fed to a sort?
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || !sortish(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if targets[types.ExprString(arg)] {
				found = true
			}
		}
		return true
	})
	return found
}

func sortish(info *types.Info, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[x].(*types.PkgName); ok {
				p := pn.Imported().Path()
				return p == "sort" || p == "slices"
			}
		}
		return sortishName.MatchString(fun.Sel.Name)
	case *ast.Ident:
		return sortishName.MatchString(fun.Name)
	}
	return false
}
