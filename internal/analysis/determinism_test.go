package analysis

import "testing"

// TestDeterminismFixture: a marked package must sort or annotate its
// map ranges; an unmarked package (determinism/free) never produces
// diagnostics, which the runner enforces because free.go carries no
// want comments.
func TestDeterminismFixture(t *testing.T) {
	runFixture(t, LoadTypes, "determinism", Determinism())
}
