package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseTestPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{Path: "d", Fset: fset, Files: []*ast.File{f}}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text         string
		name, reason string
		ok           bool
	}{
		{"//reallocvet:allow hotpath (amortized growth)", "hotpath", "(amortized growth)", true},
		{"//reallocvet:orderinsensitive (sum commutes)", "determinism", "(sum commutes)", true},
		{"//reallocvet:allow hotpath", "hotpath", "", true}, // malformed: no reason
		{"//reallocvet:allow", "", "", true},                // malformed: nothing at all
		{"//reallocvet:orderinsensitive", "determinism", "", true},
		{"//reallocvet:hotpath", "", "", false}, // different directive family
		{"// ordinary comment", "", "", false},
	}
	for _, c := range cases {
		name, reason, ok := parseAllow(c.text)
		if name != c.name || reason != c.reason || ok != c.ok {
			t.Errorf("parseAllow(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, name, reason, ok, c.name, c.reason, c.ok)
		}
	}
}

// TestCollectAllowsMalformed: an allow with no reason (or no analyzer)
// is reported, not honored — a suppression must always be explained.
func TestCollectAllowsMalformed(t *testing.T) {
	pkg := parseTestPkg(t, `package d

func f() int {
	x := 1
	//reallocvet:allow hotpath
	return x
}
`)
	allows, bad := collectAllows(pkg)
	if len(bad) != 1 {
		t.Fatalf("got %d malformed-directive diagnostics, want 1: %v", len(bad), bad)
	}
	if bad[0].Pos.Line != 5 {
		t.Errorf("malformed directive reported at line %d, want 5", bad[0].Pos.Line)
	}
	if allows.allowed("hotpath", token.Position{Filename: "d.go", Line: 6}) {
		t.Error("malformed allow must not suppress anything")
	}
}

// TestCollectAllowsWindow: a well-formed allow on line N suppresses its
// analyzer — and only its analyzer — on lines N and N+1.
func TestCollectAllowsWindow(t *testing.T) {
	pkg := parseTestPkg(t, `package d

func f() int {
	//reallocvet:allow hotpath (the next line is fine)
	x := 1
	return x
}
`)
	allows, bad := collectAllows(pkg)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed diagnostics: %v", bad)
	}
	at := func(line int) token.Position { return token.Position{Filename: "d.go", Line: line} }
	if !allows.allowed("hotpath", at(4)) || !allows.allowed("hotpath", at(5)) {
		t.Error("allow must cover its own line and the next")
	}
	if allows.allowed("hotpath", at(6)) {
		t.Error("allow window must end after one following line")
	}
	if allows.allowed("determinism", at(5)) {
		t.Error("allow must be scoped to the named analyzer")
	}
}
