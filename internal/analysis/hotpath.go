package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Hotpath returns the analyzer that checks functions annotated
// `//reallocvet:hotpath` for allocation-causing constructs. It encodes
// the discipline the alloc gate (alloc_gate_test.go) measures at
// runtime: the steady-state hot path must not allocate, so the
// constructs that reliably do are flagged at analysis time —
//
//   - string<->[]byte (and []rune) conversions
//   - map and slice composite literals
//   - closures that capture local variables
//   - fmt.* calls
//   - interface boxing (concrete value converted, passed, assigned,
//     or returned as an interface)
//   - append through a slice with no visible capacity provisioning
//     (no make-with-cap, no reslice) in the same function
//   - time.Now() — dispatch stamps must use the package's monotonic
//     int64 helper (one clock read, no wall time)
//
// Allocations that are deliberate (error paths, amortized growth)
// carry a `//reallocvet:allow hotpath (reason)` line, so every
// exception is a documented decision.
func Hotpath() *Analyzer {
	a := &Analyzer{
		Name:      "hotpath",
		Doc:       "flag allocation-causing constructs in //reallocvet:hotpath functions",
		NeedTypes: true,
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !hasDirective(fn.Doc, "hotpath") {
					continue
				}
				checkHotFunc(pass, fn)
			}
		}
		return nil
	}
	return a
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Info
	// A slice literal ranged over directly (`for _, v := range []T{...}`)
	// never escapes; the compiler keeps it on the stack, and the alloc
	// gate confirms 0 allocs/op for such loops. Don't flag those.
	rangedLits := map[*ast.CompositeLit]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if rng, ok := n.(*ast.RangeStmt); ok {
			if lit, ok := rng.X.(*ast.CompositeLit); ok {
				rangedLits[lit] = true
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fn, n)
		case *ast.CompositeLit:
			if rangedLits[n] {
				return true
			}
			switch typeOf(info, n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hot path %s", fn.Name.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hot path %s", fn.Name.Name)
			}
		case *ast.FuncLit:
			if name, pos, ok := captures(pass, fn, n); ok {
				pass.Reportf(pos.Pos(), "closure captures %q and allocates in hot path %s", name, fn.Name.Name)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break // multi-value form; conversions there are covered at the call
				}
				if boxes(info, typeOf(info, n.Lhs[i]), rhs) {
					pass.Reportf(rhs.Pos(), "assignment boxes %s into interface %s in hot path %s",
						typeStr(info, rhs), typeOf(info, n.Lhs[i]), fn.Name.Name)
				}
			}
		case *ast.ReturnStmt:
			checkHotReturn(pass, fn, n)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.Info

	// Type conversion T(x)?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, typeOf(info, call.Args[0])
		switch {
		case stringByteConv(dst, src):
			pass.Reportf(call.Pos(), "%s(%s) conversion copies and allocates in hot path %s",
				types.TypeString(dst, nil), typeStr(info, call.Args[0]), fn.Name.Name)
		case boxes(info, dst, call.Args[0]):
			pass.Reportf(call.Pos(), "conversion boxes %s into interface %s in hot path %s",
				typeStr(info, call.Args[0]), dst, fn.Name.Name)
		}
		return
	}

	// Package-qualified calls: fmt.*, time.Now.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[x].(*types.PkgName); ok {
				switch {
				case pn.Imported().Path() == "fmt":
					pass.Reportf(call.Pos(), "fmt.%s allocates in hot path %s", sel.Sel.Name, fn.Name.Name)
					return // don't double-report its args as boxing
				case pn.Imported().Path() == "time" && sel.Sel.Name == "Now":
					pass.Reportf(call.Pos(), "time.Now in hot path %s: use the monotonic int64 stamp helper (cf. shard.monotonicNS)", fn.Name.Name)
					return
				}
			}
		}
	}

	// Builtin append without visible capacity provisioning.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && !appendProvisioned(fn, call) {
				pass.Reportf(call.Pos(), "append through %s with no visible capacity provisioning (make with cap, or reslice) in hot path %s",
					types.ExprString(call.Args[0]), fn.Name.Name)
			}
			return
		}
	}

	// Interface boxing at ordinary call boundaries.
	sig, ok := typeOf(info, call.Fun).Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(info, pt, arg) {
			pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in hot path %s",
				typeStr(info, arg), pt, fn.Name.Name)
		}
	}
}

func checkHotReturn(pass *Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	info := pass.Info
	sig, ok := typeOf(info, fn.Name).(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return // bare return or multi-value forwarding
	}
	for i, res := range ret.Results {
		if boxes(info, sig.Results().At(i).Type(), res) {
			pass.Reportf(res.Pos(), "return boxes %s into interface %s in hot path %s",
				typeStr(info, res), sig.Results().At(i).Type(), fn.Name.Name)
		}
	}
}

// captures reports the first local variable of the enclosing function
// that the literal captures (package-level variables are not captures
// and cost nothing; a capture forces a heap-allocated closure).
func captures(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) (string, ast.Node, bool) {
	var name string
	var at ast.Node
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared inside the enclosing function but outside the literal.
		if v.Pos() >= fn.Pos() && v.Pos() <= fn.End() && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			name, at = id.Name, id
		}
		return true
	})
	return name, at, name != ""
}

// appendProvisioned reports whether the function visibly provisions
// capacity for append's destination: the destination is itself a
// reslice expression, or the same expression is somewhere assigned a
// make with an explicit capacity or a reslice of itself.
func appendProvisioned(fn *ast.FuncDecl, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return true
	}
	if _, ok := call.Args[0].(*ast.SliceExpr); ok {
		return true // append(x[:0], ...) reuses x's backing array
	}
	root := types.ExprString(call.Args[0])
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if types.ExprString(lhs) != root {
				continue
			}
			switch rhs := as.Rhs[i].(type) {
			case *ast.CallExpr:
				if id, ok := rhs.Fun.(*ast.Ident); ok && id.Name == "make" && len(rhs.Args) == 3 {
					found = true
				}
			case *ast.SliceExpr:
				found = true // x = x[:0] style reuse
			}
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------
// shared type helpers
// ---------------------------------------------------------------------

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return types.Typ[types.Invalid]
}

func typeStr(info *types.Info, e ast.Expr) string {
	return types.TypeString(typeOf(info, e), nil)
}

func isIface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether assigning expr to destination type dst converts
// a concrete value into an interface (which allocates unless the value
// is pointer-shaped and escapes analysis — the hot-path discipline
// forbids relying on that).
func boxes(info *types.Info, dst types.Type, expr ast.Expr) bool {
	if !isIface(dst) {
		return false
	}
	src := typeOf(info, expr)
	if src == nil || isIface(src) {
		return false
	}
	if b, ok := src.Underlying().(*types.Basic); ok && (b.Kind() == types.UntypedNil || b.Kind() == types.Invalid) {
		return false
	}
	return true
}

func stringByteConv(dst, src types.Type) bool {
	return (isStringT(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringT(src))
}

func isStringT(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// exprRoot returns the leftmost identifier path of an expression
// ("sc.live" for sc.live, "buf" for *buf), or "" when it has none.
func exprRoot(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if r := exprRoot(e.X); r != "" {
			return r + "." + e.Sel.Name
		}
	case *ast.StarExpr:
		return exprRoot(e.X)
	case *ast.UnaryExpr:
		return exprRoot(e.X)
	case *ast.IndexExpr:
		return exprRoot(e.X)
	case *ast.SliceExpr:
		return exprRoot(e.X)
	case *ast.ParenExpr:
		return exprRoot(e.X)
	case *ast.CallExpr:
		return exprRoot(e.Fun)
	}
	return ""
}

// rootBase returns the first identifier of a dotted root path.
func rootBase(root string) string {
	base, _, _ := strings.Cut(root, ".")
	return base
}
