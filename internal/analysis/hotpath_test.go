package analysis

import "testing"

// TestHotpathFixture type-checks the hotpath fixtures against real
// stdlib export data and matches the analyzer's findings against the
// `// want` comments. The ok.go fixture has no want comments at all:
// any diagnostic there fails the test, pinning the analyzer's
// negative space (unannotated functions, provisioned appends,
// capture-free closures, ranged literals, documented allows).
func TestHotpathFixture(t *testing.T) {
	runFixture(t, LoadTypes, "hotpath", Hotpath())
}
