package analysis

import (
	"go/ast"
	"sort"
	"strings"
)

// A LayerRule declares what one package may import. The zero rule is
// the strictest: standard library only — that is how the leaf packages
// (mathx, hdr, ident, analysis) are pinned.
//
// The rule format is SPI-ready: when an external service-provider
// interface lands, its module prefix goes into External for exactly
// the packages allowed to touch it, and nothing else changes.
type LayerRule struct {
	// Internal lists the allowed module-internal imports, as full
	// import paths ("repro/internal/jobs"). Anything under the module
	// path not listed here is a violation. An empty list means the
	// package is a stdlib-only leaf.
	Internal []string
	// External lists allowed external module path prefixes. Empty
	// means none: the repo currently has zero external dependencies,
	// and the table keeps it that way.
	External []string
	// Note is the human rationale for the rule, echoed in diagnostics
	// so a violation message teaches the layering instead of just
	// pointing at the table.
	Note string
}

// Layering returns the import-DAG analyzer for the given rule table,
// keyed by import path. modulePath identifies module-internal imports
// (imports of modulePath or modulePath/...).
//
// Three things are violations: a package missing from the table (every
// package must have a declared layer — adding a package means declaring
// its imports), a module-internal import not in the package's Internal
// list, and an external-module import not matching an External prefix.
func Layering(modulePath string, rules map[string]LayerRule) *Analyzer {
	return &Analyzer{
		Name: "layering",
		Doc: "enforce the declarative import DAG: every package has a rule, " +
			"module-internal imports must be sanctioned, external modules are opt-in per package",
		Run: func(pass *Pass) error {
			rule, ok := rules[pass.Path]
			if !ok {
				if len(pass.Files) > 0 {
					pass.Reportf(pass.Files[0].Package,
						"package %s has no layering rule; add one to the table in internal/analysis/layering.go", pass.Path)
				}
				return nil
			}
			allowed := make(map[string]bool, len(rule.Internal))
			for _, p := range rule.Internal {
				allowed[p] = true
			}
			for _, f := range pass.Files {
				for _, imp := range f.Imports {
					p := strings.Trim(imp.Path.Value, `"`)
					pass.checkImport(imp, p, modulePath, rule, allowed)
				}
			}
			return nil
		},
	}
}

func (pass *Pass) checkImport(imp *ast.ImportSpec, p, modulePath string, rule LayerRule, allowed map[string]bool) {
	note := ""
	if rule.Note != "" {
		note = " (" + rule.Note + ")"
	}
	switch {
	case p == modulePath || strings.HasPrefix(p, modulePath+"/"):
		if !allowed[p] {
			pass.Reportf(imp.Pos(), "%s imports %s, which is not in its sanctioned layer set %v%s",
				pass.Path, p, rule.Internal, note)
		}
	case strings.Contains(firstElem(p), "."):
		for _, pre := range rule.External {
			if p == pre || strings.HasPrefix(p, pre+"/") {
				return
			}
		}
		pass.Reportf(imp.Pos(), "%s imports external module %s; the repo is zero-dependency%s",
			pass.Path, p, note)
	}
}

func firstElem(p string) string {
	first, _, _ := strings.Cut(p, "/")
	return first
}

// DefaultLayerRules is the repo's sanctioned import DAG, bottom-up.
// This table is the single source of truth for layering: arch_test.go
// and cmd/reallocvet both run the Layering analyzer over it, and a new
// package fails the gate until it gets an entry here.
func DefaultLayerRules() map[string]LayerRule {
	const (
		mathx     = "repro/internal/mathx"
		fault     = "repro/internal/fault"
		hdr       = "repro/internal/hdr"
		ident     = "repro/internal/ident"
		jobs      = "repro/internal/jobs"
		metrics   = "repro/internal/metrics"
		align     = "repro/internal/align"
		sched     = "repro/internal/sched"
		wal       = "repro/internal/wal"
		core      = "repro/internal/core"
		trim      = "repro/internal/trim"
		multi     = "repro/internal/multi"
		alignsch  = "repro/internal/alignsched"
		shard     = "repro/internal/shard"
		workload  = "repro/internal/workload"
		feasible  = "repro/internal/feasible"
		edf       = "repro/internal/edf"
		naive     = "repro/internal/naive"
		lowerb    = "repro/internal/lowerbound"
		mixed     = "repro/internal/mixed"
		sized     = "repro/internal/sized"
		pma       = "repro/internal/pma"
		trace     = "repro/internal/trace"
		stress    = "repro/internal/stress"
		viz       = "repro/internal/viz"
		sim       = "repro/internal/sim"
		analysisP = "repro/internal/analysis"
		wire      = "repro/internal/wire"
		repl      = "repro/internal/repl"
		server    = "repro/internal/server"
		clientP   = "repro/client"
		root      = "repro"
	)
	leaf := LayerRule{Note: "stdlib-only leaf"}
	return map[string]LayerRule{
		// --- leaves: stdlib only ---
		mathx:     leaf,
		fault:     {Note: "the unified error vocabulary is a stdlib-only leaf: anything may alias it"},
		hdr:       leaf,
		ident:     leaf,
		analysisP: {Note: "the static-analysis toolkit is itself a stdlib-only leaf"},

		// --- currencies and model ---
		metrics: {Internal: []string{hdr}, Note: "cost/latency currencies; hdr supplies the histogram"},
		jobs:    {Internal: []string{mathx}, Note: "the shared job model"},
		align:   {Internal: []string{jobs, mathx}, Note: "pure window geometry"},
		sched:   {Internal: []string{fault, jobs, metrics}, Note: "the scheduler interface layer"},
		wal:     {Internal: []string{fault, jobs}, Note: "durability codecs speak the job model only"},
		pma:     {Internal: []string{mathx}, Note: "packed-memory array, integer helpers only"},

		// --- single-machine schedulers ---
		core: {Internal: []string{align, ident, jobs, mathx, metrics, sched},
			Note: "the paper's reservation scheduler: model, currencies, geometry, IDs, and the interface it implements — nothing else"},
		trim: {Internal: []string{align, ident, jobs, mathx, metrics, sched},
			Note: "window trimming wraps any aligned scheduler; same layer as core"},
		edf:    {Internal: []string{jobs, metrics, sched}, Note: "baseline scheduler"},
		naive:  {Internal: []string{jobs, metrics, sched}, Note: "baseline scheduler"},
		lowerb: {Internal: []string{jobs, metrics, sched}, Note: "lower-bound oracle"},
		mixed:  {Internal: []string{jobs, metrics}, Note: "mixed-workload cost model"},
		sized:  {Internal: []string{jobs, mathx, metrics}, Note: "sized-job helpers"},

		// --- composition layers ---
		multi:    {Internal: []string{ident, jobs, metrics, sched}, Note: "multi-machine delegation over any sched.Scheduler"},
		alignsch: {Internal: []string{align, ident, jobs, metrics, sched}, Note: "alignment front-end over any sched.Scheduler"},
		shard: {Internal: []string{fault, hdr, ident, jobs, metrics, sched, wal},
			Note: "concurrent front-end: shards any sched.Scheduler, logs to wal, measures with hdr"},

		// --- harnesses and tooling ---
		feasible: {Internal: []string{jobs}, Note: "independent feasibility oracle for tests"},
		viz:      {Internal: []string{jobs}, Note: "schedule rendering"},
		workload: {Internal: []string{jobs, mathx}, Note: "scenario generators"},
		trace:    {Internal: []string{jobs, metrics, sched}, Note: "trace record/replay"},
		stress:   {Internal: []string{jobs, sched, workload}, Note: "stress drivers"},
		sim: {Internal: []string{align, alignsch, core, edf, feasible, jobs, lowerb, mathx,
			metrics, mixed, multi, naive, pma, sched, shard, sized, trim, workload},
			Note: "the experiment harness may drive every scheduler"},

		// --- serving stack ---
		wire: {Internal: []string{fault, jobs, wal},
			Note: "network frames reuse the WAL's request codec: the on-disk format is the wire format"},
		repl: {Internal: []string{fault, jobs, sched, shard, wal, wire},
			Note: "WAL shipping: reads segment bytes, speaks frames, replays into warm shard schedulers"},
		server: {Internal: []string{jobs, sched, shard, wire},
			Note: "the multi-tenant front-end drives sharded schedulers; it never touches the public API"},
		clientP: {Internal: []string{fault, jobs, wire},
			Note: "the client library speaks frames and the job model only — no scheduler imports"},

		// --- public API and commands ---
		root: {Internal: []string{alignsch, core, edf, fault, feasible, jobs, metrics, multi, naive, sched, shard, trim, wal},
			Note: "the public API composes the stacks; internals never import it back"},
		"repro/cmd/reallocbench": {Internal: []string{root, hdr, jobs, metrics, shard, workload},
			Note: "shard only for the ring that aims the trace scenario's hot keys"},
		"repro/cmd/reallocsim":   {Internal: []string{sim}},
		"repro/cmd/realloctrace": {Internal: []string{root, core, edf, naive, sched, stress, trace, wal, workload}},
		"repro/cmd/reallocvet":   {Internal: []string{analysisP}, Note: "the multichecker wraps the analysis toolkit"},
		"repro/cmd/reallocd": {Internal: []string{root, repl, server, shard, wal},
			Note: "the daemon composes public-API schedulers into the server and replication stack"},
		"repro/cmd/reallocload": {Internal: []string{clientP, hdr, jobs, shard, workload},
			Note: "still a pure client on the wire; workload pregenerates the replay scenarios and shard's ring aims their hot keys"},

		// --- examples: drive the public API (sizedjobs/quickstart also
		// demo internal helpers directly) ---
		"repro/examples/adversary":  {Internal: []string{root}},
		"repro/examples/clinic":     {Internal: []string{root}},
		"repro/examples/cloud":      {Internal: []string{root}},
		"repro/examples/quickstart": {Internal: []string{root, viz}},
		"repro/examples/server":     {Internal: []string{root, clientP, server}},
		"repro/examples/sizedjobs":  {Internal: []string{jobs, sized}},
	}
}

// LayerRuleNames returns the sorted package paths covered by the table
// (used by tests asserting the table covers the whole tree).
func LayerRuleNames(rules map[string]LayerRule) []string {
	names := make([]string, 0, len(rules))
	for p := range rules {
		names = append(names, p)
	}
	sort.Strings(names)
	return names
}
