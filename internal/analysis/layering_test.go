package analysis

import (
	"sort"
	"strings"
	"testing"
)

// TestLayeringFixture runs the layering analyzer over a synthetic
// module ("lay") in syntax-only mode: rules tables are data, so the
// fixture injects its own, including a package with no rule at all and
// an external import that never needs to resolve.
func TestLayeringFixture(t *testing.T) {
	rules := map[string]LayerRule{
		"lay/dep":  {Note: "stdlib-only leaf"},
		"lay/leaf": {Note: "declared stdlib-only, imports anyway"},
		"lay/app":  {Internal: []string{"lay/dep"}},
		// lay/rogue intentionally missing.
	}
	runFixture(t, LoadSyntax, "layering", Layering("lay", rules))
}

// TestDefaultRulesCoverTree pins the rules table to the real tree in
// both directions: every package in the module has a rule, and every
// rule names a package that still exists (no stale entries).
func TestDefaultRulesCoverTree(t *testing.T) {
	pkgs, err := goList("../..", []string{"list", "-json", "--", "./..."})
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	inTree := map[string]bool{}
	for _, p := range pkgs {
		inTree[p.ImportPath] = true
	}
	rules := DefaultLayerRules()
	for p := range inTree {
		if _, ok := rules[p]; !ok {
			t.Errorf("package %s has no layering rule; add one to DefaultLayerRules", p)
		}
	}
	for _, p := range LayerRuleNames(rules) {
		if !inTree[p] {
			t.Errorf("layering rule for %s is stale: no such package in the tree", p)
		}
	}
}

// TestDefaultRulesAcyclic proves the sanctioned import DAG is actually
// a DAG: a cycle in the table would let two layers sanction each other.
func TestDefaultRulesAcyclic(t *testing.T) {
	rules := DefaultLayerRules()
	const (
		white = iota
		grey
		black
	)
	state := map[string]int{}
	var visit func(p string, trail []string)
	visit = func(p string, trail []string) {
		switch state[p] {
		case grey:
			t.Fatalf("layering rules contain an import cycle: %s", strings.Join(append(trail, p), " -> "))
		case black:
			return
		}
		state[p] = grey
		for _, dep := range rules[p].Internal {
			visit(dep, append(trail, p))
		}
		state[p] = black
	}
	for _, p := range LayerRuleNames(rules) {
		visit(p, nil)
	}
}

// TestDefaultRulesSortedDeps is a hygiene check: each rule's Internal
// list is sorted, so diffs to the table stay reviewable.
func TestDefaultRulesSortedDeps(t *testing.T) {
	for p, r := range DefaultLayerRules() {
		if !sort.StringsAreSorted(r.Internal) {
			t.Errorf("rule for %s: Internal list is not sorted: %v", p, r.Internal)
		}
	}
}
