package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, and (optionally) type-checked
// package, ready to be handed to analyzers via Run.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only for go-list loads

	// Types/Info are nil for syntax-only loads.
	Types *types.Package
	Info  *types.Info
}

// Mode selects how much work the loader does.
type Mode int

const (
	// LoadSyntax parses files only. Enough for import-level analyzers
	// (layering); much faster because no compilation is required.
	LoadSyntax Mode = iota
	// LoadTypes additionally type-checks every target package against
	// export data produced by `go list -export` — no network, no
	// external tooling, just the host toolchain's build cache.
	LoadTypes
)

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load loads the packages matching the go-list patterns (resolved
// relative to dir), parsing their non-test Go files and, in LoadTypes
// mode, type-checking them against export data for every dependency.
func Load(dir string, mode Mode, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-json"}
	if mode == LoadTypes {
		// -deps -export gives us export data for the full dependency
		// closure (stdlib included); targets are the non-DepOnly entries.
		args = append(args, "-deps", "-export")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	pkgs, err := goList(dir, args)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range targets {
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg := &Package{Path: p.ImportPath, Dir: p.Dir, Fset: fset, Files: files}
		if mode == LoadTypes {
			pkg.Types, pkg.Info, err = check(fset, p.ImportPath, files, imp)
			if err != nil {
				return nil, fmt.Errorf("type-check %s: %w", p.ImportPath, err)
			}
		}
		out = append(out, pkg)
	}
	return out, nil
}

func goList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// exportImporter satisfies go/types imports from compiler export data:
// the lookup map (import path -> export file) comes from
// `go list -export`, and the stdlib gc importer does the decoding.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in the listed dependency closure)", path)
		}
		return os.Open(file)
	})
}

// ---------------------------------------------------------------------
// Fixture loading (analysistest-style testdata trees)
// ---------------------------------------------------------------------

// LoadFixtureTree loads every package under root (a testdata/src-style
// tree): each directory containing .go files becomes one package whose
// import path is its slash-separated path relative to root — so
// testdata/src/hotpath/a.go (root testdata/src) loads as package path
// "hotpath", and fixtures can import each other by those paths
// ("layering/leaf"). Files directly in root are not allowed.
//
// Standard-library imports are resolved with export data obtained from
// the host toolchain (`go list -export -deps`, run in listDir — any
// directory inside a module, or the repo root). No network is needed.
func LoadFixtureTree(root string, mode Mode, listDir string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	base := root

	// Discover fixture package dirs and the stdlib imports they need.
	dirs := map[string][]string{} // pkg path -> file names
	stdlib := map[string]bool{}
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(base, dir)
		if err != nil {
			return err
		}
		if rel == "." {
			return fmt.Errorf("fixture file %s sits directly in the tree root; put it in a package directory", path)
		}
		pkgPath := filepath.ToSlash(rel)
		dirs[pkgPath] = append(dirs[pkgPath], filepath.Base(path))
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if first, _, _ := strings.Cut(p, "/"); !strings.Contains(first, ".") {
				if _, isFixture := dirs[p]; !isFixture {
					stdlib[p] = true
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no fixture packages under %s", root)
	}

	var paths []string
	for p := range dirs {
		paths = append(paths, p)
		delete(stdlib, p) // a fixture package shadows any same-named stdlib path
	}
	sort.Strings(paths)

	l := &fixtureLoader{base: base, dirs: dirs, fset: token.NewFileSet(), pkgs: map[string]*Package{}}
	if mode == LoadTypes {
		exports, err := stdlibExports(listDir, stdlib)
		if err != nil {
			return nil, err
		}
		l.std = exportImporter(l.fset, exports)
	}
	var out []*Package
	for _, p := range paths {
		pkg, err := l.load(p, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// stdlibExports resolves export-data files for the given stdlib import
// paths (and their transitive dependencies).
func stdlibExports(listDir string, want map[string]bool) (map[string]string, error) {
	if len(want) == 0 {
		return nil, nil
	}
	args := []string{"list", "-export", "-deps", "-json", "--"}
	var names []string
	for p := range want {
		names = append(names, p)
	}
	sort.Strings(names)
	args = append(args, names...)
	pkgs, err := goList(listDir, args)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

type fixtureLoader struct {
	base string
	dirs map[string][]string
	fset *token.FileSet
	pkgs map[string]*Package
	std  types.Importer
}

func (l *fixtureLoader) load(path string, mode Mode) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	names := l.dirs[path]
	sort.Strings(names)
	dir := filepath.Join(l.base, filepath.FromSlash(path))
	files, err := parseFiles(l.fset, dir, names)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files}
	l.pkgs[path] = pkg
	if mode == LoadTypes {
		pkg.Types, pkg.Info, err = check(l.fset, path, files, fixtureImporter{l})
		if err != nil {
			return nil, fmt.Errorf("type-check fixture %s: %w", path, err)
		}
	}
	return pkg, nil
}

// fixtureImporter resolves imports during fixture type-checking:
// fixture-internal paths load (recursively) from source, everything
// else falls through to stdlib export data.
type fixtureImporter struct{ l *fixtureLoader }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if _, ok := fi.l.dirs[path]; ok {
		pkg, err := fi.l.load(path, LoadTypes)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if fi.l.std == nil {
		return nil, fmt.Errorf("fixture imports %q but loader has no stdlib importer", path)
	}
	return fi.l.std.Import(path)
}
