package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// clearishName matches method names that plausibly clear or reset their
// receiver (the repo's pools use clear()/assignments directly, but a
// helper with one of these names also counts as visible hygiene).
var clearishName = regexp.MustCompile(`(?i)^(reset|clear|truncate|release|recycle|drop|zero|init)`)

// Poolhygiene returns the analyzer enforcing the repo's pooling
// invariant (README "Performance", and every pool's doc comment):
// a value returned to a sync.Pool must not pin its previous contents,
// and must not be touched after it is handed back.
//
// Concretely, for every `(*sync.Pool).Put(v)`:
//
//   - if v's type carries references (pointers, slices, maps, strings,
//     channels, interfaces — directly or in fields), the enclosing
//     function must visibly clear it first: a clear(...) of v or one of
//     its fields, an assignment into v (x = x[:0], *x = T{}, x.f = nil,
//     x := make(...)), a clearing-named method call (Reset/Clear/...),
//     or — for channels — a receive that drains it;
//   - v must not be used after the Put: once pooled, another goroutine
//     may own it.
//
// Deliberate exceptions (a channel proven empty by control flow, say)
// carry `//reallocvet:allow poolhygiene (reason)`.
func Poolhygiene() *Analyzer {
	a := &Analyzer{
		Name:      "poolhygiene",
		Doc:       "sync.Pool.Put requires a visible prior clear of reference-carrying values and forbids use after Put",
		NeedTypes: true,
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkPoolFunc(pass, fn)
			}
		}
		return nil
	}
	return a
}

func checkPoolFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolPut(pass.Info, call) || len(call.Args) != 1 {
			return true
		}
		arg := call.Args[0]
		root := exprRoot(arg)
		t := typeOf(pass.Info, arg)
		if carriesRefs(t) && root != "" && !clearedBefore(pass.Info, fn, root, call.Pos()) {
			pass.Reportf(call.Pos(),
				"Pool.Put(%s) without a visible prior clear — %s carries references, and pooled values must not pin their contents",
				types.ExprString(arg), types.TypeString(t, nil))
		}
		checkUseAfterPut(pass, fn, call, arg)
		return true
	})
}

func isPoolPut(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fnObj, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fnObj.FullName() == "(*sync.Pool).Put"
}

// clearedBefore reports whether fn visibly clears root (or a part of
// it) at a position before pos.
func clearedBefore(info *types.Info, fn *ast.FuncDecl, root string, pos token.Pos) bool {
	touches := func(e ast.Expr) bool {
		r := exprRoot(e)
		return r == root || strings.HasPrefix(r, root+".")
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= pos {
			return !found
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if touches(lhs) {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "clear" && len(n.Args) == 1 && touches(n.Args[0]) {
					found = true
				}
			case *ast.SelectorExpr:
				if touches(fun.X) && clearishName.MatchString(fun.Sel.Name) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			// A receive drains a pooled channel: the value it pins is gone.
			if n.Op == token.ARROW && touches(n.X) {
				found = true
			}
		case *ast.RangeStmt:
			// `for v := range ch` also drains a channel.
			if _, isChan := typeOf(info, n.X).Underlying().(*types.Chan); isChan && touches(n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkUseAfterPut flags uses of the pooled variable after the Put
// call, unless the whole variable is reassigned first, or a control-
// flow terminator (return, panic, break, continue, goto) sits between
// the Put and the use — a Put in an early-return branch is not
// sequential with code after the branch. Only single-identifier roots
// are tracked (the common pool shape); field paths would need alias
// analysis.
func checkUseAfterPut(pass *Pass, fn *ast.FuncDecl, put *ast.CallExpr, arg ast.Expr) {
	// Unwrap &x / *x to the identifier.
	e := arg
	for {
		switch v := e.(type) {
		case *ast.UnaryExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			goto unwrapped
		}
	}
unwrapped:
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return
	}
	barrier := firstTerminatorAfter(pass.Info, fn, put.End())
	var reassignAt token.Pos = token.NoPos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if lid, ok := lhs.(*ast.Ident); ok && n.Pos() > put.End() {
					if pass.Info.Uses[lid] == obj || pass.Info.Defs[lid] == obj {
						if reassignAt == token.NoPos || n.Pos() < reassignAt {
							reassignAt = n.Pos()
						}
					}
				}
			}
		case *ast.Ident:
			if pass.Info.Uses[n] != obj || n.Pos() <= put.End() {
				return true
			}
			if barrier != token.NoPos && n.Pos() > barrier {
				return true // control flow diverged before this use
			}
			if reassignAt != token.NoPos && n.Pos() > reassignAt {
				return true // a fresh value was assigned; the pooled one is gone
			}
			// Skip the reassignment's own LHS mention.
			if n.Pos() == reassignAt {
				return true
			}
			pass.Reportf(n.Pos(), "%s used after Pool.Put on line %d — once pooled, another goroutine may own it",
				n.Name, pass.Fset.Position(put.Pos()).Line)
		}
		return true
	})
}

// firstTerminatorAfter returns the position of the first control-flow
// terminator (return, branch statement, or panic call) in fn after pos,
// or NoPos.
func firstTerminatorAfter(info *types.Info, fn *ast.FuncDecl, pos token.Pos) token.Pos {
	best := token.NoPos
	consider := func(p token.Pos) {
		if p > pos && (best == token.NoPos || p < best) {
			best = p
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			// The barrier is the terminator's END: uses inside the
			// terminator itself (`return x.f`) are still sequential
			// with the Put and must be flagged.
			consider(n.End())
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					consider(n.End())
				}
			}
		}
		return true
	})
	return best
}

// carriesRefs reports whether a value of type t can pin other memory
// while sitting in a pool.
func carriesRefs(t types.Type) bool {
	return carriesRefs1(t, 0)
}

func carriesRefs1(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return true // recursive type: assume the worst
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Pointer:
		return carriesRefs1(u.Elem(), depth+1)
	case *types.Array:
		return carriesRefs1(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRefs1(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	default:
		return true
	}
}
