package analysis

import "testing"

// TestPoolhygieneFixture covers both Put checks (missing clear, use
// after Put) and the negative space: no-reference pooled types,
// reslice/clear/receive hygiene, early-return branches, whole-variable
// reassignment, and documented allows.
func TestPoolhygieneFixture(t *testing.T) {
	runFixture(t, LoadTypes, "poolhygiene", Poolhygiene())
}
