package analysis

// ModulePath is the module this suite is configured for; the layering
// analyzer uses it to tell module-internal imports from external ones.
const ModulePath = "repro"

// Suite returns the full reallocvet analyzer set in its default
// repo configuration: layering over DefaultLayerRules, plus hotpath,
// poolhygiene, and determinism.
func Suite() []*Analyzer {
	return []*Analyzer{
		Layering(ModulePath, DefaultLayerRules()),
		Hotpath(),
		Poolhygiene(),
		Determinism(),
	}
}
