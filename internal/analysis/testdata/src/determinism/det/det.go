// Package det is marked deterministic: every map range must feed a
// sort or carry an order-insensitivity proof.
//
//reallocvet:deterministic
package det

import "sort"

// Bad leaks map iteration order straight into its output.
func Bad(m map[string]int, emit func(string)) {
	for k := range m { // want "iteration order is randomized"
		emit(k)
	}
}

// Sorted uses the canonical collect-then-sort shape: allowed.
func Sorted(m map[string]int, emit func(string)) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k)
	}
}

// Annotated proves its loop commutes.
func Annotated(m map[string]int) int {
	total := 0
	for _, v := range m { //reallocvet:orderinsensitive (sum is commutative)
		total += v
	}
	return total
}

// SliceRange is not a map range: never flagged.
func SliceRange(xs []int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	return t
}
