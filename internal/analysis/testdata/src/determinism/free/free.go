// Package free is NOT marked deterministic, so map ranges are its own
// business: the analyzer stays quiet here.
package free

func Walk(m map[string]int, emit func(string)) {
	for k := range m {
		emit(k)
	}
}
