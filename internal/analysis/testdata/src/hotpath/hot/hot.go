// Package hot exercises every construct the hotpath analyzer flags.
package hot

import (
	"fmt"
	"time"
)

func sink(v any) { _ = v }

//reallocvet:hotpath
func Bad(names []string, n int, b []byte) string {
	s := string(b)  // want "conversion copies and allocates"
	bb := []byte(s) // want "conversion copies and allocates"
	_ = bb
	m := map[string]int{} // want "map literal allocates"
	_ = m
	sl := []int{1, 2} // want "slice literal allocates"
	_ = sl
	f := func() int { return n } // want "closure captures \"n\""
	_ = f
	_ = fmt.Sprint(n)        // want "fmt.Sprint allocates"
	_ = time.Now()           // want "time.Now in hot path"
	names = append(names, s) // want "append through names with no visible capacity provisioning"
	sink(n)                  // want "argument boxes int into interface"
	var box any
	box = n // want "assignment boxes int into interface"
	_ = box
	_ = any(n) // want "conversion boxes int into interface"
	return s
}

//reallocvet:hotpath
func BadReturn(n int) any {
	return n // want "return boxes int into interface"
}
