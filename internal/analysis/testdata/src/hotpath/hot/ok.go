package hot

import "fmt"

var global int

// Quiet is unannotated: the analyzer must ignore everything in it.
func Quiet(b []byte) string {
	m := map[string]int{"x": 1}
	_ = m
	_ = fmt.Sprint(len(b))
	return string(b)
}

// Allowed is annotated but every construct below is either provisioned,
// free of captures, stack-allocated, or carries a documented allow.
//
//reallocvet:hotpath
func Allowed(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, 0, n) // make with explicit cap provisions buf
	}
	buf = append(buf, n)
	out := buf[:0]
	out = append(out, n)                      // out was assigned a reslice: provisioned
	out = append(out[:0], n)                  // reslice destination is always fine
	f := func(a, b int) bool { return a < b } // captures nothing: no alloc
	_ = f
	g := func() int { return global } // package-level var is not a capture
	_ = g
	for _, v := range []int{1, 2} { // ranged literal stays on the stack
		n += v
	}
	_ = fmt.Sprintln("boom") //reallocvet:allow hotpath (demo: documented exception)
	return out
}
