// Package app is sanctioned to import lay/dep; stdlib imports are
// always allowed. No diagnostics expected here.
package app

import (
	"fmt"

	"lay/dep"
)

// Use keeps the imports referenced.
func Use() { fmt.Sprint(dep.V) }
