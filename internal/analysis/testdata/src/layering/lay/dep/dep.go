// Package dep is a stdlib-only leaf in the fixture layer table.
package dep

// V exists so other fixture packages have something to import.
var V = 1
