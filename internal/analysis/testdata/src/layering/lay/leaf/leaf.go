// Package leaf is declared stdlib-only in the fixture rules, so both
// of its imports are violations. The tree loads in LoadSyntax mode, so
// the external import does not need to resolve.
package leaf

import (
	_ "github.com/evil/mod" // want "imports external module github.com/evil/mod"
	_ "lay/dep"             // want "not in its sanctioned layer set"
)
