// Package rogue has no entry in the fixture rules table: every package
// must declare its layer before it builds.
package rogue // want "no layering rule"
