package pool

import "sync"

type counters struct{ a, b int64 }

var cp = sync.Pool{New: func() any { return new(counters) }}
var bufp = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}
var chp = sync.Pool{New: func() any { return make(chan int, 1) }}

// counters carry no references: no clear required.
func putCounters(c *counters) {
	cp.Put(c)
}

// A reslice assignment into the pooled value counts as clearing.
func putCleared(b *[]byte) {
	*b = (*b)[:0]
	bufp.Put(b)
}

// The clear builtin on a field counts too.
func putClearBuiltin(s *scratch) {
	clear(s.names)
	s.names = s.names[:0]
	p.Put(s)
}

// A receive drains the channel before pooling it.
func putDrained(ch chan int) int {
	v := <-ch
	chp.Put(ch)
	return v
}

// A Put on an early-return branch is not sequential with the code after
// the branch: the second Put and the return are a different path.
func putEarlyReturn(ch chan int, ok bool) int {
	v := <-ch
	if !ok {
		chp.Put(ch)
		return 0
	}
	chp.Put(ch)
	return v
}

// Reassigning the whole variable after Put makes later uses fine: they
// see the fresh value, not the pooled one.
func putReassign(b *[]byte) int {
	*b = (*b)[:0]
	bufp.Put(b)
	b = new([]byte)
	return len(*b)
}

// An allow annotation documents a deliberate exception.
func putAllowed(s *scratch) {
	p.Put(s) //reallocvet:allow poolhygiene (demo: caller proves s is already clean)
}
