// Package pool exercises the poolhygiene analyzer: Put without a
// visible clear, and use after Put.
package pool

import "sync"

type scratch struct{ names []string }

var p = sync.Pool{New: func() any { return new(scratch) }}

func badPut(s *scratch) {
	p.Put(s) // want "without a visible prior clear"
}

func useAfter(s *scratch) int {
	s.names = s.names[:0]
	p.Put(s)
	return len(s.names) // want "used after Pool.Put"
}
