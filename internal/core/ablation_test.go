package core

import (
	"fmt"
	"testing"

	"repro/internal/jobs"
)

// The PreferEmpty heuristic must never cost more than LowestSlot on a
// displacement-heavy workload: base jobs repeatedly landing where
// higher-level jobs sit.
func TestPlacementPolicyAblation(t *testing.T) {
	run := func(policy PlacementPolicy) int {
		s := New(WithPlacementPolicy(policy))
		total := 0
		// Ten wide jobs across [0, 512), then base jobs sweeping the
		// low slots, then churn the wide jobs.
		for i := 0; i < 10; i++ {
			c, err := s.Insert(jobs.Job{Name: fmt.Sprintf("w%d", i), Window: win(0, 512)})
			if err != nil {
				t.Fatal(err)
			}
			total += c.Reallocations
		}
		for i := int64(0); i < 16; i++ {
			c, err := s.Insert(jobs.Job{Name: fmt.Sprintf("b%d", i), Window: win(i, i+1)})
			if err != nil {
				t.Fatal(err)
			}
			total += c.Reallocations
		}
		for round := 0; round < 20; round++ {
			name := fmt.Sprintf("w%d", round%10)
			c1, err := s.Delete(name)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := s.Insert(jobs.Job{Name: name, Window: win(0, 512)})
			if err != nil {
				t.Fatal(err)
			}
			total += c1.Reallocations + c2.Reallocations
		}
		if err := s.SelfCheck(); err != nil {
			t.Fatal(err)
		}
		return total
	}
	prefer := run(PreferEmpty)
	lowest := run(LowestSlot)
	if prefer > lowest {
		t.Errorf("PreferEmpty cost %d exceeds LowestSlot cost %d", prefer, lowest)
	}
	t.Logf("ablation: PreferEmpty=%d LowestSlot=%d", prefer, lowest)
}

// LowestSlot placement deliberately displaces higher-level jobs; verify
// a concrete displacement happens and is handled correctly.
func TestLowestSlotDisplaces(t *testing.T) {
	s := New(WithPlacementPolicy(LowestSlot))
	mustInsert(t, s, job("big", 0, 64))
	bigSlot := s.Assignment()["big"].Slot
	// Same-level jobs never displace each other, so force a cross-level
	// displacement: a base job pinned exactly at big's slot.
	c := mustInsert(t, s, jobs.Job{Name: "pin", Window: win(bigSlot, bigSlot+1)})
	if c.Reallocations != 2 {
		t.Errorf("cost %+v, want pin + displaced big", c)
	}
	verifyFeasible(t, s)
}
