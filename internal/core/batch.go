// Batched admission for the reservation core. The per-request machinery
// (reservations, PLACE cascades) is inherently sequential, but the
// static admission checks — request well-formedness, alignment,
// duplicate detection, the interval cap — are not: ApplyBatch resolves
// all of them in ONE preflight pass over the name-set trajectory of the
// batch, then drives the reservation machinery through the prevalidated
// execution halves of Insert and Delete.
//
// Equivalence: the preflight computes exactly the verdicts sequential
// execution would, because static failures never mutate scheduler state
// and every non-static execution failure poisons the scheduler (after
// which both paths fail every remaining request with the poison error).
// The final schedule is therefore identical to applying the requests one
// at a time, on every input.
package core

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
)

var _ sched.BatchScheduler = (*Scheduler)(nil)

// ApplyBatch serves the requests in order with one static-admission pass
// for the whole batch. A failed request does not abort the batch; see
// sched.BatchScheduler for the shared bulk semantics.
func (s *Scheduler) ApplyBatch(reqs []jobs.Request) ([]metrics.Cost, error) {
	costs := make([]metrics.Cost, len(reqs))
	errs := make([]error, len(reqs))
	static := s.preflight(reqs)
	for i, r := range reqs {
		if s.poisoned != nil {
			errs[i] = s.poisoned
			continue
		}
		if static[i] != nil {
			errs[i] = static[i]
			continue
		}
		switch r.Kind {
		case jobs.Insert:
			costs[i], errs[i] = s.insertPrevalidated(jobs.Job{Name: r.Name, Window: r.Window})
		case jobs.Delete:
			j := s.activeJob(r.Name)
			if j == nil {
				// Unreachable when the preflight simulation holds; kept as
				// a guard against drift between the two passes.
				errs[i] = fmt.Errorf("%w: %q", sched.ErrUnknownJob, r.Name)
				continue
			}
			costs[i], errs[i] = s.deletePrevalidated(j)
		}
	}
	return costs, sched.NewBatchError(errs)
}

// preflight computes every request's static admission verdict in one
// pass, simulating the active-name trajectory of the batch (an insert
// adds its name, a delete removes it). The checks and their order match
// Insert and Delete exactly, so a statically rejected request gets the
// same error sequential execution would produce.
func (s *Scheduler) preflight(reqs []jobs.Request) []error {
	// Copy-on-write overlay over the live job set: only batch-touched
	// names are tracked, so the pass costs O(batch), not O(active jobs).
	over := make(map[string]bool, len(reqs))
	has := func(name string) bool {
		if v, ok := over[name]; ok {
			return v
		}
		return s.activeJob(name) != nil
	}
	out := make([]error, len(reqs))
	for i, r := range reqs {
		switch r.Kind {
		case jobs.Insert:
			j := jobs.Job{Name: r.Name, Window: r.Window}
			if err := j.Validate(); err != nil {
				out[i] = err
				continue
			}
			if !j.Window.IsAligned() {
				out[i] = fmt.Errorf("%w: %v", sched.ErrMisaligned, j.Window)
				continue
			}
			if has(j.Name) {
				out[i] = fmt.Errorf("%w: %q", sched.ErrDuplicateJob, j.Name)
				continue
			}
			if level := align.LevelOfSpan(j.Window.Span()); level > 0 {
				if n := j.Window.Span() / align.IntervalSpan(level); n > s.maxIntervals {
					out[i] = fmt.Errorf("core: window %v spans %d intervals, exceeding the cap %d (wrap with trim)",
						j.Window, n, s.maxIntervals)
					continue
				}
			}
			over[j.Name] = true
		case jobs.Delete:
			if !has(r.Name) {
				out[i] = fmt.Errorf("%w: %q", sched.ErrUnknownJob, r.Name)
				continue
			}
			over[r.Name] = false
		default:
			out[i] = fmt.Errorf("sched: unknown request kind %d", r.Kind)
		}
	}
	return out
}
