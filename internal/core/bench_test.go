package core

import (
	"fmt"
	"testing"

	"repro/internal/jobs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// BenchmarkInsertDeleteSteadyState measures one insert+delete pair at a
// steady population across span regimes.
func BenchmarkInsertDeleteSteadyState(b *testing.B) {
	for _, span := range []int64{8, 64, 1024} {
		b.Run(fmt.Sprintf("span=%d", span), func(b *testing.B) {
			s := New(WithMaxIntervals(1 << 24))
			// Steady population of 64 jobs in disjoint windows.
			for i := int64(0); i < 64; i++ {
				j := jobs.Job{Name: fmt.Sprintf("bg%d", i),
					Window: jobs.Window{Start: i * span, End: (i + 1) * span}}
				if _, err := s.Insert(j); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("p%d", i)
				if _, err := s.Insert(jobs.Job{Name: name,
					Window: jobs.Window{Start: 0, End: span}}); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Delete(name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChurn measures request throughput under random churn.
func BenchmarkChurn(b *testing.B) {
	g, err := workload.NewGenerator(workload.Config{
		Seed: 1, Gamma: 8, Horizon: 8192, Steps: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	s := New(WithMaxIntervals(1 << 24))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Apply(s, g.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelfCheck measures the invariant checker's cost (tests run it
// after every request; this quantifies what that costs).
func BenchmarkSelfCheck(b *testing.B) {
	g, err := workload.NewGenerator(workload.Config{
		Seed: 2, Gamma: 8, Horizon: 4096, Steps: 500,
	})
	if err != nil {
		b.Fatal(err)
	}
	s := New()
	if _, err := sched.Run(s, g.Sequence(), nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SelfCheck(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReservationSnapshot measures the history-independence
// snapshot (the E8 primitive).
func BenchmarkReservationSnapshot(b *testing.B) {
	g, err := workload.NewGenerator(workload.Config{
		Seed: 3, Gamma: 8, Horizon: 4096, Steps: 500,
	})
	if err != nil {
		b.Fatal(err)
	}
	s := New()
	if _, err := sched.Run(s, g.Sequence(), nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := s.ReservationSnapshot(); len(snap) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
