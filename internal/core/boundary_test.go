package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/align"
	"repro/internal/feasible"
	"repro/internal/jobs"
)

// Spans exactly at the level thresholds: 32 (top of level 0), 64 (bottom
// of level 1), 256 (top of level 1), 512 (bottom of level 2).
func TestLevelBoundarySpans(t *testing.T) {
	s := New()
	boundaries := []struct {
		span      int64
		wantLevel int
	}{
		{32, 0}, {64, 1}, {256, 1}, {512, 2},
	}
	for i, b := range boundaries {
		name := fmt.Sprintf("b%d", i)
		mustInsert(t, s, jobs.Job{Name: name, Window: win(0, b.span)})
		if got := align.LevelOfSpan(b.span); got != b.wantLevel {
			t.Errorf("span %d at level %d, want %d", b.span, got, b.wantLevel)
		}
	}
	verifyFeasible(t, s)
	if err := s.VerifyLemma8(); err != nil {
		t.Fatal(err)
	}
	// Delete them in reverse.
	for i := len(boundaries) - 1; i >= 0; i-- {
		mustDelete(t, s, fmt.Sprintf("b%d", i))
	}
	if s.Active() != 0 {
		t.Error("jobs remain")
	}
}

// Jobs at large time offsets: the sparse interval map must not care
// where on the timeline windows sit.
func TestFarOffsets(t *testing.T) {
	s := New()
	base := int64(1) << 50
	for i := 0; i < 8; i++ {
		span := int64(64)
		start := base + int64(i)*span
		mustInsert(t, s, jobs.Job{Name: fmt.Sprintf("far%d", i), Window: win(start, start+span)})
	}
	// Plus one near zero.
	mustInsert(t, s, job("near", 0, 64))
	verifyFeasible(t, s)
	mustDelete(t, s, "far3")
	mustInsert(t, s, jobs.Job{Name: "far3b", Window: win(base, base+64)})
	verifyFeasible(t, s)
}

// Same window emptied and refilled repeatedly: window state persists with
// x=0 and must come back cleanly.
func TestWindowEmptyRefillCycles(t *testing.T) {
	s := New()
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 4; i++ {
			mustInsert(t, s, jobs.Job{Name: fmt.Sprintf("c%dj%d", cycle, i), Window: win(64, 128)})
		}
		if err := s.VerifyLemma8(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		for i := 0; i < 4; i++ {
			mustDelete(t, s, fmt.Sprintf("c%dj%d", cycle, i))
		}
	}
	if s.Active() != 0 {
		t.Error("jobs remain")
	}
	// Reservation state must be back to base-only everywhere.
	for _, st := range s.ReservationSnapshot() {
		t.Errorf("lingering snapshot entry for active window: %+v", st)
	}
}

// Base jobs pinned at every slot of a level-1 interval: the interval's
// allowance must shrink to zero and recover after deletions.
func TestAllowanceExhaustionAndRecovery(t *testing.T) {
	s := New()
	// One level-1 job first so its interval exists and holds reservations.
	mustInsert(t, s, job("wide", 0, 64))
	// Pin base jobs into slots 0..31 (the level-1 interval [0,32)).
	for i := int64(0); i < 32; i++ {
		mustInsert(t, s, jobs.Job{Name: fmt.Sprintf("pin%d", i), Window: win(i, i+1)})
	}
	verifyFeasible(t, s)
	// The wide job must have been pushed to [32, 64).
	if slot := s.Assignment()["wide"].Slot; slot < 32 {
		t.Errorf("wide job at %d, expected >= 32", slot)
	}
	// Free the first interval again.
	for i := int64(0); i < 32; i++ {
		mustDelete(t, s, fmt.Sprintf("pin%d", i))
	}
	verifyFeasible(t, s)
	if err := s.VerifyLemma8(); err != nil {
		t.Fatal(err)
	}
}

func TestLevelBreakdown(t *testing.T) {
	s := New()
	mustInsert(t, s, job("base", 0, 8))    // level 0
	mustInsert(t, s, job("mid", 0, 64))    // level 1
	mustInsert(t, s, job("big", 0, 1024))  // level 2
	mustInsert(t, s, job("mid2", 64, 128)) // level 1
	br := s.LevelBreakdown()
	if len(br) != align.NumLevels {
		t.Fatalf("%d levels", len(br))
	}
	if br[0].Jobs != 1 || br[1].Jobs != 2 || br[2].Jobs != 1 {
		t.Errorf("job breakdown %+v", br)
	}
	if br[1].Intervals == 0 || br[2].Intervals == 0 {
		t.Errorf("intervals missing: %+v", br)
	}
	if br[1].Fulfilled == 0 {
		t.Errorf("no fulfilled reservations at level 1: %+v", br)
	}
}

func TestDebugDump(t *testing.T) {
	s := New()
	mustInsert(t, s, job("alpha", 0, 64))
	mustInsert(t, s, job("beta", 0, 8))
	var buf bytes.Buffer
	if err := s.DebugDump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"2 jobs",
		"job alpha",
		"job beta",
		"window [0,64)",
		"interval L1 [0,32)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDebugDumpPoisoned(t *testing.T) {
	s := New()
	mustInsert(t, s, job("a", 0, 1))
	s.Insert(job("b", 0, 1)) // poisons
	var buf bytes.Buffer
	if err := s.DebugDump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "POISONED") {
		t.Error("poison marker missing")
	}
}

// Interleave base and level jobs at the same timeline region heavily and
// confirm feasibility against offline EDF at every tenth step.
func TestDenseInterleaving(t *testing.T) {
	s := New()
	id := 0
	insert := func(start, end int64) {
		t.Helper()
		mustInsert(t, s, jobs.Job{Name: fmt.Sprintf("d%d", id), Window: win(start, end)})
		id++
	}
	for round := 0; round < 6; round++ {
		insert(0, 512)                              // level 2
		insert(int64(round)*64, int64(round)*64+64) // level 1
		insert(int64(round)*8, int64(round)*8+8)    // level 0
		insert(int64(round), int64(round)+1)        // pinned base
		if !feasible.IsFeasible(s.Jobs(), 1) {
			t.Fatalf("round %d: infeasible active set (test bug)", round)
		}
		verifyFeasible(t, s)
	}
}
