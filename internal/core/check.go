package core

import (
	"fmt"
	"sort"

	"repro/internal/align"
	"repro/internal/ident"
)

// SelfCheck revalidates every structural invariant of the scheduler:
// schedule feasibility, Invariant 5's round-robin reservation counts,
// allowance consistency, fulfillment priority (shortest windows first),
// and the agreement between window-side and interval-side bookkeeping.
// It is O(total state) and intended for tests.
func (s *Scheduler) SelfCheck() error {
	if s.poisoned != nil {
		return s.poisoned
	}
	return s.selfCheck()
}

// Poisoned implements sched.Poisoner: the sticky failure a mid-request
// insert error leaves behind, or nil while the scheduler is usable.
// Wrappers use it to tell a clean rejection from a broken scheduler.
func (s *Scheduler) Poisoned() error { return s.poisoned }

func (s *Scheduler) selfCheck() error {
	// Jobs <-> slots agreement; every job inside its window.
	if s.active != len(s.slots) {
		return fmt.Errorf("core: %d jobs but %d occupied slots", s.active, len(s.slots))
	}
	if got := s.names.Len(); got != s.active {
		return fmt.Errorf("core: %d interned names but %d active jobs", got, s.active)
	}
	for id, j := range s.byID {
		if j == nil {
			continue
		}
		if j.id != ident.ID(id) {
			return fmt.Errorf("core: job %q (ID %d) indexed under ID %d", j.name, j.id, id)
		}
		if got := s.names.Name(j.id); got != j.name {
			return fmt.Errorf("core: job ID %d interned as %q but carries name %q", j.id, got, j.name)
		}
		if !j.window().Contains(j.slot) {
			return fmt.Errorf("core: job %q at slot %d outside window %v", j.name, j.slot, j.window())
		}
		if s.slots[j.slot] != j {
			return fmt.Errorf("core: slot map for %d does not point at job %q", j.slot, j.name)
		}
		if got := align.LevelOfSpan(j.key.span); got != j.level {
			return fmt.Errorf("core: job %q cached level %d, want %d", j.name, j.level, got)
		}
		// Level >= 1 jobs must sit in a fulfilled slot of their window.
		if j.level >= 1 {
			ws := s.windows[j.key]
			if ws == nil {
				return fmt.Errorf("core: job %q has no window state", j.name)
			}
			if ws.fulfilled[j.slot] != j.id {
				return fmt.Errorf("core: job %q at slot %d not recorded in window %v fulfilled set",
					j.name, j.slot, j.window())
			}
		}
	}

	// Window states.
	xCount := make(map[winKey]int)
	for _, j := range s.byID {
		if j != nil && j.level >= 1 {
			xCount[j.key]++
		}
	}
	for key, ws := range s.windows {
		if ws.key != key {
			return fmt.Errorf("core: window %v indexed under %v", ws.key.window(), key.window())
		}
		if ws.x != xCount[key] {
			return fmt.Errorf("core: window %v records x=%d but %d active jobs", key.window(), ws.x, xCount[key])
		}
		if ws.x > 0 && !ws.materialized {
			return fmt.Errorf("core: window %v has jobs but is not materialized", key.window())
		}
		w := key.window()
		for t, occ := range ws.fulfilled {
			if !w.Contains(t) {
				return fmt.Errorf("core: window %v fulfilled slot %d outside window", w, t)
			}
			iv := s.ivs[s.intervalKeyAt(ws.level, t)]
			if iv == nil {
				return fmt.Errorf("core: window %v fulfilled slot %d in nonexistent interval", w, t)
			}
			if got, ok := iv.assigned[t]; !ok || got != key {
				return fmt.Errorf("core: window %v fulfilled slot %d not assigned in interval (got %v, ok=%v)",
					w, t, got, ok)
			}
			occupant := s.slots[t]
			switch {
			case occ == ident.None:
				if occupant != nil && occupant.level <= ws.level {
					return fmt.Errorf("core: window %v slot %d marked job-free but holds level-%d job %q",
						w, t, occupant.level, occupant.name)
				}
			default:
				if occupant == nil || occupant.id != occ {
					return fmt.Errorf("core: window %v slot %d records occupant ID %d but holds %v", w, t, occ, occupant)
				}
				if occupant.key != key {
					return fmt.Errorf("core: window %v slot %d holds foreign same-level job %q", w, t, occupant.name)
				}
			}
		}
	}

	// Intervals.
	for key, iv := range s.ivs {
		if iv.level != key.level || iv.start != key.start {
			return fmt.Errorf("core: interval (%d,%d) indexed under %+v", iv.level, iv.start, key)
		}
		if iv.span != align.IntervalSpan(iv.level) {
			return fmt.Errorf("core: interval at %d has span %d", iv.start, iv.span)
		}
		capacity := 0
		for t := iv.start; t < iv.start+iv.span; t++ {
			occ := s.slots[t]
			inAllowance := occ == nil || occ.level >= iv.level
			if !inAllowance {
				if _, assigned := iv.assigned[t]; assigned {
					return fmt.Errorf("core: interval %d slot %d assigned but outside allowance", iv.start, t)
				}
				continue
			}
			capacity++
		}
		if len(iv.assigned) > capacity {
			return fmt.Errorf("core: interval %d has %d assigned slots, allowance %d", iv.start, len(iv.assigned), capacity)
		}
		// Assigned slots must be inside the interval and agree with the
		// owning window's fulfilled set.
		fulfilled := make(map[winKey]int)
		for t, wk := range iv.assigned {
			if t < iv.start || t >= iv.start+iv.span {
				return fmt.Errorf("core: interval %d assigned slot %d out of range", iv.start, t)
			}
			ws := s.windows[wk]
			if ws == nil {
				return fmt.Errorf("core: interval %d slot %d assigned to unknown window %v", iv.start, t, wk.window())
			}
			if _, ok := ws.fulfilled[t]; !ok {
				return fmt.Errorf("core: interval %d slot %d assigned to %v but missing from its fulfilled set",
					iv.start, t, wk.window())
			}
			fulfilled[wk]++
		}
		// The O(1) fulfilled-count cache must agree with the recount.
		if len(iv.fullCount) != len(fulfilled) {
			return fmt.Errorf("core: interval %d caches %d fulfilled windows, recount has %d",
				iv.start, len(iv.fullCount), len(fulfilled))
		}
		for wk, n := range fulfilled {
			if iv.fullCount[wk] != n {
				return fmt.Errorf("core: interval %d caches %d fulfilled for %v, recount %d",
					iv.start, iv.fullCount[wk], wk.window(), n)
			}
		}
		// Reservation counts: base 1 per enclosing span, plus the
		// round-robin share of 2x extras (Invariant 5).
		for wk, count := range iv.resCount {
			ws := s.windows[wk]
			if ws == nil {
				return fmt.Errorf("core: interval %d has reservations for unknown window %v", iv.start, wk.window())
			}
			idx := (iv.start - wk.start) / iv.span
			want := 1 + extraShare(int64(ws.x), idx, ws.numIntervals)
			if ws.materialized && count != want {
				return fmt.Errorf("core: interval %d window %v has %d reservations, Invariant 5 wants %d (x=%d idx=%d)",
					iv.start, wk.window(), count, want, ws.x, idx)
			}
			if fulfilled[wk] > count {
				return fmt.Errorf("core: interval %d window %v fulfills %d of %d reservations",
					iv.start, wk.window(), fulfilled[wk], count)
			}
		}
		for wk := range fulfilled {
			if iv.resCount[wk] == 0 {
				return fmt.Errorf("core: interval %d fulfills reservation of %v without a count", iv.start, wk.window())
			}
		}
		// Fulfillment priority: no waitlisted window may be shorter than a
		// fulfilled one, and free allowance slots imply an empty waitlist.
		freeSlots := capacity - len(iv.assigned)
		var maxFulfilledSpan, minWaitSpan int64
		minWaitSpan = 1 << 62
		for wk, count := range iv.resCount {
			f := fulfilled[wk]
			if f > 0 && wk.span > maxFulfilledSpan {
				maxFulfilledSpan = wk.span
			}
			if count > f && wk.span < minWaitSpan {
				minWaitSpan = wk.span
			}
		}
		if minWaitSpan < maxFulfilledSpan {
			return fmt.Errorf("core: interval %d waitlists a span-%d window while fulfilling a span-%d window",
				iv.start, minWaitSpan, maxFulfilledSpan)
		}
		if freeSlots > 0 && minWaitSpan != 1<<62 {
			return fmt.Errorf("core: interval %d has %d free slots but a waitlisted span-%d window",
				iv.start, freeSlots, minWaitSpan)
		}
	}
	return nil
}

// extraShare is window W's round-robin share of its 2x job reservations
// at interval index idx (Invariant 5): floor(2x/N) plus one for the first
// (2x mod N) intervals.
func extraShare(x, idx, n int64) int {
	extras := 2 * x
	share := extras / n
	if idx < extras%n {
		share++
	}
	return int(share)
}

// MinLemma8Slack returns the minimum over materialized windows of
// (fulfilled reservations − x), the quantity Lemma 8 lower-bounds by 1
// under 8-underallocation. A return of 1 means some window is at the
// boundary; 0 or less means the invariant's conclusion is violated
// (possible only on under-slack instances). Returns a large sentinel
// when no window is materialized.
func (s *Scheduler) MinLemma8Slack() int {
	min := 1 << 30
	for _, ws := range s.windows {
		if !ws.materialized {
			continue
		}
		if slack := len(ws.fulfilled) - ws.x; slack < min {
			min = slack
		}
	}
	return min
}

// VerifyLemma8 checks the guarantee of Lemma 8: every materialized window
// with x active jobs holds at least x+1 fulfilled reservations. This only
// holds when the request sequence is 8-underallocated, so it is a
// separate check from SelfCheck.
func (s *Scheduler) VerifyLemma8() error {
	for key, ws := range s.windows {
		if !ws.materialized {
			continue
		}
		if len(ws.fulfilled) < ws.x+1 {
			return fmt.Errorf("core: window %v has x=%d jobs but only %d fulfilled reservations (Lemma 8 wants >= %d)",
				key.window(), ws.x, len(ws.fulfilled), ws.x+1)
		}
	}
	return nil
}

// ReservationState summarizes which reservations an interval fulfills for
// one window: Observation 7 says this is history independent.
type ReservationState struct {
	Level       int
	Interval    Time
	WindowStart Time
	WindowSpan  int64
	Fulfilled   int
	Waitlisted  int
}

// ReservationSnapshot returns the fulfilled/waitlisted reservation counts
// of every (interval, window) pair for windows that currently have at
// least one active job, sorted deterministically. Two schedulers holding
// the same active job multiset must produce identical snapshots
// regardless of the request history (Observation 7).
func (s *Scheduler) ReservationSnapshot() []ReservationState {
	var out []ReservationState
	for key, iv := range s.ivs {
		for wk, count := range iv.resCount {
			ws := s.windows[wk]
			if ws == nil || ws.x == 0 {
				continue
			}
			f := s.fulfilledCount(iv, wk)
			out = append(out, ReservationState{
				Level:       key.level,
				Interval:    iv.start,
				WindowStart: wk.start,
				WindowSpan:  wk.span,
				Fulfilled:   f,
				Waitlisted:  count - f,
			})
		}
	}
	sort.Slice(out, func(i, k int) bool {
		a, b := out[i], out[k]
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		if a.Interval != b.Interval {
			return a.Interval < b.Interval
		}
		if a.WindowSpan != b.WindowSpan {
			return a.WindowSpan < b.WindowSpan
		}
		return a.WindowStart < b.WindowStart
	})
	return out
}

// Stats reports coarse internal statistics, useful in examples and
// benchmarks.
type Stats struct {
	ActiveJobs int
	Windows    int
	Intervals  int
	SlotsInUse int
}

// Stats returns current internal statistics.
func (s *Scheduler) Stats() Stats {
	return Stats{
		ActiveJobs: s.active,
		Windows:    len(s.windows),
		Intervals:  len(s.ivs),
		SlotsInUse: len(s.slots),
	}
}
