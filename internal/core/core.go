// Package core implements the paper's primary contribution (Section 4):
// the single-machine, reservation-based pecking-order reallocating
// scheduler for recursively aligned unit jobs, achieving per-request
// reallocation cost O(min{log* n, log* Δ}) on sufficiently underallocated
// instances.
//
// # Levels and intervals
//
// Spans are partitioned into levels by the tower thresholds L1 = 32,
// L2 = 2^{L1/4} = 256, L3 = 2^{L2/4} = 2^64 (clamped to 2^62 here):
// level 0 handles spans <= 32, level 1 spans in (32, 256], level 2 the
// rest. A level-l window with span 2^k * Ll is partitioned into 2^k
// aligned level-l intervals of exactly Ll slots.
//
// # Reservations (Invariant 5)
//
// A level-l window W with x active jobs holds 2x + 2^k reservations in
// its intervals: one base reservation per interval (materialized when
// the interval is first created, for every possible enclosing span, which
// is equivalent to the paper's "initially each window has one reservation
// in each interval"), plus two job reservations per job spread round-robin
// left to right. Each interval fulfills the reservations of the shortest
// windows first, up to its allowance (slots not occupied by lower-level
// jobs); the rest are waitlisted. Under 8-underallocation every window
// with x jobs keeps at least x+1 fulfilled reservations (Lemma 8), so a
// job-free fulfilled slot always exists for PLACE and MOVE.
//
// # Pecking order
//
// Lower levels schedule without regard to higher levels: placing a job in
// a slot removes that slot from every higher-level interval's allowance
// and may displace one higher-level job, which is recursively re-placed
// at its own level (the PLACE cascade, at most one reallocation per
// level). Base-level jobs (span <= 32) are scheduled by constant-depth
// pecking-order displacement inside their windows.
//
// The scheduler accepts only aligned windows; use the alignsched wrapper
// for arbitrary windows, the multi wrapper for m machines, and the trim
// wrapper to bound window spans by the active job count.
package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/align"
	"repro/internal/ident"
	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Time is an integer timeslot.
type Time = int64

// topLevel is the highest reservation level (levels are 0, 1, 2).
const topLevel = align.NumLevels - 1

// winKey identifies an aligned window.
type winKey struct {
	start Time
	span  int64
}

func (k winKey) window() jobs.Window { return jobs.Window{Start: k.start, End: k.start + k.span} }

func keyOf(w jobs.Window) winKey { return winKey{start: w.Start, span: w.Span()} }

// ivKey identifies a level-l interval by its level and start.
type ivKey struct {
	level int
	start Time
}

// jobState is one active job. The hot-path machinery references jobs by
// their interned dense ID (slice indexing, integer map keys); the name
// is kept only for error texts and the public snapshots. jobStates are
// recycled through the scheduler's free list, so a steady-state
// insert/delete churn allocates nothing.
type jobState struct {
	name  string
	id    ident.ID
	key   winKey
	level int
	slot  Time
}

func (j *jobState) window() jobs.Window { return j.key.window() }

// windowState tracks a level-l (l >= 1) window's jobs and fulfilled
// reservations. Window states are created lazily (either by a job arrival
// or by an interval materializing its base reservation) and persist for
// the lifetime of the scheduler, exactly as the paper's conceptual
// "every window always has its base reservations".
type windowState struct {
	key          winKey
	level        int
	numIntervals int64 // 2^k
	x            int   // active jobs with exactly this window
	materialized bool  // all intervals created (true once a job arrives)
	// fulfilled maps each slot backing a fulfilled reservation of this
	// window to the ID of the own-level job occupying it, or ident.None
	// if the slot holds no level-l job (it may still hold a higher-level
	// job).
	fulfilled map[Time]ident.ID
}

// interval is one level-l interval: Ll consecutive slots.
type interval struct {
	level int
	start Time
	span  int64
	// resCount is the number of reservations (base + round-robin extras)
	// each enclosing window currently holds in this interval.
	resCount map[winKey]int
	// assigned maps a slot to the window whose fulfilled reservation is
	// backed by that slot. Slots occupied by lower-level jobs are never
	// assigned (they are outside the allowance).
	assigned map[Time]winKey
	// fullCount caches, per window, how many of its reservations this
	// interval fulfills (len of assigned entries pointing at it), so the
	// waitlist checks in promote/removeReservation are O(1) instead of a
	// scan over assigned.
	fullCount map[winKey]int
}

// Option configures the scheduler.
type Option func(*Scheduler)

// WithMaxIntervals caps the number of intervals a single window may span
// (default 1<<20). Inserting a job whose window exceeds the cap returns
// an error; wrap the scheduler with the trim package to keep windows
// bounded by the active job count instead.
func WithMaxIntervals(n int64) Option {
	return func(s *Scheduler) { s.maxIntervals = n }
}

// PlacementPolicy selects which fulfilled slot PLACE and MOVE take when
// several are available. The paper's algorithm is correct under any
// choice ("the scheduler chooses s without regard to these
// possibilities"); the policy is an ablation knob for measuring how much
// the displacement-avoiding heuristic saves.
type PlacementPolicy uint8

const (
	// PreferEmpty takes a completely empty slot when one exists,
	// avoiding a higher-level displacement (default).
	PreferEmpty PlacementPolicy = iota
	// LowestSlot always takes the lowest fulfilled slot, displacing
	// higher-level jobs indiscriminately — the literal reading of the
	// paper's pecking order.
	LowestSlot
)

// WithPlacementPolicy sets the slot-choice heuristic (default
// PreferEmpty).
func WithPlacementPolicy(p PlacementPolicy) Option {
	return func(s *Scheduler) { s.policy = p }
}

// Scheduler is the reservation-based pecking-order scheduler.
type Scheduler struct {
	// names is the per-scheduler ID space: a job's name is interned when
	// the job is admitted and released when it leaves, so byID stays
	// dense (freed IDs are reissued).
	names  *ident.Table
	byID   []*jobState // ID-indexed active jobs; nil = inactive
	spare  []*jobState // recycled jobState structs
	active int

	slots   map[Time]*jobState
	windows map[winKey]*windowState
	ivs     map[ivKey]*interval

	maxIntervals int64
	policy       PlacementPolicy
	poisoned     error

	// cost accumulates the reallocations of the request in flight;
	// levelCost attributes them to the level of each moved job.
	cost      metrics.Cost
	levelCost [align.NumLevels]int
}

var _ sched.Scheduler = (*Scheduler)(nil)

// Pools for the reservation machinery. The trimming wrappers rebuild by
// building a FRESH core and discarding the old one, so on rebuild-heavy
// workloads the windows, intervals, and their maps are the dominant
// allocation source. Recycle (sched.Recycler) feeds a discarded
// scheduler's structures back here; New drains the pools first, so a
// rebuild reuses the previous generation's capacity.
// Pooling invariant: everything is cleared on the way in — maps emptied
// (capacity kept), jobState name strings zeroed, the ID table reset —
// so pooled structures pin no job names and leak no state between
// generations.
var (
	schedPool    sync.Pool // *Scheduler
	windowPool   sync.Pool // *windowState (fulfilled cleared)
	intervalPool sync.Pool // *interval (resCount/assigned cleared)
)

// errRecycled poisons a recycled scheduler so a stale reference fails
// loudly instead of corrupting the structure's next life.
var errRecycled = errors.New("core: scheduler was recycled (stale reference)")

// New returns an empty single-machine reservation scheduler, reusing
// pooled structures when a discarded scheduler donated them.
func New(opts ...Option) *Scheduler {
	var s *Scheduler
	if v := schedPool.Get(); v != nil {
		s = v.(*Scheduler)
		s.poisoned = nil
		s.maxIntervals = 1 << 20
		s.policy = PreferEmpty
	} else {
		s = &Scheduler{
			names:   ident.New(),
			byID:    make([]*jobState, 1), // ID 0 is ident.None
			slots:   make(map[Time]*jobState),
			windows: make(map[winKey]*windowState),
			ivs:     make(map[ivKey]*interval),
		}
		s.maxIntervals = 1 << 20
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Recycle implements sched.Recycler: every window, interval, and job
// state goes back to the package pools, the ID space resets, and the
// scheduler itself is pooled for the next New. The caller must hold no
// references; a stale use fails with a poisoned error.
func (s *Scheduler) Recycle() {
	for key, iv := range s.ivs {
		delete(s.ivs, key)
		clear(iv.resCount)
		clear(iv.assigned)
		clear(iv.fullCount)
		intervalPool.Put(iv)
	}
	for key, ws := range s.windows {
		delete(s.windows, key)
		clear(ws.fulfilled)
		ws.x, ws.materialized = 0, false
		windowPool.Put(ws)
	}
	for i, j := range s.byID {
		if j != nil {
			s.byID[i] = nil
			*j = jobState{} // drop the name reference
			s.spare = append(s.spare, j)
		}
	}
	clear(s.slots)
	s.names.Reset()
	s.active = 0
	s.cost = metrics.Cost{}
	s.levelCost = [align.NumLevels]int{}
	s.poisoned = errRecycled
	schedPool.Put(s)
}

// jobAt returns the active job bound to id, or nil.
func (s *Scheduler) jobAt(id ident.ID) *jobState {
	if int(id) < len(s.byID) {
		return s.byID[id]
	}
	return nil
}

// activeJob resolves a name to its active job state, or nil.
func (s *Scheduler) activeJob(name string) *jobState {
	id, ok := s.names.Get(name)
	if !ok {
		return nil
	}
	return s.jobAt(id)
}

// registerJob binds js.id to js, growing the ID-indexed slice on demand.
func (s *Scheduler) registerJob(js *jobState) {
	for int(js.id) >= len(s.byID) {
		s.byID = append(s.byID, nil)
	}
	s.byID[js.id] = js
	s.active++
}

// releaseJob unbinds a deleted job, frees its ID, and recycles the
// struct.
func (s *Scheduler) releaseJob(j *jobState) {
	s.byID[j.id] = nil
	s.active--
	s.names.Release(j.id)
	*j = jobState{} // drop the name reference before pooling
	s.spare = append(s.spare, j)
}

// takeJobState returns a zeroed jobState, recycled when possible.
func (s *Scheduler) takeJobState() *jobState {
	if n := len(s.spare); n > 0 {
		js := s.spare[n-1]
		s.spare = s.spare[:n-1]
		return js
	}
	return &jobState{}
}

// Machines returns 1: this is a single-machine scheduler.
func (s *Scheduler) Machines() int { return 1 }

// Active returns the number of active jobs.
func (s *Scheduler) Active() int { return s.active }

// Jobs returns a snapshot of the active job set.
func (s *Scheduler) Jobs() []jobs.Job {
	out := make([]jobs.Job, 0, s.active)
	for _, j := range s.byID {
		if j != nil {
			out = append(out, jobs.Job{Name: j.name, Window: j.window()})
		}
	}
	return out
}

// Assignment returns a snapshot of the schedule (machine always 0).
func (s *Scheduler) Assignment() jobs.Assignment {
	out := make(jobs.Assignment, s.active)
	for _, j := range s.byID {
		if j != nil {
			out[j.name] = jobs.Placement{Machine: 0, Slot: j.slot}
		}
	}
	return out
}

// Insert adds an aligned job (Figure 1: two RESERVE calls, then PLACE).
func (s *Scheduler) Insert(j jobs.Job) (metrics.Cost, error) {
	if s.poisoned != nil {
		return metrics.Cost{}, s.poisoned
	}
	if err := j.Validate(); err != nil {
		return metrics.Cost{}, err
	}
	if !j.Window.IsAligned() {
		return metrics.Cost{}, fmt.Errorf("%w: %v", sched.ErrMisaligned, j.Window)
	}
	if s.activeJob(j.Name) != nil {
		return metrics.Cost{}, fmt.Errorf("%w: %q", sched.ErrDuplicateJob, j.Name)
	}
	if level := align.LevelOfSpan(j.Window.Span()); level > 0 {
		if n := j.Window.Span() / align.IntervalSpan(level); n > s.maxIntervals {
			return metrics.Cost{}, fmt.Errorf("core: window %v spans %d intervals, exceeding the cap %d (wrap with trim)",
				j.Window, n, s.maxIntervals)
		}
	}
	return s.insertPrevalidated(j)
}

// insertPrevalidated runs the insert machinery for a job that already
// passed the static admission checks (well-formed, aligned, not a
// duplicate, under the interval cap). It is the execution half of
// Insert, shared with the batch path.
//
//reallocvet:hotpath
func (s *Scheduler) insertPrevalidated(j jobs.Job) (metrics.Cost, error) {
	js := s.takeJobState()
	*js = jobState{name: j.Name, id: s.names.Intern(j.Name), key: keyOf(j.Window), level: align.LevelOfSpan(j.Window.Span())}
	s.cost = metrics.Cost{}
	s.levelCost = [align.NumLevels]int{}

	var err error
	if js.level == 0 {
		err = s.baseInsert(js)
	} else {
		err = s.reservedInsert(js)
	}
	if err != nil {
		// A mid-request failure can leave partially updated reservation
		// state; poison the scheduler so the caller cannot keep using an
		// inconsistent schedule. (Failures only occur on instances that
		// are not sufficiently underallocated. The interned ID is not
		// released: a poisoned scheduler serves nothing anyway.)
		s.poisoned = fmt.Errorf("core: scheduler poisoned by failed insert of %q: %w", j.Name, err) //reallocvet:allow hotpath (poison path: the scheduler is already lost; the post-mortem may allocate)
		return s.cost, err
	}
	s.registerJob(js)
	return s.cost, nil
}

// LastCostByLevel reports how the most recent request's reallocations
// were distributed across levels — the empirical counterpart of Lemma 9's
// "O(1) reallocations at each level of the scheduler".
func (s *Scheduler) LastCostByLevel() [align.NumLevels]int { return s.levelCost }

// Delete removes an active job.
func (s *Scheduler) Delete(name string) (metrics.Cost, error) {
	if s.poisoned != nil {
		return metrics.Cost{}, s.poisoned
	}
	j := s.activeJob(name)
	if j == nil {
		return metrics.Cost{}, fmt.Errorf("%w: %q", sched.ErrUnknownJob, name)
	}
	return s.deletePrevalidated(j)
}

// deletePrevalidated runs the delete machinery for an active job state.
// It is the execution half of Delete, shared with the batch path.
//
//reallocvet:hotpath
func (s *Scheduler) deletePrevalidated(j *jobState) (metrics.Cost, error) {
	s.cost = metrics.Cost{}
	s.levelCost = [align.NumLevels]int{}
	var err error
	if j.level == 0 {
		s.baseDelete(j)
	} else {
		err = s.reservedDelete(j)
	}
	if err != nil {
		s.poisoned = fmt.Errorf("core: scheduler poisoned by failed delete of %q: %w", j.name, err) //reallocvet:allow hotpath (poison path: the scheduler is already lost; the post-mortem may allocate)
		return s.cost, err
	}
	s.releaseJob(j)
	return s.cost, nil
}

// ---------------------------------------------------------------------
// Level >= 1: reservation machinery
// ---------------------------------------------------------------------

// reservedInsert implements the insert path of Figure 1 for levels >= 1.
//
//reallocvet:hotpath
func (s *Scheduler) reservedInsert(j *jobState) error {
	ws, err := s.ensureWindow(j.key)
	if err != nil {
		return err
	}
	if err := s.materialize(ws); err != nil {
		return err
	}
	xOld := int64(ws.x)
	ws.x++
	// Invariant 5: the two new reservations go to the leftmost intervals
	// with the fewest of W's reservations, i.e. round-robin positions
	// 2*xOld and 2*xOld+1 (extras are even, so the pair never wraps).
	r := (2 * xOld) % ws.numIntervals
	for _, idx := range []int64{r, r + 1} {
		iv := s.ivs[s.intervalKeyAt(ws.level, ws.key.start+idx*align.IntervalSpan(ws.level))]
		if iv == nil {
			return fmt.Errorf("core: interval %d of window %v not materialized", idx, ws.key.window()) //reallocvet:allow hotpath (corruption guard: unreachable on a consistent schedule)
		}
		if err := s.addReservation(iv, ws); err != nil {
			return err
		}
	}
	return s.place(j)
}

// reservedDelete removes a level >= 1 job and its two newest reservations.
//
//reallocvet:hotpath
func (s *Scheduler) reservedDelete(j *jobState) error {
	ws := s.windows[j.key]
	if ws == nil {
		return fmt.Errorf("core: window state missing for %v", j.key.window()) //reallocvet:allow hotpath (corruption guard: unreachable on a consistent schedule)
	}
	slot := j.slot
	delete(s.slots, slot)
	if ws.fulfilled[slot] != j.id {
		return fmt.Errorf("core: job %q at slot %d not backed by a fulfilled reservation", j.name, slot) //reallocvet:allow hotpath (corruption guard: unreachable on a consistent schedule)
	}
	ws.fulfilled[slot] = ident.None // the reservation stays fulfilled, now job-free
	// The slot is no longer occupied by a level-l job: higher-level
	// allowances grow (possibly promoting one waitlisted reservation each).
	s.growAbove(slot, j.level)

	ws.x--
	// Remove the two most recently added reservations (the rightmost
	// intervals holding the most of W's reservations).
	r := (2 * int64(ws.x)) % ws.numIntervals
	for _, idx := range []int64{r + 1, r} {
		iv := s.ivs[s.intervalKeyAt(ws.level, ws.key.start+idx*align.IntervalSpan(ws.level))]
		if iv == nil {
			return fmt.Errorf("core: interval %d of window %v not materialized", idx, ws.key.window()) //reallocvet:allow hotpath (corruption guard: unreachable on a consistent schedule)
		}
		if err := s.removeReservation(iv, ws); err != nil {
			return err
		}
	}
	return nil
}

// place implements PLACE (Figure 1 lines 15-23): put the job in a
// job-free fulfilled slot of its window, shrink higher allowances, and
// cascade any displaced higher-level job.
//
//reallocvet:hotpath
func (s *Scheduler) place(j *jobState) error {
	cur := j
	for {
		ws := s.windows[cur.key]
		if ws == nil {
			return fmt.Errorf("core: window state missing for %v", cur.key.window()) //reallocvet:allow hotpath (corruption guard: unreachable on a consistent schedule)
		}
		slot, ok := s.pickFulfilledSlot(ws)
		if !ok {
			return &sched.InfeasibleError{ //reallocvet:allow hotpath (infeasible-rejection path, off the steady-state hot path)
				Req:    jobs.Request{Kind: jobs.Insert, Name: cur.name, Window: cur.window()},
				Detail: fmt.Sprintf("window %v has no job-free fulfilled reservation (Lemma 8 requires 8-underallocation)", cur.key.window()), //reallocvet:allow hotpath (infeasible-rejection path, off the steady-state hot path)
			}
		}
		displaced := s.slots[slot] // nil, or a strictly higher-level job
		s.slots[slot] = cur
		cur.slot = slot
		s.cost.Reallocations++
		s.levelCost[cur.level]++
		ws.fulfilled[slot] = cur.id

		hLevel := topLevel + 1
		if displaced != nil {
			if displaced.level <= cur.level {
				return fmt.Errorf("core: fulfilled slot %d of %v held level-%d job %q (pecking order violated)", //reallocvet:allow hotpath (corruption guard: unreachable on a consistent schedule)
					slot, cur.key.window(), displaced.level, displaced.name)
			}
			hLevel = displaced.level
		}
		// The slot is now occupied by a level-cur job: remove it from the
		// allowance of every higher-level interval up to the displaced
		// job's level (above that it was already occupied).
		for lvl := cur.level + 1; lvl <= topLevel && lvl <= hLevel; lvl++ {
			iv := s.ivs[s.intervalKeyAt(lvl, slot)]
			if iv == nil {
				continue
			}
			if err := s.shrink(iv, slot); err != nil {
				return err
			}
		}
		if displaced == nil {
			return nil
		}
		cur = displaced // re-place at its own (higher) level
	}
}

// pickFulfilledSlot returns a fulfilled slot of ws with no own-level job.
// Under PreferEmpty it prefers completely empty slots (avoiding a
// higher-level displacement); under LowestSlot it takes the lowest slot
// regardless. Ties break toward the lowest slot for determinism.
func (s *Scheduler) pickFulfilledSlot(ws *windowState) (Time, bool) {
	best, bestEmpty := Time(0), false
	found := false
	for t, occ := range ws.fulfilled {
		if occ != ident.None {
			continue
		}
		if s.policy == LowestSlot {
			if !found || t < best {
				best, found = t, true
			}
			continue
		}
		empty := s.slots[t] == nil
		switch {
		case !found,
			empty && !bestEmpty,
			empty == bestEmpty && t < best:
			best, bestEmpty, found = t, empty, true
		}
	}
	return best, found
}

// move implements MOVE (Figure 1 lines 10-14): job j lost the reservation
// backing its slot (the caller has already unassigned it); relocate j to
// another job-free fulfilled slot of its window, swapping the two slots'
// state in every ancestor interval and physically relocating at most one
// higher-level job.
func (s *Scheduler) move(j *jobState) error {
	ws := s.windows[j.key]
	from := j.slot
	to, ok := s.pickFulfilledSlot(ws)
	if !ok {
		return &sched.InfeasibleError{
			Req:    jobs.Request{Kind: jobs.Insert, Name: j.name, Window: j.window()},
			Detail: fmt.Sprintf("MOVE: window %v has no job-free fulfilled reservation", j.key.window()),
		}
	}
	h := s.slots[to] // nil or higher-level job occupying the fulfilled slot
	if h != nil && h.level <= j.level {
		return fmt.Errorf("core: MOVE target %d of %v held level-%d job %q", to, j.key.window(), h.level, h.name)
	}
	// Physical relocation: j goes from 'from' to 'to'; any higher-level
	// occupant of 'to' takes j's old slot 'from'.
	delete(s.slots, from)
	if h != nil {
		s.slots[from] = h
		h.slot = from
		s.cost.Reallocations++
		s.levelCost[h.level]++
		// h's own window keeps its fulfilled reservation; the per-level
		// swap below renames the backing slot from 'to' to 'from'.
	}
	s.slots[to] = j
	j.slot = to
	s.cost.Reallocations++
	s.levelCost[j.level]++
	ws.fulfilled[to] = j.id

	// Swap the two slots' assignment state in every ancestor interval
	// (levels above j's). Both slots lie inside j's window, which is
	// contained in a single interval at every higher level, so the net
	// allowance of each ancestor is unchanged: no promotion or waitlist
	// adjustments are needed.
	for lvl := j.level + 1; lvl <= topLevel; lvl++ {
		iv := s.ivs[s.intervalKeyAt(lvl, from)]
		if iv == nil {
			continue
		}
		if s.intervalKeyAt(lvl, to) != (ivKey{level: lvl, start: iv.start}) {
			return fmt.Errorf("core: MOVE slots %d and %d straddle level-%d intervals", from, to, lvl)
		}
		s.swapAssigned(iv, from, to)
	}
	return nil
}

// swapAssigned exchanges the reservation assignments of slots a and b in
// interval iv, renaming the backing slots in the owning windows' state.
func (s *Scheduler) swapAssigned(iv *interval, a, b Time) {
	wa, oka := iv.assigned[a]
	wb, okb := iv.assigned[b]
	delete(iv.assigned, a)
	delete(iv.assigned, b)
	if oka {
		iv.assigned[b] = wa
		wsa := s.windows[wa]
		occ := wsa.fulfilled[a]
		delete(wsa.fulfilled, a)
		wsa.fulfilled[b] = occ
	}
	if okb {
		iv.assigned[a] = wb
		wsb := s.windows[wb]
		occ := wsb.fulfilled[b]
		delete(wsb.fulfilled, b)
		wsb.fulfilled[a] = occ
	}
}

// addReservation implements RESERVE (Figure 1 lines 1-9) at interval iv
// for window ws.
func (s *Scheduler) addReservation(iv *interval, ws *windowState) error {
	iv.resCount[ws.key]++
	if f, ok := s.freeSlot(iv); ok {
		s.assign(iv, f, ws)
		return nil
	}
	longKey, ok := s.longestFulfilled(iv)
	if !ok || s.windows[longKey].key.span <= ws.key.span {
		return nil // the new reservation is waitlisted
	}
	// Steal a slot from the longest fulfilled window, preferring a
	// job-free one; its reservation is waitlisted.
	victim := s.windows[longKey]
	slot, occupant := s.pickAssignedSlot(iv, victim)
	s.unassign(iv, slot)
	if occupant != ident.None {
		if err := s.move(s.byID[occupant]); err != nil {
			return err
		}
	}
	s.assign(iv, slot, ws)
	return nil
}

// removeReservation drops one of ws's reservations at iv, releasing a
// fulfilled slot (and moving its job) only when the remaining count
// requires it, then promotes the shortest waitlisted window.
func (s *Scheduler) removeReservation(iv *interval, ws *windowState) error {
	if iv.resCount[ws.key] <= 0 {
		return fmt.Errorf("core: removing nonexistent reservation of %v at interval %d", ws.key.window(), iv.start)
	}
	iv.resCount[ws.key]--
	if s.fulfilledCount(iv, ws.key) <= iv.resCount[ws.key] {
		return nil // a waitlisted reservation absorbed the removal
	}
	slot, occupant := s.pickAssignedSlot(iv, ws)
	s.unassign(iv, slot)
	if occupant != ident.None {
		if err := s.move(s.byID[occupant]); err != nil {
			return err
		}
	}
	s.promote(iv, slot)
	return nil
}

// shrink removes slot t from interval iv's allowance after a lower-level
// job occupied it (Figure 1 lines 17-21). If the slot backed a fulfilled
// reservation, that window is re-fulfilled from a free slot, or by
// waitlisting the longest fulfilled window (moving its job if one backed
// the stolen slot); otherwise it becomes waitlisted itself.
func (s *Scheduler) shrink(iv *interval, t Time) error {
	vKey, ok := iv.assigned[t]
	if !ok {
		return nil
	}
	v := s.windows[vKey]
	s.unassign(iv, t) // any own-level occupant is the displaced job handled by the caller
	if f, ok := s.freeSlot(iv); ok {
		s.assign(iv, f, v)
		return nil
	}
	longKey, ok := s.longestFulfilled(iv)
	if !ok || s.windows[longKey].key.span <= v.key.span {
		return nil // v's reservation is waitlisted
	}
	victim := s.windows[longKey]
	slot, occupant := s.pickAssignedSlot(iv, victim)
	s.unassign(iv, slot)
	if occupant != ident.None {
		if err := s.move(s.byID[occupant]); err != nil {
			return err
		}
	}
	s.assign(iv, slot, v)
	return nil
}

// growAbove returns slot t to the allowance of every existing interval at
// levels strictly above l, promoting one waitlisted reservation each.
func (s *Scheduler) growAbove(t Time, l int) {
	for lvl := l + 1; lvl <= topLevel; lvl++ {
		iv := s.ivs[s.intervalKeyAt(lvl, t)]
		if iv == nil {
			continue
		}
		s.promote(iv, t)
	}
}

// promote assigns the free slot t to the shortest window with a
// waitlisted reservation at iv, if any.
func (s *Scheduler) promote(iv *interval, t Time) {
	var best *windowState
	for key, count := range iv.resCount {
		if count <= s.fulfilledCount(iv, key) {
			continue
		}
		ws := s.windows[key]
		if best == nil || ws.key.span < best.key.span ||
			(ws.key.span == best.key.span && ws.key.start < best.key.start) {
			best = ws
		}
	}
	if best != nil {
		s.assign(iv, t, best)
	}
}

// assign backs a fulfilled reservation of ws with slot t.
func (s *Scheduler) assign(iv *interval, t Time, ws *windowState) {
	if _, taken := iv.assigned[t]; taken {
		panic(fmt.Sprintf("core: slot %d already assigned in interval %d", t, iv.start))
	}
	iv.assigned[t] = ws.key
	iv.fullCount[ws.key]++
	ws.fulfilled[t] = ident.None // a fresh fulfilled slot never holds an own-level job
}

// unassign releases the reservation backing slot t, returning the ID of
// the own-level job that occupied it (ident.None if none). The caller is
// responsible for relocating that job.
func (s *Scheduler) unassign(iv *interval, t Time) ident.ID {
	key, ok := iv.assigned[t]
	if !ok {
		panic(fmt.Sprintf("core: slot %d not assigned in interval %d", t, iv.start))
	}
	delete(iv.assigned, t)
	if n := iv.fullCount[key] - 1; n > 0 {
		iv.fullCount[key] = n
	} else {
		delete(iv.fullCount, key)
	}
	ws := s.windows[key]
	occ := ws.fulfilled[t]
	delete(ws.fulfilled, t)
	return occ
}

// pickAssignedSlot returns one of ws's fulfilled slots in iv, preferring
// slots without an own-level job, then the lowest slot. It also returns
// the occupying own-level job ID (ident.None if none).
func (s *Scheduler) pickAssignedSlot(iv *interval, ws *windowState) (Time, ident.ID) {
	best, bestOcc := Time(0), ident.None
	found := false
	for t := iv.start; t < iv.start+iv.span; t++ {
		if key, ok := iv.assigned[t]; ok && key == ws.key {
			occ := ws.fulfilled[t]
			if !found || (occ == ident.None && bestOcc != ident.None) {
				best, bestOcc, found = t, occ, true
				if occ == ident.None {
					return best, bestOcc
				}
			}
		}
	}
	if !found {
		panic(fmt.Sprintf("core: window %v has no fulfilled slot in interval %d", ws.key.window(), iv.start))
	}
	return best, bestOcc
}

// freeSlot returns the lowest slot of iv that is inside the allowance and
// not yet assigned.
func (s *Scheduler) freeSlot(iv *interval) (Time, bool) {
	for t := iv.start; t < iv.start+iv.span; t++ {
		if _, taken := iv.assigned[t]; taken {
			continue
		}
		if occ := s.slots[t]; occ != nil && occ.level < iv.level {
			continue // outside the allowance
		}
		return t, true
	}
	return 0, false
}

// longestFulfilled returns the window with the longest span holding at
// least one fulfilled reservation in iv (ties broken by start). The
// fullCount cache bounds the scan by the number of distinct windows
// with fulfilled reservations, not by the interval span.
func (s *Scheduler) longestFulfilled(iv *interval) (winKey, bool) {
	var best winKey
	found := false
	for key := range iv.fullCount {
		if !found || key.span > best.span || (key.span == best.span && key.start < best.start) {
			best = key
			found = true
		}
	}
	return best, found
}

// fulfilledCount counts ws's fulfilled reservations in iv.
func (s *Scheduler) fulfilledCount(iv *interval, key winKey) int {
	return iv.fullCount[key]
}

// ---------------------------------------------------------------------
// Window and interval lifecycle
// ---------------------------------------------------------------------

// ensureWindow returns (creating if needed) the window state for key.
// Creation does not materialize the window's intervals.
func (s *Scheduler) ensureWindow(key winKey) (*windowState, error) {
	if ws, ok := s.windows[key]; ok {
		return ws, nil
	}
	level := align.LevelOfSpan(key.span)
	if level == 0 {
		return nil, fmt.Errorf("core: window %v is base-level; no window state needed", key.window())
	}
	n := key.span / align.IntervalSpan(level)
	var ws *windowState
	if v := windowPool.Get(); v != nil {
		ws = v.(*windowState)
		ws.key, ws.level, ws.numIntervals = key, level, n
	} else {
		ws = &windowState{
			key:          key,
			level:        level,
			numIntervals: n,
			fulfilled:    make(map[Time]ident.ID),
		}
	}
	s.windows[key] = ws
	return ws, nil
}

// materialize creates every interval of ws (idempotent). Called before
// the first job of a window arrives, so that all of the window's base
// reservations physically exist, matching Invariant 5's 2^k term.
func (s *Scheduler) materialize(ws *windowState) error {
	if ws.materialized {
		return nil
	}
	ivSpan := align.IntervalSpan(ws.level)
	for t := ws.key.start; t < ws.key.start+ws.key.span; t += ivSpan {
		if _, err := s.getInterval(ws.level, t); err != nil {
			return err
		}
	}
	ws.materialized = true
	return nil
}

// intervalKeyAt returns the key of the level-lvl interval containing t.
func (s *Scheduler) intervalKeyAt(lvl int, t Time) ivKey {
	return ivKey{level: lvl, start: mathx.AlignDown(t, align.IntervalSpan(lvl))}
}

// getInterval returns (creating if needed) the level-lvl interval
// starting at start. Creation scans current slot occupancy to derive the
// allowance and installs one base reservation for every possible
// enclosing window span, fulfilled shortest-first.
func (s *Scheduler) getInterval(lvl int, start Time) (*interval, error) {
	key := s.intervalKeyAt(lvl, start)
	if iv, ok := s.ivs[key]; ok {
		return iv, nil
	}
	var iv *interval
	if v := intervalPool.Get(); v != nil {
		iv = v.(*interval)
		iv.level, iv.start, iv.span = lvl, key.start, align.IntervalSpan(lvl)
	} else {
		iv = &interval{
			level:     lvl,
			start:     key.start,
			span:      align.IntervalSpan(lvl),
			resCount:  make(map[winKey]int),
			assigned:  make(map[Time]winKey),
			fullCount: make(map[winKey]int),
		}
	}
	s.ivs[key] = iv
	// Base reservations: one per enclosing window, fulfilled in
	// shortest-span-first order into the allowance.
	for _, span := range align.SpansAtLevel(lvl) {
		w := align.EnclosingAligned(iv.start, span)
		ws, err := s.ensureWindow(keyOf(w))
		if err != nil {
			return nil, err
		}
		iv.resCount[ws.key]++
		if f, ok := s.freeSlot(iv); ok {
			s.assign(iv, f, ws)
		}
	}
	return iv, nil
}

// ---------------------------------------------------------------------
// Base level (spans <= 32): constant-depth pecking-order displacement
// ---------------------------------------------------------------------

// baseInsert schedules a base-level job by pecking-order displacement
// among base jobs; only the cascade's final placement consumes a new slot,
// so exactly one higher-level allowance shrink (and at most one displaced
// higher-level job) results.
//
//reallocvet:hotpath
func (s *Scheduler) baseInsert(j *jobState) error {
	cur := j
	for {
		w := cur.window()
		// Prefer a completely empty slot, then a slot holding only a
		// higher-level job.
		finalSlot, finalOK := Time(0), false
		finalEmpty := false
		var victim *jobState
		for t := w.Start; t < w.End; t++ {
			occ := s.slots[t]
			switch {
			case occ == nil:
				if !finalOK || !finalEmpty {
					finalSlot, finalOK, finalEmpty = t, true, true
				}
			case occ.level > 0:
				if !finalOK {
					finalSlot, finalOK, finalEmpty = t, true, false
				}
			default: // base-level occupant: displacement candidate if longer
				if victim == nil && occ.key.span > cur.key.span {
					victim = occ
				}
			}
			if finalOK && finalEmpty {
				break
			}
		}
		if finalOK {
			displaced := s.slots[finalSlot] // nil or higher-level
			s.slots[finalSlot] = cur
			cur.slot = finalSlot
			s.cost.Reallocations++
			s.levelCost[0]++
			hLevel := topLevel + 1
			if displaced != nil {
				hLevel = displaced.level
			}
			for lvl := 1; lvl <= topLevel && lvl <= hLevel; lvl++ {
				iv := s.ivs[s.intervalKeyAt(lvl, finalSlot)]
				if iv == nil {
					continue
				}
				if err := s.shrink(iv, finalSlot); err != nil {
					return err
				}
			}
			if displaced == nil {
				return nil
			}
			return s.place(displaced)
		}
		if victim == nil {
			return &sched.InfeasibleError{ //reallocvet:allow hotpath (infeasible-rejection path, off the steady-state hot path)
				Req:    jobs.Request{Kind: jobs.Insert, Name: cur.name, Window: cur.window()},
				Detail: fmt.Sprintf("base window %v fully occupied by equal-or-shorter spans", w), //reallocvet:allow hotpath (infeasible-rejection path, off the steady-state hot path)
			}
		}
		// Swap with the longer-span base job: the set of base-occupied
		// slots is unchanged, so no higher-level bookkeeping is needed.
		slot := victim.slot
		s.slots[slot] = cur
		cur.slot = slot
		s.cost.Reallocations++
		s.levelCost[0]++
		cur = victim
	}
}

// baseDelete removes a base-level job, growing higher allowances.
//
//reallocvet:hotpath
func (s *Scheduler) baseDelete(j *jobState) {
	delete(s.slots, j.slot)
	s.growAbove(j.slot, 0)
}
