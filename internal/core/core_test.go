package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

func win(start, end int64) jobs.Window { return jobs.Window{Start: start, End: end} }

func job(name string, start, end int64) jobs.Job {
	return jobs.Job{Name: name, Window: win(start, end)}
}

func mustInsert(t *testing.T, s *Scheduler, j jobs.Job) metrics.Cost {
	t.Helper()
	c, err := s.Insert(j)
	if err != nil {
		t.Fatalf("insert %v: %v", j, err)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatalf("after insert %v: %v", j, err)
	}
	return c
}

func mustDelete(t *testing.T, s *Scheduler, name string) metrics.Cost {
	t.Helper()
	c, err := s.Delete(name)
	if err != nil {
		t.Fatalf("delete %q: %v", name, err)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatalf("after delete %q: %v", name, err)
	}
	return c
}

func verifyFeasible(t *testing.T, s *Scheduler) {
	t.Helper()
	if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), 1); err != nil {
		t.Fatal(err)
	}
}

// --- basic behavior ---------------------------------------------------

func TestBaseLevelInsertDelete(t *testing.T) {
	s := New()
	c := mustInsert(t, s, job("a", 0, 4)) // span 4: level 0
	if c.Reallocations != 1 {
		t.Errorf("cost = %+v", c)
	}
	verifyFeasible(t, s)
	mustDelete(t, s, "a")
	if s.Active() != 0 {
		t.Error("job not removed")
	}
}

func TestLevel1InsertDelete(t *testing.T) {
	s := New()
	c := mustInsert(t, s, job("a", 0, 64)) // span 64: level 1
	if c.Reallocations != 1 {
		t.Errorf("cost = %+v", c)
	}
	verifyFeasible(t, s)
	if err := s.VerifyLemma8(); err != nil {
		t.Fatal(err)
	}
	mustDelete(t, s, "a")
	if s.Active() != 0 {
		t.Error("job not removed")
	}
	if err := s.VerifyLemma8(); err != nil {
		t.Fatal(err)
	}
}

func TestLevel2InsertDelete(t *testing.T) {
	s := New()
	c := mustInsert(t, s, job("a", 0, 1024)) // span 1024: level 2
	if c.Reallocations != 1 {
		t.Errorf("cost = %+v", c)
	}
	verifyFeasible(t, s)
	mustDelete(t, s, "a")
}

func TestRejections(t *testing.T) {
	s := New()
	if _, err := s.Insert(job("a", 1, 3)); !errors.Is(err, sched.ErrMisaligned) {
		t.Errorf("misaligned: %v", err)
	}
	mustInsert(t, s, job("a", 0, 2))
	if _, err := s.Insert(job("a", 0, 2)); !errors.Is(err, sched.ErrDuplicateJob) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := s.Delete("nope"); !errors.Is(err, sched.ErrUnknownJob) {
		t.Errorf("unknown: %v", err)
	}
	if _, err := s.Insert(jobs.Job{Name: "", Window: win(0, 2)}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestIntervalCap(t *testing.T) {
	s := New(WithMaxIntervals(4))
	// span 1024 at level 2 has 1024/256 = 4 intervals: allowed.
	mustInsert(t, s, job("ok", 0, 1024))
	// span 2048 has 8 intervals: rejected without poisoning.
	if _, err := s.Insert(job("big", 0, 2048)); err == nil {
		t.Fatal("cap not enforced")
	}
	mustInsert(t, s, job("still-works", 0, 64))
}

func TestManyJobsSameWindow(t *testing.T) {
	s := New()
	// 8 jobs in a span-64 level-1 window: 8-underallocated exactly.
	for i := 0; i < 8; i++ {
		mustInsert(t, s, job(fmt.Sprintf("j%d", i), 0, 64))
		if err := s.VerifyLemma8(); err != nil {
			t.Fatal(err)
		}
	}
	verifyFeasible(t, s)
	for i := 0; i < 8; i++ {
		mustDelete(t, s, fmt.Sprintf("j%d", i))
	}
}

func TestMixedLevels(t *testing.T) {
	s := New()
	// A level-2 job, level-1 jobs, and base jobs interleaved in [0, 512).
	mustInsert(t, s, job("big", 0, 512))
	for i := 0; i < 4; i++ {
		mustInsert(t, s, job(fmt.Sprintf("mid%d", i), 0, 128))
	}
	for i := 0; i < 4; i++ {
		mustInsert(t, s, job(fmt.Sprintf("small%d", i), 0, 32))
	}
	for i := 0; i < 4; i++ {
		mustInsert(t, s, job(fmt.Sprintf("tiny%d", i), int64(i), int64(i)+1))
	}
	verifyFeasible(t, s)
	if err := s.VerifyLemma8(); err != nil {
		t.Fatal(err)
	}
	// Delete in a different order than insertion.
	for _, name := range []string{"mid1", "tiny0", "big", "small3", "mid0"} {
		mustDelete(t, s, name)
	}
	verifyFeasible(t, s)
}

// Base jobs displace higher-level jobs (pecking order), never vice versa.
func TestPeckingOrderDisplacement(t *testing.T) {
	s := New()
	// Fill [0, 2) with a level-1 job pinned there... a span-64 job can sit
	// anywhere in [0, 64); force contention with base jobs instead.
	mustInsert(t, s, job("long", 0, 64))
	longSlot := s.Assignment()["long"].Slot
	// A span-1 base job aimed exactly at the long job's slot must displace it.
	c := mustInsert(t, s, job("tiny", longSlot, longSlot+1))
	if got := s.Assignment()["tiny"].Slot; got != longSlot {
		t.Errorf("tiny at %d, want %d", got, longSlot)
	}
	if s.Assignment()["long"].Slot == longSlot {
		t.Error("long job not displaced")
	}
	// Cost: tiny placed (1) + long re-placed (1) = 2.
	if c.Reallocations != 2 {
		t.Errorf("cost = %+v, want 2", c)
	}
	verifyFeasible(t, s)
}

func TestPoisoningAfterInfeasible(t *testing.T) {
	s := New()
	mustInsert(t, s, job("a", 0, 1))
	if _, err := s.Insert(job("b", 0, 1)); !errors.Is(err, sched.ErrInfeasible) {
		t.Fatalf("expected infeasible, got %v", err)
	}
	// Scheduler is poisoned: all further operations fail fast.
	if _, err := s.Insert(job("c", 4, 8)); err == nil {
		t.Error("poisoned scheduler accepted insert")
	}
	if _, err := s.Delete("a"); err == nil {
		t.Error("poisoned scheduler accepted delete")
	}
	if err := s.SelfCheck(); err == nil {
		t.Error("poisoned scheduler passed SelfCheck")
	}
}

func TestStats(t *testing.T) {
	s := New()
	mustInsert(t, s, job("a", 0, 64))
	st := s.Stats()
	if st.ActiveJobs != 1 || st.SlotsInUse != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Intervals == 0 || st.Windows == 0 {
		t.Errorf("stats did not count reservation state: %+v", st)
	}
}

// --- randomized validation against invariants and feasibility ----------

func TestRandomChurnAllInvariants(t *testing.T) {
	for _, horizon := range []int64{256, 1024, 4096} {
		g, err := workload.NewGenerator(workload.Config{
			Seed: horizon, Gamma: 8, Horizon: horizon, Steps: 400,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := New()
		for i := 0; i < 400; i++ {
			r := g.Next()
			if _, err := sched.Apply(s, r); err != nil {
				t.Fatalf("horizon %d request %d (%s): %v", horizon, i, r, err)
			}
			if err := s.SelfCheck(); err != nil {
				t.Fatalf("horizon %d request %d (%s): %v", horizon, i, r, err)
			}
			if err := s.VerifyLemma8(); err != nil {
				t.Fatalf("horizon %d request %d (%s): %v", horizon, i, r, err)
			}
		}
		verifyFeasible(t, s)
	}
}

// Theorem 1 empirical envelope: on 8-underallocated aligned sequences,
// per-request reallocation cost stays bounded by a small constant times
// log*(Δ). With three levels the analytic bound is a constant; we assert
// a conservative ceiling and that the mean stays small.
func TestCostEnvelope(t *testing.T) {
	g, err := workload.NewGenerator(workload.Config{
		Seed: 99, Gamma: 8, Horizon: 8192, Steps: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	rec := metrics.NewRecorder()
	if _, err := sched.Run(s, g.Sequence(), rec); err != nil {
		t.Fatal(err)
	}
	sum := rec.Summary()
	const ceiling = 24 // O(1) per level x 3 levels, generous constant
	if sum.MaxReallocations > ceiling {
		t.Errorf("max per-request cost %d exceeds ceiling %d (%s)", sum.MaxReallocations, ceiling, sum)
	}
	if sum.MeanReallocations > 4 {
		t.Errorf("mean per-request cost %.2f implausibly high (%s)", sum.MeanReallocations, sum)
	}
	if sum.MaxMigrations != 0 {
		t.Errorf("single-machine scheduler migrated jobs: %s", sum)
	}
}

// Property: random underallocated churn with per-step invariant checking
// across many seeds.
func TestChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := workload.NewGenerator(workload.Config{
			Seed: seed, Gamma: 8, Horizon: 512, Steps: 120,
		})
		if err != nil {
			return false
		}
		s := New()
		if _, err := sched.RunChecked(s, g.Sequence(), nil); err != nil {
			return false
		}
		return feasible.VerifySchedule(s.Jobs(), s.Assignment(), 1) == nil &&
			s.VerifyLemma8() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Observation 7: the fulfilled/waitlisted reservation state depends only
// on the active job multiset, not on the request history.
func TestHistoryIndependence(t *testing.T) {
	final := []jobs.Job{
		job("a", 0, 64), job("b", 0, 64), job("c", 64, 128),
		job("d", 0, 128), job("e", 0, 512), job("f", 256, 512),
		job("g", 0, 32), job("h", 32, 64), job("i", 4, 8),
	}

	// History 1: plain insertion in order.
	s1 := New()
	for _, j := range final {
		mustInsert(t, s1, j)
	}

	// History 2: reversed order with interleaved transient jobs.
	s2 := New()
	mustInsert(t, s2, job("tmp1", 0, 256))
	for i := len(final) - 1; i >= 0; i-- {
		mustInsert(t, s2, final[i])
		if i == 4 {
			mustInsert(t, s2, job("tmp2", 128, 256))
			mustDelete(t, s2, "tmp1")
		}
	}
	mustDelete(t, s2, "tmp2")

	snap1, snap2 := s1.ReservationSnapshot(), s2.ReservationSnapshot()
	if len(snap1) != len(snap2) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(snap1), len(snap2))
	}
	for i := range snap1 {
		if snap1[i] != snap2[i] {
			t.Errorf("snapshot[%d] differs:\n h1: %+v\n h2: %+v", i, snap1[i], snap2[i])
		}
	}
}

// Property form of Observation 7 on random multisets.
func TestHistoryIndependenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := workload.NewGenerator(workload.Config{
			Seed: seed, Gamma: 8, Horizon: 1024, Steps: 150,
		})
		if err != nil {
			return false
		}
		s1 := New()
		if _, err := sched.Run(s1, g.Sequence(), nil); err != nil {
			return false
		}
		// Rebuild the final multiset directly, in shuffled order.
		finalJobs := g.Active()
		rng := rand.New(rand.NewSource(seed ^ 0x5ee1))
		rng.Shuffle(len(finalJobs), func(i, k int) {
			finalJobs[i], finalJobs[k] = finalJobs[k], finalJobs[i]
		})
		s2 := New()
		for _, j := range finalJobs {
			if _, err := s2.Insert(j); err != nil {
				return false
			}
		}
		snap1, snap2 := s1.ReservationSnapshot(), s2.ReservationSnapshot()
		if len(snap1) != len(snap2) {
			return false
		}
		for i := range snap1 {
			if snap1[i] != snap2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Deleting and reinserting the same multiset returns to an equivalent
// reservation state (a consequence of history independence).
func TestDeleteRestoresState(t *testing.T) {
	s := New()
	base := []jobs.Job{job("a", 0, 64), job("b", 64, 128), job("c", 0, 256)}
	for _, j := range base {
		mustInsert(t, s, j)
	}
	before := s.ReservationSnapshot()
	mustInsert(t, s, job("x", 0, 64))
	mustInsert(t, s, job("y", 0, 1024))
	mustDelete(t, s, "y")
	mustDelete(t, s, "x")
	after := s.ReservationSnapshot()
	if len(before) != len(after) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("state[%d] differs: %+v vs %+v", i, before[i], after[i])
		}
	}
}

// Tight-but-sufficient slack: fill windows to exactly the 8-underallocated
// budget at several nesting depths and verify everything still works.
func TestTightUnderallocationBudget(t *testing.T) {
	s := New()
	id := 0
	add := func(start, end int64, n int) {
		for i := 0; i < n; i++ {
			mustInsert(t, s, job(fmt.Sprintf("t%d", id), start, end))
			id++
		}
	}
	// Budget m|W|/8: span 512 -> 64 jobs total inside. Allocate hierarchically:
	add(0, 64, 8)    // uses full budget of [0,64)
	add(64, 128, 8)  // full budget of [64,128)
	add(128, 256, 8) // half budget of [128,256)
	add(0, 512, 16)  // brings [0,512) to 8+8+8+16 = 40 <= 64
	verifyFeasible(t, s)
	if err := s.VerifyLemma8(); err != nil {
		t.Fatal(err)
	}
	// Churn at the boundary.
	for i := 0; i < 8; i++ {
		mustDelete(t, s, fmt.Sprintf("t%d", i))
		mustInsert(t, s, job(fmt.Sprintf("r%d", i), 0, 64))
	}
	verifyFeasible(t, s)
}

func TestInterfaceCompliance(t *testing.T) {
	var _ sched.Scheduler = New()
	s := New()
	if s.Machines() != 1 {
		t.Error("machines != 1")
	}
	if got := len(s.Jobs()); got != 0 {
		t.Errorf("empty scheduler has %d jobs", got)
	}
}
