package core

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/align"
)

// LevelStats summarizes one reservation level's state.
type LevelStats struct {
	Level      int
	Jobs       int // active jobs whose span falls in this level
	Windows    int // window states (including x=0 bookkeeping windows)
	Intervals  int // materialized intervals
	Fulfilled  int // fulfilled reservations across the level's intervals
	Waitlisted int // waitlisted reservations across the level's intervals
}

// LevelBreakdown reports per-level statistics, the view used to reason
// about where reallocation work happens (base level excluded from the
// reservation counters, since it has none).
func (s *Scheduler) LevelBreakdown() []LevelStats {
	out := make([]LevelStats, align.NumLevels)
	for l := range out {
		out[l].Level = l
	}
	for _, j := range s.byID {
		if j != nil {
			out[j.level].Jobs++
		}
	}
	for _, ws := range s.windows {
		out[ws.level].Windows++
	}
	for key, iv := range s.ivs {
		out[key.level].Intervals++
		fulfilled := make(map[winKey]int)
		for _, wk := range iv.assigned {
			fulfilled[wk]++
		}
		for wk, count := range iv.resCount {
			f := fulfilled[wk]
			out[key.level].Fulfilled += f
			out[key.level].Waitlisted += count - f
		}
	}
	return out
}

// DebugDump writes a human-readable rendering of the complete internal
// state: every window's jobs and fulfilled slots, every interval's
// allowance and reservation table. Intended for debugging failing
// sequences found by the stress shrinker.
func (s *Scheduler) DebugDump(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "core scheduler: %d jobs, %d windows, %d intervals\n",
		s.active, len(s.windows), len(s.ivs)); err != nil {
		return err
	}
	if s.poisoned != nil {
		if _, err := fmt.Fprintf(w, "POISONED: %v\n", s.poisoned); err != nil {
			return err
		}
	}

	// Jobs sorted by slot.
	js := make([]*jobState, 0, s.active)
	for _, j := range s.byID {
		if j != nil {
			js = append(js, j)
		}
	}
	sort.Slice(js, func(i, k int) bool { return js[i].slot < js[k].slot })
	for _, j := range js {
		if _, err := fmt.Fprintf(w, "  job %-12s level %d window %-18v slot %d\n",
			j.name, j.level, j.window(), j.slot); err != nil {
			return err
		}
	}

	// Windows with activity, sorted by (level, start, span).
	keys := make([]winKey, 0, len(s.windows))
	for key, ws := range s.windows {
		if ws.x > 0 || len(ws.fulfilled) > 0 {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, k int) bool {
		a, b := keys[i], keys[k]
		if a.span != b.span {
			return a.span < b.span
		}
		return a.start < b.start
	})
	for _, key := range keys {
		ws := s.windows[key]
		slots := make([]Time, 0, len(ws.fulfilled))
		for t := range ws.fulfilled {
			slots = append(slots, t)
		}
		sort.Slice(slots, func(i, k int) bool { return slots[i] < slots[k] })
		if _, err := fmt.Fprintf(w, "  window %-18v level %d x=%d fulfilled=%d:",
			key.window(), ws.level, ws.x, len(slots)); err != nil {
			return err
		}
		for _, t := range slots {
			occ := "-"
			if id := ws.fulfilled[t]; id != 0 {
				occ = s.names.Name(id)
			}
			if _, err := fmt.Fprintf(w, " %d(%s)", t, occ); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}

	// Intervals sorted by (level, start).
	ivKeys := make([]ivKey, 0, len(s.ivs))
	for key := range s.ivs {
		ivKeys = append(ivKeys, key)
	}
	sort.Slice(ivKeys, func(i, k int) bool {
		if ivKeys[i].level != ivKeys[k].level {
			return ivKeys[i].level < ivKeys[k].level
		}
		return ivKeys[i].start < ivKeys[k].start
	})
	for _, key := range ivKeys {
		iv := s.ivs[key]
		capacity := 0
		for t := iv.start; t < iv.start+iv.span; t++ {
			if occ := s.slots[t]; occ == nil || occ.level >= iv.level {
				capacity++
			}
		}
		if _, err := fmt.Fprintf(w, "  interval L%d [%d,%d) allowance=%d assigned=%d reservations=%d\n",
			iv.level, iv.start, iv.start+iv.span, capacity, len(iv.assigned), totalRes(iv)); err != nil {
			return err
		}
	}
	return nil
}

func totalRes(iv *interval) int {
	n := 0
	for _, c := range iv.resCount {
		n += c
	}
	return n
}
