package core

import (
	"testing"

	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/mathx"
)

// FuzzRequestStream drives the reservation scheduler with a byte-decoded
// request stream. The fuzzer explores window geometries and churn orders
// the random generators never produce; every reachable state must keep
// all invariants (failures on infeasible input are fine — corruption is
// not). Run with: go test -fuzz=FuzzRequestStream ./internal/core
func FuzzRequestStream(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0x80, 0x33})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x81, 0x82, 0x05})
	f.Add([]byte{0xff, 0xfe, 0xfd, 0x10, 0x90, 0x20, 0xa0})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := New()
		var live []string
		id := 0
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			if op&0x80 != 0 && len(live) > 0 {
				// Delete: pick a live job by index.
				idx := int(arg) % len(live)
				name := live[idx]
				if _, err := s.Delete(name); err != nil {
					t.Fatalf("delete of live job %q failed: %v", name, err)
				}
				live = append(live[:idx], live[idx+1:]...)
			} else {
				// Insert: decode span exponent (0..7 -> spans 1..128) and a
				// start bucket.
				spanExp := uint(op&0x07) % 8
				span := int64(1) << spanExp
				start := mathx.AlignDown(int64(arg)*4, span)
				name := "f" + string(rune('a'+id%26)) + string(rune('a'+(id/26)%26)) + string(rune('a'+(id/676)%26))
				id++
				_, err := s.Insert(jobs.Job{Name: name, Window: jobs.Window{Start: start, End: start + span}})
				if err != nil {
					// Infeasible or poisoned: acceptable terminal state —
					// but the scheduler must refuse consistently from now on.
					if _, err2 := s.Insert(jobs.Job{Name: "post", Window: jobs.Window{Start: 0, End: 2}}); err2 == nil {
						t.Fatal("scheduler accepted insert after poisoning")
					}
					return
				}
				live = append(live, name)
			}
			if err := s.SelfCheck(); err != nil {
				t.Fatalf("invariant violation: %v", err)
			}
		}
		if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), 1); err != nil {
			t.Fatalf("final schedule infeasible: %v", err)
		}
	})
}
