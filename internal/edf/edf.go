// Package edf implements the classical earliest-deadline-first policy as
// a reallocating scheduler: on every insert or delete it recomputes the
// full EDF schedule and pays one reallocation for every job whose
// placement changed.
//
// This is the baseline the paper calls brittle (Section 4's introduction):
// EDF keeps the schedule tightly packed in deadline order, so a single
// insertion can shift Θ(n) jobs even when the instance is heavily
// underallocated. The reservation scheduler in internal/core exists to
// avoid exactly this cascade.
//
// For unit-length jobs, least-laxity-first (LLF) induces the same order
// as EDF (the laxity of an unfinished unit job at time t is d - t - 1,
// monotone in the deadline), so this package covers both classical
// policies; the Policy knob only changes tie-breaking among equal
// deadlines, which is enough to observe that the brittleness is not an
// artifact of one tie-break rule.
package edf

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Policy selects the tie-breaking rule among equal deadlines.
type Policy uint8

const (
	// TieByArrival breaks deadline ties by earlier arrival, then name.
	TieByArrival Policy = iota
	// TieByName breaks deadline ties by job name only.
	TieByName
)

// Scheduler is the EDF-recompute reallocating scheduler.
type Scheduler struct {
	m       int
	policy  Policy
	jobs    map[string]jobs.Window
	current jobs.Assignment
}

var _ sched.Scheduler = (*Scheduler)(nil)

// New returns an EDF-recompute scheduler on m machines.
func New(m int, policy Policy) *Scheduler {
	if m < 1 {
		panic(fmt.Sprintf("edf: %d machines", m))
	}
	return &Scheduler{
		m:       m,
		policy:  policy,
		jobs:    make(map[string]jobs.Window),
		current: make(jobs.Assignment),
	}
}

// Machines returns m.
func (s *Scheduler) Machines() int { return s.m }

// Active returns the number of active jobs.
func (s *Scheduler) Active() int { return len(s.jobs) }

// Jobs returns a snapshot of the active job set.
func (s *Scheduler) Jobs() []jobs.Job {
	out := make([]jobs.Job, 0, len(s.jobs))
	for name, w := range s.jobs {
		out = append(out, jobs.Job{Name: name, Window: w})
	}
	return out
}

// Assignment returns the current schedule.
func (s *Scheduler) Assignment() jobs.Assignment { return s.current.Clone() }

// Insert adds a job and recomputes the EDF schedule.
func (s *Scheduler) Insert(j jobs.Job) (metrics.Cost, error) {
	if err := j.Validate(); err != nil {
		return metrics.Cost{}, err
	}
	if _, dup := s.jobs[j.Name]; dup {
		return metrics.Cost{}, fmt.Errorf("%w: %q", sched.ErrDuplicateJob, j.Name)
	}
	s.jobs[j.Name] = j.Window
	cost, err := s.recompute()
	if err != nil {
		delete(s.jobs, j.Name)
		return metrics.Cost{}, &sched.InfeasibleError{
			Req:    jobs.Request{Kind: jobs.Insert, Name: j.Name, Window: j.Window},
			Detail: "EDF found no feasible schedule",
		}
	}
	return cost, nil
}

// Delete removes a job and recomputes the EDF schedule.
func (s *Scheduler) Delete(name string) (metrics.Cost, error) {
	if _, ok := s.jobs[name]; !ok {
		return metrics.Cost{}, fmt.Errorf("%w: %q", sched.ErrUnknownJob, name)
	}
	delete(s.jobs, name)
	cost, err := s.recompute()
	if err != nil {
		// Removing a job cannot make a feasible instance infeasible.
		return metrics.Cost{}, fmt.Errorf("edf: delete of %q made the schedule infeasible: %w", name, err)
	}
	return cost, nil
}

// recompute rebuilds the EDF schedule and prices the change.
func (s *Scheduler) recompute() (metrics.Cost, error) {
	next, err := s.schedule()
	if err != nil {
		return metrics.Cost{}, err
	}
	moved, migrated := s.current.Diff(next)
	// Newly inserted jobs count one reallocation for their placement.
	for name := range next {
		if _, existed := s.current[name]; !existed {
			moved++
		}
	}
	s.current = next
	return metrics.Cost{Reallocations: moved, Migrations: migrated}, nil
}

// schedule runs EDF with the configured tie-break over the active set.
func (s *Scheduler) schedule() (jobs.Assignment, error) {
	list := make([]jobs.Job, 0, len(s.jobs))
	for name, w := range s.jobs {
		list = append(list, jobs.Job{Name: name, Window: w})
	}
	sort.Slice(list, func(i, k int) bool {
		a, b := list[i], list[k]
		if a.Window.Start != b.Window.Start {
			return a.Window.Start < b.Window.Start
		}
		return a.Name < b.Name
	})

	out := make(jobs.Assignment, len(list))
	h := &jobHeap{policy: s.policy}
	i := 0
	var t jobs.Time
	for i < len(list) || h.Len() > 0 {
		if h.Len() == 0 {
			t = list[i].Window.Start
		}
		for i < len(list) && list[i].Window.Start <= t {
			heap.Push(h, list[i])
			i++
		}
		for k := 0; k < s.m && h.Len() > 0; k++ {
			j := heap.Pop(h).(jobs.Job)
			if j.Window.End <= t {
				return nil, fmt.Errorf("edf: job %q missed deadline %d at time %d", j.Name, j.Window.End, t)
			}
			out[j.Name] = jobs.Placement{Machine: k, Slot: t}
		}
		t++
	}
	return out, nil
}

// SelfCheck validates that the cached schedule is feasible for the
// active set.
func (s *Scheduler) SelfCheck() error {
	if len(s.current) != len(s.jobs) {
		return fmt.Errorf("edf: schedule covers %d of %d jobs", len(s.current), len(s.jobs))
	}
	used := make(map[jobs.Placement]string, len(s.current))
	for name, w := range s.jobs {
		p, ok := s.current[name]
		if !ok {
			return fmt.Errorf("edf: job %q unscheduled", name)
		}
		if p.Machine < 0 || p.Machine >= s.m {
			return fmt.Errorf("edf: job %q on machine %d", name, p.Machine)
		}
		if !w.Contains(p.Slot) {
			return fmt.Errorf("edf: job %q at %d outside %v", name, p.Slot, w)
		}
		if prev, clash := used[p]; clash {
			return fmt.Errorf("edf: jobs %q and %q collide at %+v", prev, name, p)
		}
		used[p] = name
	}
	return nil
}

// jobHeap orders by (deadline, tie-break).
type jobHeap struct {
	policy Policy
	items  []jobs.Job
}

func (h *jobHeap) Len() int { return len(h.items) }
func (h *jobHeap) Less(i, k int) bool {
	a, b := h.items[i], h.items[k]
	if a.Window.End != b.Window.End {
		return a.Window.End < b.Window.End
	}
	if h.policy == TieByArrival && a.Window.Start != b.Window.Start {
		return a.Window.Start < b.Window.Start
	}
	return a.Name < b.Name
}
func (h *jobHeap) Swap(i, k int)      { h.items[i], h.items[k] = h.items[k], h.items[i] }
func (h *jobHeap) Push(x interface{}) { h.items = append(h.items, x.(jobs.Job)) }
func (h *jobHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
