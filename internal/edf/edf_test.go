package edf

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/sched"
	"repro/internal/workload"
)

func win(start, end int64) jobs.Window { return jobs.Window{Start: start, End: end} }

func job(name string, start, end int64) jobs.Job {
	return jobs.Job{Name: name, Window: win(start, end)}
}

func TestBasicInsertDelete(t *testing.T) {
	s := New(1, TieByArrival)
	c, err := s.Insert(job("a", 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if c.Reallocations != 1 {
		t.Errorf("cost = %+v", c)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if s.Active() != 0 {
		t.Error("not deleted")
	}
}

func TestInfeasibleRollsBack(t *testing.T) {
	s := New(1, TieByArrival)
	if _, err := s.Insert(job("a", 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(job("b", 0, 1)); !errors.Is(err, sched.ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	// Unlike core, EDF-recompute can roll back trivially.
	if s.Active() != 1 {
		t.Errorf("active = %d", s.Active())
	}
	if _, err := s.Insert(job("c", 4, 8)); err != nil {
		t.Errorf("scheduler unusable after rejected insert: %v", err)
	}
}

func TestRejections(t *testing.T) {
	s := New(2, TieByName)
	if _, err := s.Insert(job("a", 0, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(job("a", 0, 8)); !errors.Is(err, sched.ErrDuplicateJob) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := s.Delete("ghost"); !errors.Is(err, sched.ErrUnknownJob) {
		t.Errorf("unknown: %v", err)
	}
}

// The brittleness the paper describes: n jobs sharing a big window are
// packed in deadline order; inserting one job with an earlier deadline
// shifts every one of them, Θ(n) reallocations despite 2-underallocation.
func TestFrontInsertCascade(t *testing.T) {
	s := New(1, TieByArrival)
	const n = 64
	for i := 0; i < n; i++ {
		// Jobs with staggered deadlines: job i has window [0, 2n + i + 1).
		if _, err := s.Insert(job(fmt.Sprintf("j%03d", i), 0, int64(2*n+i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// All n jobs sit in slots 0..n-1 in deadline order.
	c, err := s.Insert(job("urgent", 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Reallocations < n/2 {
		t.Errorf("front insert moved only %d jobs; EDF brittleness should move ~%d", c.Reallocations, n)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiMachine(t *testing.T) {
	s := New(3, TieByArrival)
	for i := 0; i < 9; i++ {
		if _, err := s.Insert(job(fmt.Sprintf("j%d", i), 0, 3)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), 3); err != nil {
		t.Fatal(err)
	}
}

func TestRandomChurnStaysFeasible(t *testing.T) {
	g, err := workload.NewGenerator(workload.Config{Seed: 5, Gamma: 4, Horizon: 512, Steps: 300})
	if err != nil {
		t.Fatal(err)
	}
	s := New(1, TieByArrival)
	if _, err := sched.RunChecked(s, g.Sequence(), nil); err != nil {
		t.Fatal(err)
	}
	if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestPoliciesDiffer(t *testing.T) {
	// Same deadline, different arrivals: TieByArrival prefers the earlier
	// arrival; TieByName prefers the lexicographically smaller name.
	build := func(p Policy) jobs.Assignment {
		s := New(1, p)
		// "z" arrives earlier, "a" later; both deadline 4.
		if _, err := s.Insert(job("z", 0, 4)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Insert(job("a", 1, 4)); err != nil {
			t.Fatal(err)
		}
		return s.Assignment()
	}
	byArrival := build(TieByArrival)
	byName := build(TieByName)
	if byArrival["z"].Slot != 0 {
		t.Errorf("TieByArrival: z at %d", byArrival["z"].Slot)
	}
	// TieByName: at slot 0 only z is available, so z still runs first;
	// at slot 1 'a' vs nothing. Use three jobs to expose the difference.
	s := New(1, TieByName)
	for _, j := range []jobs.Job{job("z", 0, 4), job("b", 0, 4)} {
		if _, err := s.Insert(j); err != nil {
			t.Fatal(err)
		}
	}
	asn := s.Assignment()
	if asn["b"].Slot != 0 || asn["z"].Slot != 1 {
		t.Errorf("TieByName order wrong: %v", asn)
	}
	_ = byName
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("m=0 accepted")
		}
	}()
	New(0, TieByArrival)
}
