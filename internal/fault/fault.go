// Package fault is the repository's unified error vocabulary: one
// canonical sentinel per failure class, shared by every layer that can
// raise it.
//
// The scheduler stacks (internal/sched, internal/shard), the durability
// layer (internal/wal), the network codec (internal/wire), and the
// client library all alias these values rather than defining parallel
// species, and the public realloc package re-exports them. The payoff
// is that callers branch on one errors.Is target no matter where a
// fault was raised: errors.Is(err, realloc.ErrOverload) holds whether
// the overload came from the embedded scheduler's admission path, a
// wire-level CodeOverload ack, or the network client's decode of one.
//
// The package is a stdlib-only leaf (see internal/analysis layering):
// anything may import it, it imports nothing.
package fault

import "errors"

var (
	// ErrClosed reports an operation against a component that has shut
	// down: a closed scheduler, WAL, server connection, or client.
	ErrClosed = errors.New("realloc: closed")

	// ErrOverload reports admission-control rejection: the component's
	// bounded inflight budget was exhausted and the request was refused
	// without being executed. Retry with backoff.
	ErrOverload = errors.New("realloc: overloaded, retry with backoff")

	// ErrDeadlineExceeded reports a request whose deadline passed before
	// it was executed. The request mutated nothing and was never logged.
	ErrDeadlineExceeded = errors.New("realloc: request deadline exceeded")

	// ErrInfeasible reports that no feasible placement exists — the
	// instance is not feasible, or (for the reservation scheduler) not
	// sufficiently underallocated.
	ErrInfeasible = errors.New("realloc: no feasible placement (instance not sufficiently underallocated)")

	// ErrDuplicateJob reports an insert of a job name that is already
	// active.
	ErrDuplicateJob = errors.New("realloc: job already active")

	// ErrUnknownJob reports a delete of a job name that is not active.
	ErrUnknownJob = errors.New("realloc: unknown job")

	// ErrMisaligned reports a window rejected by an aligned-only
	// scheduler.
	ErrMisaligned = errors.New("realloc: window is not aligned")

	// ErrNotElastic reports a resize against a scheduler (or wrapper
	// chain) that does not support changing its machine pool.
	ErrNotElastic = errors.New("realloc: scheduler does not support resizing")

	// ErrBadRequest reports a request the receiver could not parse or
	// validate: malformed frame payloads, out-of-range fields.
	ErrBadRequest = errors.New("realloc: bad request")

	// ErrFenced reports an operation refused because a newer fencing
	// epoch exists: the node that received it has been deposed as
	// primary (or the peer is stale). See internal/wire for the epoch
	// rule.
	ErrFenced = errors.New("realloc: fenced by a newer primary epoch")
)
