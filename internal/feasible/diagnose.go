package feasible

import (
	"fmt"
	"sort"

	"repro/internal/jobs"
)

// CriticalInterval reports the congestion of one critical interval
// [Start, End): the jobs whose windows nest inside it versus its
// capacity m*(End-Start).
type CriticalInterval struct {
	Start, End jobs.Time
	Jobs       int
	Capacity   int64 // m * span
	// Load is Jobs/Capacity; the instance is γ-underallocated iff the
	// maximum Load over all critical intervals is <= 1/γ.
	Load float64
}

// String renders the interval diagnostics compactly.
func (c CriticalInterval) String() string {
	return fmt.Sprintf("[%d,%d): %d jobs / %d slots (load %.3f)",
		c.Start, c.End, c.Jobs, c.Capacity, c.Load)
}

// Diagnose returns the `top` most congested critical intervals of the
// job set on m machines, most congested first — the diagnostic view for
// "why did the scheduler reject my instance". Intervals with zero jobs
// are skipped.
func Diagnose(js []jobs.Job, m int, top int) []CriticalInterval {
	if len(js) == 0 || top <= 0 {
		return nil
	}
	starts := make([]jobs.Time, 0, len(js))
	ends := make([]jobs.Time, 0, len(js))
	for _, j := range js {
		starts = append(starts, j.Window.Start)
		ends = append(ends, j.Window.End)
	}
	dedupSort(&starts)
	dedupSort(&ends)

	var out []CriticalInterval
	for _, s := range starts {
		for _, t := range ends {
			if t <= s {
				continue
			}
			count := 0
			for _, j := range js {
				if j.Window.Start >= s && j.Window.End <= t {
					count++
				}
			}
			if count == 0 {
				continue
			}
			capSlots := int64(m) * (t - s)
			out = append(out, CriticalInterval{
				Start: s, End: t, Jobs: count, Capacity: capSlots,
				Load: float64(count) / float64(capSlots),
			})
		}
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Load != out[k].Load {
			return out[i].Load > out[k].Load
		}
		if out[i].Start != out[k].Start {
			return out[i].Start < out[k].Start
		}
		return out[i].End < out[k].End
	})
	if len(out) > top {
		out = out[:top]
	}
	return out
}

// SlackProfile summarizes an instance's slack: the bottleneck interval
// and the largest integer γ for which the counting condition holds.
type SlackProfile struct {
	Bottleneck CriticalInterval
	// Gamma is the largest integer slack factor (0 if infeasible even at
	// γ=1, 1<<30 if the set is empty).
	Gamma int64
	// Feasible reports Hall's condition at γ=1.
	Feasible bool
}

// Profile computes the slack profile of a job set on m machines.
func Profile(js []jobs.Job, m int) SlackProfile {
	p := SlackProfile{Gamma: MaxCongestion(js, m)}
	p.Feasible = p.Gamma >= 1
	if worst := Diagnose(js, m, 1); len(worst) > 0 {
		p.Bottleneck = worst[0]
	}
	return p
}
