package feasible

import (
	"strings"
	"testing"

	"repro/internal/jobs"
)

func TestDiagnoseFindsBottleneck(t *testing.T) {
	js := []jobs2{
		{"a", 0, 4}, {"b", 0, 4}, {"c", 0, 4}, // load 0.75 in [0,4)
		{"d", 0, 64}, // slack elsewhere
	}
	out := Diagnose(toJobs(js), 1, 3)
	if len(out) == 0 {
		t.Fatal("no intervals")
	}
	top := out[0]
	if top.Start != 0 || top.End != 4 || top.Jobs != 3 {
		t.Errorf("bottleneck = %v", top)
	}
	if top.Load != 0.75 {
		t.Errorf("load = %f", top.Load)
	}
	if !strings.Contains(top.String(), "[0,4)") {
		t.Errorf("String() = %q", top.String())
	}
}

func TestDiagnoseOrdering(t *testing.T) {
	js := []jobs2{
		{"a", 0, 2}, {"b", 0, 2}, // load 1.0
		{"c", 8, 16}, // load 0.125
	}
	out := Diagnose(toJobs(js), 1, 10)
	for i := 1; i < len(out); i++ {
		if out[i].Load > out[i-1].Load {
			t.Fatalf("not sorted by load: %v", out)
		}
	}
	if out[0].Load != 1.0 {
		t.Errorf("top load = %f", out[0].Load)
	}
}

func TestDiagnoseEdgeCases(t *testing.T) {
	if Diagnose(nil, 1, 5) != nil {
		t.Error("nil set produced intervals")
	}
	if Diagnose(toJobs([]jobs2{{"a", 0, 4}}), 1, 0) != nil {
		t.Error("top=0 produced intervals")
	}
	out := Diagnose(toJobs([]jobs2{{"a", 0, 4}}), 1, 10)
	if len(out) != 1 {
		t.Errorf("singleton: %v", out)
	}
}

func TestProfile(t *testing.T) {
	js := toJobs([]jobs2{{"a", 0, 8}, {"b", 0, 8}})
	p := Profile(js, 1)
	if !p.Feasible {
		t.Error("feasible set profiled infeasible")
	}
	if p.Gamma != 4 {
		t.Errorf("gamma = %d, want 4", p.Gamma)
	}
	if p.Bottleneck.Jobs != 2 || p.Bottleneck.End-p.Bottleneck.Start != 8 {
		t.Errorf("bottleneck = %v", p.Bottleneck)
	}

	// Infeasible set.
	bad := toJobs([]jobs2{{"a", 0, 1}, {"b", 0, 1}})
	pb := Profile(bad, 1)
	if pb.Feasible || pb.Gamma != 0 {
		t.Errorf("infeasible profile = %+v", pb)
	}
}

// helpers

type jobs2 struct {
	name       string
	start, end int64
}

func toJobs(in []jobs2) []jobs.Job {
	out := make([]jobs.Job, len(in))
	for i, j := range in {
		out[i] = job(j.name, j.start, j.end)
	}
	return out
}
