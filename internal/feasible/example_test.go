package feasible_test

import (
	"fmt"

	"repro/internal/feasible"
	"repro/internal/jobs"
)

// EDF decides feasibility exactly for unit jobs.
func ExampleEDF() {
	js := []jobs.Job{
		{Name: "a", Window: jobs.Window{Start: 0, End: 2}},
		{Name: "b", Window: jobs.Window{Start: 0, End: 2}},
		{Name: "c", Window: jobs.Window{Start: 0, End: 2}},
	}
	_, okOne := feasible.EDF(js, 1)
	_, okTwo := feasible.EDF(js, 2)
	fmt.Printf("3 jobs, 2 slots, 1 machine: feasible=%v\n", okOne)
	fmt.Printf("3 jobs, 2 slots, 2 machines: feasible=%v\n", okTwo)
	// Output:
	// 3 jobs, 2 slots, 1 machine: feasible=false
	// 3 jobs, 2 slots, 2 machines: feasible=true
}

// Underallocated checks the paper's slack condition (Lemma 2 counting).
func ExampleUnderallocated() {
	js := []jobs.Job{
		{Name: "a", Window: jobs.Window{Start: 0, End: 16}},
		{Name: "b", Window: jobs.Window{Start: 0, End: 16}},
	}
	fmt.Println(feasible.Underallocated(js, 1, 8)) // 2*8 <= 16
	fmt.Println(feasible.Underallocated(js, 1, 9)) // 2*9 > 16
	// Output:
	// true
	// false
}

// Diagnose names the congested interval when an instance is too tight.
func ExampleDiagnose() {
	js := []jobs.Job{
		{Name: "a", Window: jobs.Window{Start: 4, End: 6}},
		{Name: "b", Window: jobs.Window{Start: 4, End: 6}},
		{Name: "c", Window: jobs.Window{Start: 0, End: 64}},
	}
	fmt.Println(feasible.Diagnose(js, 1, 1)[0])
	// Output:
	// [4,6): 2 jobs / 2 slots (load 1.000)
}
