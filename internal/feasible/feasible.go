// Package feasible provides feasibility and underallocation checkers for
// sets of unit-length jobs with windows, plus an exact offline EDF
// scheduler.
//
// For unit jobs on m identical machines, a set J is feasible iff for every
// time interval [s, t) the number of jobs whose windows are contained in
// [s, t) is at most m*(t-s) (Hall's condition), and earliest-deadline-first
// produces a feasible schedule whenever one exists.
//
// γ-underallocation (the paper's slack notion) means the set stays
// feasible when every job's processing time is scaled to γ. For unit jobs
// this package checks it two ways:
//
//   - Exactly, by expanding each job to γ copies ... that is NOT
//     equivalent (a γ-length job needs γ *consecutive* slots). Instead we
//     check the counting condition the paper actually uses (Lemma 2): for
//     every critical interval [s, t), γ * (#jobs inside) <= m*(t-s). For
//     recursively aligned instances this condition is exactly what the
//     paper's inductive argument needs, and it is the definition our
//     workload generators satisfy by construction.
package feasible

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/jobs"
)

// EDF computes a feasible schedule for the given unit jobs on m machines
// using earliest-deadline-first, or returns ok=false if none exists.
// The returned assignment maps job name -> (machine, slot). Ties are
// broken deterministically by (deadline, window start, name).
func EDF(js []jobs.Job, m int) (jobs.Assignment, bool) {
	if m <= 0 {
		panic(fmt.Sprintf("feasible: EDF with %d machines", m))
	}
	sorted := make([]jobs.Job, len(js))
	copy(sorted, js)
	sort.Slice(sorted, func(i, k int) bool {
		a, b := sorted[i], sorted[k]
		if a.Window.Start != b.Window.Start {
			return a.Window.Start < b.Window.Start
		}
		if a.Window.End != b.Window.End {
			return a.Window.End < b.Window.End
		}
		return a.Name < b.Name
	})

	out := make(jobs.Assignment, len(js))
	h := &jobHeap{}
	i := 0
	var t jobs.Time
	for i < len(sorted) || h.Len() > 0 {
		if h.Len() == 0 {
			// Jump to the next arrival.
			t = sorted[i].Window.Start
		}
		// Admit everything that has arrived by t.
		for i < len(sorted) && sorted[i].Window.Start <= t {
			heap.Push(h, sorted[i])
			i++
		}
		// Schedule up to m earliest-deadline jobs in slot t.
		for k := 0; k < m && h.Len() > 0; k++ {
			j := heap.Pop(h).(jobs.Job)
			if j.Window.End <= t {
				return nil, false // deadline already passed: infeasible
			}
			out[j.Name] = jobs.Placement{Machine: k, Slot: t}
		}
		t++
	}
	return out, true
}

// IsFeasible reports whether the job set admits any feasible schedule on
// m machines.
func IsFeasible(js []jobs.Job, m int) bool {
	_, ok := EDF(js, m)
	return ok
}

// VerifySchedule checks that the assignment is a feasible schedule for
// exactly the given job set: every job placed inside its window, machine
// indices in [0, m), and no two jobs sharing a machine-slot.
func VerifySchedule(js []jobs.Job, a jobs.Assignment, m int) error {
	if len(a) != len(js) {
		return fmt.Errorf("feasible: schedule has %d placements for %d jobs", len(a), len(js))
	}
	used := make(map[jobs.Placement]string, len(a))
	for _, j := range js {
		p, ok := a[j.Name]
		if !ok {
			return fmt.Errorf("feasible: job %q missing from schedule", j.Name)
		}
		if p.Machine < 0 || p.Machine >= m {
			return fmt.Errorf("feasible: job %q on machine %d of %d", j.Name, p.Machine, m)
		}
		if !j.Window.Contains(p.Slot) {
			return fmt.Errorf("feasible: job %q at slot %d outside window %v", j.Name, p.Slot, j.Window)
		}
		if prev, clash := used[p]; clash {
			return fmt.Errorf("feasible: jobs %q and %q share machine %d slot %d",
				prev, j.Name, p.Machine, p.Slot)
		}
		used[p] = j.Name
	}
	return nil
}

// Underallocated reports whether the job set satisfies the paper's
// counting form of γ-underallocation on m machines: for every critical
// interval [s, t) (s an arrival, t a deadline), the jobs with windows
// inside [s, t) satisfy γ * count <= m * (t - s).
//
// This is necessary for γ-underallocation, and for the recursively
// aligned workloads used throughout this repository it is also the
// sufficient condition the paper's inductive arguments rely on (Lemma 2
// and the proof of Lemma 3).
func Underallocated(js []jobs.Job, m int, gamma int64) bool {
	if gamma < 1 {
		panic(fmt.Sprintf("feasible: gamma %d < 1", gamma))
	}
	if len(js) == 0 {
		return true
	}
	starts := make([]jobs.Time, 0, len(js))
	ends := make([]jobs.Time, 0, len(js))
	for _, j := range js {
		starts = append(starts, j.Window.Start)
		ends = append(ends, j.Window.End)
	}
	dedupSort(&starts)
	dedupSort(&ends)

	// For each critical pair (s, t) count jobs with s <= Start and
	// End <= t. O(|starts|*|ends| + n log n) via sorted sweep: for each s,
	// consider jobs with Start >= s sorted by End, and prefix-count.
	type win struct{ s, e jobs.Time }
	ws := make([]win, len(js))
	for i, j := range js {
		ws[i] = win{j.Window.Start, j.Window.End}
	}
	sort.Slice(ws, func(i, k int) bool { return ws[i].s > ws[k].s }) // descending start

	// endsCount is a Fenwick-free approach: walk starts descending,
	// inserting window ends into a sorted multiset; for each deadline t,
	// count ends <= t among inserted windows.
	inserted := make([]jobs.Time, 0, len(ws))
	wi := 0
	for si := len(starts) - 1; si >= 0; si-- {
		s := starts[si]
		for wi < len(ws) && ws[wi].s >= s {
			insertSorted(&inserted, ws[wi].e)
			wi++
		}
		for _, t := range ends {
			if t <= s {
				continue
			}
			count := int64(upperBound(inserted, t))
			if gamma*count > int64(m)*(t-s) {
				return false
			}
		}
	}
	return true
}

// MaxCongestion returns the maximum over critical intervals [s, t) of
// count(jobs inside) * span_unit / (m * (t-s)) expressed as the largest γ
// for which Underallocated holds, i.e. floor(min over intervals of
// m*(t-s)/count). Returns a very large value (1<<30) for an empty set.
func MaxCongestion(js []jobs.Job, m int) int64 {
	lo, hi := int64(1), int64(1)<<30
	if !Underallocated(js, m, 1) {
		return 0
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if Underallocated(js, m, mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func dedupSort(v *[]jobs.Time) {
	s := *v
	sort.Slice(s, func(i, k int) bool { return s[i] < s[k] })
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	*v = out
}

func insertSorted(v *[]jobs.Time, x jobs.Time) {
	s := *v
	i := sort.Search(len(s), func(k int) bool { return s[k] >= x })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	*v = s
}

// upperBound returns the number of elements <= x in sorted slice s.
func upperBound(s []jobs.Time, x jobs.Time) int {
	return sort.Search(len(s), func(k int) bool { return s[k] > x })
}

// jobHeap is a min-heap of jobs ordered by (deadline, start, name).
type jobHeap []jobs.Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, k int) bool {
	a, b := h[i], h[k]
	if a.Window.End != b.Window.End {
		return a.Window.End < b.Window.End
	}
	if a.Window.Start != b.Window.Start {
		return a.Window.Start < b.Window.Start
	}
	return a.Name < b.Name
}
func (h jobHeap) Swap(i, k int)       { h[i], h[k] = h[k], h[i] }
func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(jobs.Job)) }
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
