package feasible

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/jobs"
)

func win(start, end int64) jobs.Window { return jobs.Window{Start: start, End: end} }

func job(name string, start, end int64) jobs.Job {
	return jobs.Job{Name: name, Window: win(start, end)}
}

func TestEDFSimple(t *testing.T) {
	js := []jobs.Job{job("a", 0, 2), job("b", 0, 2), job("c", 1, 3)}
	a, ok := EDF(js, 1)
	if !ok {
		t.Fatal("feasible set declared infeasible")
	}
	if err := VerifySchedule(js, a, 1); err != nil {
		t.Fatal(err)
	}
}

func TestEDFInfeasible(t *testing.T) {
	js := []jobs.Job{job("a", 0, 1), job("b", 0, 1)}
	if _, ok := EDF(js, 1); ok {
		t.Error("two jobs in one slot declared feasible")
	}
	// Same set is feasible on two machines.
	a, ok := EDF(js, 2)
	if !ok {
		t.Fatal("feasible on m=2 declared infeasible")
	}
	if err := VerifySchedule(js, a, 2); err != nil {
		t.Fatal(err)
	}
}

func TestEDFGapsInArrivals(t *testing.T) {
	js := []jobs.Job{job("a", 0, 1), job("b", 1000, 1001)}
	a, ok := EDF(js, 1)
	if !ok {
		t.Fatal("sparse set infeasible")
	}
	if a["a"].Slot != 0 || a["b"].Slot != 1000 {
		t.Errorf("placements %v", a)
	}
}

func TestEDFTightChain(t *testing.T) {
	// n jobs with window [i, i+2): feasible exactly (Lemma 12's base set).
	var js []jobs.Job
	for i := 0; i < 50; i++ {
		js = append(js, job(name(i), int64(i), int64(i)+2))
	}
	a, ok := EDF(js, 1)
	if !ok {
		t.Fatal("chain infeasible")
	}
	if err := VerifySchedule(js, a, 1); err != nil {
		t.Fatal(err)
	}
	// Adding a forced job at [0,1) is still feasible...
	js2 := append(append([]jobs.Job{}, js...), job("x", 0, 1))
	if _, ok := EDF(js2, 1); !ok {
		t.Fatal("chain+x infeasible, should be feasible")
	}
	// ...but one more job inside [0, 2) is not (3 jobs, 2 slots).
	js3 := append(append([]jobs.Job{}, js2...), job("y", 0, 2))
	if _, ok := EDF(js3, 1); ok {
		t.Error("overfull chain declared feasible")
	}
}

func TestEDFEmpty(t *testing.T) {
	a, ok := EDF(nil, 3)
	if !ok || len(a) != 0 {
		t.Error("empty set mishandled")
	}
}

func TestVerifyScheduleCatchesErrors(t *testing.T) {
	js := []jobs.Job{job("a", 0, 2), job("b", 0, 2)}
	good := jobs.Assignment{"a": {Machine: 0, Slot: 0}, "b": {Machine: 0, Slot: 1}}
	if err := VerifySchedule(js, good, 1); err != nil {
		t.Fatalf("good schedule rejected: %v", err)
	}
	cases := map[string]jobs.Assignment{
		"missing job":    {"a": {Machine: 0, Slot: 0}},
		"outside window": {"a": {Machine: 0, Slot: 5}, "b": {Machine: 0, Slot: 1}},
		"slot clash":     {"a": {Machine: 0, Slot: 0}, "b": {Machine: 0, Slot: 0}},
		"bad machine":    {"a": {Machine: 1, Slot: 0}, "b": {Machine: 0, Slot: 1}},
	}
	for name, a := range cases {
		if err := VerifySchedule(js, a, 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	extra := jobs.Assignment{"a": {Machine: 0, Slot: 0}, "b": {Machine: 0, Slot: 1}, "c": {Machine: 0, Slot: 3}}
	if err := VerifySchedule(js, extra, 1); err == nil {
		t.Error("extra placement accepted")
	}
}

func TestUnderallocated(t *testing.T) {
	// 2 jobs in a window of 8 slots: 4-underallocated but not 8-.
	js := []jobs.Job{job("a", 0, 8), job("b", 0, 8)}
	if !Underallocated(js, 1, 4) {
		t.Error("4-underallocation rejected")
	}
	if Underallocated(js, 1, 8) {
		t.Error("8-underallocation accepted (needs 16 slots)")
	}
	if got := MaxCongestion(js, 1); got != 4 {
		t.Errorf("MaxCongestion = %d, want 4", got)
	}
}

func TestUnderallocatedMultiMachine(t *testing.T) {
	// 4 jobs in window [0,8) on m=2: slack factor m*8/4 = 4.
	js := []jobs.Job{job("a", 0, 8), job("b", 0, 8), job("c", 0, 8), job("d", 0, 8)}
	if !Underallocated(js, 2, 4) {
		t.Error("m=2 4-underallocation rejected")
	}
	if Underallocated(js, 2, 5) {
		t.Error("m=2 5-underallocation accepted")
	}
}

func TestUnderallocatedNestedWindows(t *testing.T) {
	// Jobs concentrated in a sub-window must be caught even if the outer
	// window is slack: 4 jobs in [0,4), plus 1 in [0,64).
	js := []jobs.Job{
		job("a", 0, 4), job("b", 0, 4), job("c", 0, 4), job("d", 0, 4),
		job("e", 0, 64),
	}
	if Underallocated(js, 1, 2) {
		t.Error("congested sub-window not detected")
	}
	if !Underallocated(js, 1, 1) {
		t.Error("feasible set rejected at gamma=1")
	}
}

func TestUnderallocatedEmpty(t *testing.T) {
	if !Underallocated(nil, 1, 100) {
		t.Error("empty set not underallocated")
	}
}

// Property: Underallocated(γ=1) is implied by EDF feasibility... in fact
// for unit jobs Hall's condition is equivalent to feasibility, so the
// counting check at γ=1 must agree with EDF on random instances.
func TestHallEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := 1 + rng.Intn(3)
		var js []jobs.Job
		for i := 0; i < n; i++ {
			s := int64(rng.Intn(30))
			e := s + 1 + int64(rng.Intn(10))
			js = append(js, job(name(i), s, e))
		}
		return Underallocated(js, m, 1) == IsFeasible(js, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: monotonicity in γ — if γ-underallocated then also
// γ'-underallocated for γ' < γ.
func TestUnderallocationMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var js []jobs.Job
		for i := 0; i < 20; i++ {
			s := int64(rng.Intn(50))
			e := s + 1 + int64(rng.Intn(20))
			js = append(js, job(name(i), s, e))
		}
		g := MaxCongestion(js, 1)
		for gamma := int64(1); gamma <= g; gamma++ {
			if !Underallocated(js, 1, gamma) {
				return false
			}
		}
		return g == 0 || !Underallocated(js, 1, g+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: EDF's output always verifies.
func TestEDFOutputVerifiesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		m := 1 + rng.Intn(4)
		var js []jobs.Job
		for i := 0; i < n; i++ {
			s := int64(rng.Intn(40))
			e := s + 1 + int64(rng.Intn(16))
			js = append(js, job(name(i), s, e))
		}
		a, ok := EDF(js, m)
		if !ok {
			return true
		}
		return VerifySchedule(js, a, m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func name(i int) string {
	return "j" + string(rune('A'+i/26)) + string(rune('a'+i%26))
}
