package feasible

import (
	"sort"

	"repro/internal/jobs"
)

// MatchingFeasible decides feasibility of unit jobs on m machines by
// maximum bipartite matching (Hopcroft–Karp) between jobs and
// machine-slots, an implementation completely independent of EDF. It
// exists as a differential oracle: both deciders must always agree.
//
// Slots are compressed to those inside at least one window; each
// timeslot contributes m capacity (modeled as m parallel slot-nodes).
// Complexity O(E * sqrt(V)); intended for validation, not production.
func MatchingFeasible(js []jobs.Job, m int) bool {
	if len(js) == 0 {
		return true
	}
	// Collect candidate timeslots: for unit jobs on an integer timeline,
	// a feasible schedule exists iff one exists using only slots in
	// [start, start + ceil(n/m)) for each window start... To stay exact
	// we enumerate, per window, the first ceil(n/m) slots are NOT enough
	// in general; instead use all slots inside any window, bounded by
	// compressing: any feasible schedule can be normalized so that every
	// used slot is within n slots of some window start (exchange
	// argument: move each job to the earliest free slot of its window).
	starts := make([]jobs.Time, 0, len(js))
	for _, j := range js {
		starts = append(starts, j.Window.Start)
	}
	sort.Slice(starts, func(i, k int) bool { return starts[i] < starts[k] })
	limit := jobs.Time((len(js) + m - 1) / m)
	slotSet := make(map[jobs.Time]bool)
	for _, s := range starts {
		for t := s; t < s+limit; t++ {
			slotSet[t] = true
		}
	}
	// Keep only slots covered by at least one window, and clip to
	// windows' union.
	slots := make([]jobs.Time, 0, len(slotSet))
	for t := range slotSet {
		for _, j := range js {
			if j.Window.Contains(t) {
				slots = append(slots, t)
				break
			}
		}
	}
	sort.Slice(slots, func(i, k int) bool { return slots[i] < slots[k] })
	slotIdx := make(map[jobs.Time]int, len(slots))
	for i, t := range slots {
		slotIdx[t] = i
	}

	// Bipartite graph: job i -> slot-node (slot index * m + machine).
	nRight := len(slots) * m
	adj := make([][]int, len(js))
	for i, j := range js {
		for t := j.Window.Start; t < j.Window.End; t++ {
			si, ok := slotIdx[t]
			if !ok {
				continue
			}
			for k := 0; k < m; k++ {
				adj[i] = append(adj[i], si*m+k)
			}
		}
	}
	return hopcroftKarp(adj, nRight) == len(js)
}

// hopcroftKarp returns the size of a maximum matching of the bipartite
// graph given as left-node adjacency lists over right nodes [0, nRight).
func hopcroftKarp(adj [][]int, nRight int) int {
	const inf = 1 << 30
	nLeft := len(adj)
	matchL := make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, nLeft)
	queue := make([]int, 0, nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for u := range adj {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}
	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	matched := 0
	for bfs() {
		for u := range adj {
			if matchL[u] == -1 && dfs(u) {
				matched++
			}
		}
	}
	return matched
}
