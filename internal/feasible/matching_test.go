package feasible

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/jobs"
)

func TestMatchingFeasibleBasic(t *testing.T) {
	js := [][]jobs.Job{
		{job("a", 0, 2), job("b", 0, 2)},                 // feasible on 1
		{job("a", 0, 1), job("b", 0, 1)},                 // infeasible on 1
		{job("a", 0, 1), job("b", 0, 1), job("c", 0, 1)}, // feasible on 3
	}
	if !MatchingFeasible(js[0], 1) {
		t.Error("case 0 should be feasible")
	}
	if MatchingFeasible(js[1], 1) {
		t.Error("case 1 should be infeasible")
	}
	if !MatchingFeasible(js[2], 3) {
		t.Error("case 2 should be feasible on 3 machines")
	}
	if !MatchingFeasible(nil, 1) {
		t.Error("empty set infeasible")
	}
}

// The central differential property: the matching oracle and EDF must
// agree on every instance.
func TestMatchingAgreesWithEDF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		m := 1 + rng.Intn(3)
		js := make([]jobs.Job, 0, n)
		for i := 0; i < n; i++ {
			s := int64(rng.Intn(25))
			e := s + 1 + int64(rng.Intn(12))
			js = append(js, job(name(i), s, e))
		}
		return MatchingFeasible(js, m) == IsFeasible(js, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Tight instances right at the boundary.
func TestMatchingTightBoundary(t *testing.T) {
	// Exactly full: n jobs, n slots.
	var js []jobs.Job
	for i := 0; i < 12; i++ {
		js = append(js, job(name(i), 0, 12))
	}
	if !MatchingFeasible(js, 1) {
		t.Error("exact fill rejected")
	}
	js = append(js, job("extra", 0, 12))
	if MatchingFeasible(js, 1) {
		t.Error("overfull accepted")
	}
}

// Sparse far-apart windows exercise the slot compression.
func TestMatchingSparse(t *testing.T) {
	js := []jobs.Job{
		job("a", 0, 2),
		job("b", 1_000_000, 1_000_001),
		job("c", 1<<40, (1<<40)+4),
	}
	if !MatchingFeasible(js, 1) {
		t.Error("sparse set rejected")
	}
}
