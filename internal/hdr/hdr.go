// Package hdr implements a fixed-size, allocation-free, HDR-style
// latency histogram: log-bucketed counters with a bounded relative
// error, safe for concurrent recording, and mergeable across shards.
//
// The value axis (nanoseconds, for latency) is covered by 32 linear
// sub-buckets per power of two, so any recorded value is off by at most
// 1/32 (~3.1%) of itself when read back through a quantile. Values
// below 32 are exact; values above ~2.4 hours clamp into the top
// bucket. The whole histogram is one flat array of atomic counters —
// Record is a couple of atomic adds with no allocation and no locking,
// which is what lets the shard dispatch hot path record every request
// without disturbing the zero-alloc budget it is measuring.
//
// Reading happens through Snapshot, a frozen copy with quantile, mean,
// and merge operations. Snapshots of independent histograms (one per
// shard, one per benchmark lane) merge associatively into the same
// totals as a single shared histogram would have recorded.
package hdr

import (
	"math"
	"math/bits"
	"sync/atomic"
)

const (
	// subBits fixes the resolution: 1<<subBits linear sub-buckets per
	// octave, bounding the relative quantile error at 1/(1<<subBits).
	subBits  = 5
	subCount = 1 << subBits

	// maxExp is the last covered octave: values in [2^maxExp, 2^(maxExp+1))
	// still resolve; anything larger clamps to maxValue. 2^43 ns is
	// about 2.4 hours — far beyond any plausible request latency.
	maxExp   = 42
	maxValue = int64(1)<<(maxExp+1) - 1

	// nBuckets covers indices for exact values [0,32) plus one run of 32
	// sub-buckets for each octave subBits..maxExp.
	nBuckets = (maxExp - subBits + 2) * subCount
)

// Histogram is the concurrent write side. The zero value is NOT ready
// for use as a value (it is ~10KB and holds atomics — never copy it);
// use New and share the pointer.
type Histogram struct {
	counts [nBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// bucketOf maps a value to its bucket index. Negative values clamp to
// 0, values beyond maxValue to the top bucket.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v > maxValue {
		v = maxValue
	}
	if v < subCount {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= subBits
	return (k-subBits+1)*subCount + int(v>>uint(k-subBits)) - subCount
}

// bucketHigh is the largest value mapping to bucket i (the value a
// quantile reports for ranks landing in the bucket).
func bucketHigh(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	octave := i / subCount
	pos := i % subCount
	low := int64(subCount+pos) << uint(octave-1)
	return low + int64(1)<<uint(octave-1) - 1
}

// Record adds one observation. It is safe for any number of concurrent
// callers and performs no allocation — suitable for request hot paths.
//
//reallocvet:hotpath
func (h *Histogram) Record(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(uint64(v))
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordN adds n observations of the same value (a batch of requests
// served in one sub-batch shares one enqueue-to-served latency). Like
// Record it is concurrent-safe and allocation-free.
//
//reallocvet:hotpath
func (h *Histogram) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	h.counts[bucketOf(v)].Add(n)
	h.count.Add(n)
	if v > 0 {
		h.sum.Add(uint64(v) * n)
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Reset zeroes the histogram. It must not race Record: callers
// quiesce writers first (benchmark harnesses between runs).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Snapshot freezes the histogram into a copyable read-side view. Taken
// concurrently with writers it is weakly consistent (bucket counts are
// each atomically read, but not as one cut); quiesced, it is exact.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		counts: make([]uint64, nBuckets),
		count:  h.count.Load(),
		sum:    h.sum.Load(),
		max:    h.max.Load(),
	}
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
	}
	return s
}

// Snapshot is a frozen histogram: plain data, freely copyable, with
// the read-side operations. The zero value is an empty snapshot; Merge
// grows it on first use.
type Snapshot struct {
	counts []uint64
	count  uint64
	sum    uint64
	max    int64
}

// Count returns the number of observations in the snapshot.
func (s Snapshot) Count() uint64 { return s.count }

// Max returns the largest recorded value (exact, not bucketed), or 0
// when empty.
func (s Snapshot) Max() int64 { return s.max }

// Mean returns the arithmetic mean of the recorded values, 0 when
// empty. (The sum is exact; only quantiles are bucketed.)
func (s Snapshot) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.count)
}

// Quantile returns the q-th quantile (q in [0,1]) by nearest rank: the
// upper bound of the bucket holding the ceil(q*count)-th observation,
// clamped to the exact observed maximum. Empty snapshots return 0. The
// result overstates the exact sample quantile by at most 1/32 of it.
func (s Snapshot) Quantile(q float64) int64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum < rank {
			continue
		}
		if cum >= s.count {
			// The rank falls in the last populated bucket, which also
			// holds the exact max — report it instead of the bucket
			// bound (this makes Quantile(1) exact, and keeps clamped
			// top-bucket observations honest).
			return s.max
		}
		return bucketHigh(i)
	}
	return s.max
}

// Merge folds o into s. Merging is commutative and associative: any
// merge order over a set of snapshots yields identical counts, and the
// result is indistinguishable from one histogram that recorded every
// underlying observation.
func (s *Snapshot) Merge(o Snapshot) {
	if o.count == 0 {
		return
	}
	if s.counts == nil {
		s.counts = make([]uint64, nBuckets)
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	s.count += o.count
	s.sum += o.sum
	if o.max > s.max {
		s.max = o.max
	}
}
