package hdr

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// exactQuantile is the sort-the-samples oracle: nearest-rank, the same
// rank convention Snapshot.Quantile uses.
func exactQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkAgainstOracle records samples and asserts every quantile of the
// histogram brackets the exact sample quantile within the documented
// error bound: exact <= hist <= exact + max(1, exact/32).
func checkAgainstOracle(t *testing.T, name string, samples []int64) {
	t.Helper()
	h := New()
	for _, v := range samples {
		h.Record(v)
	}
	snap := h.Snapshot()
	if got, want := snap.Count(), uint64(len(samples)); got != want {
		t.Fatalf("%s: count %d, want %d", name, got, want)
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i] < sorted[k] })
	for _, v := range sorted {
		if v < 0 {
			t.Fatalf("%s: oracle comparison needs non-negative samples", name)
		}
	}
	if got, want := snap.Max(), sorted[len(sorted)-1]; got != want {
		t.Errorf("%s: max %d, want exact %d", name, got, want)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999, 1} {
		exact := exactQuantile(sorted, q)
		got := snap.Quantile(q)
		slack := exact / 32
		if slack < 1 {
			slack = 1
		}
		if got < exact || got > exact+slack {
			t.Errorf("%s: q%.4f = %d, exact %d (allowed [%d, %d])",
				name, q, got, exact, exact, exact+slack)
		}
	}
	var sum int64
	for _, v := range samples {
		sum += v
	}
	if got, want := snap.Mean(), float64(sum)/float64(len(samples)); math.Abs(got-want) > 1e-6*want+1e-9 {
		t.Errorf("%s: mean %f, want %f", name, got, want)
	}
}

// TestQuantileDifferential drives the histogram against the exact
// oracle across adversarial distributions.
func TestQuantileDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))

	single := []int64{123456}
	constant := make([]int64, 1000)
	for i := range constant {
		constant[i] = 777
	}
	uniform := make([]int64, 20000)
	for i := range uniform {
		uniform[i] = rng.Int63n(5_000_000)
	}
	// Bimodal: a fast mode around 5us and a slow mode around 80ms.
	bimodal := make([]int64, 20000)
	for i := range bimodal {
		if rng.Intn(100) < 90 {
			bimodal[i] = 4000 + rng.Int63n(2000)
		} else {
			bimodal[i] = 70_000_000 + rng.Int63n(20_000_000)
		}
	}
	// Heavy tail: Pareto-ish, alpha ~1.2, spanning 6+ decades.
	heavy := make([]int64, 20000)
	for i := range heavy {
		u := rng.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		heavy[i] = int64(1000 * math.Pow(u, -1/1.2))
	}
	// Tiny values exercise the exact sub-32 buckets.
	tiny := make([]int64, 500)
	for i := range tiny {
		tiny[i] = rng.Int63n(40)
	}

	for name, samples := range map[string][]int64{
		"single": single, "constant": constant, "uniform": uniform,
		"bimodal": bimodal, "heavy-tail": heavy, "tiny": tiny,
	} {
		checkAgainstOracle(t, name, samples)
	}
}

func TestRecordEdgeCases(t *testing.T) {
	h := New()
	h.Record(-5) // clamps to 0
	h.Record(0)
	h.Record(maxValue)
	h.Record(maxValue + 100) // clamps into the top bucket
	snap := h.Snapshot()
	if snap.Count() != 4 {
		t.Fatalf("count %d, want 4", snap.Count())
	}
	if q := snap.Quantile(0); q != 0 {
		t.Errorf("q0 = %d, want 0", q)
	}
	if q := snap.Quantile(1); q != maxValue+100 {
		// Quantile clamps to the exact observed max.
		t.Errorf("q1 = %d, want %d", q, maxValue+100)
	}
	var empty Snapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 || empty.Max() != 0 {
		t.Error("empty snapshot must read as all zeros")
	}
}

// TestBucketMapping pins the bucket geometry: every value maps into a
// bucket whose bounds contain it, and bucket widths respect the 1/32
// relative-error contract.
func TestBucketMapping(t *testing.T) {
	values := []int64{0, 1, 31, 32, 33, 63, 64, 127, 128, 1000, 1 << 20, 1<<40 + 12345, maxValue}
	for _, v := range values {
		i := bucketOf(v)
		hi := bucketHigh(i)
		if v > hi {
			t.Errorf("value %d maps to bucket %d with high %d < value", v, i, hi)
		}
		if i+1 < nBuckets {
			if lowNext := bucketHigh(i + 1); lowNext <= hi {
				t.Errorf("bucket %d high %d not below bucket %d high %d", i, hi, i+1, lowNext)
			}
		}
		if slack := hi - v; v >= 32 && slack > v/16 {
			t.Errorf("value %d: bucket slack %d exceeds v/16", v, slack)
		}
	}
	if got := bucketOf(maxValue); got != nBuckets-1 {
		t.Errorf("maxValue bucket %d, want last (%d)", got, nBuckets-1)
	}
}

// TestMergeAssociativity: merging per-part snapshots — in any grouping
// and order — equals recording everything into one histogram.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parts := make([][]int64, 3)
	whole := New()
	for p := range parts {
		n := 1000 + rng.Intn(2000)
		parts[p] = make([]int64, n)
		for i := range parts[p] {
			v := rng.Int63n(10_000_000)
			parts[p][i] = v
			whole.Record(v)
		}
	}
	snaps := make([]Snapshot, 3)
	for p, vs := range parts {
		h := New()
		for _, v := range vs {
			h.Record(v)
		}
		snaps[p] = h.Snapshot()
	}
	merge := func(order ...int) Snapshot {
		var acc Snapshot
		for _, i := range order {
			acc.Merge(snaps[i])
		}
		return acc
	}
	left := merge(0, 1, 2)
	right := merge(2, 1, 0)
	mid := merge(1, 0, 2)
	want := whole.Snapshot()
	for name, got := range map[string]Snapshot{"left": left, "right": right, "mid": mid} {
		if got.Count() != want.Count() || got.Max() != want.Max() || got.sum != want.sum {
			t.Fatalf("%s merge: count/max/sum diverge from single-histogram recording", name)
		}
		for i := range want.counts {
			if got.counts[i] != want.counts[i] {
				t.Fatalf("%s merge: bucket %d = %d, want %d", name, i, got.counts[i], want.counts[i])
			}
		}
		for _, q := range []float64{0.5, 0.99, 0.999} {
			if got.Quantile(q) != want.Quantile(q) {
				t.Fatalf("%s merge: q%.3f = %d, want %d", name, q, got.Quantile(q), want.Quantile(q))
			}
		}
	}
	// Merging an empty snapshot is the identity.
	before := left.Quantile(0.99)
	left.Merge(Snapshot{})
	if left.Quantile(0.99) != before {
		t.Error("merging an empty snapshot changed the histogram")
	}
}

// TestConcurrentRecord hammers one histogram from many goroutines and
// checks nothing is lost (run under -race in CI).
func TestConcurrentRecord(t *testing.T) {
	h := New()
	const goroutines = 8
	const perG = 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Record(rng.Int63n(1_000_000))
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if got, want := snap.Count(), uint64(goroutines*perG); got != want {
		t.Fatalf("count %d, want %d (lost updates)", got, want)
	}
	var sum uint64
	for _, c := range snap.counts {
		sum += c
	}
	if sum != snap.Count() {
		t.Fatalf("bucket sum %d != count %d", sum, snap.Count())
	}
	if snap.Quantile(1) != snap.Max() {
		t.Errorf("q1 %d != max %d", snap.Quantile(1), snap.Max())
	}
}

// TestRecordAllocFree pins the zero-allocation contract of the hot
// path.
func TestRecordAllocFree(t *testing.T) {
	h := New()
	if allocs := testing.AllocsPerRun(1000, func() { h.Record(12345) }); allocs != 0 {
		t.Errorf("Record allocates %.1f objects/op, want 0", allocs)
	}
}

func TestReset(t *testing.T) {
	h := New()
	for i := int64(0); i < 100; i++ {
		h.Record(i * 1000)
	}
	h.Reset()
	if snap := h.Snapshot(); snap.Count() != 0 || snap.Max() != 0 || snap.Quantile(0.99) != 0 {
		t.Error("reset histogram must read empty")
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 37 % 5_000_000)
	}
}

func BenchmarkRecordParallel(b *testing.B) {
	h := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			v = (v*2862933555777941757 + 3037000493) % 5_000_000
			if v < 0 {
				v = -v
			}
			h.Record(v)
		}
	})
}
