// Package ident interns job names into dense uint32 IDs so the hot
// paths of the scheduler stack can run on integer keys — slice indexing
// and integer map hashing — instead of hashing and comparing strings at
// every layer.
//
// Each scheduler owns its own Table (a per-scheduler ID space): names
// are interned once where a request enters the scheduler and released
// when the job leaves, so a table only ever holds the active names.
// Released IDs go on a free list and are reissued to later names, which
// keeps the space dense — an ID-indexed slice never grows past the
// scheduler's high-water job count (times the stripe count).
//
// Tables are safe for concurrent use. The name→ID direction is
// lock-sharded: names hash onto independently locked stripes, so
// concurrent interns of different names do not serialize (the sharded
// front-end interns from many dispatching goroutines at once). Each
// stripe owns its slots outright — the stripe index is encoded in the
// ID's low bits — so the ID→name direction needs no second lock scheme.
// Single-threaded layers use a 1-stripe table and pay one uncontended
// lock per boundary crossing.
package ident

import "sync"

// ID is a dense interned name identifier. The zero ID is None: it is
// never issued, so ID-valued fields and map entries can use 0 for
// "no job", mirroring the empty string in a string-keyed design.
type ID uint32

// None is the zero ID, held by no name.
const None ID = 0

// MaxStripes bounds NewSharded's stripe count.
const MaxStripes = 256

// Table is a two-way name⇄ID registry with free-list ID reuse.
type Table struct {
	mask    uint32 // stripe count - 1 (stripe count is a power of two)
	bits    uint32 // log2(stripe count)
	stripes []stripe
}

type stripe struct {
	mu     sync.RWMutex
	byName map[string]uint32 // name -> slot
	names  []string          // slot -> name; "" marks a free slot
	free   []uint32          // recycled slots
}

// New returns a single-stripe table: fully dense IDs, one uncontended
// lock per operation. The right choice for single-threaded schedulers.
func New() *Table { return NewSharded(1) }

// NewSharded returns a table with the given number of lock stripes,
// rounded up to a power of two and clamped to [1, MaxStripes]. IDs stay
// quasi-dense: a table holding n names issues IDs below ~n*stripes.
func NewSharded(stripes int) *Table {
	n := 1
	for n < stripes && n < MaxStripes {
		n *= 2
	}
	bits := uint32(0)
	for m := n - 1; m != 0; m >>= 1 {
		bits++
	}
	t := &Table{mask: uint32(n - 1), bits: bits, stripes: make([]stripe, n)}
	for i := range t.stripes {
		t.stripes[i].byName = make(map[string]uint32)
	}
	return t
}

// id composes slot and stripe into the public ID (1-based so 0 = None).
func (t *Table) id(slot uint32, stripeIdx uint32) ID {
	return ID((slot<<t.bits | stripeIdx) + 1)
}

// split decomposes an ID back into (slot, stripe).
func (t *Table) split(id ID) (slot, stripeIdx uint32) {
	v := uint32(id) - 1
	return v >> t.bits, v & t.mask
}

// stripeFor hashes the name onto its stripe (FNV-1a; inlined so the
// lookup allocates nothing).
func (t *Table) stripeFor(name string) (*stripe, uint32) {
	if t.mask == 0 {
		return &t.stripes[0], 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &t.stripes[h&t.mask], h & t.mask
}

// Intern returns the ID bound to name, issuing one (free list first)
// when the name is new.
//
//reallocvet:hotpath
func (t *Table) Intern(name string) ID {
	st, si := t.stripeFor(name)
	st.mu.RLock()
	slot, ok := st.byName[name]
	st.mu.RUnlock()
	if ok {
		return t.id(slot, si)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if slot, ok := st.byName[name]; ok { // lost the race to another intern
		return t.id(slot, si)
	}
	if n := len(st.free); n > 0 {
		slot = st.free[n-1]
		st.free = st.free[:n-1]
		st.names[slot] = name
	} else {
		slot = uint32(len(st.names))
		st.names = append(st.names, name) //reallocvet:allow hotpath (amortized growth: steady state reuses free-list slots)
	}
	st.byName[name] = slot
	return t.id(slot, si)
}

// Get returns the ID bound to name without interning.
//
//reallocvet:hotpath
func (t *Table) Get(name string) (ID, bool) {
	st, si := t.stripeFor(name)
	st.mu.RLock()
	slot, ok := st.byName[name]
	st.mu.RUnlock()
	if !ok {
		return None, false
	}
	return t.id(slot, si), true
}

// Name returns the name bound to id, or "" when id is None or unbound.
//
//reallocvet:hotpath
func (t *Table) Name(id ID) string {
	if id == None {
		return ""
	}
	slot, si := t.split(id)
	st := &t.stripes[si]
	st.mu.RLock()
	defer st.mu.RUnlock()
	if slot >= uint32(len(st.names)) {
		return ""
	}
	return st.names[slot]
}

// Release frees the binding of id and recycles it. Releasing None or an
// unbound ID panics: the schedulers release exactly once per intern, so
// a double release is a bookkeeping bug worth crashing on.
//
//reallocvet:hotpath
func (t *Table) Release(id ID) {
	if id == None {
		panic("ident: release of None")
	}
	slot, si := t.split(id)
	st := &t.stripes[si]
	st.mu.Lock()
	defer st.mu.Unlock()
	if slot >= uint32(len(st.names)) || st.names[slot] == "" {
		panic("ident: release of unbound ID")
	}
	delete(st.byName, st.names[slot])
	st.names[slot] = ""             // drop the string reference
	st.free = append(st.free, slot) //reallocvet:allow hotpath (amortized growth: the free list reaches its high-water mark and stops growing)
}

// Len returns the number of bound names.
func (t *Table) Len() int {
	n := 0
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.RLock()
		n += len(st.byName)
		st.mu.RUnlock()
	}
	return n
}

// Cap returns an exclusive upper bound on every ID the table has ever
// issued — the size an ID-indexed slice needs to cover them all.
func (t *Table) Cap() int {
	hi := 0
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.RLock()
		if n := len(st.names); n > 0 {
			if id := int(t.id(uint32(n-1), uint32(i))); id >= hi {
				hi = id + 1
			}
		}
		st.mu.RUnlock()
	}
	return hi
}

// Range calls fn for every bound (ID, name) until fn returns false. The
// iteration holds one stripe's read lock at a time, so fn must not call
// mutating table methods; the order is unspecified.
func (t *Table) Range(fn func(id ID, name string) bool) {
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.RLock()
		for slot, name := range st.names {
			if name == "" {
				continue
			}
			if !fn(t.id(uint32(slot), uint32(i)), name) {
				st.mu.RUnlock()
				return
			}
		}
		st.mu.RUnlock()
	}
}

// AppendNames appends every bound name to buf and returns it — the
// allocation-friendly way to snapshot the name set (callers typically
// sort it for deterministic iteration).
func (t *Table) AppendNames(buf []string) []string {
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.RLock()
		for _, name := range st.names {
			if name != "" {
				buf = append(buf, name)
			}
		}
		st.mu.RUnlock()
	}
	return buf
}

// Reset drops every binding but keeps the stripes' capacity, returning
// the table to its initial state (IDs are reissued from the bottom).
// For recycling a scheduler's ID space; callers must hold no live IDs.
func (t *Table) Reset() {
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		clear(st.byName)
		clear(st.names) // zero the string refs
		st.names = st.names[:0]
		st.free = st.free[:0]
		st.mu.Unlock()
	}
}
