package ident

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternGetNameRoundTrip(t *testing.T) {
	tab := New()
	a := tab.Intern("alpha")
	b := tab.Intern("beta")
	if a == None || b == None {
		t.Fatalf("issued None: a=%d b=%d", a, b)
	}
	if a == b {
		t.Fatalf("distinct names share ID %d", a)
	}
	if got := tab.Intern("alpha"); got != a {
		t.Fatalf("re-intern of alpha: got %d, want %d", got, a)
	}
	if got, ok := tab.Get("alpha"); !ok || got != a {
		t.Fatalf("Get(alpha) = %d, %v; want %d, true", got, ok, a)
	}
	if _, ok := tab.Get("gamma"); ok {
		t.Fatal("Get of unknown name succeeded")
	}
	if got := tab.Name(a); got != "alpha" {
		t.Fatalf("Name(%d) = %q, want alpha", a, got)
	}
	if got := tab.Name(None); got != "" {
		t.Fatalf("Name(None) = %q", got)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

// TestIDReuseAfterDelete pins the free-list behavior: a released ID is
// reissued (densely) to a later intern, and the old binding is gone.
func TestIDReuseAfterDelete(t *testing.T) {
	tab := New()
	a := tab.Intern("a")
	b := tab.Intern("b")
	c := tab.Intern("c")
	tab.Release(b)
	if got := tab.Name(b); got != "" {
		t.Fatalf("released ID still names %q", got)
	}
	if _, ok := tab.Get("b"); ok {
		t.Fatal("released name still resolves")
	}
	d := tab.Intern("d")
	if d != b {
		t.Fatalf("freed ID not reused: got %d, want %d", d, b)
	}
	if got := tab.Name(d); got != "d" {
		t.Fatalf("Name(%d) = %q, want d", d, got)
	}
	// The space stays dense: with 3 live names, Cap covers exactly the
	// three issued IDs.
	if cap := tab.Cap(); cap != int(c)+1 {
		t.Fatalf("Cap = %d, want %d", cap, int(c)+1)
	}
	_ = a
}

func TestReleasePanics(t *testing.T) {
	tab := New()
	id := tab.Intern("x")
	tab.Release(id)
	for name, id := range map[string]ID{"double": id, "none": None, "unissued": 999} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Release(%s) did not panic", name)
				}
			}()
			tab.Release(id)
		}()
	}
}

// TestManyLiveNames pushes past 65k live names to prove the ID space is
// not 16-bit anywhere, then releases and re-interns to exercise a big
// free list.
func TestManyLiveNames(t *testing.T) {
	const n = 70_000
	tab := NewSharded(8)
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = tab.Intern(fmt.Sprintf("job-%d", i))
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	seen := make(map[ID]int, n)
	for i, id := range ids {
		if prev, dup := seen[id]; dup {
			t.Fatalf("jobs %d and %d share ID %d", prev, i, id)
		}
		seen[id] = i
	}
	for i := 0; i < n; i += 2 {
		tab.Release(ids[i])
	}
	if tab.Len() != n/2 {
		t.Fatalf("Len after releases = %d, want %d", tab.Len(), n/2)
	}
	// Reissue the released names: every stripe reuses its freed slots, so
	// the ID space does not grow at all.
	capBefore := tab.Cap()
	for i := 0; i < n; i += 2 {
		tab.Intern(fmt.Sprintf("job-%d", i))
	}
	if got := tab.Cap(); got != capBefore {
		t.Fatalf("Cap grew from %d to %d despite a full free list", capBefore, got)
	}
	for i := 1; i < n; i += 2 {
		if got := tab.Name(ids[i]); got != fmt.Sprintf("job-%d", i) {
			t.Fatalf("survivor %d renamed to %q", i, got)
		}
	}
}

// TestConcurrentInternRelease hammers one sharded table from many
// goroutines under -race: per-goroutine disjoint name sets plus one
// contended shared name.
func TestConcurrentInternRelease(t *testing.T) {
	tab := NewSharded(16)
	const workers = 8
	const rounds = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				name := fmt.Sprintf("w%d-job-%d", w, r%17)
				id := tab.Intern(name)
				if got := tab.Name(id); got != name {
					panic(fmt.Sprintf("Name(%d) = %q, want %q", id, got, name))
				}
				if id2, ok := tab.Get(name); !ok || id2 != id {
					panic("Get disagrees with Intern")
				}
				tab.Release(id)
				// Contended name: intern only (a release would race other
				// workers' holds — the schedulers never share ownership).
				tab.Intern("shared")
				tab.Range(func(_ ID, n string) bool { return n != "" })
			}
		}(w)
	}
	wg.Wait()
	if got := tab.Len(); got != 1 {
		t.Fatalf("Len after churn = %d, want 1 (only the shared name)", got)
	}
}

// TestStripeEncoding exercises every stripe count.
func TestStripeEncoding(t *testing.T) {
	for _, stripes := range []int{1, 2, 3, 4, 16, 200, MaxStripes, MaxStripes + 50} {
		tab := NewSharded(stripes)
		ids := make(map[ID]string)
		for i := 0; i < 500; i++ {
			name := fmt.Sprintf("s%d-n%d", stripes, i)
			id := tab.Intern(name)
			if prev, dup := ids[id]; dup {
				t.Fatalf("stripes=%d: %q and %q share ID %d", stripes, prev, name, id)
			}
			ids[id] = name
		}
		for id, name := range ids {
			if got := tab.Name(id); got != name {
				t.Fatalf("stripes=%d: Name(%d) = %q, want %q", stripes, id, got, name)
			}
		}
		got := 0
		tab.Range(func(id ID, name string) bool {
			if ids[id] != name {
				t.Fatalf("stripes=%d: Range yields (%d, %q), want %q", stripes, id, name, ids[id])
			}
			got++
			return true
		})
		if got != len(ids) {
			t.Fatalf("stripes=%d: Range yielded %d names, want %d", stripes, got, len(ids))
		}
	}
}

func TestAppendNames(t *testing.T) {
	tab := NewSharded(4)
	want := map[string]bool{}
	for i := 0; i < 100; i++ {
		n := fmt.Sprintf("n-%d", i)
		tab.Intern(n)
		want[n] = true
	}
	buf := make([]string, 0, 100)
	buf = tab.AppendNames(buf[:0])
	if len(buf) != len(want) {
		t.Fatalf("AppendNames returned %d names, want %d", len(buf), len(want))
	}
	for _, n := range buf {
		if !want[n] {
			t.Fatalf("unexpected name %q", n)
		}
	}
}

func BenchmarkInternReleaseChurn(b *testing.B) {
	tab := New()
	names := make([]string, 1024)
	for i := range names {
		names[i] = fmt.Sprintf("bench-job-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := tab.Intern(names[i%len(names)])
		tab.Release(id)
	}
}

func BenchmarkGetHit(b *testing.B) {
	tab := NewSharded(16)
	names := make([]string, 1024)
	for i := range names {
		names[i] = fmt.Sprintf("bench-job-%d", i)
		tab.Intern(names[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tab.Get(names[i%len(names)]); !ok {
			b.Fatal("miss")
		}
	}
}
