// Package jobs defines the job, window, and request model shared by every
// scheduler in this repository.
//
// A job is a unit-length task with an integer window [Arrival, Deadline):
// it must be assigned exactly one timeslot t with Arrival <= t < Deadline.
// The window's span is Deadline - Arrival, i.e. the number of candidate
// timeslots, matching the paper's "the window W comprises |W| timeslots".
package jobs

import (
	"fmt"

	"repro/internal/mathx"
)

// Time is an integer timeslot coordinate.
type Time = int64

// Window is a half-open interval [Start, End) of timeslots.
type Window struct {
	Start Time
	End   Time
}

// NewWindow builds the window [start, end). It returns an error if the
// window is empty or exceeds the supported span.
func NewWindow(start, end Time) (Window, error) {
	w := Window{Start: start, End: end}
	if err := w.Validate(); err != nil {
		return Window{}, err
	}
	return w, nil
}

// Validate reports whether the window is well-formed.
func (w Window) Validate() error {
	if w.End <= w.Start {
		return fmt.Errorf("jobs: empty window [%d, %d)", w.Start, w.End)
	}
	if w.Span() > mathx.MaxSpan {
		return fmt.Errorf("jobs: window [%d, %d) span %d exceeds max %d",
			w.Start, w.End, w.Span(), mathx.MaxSpan)
	}
	return nil
}

// Span returns the number of timeslots in the window.
func (w Window) Span() int64 { return w.End - w.Start }

// Contains reports whether timeslot t lies inside the window.
func (w Window) Contains(t Time) bool { return w.Start <= t && t < w.End }

// ContainsWindow reports whether o is fully contained in w.
func (w Window) ContainsWindow(o Window) bool {
	return w.Start <= o.Start && o.End <= w.End
}

// Overlaps reports whether the two windows share at least one timeslot.
func (w Window) Overlaps(o Window) bool {
	return w.Start < o.End && o.Start < w.End
}

// Equal reports whether the two windows are identical.
func (w Window) Equal(o Window) bool { return w.Start == o.Start && w.End == o.End }

// IsAligned reports whether the window is aligned in the paper's sense:
// its span is a power of two and its start is a multiple of the span.
func (w Window) IsAligned() bool {
	s := w.Span()
	return mathx.IsPow2(s) && w.Start%s == 0 && w.Start >= 0
}

// String renders the window as [start,end).
func (w Window) String() string { return fmt.Sprintf("[%d,%d)", w.Start, w.End) }

// Job is a unit-length job with a name and a window.
type Job struct {
	Name   string
	Window Window
}

// Validate reports whether the job is well-formed.
func (j Job) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("jobs: job with empty name")
	}
	return j.Window.Validate()
}

// RequestKind distinguishes the two request types of the paper's model.
type RequestKind uint8

const (
	// Insert corresponds to <InsertJob, name, arrival, deadline>.
	Insert RequestKind = iota
	// Delete corresponds to <DeleteJob, name>.
	Delete
)

func (k RequestKind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("RequestKind(%d)", uint8(k))
	}
}

// Request is one element of an on-line execution.
type Request struct {
	Kind   RequestKind
	Name   string
	Window Window // meaningful only for Insert
}

// InsertReq builds an insert request for the window [start, end).
func InsertReq(name string, start, end Time) Request {
	return Request{Kind: Insert, Name: name, Window: Window{Start: start, End: end}}
}

// DeleteReq builds a delete request.
func DeleteReq(name string) Request {
	return Request{Kind: Delete, Name: name}
}

// String renders the request compactly.
func (r Request) String() string {
	if r.Kind == Insert {
		return fmt.Sprintf("insert %s %s", r.Name, r.Window)
	}
	return fmt.Sprintf("delete %s", r.Name)
}

// Validate reports whether the request is well-formed.
func (r Request) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("jobs: request with empty name")
	}
	if r.Kind == Insert {
		return r.Window.Validate()
	}
	if r.Kind != Delete {
		return fmt.Errorf("jobs: unknown request kind %d", r.Kind)
	}
	return nil
}

// Placement records where a job is scheduled: a machine index and a slot.
type Placement struct {
	Machine int
	Slot    Time
}

// Assignment is a full snapshot of a schedule: job name -> placement.
type Assignment map[string]Placement

// Clone returns a deep copy of the assignment.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// Diff returns the number of jobs present in both assignments whose
// placement differs (moved), and the number of those whose machine
// differs (migrated). Jobs present in only one assignment are ignored.
func (a Assignment) Diff(b Assignment) (moved, migrated int) {
	for name, pa := range a {
		pb, ok := b[name]
		if !ok {
			continue
		}
		if pa != pb {
			moved++
		}
		if pa.Machine != pb.Machine {
			migrated++
		}
	}
	return moved, migrated
}
