package jobs

import (
	"testing"
	"testing/quick"
)

func TestNewWindow(t *testing.T) {
	w, err := NewWindow(3, 7)
	if err != nil {
		t.Fatalf("NewWindow(3,7): %v", err)
	}
	if w.Span() != 4 {
		t.Errorf("span = %d, want 4", w.Span())
	}
	if _, err := NewWindow(7, 7); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := NewWindow(8, 3); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Start: 4, End: 8}
	for _, c := range []struct {
		t    Time
		want bool
	}{{3, false}, {4, true}, {7, true}, {8, false}} {
		if got := w.Contains(c.t); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestWindowContainsWindow(t *testing.T) {
	w := Window{0, 8}
	cases := []struct {
		o    Window
		want bool
	}{
		{Window{0, 8}, true}, {Window{2, 6}, true}, {Window{0, 9}, false},
		{Window{-1, 4}, false}, {Window{7, 8}, true},
	}
	for _, c := range cases {
		if got := w.ContainsWindow(c.o); got != c.want {
			t.Errorf("ContainsWindow(%v) = %v, want %v", c.o, got, c.want)
		}
	}
}

func TestWindowOverlaps(t *testing.T) {
	w := Window{4, 8}
	cases := []struct {
		o    Window
		want bool
	}{
		{Window{0, 4}, false}, {Window{0, 5}, true}, {Window{8, 12}, false},
		{Window{7, 12}, true}, {Window{5, 6}, true},
	}
	for _, c := range cases {
		if got := w.Overlaps(c.o); got != c.want {
			t.Errorf("Overlaps(%v) = %v, want %v", c.o, got, c.want)
		}
	}
}

func TestOverlapsSymmetricProperty(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		w1 := Window{int64(a), int64(a) + int64(b%64) + 1}
		w2 := Window{int64(c), int64(c) + int64(d%64) + 1}
		return w1.Overlaps(w2) == w2.Overlaps(w1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsAligned(t *testing.T) {
	cases := []struct {
		w    Window
		want bool
	}{
		{Window{0, 1}, true},   // span 1 at 0
		{Window{5, 6}, true},   // span 1 anywhere
		{Window{0, 2}, true},   // span 2 at 0
		{Window{2, 4}, true},   // span 2 at multiple of 2
		{Window{1, 3}, false},  // span 2 misaligned
		{Window{8, 16}, true},  // span 8 at 8
		{Window{4, 12}, false}, // span 8 misaligned
		{Window{0, 3}, false},  // span 3 not pow2
		{Window{-4, -2}, false},
	}
	for _, c := range cases {
		if got := c.w.IsAligned(); got != c.want {
			t.Errorf("IsAligned(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestJobValidate(t *testing.T) {
	if err := (Job{Name: "a", Window: Window{0, 4}}).Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	if err := (Job{Name: "", Window: Window{0, 4}}).Validate(); err == nil {
		t.Error("nameless job accepted")
	}
	if err := (Job{Name: "a", Window: Window{4, 4}}).Validate(); err == nil {
		t.Error("empty-window job accepted")
	}
}

func TestRequestBuilders(t *testing.T) {
	r := InsertReq("x", 2, 6)
	if r.Kind != Insert || r.Name != "x" || r.Window.Span() != 4 {
		t.Errorf("InsertReq built %+v", r)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("valid insert rejected: %v", err)
	}
	d := DeleteReq("x")
	if d.Kind != Delete || d.Name != "x" {
		t.Errorf("DeleteReq built %+v", d)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("valid delete rejected: %v", err)
	}
	if err := (Request{Kind: Insert, Name: "", Window: Window{0, 1}}).Validate(); err == nil {
		t.Error("nameless request accepted")
	}
	if err := (Request{Kind: RequestKind(9), Name: "z"}).Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRequestStrings(t *testing.T) {
	if got := InsertReq("j", 0, 4).String(); got != "insert j [0,4)" {
		t.Errorf("String() = %q", got)
	}
	if got := DeleteReq("j").String(); got != "delete j" {
		t.Errorf("String() = %q", got)
	}
	if Insert.String() != "insert" || Delete.String() != "delete" {
		t.Error("kind strings broken")
	}
	if RequestKind(7).String() == "" {
		t.Error("unknown kind string empty")
	}
}

func TestAssignmentCloneAndDiff(t *testing.T) {
	a := Assignment{
		"a": {Machine: 0, Slot: 1},
		"b": {Machine: 1, Slot: 2},
		"c": {Machine: 0, Slot: 5},
	}
	b := a.Clone()
	if len(b) != 3 {
		t.Fatal("clone size wrong")
	}
	b["a"] = Placement{Machine: 0, Slot: 9} // moved, same machine
	b["b"] = Placement{Machine: 2, Slot: 2} // migrated
	delete(b, "c")
	b["d"] = Placement{Machine: 3, Slot: 3} // new job, ignored

	moved, migrated := a.Diff(b)
	if moved != 2 || migrated != 1 {
		t.Errorf("Diff = (%d,%d), want (2,1)", moved, migrated)
	}
	// Mutating clone must not affect original.
	if a["a"] != (Placement{Machine: 0, Slot: 1}) {
		t.Error("clone aliases original")
	}
}

func TestDiffEmpty(t *testing.T) {
	moved, migrated := Assignment{}.Diff(Assignment{})
	if moved != 0 || migrated != 0 {
		t.Error("empty diff nonzero")
	}
}
