package lowerbound_test

import (
	"fmt"

	"repro/internal/edf"
	"repro/internal/lowerbound"
)

// Lemma 12's toggle chain forces quadratic total cost on any scheduler.
func ExampleLemma12Sequence() {
	seq := lowerbound.Lemma12Sequence(32, 16)
	rec, err := lowerbound.MeasureDiffCosts(edf.New(1, edf.TieByArrival), seq)
	if err != nil {
		panic(err)
	}
	total := rec.Summary().TotalReallocations
	fmt.Printf("%d requests forced >= eta*cycles = %d moves: %v\n",
		len(seq), 32*16, total >= 32*16)
	// Output:
	// 96 requests forced >= eta*cycles = 512 moves: true
}
