// Package lowerbound implements the paper's adversarial constructions:
//
//   - Lemma 11: on m > 1 machines, any deterministic scheduler pays
//     Ω(s) migrations over s requests (subsequences of 6m requests force
//     m/2 migrations each). The adversary is adaptive: it inspects the
//     current assignment to decide which jobs to delete.
//   - Lemma 12: without underallocation, s requests can force Ω(s²)
//     total reallocations (a chain of span-2 windows toggled between its
//     two perfect matchings).
//   - The EDF brittleness cascade motivating Section 4: staggered
//     deadlines inside one huge window make EDF shift Θ(n) jobs per
//     urgent insert even though the instance is 16-underallocated.
//
// Costs are measured scheduler-agnostically by diffing assignments
// around each request, so the same sequences price any sched.Scheduler.
package lowerbound

import (
	"fmt"
	"sort"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// MeasureDiffCosts replays the request sequence, measuring each request's
// cost as the number of already-present jobs whose placement changed
// (plus one for a new job's initial placement), and the migration cost as
// the number whose machine changed. This prices schedulers that do not
// report costs themselves and cross-validates those that do.
func MeasureDiffCosts(s sched.Scheduler, reqs []jobs.Request) (*metrics.Recorder, error) {
	rec := metrics.NewRecorder()
	before := s.Assignment()
	for i, r := range reqs {
		if _, err := sched.Apply(s, r); err != nil {
			return rec, fmt.Errorf("request %d (%s): %w", i, r, err)
		}
		after := s.Assignment()
		moved, migrated := before.Diff(after)
		if r.Kind == jobs.Insert {
			moved++ // initial placement of the new job
		}
		rec.Record(metrics.Cost{Reallocations: moved, Migrations: migrated}, s.Active())
		before = after
	}
	return rec, nil
}

// Lemma11Result reports the outcome of the adaptive migration adversary.
type Lemma11Result struct {
	Rounds          int
	Requests        int
	TotalMigrations int
	// PaperLowerBound is s/12 where s is the number of requests issued.
	PaperLowerBound int
}

// RunLemma11 drives the scheduler through `rounds` of the Lemma 11
// adversary on its m machines (m must be even and >= 2):
//
//  1. insert 2m span-2 jobs with window [0, 2)
//  2. delete the m jobs currently scheduled on the first m/2 machines
//     (re-reading the assignment after every delete, since the scheduler
//     may rebalance)
//  3. insert m span-1 jobs with window [0, 1)
//  4. delete all remaining jobs
//
// Migrations are measured by assignment diff around every request.
func RunLemma11(s sched.Scheduler, rounds int) (Lemma11Result, error) {
	m := s.Machines()
	if m < 2 || m%2 != 0 {
		return Lemma11Result{}, fmt.Errorf("lowerbound: Lemma 11 needs an even machine count >= 2, got %d", m)
	}
	res := Lemma11Result{Rounds: rounds}
	id := 0
	apply := func(r jobs.Request) error {
		before := s.Assignment()
		if _, err := sched.Apply(s, r); err != nil {
			return fmt.Errorf("lemma11 request %d (%s): %w", res.Requests, r, err)
		}
		_, migrated := before.Diff(s.Assignment())
		res.TotalMigrations += migrated
		res.Requests++
		return nil
	}

	for round := 0; round < rounds; round++ {
		// Step 1: 2m span-2 jobs.
		var span2 []string
		for i := 0; i < 2*m; i++ {
			name := fmt.Sprintf("L11r%dw%d", round, id)
			id++
			if err := apply(jobs.InsertReq(name, 0, 2)); err != nil {
				return res, err
			}
			span2 = append(span2, name)
		}
		// Step 2: delete m jobs from the lowest-indexed loaded machines.
		for k := 0; k < m; k++ {
			victim, err := jobOnLowestMachine(s, span2)
			if err != nil {
				return res, err
			}
			if err := apply(jobs.DeleteReq(victim)); err != nil {
				return res, err
			}
			span2 = remove(span2, victim)
		}
		// Step 3: m span-1 jobs.
		var span1 []string
		for i := 0; i < m; i++ {
			name := fmt.Sprintf("L11r%du%d", round, id)
			id++
			if err := apply(jobs.InsertReq(name, 0, 1)); err != nil {
				return res, err
			}
			span1 = append(span1, name)
		}
		// Step 4: delete everything.
		for _, name := range append(append([]string{}, span2...), span1...) {
			if err := apply(jobs.DeleteReq(name)); err != nil {
				return res, err
			}
		}
		span2, span1 = nil, nil
	}
	res.PaperLowerBound = res.Requests / 12
	return res, nil
}

// jobOnLowestMachine returns the candidate job assigned to the
// lowest-indexed machine (ties broken by name).
func jobOnLowestMachine(s sched.Scheduler, candidates []string) (string, error) {
	asn := s.Assignment()
	best, bestMachine := "", -1
	sorted := append([]string{}, candidates...)
	sort.Strings(sorted)
	for _, name := range sorted {
		p, ok := asn[name]
		if !ok {
			return "", fmt.Errorf("lowerbound: candidate %q missing from assignment", name)
		}
		if bestMachine == -1 || p.Machine < bestMachine {
			best, bestMachine = name, p.Machine
		}
	}
	if best == "" {
		return "", fmt.Errorf("lowerbound: no candidates left")
	}
	return best, nil
}

func remove(list []string, name string) []string {
	for i, v := range list {
		if v == name {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// Lemma12Sequence builds the quadratic-reallocation adversary: eta chain
// jobs where job j has window [j, j+2), followed by `cycles` toggles.
// Each toggle inserts a job with window [0, 1) (forcing the whole chain
// right), deletes it, inserts a job with window [eta, eta+1) (forcing
// the chain left), and deletes it. The chain is fully subscribed — the
// antithesis of underallocation — so any scheduler moves Θ(eta) jobs per
// toggle, Θ(s²) in total (Lemma 12).
func Lemma12Sequence(eta, cycles int) []jobs.Request {
	if eta < 1 {
		panic(fmt.Sprintf("lowerbound: eta %d < 1", eta))
	}
	var reqs []jobs.Request
	for j := 0; j < eta; j++ {
		reqs = append(reqs, jobs.InsertReq(fmt.Sprintf("chain%05d", j), int64(j), int64(j)+2))
	}
	for c := 0; c < cycles; c++ {
		left := fmt.Sprintf("left%05d", c)
		right := fmt.Sprintf("right%05d", c)
		reqs = append(reqs,
			jobs.InsertReq(left, 0, 1),
			jobs.DeleteReq(left),
			jobs.InsertReq(right, int64(eta), int64(eta)+1),
			jobs.DeleteReq(right),
		)
	}
	return reqs
}

// FrontInsertSequence builds the EDF brittleness workload: n jobs with
// windows [0, 16n + i) for i = 0..n-1 (staggered deadlines, all sharing
// the huge slack window), then `probes` cycles of inserting and deleting
// an urgent job with window [0, 1). The instance stays 16-underallocated
// throughout, yet EDF shifts Θ(n) jobs on every probe; the reservation
// scheduler pays O(1).
func FrontInsertSequence(n, probes int) []jobs.Request {
	if n < 1 {
		panic(fmt.Sprintf("lowerbound: n %d < 1", n))
	}
	var reqs []jobs.Request
	base := int64(16 * n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, jobs.InsertReq(fmt.Sprintf("stag%05d", i), 0, base+int64(i)))
	}
	for p := 0; p < probes; p++ {
		name := fmt.Sprintf("urgent%04d", p)
		reqs = append(reqs, jobs.InsertReq(name, 0, 1), jobs.DeleteReq(name))
	}
	return reqs
}
