package lowerbound

import (
	"strings"
	"testing"

	"repro/internal/alignsched"
	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/jobs"
	"repro/internal/multi"
	"repro/internal/sched"
)

func coreStack(m int) sched.Scheduler {
	return alignsched.New(multi.New(m, func() sched.Scheduler { return core.New() }))
}

func TestLemma12SequenceShape(t *testing.T) {
	reqs := Lemma12Sequence(10, 3)
	if len(reqs) != 10+4*3 {
		t.Fatalf("len = %d", len(reqs))
	}
	// First eta are chain inserts with span 2.
	for i := 0; i < 10; i++ {
		if reqs[i].Kind != jobs.Insert || reqs[i].Window.Span() != 2 {
			t.Errorf("req %d = %v", i, reqs[i])
		}
	}
	// Toggles alternate insert/delete.
	for i := 10; i < len(reqs); i += 2 {
		if reqs[i].Kind != jobs.Insert || reqs[i+1].Kind != jobs.Delete ||
			reqs[i].Name != reqs[i+1].Name {
			t.Errorf("toggle at %d broken: %v %v", i, reqs[i], reqs[i+1])
		}
	}
}

// Lemma 12 measured: on EDF (or any scheduler) the toggle phase costs
// Θ(eta) per toggle, Θ(eta²) total.
func TestLemma12QuadraticOnEDF(t *testing.T) {
	const eta, cycles = 40, 20
	s := edf.New(1, edf.TieByArrival)
	rec, err := MeasureDiffCosts(s, Lemma12Sequence(eta, cycles))
	if err != nil {
		t.Fatal(err)
	}
	costs := rec.Costs()
	// Each "insert left" toggle (first of each cycle) must move >= eta jobs.
	toggleStart := eta
	for c := 0; c < cycles; c++ {
		insLeft := costs[toggleStart+4*c].Reallocations
		if insLeft < eta {
			t.Errorf("cycle %d: left toggle moved %d < eta=%d jobs", c, insLeft, eta)
		}
	}
	total := rec.Summary().TotalReallocations
	if total < eta*cycles {
		t.Errorf("total %d below quadratic envelope %d", total, eta*cycles)
	}
}

func TestFrontInsertSequenceShape(t *testing.T) {
	reqs := FrontInsertSequence(8, 2)
	if len(reqs) != 8+4 {
		t.Fatalf("len = %d", len(reqs))
	}
	for i := 0; i < 8; i++ {
		if reqs[i].Window.Span() != int64(16*8+i) {
			t.Errorf("stagger %d span = %d", i, reqs[i].Window.Span())
		}
	}
}

// The motivating contrast for Section 4: EDF pays Θ(n) per probe, the
// reservation stack pays O(1).
func TestEDFBrittleVsReservationRobust(t *testing.T) {
	const n, probes = 64, 8
	seq := FrontInsertSequence(n, probes)

	edfRec, err := MeasureDiffCosts(edf.New(1, edf.TieByArrival), seq)
	if err != nil {
		t.Fatal(err)
	}
	coreRec, err := MeasureDiffCosts(alignsched.New(core.New()), seq)
	if err != nil {
		t.Fatal(err)
	}
	// Probe inserts are at indices n, n+2, n+4, ...
	for p := 0; p < probes; p++ {
		e := edfRec.Costs()[n+2*p].Reallocations
		c := coreRec.Costs()[n+2*p].Reallocations
		if e < n/2 {
			t.Errorf("probe %d: EDF moved only %d jobs, expected ~%d", p, e, n)
		}
		if c > 8 {
			t.Errorf("probe %d: reservation scheduler moved %d jobs, expected O(1)", p, c)
		}
	}
}

func TestLemma11RejectsOddMachines(t *testing.T) {
	if _, err := RunLemma11(coreStack(3), 1); err == nil ||
		!strings.Contains(err.Error(), "even machine count") {
		t.Errorf("odd m accepted: %v", err)
	}
	if _, err := RunLemma11(coreStack(1), 1); err == nil {
		t.Error("m=1 accepted")
	}
}

// Lemma 11 measured on the full Theorem 1 stack: total migrations grow
// linearly in the number of requests and meet the paper's s/12 bound.
func TestLemma11LinearMigrations(t *testing.T) {
	for _, m := range []int{2, 4} {
		res, err := RunLemma11(coreStack(m), 6)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if res.Requests != 6*6*m {
			t.Errorf("m=%d: %d requests, want %d", m, res.Requests, 36*m)
		}
		if res.TotalMigrations < res.PaperLowerBound {
			t.Errorf("m=%d: %d migrations below paper bound %d",
				m, res.TotalMigrations, res.PaperLowerBound)
		}
		// Theorem 1's upper bound: at most one migration per request.
		if res.TotalMigrations > res.Requests {
			t.Errorf("m=%d: %d migrations exceed one per request", m, res.TotalMigrations)
		}
	}
}

// Lemma 11 on EDF too: the bound is algorithm-independent.
func TestLemma11OnEDF(t *testing.T) {
	res, err := RunLemma11(edf.New(2, edf.TieByArrival), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMigrations < res.PaperLowerBound {
		t.Errorf("%d migrations below paper bound %d", res.TotalMigrations, res.PaperLowerBound)
	}
}

func TestMeasureDiffCostsCountsInsertPlacement(t *testing.T) {
	s := edf.New(1, edf.TieByArrival)
	rec, err := MeasureDiffCosts(s, []jobs.Request{jobs.InsertReq("a", 0, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Costs()[0].Reallocations != 1 {
		t.Errorf("insert cost = %+v", rec.Costs()[0])
	}
}

func TestSequencePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"lemma12": func() { Lemma12Sequence(0, 1) },
		"front":   func() { FrontInsertSequence(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
