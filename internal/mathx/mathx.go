// Package mathx provides the small integer-math substrate used throughout
// the reallocation scheduler: powers of two, binary logarithms, iterated
// logarithms (log*), and tower functions.
//
// All routines operate on int64 time coordinates and spans. Spans handled
// by the schedulers are powers of two no larger than 2^62, which keeps
// every intermediate computation inside int64 range.
package mathx

import "fmt"

// MaxSpan is the largest window span any scheduler in this repository
// accepts. It is 2^62, comfortably inside int64 while still allowing the
// third tower level (L3 = 2^64 in the paper) to be treated as unbounded.
const MaxSpan = int64(1) << 62

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int64) bool {
	return v > 0 && v&(v-1) == 0
}

// CeilPow2 returns the smallest power of two >= v. It panics if v is not
// positive or the result would exceed MaxSpan.
func CeilPow2(v int64) int64 {
	if v <= 0 {
		panic(fmt.Sprintf("mathx: CeilPow2 of non-positive value %d", v))
	}
	p := int64(1)
	for p < v {
		if p > MaxSpan/2 {
			panic(fmt.Sprintf("mathx: CeilPow2 overflow for %d", v))
		}
		p <<= 1
	}
	return p
}

// FloorPow2 returns the largest power of two <= v. It panics if v is not
// positive.
func FloorPow2(v int64) int64 {
	if v <= 0 {
		panic(fmt.Sprintf("mathx: FloorPow2 of non-positive value %d", v))
	}
	p := int64(1)
	for p <= v/2 {
		p <<= 1
	}
	return p
}

// Log2Floor returns floor(log2(v)). It panics if v is not positive.
func Log2Floor(v int64) int {
	if v <= 0 {
		panic(fmt.Sprintf("mathx: Log2Floor of non-positive value %d", v))
	}
	lg := 0
	for v > 1 {
		v >>= 1
		lg++
	}
	return lg
}

// Log2Exact returns log2(v) for a power of two v, and panics otherwise.
func Log2Exact(v int64) int {
	if !IsPow2(v) {
		panic(fmt.Sprintf("mathx: Log2Exact of non-power-of-two %d", v))
	}
	return Log2Floor(v)
}

// Log2Ceil returns ceil(log2(v)). It panics if v is not positive.
func Log2Ceil(v int64) int {
	if v <= 0 {
		panic(fmt.Sprintf("mathx: Log2Ceil of non-positive value %d", v))
	}
	lg := Log2Floor(v)
	if int64(1)<<uint(lg) < v {
		lg++
	}
	return lg
}

// LogStar returns the iterated binary logarithm of v: the number of times
// ceil(log2) must be applied before the value drops to at most 1.
// LogStar(1) = 0, LogStar(2) = 1, LogStar(4) = 2, LogStar(16) = 3,
// LogStar(65536) = 4. Values <= 1 return 0.
func LogStar(v int64) int {
	n := 0
	for v > 1 {
		v = int64(Log2Ceil(v))
		n++
	}
	return n
}

// Tower returns 2^^h (a tower of h twos): Tower(0) = 1, Tower(1) = 2,
// Tower(2) = 4, Tower(3) = 16, Tower(4) = 65536. It panics for h > 5 or
// whenever the value would exceed MaxSpan.
func Tower(h int) int64 {
	v := int64(1)
	for i := 0; i < h; i++ {
		if v >= 62 {
			panic(fmt.Sprintf("mathx: Tower(%d) exceeds MaxSpan", h))
		}
		v = int64(1) << uint(v)
	}
	return v
}

// FloorDiv returns floor(a/b) for b > 0, correct for negative a.
func FloorDiv(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("mathx: FloorDiv by non-positive divisor %d", b))
	}
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// CeilDiv returns ceil(a/b) for b > 0, correct for negative a.
func CeilDiv(a, b int64) int64 {
	return -FloorDiv(-a, b)
}

// AlignDown returns the largest multiple of align that is <= t.
// align must be positive.
func AlignDown(t, align int64) int64 {
	return FloorDiv(t, align) * align
}

// AlignUp returns the smallest multiple of align that is >= t.
// align must be positive.
func AlignUp(t, align int64) int64 {
	return CeilDiv(t, align) * align
}

// MinI64 returns the smaller of a and b.
func MinI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxI64 returns the larger of a and b.
func MaxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// AbsI64 returns the absolute value of a.
func AbsI64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}
