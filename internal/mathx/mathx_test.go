package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	cases := []struct {
		v    int64
		want bool
	}{
		{-4, false}, {-1, false}, {0, false}, {1, true}, {2, true},
		{3, false}, {4, true}, {6, false}, {1 << 30, true},
		{(1 << 30) + 1, false}, {MaxSpan, true},
	}
	for _, c := range cases {
		if got := IsPow2(c.v); got != c.want {
			t.Errorf("IsPow2(%d) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestCeilPow2(t *testing.T) {
	cases := []struct{ v, want int64 }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {17, 32},
		{1 << 40, 1 << 40}, {(1 << 40) + 1, 1 << 41},
	}
	for _, c := range cases {
		if got := CeilPow2(c.v); got != c.want {
			t.Errorf("CeilPow2(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestCeilPow2PanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CeilPow2(0) did not panic")
		}
	}()
	CeilPow2(0)
}

func TestFloorPow2(t *testing.T) {
	cases := []struct{ v, want int64 }{
		{1, 1}, {2, 2}, {3, 2}, {4, 4}, {5, 4}, {17, 16},
		{(1 << 40) - 1, 1 << 39}, {1 << 40, 1 << 40},
	}
	for _, c := range cases {
		if got := FloorPow2(c.v); got != c.want {
			t.Errorf("FloorPow2(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLog2Floor(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1 << 50, 50},
	}
	for _, c := range cases {
		if got := Log2Floor(c.v); got != c.want {
			t.Errorf("Log2Floor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLog2Exact(t *testing.T) {
	for i := 0; i <= 62; i++ {
		if got := Log2Exact(int64(1) << uint(i)); got != i {
			t.Errorf("Log2Exact(2^%d) = %d", i, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Log2Exact(3) did not panic")
		}
	}()
	Log2Exact(3)
}

func TestLogStar(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {16, 3},
		{17, 4}, {65536, 4}, {65537, 5}, {1 << 62, 5},
	}
	for _, c := range cases {
		if got := LogStar(c.v); got != c.want {
			t.Errorf("LogStar(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLogStarMonotone(t *testing.T) {
	prev := 0
	for v := int64(1); v < 1<<20; v = v*3/2 + 1 {
		cur := LogStar(v)
		if cur < prev {
			t.Fatalf("LogStar not monotone at %d: %d < %d", v, cur, prev)
		}
		prev = cur
	}
}

func TestTower(t *testing.T) {
	want := []int64{1, 2, 4, 16, 65536}
	for h, w := range want {
		if got := Tower(h); got != w {
			t.Errorf("Tower(%d) = %d, want %d", h, got, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Tower(5) did not panic (2^65536 overflows)")
		}
	}()
	Tower(5)
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, fl, ce int64 }{
		{7, 2, 3, 4}, {8, 2, 4, 4}, {-7, 2, -4, -3}, {-8, 2, -4, -4},
		{0, 5, 0, 0}, {1, 5, 0, 1}, {-1, 5, -1, 0},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.fl {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.fl)
		}
		if got := CeilDiv(c.a, c.b); got != c.ce {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ce)
		}
	}
}

func TestAlignUpDown(t *testing.T) {
	cases := []struct{ t64, align, down, up int64 }{
		{0, 4, 0, 0}, {1, 4, 0, 4}, {4, 4, 4, 4}, {5, 4, 4, 8},
		{-1, 4, -4, 0}, {-4, 4, -4, -4}, {-5, 4, -8, -4},
	}
	for _, c := range cases {
		if got := AlignDown(c.t64, c.align); got != c.down {
			t.Errorf("AlignDown(%d,%d) = %d, want %d", c.t64, c.align, got, c.down)
		}
		if got := AlignUp(c.t64, c.align); got != c.up {
			t.Errorf("AlignUp(%d,%d) = %d, want %d", c.t64, c.align, got, c.up)
		}
	}
}

// Property: FloorDiv matches math.Floor of the real quotient.
func TestFloorDivProperty(t *testing.T) {
	f := func(a int32, b int32) bool {
		bb := int64(b)
		if bb <= 0 {
			bb = -bb + 1
		}
		got := FloorDiv(int64(a), bb)
		want := int64(math.Floor(float64(a) / float64(bb)))
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CeilPow2/FloorPow2 bracket v and are powers of two.
func TestPow2BracketProperty(t *testing.T) {
	f := func(raw uint32) bool {
		v := int64(raw%1_000_000) + 1
		c, fl := CeilPow2(v), FloorPow2(v)
		return IsPow2(c) && IsPow2(fl) && fl <= v && v <= c && c < 2*v && fl > v/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AlignDown(t) <= t < AlignDown(t)+align, and both results are
// multiples of align.
func TestAlignProperty(t *testing.T) {
	f := func(tRaw int32, aRaw uint8) bool {
		a := int64(aRaw%64) + 1
		tt := int64(tRaw)
		d, u := AlignDown(tt, a), AlignUp(tt, a)
		return d%a == 0 && u%a == 0 && d <= tt && tt < d+a && u >= tt && u-a < tt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxAbs(t *testing.T) {
	if MinI64(3, 5) != 3 || MinI64(5, 3) != 3 {
		t.Error("MinI64 broken")
	}
	if MaxI64(3, 5) != 5 || MaxI64(5, 3) != 5 {
		t.Error("MaxI64 broken")
	}
	if AbsI64(-7) != 7 || AbsI64(7) != 7 || AbsI64(0) != 0 {
		t.Error("AbsI64 broken")
	}
}
