package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports the raw per-request cost series as CSV with columns
// request,reallocations,migrations,active_jobs — the format consumed by
// external plotting tools.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"request", "reallocations", "migrations", "active_jobs"}); err != nil {
		return err
	}
	for i, c := range r.costs {
		row := []string{
			strconv.Itoa(i),
			strconv.Itoa(c.Reallocations),
			strconv.Itoa(c.Migrations),
			strconv.Itoa(r.active[i]),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Merge appends another recorder's series to r (useful when an
// experiment runs in phases).
func (r *Recorder) Merge(o *Recorder) {
	r.costs = append(r.costs, o.costs...)
	r.active = append(r.active, o.active...)
}

// ReallocationSeries returns the per-request reallocation counts
// (a copy, safe to mutate), the series the sparkline renderer consumes.
func (r *Recorder) ReallocationSeries() []int {
	out := make([]int, len(r.costs))
	for i, c := range r.costs {
		out[i] = c.Reallocations
	}
	return out
}

// CompareSummaries renders a two-summary comparison line, used by
// experiments that contrast schedulers on identical workloads.
func CompareSummaries(labelA string, a Summary, labelB string, b Summary) string {
	ratio := "inf"
	if b.MeanReallocations > 0 {
		ratio = fmt.Sprintf("%.1fx", a.MeanReallocations/b.MeanReallocations)
	}
	return fmt.Sprintf("%s mean=%.2f max=%d | %s mean=%.2f max=%d | mean ratio %s",
		labelA, a.MeanReallocations, a.MaxReallocations,
		labelB, b.MeanReallocations, b.MaxReallocations, ratio)
}
