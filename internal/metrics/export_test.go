package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Record(Cost{Reallocations: 2, Migrations: 1}, 5)
	r.Record(Cost{Reallocations: 0, Migrations: 0}, 4)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "request,reallocations,migrations,active_jobs\n0,2,1,5\n1,0,0,4\n"
	if buf.String() != want {
		t.Errorf("CSV = %q", buf.String())
	}
}

func TestMerge(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	a.Record(Cost{Reallocations: 1}, 1)
	b.Record(Cost{Reallocations: 2}, 2)
	b.Record(Cost{Reallocations: 3}, 3)
	a.Merge(b)
	if a.Len() != 3 {
		t.Fatalf("merged len %d", a.Len())
	}
	if a.Summary().TotalReallocations != 6 {
		t.Errorf("total %d", a.Summary().TotalReallocations)
	}
}

func TestReallocationSeries(t *testing.T) {
	r := NewRecorder()
	r.Record(Cost{Reallocations: 4}, 1)
	r.Record(Cost{Reallocations: 7}, 2)
	s := r.ReallocationSeries()
	if len(s) != 2 || s[0] != 4 || s[1] != 7 {
		t.Errorf("series %v", s)
	}
	s[0] = 99 // must not alias internal state
	if r.Costs()[0].Reallocations != 4 {
		t.Error("series aliases recorder")
	}
}

func TestCompareSummaries(t *testing.T) {
	a := Summary{MeanReallocations: 10, MaxReallocations: 50}
	b := Summary{MeanReallocations: 2, MaxReallocations: 3}
	out := CompareSummaries("edf", a, "core", b)
	for _, want := range []string{"edf", "core", "5.0x", "max=50", "max=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison %q missing %q", out, want)
		}
	}
	zero := CompareSummaries("a", a, "b", Summary{})
	if !strings.Contains(zero, "inf") {
		t.Errorf("zero-mean comparison %q", zero)
	}
}
