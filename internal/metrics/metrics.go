// Package metrics records per-request reallocation and migration costs
// and aggregates them into the summary statistics the experiment harness
// reports: totals, maxima, means, amortized costs, and histograms.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Cost is the cost of serving a single request, in the paper's two
// currencies.
type Cost struct {
	// Reallocations is the number of jobs whose (machine, slot)
	// assignment changed while serving the request, including the
	// initial placement of a newly inserted job.
	Reallocations int
	// Migrations is the number of jobs whose machine changed.
	Migrations int
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.Reallocations += o.Reallocations
	c.Migrations += o.Migrations
}

// Recorder accumulates the per-request cost series of one run.
type Recorder struct {
	costs []Cost
	// ActiveJobs tracks n_i, the number of active jobs at the time of
	// each request, for cost-vs-n analyses.
	active []int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Record appends the cost of one request, along with the number of
// active jobs after the request was served.
func (r *Recorder) Record(c Cost, activeJobs int) {
	r.costs = append(r.costs, c)
	r.active = append(r.active, activeJobs)
}

// Len returns the number of recorded requests.
func (r *Recorder) Len() int { return len(r.costs) }

// Costs returns the raw cost series (not a copy; callers must not mutate).
func (r *Recorder) Costs() []Cost { return r.costs }

// Summary computes aggregates over the recorded series.
func (r *Recorder) Summary() Summary {
	s := Summary{Requests: len(r.costs)}
	if len(r.costs) == 0 {
		return s
	}
	reallocs := make([]int, len(r.costs))
	for i, c := range r.costs {
		reallocs[i] = c.Reallocations
		s.TotalReallocations += c.Reallocations
		s.TotalMigrations += c.Migrations
		if c.Reallocations > s.MaxReallocations {
			s.MaxReallocations = c.Reallocations
		}
		if c.Migrations > s.MaxMigrations {
			s.MaxMigrations = c.Migrations
		}
	}
	s.MeanReallocations = float64(s.TotalReallocations) / float64(s.Requests)
	s.MeanMigrations = float64(s.TotalMigrations) / float64(s.Requests)
	sort.Ints(reallocs)
	s.P50Reallocations = percentile(reallocs, 0.50)
	s.P99Reallocations = percentile(reallocs, 0.99)
	return s
}

// percentile returns the p-th percentile of a sorted int slice using the
// nearest-rank method.
func percentile(sorted []int, p float64) int {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Summary aggregates a cost series.
type Summary struct {
	Requests           int
	TotalReallocations int
	TotalMigrations    int
	MaxReallocations   int
	MaxMigrations      int
	MeanReallocations  float64
	MeanMigrations     float64
	P50Reallocations   int
	P99Reallocations   int
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf(
		"reqs=%d realloc{total=%d max=%d mean=%.3f p50=%d p99=%d} migr{total=%d max=%d mean=%.3f}",
		s.Requests, s.TotalReallocations, s.MaxReallocations, s.MeanReallocations,
		s.P50Reallocations, s.P99Reallocations,
		s.TotalMigrations, s.MaxMigrations, s.MeanMigrations)
}

// Histogram buckets the reallocation costs (0, 1, 2, ..., >=cap).
type Histogram struct {
	Buckets []int // Buckets[i] = #requests with cost i; last bucket is >= len-1
}

// HistogramOf builds a histogram with the given number of buckets
// (minimum 2). Costs >= buckets-1 land in the last bucket.
func (r *Recorder) HistogramOf(buckets int) Histogram {
	if buckets < 2 {
		buckets = 2
	}
	h := Histogram{Buckets: make([]int, buckets)}
	for _, c := range r.costs {
		b := c.Reallocations
		if b >= buckets-1 {
			b = buckets - 1
		}
		if b < 0 {
			b = 0
		}
		h.Buckets[b]++
	}
	return h
}

// String renders the histogram as "0:12 1:30 2:5 >=3:1".
func (h Histogram) String() string {
	var b strings.Builder
	for i, n := range h.Buckets {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i == len(h.Buckets)-1 {
			fmt.Fprintf(&b, ">=%d:%d", i, n)
		} else {
			fmt.Fprintf(&b, "%d:%d", i, n)
		}
	}
	return b.String()
}

// WindowedMax returns the maximum reallocation cost within each
// consecutive chunk of the series, useful for plotting worst-case cost
// over time. chunk must be positive.
func (r *Recorder) WindowedMax(chunk int) []int {
	if chunk <= 0 {
		panic("metrics: WindowedMax with non-positive chunk")
	}
	var out []int
	for i := 0; i < len(r.costs); i += chunk {
		maxC := 0
		for k := i; k < len(r.costs) && k < i+chunk; k++ {
			if r.costs[k].Reallocations > maxC {
				maxC = r.costs[k].Reallocations
			}
		}
		out = append(out, maxC)
	}
	return out
}

// CostVsActive returns, for each distinct active-job count bucket
// (rounded down to a power of two), the max reallocation cost seen —
// the series used to validate the O(log* n) bound empirically.
func (r *Recorder) CostVsActive() map[int]int {
	out := make(map[int]int)
	for i, c := range r.costs {
		n := r.active[i]
		b := 1
		for b*2 <= n {
			b *= 2
		}
		if c.Reallocations > out[b] {
			out[b] = c.Reallocations
		}
	}
	return out
}
