package metrics

import (
	"strings"
	"testing"
)

func TestRecorderSummary(t *testing.T) {
	r := NewRecorder()
	r.Record(Cost{Reallocations: 1, Migrations: 0}, 1)
	r.Record(Cost{Reallocations: 3, Migrations: 1}, 2)
	r.Record(Cost{Reallocations: 2, Migrations: 0}, 3)
	r.Record(Cost{Reallocations: 0, Migrations: 0}, 2)

	s := r.Summary()
	if s.Requests != 4 {
		t.Errorf("Requests = %d", s.Requests)
	}
	if s.TotalReallocations != 6 || s.TotalMigrations != 1 {
		t.Errorf("totals = %d/%d", s.TotalReallocations, s.TotalMigrations)
	}
	if s.MaxReallocations != 3 || s.MaxMigrations != 1 {
		t.Errorf("maxima = %d/%d", s.MaxReallocations, s.MaxMigrations)
	}
	if s.MeanReallocations != 1.5 {
		t.Errorf("mean = %f", s.MeanReallocations)
	}
	if s.P50Reallocations != 1 { // sorted [0 1 2 3], rank ceil(0.5*4)=2 -> 1
		t.Errorf("p50 = %d", s.P50Reallocations)
	}
	if s.P99Reallocations != 3 {
		t.Errorf("p99 = %d", s.P99Reallocations)
	}
	if !strings.Contains(s.String(), "reqs=4") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewRecorder().Summary()
	if s.Requests != 0 || s.TotalReallocations != 0 || s.MaxReallocations != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestCostAdd(t *testing.T) {
	c := Cost{Reallocations: 1, Migrations: 2}
	c.Add(Cost{Reallocations: 3, Migrations: 4})
	if c.Reallocations != 4 || c.Migrations != 6 {
		t.Errorf("Add result %+v", c)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRecorder()
	for _, v := range []int{0, 1, 1, 2, 5, 9} {
		r.Record(Cost{Reallocations: v}, 1)
	}
	h := r.HistogramOf(4) // buckets 0,1,2,>=3
	want := []int{1, 2, 1, 2}
	for i := range want {
		if h.Buckets[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", h.Buckets, want)
		}
	}
	if got := h.String(); got != "0:1 1:2 2:1 >=3:2" {
		t.Errorf("String() = %q", got)
	}
}

func TestHistogramMinBuckets(t *testing.T) {
	r := NewRecorder()
	r.Record(Cost{Reallocations: 7}, 1)
	h := r.HistogramOf(1)
	if len(h.Buckets) != 2 || h.Buckets[1] != 1 {
		t.Errorf("min-bucket histogram = %v", h.Buckets)
	}
}

func TestWindowedMax(t *testing.T) {
	r := NewRecorder()
	for _, v := range []int{1, 5, 2, 0, 0, 3, 7} {
		r.Record(Cost{Reallocations: v}, 1)
	}
	got := r.WindowedMax(3)
	want := []int{5, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("WindowedMax = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WindowedMax = %v, want %v", got, want)
		}
	}
}

func TestWindowedMaxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for chunk 0")
		}
	}()
	NewRecorder().WindowedMax(0)
}

func TestCostVsActive(t *testing.T) {
	r := NewRecorder()
	r.Record(Cost{Reallocations: 2}, 1)   // bucket 1
	r.Record(Cost{Reallocations: 4}, 3)   // bucket 2
	r.Record(Cost{Reallocations: 1}, 3)   // bucket 2 (max stays 4)
	r.Record(Cost{Reallocations: 9}, 100) // bucket 64
	m := r.CostVsActive()
	if m[1] != 2 || m[2] != 4 || m[64] != 9 {
		t.Errorf("CostVsActive = %v", m)
	}
}

func TestPercentileEdge(t *testing.T) {
	if percentile(nil, 0.5) != 0 {
		t.Error("empty percentile nonzero")
	}
	if percentile([]int{42}, 0.0) != 42 {
		t.Error("rank clamp low broken")
	}
	if percentile([]int{1, 2}, 1.0) != 2 {
		t.Error("rank clamp high broken")
	}
}
