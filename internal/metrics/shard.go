package metrics

import (
	"fmt"
	"strings"

	"repro/internal/hdr"
)

// ShardCost aggregates the requests served by one shard of a sharded
// scheduler front-end.
type ShardCost struct {
	// Shard is the shard index.
	Shard int
	// Machines is the number of machines the shard owns.
	Machines int
	// Requests is the number of requests the shard executed, including
	// overflow requests routed to it as a fallback. A request that
	// overflows is executed twice — once on the primary shard, once on
	// the fallback — so the number of distinct requests across a report
	// is sum(Requests) - sum(Rerouted).
	Requests int
	// Failures is the number of requests that terminally failed on this
	// shard (duplicate, unknown, or infeasible with no fallback left).
	// Rejections that were retried on another shard count under
	// Rerouted instead.
	Failures int
	// Rerouted is the number of inserts this shard rejected as locally
	// infeasible that the front-end then retried on a fallback shard.
	Rerouted int
	// Overflow is the number of requests this shard served after
	// another shard rejected them as infeasible.
	Overflow int
	// Batches is the number of ring drains (worker wakeups) the shard
	// worker performed; Requests/Batches is the mean pipeline batch
	// size.
	Batches int
	// ResizeEvicted is the number of jobs pool resizes drained off this
	// shard that its surviving machines could not absorb.
	ResizeEvicted int
	// ResizeAbsorbed is the number of resize-evicted jobs from other
	// shards this shard took in.
	ResizeAbsorbed int
	// Active is the shard's active job count at report time.
	Active int
	// Cost is the shard's total reallocation/migration cost.
	Cost Cost
	// Latency is the shard's admission-latency histogram (nanoseconds,
	// enqueue to served): every client request the worker executed,
	// per-request and batched alike. Empty when the front-end predates
	// the report or served nothing.
	Latency hdr.Snapshot
}

// ResizeCost is the price of one elastic machine-pool resize of a
// sharded scheduler. It is the resize analogue of Cost: growing is
// free (no job moves), shrinking pays at most one migration per job
// that lived on a drained machine.
type ResizeCost struct {
	// Shard is the resized shard, or -1 for a pool-wide Resize.
	Shard int
	// Delta is the machine-count change (positive = grow).
	Delta int
	// Evicted is how many jobs the shrunken shard could not keep.
	Evicted int
	// Reinserted is how many evicted jobs another shard absorbed.
	Reinserted int
	// Dropped is how many evicted jobs no shard could absorb; they left
	// the scheduler entirely.
	Dropped int
	// Cost is the total reallocation/migration price of the resize:
	// intra-shard re-placements plus one migration per cross-shard move.
	Cost Cost
}

// Add folds o into r (for aggregating per-shard resizes into a
// pool-wide total).
func (r *ResizeCost) Add(o ResizeCost) {
	r.Delta += o.Delta
	r.Evicted += o.Evicted
	r.Reinserted += o.Reinserted
	r.Dropped += o.Dropped
	r.Cost.Add(o.Cost)
}

// ShardReport is the shard-aware cost report of a sharded scheduler:
// per-shard aggregates, the resize history, plus module-wide totals.
type ShardReport struct {
	Shards []ShardCost
	// Resizes is the history of elastic pool resizes, oldest first.
	Resizes []ResizeCost
}

// ResizeTotal aggregates the resize history (Shard is -1 in the
// result).
func (r ShardReport) ResizeTotal() ResizeCost {
	t := ResizeCost{Shard: -1}
	for _, rc := range r.Resizes {
		t.Add(rc)
	}
	return t
}

// Total sums the per-shard aggregates.
func (r ShardReport) Total() ShardCost {
	var t ShardCost
	t.Shard = -1
	for _, s := range r.Shards {
		t.Machines += s.Machines
		t.Requests += s.Requests
		t.Failures += s.Failures
		t.Rerouted += s.Rerouted
		t.Overflow += s.Overflow
		t.Batches += s.Batches
		t.ResizeEvicted += s.ResizeEvicted
		t.ResizeAbsorbed += s.ResizeAbsorbed
		t.Active += s.Active
		t.Cost.Add(s.Cost)
		t.Latency.Merge(s.Latency)
	}
	return t
}

// Served returns the number of distinct requests that succeeded across
// the report: executions minus fallback re-executions minus terminal
// failures.
func (r ShardReport) Served() int {
	t := r.Total()
	return t.Requests - t.Rerouted - t.Failures
}

// Imbalance returns max/mean executed requests across shards — 1.0 is a
// perfectly even spread; 0 when nothing has been served.
func (r ShardReport) Imbalance() float64 {
	if len(r.Shards) == 0 {
		return 0
	}
	total, maxR := 0, 0
	for _, s := range r.Shards {
		total += s.Requests
		if s.Requests > maxR {
			maxR = s.Requests
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(r.Shards))
	return float64(maxR) / mean
}

// latencySummary renders a histogram as "p50/p99/p99.9/max" in
// microseconds, or "" when empty.
func latencySummary(l hdr.Snapshot) string {
	if l.Count() == 0 {
		return ""
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	return fmt.Sprintf(" lat(us) p50=%.1f p99=%.1f p99.9=%.1f max=%.1f",
		us(l.Quantile(0.50)), us(l.Quantile(0.99)), us(l.Quantile(0.999)), us(l.Max()))
}

// String renders one line per shard plus a totals line.
func (r ShardReport) String() string {
	var b strings.Builder
	for _, s := range r.Shards {
		fmt.Fprintf(&b, "shard %d: machines=%d active=%d reqs=%d fail=%d rerouted=%d overflow=%d batches=%d realloc=%d migr=%d%s\n",
			s.Shard, s.Machines, s.Active, s.Requests, s.Failures, s.Rerouted, s.Overflow, s.Batches,
			s.Cost.Reallocations, s.Cost.Migrations, latencySummary(s.Latency))
	}
	t := r.Total()
	fmt.Fprintf(&b, "total:   machines=%d active=%d served=%d fail=%d rerouted=%d overflow=%d realloc=%d migr=%d imbalance=%.2f%s",
		t.Machines, t.Active, r.Served(), t.Failures, t.Rerouted, t.Overflow,
		t.Cost.Reallocations, t.Cost.Migrations, r.Imbalance(), latencySummary(t.Latency))
	if len(r.Resizes) > 0 {
		rt := r.ResizeTotal()
		fmt.Fprintf(&b, "\nresizes: %d (net delta %+d) evicted=%d reinserted=%d dropped=%d realloc=%d migr=%d",
			len(r.Resizes), rt.Delta, rt.Evicted, rt.Reinserted, rt.Dropped,
			rt.Cost.Reallocations, rt.Cost.Migrations)
	}
	return b.String()
}
