package mixed_test

import (
	"fmt"

	"repro/internal/mixed"
)

// Observation 13 measured: sliding a size-k job across k unit jobs costs
// at least k reallocations per sweep, for any scheduler.
func ExampleRunObservation13() {
	res, err := mixed.RunObservation13(16, 2, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("k=%d: every sweep cost >= k: %v\n", res.K, res.MinSweepCost >= int(res.K))
	// Output:
	// k=16: every sweep cost >= k: true
}
