// Package mixed implements the substrate for the paper's Observation 13:
// scheduling with two job sizes, 1 and k. A size-k job occupies k
// consecutive timeslots; in the paper's construction its window has span
// exactly k, so its position is forced. Observation 13 shows that any
// reallocation scheduler on such instances pays Ω(kn) aggregate
// reallocations over Θ(n) requests, even with arbitrarily large constant
// underallocation — which is why the paper (and this repository's core
// scheduler) restricts to unit jobs.
//
// The scheduler here is a simple greedy relocator: placing the size-k job
// evicts every unit job under its footprint to the lowest free slot in
// that job's window. Since the adversary forces the evictions no matter
// how cleverly a scheduler places jobs, the greedy relocator suffices to
// demonstrate the measured lower bound.
package mixed

import (
	"fmt"

	"repro/internal/jobs"
	"repro/internal/metrics"
)

// Scheduler schedules unit jobs plus at most one size-k job on a single
// machine.
type Scheduler struct {
	units   map[string]*unitJob
	slots   map[jobs.Time]string // slot -> unit job name
	big     *bigJob
	horizon int64
}

type unitJob struct {
	name   string
	window jobs.Window
	slot   jobs.Time
}

type bigJob struct {
	name  string
	start jobs.Time
	size  int64
}

// New returns an empty mixed-size scheduler over [0, horizon).
func New(horizon int64) *Scheduler {
	if horizon < 1 {
		panic(fmt.Sprintf("mixed: horizon %d < 1", horizon))
	}
	return &Scheduler{
		units:   make(map[string]*unitJob),
		slots:   make(map[jobs.Time]string),
		horizon: horizon,
	}
}

// Active returns the number of active jobs (unit jobs plus the big job).
func (s *Scheduler) Active() int {
	n := len(s.units)
	if s.big != nil {
		n++
	}
	return n
}

// coveredByBig reports whether slot t lies under the size-k job.
func (s *Scheduler) coveredByBig(t jobs.Time) bool {
	return s.big != nil && t >= s.big.start && t < s.big.start+s.big.size
}

// InsertUnit adds a unit job, placing it at the lowest free slot in its
// window.
func (s *Scheduler) InsertUnit(name string, w jobs.Window) (metrics.Cost, error) {
	if err := w.Validate(); err != nil {
		return metrics.Cost{}, err
	}
	if _, dup := s.units[name]; dup {
		return metrics.Cost{}, fmt.Errorf("mixed: unit job %q already active", name)
	}
	slot, ok := s.freeSlot(w)
	if !ok {
		return metrics.Cost{}, fmt.Errorf("mixed: no free slot for unit job %q in %v", name, w)
	}
	u := &unitJob{name: name, window: w, slot: slot}
	s.units[name] = u
	s.slots[slot] = name
	return metrics.Cost{Reallocations: 1}, nil
}

// DeleteUnit removes a unit job.
func (s *Scheduler) DeleteUnit(name string) (metrics.Cost, error) {
	u, ok := s.units[name]
	if !ok {
		return metrics.Cost{}, fmt.Errorf("mixed: unknown unit job %q", name)
	}
	delete(s.slots, u.slot)
	delete(s.units, name)
	return metrics.Cost{}, nil
}

// InsertBig places the size-k job at exactly [start, start+size),
// relocating every unit job under its footprint.
func (s *Scheduler) InsertBig(name string, start jobs.Time, size int64) (metrics.Cost, error) {
	if s.big != nil {
		return metrics.Cost{}, fmt.Errorf("mixed: big job %q already active", s.big.name)
	}
	if start < 0 || start+size > s.horizon || size < 1 {
		return metrics.Cost{}, fmt.Errorf("mixed: big job [%d,%d) outside horizon %d", start, start+size, s.horizon)
	}
	s.big = &bigJob{name: name, start: start, size: size}
	cost := metrics.Cost{Reallocations: 1} // the big job's own placement
	// Evict unit jobs under the footprint.
	for t := start; t < start+size; t++ {
		uname, occupied := s.slots[t]
		if !occupied {
			continue
		}
		u := s.units[uname]
		slot, ok := s.freeSlot(u.window)
		if !ok {
			s.big = nil
			return cost, fmt.Errorf("mixed: cannot relocate unit job %q (instance too tight)", uname)
		}
		delete(s.slots, t)
		u.slot = slot
		s.slots[slot] = uname
		cost.Reallocations++
	}
	return cost, nil
}

// DeleteBig removes the size-k job.
func (s *Scheduler) DeleteBig(name string) (metrics.Cost, error) {
	if s.big == nil || s.big.name != name {
		return metrics.Cost{}, fmt.Errorf("mixed: big job %q not active", name)
	}
	s.big = nil
	return metrics.Cost{}, nil
}

// freeSlot returns the lowest slot in w that is neither occupied by a
// unit job nor covered by the big job.
func (s *Scheduler) freeSlot(w jobs.Window) (jobs.Time, bool) {
	for t := w.Start; t < w.End && t < s.horizon; t++ {
		if _, occupied := s.slots[t]; occupied {
			continue
		}
		if s.coveredByBig(t) {
			continue
		}
		return t, true
	}
	return 0, false
}

// SelfCheck validates the schedule: unit jobs inside their windows, no
// collisions, nothing under the big job.
func (s *Scheduler) SelfCheck() error {
	if len(s.slots) != len(s.units) {
		return fmt.Errorf("mixed: %d slots for %d unit jobs", len(s.slots), len(s.units))
	}
	for name, u := range s.units {
		if !u.window.Contains(u.slot) {
			return fmt.Errorf("mixed: unit %q at %d outside %v", name, u.slot, u.window)
		}
		if s.slots[u.slot] != name {
			return fmt.Errorf("mixed: slot map for %d inconsistent", u.slot)
		}
		if s.coveredByBig(u.slot) {
			return fmt.Errorf("mixed: unit %q under the big job at %d", name, u.slot)
		}
	}
	return nil
}

// Observation13Result reports the measured aggregate cost of the
// adversary.
type Observation13Result struct {
	K            int64 // size of the big job
	Gamma        int64 // slack factor of the construction
	Sweeps       int   // outer repetitions (the paper's n)
	Requests     int
	TotalCost    int
	MinSweepCost int // min over sweeps of the cost paid in that sweep
	// PaperLowerBound is k per sweep: each of the k unit jobs must be
	// rescheduled at least once per sweep of 2γ toggles.
	PaperLowerBound int
}

// RunObservation13 executes the paper's Observation 13 adversary: a
// horizon of 2γk slots, k unit jobs with window [0, 2γk), and one size-k
// job whose span-k window slides across positions 0, k, 2k, ..., then
// repeats for `sweeps` rounds. It returns the measured aggregate
// reallocation cost, which must be Ω(k · sweeps) for any scheduler.
func RunObservation13(k, gamma int64, sweeps int) (Observation13Result, error) {
	if k < 1 || gamma < 1 || sweeps < 1 {
		return Observation13Result{}, fmt.Errorf("mixed: bad parameters k=%d gamma=%d sweeps=%d", k, gamma, sweeps)
	}
	horizon := 2 * gamma * k
	s := New(horizon)
	res := Observation13Result{K: k, Gamma: gamma, Sweeps: sweeps, PaperLowerBound: int(k)}

	// k unit jobs, full-horizon windows.
	for i := int64(0); i < k; i++ {
		c, err := s.InsertUnit(fmt.Sprintf("u%04d", i), jobs.Window{Start: 0, End: horizon})
		if err != nil {
			return res, err
		}
		res.TotalCost += c.Reallocations
		res.Requests++
	}
	// The big job starts at position 0.
	c, err := s.InsertBig("p", 0, k)
	if err != nil {
		return res, err
	}
	res.TotalCost += c.Reallocations
	res.Requests++

	res.MinSweepCost = 1 << 30
	for sweep := 0; sweep < sweeps; sweep++ {
		sweepCost := 0
		// Slide p across all 2γ positions: delete, reinsert shifted.
		for pos := int64(1); pos < 2*gamma; pos++ {
			if _, err := s.DeleteBig("p"); err != nil {
				return res, err
			}
			res.Requests++
			c, err := s.InsertBig("p", pos*k, k)
			if err != nil {
				return res, err
			}
			sweepCost += c.Reallocations
			res.TotalCost += c.Reallocations
			res.Requests++
			if err := s.SelfCheck(); err != nil {
				return res, err
			}
		}
		// Wrap around to position 0 for the next sweep.
		if _, err := s.DeleteBig("p"); err != nil {
			return res, err
		}
		res.Requests++
		c, err := s.InsertBig("p", 0, k)
		if err != nil {
			return res, err
		}
		sweepCost += c.Reallocations
		res.TotalCost += c.Reallocations
		res.Requests++
		if sweepCost < res.MinSweepCost {
			res.MinSweepCost = sweepCost
		}
	}
	return res, nil
}
