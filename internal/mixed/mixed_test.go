package mixed

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/jobs"
)

func win(start, end int64) jobs.Window { return jobs.Window{Start: start, End: end} }

func TestUnitInsertDelete(t *testing.T) {
	s := New(16)
	c, err := s.InsertUnit("a", win(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if c.Reallocations != 1 {
		t.Errorf("cost %+v", c)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteUnit("a"); err != nil {
		t.Fatal(err)
	}
	if s.Active() != 0 {
		t.Error("not deleted")
	}
}

func TestUnitRejections(t *testing.T) {
	s := New(16)
	if _, err := s.InsertUnit("a", win(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertUnit("a", win(0, 4)); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := s.InsertUnit("b", win(0, 1)); err == nil {
		t.Error("overfull window accepted")
	}
	if _, err := s.DeleteUnit("ghost"); err == nil {
		t.Error("unknown delete accepted")
	}
}

func TestBigJobEvictsUnits(t *testing.T) {
	s := New(32)
	// Unit jobs at slots 0..3 with wide windows.
	for i := 0; i < 4; i++ {
		if _, err := s.InsertUnit(fmt.Sprintf("u%d", i), win(0, 32)); err != nil {
			t.Fatal(err)
		}
	}
	// Big job of size 4 at [0, 4) evicts all four.
	c, err := s.InsertBig("p", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Reallocations != 5 { // big placement + 4 evictions
		t.Errorf("cost %+v, want 5 reallocations", c)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestBigJobRejections(t *testing.T) {
	s := New(8)
	if _, err := s.InsertBig("p", 0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertBig("q", 4, 4); err == nil {
		t.Error("second big job accepted")
	}
	if _, err := s.DeleteBig("q"); err == nil {
		t.Error("wrong-name delete accepted")
	}
	if _, err := s.DeleteBig("p"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertBig("r", 6, 4); err == nil {
		t.Error("out-of-horizon big job accepted")
	}
}

func TestBigJobTooTight(t *testing.T) {
	s := New(4)
	for i := 0; i < 4; i++ {
		if _, err := s.InsertUnit(fmt.Sprintf("u%d", i), win(0, 4)); err != nil {
			t.Fatal(err)
		}
	}
	// No room to relocate evicted units.
	if _, err := s.InsertBig("p", 0, 2); err == nil ||
		!strings.Contains(err.Error(), "cannot relocate") {
		t.Errorf("tight instance: %v", err)
	}
}

// Observation 13 measured: every sweep of 2γ toggles costs at least k
// reallocations, so the aggregate over n sweeps is Ω(kn).
func TestObservation13LowerBound(t *testing.T) {
	for _, k := range []int64{4, 16, 64} {
		res, err := RunObservation13(k, 2, 5)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.MinSweepCost < int(k) {
			t.Errorf("k=%d: min sweep cost %d below the paper's per-sweep bound %d",
				k, res.MinSweepCost, k)
		}
		if res.TotalCost < 5*int(k) {
			t.Errorf("k=%d: total %d below Ω(k·sweeps) = %d", k, res.TotalCost, 5*k)
		}
	}
}

// The aggregate grows linearly in k at fixed request count per sweep —
// the Ω(kn) shape of Observation 13.
func TestObservation13ScalesWithK(t *testing.T) {
	small, err := RunObservation13(8, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunObservation13(32, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 4x the k should give roughly 4x the cost (within 2x tolerance).
	ratio := float64(large.TotalCost) / float64(small.TotalCost)
	if ratio < 2 || ratio > 8 {
		t.Errorf("cost ratio %f for 4x k (small=%d, large=%d)", ratio, small.TotalCost, large.TotalCost)
	}
}

func TestObservation13BadParams(t *testing.T) {
	if _, err := RunObservation13(0, 2, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RunObservation13(4, 0, 1); err == nil {
		t.Error("gamma=0 accepted")
	}
	if _, err := RunObservation13(4, 2, 0); err == nil {
		t.Error("sweeps=0 accepted")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("horizon 0 accepted")
		}
	}()
	New(0)
}
