// Batched admission for the m-machine wrapper: ApplyBatch plans every
// routing decision — least-loaded delegation for inserts, the fullest
// machine, the repair condition, and the (lexicographically smallest)
// mover for delete repairs — against ONE simulated load snapshot in a
// single planning pass, then executes the resulting per-machine
// operation lists machine by machine through each machine's own bulk
// path. Grouping by machine preserves each machine's operation order
// (which is all the per-machine schedulers observe), so the final
// schedule equals the sequential path's whenever no operation fails;
// and because the per-machine execution goes through sched.ApplyBatch,
// the trimming layer underneath amortizes its rebuilds per machine
// batch rather than per request.
//
// The floor/ceil balance and the ≤1-migration-per-request bound are
// preserved by construction: the plan replicates the sequential
// decision functions exactly, and a delete still triggers at most one
// repair migration.
package multi

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
)

var _ sched.BatchScheduler = (*Scheduler)(nil)

// planOp is one machine-level operation of a batch plan. A delete that
// breaks the balance plans three ops: the delete itself, then a
// migration pair (delete on the fullest machine, insert on the drained
// one) attributed to the same request.
type planOp struct {
	reqIdx  int
	machine int
	req     jobs.Request
	key     winKey
	// migrationDelete marks the first half of a repair migration; the
	// matching migrationInsert is always the next op in the plan.
	migrationDelete bool
	migrationInsert bool
}

// ApplyBatch serves the requests in order against one load snapshot.
// See sched.BatchScheduler for the shared bulk semantics.
func (s *Scheduler) ApplyBatch(reqs []jobs.Request) ([]metrics.Cost, error) {
	costs := make([]metrics.Cost, len(reqs))
	errs := make([]error, len(reqs))
	ops := s.plan(reqs, errs)

	// Execute the per-machine operation lists. Machines are independent
	// single-machine problems, so cross-machine execution order cannot
	// change any placement.
	perMachine := make([][]int, len(s.machines))
	for k, op := range ops {
		perMachine[op.machine] = append(perMachine[op.machine], k)
	}
	opCost := make([]metrics.Cost, len(ops))
	opErr := make([]error, len(ops))
	var shed []string // jobs the machines' batch rebuilds evicted
	for mi, opIdxs := range perMachine {
		if len(opIdxs) == 0 {
			continue
		}
		mreqs := make([]jobs.Request, len(opIdxs))
		for k, oi := range opIdxs {
			mreqs[k] = ops[oi].req
		}
		cs, err := sched.ApplyBatch(s.machines[mi], mreqs)
		for k, oi := range opIdxs {
			opCost[oi] = cs[k]
		}
		if err != nil {
			if be, ok := err.(*sched.BatchError); ok {
				for k, oi := range opIdxs {
					opErr[oi] = be.At(k)
				}
			} else {
				for _, oi := range opIdxs {
					opErr[oi] = err
				}
			}
		}
		shed = append(shed, sched.TakeBatchEvictions(s.machines[mi])...)
	}

	s.foldPlan(ops, opCost, opErr, costs, errs)
	s.dropEvicted(shed)
	return costs, sched.NewBatchError(errs)
}

// dropEvicted erases the wrapper bookkeeping for jobs a machine's batch
// rebuild shed, and re-exposes them to the layer above.
func (s *Scheduler) dropEvicted(shed []string) {
	for _, name := range shed {
		if id, idx, ok := s.lookup(name); ok {
			key := s.wins[id]
			s.forget(id, key, idx)
			s.names.Release(id)
			s.settleSkew(key)
		}
		s.evicted = append(s.evicted, name)
	}
}

// TakeBatchEvictions implements sched.BatchEvictor.
func (s *Scheduler) TakeBatchEvictions() []string {
	ev := s.evicted
	s.evicted = nil
	return ev
}

// plan walks the batch against a simulated snapshot of the routing
// state, records static rejections into errs, and emits the machine-
// level operation list. The decision functions mirror Insert and Delete
// exactly (least-loaded with ties to the lowest index; repair from the
// strictly fullest machine when it holds two more W-jobs than the
// machine that lost one; the lexicographically smallest mover).
func (s *Scheduler) plan(reqs []jobs.Request, errs []error) []planOp {
	sim := newBatchSim(s)
	defer sim.release()
	var ops []planOp
	for i, r := range reqs {
		switch r.Kind {
		case jobs.Insert:
			j := jobs.Job{Name: r.Name, Window: r.Window}
			if err := j.Validate(); err != nil {
				errs[i] = err
				continue
			}
			if !j.Window.IsAligned() {
				errs[i] = fmt.Errorf("%w: %v", sched.ErrMisaligned, j.Window)
				continue
			}
			if _, ok := sim.lookup(j.Name); ok {
				errs[i] = fmt.Errorf("%w: %q", sched.ErrDuplicateJob, j.Name)
				continue
			}
			key := winKey{start: j.Window.Start, span: j.Window.Span()}
			idx := sim.leastLoaded(key)
			ops = append(ops, planOp{reqIdx: i, machine: idx, req: r, key: key})
			sim.commit(j.Name, key, idx)
		case jobs.Delete:
			idx, ok := sim.lookup(r.Name)
			if !ok {
				errs[i] = fmt.Errorf("%w: %q", sched.ErrUnknownJob, r.Name)
				continue
			}
			key := sim.window(r.Name)
			ops = append(ops, planOp{reqIdx: i, machine: idx, req: r, key: key})
			sim.forget(r.Name, key, idx)
			if from, mover, ok := sim.repair(key, idx); ok {
				w := key.window()
				ops = append(ops,
					planOp{reqIdx: i, machine: from, req: jobs.DeleteReq(mover), key: key, migrationDelete: true},
					planOp{reqIdx: i, machine: idx, req: jobs.InsertReq(mover, w.Start, w.End), key: key, migrationInsert: true},
				)
				sim.forget(mover, key, from)
				sim.commit(mover, key, idx)
			}
		default:
			errs[i] = fmt.Errorf("sched: unknown request kind %d", r.Kind)
		}
	}
	return ops
}

// foldPlan walks the executed plan in order, folding operation costs
// into per-request costs and committing the wrapper bookkeeping for
// every operation that actually succeeded. Machines whose recovery may
// be needed (a failed insert can poison a bare reservation core) are
// rebuilt only after the bookkeeping is complete, since recoverMachine
// replays the tracked jobs of the machine.
func (s *Scheduler) foldPlan(ops []planOp, opCost []metrics.Cost, opErr []error, costs []metrics.Cost, errs []error) {
	// Failure recovery is rare: allocate its tracking lazily. The
	// touched-window set reuses a per-scheduler scratch map (the wrapper
	// is single-threaded), so a steady stream of batches stops paying
	// for it.
	var needRecover map[int]bool
	if s.touched == nil {
		s.touched = make(map[winKey]bool)
	}
	touched := s.touched
	defer clear(touched)
	for k := 0; k < len(ops); k++ {
		op := ops[k]
		touched[op.key] = true
		switch {
		case op.migrationDelete:
			ins := ops[k+1]
			dErr, iErr := opErr[k], opErr[k+1]
			switch {
			case dErr == nil && iErr == nil:
				costs[op.reqIdx].Add(opCost[k])
				costs[op.reqIdx].Add(opCost[k+1])
				costs[op.reqIdx].Migrations++ // the mover crossed machines
				if id, _, ok := s.lookup(op.req.Name); ok {
					s.forget(id, op.key, op.machine)
					s.commitID(id, op.key, ins.machine)
				}
			case dErr != nil && iErr == nil:
				// The mover landed on the target but never left its source:
				// undo the landing so it is not scheduled twice.
				if _, uerr := s.machines[ins.machine].Delete(op.req.Name); uerr != nil {
					if needRecover == nil {
						needRecover = make(map[int]bool)
					}
					needRecover[ins.machine] = true
				}
				if errs[op.reqIdx] == nil {
					errs[op.reqIdx] = fmt.Errorf("multi: migration delete of %q failed: %w", op.req.Name, dErr)
				}
			case dErr == nil && iErr != nil:
				// Drained but not re-placed: the mover leaves the scheduler.
				costs[op.reqIdx].Add(opCost[k])
				if id, _, ok := s.lookup(op.req.Name); ok {
					s.forget(id, op.key, op.machine)
					s.names.Release(id)
				}
				if needRecover == nil {
					needRecover = make(map[int]bool)
				}
				needRecover[ins.machine] = true
				if errs[op.reqIdx] == nil {
					errs[op.reqIdx] = fmt.Errorf("multi: migration insert of %q failed: %w", op.req.Name, iErr)
				}
			default:
				if errs[op.reqIdx] == nil {
					errs[op.reqIdx] = fmt.Errorf("multi: migration delete of %q failed: %w", op.req.Name, dErr)
				}
			}
			k++ // consume the paired migrationInsert
		case op.req.Kind == jobs.Insert:
			costs[op.reqIdx].Add(opCost[k])
			if opErr[k] != nil {
				errs[op.reqIdx] = opErr[k]
				if needRecover == nil {
					needRecover = make(map[int]bool)
				}
				needRecover[op.machine] = true
				continue
			}
			s.commit(op.req.Name, op.key, op.machine)
		default: // delete
			costs[op.reqIdx].Add(opCost[k])
			if opErr[k] != nil {
				errs[op.reqIdx] = opErr[k]
				continue
			}
			if id, _, ok := s.lookup(op.req.Name); ok {
				s.forget(id, op.key, op.machine)
				s.names.Release(id)
			}
		}
	}
	for mi := range needRecover { //reallocvet:orderinsensitive (machine rebuilds are independent: each touches only its own machine state)
		if rerr := s.recoverMachine(mi); rerr != nil {
			// Surface the rebuild failure on the first affected request.
			for k, op := range ops {
				if op.machine == mi && opErr[k] != nil {
					errs[op.reqIdx] = rerr
					break
				}
			}
		}
	}
	for key := range touched { //reallocvet:orderinsensitive (settleSkew is per-window bookkeeping; windows are independent)
		s.settleSkew(key)
	}
}

// stringSet is the name-keyed overlay set of the batch planner; the
// live routing state underneath is ID-keyed (idSet).
type stringSet map[string]struct{}

// batchSim is a copy-on-write overlay of the wrapper's routing state,
// used by plan so one batch reads the live maps without mutating them.
// The overlay stays name-keyed — batch requests arrive as names, and
// only batch-touched names enter it — while fall-through reads resolve
// against the interned live state. Sims are pooled: a burst of batches
// reuses the overlay maps instead of reallocating them per batch.
type batchSim struct {
	s    *Scheduler
	loc  map[string]int    // name -> machine; -1 marks an in-batch delete
	win  map[string]winKey // windows of in-batch inserts
	sets map[winKey][]stringSet
}

var simPool = sync.Pool{New: func() any {
	return &batchSim{
		loc:  make(map[string]int),
		win:  make(map[string]winKey),
		sets: make(map[winKey][]stringSet),
	}
}}

func newBatchSim(s *Scheduler) *batchSim {
	b := simPool.Get().(*batchSim)
	b.s = s
	return b
}

// release returns the sim to the pool. Pooling invariant: every map is
// cleared first, so no job names or scheduler pointers outlive the
// batch through the pool.
func (b *batchSim) release() {
	b.s = nil
	clear(b.loc)
	clear(b.win)
	clear(b.sets)
	simPool.Put(b)
}

func (b *batchSim) lookup(name string) (int, bool) {
	if idx, ok := b.loc[name]; ok {
		if idx < 0 {
			return 0, false
		}
		return idx, true
	}
	_, idx, ok := b.s.lookup(name)
	return idx, ok
}

func (b *batchSim) window(name string) winKey {
	if key, ok := b.win[name]; ok {
		return key
	}
	if id, ok := b.s.names.Get(name); ok {
		return b.s.wins[id]
	}
	return winKey{}
}

// setsFor clones the per-machine W-job sets of key on first touch,
// padded to the machine count (IDs resolve back to names: the planner's
// mover rule is lexicographic on names).
func (b *batchSim) setsFor(key winKey) []stringSet {
	if sets, ok := b.sets[key]; ok {
		return sets
	}
	live := b.s.perWin[key]
	sets := make([]stringSet, len(b.s.machines))
	for i := range sets {
		sets[i] = make(stringSet)
		if i < len(live) {
			for id := range live[i] { //reallocvet:orderinsensitive (pure set copy into a map; no order-dependent effect)
				sets[i][b.s.names.Name(id)] = struct{}{}
			}
		}
	}
	b.sets[key] = sets
	return sets
}

func (b *batchSim) commit(name string, key winKey, idx int) {
	b.loc[name] = idx
	b.win[name] = key
	if len(b.s.machines) > 1 {
		b.setsFor(key)[idx][name] = struct{}{}
	}
}

func (b *batchSim) forget(name string, key winKey, idx int) {
	b.loc[name] = -1
	if len(b.s.machines) > 1 {
		delete(b.setsFor(key)[idx], name)
	}
}

// leastLoaded mirrors Scheduler.leastLoaded against the simulated sets.
// One machine needs no sets: everything delegates to machine 0.
func (b *batchSim) leastLoaded(key winKey) int {
	if len(b.s.machines) == 1 {
		return 0
	}
	sets := b.setsFor(key)
	best, bestN := 0, -1
	for i := range b.s.machines {
		n := len(sets[i])
		if bestN < 0 || n < bestN {
			best, bestN = i, n
		}
	}
	return best
}

// repair mirrors the delete-repair decision: after machine idx lost a
// W-job, migrate one from the strictly fullest machine if it holds two
// more. Returns the source machine and the mover. One machine can never
// satisfy the "two more than" condition, so it never repairs.
func (b *batchSim) repair(key winKey, idx int) (int, string, bool) {
	if len(b.s.machines) == 1 {
		return 0, "", false
	}
	sets := b.setsFor(key)
	from, fromN := -1, 0
	for i := range b.s.machines {
		if n := len(sets[i]); n > fromN {
			from, fromN = i, n
		}
	}
	if from < 0 || fromN < len(sets[idx])+2 {
		return 0, "", false
	}
	names := make([]string, 0, len(sets[from]))
	for n := range sets[from] {
		names = append(names, n)
	}
	if len(names) == 0 {
		return 0, "", false
	}
	sort.Strings(names)
	return from, names[0], true
}
