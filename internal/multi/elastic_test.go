package multi

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/feasible"
	"repro/internal/ident"
	"repro/internal/sched"
	"repro/internal/trim"
)

func TestAddMachinesMovesNothing(t *testing.T) {
	s := New(2, coreFactory)
	for i := 0; i < 6; i++ {
		if _, err := s.Insert(job(fmt.Sprintf("j%d", i), 0, 64)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Assignment()
	if err := s.AddMachines(2); err != nil {
		t.Fatal(err)
	}
	if got := s.Machines(); got != 4 {
		t.Fatalf("Machines() = %d, want 4", got)
	}
	after := s.Assignment()
	for name, p := range before {
		if after[name] != p {
			t.Errorf("grow moved %q: %+v -> %+v", name, p, after[name])
		}
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck after grow: %v", err)
	}
	// New inserts must prefer the empty machines.
	if _, err := s.Insert(job("j6", 0, 64)); err != nil {
		t.Fatal(err)
	}
	if m := s.Assignment()["j6"].Machine; m != 2 {
		t.Errorf("post-grow insert landed on machine %d, want 2 (emptiest)", m)
	}
	// Deletes repair the resize skew one migration at a time, never more.
	for i := 0; i < 6; i++ {
		c, err := s.Delete(fmt.Sprintf("j%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if c.Migrations > 1 {
			t.Errorf("delete j%d migrated %d jobs", i, c.Migrations)
		}
		if err := s.SelfCheck(); err != nil {
			t.Fatalf("after delete j%d: %v", i, err)
		}
	}
}

func TestRemoveMachinesBoundedMigrations(t *testing.T) {
	s := New(4, coreFactory)
	for i := 0; i < 12; i++ {
		if _, err := s.Insert(job(fmt.Sprintf("j%d", i), 0, 256)); err != nil {
			t.Fatal(err)
		}
	}
	drained := 0
	s.names.Range(func(id ident.ID, _ string) bool {
		if int(s.mach[id]) >= 2 {
			drained++
		}
		return true
	})
	cost, evicted, err := s.RemoveMachines(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 0 {
		t.Fatalf("evicted %d jobs from an underallocated pool", len(evicted))
	}
	if cost.Migrations != drained {
		t.Errorf("migrations = %d, want exactly the %d drained jobs", cost.Migrations, drained)
	}
	if got := s.Machines(); got != 2 {
		t.Fatalf("Machines() = %d, want 2", got)
	}
	if got := s.Active(); got != 12 {
		t.Fatalf("Active() = %d, want 12", got)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck after shrink: %v", err)
	}
	if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), 2); err != nil {
		t.Fatalf("schedule after shrink: %v", err)
	}
}

func TestRemoveMachinesEvictsWhatCannotFit(t *testing.T) {
	// The inner scheduler must survive the rejected re-placement attempt,
	// so use the trim wrapper (bare core poisons itself on rejection).
	s := New(2, func() sched.Scheduler {
		return trim.New(8, func() sched.Scheduler { return core.New() })
	})
	// Saturate both single-slot machines, then shrink: the drained job
	// cannot fit on the survivor and must come back evicted.
	for i := 0; i < 2; i++ {
		if _, err := s.Insert(job(fmt.Sprintf("j%d", i), 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	_, evicted, err := s.RemoveMachines(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 {
		t.Fatalf("evicted %d jobs, want 1", len(evicted))
	}
	if evicted[0].Name != "j1" {
		t.Errorf("evicted %q, want the drained machine's job j1", evicted[0].Name)
	}
	if got := s.Active(); got != 1 {
		t.Fatalf("Active() = %d, want 1", got)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeValidation(t *testing.T) {
	s := New(2, coreFactory)
	if err := s.AddMachines(0); err == nil {
		t.Error("AddMachines(0) accepted")
	}
	if _, _, err := s.RemoveMachines(2); err == nil {
		t.Error("RemoveMachines leaving an empty pool accepted")
	}
	if _, _, err := s.RemoveMachines(0); err == nil {
		t.Error("RemoveMachines(0) accepted")
	}
}

// TestElasticChurn interleaves random churn with grows and shrinks and
// keeps every invariant checked: migrations per request <= 1, migrations
// per shrink <= drained jobs, schedule always feasible.
func TestElasticChurn(t *testing.T) {
	var _ sched.Elastic = (*Scheduler)(nil)
	s := New(3, coreFactory)
	rng := rand.New(rand.NewSource(9))
	var active []string
	id := 0
	for step := 0; step < 600; step++ {
		switch {
		case step%97 == 96 && s.Machines() < 6:
			if err := s.AddMachines(1); err != nil {
				t.Fatalf("step %d grow: %v", step, err)
			}
		case step%131 == 130 && s.Machines() > 2:
			onDoomed := 0
			s.names.Range(func(id ident.ID, _ string) bool {
				if int(s.mach[id]) == s.Machines()-1 {
					onDoomed++
				}
				return true
			})
			cost, evicted, err := s.RemoveMachines(1)
			if err != nil {
				t.Fatalf("step %d shrink: %v", step, err)
			}
			if cost.Migrations > onDoomed {
				t.Fatalf("step %d shrink: %d migrations for %d drained jobs", step, cost.Migrations, onDoomed)
			}
			for _, j := range evicted {
				for i, n := range active {
					if n == j.Name {
						active = append(active[:i], active[i+1:]...)
						break
					}
				}
			}
		case len(active) > 40 && rng.Intn(2) == 0:
			i := rng.Intn(len(active))
			c, err := s.Delete(active[i])
			if err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			if c.Migrations > 1 {
				t.Fatalf("step %d delete migrated %d", step, c.Migrations)
			}
			active = append(active[:i], active[i+1:]...)
		default:
			name := fmt.Sprintf("e%04d", id)
			id++
			span := int64(1) << uint(3+rng.Intn(4)) // 8..64
			start := (rng.Int63n(1024 / span)) * span
			c, err := s.Insert(job(name, start, start+span))
			if err != nil {
				// A shrunken pool may genuinely be full; skip.
				continue
			}
			if c.Migrations != 0 {
				t.Fatalf("step %d insert migrated %d", step, c.Migrations)
			}
			active = append(active, name)
		}
		if err := s.SelfCheck(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), s.Machines()); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if s.Active() == 0 {
		t.Fatal("churn ended with no active jobs — test exercised nothing")
	}
}

// TestRejectionDoesNotPoisonBareCore: with bare reservation cores (no
// trim wrapper, i.e. realloc.WithoutTrimming), a rejected insert
// poisons the core mid-request; multi must detect it (sched.Poisoner)
// and rebuild the machine so the retry paths that deliberately probe
// full machines — shard overflow, shrink eviction — keep working.
func TestRejectionDoesNotPoisonBareCore(t *testing.T) {
	s := New(1, coreFactory)
	if _, err := s.Insert(job("a", 0, 1)); err != nil {
		t.Fatal(err)
	}
	// Slot [0,1) is taken: this insert must fail...
	if _, err := s.Insert(job("b", 0, 1)); err == nil {
		t.Fatal("overfull insert accepted")
	}
	// ...and the machine must stay fully usable afterward.
	if err := s.SelfCheck(); err != nil {
		t.Fatalf("machine poisoned by rejection: %v", err)
	}
	if _, err := s.Insert(job("c", 2, 4)); err != nil {
		t.Fatalf("insert after rejection: %v", err)
	}
	if _, err := s.Delete("a"); err != nil {
		t.Fatalf("delete after rejection: %v", err)
	}
	if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), 1); err != nil {
		t.Fatal(err)
	}
	// Shrink eviction against bare cores: both machines full, the
	// drained job probes the survivor (rejection) and must come back
	// evicted with the survivor intact.
	s2 := New(2, coreFactory)
	for i := 0; i < 2; i++ {
		if _, err := s2.Insert(job(fmt.Sprintf("f%d", i), 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	_, evicted, err := s2.RemoveMachines(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 {
		t.Fatalf("evicted %d, want 1", len(evicted))
	}
	if err := s2.SelfCheck(); err != nil {
		t.Fatalf("survivor poisoned by eviction probe: %v", err)
	}
}
