package multi_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/multi"
	"repro/internal/sched"
)

// Round-robin delegation balances same-window jobs across machines
// (Section 3): 6 jobs on 3 machines land 2 per machine.
func ExampleNew() {
	s := multi.New(3, func() sched.Scheduler { return core.New() })
	for i := 0; i < 6; i++ {
		if _, err := s.Insert(jobs.Job{
			Name:   fmt.Sprintf("j%d", i),
			Window: jobs.Window{Start: 0, End: 64},
		}); err != nil {
			panic(err)
		}
	}
	per := make([]int, 3)
	for _, p := range s.Assignment() {
		per[p.Machine]++
	}
	fmt.Println(per)
	// Output:
	// [2 2 2]
}
