// Package multi implements the paper's Section 3 reduction from
// m-machine to single-machine reallocation scheduling for recursively
// aligned jobs.
//
// For every window W the wrapper records the number n_W of active jobs
// with exactly that window and delegates jobs round-robin: the job that
// arrives when the count is n_W goes to machine n_W mod m, so every
// machine holds either floor(n_W/m) or ceil(n_W/m) jobs of window W,
// with the extras on the earliest machines. When a job with window W is
// deleted from machine i, one W-job is taken from the machine holding
// the most recently delegated extra (machine (n_W - 1) mod m) and
// migrated to machine i, restoring the invariant with at most one
// migration per request (Theorem 1's migration bound).
//
// Lemma 3 guarantees that when the overall instance is 6γ-underallocated,
// each per-machine instance is γ-underallocated, so the single-machine
// schedulers keep working.
package multi

import (
	"fmt"
	"sort"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Factory builds one fresh single-machine scheduler per machine.
type Factory func() sched.Scheduler

type winKey struct {
	start jobs.Time
	span  int64
}

func (k winKey) window() jobs.Window { return jobs.Window{Start: k.start, End: k.start + k.span} }

// Scheduler delegates aligned jobs round-robin across m single-machine
// schedulers.
type Scheduler struct {
	machines []sched.Scheduler
	counts   map[winKey]int         // n_W
	byJob    map[string]int         // job -> machine index
	windows  map[string]winKey      // job -> window key
	perWin   map[winKey][]stringSet // per machine: names of W-jobs
}

type stringSet map[string]struct{}

var _ sched.Scheduler = (*Scheduler)(nil)

// New builds an m-machine wrapper.
func New(m int, factory Factory) *Scheduler {
	if m < 1 {
		panic(fmt.Sprintf("multi: %d machines", m))
	}
	s := &Scheduler{
		machines: make([]sched.Scheduler, m),
		counts:   make(map[winKey]int),
		byJob:    make(map[string]int),
		windows:  make(map[string]winKey),
		perWin:   make(map[winKey][]stringSet),
	}
	for i := range s.machines {
		s.machines[i] = factory()
	}
	return s
}

// Machines returns m.
func (s *Scheduler) Machines() int { return len(s.machines) }

// Active returns the number of active jobs.
func (s *Scheduler) Active() int { return len(s.byJob) }

// Jobs returns a snapshot of the active job set.
func (s *Scheduler) Jobs() []jobs.Job {
	out := make([]jobs.Job, 0, len(s.byJob))
	for name, key := range s.windows {
		out = append(out, jobs.Job{Name: name, Window: key.window()})
	}
	return out
}

// Assignment merges the per-machine assignments, tagging each placement
// with its machine index.
func (s *Scheduler) Assignment() jobs.Assignment {
	out := make(jobs.Assignment, len(s.byJob))
	for i, m := range s.machines {
		for name, p := range m.Assignment() {
			out[name] = jobs.Placement{Machine: i, Slot: p.Slot}
		}
	}
	return out
}

// Insert delegates the job to machine (n_W mod m).
func (s *Scheduler) Insert(j jobs.Job) (metrics.Cost, error) {
	if err := j.Validate(); err != nil {
		return metrics.Cost{}, err
	}
	if !j.Window.IsAligned() {
		return metrics.Cost{}, fmt.Errorf("%w: %v", sched.ErrMisaligned, j.Window)
	}
	if _, dup := s.byJob[j.Name]; dup {
		return metrics.Cost{}, fmt.Errorf("%w: %q", sched.ErrDuplicateJob, j.Name)
	}
	key := winKey{start: j.Window.Start, span: j.Window.Span()}
	idx := s.counts[key] % len(s.machines)
	cost, err := s.machines[idx].Insert(j)
	if err != nil {
		return cost, err
	}
	s.counts[key]++
	s.byJob[j.Name] = idx
	s.windows[j.Name] = key
	s.ensurePerWin(key)[idx][j.Name] = struct{}{}
	return cost, nil
}

// Delete removes a job; if the round-robin balance breaks, one W-job
// migrates from the machine holding the newest extra to the machine that
// lost a job (at most one migration).
func (s *Scheduler) Delete(name string) (metrics.Cost, error) {
	idx, ok := s.byJob[name]
	if !ok {
		return metrics.Cost{}, fmt.Errorf("%w: %q", sched.ErrUnknownJob, name)
	}
	key := s.windows[name]
	cost, err := s.machines[idx].Delete(name)
	if err != nil {
		return cost, err
	}
	s.counts[key]--
	s.forget(name, key, idx)

	last := s.counts[key] % len(s.machines)
	if last == idx || s.counts[key] == 0 {
		return cost, nil
	}
	// Migrate one W-job from machine `last` to machine `idx`.
	mover, ok := s.anyJobOn(key, last)
	if !ok {
		return cost, fmt.Errorf("multi: balance invariant broken: no %v job on machine %d", key.window(), last)
	}
	dc, err := s.machines[last].Delete(mover)
	if err != nil {
		return cost, fmt.Errorf("multi: migration delete of %q failed: %w", mover, err)
	}
	cost.Add(dc)
	ic, err := s.machines[idx].Insert(jobs.Job{Name: mover, Window: key.window()})
	if err != nil {
		return cost, fmt.Errorf("multi: migration insert of %q failed: %w", mover, err)
	}
	cost.Add(ic)
	cost.Migrations++ // the mover crossed machines
	s.forget(mover, key, last)
	s.byJob[mover] = idx
	s.windows[mover] = key
	s.ensurePerWin(key)[idx][mover] = struct{}{}
	return cost, nil
}

func (s *Scheduler) ensurePerWin(key winKey) []stringSet {
	sets := s.perWin[key]
	if sets == nil {
		sets = make([]stringSet, len(s.machines))
		for i := range sets {
			sets[i] = make(stringSet)
		}
		s.perWin[key] = sets
	}
	return sets
}

func (s *Scheduler) forget(name string, key winKey, idx int) {
	delete(s.byJob, name)
	delete(s.windows, name)
	if sets := s.perWin[key]; sets != nil {
		delete(sets[idx], name)
	}
}

// anyJobOn returns a deterministic W-job on the given machine.
func (s *Scheduler) anyJobOn(key winKey, idx int) (string, bool) {
	sets := s.perWin[key]
	if sets == nil || len(sets[idx]) == 0 {
		return "", false
	}
	names := make([]string, 0, len(sets[idx]))
	for n := range sets[idx] {
		names = append(names, n)
	}
	sort.Strings(names)
	return names[0], true
}

// SelfCheck validates the round-robin balance invariant and the inner
// schedulers.
func (s *Scheduler) SelfCheck() error {
	for i, m := range s.machines {
		if err := m.SelfCheck(); err != nil {
			return fmt.Errorf("multi: machine %d: %w", i, err)
		}
	}
	// Recount jobs per window per machine.
	recount := make(map[winKey][]int)
	for name, idx := range s.byJob {
		key := s.windows[name]
		if recount[key] == nil {
			recount[key] = make([]int, len(s.machines))
		}
		recount[key][idx]++
	}
	for key, per := range recount {
		total := 0
		for _, c := range per {
			total += c
		}
		if total != s.counts[key] {
			return fmt.Errorf("multi: window %v count %d, tracked %d", key.window(), total, s.counts[key])
		}
		lo, hi := total/len(s.machines), (total+len(s.machines)-1)/len(s.machines)
		extras := total % len(s.machines)
		for i, c := range per {
			if c < lo || c > hi {
				return fmt.Errorf("multi: window %v machine %d holds %d jobs, want %d..%d",
					key.window(), i, c, lo, hi)
			}
			// Extras must sit on the earliest machines.
			if extras > 0 {
				want := lo
				if i < extras {
					want = hi
				}
				if c != want {
					return fmt.Errorf("multi: window %v machine %d holds %d jobs, round-robin wants %d",
						key.window(), i, c, want)
				}
			}
		}
	}
	// Inner schedulers must agree with our routing.
	for i, m := range s.machines {
		for name := range m.Assignment() {
			if s.byJob[name] != i {
				return fmt.Errorf("multi: job %q on machine %d, routed to %d", name, i, s.byJob[name])
			}
		}
	}
	return nil
}
