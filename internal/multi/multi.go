// Package multi implements the paper's Section 3 reduction from
// m-machine to single-machine reallocation scheduling for recursively
// aligned jobs.
//
// For every window W the wrapper keeps the active W-jobs balanced
// across machines: every machine holds either floor(n_W/m) or
// ceil(n_W/m) jobs of window W. Inserts delegate to a machine holding
// the fewest W-jobs (ties to the lowest index), which preserves the
// balance at zero migrations; when a delete breaks the balance, one
// W-job migrates from a machine holding the most W-jobs to the machine
// that lost one, restoring it with at most one migration per request
// (Theorem 1's migration bound). The original paper phrases this as a
// round-robin counter; the least-loaded formulation maintains the same
// floor/ceil invariant while tolerating a machine pool that changes
// size at runtime.
//
// Lemma 3 guarantees that when the overall instance is 6γ-underallocated,
// each per-machine instance is γ-underallocated, so the single-machine
// schedulers keep working.
//
// The pool is elastic (sched.Elastic): AddMachines appends fresh empty
// machines without moving any job — per-window balance may then exceed
// floor/ceil by a bounded, recorded skew that subsequent deletes repair
// one migration at a time — and RemoveMachines drains the last n
// machines, re-placing each drained job on a surviving machine (one
// migration each) or evicting it if no machine can take it.
//
//reallocvet:deterministic
package multi

import (
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Factory builds one fresh single-machine scheduler per machine.
type Factory func() sched.Scheduler

type winKey struct {
	start jobs.Time
	span  int64
}

func (k winKey) window() jobs.Window { return jobs.Window{Start: k.start, End: k.start + k.span} }

// Scheduler delegates aligned jobs across m single-machine schedulers,
// keeping each window's jobs balanced.
type Scheduler struct {
	factory  Factory
	machines []sched.Scheduler

	// names is the per-scheduler ID space; mach and wins are ID-indexed
	// (machine index and window key of each active job), replacing two
	// string-keyed maps on the per-request path. Strings survive only in
	// the public snapshots, in error texts, and as the tie-breaker for
	// migration movers (the lexicographic-mover rule predates the IDs
	// and must keep picking the same job).
	names *ident.Table
	mach  []int32 // ID-indexed machine index; -1 = unused slot
	wins  []winKey
	// perWin tracks, per machine, the interned IDs of each window's jobs.
	perWin map[winKey][]idSet
	// skewCap relaxes the floor/ceil balance invariant for windows that
	// were unbalanced by a pool resize: after AddMachines the new
	// machines hold no jobs, so a window's per-machine spread may exceed
	// 1. The cap records the spread at resize time; operations only ever
	// shrink the spread (inserts fill valleys, deletes repair one unit),
	// so the cap decays back to the strict invariant without bulk
	// migrations.
	skewCap map[winKey]int

	// evicted accumulates jobs the machines' batch rebuilds shed; see
	// sched.BatchEvictor.
	evicted []string

	// touched is foldPlan's reusable touched-window scratch (cleared
	// after every batch; the wrapper is single-threaded).
	touched map[winKey]bool
}

type idSet map[ident.ID]struct{}

var (
	_ sched.Scheduler = (*Scheduler)(nil)
	_ sched.Elastic   = (*Scheduler)(nil)
)

// New builds an m-machine wrapper.
func New(m int, factory Factory) *Scheduler {
	if m < 1 {
		panic(fmt.Sprintf("multi: %d machines", m))
	}
	s := &Scheduler{
		factory:  factory,
		machines: make([]sched.Scheduler, m),
		names:    ident.New(),
		mach:     make([]int32, 1), // ID 0 is ident.None
		wins:     make([]winKey, 1),
		perWin:   make(map[winKey][]idSet),
		skewCap:  make(map[winKey]int),
	}
	for i := range s.machines {
		s.machines[i] = factory()
	}
	return s
}

// lookup resolves an active job name to its (ID, machine index).
func (s *Scheduler) lookup(name string) (ident.ID, int, bool) {
	id, ok := s.names.Get(name)
	if !ok {
		return ident.None, 0, false
	}
	return id, int(s.mach[id]), true
}

// Machines returns the current machine count.
func (s *Scheduler) Machines() int { return len(s.machines) }

// Active returns the number of active jobs.
func (s *Scheduler) Active() int { return s.names.Len() }

// Jobs returns a snapshot of the active job set.
func (s *Scheduler) Jobs() []jobs.Job {
	out := make([]jobs.Job, 0, s.names.Len())
	s.names.Range(func(id ident.ID, name string) bool {
		out = append(out, jobs.Job{Name: name, Window: s.wins[id].window()})
		return true
	})
	return out
}

// Assignment merges the per-machine assignments, tagging each placement
// with its machine index.
func (s *Scheduler) Assignment() jobs.Assignment {
	out := make(jobs.Assignment, s.names.Len())
	for i, m := range s.machines {
		for name, p := range m.Assignment() { //reallocvet:orderinsensitive (merge keyed by unique job name; validation reports any violation)
			out[name] = jobs.Placement{Machine: i, Slot: p.Slot}
		}
	}
	return out
}

// count returns how many key-jobs machine i holds.
func (s *Scheduler) count(sets []idSet, i int) int {
	if i >= len(sets) {
		return 0
	}
	return len(sets[i])
}

// leastLoaded returns the machine among [0, limit) holding the fewest
// key-jobs, ties to the lowest index.
func (s *Scheduler) leastLoaded(key winKey, limit int) int {
	sets := s.perWin[key]
	best, bestN := 0, -1
	for i := 0; i < limit; i++ {
		n := s.count(sets, i)
		if bestN < 0 || n < bestN {
			best, bestN = i, n
		}
	}
	return best
}

// Insert delegates the job to a machine holding the fewest W-jobs.
func (s *Scheduler) Insert(j jobs.Job) (metrics.Cost, error) {
	if err := j.Validate(); err != nil {
		return metrics.Cost{}, err
	}
	if !j.Window.IsAligned() {
		return metrics.Cost{}, fmt.Errorf("%w: %v", sched.ErrMisaligned, j.Window)
	}
	if _, ok := s.names.Get(j.Name); ok {
		return metrics.Cost{}, fmt.Errorf("%w: %q", sched.ErrDuplicateJob, j.Name)
	}
	key := winKey{start: j.Window.Start, span: j.Window.Span()}
	idx := s.leastLoaded(key, len(s.machines))
	cost, err := s.machines[idx].Insert(j)
	if err != nil {
		if rerr := s.recoverMachine(idx); rerr != nil {
			return cost, rerr
		}
		return cost, err
	}
	s.commit(j.Name, key, idx)
	s.settleSkew(key)
	return cost, nil
}

// Delete removes a job; if the balance breaks (some machine holds two
// more W-jobs than the one that lost a job), one W-job migrates to the
// emptier machine (at most one migration).
func (s *Scheduler) Delete(name string) (metrics.Cost, error) {
	id, idx, ok := s.lookup(name)
	if !ok {
		return metrics.Cost{}, fmt.Errorf("%w: %q", sched.ErrUnknownJob, name)
	}
	key := s.wins[id]
	cost, err := s.machines[idx].Delete(name)
	if err != nil {
		return cost, err
	}
	s.forget(id, key, idx)
	s.names.Release(id)

	// Repair: pull one W-job from a fullest machine if it holds two more
	// than the machine that just lost a job.
	sets := s.perWin[key]
	from, fromN := -1, 0
	for i := range s.machines {
		if n := s.count(sets, i); n > fromN {
			from, fromN = i, n
		}
	}
	if from < 0 || fromN < s.count(sets, idx)+2 {
		s.settleSkew(key)
		return cost, nil
	}
	mover, moverID, ok := s.anyJobOn(key, from)
	if !ok {
		return cost, fmt.Errorf("multi: balance invariant broken: no %v job on machine %d", key.window(), from)
	}
	dc, err := s.machines[from].Delete(mover)
	if err != nil {
		return cost, fmt.Errorf("multi: migration delete of %q failed: %w", mover, err)
	}
	cost.Add(dc)
	ic, err := s.machines[idx].Insert(jobs.Job{Name: mover, Window: key.window()})
	if err != nil {
		if rerr := s.recoverMachine(idx); rerr != nil {
			return cost, rerr
		}
		return cost, fmt.Errorf("multi: migration insert of %q failed: %w", mover, err)
	}
	cost.Add(ic)
	cost.Migrations++ // the mover crossed machines
	s.forget(moverID, key, from)
	s.commitID(moverID, key, idx)
	s.settleSkew(key)
	return cost, nil
}

// AddMachines implements sched.Elastic: n fresh machines join the pool
// and no job moves. Windows whose spread now exceeds floor/ceil get a
// recorded skew allowance that later deletes repair migration by
// migration.
func (s *Scheduler) AddMachines(n int) error {
	if n < 1 {
		return fmt.Errorf("multi: AddMachines(%d)", n)
	}
	for i := 0; i < n; i++ {
		s.machines = append(s.machines, s.factory())
	}
	for key, sets := range s.perWin { //reallocvet:orderinsensitive (per-window skew bookkeeping; windows are independent)
		for len(sets) < len(s.machines) {
			sets = append(sets, make(idSet))
		}
		s.perWin[key] = sets
		s.settleSkew(key)
	}
	return nil
}

// RemoveMachines implements sched.Elastic: the last n machines drain,
// and each drained job is re-placed on a surviving machine (one
// migration each, least-loaded first) or evicted if no machine accepts
// it. At most one migration per drained job; jobs on surviving machines
// never move.
func (s *Scheduler) RemoveMachines(n int) (metrics.Cost, []jobs.Job, error) {
	var total metrics.Cost
	if n < 1 || n >= len(s.machines) {
		return total, nil, fmt.Errorf("multi: RemoveMachines(%d) on a %d-machine pool", n, len(s.machines))
	}
	keep := len(s.machines) - n

	var doomed []string
	s.names.Range(func(id ident.ID, name string) bool {
		if int(s.mach[id]) >= keep {
			doomed = append(doomed, name)
		}
		return true
	})
	sort.Strings(doomed)

	var evicted []jobs.Job
	for _, name := range doomed {
		id, idx, _ := s.lookup(name)
		key := s.wins[id]
		j := jobs.Job{Name: name, Window: key.window()}
		dc, err := s.machines[idx].Delete(name)
		if err != nil {
			return total, evicted, fmt.Errorf("multi: drain delete of %q failed: %w", name, err)
		}
		total.Add(dc)
		s.forget(id, key, idx)

		// Try the surviving machines, emptiest (for this window) first.
		placed := false
		for _, t := range s.survivorsByLoad(key, keep) {
			ic, err := s.machines[t].Insert(j)
			if err == nil {
				total.Add(ic)
				total.Migrations++
				s.commitID(id, key, t)
				placed = true
				break
			}
			if rerr := s.recoverMachine(t); rerr != nil {
				return total, evicted, rerr
			}
		}
		if !placed {
			s.names.Release(id) // the job leaves the scheduler
			evicted = append(evicted, j)
		}
	}

	for _, m := range s.machines[keep:] {
		sched.Recycle(m) // drained machines donate their structures
	}
	s.machines = s.machines[:keep]
	for key, sets := range s.perWin { //reallocvet:orderinsensitive (per-window skew bookkeeping; windows are independent)
		if len(sets) > keep {
			s.perWin[key] = sets[:keep]
		}
		s.settleSkew(key)
	}
	return total, evicted, nil
}

// recoverMachine rebuilds machine idx from its tracked jobs when a
// failed insert left it poisoned (sched.Poisoner); healthy rejections
// cost nothing. This keeps the pool usable under the retry paths that
// deliberately probe full machines (shard overflow, shrink eviction)
// even when the per-machine scheduler is a bare reservation core.
func (s *Scheduler) recoverMachine(idx int) error {
	if sched.Poisoned(s.machines[idx]) == nil {
		return nil
	}
	fresh := s.factory()
	var fail error
	s.names.Range(func(id ident.ID, name string) bool {
		if int(s.mach[id]) != idx {
			return true
		}
		if _, err := fresh.Insert(jobs.Job{Name: name, Window: s.wins[id].window()}); err != nil {
			fail = fmt.Errorf("multi: rebuild of machine %d failed reinserting %q: %w", idx, name, err)
			return false
		}
		return true
	})
	if fail != nil {
		return fail
	}
	sched.Recycle(s.machines[idx])
	s.machines[idx] = fresh
	return nil
}

// Recycle implements sched.Recycler: every machine donates its
// structures and the routing ID space resets.
func (s *Scheduler) Recycle() {
	for _, m := range s.machines {
		sched.Recycle(m)
	}
	s.names.Reset()
}

// survivorsByLoad returns [0, keep) sorted by ascending key-job count,
// ties to the lowest index.
func (s *Scheduler) survivorsByLoad(key winKey, keep int) []int {
	sets := s.perWin[key]
	out := make([]int, keep)
	for i := range out {
		out[i] = i
	}
	sort.SliceStable(out, func(a, b int) bool {
		return s.count(sets, out[a]) < s.count(sets, out[b])
	})
	return out
}

// commit interns the name and records the job on machine idx.
func (s *Scheduler) commit(name string, key winKey, idx int) {
	s.commitID(s.names.Intern(name), key, idx)
}

// commitID records an already-interned job on machine idx.
func (s *Scheduler) commitID(id ident.ID, key winKey, idx int) {
	for int(id) >= len(s.mach) {
		s.mach = append(s.mach, -1)
		s.wins = append(s.wins, winKey{})
	}
	s.mach[id] = int32(idx)
	s.wins[id] = key
	s.ensurePerWin(key)[idx][id] = struct{}{}
}

func (s *Scheduler) ensurePerWin(key winKey) []idSet {
	sets := s.perWin[key]
	if len(sets) < len(s.machines) {
		for len(sets) < len(s.machines) {
			sets = append(sets, make(idSet))
		}
		s.perWin[key] = sets
	}
	return sets
}

// forget removes the job's routing entry; it does NOT release the ID —
// callers that take the job out of the scheduler (deletes, evictions)
// release it themselves, while migration move pairs re-commit it.
func (s *Scheduler) forget(id ident.ID, key winKey, idx int) {
	s.mach[id] = -1
	if sets := s.perWin[key]; sets != nil {
		delete(sets[idx], id)
	}
}

// skew returns max-min key-job count across machines.
func (s *Scheduler) skew(key winKey) int {
	sets := s.perWin[key]
	minN, maxN := -1, 0
	for i := range s.machines {
		n := s.count(sets, i)
		if minN < 0 || n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	return maxN - minN
}

// settleSkew re-records the window's balance allowance: back to strict
// floor/ceil once the spread is <= 1, otherwise the (never-increasing)
// current spread.
func (s *Scheduler) settleSkew(key winKey) {
	if sk := s.skew(key); sk > 1 {
		s.skewCap[key] = sk
	} else {
		delete(s.skewCap, key)
	}
}

// anyJobOn returns a deterministic W-job on the given machine: the
// lexicographically smallest name, exactly as the pre-ID implementation
// picked it (a min scan instead of a full sort).
func (s *Scheduler) anyJobOn(key winKey, idx int) (string, ident.ID, bool) {
	sets := s.perWin[key]
	if sets == nil || len(sets[idx]) == 0 {
		return "", ident.None, false
	}
	best, bestID := "", ident.None
	for id := range sets[idx] { //reallocvet:orderinsensitive (min scan: computes the lexicographic minimum, order-free by construction)
		if name := s.names.Name(id); bestID == ident.None || name < best {
			best, bestID = name, id
		}
	}
	return best, bestID, true
}

// SelfCheck validates the balance invariant (floor/ceil per window,
// relaxed to the recorded skew cap for windows unbalanced by a resize)
// and the inner schedulers.
func (s *Scheduler) SelfCheck() error {
	for i, m := range s.machines {
		if err := m.SelfCheck(); err != nil {
			return fmt.Errorf("multi: machine %d: %w", i, err)
		}
	}
	// Recount jobs per window per machine and cross-check the tracked
	// sets.
	recount := make(map[winKey][]int)
	var fail error
	s.names.Range(func(id ident.ID, name string) bool {
		key := s.wins[id]
		if recount[key] == nil {
			recount[key] = make([]int, len(s.machines))
		}
		idx := int(s.mach[id])
		if idx < 0 || idx >= len(s.machines) {
			fail = fmt.Errorf("multi: job %q routed to machine %d of %d", name, idx, len(s.machines))
			return false
		}
		recount[key][idx]++
		return true
	})
	if fail != nil {
		return fail
	}
	for key, per := range recount { //reallocvet:orderinsensitive (validation: any violation fails the check; report order is immaterial)
		sets := s.perWin[key]
		for i, c := range per {
			if tracked := s.count(sets, i); tracked != c {
				return fmt.Errorf("multi: window %v machine %d holds %d jobs, tracked %d",
					key.window(), i, c, tracked)
			}
		}
		allowed := 1
		if c, ok := s.skewCap[key]; ok && c > allowed {
			allowed = c
		}
		if sk := s.skew(key); sk > allowed {
			return fmt.Errorf("multi: window %v spread %d exceeds allowance %d",
				key.window(), sk, allowed)
		}
	}
	// Inner schedulers must agree with our routing.
	for i, m := range s.machines {
		for name := range m.Assignment() { //reallocvet:orderinsensitive (merge keyed by unique job name; validation reports any violation)
			_, idx, ok := s.lookup(name)
			if !ok || idx != i {
				return fmt.Errorf("multi: job %q on machine %d, routed to %d (tracked=%v)", name, i, idx, ok)
			}
		}
	}
	return nil
}
