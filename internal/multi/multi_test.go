package multi

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/naive"
	"repro/internal/sched"
	"repro/internal/workload"
)

func win(start, end int64) jobs.Window { return jobs.Window{Start: start, End: end} }

func job(name string, start, end int64) jobs.Job {
	return jobs.Job{Name: name, Window: win(start, end)}
}

func coreFactory() sched.Scheduler { return core.New() }

func TestBalancedDelegation(t *testing.T) {
	s := New(3, coreFactory)
	for i := 0; i < 6; i++ {
		if _, err := s.Insert(job(fmt.Sprintf("j%d", i), 0, 64)); err != nil {
			t.Fatal(err)
		}
	}
	asn := s.Assignment()
	perMachine := make([]int, 3)
	for _, p := range asn {
		perMachine[p.Machine]++
	}
	for i, c := range perMachine {
		if c != 2 {
			t.Errorf("machine %d has %d jobs, want 2 (%v)", i, c, perMachine)
		}
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if err := feasible.VerifySchedule(s.Jobs(), asn, 3); err != nil {
		t.Fatal(err)
	}
}

func TestAtMostOneMigrationPerRequest(t *testing.T) {
	s := New(4, coreFactory)
	for i := 0; i < 16; i++ {
		c, err := s.Insert(job(fmt.Sprintf("j%d", i), 0, 256))
		if err != nil {
			t.Fatal(err)
		}
		if c.Migrations != 0 {
			t.Errorf("insert %d migrated %d jobs", i, c.Migrations)
		}
	}
	// Delete in an order that forces rebalancing.
	for i := 0; i < 16; i++ {
		c, err := s.Delete(fmt.Sprintf("j%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if c.Migrations > 1 {
			t.Errorf("delete %d migrated %d jobs (Theorem 1 allows 1)", i, c.Migrations)
		}
		if err := s.SelfCheck(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
}

func TestMigrationRestoresBalance(t *testing.T) {
	s := New(2, coreFactory)
	// 4 jobs with the same window: machines hold {j0,j2} and {j1,j3}.
	for i := 0; i < 4; i++ {
		if _, err := s.Insert(job(fmt.Sprintf("j%d", i), 0, 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Deleting j0 leaves {1, 2} — still within floor/ceil, no migration.
	c, err := s.Delete("j0")
	if err != nil {
		t.Fatal(err)
	}
	if c.Migrations != 0 {
		t.Errorf("balanced delete migrated %d jobs, want 0", c.Migrations)
	}
	// Deleting j2 empties machine 0 while machine 1 holds 2: one job must
	// migrate back to restore floor/ceil.
	c, err = s.Delete("j2")
	if err != nil {
		t.Fatal(err)
	}
	if c.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", c.Migrations)
	}
	per := make([]int, 2)
	for _, p := range s.Assignment() {
		per[p.Machine]++
	}
	if per[0] != 1 || per[1] != 1 {
		t.Errorf("post-delete balance %v, want [1 1]", per)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteFromFullestNoMigration(t *testing.T) {
	s := New(2, coreFactory)
	for i := 0; i < 3; i++ {
		if _, err := s.Insert(job(fmt.Sprintf("j%d", i), 0, 64)); err != nil {
			t.Fatal(err)
		}
	}
	// j2 sits on machine 0 (the fuller machine): deleting it needs no move.
	c, err := s.Delete("j2")
	if err != nil {
		t.Fatal(err)
	}
	if c.Migrations != 0 {
		t.Errorf("migrations = %d, want 0", c.Migrations)
	}
}

func TestRejections(t *testing.T) {
	s := New(2, coreFactory)
	if _, err := s.Insert(job("bad", 1, 3)); !errors.Is(err, sched.ErrMisaligned) {
		t.Errorf("misaligned: %v", err)
	}
	if _, err := s.Insert(job("a", 0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(job("a", 0, 2)); !errors.Is(err, sched.ErrDuplicateJob) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := s.Delete("ghost"); !errors.Is(err, sched.ErrUnknownJob) {
		t.Errorf("unknown: %v", err)
	}
}

func TestMachinesAccessor(t *testing.T) {
	if New(5, coreFactory).Machines() != 5 {
		t.Error("Machines() wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("m=0 accepted")
		}
	}()
	New(0, coreFactory)
}

// Random multi-machine churn with full invariant checking, against both
// inner scheduler types.
func TestRandomChurn(t *testing.T) {
	for _, m := range []int{2, 4} {
		for name, factory := range map[string]Factory{
			"core":  coreFactory,
			"naive": func() sched.Scheduler { return naive.New() },
		} {
			g, err := workload.NewGenerator(workload.Config{
				Seed: int64(m), Machines: m, Gamma: 12, Horizon: 1024, Steps: 300,
			})
			if err != nil {
				t.Fatal(err)
			}
			s := New(m, factory)
			if _, err := sched.RunChecked(s, g.Sequence(), nil); err != nil {
				t.Fatalf("m=%d inner=%s: %v", m, name, err)
			}
			if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), m); err != nil {
				t.Fatalf("m=%d inner=%s: %v", m, name, err)
			}
		}
	}
}

// Property: per-request migrations never exceed 1, across seeds.
func TestMigrationBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := workload.NewGenerator(workload.Config{
			Seed: seed, Machines: 3, Gamma: 12, Horizon: 512, Steps: 150,
		})
		if err != nil {
			return false
		}
		s := New(3, coreFactory)
		for _, r := range g.Sequence() {
			c, err := sched.Apply(s, r)
			if err != nil || c.Migrations > 1 {
				return false
			}
		}
		return s.SelfCheck() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Lemma 3 measured: when the overall instance is 6γ-underallocated, the
// per-machine instances the round-robin delegation produces are
// γ-underallocated.
func TestLemma3PerMachineUnderallocation(t *testing.T) {
	const m, gamma = 3, 4
	g, err := workload.NewGenerator(workload.Config{
		Seed: 77, Machines: m, Gamma: 6 * gamma, Horizon: 2048, Steps: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, coreFactory)
	if _, err := sched.Run(s, g.Sequence(), nil); err != nil {
		t.Fatal(err)
	}
	// Partition the active jobs by machine and check each single-machine
	// instance.
	perMachine := make([][]jobs.Job, m)
	asn := s.Assignment()
	for _, j := range s.Jobs() {
		mi := asn[j.Name].Machine
		perMachine[mi] = append(perMachine[mi], j)
	}
	for mi, js := range perMachine {
		if len(js) == 0 {
			continue
		}
		if !feasible.Underallocated(js, 1, gamma) {
			t.Errorf("machine %d instance not %d-underallocated (%d jobs): Lemma 3 violated",
				mi, gamma, len(js))
		}
	}
}
