// Package naive implements the paper's naive pecking-order reallocating
// scheduler (Lemma 4) for recursively aligned unit jobs on one machine.
//
// To insert a job j with span 2^i: place it in any empty slot of its
// window; otherwise displace any job k scheduled inside j's window whose
// span is at least 2^{i+1} (such a k must exist in any feasible instance,
// and alignment guarantees W_j ⊆ W_k), then recursively reinsert k.
// Cascades visit strictly increasing spans, so each insert reallocates
// O(min{log n, log Δ}) jobs.
//
// The implementation keeps the occupied slots in a sorted slice so that
// free-slot and victim searches cost O(log n + window occupancy) rather
// than O(window span); spans up to 2^62 are handled without scanning.
package naive

import (
	"fmt"
	"sort"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
)

type activeJob struct {
	name   string
	window jobs.Window
	slot   jobs.Time
}

// Scheduler is the Lemma 4 scheduler. The zero value is not usable; call
// New.
type Scheduler struct {
	jobs     map[string]*activeJob
	bySlot   map[jobs.Time]*activeJob
	occupied []jobs.Time // sorted slot coordinates
}

var _ sched.Scheduler = (*Scheduler)(nil)

// New returns an empty single-machine naive pecking-order scheduler.
func New() *Scheduler {
	return &Scheduler{
		jobs:   make(map[string]*activeJob),
		bySlot: make(map[jobs.Time]*activeJob),
	}
}

// Machines returns 1: this is a single-machine scheduler.
func (s *Scheduler) Machines() int { return 1 }

// Active returns the number of active jobs.
func (s *Scheduler) Active() int { return len(s.jobs) }

// Jobs returns a snapshot of the active job set.
func (s *Scheduler) Jobs() []jobs.Job {
	out := make([]jobs.Job, 0, len(s.jobs))
	for _, a := range s.jobs {
		out = append(out, jobs.Job{Name: a.name, Window: a.window})
	}
	return out
}

// Assignment returns a snapshot of the schedule (machine always 0).
func (s *Scheduler) Assignment() jobs.Assignment {
	out := make(jobs.Assignment, len(s.jobs))
	for _, a := range s.jobs {
		out[a.name] = jobs.Placement{Machine: 0, Slot: a.slot}
	}
	return out
}

// Insert adds an aligned job, cascading displacements through strictly
// increasing spans as needed (Lemma 4).
func (s *Scheduler) Insert(j jobs.Job) (metrics.Cost, error) {
	if err := j.Validate(); err != nil {
		return metrics.Cost{}, err
	}
	if !j.Window.IsAligned() {
		return metrics.Cost{}, fmt.Errorf("%w: %v", sched.ErrMisaligned, j.Window)
	}
	if _, dup := s.jobs[j.Name]; dup {
		return metrics.Cost{}, fmt.Errorf("%w: %q", sched.ErrDuplicateJob, j.Name)
	}

	var cost metrics.Cost
	cur := &activeJob{name: j.Name, window: j.Window}
	s.jobs[j.Name] = cur
	// moves logs each displacement so a mid-cascade infeasibility can be
	// rolled back, leaving the schedule exactly as before the request.
	type move struct {
		placed *activeJob
		slot   jobs.Time
		victim *activeJob
	}
	var moves []move
	for {
		// Look for the lowest empty slot in cur's window.
		if slot, ok := s.freeSlot(cur.window); ok {
			s.place(cur, slot)
			cost.Reallocations++
			return cost, nil
		}
		// Window fully occupied: displace an occupant with longer span.
		victim := s.victim(cur.window)
		if victim == nil {
			// Every slot holds a job with span <= span(cur): all those
			// windows nest inside cur's window, so the instance is
			// infeasible. Roll the cascade back to keep state clean.
			for i := len(moves) - 1; i >= 0; i-- {
				mv := moves[i]
				s.unplace(mv.placed)
				s.place(mv.victim, mv.slot)
			}
			delete(s.jobs, j.Name)
			return metrics.Cost{}, &sched.InfeasibleError{
				Req:    jobs.Request{Kind: jobs.Insert, Name: j.Name, Window: j.Window},
				Detail: fmt.Sprintf("window %v fully occupied by equal-or-shorter spans", cur.window),
			}
		}
		slot := victim.slot
		s.unplace(victim)
		s.place(cur, slot)
		moves = append(moves, move{placed: cur, slot: slot, victim: victim})
		cost.Reallocations++
		cur = victim // reinsert the displaced job at its longer span
	}
}

// Delete removes an active job. Deletions never reallocate other jobs.
func (s *Scheduler) Delete(name string) (metrics.Cost, error) {
	a, ok := s.jobs[name]
	if !ok {
		return metrics.Cost{}, fmt.Errorf("%w: %q", sched.ErrUnknownJob, name)
	}
	s.unplace(a)
	delete(s.jobs, name)
	return metrics.Cost{}, nil
}

// freeSlot returns the lowest unoccupied slot in w, if any.
func (s *Scheduler) freeSlot(w jobs.Window) (jobs.Time, bool) {
	i := sort.Search(len(s.occupied), func(k int) bool { return s.occupied[k] >= w.Start })
	expect := w.Start
	for ; i < len(s.occupied) && s.occupied[i] < w.End; i++ {
		if s.occupied[i] != expect {
			return expect, true // gap before this occupied slot
		}
		expect++
	}
	if expect < w.End {
		return expect, true
	}
	return 0, false
}

// victim returns the occupant of w (lowest slot first) whose span is
// strictly larger than w's span, or nil if none exists.
func (s *Scheduler) victim(w jobs.Window) *activeJob {
	i := sort.Search(len(s.occupied), func(k int) bool { return s.occupied[k] >= w.Start })
	for ; i < len(s.occupied) && s.occupied[i] < w.End; i++ {
		a := s.bySlot[s.occupied[i]]
		if a.window.Span() > w.Span() {
			return a
		}
	}
	return nil
}

func (s *Scheduler) place(a *activeJob, slot jobs.Time) {
	if _, taken := s.bySlot[slot]; taken {
		panic(fmt.Sprintf("naive: slot %d already occupied", slot))
	}
	a.slot = slot
	s.bySlot[slot] = a
	i := sort.Search(len(s.occupied), func(k int) bool { return s.occupied[k] >= slot })
	s.occupied = append(s.occupied, 0)
	copy(s.occupied[i+1:], s.occupied[i:])
	s.occupied[i] = slot
}

func (s *Scheduler) unplace(a *activeJob) {
	delete(s.bySlot, a.slot)
	i := sort.Search(len(s.occupied), func(k int) bool { return s.occupied[k] >= a.slot })
	if i >= len(s.occupied) || s.occupied[i] != a.slot {
		panic(fmt.Sprintf("naive: slot %d missing from occupied index", a.slot))
	}
	s.occupied = append(s.occupied[:i], s.occupied[i+1:]...)
}

// SelfCheck validates all internal invariants.
func (s *Scheduler) SelfCheck() error {
	if len(s.jobs) != len(s.bySlot) || len(s.jobs) != len(s.occupied) {
		return fmt.Errorf("naive: size mismatch jobs=%d bySlot=%d occupied=%d",
			len(s.jobs), len(s.bySlot), len(s.occupied))
	}
	for name, a := range s.jobs {
		if a.name != name {
			return fmt.Errorf("naive: job %q indexed under %q", a.name, name)
		}
		if !a.window.Contains(a.slot) {
			return fmt.Errorf("naive: job %q at slot %d outside window %v", name, a.slot, a.window)
		}
		if s.bySlot[a.slot] != a {
			return fmt.Errorf("naive: slot index for %d does not point at job %q", a.slot, name)
		}
		if !a.window.IsAligned() {
			return fmt.Errorf("naive: job %q window %v misaligned", name, a.window)
		}
	}
	for i := 1; i < len(s.occupied); i++ {
		if s.occupied[i-1] >= s.occupied[i] {
			return fmt.Errorf("naive: occupied index unsorted at %d", i)
		}
	}
	for _, t := range s.occupied {
		if _, ok := s.bySlot[t]; !ok {
			return fmt.Errorf("naive: occupied slot %d missing from bySlot", t)
		}
	}
	return nil
}
