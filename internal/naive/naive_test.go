package naive

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/sched"
)

func win(start, end int64) jobs.Window { return jobs.Window{Start: start, End: end} }

func job(name string, start, end int64) jobs.Job {
	return jobs.Job{Name: name, Window: win(start, end)}
}

func mustInsert(t *testing.T, s *Scheduler, j jobs.Job) metrics.Cost {
	t.Helper()
	c, err := s.Insert(j)
	if err != nil {
		t.Fatalf("insert %v: %v", j, err)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatalf("after insert %v: %v", j, err)
	}
	return c
}

func TestInsertIntoEmpty(t *testing.T) {
	s := New()
	c := mustInsert(t, s, job("a", 0, 4))
	if c.Reallocations != 1 || c.Migrations != 0 {
		t.Errorf("cost = %+v", c)
	}
	if s.Active() != 1 {
		t.Errorf("active = %d", s.Active())
	}
}

func TestRejectsMisaligned(t *testing.T) {
	s := New()
	_, err := s.Insert(job("a", 1, 3))
	if !errors.Is(err, sched.ErrMisaligned) {
		t.Errorf("err = %v", err)
	}
}

func TestRejectsDuplicate(t *testing.T) {
	s := New()
	mustInsert(t, s, job("a", 0, 4))
	if _, err := s.Insert(job("a", 0, 8)); !errors.Is(err, sched.ErrDuplicateJob) {
		t.Errorf("err = %v", err)
	}
}

func TestDeleteUnknown(t *testing.T) {
	s := New()
	if _, err := s.Delete("ghost"); !errors.Is(err, sched.ErrUnknownJob) {
		t.Errorf("err = %v", err)
	}
}

func TestDisplacementCascade(t *testing.T) {
	s := New()
	// Fill slots 0,1 with span-4 jobs, then insert span-1 jobs that
	// displace them.
	mustInsert(t, s, job("big1", 0, 4))
	mustInsert(t, s, job("big2", 0, 4))
	a := s.Assignment()
	if a["big1"].Slot != 0 || a["big2"].Slot != 1 {
		t.Fatalf("setup placements %v", a)
	}
	// span-1 job at slot 0 displaces big1, which moves to slot 2.
	c := mustInsert(t, s, job("tiny", 0, 1))
	if c.Reallocations != 2 {
		t.Errorf("cascade cost = %+v, want 2 reallocations", c)
	}
	a = s.Assignment()
	if a["tiny"].Slot != 0 {
		t.Errorf("tiny at %d", a["tiny"].Slot)
	}
	if err := feasible.VerifySchedule(s.Jobs(), a, 1); err != nil {
		t.Fatal(err)
	}
}

func TestInfeasibleDetected(t *testing.T) {
	s := New()
	mustInsert(t, s, job("a", 0, 1))
	_, err := s.Insert(job("b", 0, 1))
	if !errors.Is(err, sched.ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	// State must be unchanged and consistent.
	if s.Active() != 1 {
		t.Errorf("active = %d after failed insert", s.Active())
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteFreesSlot(t *testing.T) {
	s := New()
	mustInsert(t, s, job("a", 0, 1))
	if _, err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, s, job("b", 0, 1)) // slot reusable
}

func TestLargeSparseWindows(t *testing.T) {
	// Spans up to 2^40 must not be scanned slot-by-slot.
	s := New()
	huge := int64(1) << 40
	for i := 0; i < 64; i++ {
		mustInsert(t, s, jobs.Job{Name: fmt.Sprintf("j%d", i), Window: win(0, huge)})
	}
	if s.Active() != 64 {
		t.Fatal("inserts lost")
	}
	if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), 1); err != nil {
		t.Fatal(err)
	}
}

// Lemma 4: the cascade reallocates at most one job per distinct span, so
// cost <= log2(Δ) + 1.
func TestLemma4CostBound(t *testing.T) {
	s := New()
	// Build the worst case: one job of each span 2^k fills slot k... more
	// precisely, fill a full nested structure and insert a span-1 job.
	const maxExp = 12
	id := 0
	// For each span 2^e place jobs so the bottom slots are contested.
	for e := maxExp; e >= 1; e-- {
		span := int64(1) << e
		// Half-fill the window [0, span) so that the smaller spans below
		// still fit but the final span-1 insert cascades through.
		nJobs := int(span / 4)
		if nJobs == 0 {
			nJobs = 1
		}
		for k := 0; k < nJobs; k++ {
			mustInsert(t, s, jobs.Job{Name: fmt.Sprintf("j%d", id), Window: win(0, span)})
			id++
		}
	}
	// Insert span-1 jobs at [0,1): each insertion may cascade through
	// increasing spans but never more than one job per span.
	bound := maxExp + 2
	c := mustInsert(t, s, job("probe", 0, 1))
	if c.Reallocations > bound {
		t.Errorf("cascade cost %d exceeds Lemma 4 bound %d", c.Reallocations, bound)
	}
}

// Property: on random feasible aligned sequences the scheduler maintains
// a feasible schedule and per-op cost <= log2(Δ)+1.
func TestRandomAlignedSequencesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		names := []string{}
		maxSpanSeen := int64(1)
		for step := 0; step < 120; step++ {
			if len(names) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(names))
				if _, err := s.Delete(names[i]); err != nil {
					return false
				}
				names = append(names[:i], names[i+1:]...)
				continue
			}
			e := uint(rng.Intn(7))
			span := int64(1) << e
			start := mathx.AlignDown(int64(rng.Intn(128)), span)
			j := jobs.Job{Name: fmt.Sprintf("s%d", step), Window: win(start, start+span)}
			c, err := s.Insert(j)
			if err != nil {
				if errors.Is(err, sched.ErrInfeasible) {
					continue // fine: random instance got too tight
				}
				return false
			}
			if span > maxSpanSeen {
				maxSpanSeen = span
			}
			if c.Reallocations > mathx.Log2Floor(maxSpanSeen)+2 {
				return false
			}
			names = append(names, j.Name)
		}
		if err := s.SelfCheck(); err != nil {
			return false
		}
		return feasible.VerifySchedule(s.Jobs(), s.Assignment(), 1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Differential property: whenever offline EDF says the next insert is
// feasible, the naive scheduler must succeed too (on aligned instances,
// pecking order finds a schedule whenever one exists).
func TestCompletenessAgainstEDF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var active []jobs.Job
		for step := 0; step < 80; step++ {
			e := uint(rng.Intn(5))
			span := int64(1) << e
			start := mathx.AlignDown(int64(rng.Intn(64)), span)
			j := jobs.Job{Name: fmt.Sprintf("s%d", step), Window: win(start, start+span)}
			trial := append(append([]jobs.Job{}, active...), j)
			edfOK := feasible.IsFeasible(trial, 1)
			_, err := s.Insert(j)
			ok := err == nil
			if ok != edfOK {
				return false
			}
			if ok {
				active = trial
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunCheckedIntegration(t *testing.T) {
	reqs := []jobs.Request{
		jobs.InsertReq("a", 0, 8),
		jobs.InsertReq("b", 0, 8),
		jobs.InsertReq("c", 0, 2),
		jobs.DeleteReq("b"),
		jobs.InsertReq("d", 4, 8),
	}
	rec := metrics.NewRecorder()
	s := New()
	if _, err := sched.RunChecked(s, reqs, rec); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != len(reqs) {
		t.Errorf("recorded %d costs", rec.Len())
	}
	if s.Active() != 3 {
		t.Errorf("active = %d", s.Active())
	}
}
