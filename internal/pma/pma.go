// Package pma implements a packed-memory array (sparse array) as a
// reallocation problem, the companion example the paper's introduction
// cites ("Many existing algorithms, when looked in the right way, can be
// viewed as reallocation problems, e.g., ... maintaining a sparse array
// [9, 17, 31–33]").
//
// A PMA keeps n ordered keys in an array of size O(n) with gaps, so that
// an insertion only rewrites a small neighborhood. In reallocation terms:
// the resource is array cells, a request is an insert/delete of a key,
// and the reallocation cost is the number of keys moved to new cells.
// Classic density-threshold rebalancing achieves amortized O(log² n)
// moves per update — the experiment harness (E15) measures exactly that
// shape, putting the paper's scheduler (O(log* n)) side by side with
// another member of its reallocation framework.
package pma

import (
	"fmt"
	"sort"

	"repro/internal/mathx"
)

// PMA is a packed-memory array of distinct int64 keys.
type PMA struct {
	cells []int64 // 0 = empty (keys must be nonzero); else the key
	used  int

	// density thresholds at the root; leaves interpolate toward
	// (minLeaf, maxLeaf).
	minRoot, maxRoot float64
	minLeaf, maxLeaf float64

	leafSize int

	// moves accumulates reallocations (keys written to a new cell) of
	// the last operation.
	moves int
}

// New returns an empty PMA with standard density thresholds.
func New() *PMA {
	p := &PMA{
		minRoot: 0.35, maxRoot: 0.75,
		minLeaf: 0.10, maxLeaf: 0.92,
	}
	p.reset(8)
	return p
}

func (p *PMA) reset(capacity int) {
	p.cells = make([]int64, capacity)
	p.leafSize = leafSizeFor(capacity)
}

// leafSizeFor picks Θ(log capacity) leaf segments, as a power of two.
func leafSizeFor(capacity int) int {
	ls := int(mathx.CeilPow2(int64(mathx.Log2Ceil(int64(capacity))) + 1))
	if ls < 4 {
		ls = 4
	}
	if ls > capacity {
		ls = capacity
	}
	return ls
}

// Len returns the number of stored keys.
func (p *PMA) Len() int { return p.used }

// Capacity returns the backing array size.
func (p *PMA) Capacity() int { return len(p.cells) }

// LastMoves returns how many keys the most recent operation moved to a
// different cell (the reallocation cost).
func (p *PMA) LastMoves() int { return p.moves }

// Keys returns the stored keys in order.
func (p *PMA) Keys() []int64 {
	out := make([]int64, 0, p.used)
	for _, v := range p.cells {
		if v != 0 {
			out = append(out, v)
		}
	}
	return out
}

// Contains reports whether key is stored.
func (p *PMA) Contains(key int64) bool {
	_, ok := p.find(key)
	return ok
}

// find locates the cell of key, or the insertion region.
func (p *PMA) find(key int64) (int, bool) {
	// Binary search over non-empty cells: collect predecessor by scanning
	// leaves. For clarity (this is a measurement substrate, not a
	// performance PMA) use a simple scan within a binary-searched leaf
	// range: find the first non-empty cell with value >= key.
	lo, hi := 0, len(p.cells)
	for lo < hi {
		mid := (lo + hi) / 2
		// Find nearest non-empty at or after mid.
		k := mid
		for k < hi && p.cells[k] == 0 {
			k++
		}
		if k == hi || p.cells[k] >= key {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// lo is the first position whose next non-empty value is >= key.
	for k := lo; k < len(p.cells); k++ {
		if p.cells[k] != 0 {
			if p.cells[k] == key {
				return k, true
			}
			return k, false
		}
	}
	return len(p.cells), false
}

// Insert adds a key (must be nonzero and absent); returns the number of
// keys moved (the reallocation cost).
func (p *PMA) Insert(key int64) (int, error) {
	if key == 0 {
		return 0, fmt.Errorf("pma: key 0 is reserved")
	}
	p.moves = 0
	if _, exists := p.find(key); exists {
		return 0, fmt.Errorf("pma: duplicate key %d", key)
	}
	if p.used == len(p.cells) {
		p.resize() // defensive: thresholds normally prevent 100% fill
	}
	pos, _ := p.find(key)
	landed := p.insertAt(pos, key)
	p.used++
	p.moves++ // the inserted key's own placement
	p.rebalanceAfter(landed)
	return p.moves, nil
}

// Delete removes a key; returns the number of keys moved.
func (p *PMA) Delete(key int64) (int, error) {
	p.moves = 0
	idx, ok := p.find(key)
	if !ok {
		return 0, fmt.Errorf("pma: unknown key %d", key)
	}
	p.cells[idx] = 0
	p.used--
	p.rebalanceAfter(idx)
	return p.moves, nil
}

// insertAt places key at or near pos, shifting toward the nearest gap if
// the exact cell is occupied. It returns the cell where key landed.
func (p *PMA) insertAt(pos int, key int64) int {
	if pos >= len(p.cells) {
		// key is greater than every stored key: append after the last
		// element, shifting left into the last gap if needed.
		last := len(p.cells) - 1
		if p.cells[last] == 0 {
			p.cells[last] = key
			return last
		}
		gap := p.gapLeft(len(p.cells))
		if gap < 0 {
			panic("pma: no gap anywhere (density invariant broken)")
		}
		for i := gap; i < last; i++ {
			p.cells[i] = p.cells[i+1]
			p.moves++
		}
		p.cells[last] = key
		return last
	}
	if p.cells[pos] == 0 {
		p.cells[pos] = key
		return pos
	}
	// Shift right toward the first gap; if none, shift left.
	if gap := p.gapRight(pos); gap >= 0 {
		for i := gap; i > pos; i-- {
			p.cells[i] = p.cells[i-1]
			p.moves++
		}
		p.cells[pos] = key
		return pos
	}
	if gap := p.gapLeft(pos); gap >= 0 {
		for i := gap; i < pos-1; i++ {
			p.cells[i] = p.cells[i+1]
			p.moves++
		}
		p.cells[pos-1] = key
		return pos - 1
	}
	panic("pma: no gap anywhere (density invariant broken)")
}

func (p *PMA) gapRight(pos int) int {
	for i := pos; i < len(p.cells); i++ {
		if p.cells[i] == 0 {
			return i
		}
	}
	return -1
}

func (p *PMA) gapLeft(pos int) int {
	for i := pos - 1; i >= 0; i-- {
		if p.cells[i] == 0 {
			return i
		}
	}
	return -1
}

// rebalanceAfter restores density invariants on the smallest enclosing
// window of pos that is within thresholds, rebuilding the whole array
// (doubling or halving) when even the root violates them.
func (p *PMA) rebalanceAfter(pos int) {
	size := p.leafSize
	start := (pos / size) * size
	depth := mathx.Log2Ceil(int64(len(p.cells) / p.leafSize))
	if depth < 1 {
		depth = 1
	}
	for level := 0; ; level++ {
		if size > len(p.cells) {
			break
		}
		count := 0
		for i := start; i < start+size && i < len(p.cells); i++ {
			if p.cells[i] != 0 {
				count++
			}
		}
		lo, hi := p.thresholds(level, depth)
		density := float64(count) / float64(size)
		if density >= lo && density <= hi {
			if level == 0 {
				return // leaf already fine
			}
			p.spread(start, size)
			return
		}
		if size == len(p.cells) {
			break // root out of bounds: resize
		}
		size *= 2
		start = (start / size) * size
	}
	p.resize()
}

// thresholds interpolates the density bounds from leaf (level 0) to root.
func (p *PMA) thresholds(level, depth int) (float64, float64) {
	if level > depth {
		level = depth
	}
	f := float64(level) / float64(depth)
	lo := p.minLeaf + (p.minRoot-p.minLeaf)*f
	hi := p.maxLeaf + (p.maxRoot-p.maxLeaf)*f
	return lo, hi
}

// spread redistributes the window's keys evenly, counting moves.
func (p *PMA) spread(start, size int) {
	keys := make([]int64, 0, size)
	old := make(map[int64]int, size)
	for i := start; i < start+size; i++ {
		if p.cells[i] != 0 {
			keys = append(keys, p.cells[i])
			old[p.cells[i]] = i
			p.cells[i] = 0
		}
	}
	for k, key := range keys {
		tgt := start + k*size/len(keys)
		p.cells[tgt] = key
		if old[key] != tgt {
			p.moves++
		}
	}
}

// resize doubles (or halves) the backing array and spreads everything.
func (p *PMA) resize() {
	keys := p.Keys()
	newCap := len(p.cells)
	for float64(len(keys)) > p.maxRoot*float64(newCap) {
		newCap *= 2
	}
	for newCap > 8 && float64(len(keys)) < p.minRoot*float64(newCap)/2 {
		newCap /= 2
	}
	oldPos := make(map[int64]int, len(keys))
	for i, v := range p.cells {
		if v != 0 {
			oldPos[v] = i
		}
	}
	p.reset(newCap)
	for k, key := range keys {
		tgt := k * newCap / (len(keys) + 1)
		p.cells[tgt] = key
		if oldPos[key] != tgt {
			p.moves++
		}
	}
}

// SelfCheck validates ordering and the stored count.
func (p *PMA) SelfCheck() error {
	keys := p.Keys()
	if len(keys) != p.used {
		return fmt.Errorf("pma: used=%d but %d keys present", p.used, len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, k int) bool { return keys[i] < keys[k] }) {
		return fmt.Errorf("pma: keys out of order: %v", keys)
	}
	if p.used > len(p.cells) {
		return fmt.Errorf("pma: used %d exceeds capacity %d", p.used, len(p.cells))
	}
	return nil
}
