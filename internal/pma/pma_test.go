package pma

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestInsertOrdered(t *testing.T) {
	p := New()
	for i := int64(1); i <= 100; i++ {
		if _, err := p.Insert(i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if err := p.SelfCheck(); err != nil {
			t.Fatalf("after %d: %v", i, err)
		}
	}
	if p.Len() != 100 {
		t.Errorf("len = %d", p.Len())
	}
	keys := p.Keys()
	for i := range keys {
		if keys[i] != int64(i+1) {
			t.Fatalf("keys[%d] = %d", i, keys[i])
		}
	}
}

func TestInsertReverse(t *testing.T) {
	p := New()
	for i := int64(100); i >= 1; i-- {
		if _, err := p.Insert(i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := p.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 100 {
		t.Errorf("len = %d", p.Len())
	}
}

func TestRejections(t *testing.T) {
	p := New()
	if _, err := p.Insert(0); err == nil {
		t.Error("key 0 accepted")
	}
	if _, err := p.Insert(7); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(7); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := p.Delete(9); err == nil {
		t.Error("unknown delete accepted")
	}
}

func TestDelete(t *testing.T) {
	p := New()
	for i := int64(1); i <= 64; i++ {
		if _, err := p.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 64; i += 2 {
		if _, err := p.Delete(i); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if err := p.SelfCheck(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
	if p.Len() != 32 {
		t.Errorf("len = %d", p.Len())
	}
	if p.Contains(3) || !p.Contains(4) {
		t.Error("membership wrong after deletes")
	}
}

func TestCapacityTracksN(t *testing.T) {
	p := New()
	for i := int64(1); i <= 1000; i++ {
		if _, err := p.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	if c := p.Capacity(); c > 8*p.Len() {
		t.Errorf("capacity %d too large for %d keys", c, p.Len())
	}
	for i := int64(1); i <= 950; i++ {
		if _, err := p.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	if c := p.Capacity(); c > 64*p.Len() {
		t.Errorf("capacity %d did not shrink for %d keys", c, p.Len())
	}
}

// The reallocation-cost shape: amortized moves per insert grow like
// O(log² n) — polylogarithmic, not linear. Ascending inserts are the
// classic worst case.
func TestAmortizedMovesLogSquared(t *testing.T) {
	amortized := func(n int64) float64 {
		p := New()
		total := 0
		for i := int64(1); i <= n; i++ {
			moves, err := p.Insert(i)
			if err != nil {
				t.Fatal(err)
			}
			total += moves
		}
		return float64(total) / float64(n)
	}
	small, large := amortized(1024), amortized(8192)
	if small < 1 || large < 1 {
		t.Fatalf("amortized moves %.2f/%.2f suspiciously low", small, large)
	}
	// log²(8192)/log²(1024) = (13/10)² = 1.69: the 8x-larger run may cost
	// at most ~2.5x more per op if growth is polylogarithmic. A linear
	// shape would give ~8x.
	ratio := large / small
	if ratio > 3 {
		t.Errorf("amortized cost grew %.2fx for 8x n — faster than log² (small=%.1f large=%.1f)",
			ratio, small, large)
	}
	// And the absolute value stays within a generous polylog envelope.
	lg := float64(mathx.Log2Ceil(8192))
	if large > 16*lg*lg {
		t.Errorf("amortized moves %.1f exceed 16·log²(n) = %.1f", large, 16*lg*lg)
	}
}

// Property: random insert/delete mixes keep order and count.
func TestRandomChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New()
		live := map[int64]bool{}
		for step := 0; step < 300; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				var victim int64
				for k := range live {
					victim = k
					break
				}
				if _, err := p.Delete(victim); err != nil {
					return false
				}
				delete(live, victim)
			} else {
				key := rng.Int63n(10000) + 1
				if live[key] {
					continue
				}
				if _, err := p.Insert(key); err != nil {
					return false
				}
				live[key] = true
			}
			if p.SelfCheck() != nil {
				return false
			}
		}
		return p.Len() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
