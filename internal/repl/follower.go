package repl

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/wal"
	"repro/internal/wire"
)

// FollowerConfig configures a warm follower.
type FollowerConfig struct {
	// Primary is the primary's replication address (host:port).
	Primary string
	// Dir is the follower's replication root: the fencing-epoch file
	// lives directly under it and each tenant's mirrored WAL in
	// Dir/TenantDir(tenant).
	Dir string
	// NewScheduler builds the warm scheduler a tenant's shipped
	// checkpoint is installed into (ck is nil when the primary had no
	// checkpoint yet). Normally a realloc.NewShardedFromCheckpoint
	// closure; it must use the same options the primary runs with so
	// tail replay reproduces the primary's decisions.
	NewScheduler func(tenant string, ck *wal.Checkpoint) (*shard.Scheduler, error)
	// Fsync is passed to the WALs opened at promotion.
	Fsync bool
	// PromoteAfter, when positive, self-promotes after the primary has
	// been silent this long: no frame received (the primary heartbeats
	// every SourceConfig.HeartbeatEvery, so a healthy idle primary is
	// never silent) and no successful handshake. It fires even while
	// the TCP connection stays established — a wedged primary or a
	// data-blackholing partition looks exactly like a dead one. Must
	// be several multiples of the primary's heartbeat interval. Zero
	// means only an explicit Promote frame or PromoteNow promotes.
	PromoteAfter time.Duration
	// IdleTimeout bounds inter-byte silence on a session when
	// PromoteAfter is zero (default 15s): a session that silent is
	// torn down and redialed rather than blocking in a read forever.
	// When PromoteAfter is positive it takes precedence and silence
	// promotes instead.
	IdleTimeout time.Duration
	// RedialEvery is the pause between dial attempts (default 250ms).
	RedialEvery time.Duration
	// DialTimeout bounds each dial and the handshake read (default 5s).
	DialTimeout time.Duration
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c *FollowerConfig) fill() error {
	if c.Primary == "" {
		return errors.New("repl: FollowerConfig.Primary is empty")
	}
	if c.Dir == "" {
		return errors.New("repl: FollowerConfig.Dir is empty")
	}
	if c.NewScheduler == nil {
		return errors.New("repl: FollowerConfig.NewScheduler is nil")
	}
	if c.RedialEvery <= 0 {
		c.RedialEvery = 250 * time.Millisecond
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 15 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// replica is one tenant's warm state: the scheduler records replay
// into, the mirror of the primary's segment files, and the ingest
// cursor that keeps the byte stream contiguous.
type replica struct {
	tenant string
	dir    string
	sched  *shard.Scheduler

	minSeg  uint64           // first segment not covered by the checkpoint
	seg     uint64           // segment currently being ingested (0 = none yet)
	written int64            // contiguous bytes ingested into seg
	done    map[uint64]int64 // finished segments -> their final size
	file    *os.File         // mirror of segment seg
	buf     []byte           // ingested bytes not yet forming a whole record
	hdrSkip int              // header bytes of seg still to drop before records

	installed bool
	records   int
	requests  int
	failures  int
}

// FollowerStats is a point-in-time snapshot of a follower's progress.
type FollowerStats struct {
	Tenants   int     // tenants with state installed
	Warm      int     // tenants fully installed (snapshot complete)
	Records   int     // WAL records replayed across all tenants
	Requests  int     // individual requests those records carried
	Failures  int     // replay rejections (benign checkpoint overlap)
	Epoch     uint64  // highest fencing epoch seen (or persisted)
	Promoted  bool    // promotion has completed
	PromoteMS float64 // wall-clock promotion work, milliseconds
	Reason    string  // what triggered the promotion
}

// Follower mirrors a primary's WALs and keeps warm schedulers one
// record behind the primary's acknowledgements. Run drives it; after
// promotion (explicit, manual, or timeout) the schedulers are
// WAL-attached and ready to serve, and Adopt hands them out.
type Follower struct {
	cfg FollowerConfig

	mu       sync.Mutex
	tenants  map[string]*replica
	epoch    uint64
	promoted bool
	stats    FollowerStats

	promoteReq atomic.Bool // PromoteNow was called
	promotedCh chan struct{}
	closedCh   chan struct{}
	closeOnce  sync.Once

	connMu sync.Mutex
	conn   net.Conn // live primary connection, for interrupt kicks
}

// NewFollower builds a Follower rooted at cfg.Dir, resuming the
// persisted fencing epoch if one exists.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	epoch, err := ReadEpoch(cfg.Dir)
	if err != nil {
		return nil, err
	}
	return &Follower{
		cfg:        cfg,
		tenants:    make(map[string]*replica),
		epoch:      epoch,
		promotedCh: make(chan struct{}),
		closedCh:   make(chan struct{}),
	}, nil
}

// Promoted is closed once promotion completes.
func (f *Follower) Promoted() <-chan struct{} { return f.promotedCh }

// Epoch returns the highest fencing epoch seen so far.
func (f *Follower) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Stats snapshots replication progress.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.Epoch = f.epoch
	st.Promoted = f.promoted
	for _, r := range f.tenants {
		st.Tenants++
		if r.installed {
			st.Warm++
		}
		st.Records += r.records
		st.Requests += r.requests
		st.Failures += r.failures
	}
	return st
}

// PromoteNow promotes without waiting for a Promote frame or the
// primary-loss timeout. Safe from any goroutine; idempotent.
func (f *Follower) PromoteNow() {
	f.promoteReq.Store(true)
	f.kickConn()
}

// Close stops Run without promoting. The replicas are discarded.
func (f *Follower) Close() error {
	f.closeOnce.Do(func() { close(f.closedCh) })
	f.kickConn()
	return nil
}

func (f *Follower) kickConn() {
	f.connMu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.connMu.Unlock()
}

func (f *Follower) setConn(nc net.Conn) {
	f.connMu.Lock()
	f.conn = nc
	f.connMu.Unlock()
}

// Adopt hands tenant's promoted scheduler to the caller (nil if the
// follower never installed that tenant). Call only after Promoted is
// closed; ownership transfers, and a second Adopt returns nil.
func (f *Follower) Adopt(tenant string) *shard.Scheduler {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.tenants[tenant]
	if r == nil || !f.promoted {
		return nil
	}
	delete(f.tenants, tenant)
	return r.sched
}

// Tenants lists the tenants with adoptable schedulers.
func (f *Follower) Tenants() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.tenants))
	for t := range f.tenants {
		names = append(names, t)
	}
	return names
}

// Run follows the primary until promotion or Close: dial, handshake,
// ingest frames; on connection loss redial, and if the primary stays
// silent past PromoteAfter (when set), self-promote. Silence is
// measured from the last frame received — NOT from connection state
// or session boundaries — so a primary that wedges while the kernel
// keeps answering keepalives, or accepts dials but never completes a
// handshake, still trips the timeout. Returns nil after a successful
// promotion or Close, an error only for fatal local failures (a
// corrupt mirror, a failed promotion).
func (f *Follower) Run() error {
	lastContact := time.Now()
	for {
		select {
		case <-f.closedCh:
			f.discard()
			return nil
		default:
		}
		if f.promoteReq.Load() {
			return f.promote(0, "operator request")
		}
		if f.cfg.PromoteAfter > 0 && time.Since(lastContact) >= f.cfg.PromoteAfter {
			return f.promote(0, fmt.Sprintf("primary unreachable for %v", f.cfg.PromoteAfter))
		}
		nc, err := net.DialTimeout("tcp", f.cfg.Primary, f.cfg.DialTimeout)
		if err != nil {
			f.sleep()
			continue
		}
		promoted, serr := f.session(nc, &lastContact)
		nc.Close()
		f.setConn(nil)
		if promoted {
			return serr
		}
		if serr != nil {
			var fatal *fatalError
			if errors.As(serr, &fatal) {
				f.discard()
				return serr
			}
			f.cfg.Logf("repl: session ended: %v", serr)
		}
		f.sleep()
	}
}

func (f *Follower) sleep() {
	select {
	case <-time.After(f.cfg.RedialEvery):
	case <-f.closedCh:
	}
}

// fatalError marks local failures no reconnect can fix.
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

// idleReader sets a fresh read deadline before every Read, so the
// wrapped connection's timeout measures inter-byte silence rather than
// total frame transfer time: a slow-but-flowing snapshot chunk keeps
// extending the deadline, a wedged primary does not.
type idleReader struct {
	nc     net.Conn
	window time.Duration
}

func (ir idleReader) Read(p []byte) (int, error) {
	ir.nc.SetReadDeadline(time.Now().Add(ir.window))
	return ir.nc.Read(p)
}

// session runs one primary connection: handshake, then the frame loop.
// It returns (true, err) when the session ended in a promotion, and
// stamps *lastContact with every frame received so the caller's
// primary-loss accounting is keyed to proof of life, not to session
// boundaries.
func (f *Follower) session(nc net.Conn, lastContact *time.Time) (bool, error) {
	f.setConn(nc)
	f.mu.Lock()
	epoch := f.epoch
	f.mu.Unlock()
	buf, err := wire.WriteFrame(nc, nil, &wire.Frame{Kind: wire.KindFollow, Version: wire.Version, Epoch: epoch})
	if err != nil {
		return false, err
	}
	nc.SetReadDeadline(time.Now().Add(f.cfg.DialTimeout))
	fr, buf, err := wire.ReadFrame(nc, buf)
	if err != nil {
		return false, err
	}
	switch fr.Kind {
	case wire.KindFollowAck:
	case wire.KindErr:
		return false, fmt.Errorf("repl: primary refused follow: %s (%s)", fr.Code, fr.Detail)
	default:
		return false, fmt.Errorf("repl: expected FollowAck, got %v", fr.Kind)
	}
	f.mu.Lock()
	if fr.Epoch > f.epoch {
		f.epoch = fr.Epoch
	}
	f.mu.Unlock()
	*lastContact = time.Now()
	f.cfg.Logf("repl: following %s at epoch %d", f.cfg.Primary, fr.Epoch)

	// The frame loop reads through an idle deadline: PromoteAfter when
	// set (silence promotes), IdleTimeout otherwise (silence redials).
	// The primary heartbeats between data frames, so only a wedged or
	// partitioned primary ever goes silent that long.
	window := f.cfg.IdleTimeout
	if f.cfg.PromoteAfter > 0 && f.cfg.PromoteAfter < window {
		window = f.cfg.PromoteAfter
	}
	r := idleReader{nc: nc, window: window}
	for {
		fr, buf, err = wire.ReadFrame(r, buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				if f.cfg.PromoteAfter > 0 && time.Since(*lastContact) >= f.cfg.PromoteAfter {
					f.cfg.Logf("repl: primary silent for %v with the connection still up; treating it as lost", time.Since(*lastContact))
					return true, f.promote(0, fmt.Sprintf("primary silent for %v", f.cfg.PromoteAfter))
				}
				return false, fmt.Errorf("repl: no frame from primary in %v; dropping the session", window)
			}
			// Connection loss, Close, or a PromoteNow kick. The read
			// loop has already ingested everything the primary managed
			// to send before dying — the kernel delivers buffered bytes
			// even after a SIGKILL.
			return false, err
		}
		*lastContact = time.Now()
		switch fr.Kind {
		case wire.KindPing:
			// Heartbeat: its arrival already refreshed lastContact.
		case wire.KindCheckpointInstall:
			err = f.install(fr.Tenant, fr.Data)
		case wire.KindSegmentChunk, wire.KindTail:
			err = f.ingest(fr.Tenant, fr.Seg, fr.Off, fr.Data)
		case wire.KindInstalled:
			f.markInstalled(fr.Tenant)
		case wire.KindPromote:
			f.cfg.Logf("repl: primary handed off: %s", fr.Detail)
			if perr := f.promote(fr.Epoch, "primary handoff"); perr != nil {
				return true, perr
			}
			nc.SetWriteDeadline(time.Now().Add(f.cfg.DialTimeout))
			wire.WriteFrame(nc, buf[:0], &wire.Frame{Kind: wire.KindPromoteAck, Epoch: f.Epoch()})
			return true, nil
		default:
			err = fmt.Errorf("repl: unexpected %v frame", fr.Kind)
		}
		if err != nil {
			return false, err
		}
	}
}

// install begins (or restarts) tenant's snapshot: wipe the local
// mirror, persist the checkpoint image, and build a warm scheduler
// from it. A reconnect replays the whole install, so any partial state
// from a broken session is discarded wholesale.
func (f *Follower) install(tenant string, ckData []byte) error {
	dir := filepath.Join(f.cfg.Dir, TenantDir(tenant))
	var ck *wal.Checkpoint
	if len(ckData) > 0 {
		var err error
		if ck, err = wal.DecodeCheckpoint(ckData); err != nil {
			return fmt.Errorf("repl: shipped checkpoint for %q: %w", tenant, err)
		}
	}
	f.mu.Lock()
	if old := f.tenants[tenant]; old != nil {
		old.close()
		delete(f.tenants, tenant)
	}
	f.mu.Unlock()
	if err := os.RemoveAll(dir); err != nil {
		return &fatalError{fmt.Errorf("repl: reset mirror for %q: %w", tenant, err)}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return &fatalError{fmt.Errorf("repl: create mirror for %q: %w", tenant, err)}
	}
	if len(ckData) > 0 {
		if err := writeFileSync(wal.CheckpointPath(dir), ckData); err != nil {
			return &fatalError{fmt.Errorf("repl: persist checkpoint for %q: %w", tenant, err)}
		}
	}
	s, err := f.cfg.NewScheduler(tenant, ck)
	if err != nil {
		return &fatalError{fmt.Errorf("repl: build scheduler for %q: %w", tenant, err)}
	}
	r := &replica{tenant: tenant, dir: dir, sched: s, minSeg: 1, done: make(map[uint64]int64)}
	if ck != nil {
		r.minSeg = ck.StartSeg
	}
	f.mu.Lock()
	f.tenants[tenant] = r
	f.mu.Unlock()
	f.cfg.Logf("repl: installing %q (checkpoint: %d jobs, replay from segment %d)",
		tenant, ckJobs(ck), r.minSeg)
	return nil
}

func ckJobs(ck *wal.Checkpoint) int {
	if ck == nil {
		return 0
	}
	return len(ck.Jobs)
}

func (f *Follower) markInstalled(tenant string) {
	f.mu.Lock()
	n := -1
	if r := f.tenants[tenant]; r != nil {
		r.installed = true
		n = r.records
	}
	f.mu.Unlock()
	if n >= 0 {
		f.cfg.Logf("repl: %q installed (%d records replayed so far)", tenant, n)
	}
}

// ingest feeds one shipped byte span into tenant's replica: mirror it
// to the local segment file and replay every newly completed record.
// Spans for one tenant arrive in replayable order (install chunks,
// then the tails buffered during install, then live tails), possibly
// overlapping; the (seg, written) cursor dedupes overlaps and rejects
// gaps — a gap means the stream is corrupt and the session must
// restart with a fresh install.
func (f *Follower) ingest(tenant string, seg uint64, off int64, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.tenants[tenant]
	if r == nil {
		return fmt.Errorf("repl: span for %q before its CheckpointInstall", tenant)
	}
	if seg < r.minSeg {
		return nil // covered by the installed checkpoint image
	}
	if r.seg != 0 && seg < r.seg {
		// A replayed overlap from the install/live handover: it must be
		// fully contained in what we already ingested.
		if end, ok := r.done[seg]; !ok || off+int64(len(data)) > end {
			return fmt.Errorf("repl: %q segment %d span [%d,%d) outside ingested prefix", tenant, seg, off, off+int64(len(data)))
		}
		return nil
	}
	if r.seg == 0 || seg > r.seg {
		// Advancing to a new segment: the previous one must have ended
		// on a record boundary, and the new one must start at 0.
		if len(r.buf) > 0 {
			return fmt.Errorf("repl: %q segment %d ended mid-record (%d dangling bytes)", tenant, r.seg, len(r.buf))
		}
		if off != 0 {
			return fmt.Errorf("repl: %q segment %d starts at offset %d, want 0", tenant, seg, off)
		}
		if r.file != nil {
			r.done[r.seg] = r.written
			r.file.Close()
		}
		file, err := os.OpenFile(wal.SegmentPath(r.dir, seg), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return &fatalError{fmt.Errorf("repl: mirror segment %d for %q: %w", seg, tenant, err)}
		}
		r.seg, r.written, r.file, r.hdrSkip = seg, 0, file, wal.SegmentHeaderLen
	}
	if off > r.written {
		return fmt.Errorf("repl: %q segment %d gap: span starts at %d, ingested through %d", tenant, seg, off, r.written)
	}
	if _, err := r.file.WriteAt(data, off); err != nil {
		return &fatalError{fmt.Errorf("repl: mirror write %q segment %d: %w", tenant, seg, err)}
	}
	if off+int64(len(data)) <= r.written {
		return nil // complete overlap, already replayed
	}
	fresh := data[r.written-off:]
	r.written += int64(len(fresh))
	if r.hdrSkip > 0 {
		n := r.hdrSkip
		if n > len(fresh) {
			n = len(fresh)
		}
		r.hdrSkip -= n
		fresh = fresh[n:]
	}
	r.buf = append(r.buf, fresh...)
	recs, valid := wal.ScanRecords(r.buf)
	for _, rec := range recs {
		r.apply(rec)
	}
	r.buf = r.buf[:copy(r.buf, r.buf[valid:])]
	return nil
}

// apply replays one record through the normal admission paths with
// logging off — the same discipline as realloc.OpenRecovered's replay.
// Rejections are counted, not fatal: a request that failed on the
// primary mutated state the same way the failed replay does, and
// checkpoint-overlap duplicates are benign by design.
func (r *replica) apply(rec wal.Record) {
	r.records++
	switch rec.Kind {
	case wal.KindRequest:
		r.requests++
		if _, err := r.sched.Apply(rec.Req); err != nil {
			r.failures++
		}
	case wal.KindBatch:
		r.requests += len(rec.Batch)
		if _, err := r.sched.ApplyBatch(rec.Batch); err != nil {
			var be *sched.BatchError
			if errors.As(err, &be) {
				r.failures += be.Failed
			} else {
				r.failures++
			}
		}
	case wal.KindResize:
		var err error
		if rec.Resize.Shard >= 0 {
			_, err = r.sched.ResizeShard(rec.Resize.Shard, rec.Resize.Delta)
		} else {
			_, err = r.sched.Resize(rec.Resize.Machines)
		}
		if err != nil {
			r.failures++
		}
	}
}

func (r *replica) close() {
	if r.file != nil {
		r.file.Close()
		r.file = nil
	}
	if r.sched != nil {
		r.sched.Close()
		r.sched = nil
	}
}

// discard drops every replica without promoting (Close path).
func (f *Follower) discard() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for t, r := range f.tenants {
		r.close()
		delete(f.tenants, t)
	}
}

// promote turns the follower into a primary: persist the fencing epoch
// (max(seen, wire)+1 for self-promotion, the wire epoch for an
// explicit handoff), then for every installed tenant sync the mirror,
// open its WAL, and attach it to the warm scheduler. After promote the
// schedulers append to their own logs and Adopt hands them out.
// Partially installed tenants are discarded loudly AND durably: their
// mirrors are an incomplete prefix of the primary's WAL, so a
// tombstone (MarkDiscarded) blocks any later recovery path from
// silently serving that stale state. After a self-promotion (no
// Promote frame sealed the old primary) a background loop dials the
// old primary with the new epoch until it is fenced.
func (f *Follower) promote(wireEpoch uint64, reason string) error {
	start := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return nil
	}
	newEpoch := wireEpoch
	if newEpoch <= f.epoch {
		newEpoch = f.epoch + 1
	}
	// The fence: the epoch is durable BEFORE any write is accepted, so
	// a zombie primary can be recognized by any future follower.
	if err := WriteEpoch(f.cfg.Dir, newEpoch); err != nil {
		return &fatalError{fmt.Errorf("repl: persist epoch %d: %w", newEpoch, err)}
	}
	f.epoch = newEpoch
	for t, r := range f.tenants {
		if !r.installed {
			f.cfg.Logf("repl: DISCARDING partially installed tenant %q at promotion: its mirror is incomplete", t)
			r.close()
			delete(f.tenants, t)
			if err := MarkDiscarded(r.dir, fmt.Sprintf("install incomplete at promotion (%s)", reason)); err != nil {
				return &fatalError{fmt.Errorf("repl: tombstone discarded tenant %q: %w", t, err)}
			}
			continue
		}
		if r.file != nil {
			if err := r.file.Sync(); err != nil {
				return &fatalError{fmt.Errorf("repl: sync mirror for %q: %w", t, err)}
			}
			r.file.Close()
			r.file = nil
		}
		// wal.Open re-reads the mirror (validating headers and CRCs)
		// and truncates any trailing partial record — bytes the replica
		// ingested but never replayed, so the on-disk log and the warm
		// scheduler end at the same record.
		log, _, err := wal.Open(r.dir, wal.Options{Fsync: f.cfg.Fsync})
		if err != nil {
			return &fatalError{fmt.Errorf("repl: open promoted WAL for %q: %w", t, err)}
		}
		r.sched.AttachWAL(log)
	}
	f.promoted = true
	f.stats.PromoteMS = float64(time.Since(start).Microseconds()) / 1000
	f.stats.Reason = reason
	close(f.promotedCh)
	f.cfg.Logf("repl: PROMOTED at epoch %d in %.1fms (%s)", newEpoch, f.stats.PromoteMS, reason)
	if wireEpoch == 0 {
		// Self-promotion: the old primary never sealed itself and may
		// still be alive behind an asymmetric partition, acking writes
		// the new epoch will never have. Nothing in the topology would
		// ever carry the new epoch to it (a promoted follower serves,
		// it does not dial), so carry it there explicitly.
		go f.fenceOldPrimary(newEpoch)
	}
	return nil
}

// fenceRetryEvery paces fenceOldPrimary's dial attempts.
const fenceRetryEvery = time.Second

// fenceOldPrimary dials the deposed primary's replication address with
// the new epoch until the handshake is refused with CodeFenced (the
// old primary has recorded its deposition and sealed) or the follower
// is closed. This actively closes the split-brain window a unilateral
// promotion opens; the window itself is documented in the README.
func (f *Follower) fenceOldPrimary(epoch uint64) {
	var buf []byte
	for {
		select {
		case <-f.closedCh:
			return
		default:
		}
		nc, err := net.DialTimeout("tcp", f.cfg.Primary, f.cfg.DialTimeout)
		if err == nil {
			nc.SetDeadline(time.Now().Add(f.cfg.DialTimeout))
			buf, err = wire.WriteFrame(nc, buf, &wire.Frame{Kind: wire.KindFollow, Version: wire.Version, Epoch: epoch})
			if err == nil {
				fr, rbuf, rerr := wire.ReadFrame(nc, buf)
				buf = rbuf
				if rerr == nil && fr.Kind == wire.KindErr && fr.Code == wire.CodeFenced {
					nc.Close()
					f.cfg.Logf("repl: old primary at %s acknowledged the fence at epoch %d", f.cfg.Primary, epoch)
					return
				}
			}
			nc.Close()
		}
		select {
		case <-f.closedCh:
			return
		case <-time.After(fenceRetryEvery):
		}
	}
}

// writeFileSync writes data durably: temp file, fsync, rename, dir sync.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	g, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := g.Write(data); err != nil {
		g.Close()
		os.Remove(tmp)
		return err
	}
	if err := g.Sync(); err != nil {
		g.Close()
		os.Remove(tmp)
		return err
	}
	if err := g.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
