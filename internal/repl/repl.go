// Package repl ships the write-ahead log to warm followers and hands
// the primary role over on failure.
//
// The primary side is a Source: each tenant's WAL registers a shipping
// feed (Export returns the wal.Options.Observer callback), and every
// connected follower receives, per tenant, the latest checkpoint image
// (KindCheckpointInstall), the retained segment files
// (KindSegmentChunk), an end-of-snapshot marker (KindInstalled), and
// from then on every group commit the moment it is durable
// (KindTail), interleaved with KindPing heartbeats so an idle primary
// is distinguishable from a wedged one. Because the WAL observer runs
// after the write and before the acknowledgement callbacks, a write
// acked to a client has always been handed to the shipper first: for a
// follower that has finished installing, acked ⇒ shipped.
//
// The follower side is a Follower: it dials the primary, installs each
// tenant's checkpoint into a warm shard.Scheduler (built by the
// caller, normally via realloc.NewShardedFromCheckpoint), mirrors the
// shipped segment bytes to its own WAL directory, and replays each
// complete record through the normal admission paths with logging off
// — the same replay discipline as realloc.OpenRecovered. Promotion
// (explicit KindPromote from a sealing primary, PromoteNow, or a
// primary-loss timeout keyed off the last frame received) persists the
// new fencing epoch, opens the mirrored WALs, and attaches them,
// leaving fully warm schedulers ready to serve. A tenant still
// installing at promotion is discarded and its mirror directory
// tombstoned (MarkDiscarded), so no recovery path can later mistake
// the incomplete mirror for a real WAL.
//
// Fencing follows the rule documented with the wire replication kinds:
// a follower promotes to epoch max(seen)+1 and persists it before
// accepting writes; a Source whose epoch is below a connecting
// follower's knows it has been deposed and refuses with CodeFenced
// (surfacing it through Fenced and SourceConfig.OnFenced). After a
// unilateral promotion the new primary dials the old one with the new
// epoch until the fence is acknowledged; the divergence window this
// covers is documented in the README.
package repl

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// TenantDir maps a tenant name to a filesystem-safe directory name:
// ASCII letters, digits, '-', '_' and '.' pass through, everything
// else is %XX-escaped. The mapping is injective, so two tenants never
// share a WAL directory. The primary (cmd/reallocd) and the follower
// use the same mapping, which keeps their directory layouts
// comparable.
func TenantDir(tenant string) string {
	var b strings.Builder
	for i := 0; i < len(tenant); i++ {
		c := tenant[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// epochFile is the name of the fencing-epoch file under a replication
// root directory.
const epochFile = "EPOCH"

// discardedFile marks a tenant mirror directory whose install never
// completed when its follower promoted: the bytes under it are an
// incomplete, never-synced prefix of the old primary's WAL and must
// not be recovered from.
const discardedFile = "DISCARDED"

// MarkDiscarded durably drops a promotion tombstone into a tenant
// mirror directory. Recovery paths must check Discarded before opening
// such a directory as a WAL: recovering an incomplete mirror would
// silently serve stale state, including acked writes the mirror never
// received.
func MarkDiscarded(dir, reason string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeFileSync(filepath.Join(dir, discardedFile), []byte(reason+"\n"))
}

// Discarded reports whether dir carries a promotion tombstone, and the
// reason recorded when it was dropped.
func Discarded(dir string) (reason string, ok bool) {
	data, err := os.ReadFile(filepath.Join(dir, discardedFile))
	if err != nil {
		return "", false
	}
	return strings.TrimSpace(string(data)), true
}

// ReadEpoch returns the fencing epoch persisted under root, or 0 when
// none has ever been written (a first-generation primary).
func ReadEpoch(root string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(root, epochFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: corrupt epoch file %s: %w", filepath.Join(root, epochFile), err)
	}
	return n, nil
}

// WriteEpoch durably persists the fencing epoch under root
// (write-to-temp, fsync, rename, fsync dir). Promotion calls this
// BEFORE the follower starts accepting writes — that ordering is what
// makes the epoch a fence.
func WriteEpoch(root string, epoch uint64) error {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return err
	}
	path := filepath.Join(root, epochFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(strconv.FormatUint(epoch, 10) + "\n"); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(root); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
