package repl_test

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	realloc "repro"
	"repro/internal/jobs"
	"repro/internal/repl"
	"repro/internal/shard"
	"repro/internal/wal"
	"repro/internal/wire"
)

func TestTenantDir(t *testing.T) {
	cases := map[string]string{
		"acme":      "acme",
		"a/b":       "a%2Fb",
		"..":        "..", // dots pass through; the %XX escape keeps '/' out
		"Ünicode":   "%C3%9Cnicode",
		"a b":       "a%20b",
		"x-y_z.9":   "x-y_z.9",
		"":          "",
		"load-0":    "load-0",
		"per%cent":  "per%25cent",
		"tab\there": "tab%09here",
	}
	for in, want := range cases {
		if got := repl.TenantDir(in); got != want {
			t.Errorf("TenantDir(%q) = %q, want %q", in, got, want)
		}
	}
	// Injectivity spot check: escaping distinguishes the escape char.
	if repl.TenantDir("a%2Fb") == repl.TenantDir("a/b") {
		t.Error("TenantDir is not injective: the escaped and raw forms collide")
	}
}

func TestEpochRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if e, err := repl.ReadEpoch(dir); err != nil || e != 0 {
		t.Fatalf("fresh dir: ReadEpoch = %d, %v; want 0, nil", e, err)
	}
	if err := repl.WriteEpoch(dir, 7); err != nil {
		t.Fatalf("WriteEpoch: %v", err)
	}
	if e, err := repl.ReadEpoch(dir); err != nil || e != 7 {
		t.Fatalf("ReadEpoch = %d, %v; want 7, nil", e, err)
	}
}

// stackOptions is the scheduler configuration shared by the primary
// and the follower — replay only reproduces the primary's decisions
// when both sides run the same stack.
func stackOptions() []realloc.Option {
	return []realloc.Option{realloc.WithMachines(8), realloc.WithShards(2)}
}

func newFollowerSched(_ string, ck *wal.Checkpoint) (*shard.Scheduler, error) {
	return realloc.NewShardedFromCheckpoint(ck, stackOptions()...)
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func sameSnapshot(t *testing.T, what string, want, got shard.Snapshot) {
	t.Helper()
	if len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("%s: %d jobs, want %d", what, len(got.Jobs), len(want.Jobs))
	}
	if len(got.Assignment) != len(want.Assignment) {
		t.Fatalf("%s: %d placements, want %d", what, len(got.Assignment), len(want.Assignment))
	}
	for name, pl := range want.Assignment {
		g, ok := got.Assignment[name]
		if !ok {
			t.Fatalf("%s: job %q missing", what, name)
		}
		if g != pl {
			t.Fatalf("%s: job %q placed at %+v, want %+v", what, name, g, pl)
		}
	}
}

// TestWarmFollowerPromoteNow is the end-to-end happy path: a follower
// connects before any writes, stays one group commit behind through a
// mid-stream checkpoint, and an operator promotion yields a scheduler
// whose schedule matches the primary's exactly.
func TestWarmFollowerPromoteNow(t *testing.T) {
	primaryDir := t.TempDir()
	src := repl.NewSource(repl.SourceConfig{Epoch: 0, Logf: t.Logf})
	addr, err := src.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer src.Close()

	obs := src.Export("acme", primaryDir)
	prim, _, err := realloc.OpenRecovered(primaryDir,
		append(stackOptions(), realloc.WithWALObserver(obs))...)
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	defer prim.Close()

	folDir := t.TempDir()
	fol, err := repl.NewFollower(repl.FollowerConfig{
		Primary:      addr.String(),
		Dir:          folDir,
		NewScheduler: newFollowerSched,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("new follower: %v", err)
	}
	defer fol.Close()
	runErr := make(chan error, 1)
	go func() { runErr <- fol.Run() }()
	waitUntil(t, "follower warm", func() bool { return fol.Stats().Warm == 1 })

	records := 0
	for i := 0; i < 150; i++ {
		r := jobs.InsertReq(fmt.Sprintf("job-%03d", i), jobs.Time(i*16), jobs.Time(i*16+8))
		if _, err := prim.Apply(r); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		records++
		if i == 75 {
			if err := prim.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
	}
	for i := 0; i < 30; i++ {
		if _, err := prim.Apply(jobs.DeleteReq(fmt.Sprintf("job-%03d", i*3))); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		records++
	}
	want := prim.Snapshot()

	// Every one of those Applies was acked only after its group commit
	// was handed to the shipper, so the follower converges on exactly
	// `records` replayed records.
	waitUntil(t, "tail replay", func() bool { return fol.Stats().Records >= records })
	if st := fol.Stats(); st.Records != records {
		t.Fatalf("follower replayed %d records, want %d", st.Records, records)
	}
	if st := fol.Stats(); st.Failures != 0 {
		t.Fatalf("follower counted %d replay failures, want 0", st.Failures)
	}

	fol.PromoteNow()
	if err := <-runErr; err != nil {
		t.Fatalf("follower run: %v", err)
	}
	if e, _ := repl.ReadEpoch(folDir); e != 1 {
		t.Fatalf("promoted epoch on disk = %d, want 1", e)
	}

	adopted := fol.Adopt("acme")
	if adopted == nil {
		t.Fatal("Adopt returned nil after promotion")
	}
	defer adopted.Close()
	sameSnapshot(t, "promoted follower", want, adopted.Snapshot())

	// The promoted scheduler is a real primary: it accepts new writes
	// and logs them to its own (mirrored, now attached) WAL.
	if _, err := adopted.Apply(jobs.InsertReq("post-promote", 100000, 100008)); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	if fol.Adopt("acme") != nil {
		t.Fatal("second Adopt should return nil")
	}
}

// TestLateJoinSelfPromote covers the other failover leg: a follower
// that installs an existing checkpoint + segment residue (late join),
// loses the primary, and self-promotes after PromoteAfter. The
// promoted state must match the primary's final schedule, and survive
// a cold restart from the mirrored directory.
func TestLateJoinSelfPromote(t *testing.T) {
	primaryDir := t.TempDir()
	src := repl.NewSource(repl.SourceConfig{Epoch: 0, Logf: t.Logf})
	addr, err := src.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}

	obs := src.Export("acme", primaryDir)
	prim, _, err := realloc.OpenRecovered(primaryDir,
		append(stackOptions(), realloc.WithWALObserver(obs))...)
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	for i := 0; i < 60; i++ {
		if _, err := prim.Apply(jobs.InsertReq(fmt.Sprintf("early-%02d", i), jobs.Time(i*16), jobs.Time(i*16+8))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := prim.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for i := 0; i < 40; i++ {
		if _, err := prim.Apply(jobs.InsertReq(fmt.Sprintf("late-%02d", i), jobs.Time((i+100)*16), jobs.Time((i+100)*16+8))); err != nil {
			t.Fatalf("residue insert %d: %v", i, err)
		}
	}
	want := prim.Snapshot()

	folDir := t.TempDir()
	fol, err := repl.NewFollower(repl.FollowerConfig{
		Primary:      addr.String(),
		Dir:          folDir,
		NewScheduler: newFollowerSched,
		PromoteAfter: 300 * time.Millisecond,
		RedialEvery:  20 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("new follower: %v", err)
	}
	defer fol.Close()
	runErr := make(chan error, 1)
	go func() { runErr <- fol.Run() }()
	waitUntil(t, "late join install", func() bool {
		st := fol.Stats()
		return st.Warm == 1 && st.Records >= 40 // the 40 post-checkpoint records
	})

	// Primary dies; the follower self-promotes once the loss outlasts
	// PromoteAfter.
	prim.Close()
	src.Close()
	if err := <-runErr; err != nil {
		t.Fatalf("follower run: %v", err)
	}
	st := fol.Stats()
	if !st.Promoted {
		t.Fatalf("follower stats not promoted: %+v", st)
	}
	if e := fol.Epoch(); e != 1 {
		t.Fatalf("promoted epoch = %d, want 1", e)
	}

	adopted := fol.Adopt("acme")
	if adopted == nil {
		t.Fatal("Adopt returned nil after self-promotion")
	}
	sameSnapshot(t, "self-promoted follower", want, adopted.Snapshot())
	if _, err := adopted.Apply(jobs.InsertReq("fresh", 1000000, 1000008)); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	adopted.Close()

	// Cold restart: the mirror is a real WAL directory.
	reopened, rec, err := realloc.OpenRecovered(filepath.Join(folDir, repl.TenantDir("acme")), stackOptions()...)
	if err != nil {
		t.Fatalf("reopen mirrored WAL: %v", err)
	}
	defer reopened.Close()
	if !rec.CheckpointLoaded {
		t.Error("mirrored directory lost the checkpoint image")
	}
	snap := reopened.Snapshot()
	if len(snap.Jobs) != len(want.Jobs)+1 { // +1 for "fresh"
		t.Fatalf("cold restart holds %d jobs, want %d", len(snap.Jobs), len(want.Jobs)+1)
	}
}

// TestFencedPrimaryRefused: a follower that promoted past the primary
// proves the primary deposed — the handshake must be refused with
// CodeFenced and the Source must surface Fenced().
func TestFencedPrimaryRefused(t *testing.T) {
	src := repl.NewSource(repl.SourceConfig{Epoch: 3, Logf: t.Logf})
	addr, err := src.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer src.Close()

	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	buf, err := wire.WriteFrame(nc, nil, &wire.Frame{Kind: wire.KindFollow, Version: wire.Version, Epoch: 5})
	if err != nil {
		t.Fatalf("write follow: %v", err)
	}
	fr, _, err := wire.ReadFrame(nc, buf)
	if err != nil {
		t.Fatalf("read refusal: %v", err)
	}
	if fr.Kind != wire.KindErr || fr.Code != wire.CodeFenced {
		t.Fatalf("got %v/%v, want Err/CodeFenced", fr.Kind, fr.Code)
	}
	if !src.Fenced() {
		t.Error("source did not record being fenced")
	}

	// An equal-epoch follower is fine: fencing only trips on HIGHER.
	nc2, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer nc2.Close()
	buf, err = wire.WriteFrame(nc2, nil, &wire.Frame{Kind: wire.KindFollow, Version: wire.Version, Epoch: 3})
	if err != nil {
		t.Fatalf("write follow 2: %v", err)
	}
	fr, _, err = wire.ReadFrame(nc2, buf)
	if err != nil {
		t.Fatalf("read ack: %v", err)
	}
	if fr.Kind != wire.KindFollowAck || fr.Epoch != 3 {
		t.Fatalf("got %v epoch %d, want FollowAck epoch 3", fr.Kind, fr.Epoch)
	}
}

// TestHandoff drives the graceful path at the repl layer: the primary
// seals its WAL, hands off, and the follower acks only after it is
// promoted and serving.
func TestHandoff(t *testing.T) {
	primaryDir := t.TempDir()
	src := repl.NewSource(repl.SourceConfig{Epoch: 0, Logf: t.Logf})
	addr, err := src.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer src.Close()

	obs := src.Export("acme", primaryDir)
	prim, _, err := realloc.OpenRecovered(primaryDir,
		append(stackOptions(), realloc.WithWALObserver(obs))...)
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}

	fol, err := repl.NewFollower(repl.FollowerConfig{
		Primary:      addr.String(),
		Dir:          t.TempDir(),
		NewScheduler: newFollowerSched,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("new follower: %v", err)
	}
	defer fol.Close()
	runErr := make(chan error, 1)
	go func() { runErr <- fol.Run() }()
	waitUntil(t, "follower warm", func() bool { return fol.Stats().Warm == 1 })

	for i := 0; i < 50; i++ {
		if _, err := prim.Apply(jobs.InsertReq(fmt.Sprintf("j-%02d", i), jobs.Time(i*16), jobs.Time(i*16+8))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	want := prim.Snapshot()

	// Seal the write path (flushes and closes the WAL: its final group
	// commits ship through the observer before Close returns), then
	// hand off.
	prim.Close()
	epoch, err := src.Handoff("planned maintenance")
	if err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if epoch != 1 {
		t.Fatalf("handoff epoch = %d, want 1", epoch)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("follower run: %v", err)
	}

	adopted := fol.Adopt("acme")
	if adopted == nil {
		t.Fatal("Adopt returned nil after handoff")
	}
	defer adopted.Close()
	sameSnapshot(t, "handoff follower", want, adopted.Snapshot())
	if got := fol.Epoch(); got != 1 {
		t.Fatalf("follower epoch = %d, want 1", got)
	}
}

// fakePrimary accepts one replication connection, answers the Follow
// handshake, runs extra (which may send more frames), and then holds
// the connection open — reading and discarding — until the peer closes
// it. It models a primary that wedges with its TCP connection alive.
func fakePrimary(t *testing.T, extra func(nc net.Conn, buf []byte)) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		fr, buf, err := wire.ReadFrame(nc, nil)
		if err != nil || fr.Kind != wire.KindFollow {
			return
		}
		buf, err = wire.WriteFrame(nc, buf[:0], &wire.Frame{Kind: wire.KindFollowAck, Epoch: 0})
		if err != nil {
			return
		}
		if extra != nil {
			extra(nc, buf)
		}
		io.Copy(io.Discard, nc)
	}()
	return ln.Addr()
}

// TestWedgedPrimarySelfPromote pins the in-session loss detector: a
// primary that completes the handshake and then goes silent — the TCP
// connection stays established, no FIN, no RST — must still trip
// PromoteAfter. Before heartbeats and read deadlines the follower
// blocked in ReadFrame forever and the advertised self-promotion never
// fired.
func TestWedgedPrimarySelfPromote(t *testing.T) {
	addr := fakePrimary(t, nil)
	fol, err := repl.NewFollower(repl.FollowerConfig{
		Primary:      addr.String(),
		Dir:          t.TempDir(),
		NewScheduler: newFollowerSched,
		PromoteAfter: 300 * time.Millisecond,
		RedialEvery:  20 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("new follower: %v", err)
	}
	defer fol.Close()
	start := time.Now()
	if err := fol.Run(); err != nil {
		t.Fatalf("follower run: %v", err)
	}
	elapsed := time.Since(start)
	st := fol.Stats()
	if !st.Promoted {
		t.Fatalf("follower did not promote off a wedged primary: %+v", st)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("promotion off a wedged primary took %v", elapsed)
	}
	if e := fol.Epoch(); e != 1 {
		t.Fatalf("promoted epoch = %d, want 1", e)
	}
}

// TestHeartbeatKeepsIdleSessionAlive is the inverse: an idle but
// HEALTHY primary heartbeats, so a follower with a short PromoteAfter
// must NOT self-promote while the session carries pings — and must
// still promote promptly once the primary actually dies.
func TestHeartbeatKeepsIdleSessionAlive(t *testing.T) {
	primaryDir := t.TempDir()
	src := repl.NewSource(repl.SourceConfig{
		Epoch:          0,
		HeartbeatEvery: 50 * time.Millisecond,
		Logf:           t.Logf,
	})
	addr, err := src.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	obs := src.Export("acme", primaryDir)
	prim, _, err := realloc.OpenRecovered(primaryDir,
		append(stackOptions(), realloc.WithWALObserver(obs))...)
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}

	fol, err := repl.NewFollower(repl.FollowerConfig{
		Primary:      addr.String(),
		Dir:          t.TempDir(),
		NewScheduler: newFollowerSched,
		PromoteAfter: 500 * time.Millisecond,
		RedialEvery:  20 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("new follower: %v", err)
	}
	defer fol.Close()
	runErr := make(chan error, 1)
	go func() { runErr <- fol.Run() }()
	waitUntil(t, "follower warm", func() bool { return fol.Stats().Warm == 1 })

	// Idle for several multiples of PromoteAfter: pings are the only
	// traffic, and they must be proof of life enough.
	select {
	case err := <-runErr:
		t.Fatalf("follower exited during idle-but-healthy primary: %v (stats %+v)", err, fol.Stats())
	case <-time.After(1500 * time.Millisecond):
	}
	if fol.Stats().Promoted {
		t.Fatalf("follower promoted off an idle but heartbeating primary: %+v", fol.Stats())
	}

	// Kill the primary for real; now the silence is genuine.
	prim.Close()
	src.Close()
	if err := <-runErr; err != nil {
		t.Fatalf("follower run after primary death: %v", err)
	}
	if !fol.Stats().Promoted {
		t.Fatal("follower never promoted after the primary died")
	}
}

// TestPartialInstallDiscardedTombstone: a tenant whose install never
// completed is discarded at promotion — and the discard must be
// durable. The mirror directory gets a tombstone so no later recovery
// path (cmd/reallocd's OpenRecovered fallback) can silently serve the
// incomplete state.
func TestPartialInstallDiscardedTombstone(t *testing.T) {
	addr := fakePrimary(t, func(nc net.Conn, buf []byte) {
		// Begin an install but never finish it: no Installed frame.
		wire.WriteFrame(nc, buf[:0], &wire.Frame{Kind: wire.KindCheckpointInstall, Tenant: "acme"})
	})
	folDir := t.TempDir()
	fol, err := repl.NewFollower(repl.FollowerConfig{
		Primary:      addr.String(),
		Dir:          folDir,
		NewScheduler: newFollowerSched,
		RedialEvery:  20 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("new follower: %v", err)
	}
	defer fol.Close()
	runErr := make(chan error, 1)
	go func() { runErr <- fol.Run() }()
	waitUntil(t, "install begun", func() bool { return fol.Stats().Tenants == 1 })

	fol.PromoteNow()
	if err := <-runErr; err != nil {
		t.Fatalf("follower run: %v", err)
	}
	if fol.Adopt("acme") != nil {
		t.Fatal("partially installed tenant must not be adoptable")
	}
	dir := filepath.Join(folDir, repl.TenantDir("acme"))
	reason, ok := repl.Discarded(dir)
	if !ok {
		t.Fatalf("no promotion tombstone in %s", dir)
	}
	if !strings.Contains(reason, "install incomplete") {
		t.Fatalf("tombstone reason = %q", reason)
	}
	// An untouched directory carries no tombstone.
	if _, ok := repl.Discarded(t.TempDir()); ok {
		t.Fatal("Discarded reported a tombstone in a fresh directory")
	}
}

// TestHandoffRefusesColdFollower pins the handoff barrier: Promote
// must never be sent to a follower that is still installing, because
// promotion would discard the in-flight tenant — including writes the
// primary already acked. The handoff has to wait for warmth and, when
// none arrives within the bound, refuse so the caller drains instead.
func TestHandoffRefusesColdFollower(t *testing.T) {
	dir := t.TempDir()
	// Fabricate a tenant WAL whose segment dwarfs any socket buffer:
	// the install cannot finish while the follower refuses to read.
	big := make([]byte, 64<<20)
	if err := os.WriteFile(wal.SegmentPath(dir, 1), big, 0o644); err != nil {
		t.Fatalf("write segment: %v", err)
	}
	src := repl.NewSource(repl.SourceConfig{
		Epoch:          0,
		WriteTimeout:   30 * time.Second,
		PromoteTimeout: 300 * time.Millisecond,
		Logf:           t.Logf,
	})
	addr, err := src.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer src.Close()
	src.Export("acme", dir)

	// A hand-rolled follower that handshakes and then stops reading,
	// wedging the snapshot transfer mid-flight.
	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	buf, err := wire.WriteFrame(nc, nil, &wire.Frame{Kind: wire.KindFollow, Version: wire.Version, Epoch: 0})
	if err != nil {
		t.Fatalf("write follow: %v", err)
	}
	fr, _, err := wire.ReadFrame(nc, buf)
	if err != nil || fr.Kind != wire.KindFollowAck {
		t.Fatalf("handshake: frame %v, err %v", fr.Kind, err)
	}

	_, err = src.Handoff("test")
	if err == nil {
		t.Fatal("handoff to a cold follower must be refused")
	}
	if !strings.Contains(err.Error(), "refusing handoff") {
		t.Fatalf("refusal error = %v", err)
	}
}
