package repl

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/wal"
	"repro/internal/wire"
)

// SourceConfig configures the primary's shipping side.
type SourceConfig struct {
	// Epoch is this primary's fencing epoch (0 for a first-generation
	// primary; a promoted follower restarts as a primary with the epoch
	// it persisted). A follower connecting with a HIGHER epoch proves
	// this primary has been deposed: the connection is refused with
	// CodeFenced and Fenced() starts reporting true.
	Epoch uint64
	// ChunkBytes caps each SegmentChunk/Tail frame's Data (default
	// 256 KiB, max wire.MaxChunk).
	ChunkBytes int
	// WriteTimeout bounds every frame write to a follower (default 5s).
	// A follower too slow to keep up is dropped rather than allowed to
	// stall the primary's WAL flusher.
	WriteTimeout time.Duration
	// MaxPending caps the bytes of live tails buffered per connection
	// while a tenant's snapshot transfer is still in flight (default
	// 64 MiB). Overflow drops the connection; the follower reconnects
	// and reinstalls.
	MaxPending int
	// PromoteTimeout bounds each of Handoff's two waits: for a fully
	// warm follower to hand off to, and then for that follower's
	// PromoteAck (default 30s each).
	PromoteTimeout time.Duration
	// HeartbeatEvery is the pause between Ping frames to each follower
	// (default 100ms). Heartbeats let a follower distinguish an idle
	// primary from a wedged one: followers key their primary-loss
	// timeout off the last frame received, so PromoteAfter on the
	// follower side must be several multiples of this interval.
	HeartbeatEvery time.Duration
	// OnFenced, when set, is called exactly once when a follower with
	// a higher epoch connects: this primary has been deposed and must
	// seal its write path. Called from a connection handler goroutine.
	OnFenced func()
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c *SourceConfig) fill() {
	if c.ChunkBytes <= 0 || c.ChunkBytes > wire.MaxChunk {
		c.ChunkBytes = 256 << 10
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 64 << 20
	}
	if c.PromoteTimeout <= 0 {
		c.PromoteTimeout = 30 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 100 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// feed is one tenant's registered WAL: the directory the Source reads
// snapshots from and the identity live tails are tagged with.
type feed struct {
	src    *Source
	tenant string
	dir    string
}

// Source is the primary-side replication endpoint: it accepts follower
// connections, streams each registered tenant's checkpoint + segments
// + live tail, and can hand the primary role to a follower.
type Source struct {
	cfg SourceConfig

	mu     sync.Mutex
	ln     net.Listener
	feeds  map[string]*feed
	conns  map[*srcConn]struct{}
	closed bool
	sealed bool // Handoff closed the listener; Serve exits cleanly
	fenced bool
	done   chan struct{} // closed by Close; stops heartbeat goroutines
	wg     sync.WaitGroup
}

// NewSource builds a Source. Call Export for each tenant WAL before
// opening it, then Serve on a listener.
func NewSource(cfg SourceConfig) *Source {
	cfg.fill()
	return &Source{
		cfg:   cfg,
		feeds: make(map[string]*feed),
		conns: make(map[*srcConn]struct{}),
		done:  make(chan struct{}),
	}
}

// Epoch returns the primary's fencing epoch.
func (s *Source) Epoch() uint64 { return s.cfg.Epoch }

// Fenced reports whether a follower with a higher epoch has connected:
// this primary has been deposed and must stop accepting writes.
func (s *Source) Fenced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fenced
}

// Followers reports how many follower connections are up, and how many
// of them are warm (every registered tenant fully installed and
// receiving live tails).
func (s *Source) Followers() (total, warm int) {
	s.mu.Lock()
	conns := make([]*srcConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	want := len(s.feeds)
	s.mu.Unlock()
	for _, c := range conns {
		total++
		if c.liveTenants() >= want {
			warm++
		}
	}
	return total, warm
}

// Export registers tenant's WAL directory for shipping and returns the
// observer to pass as wal.Options.Observer (realloc.WithWALObserver).
// Call it BEFORE opening the tenant's WAL so the very first observed
// span (the segment header) is captured; followers connected at that
// point begin their snapshot transfer immediately.
func (s *Source) Export(tenant, dir string) func(seg uint64, off int64, p []byte) {
	f := &feed{src: s, tenant: tenant, dir: dir}
	s.mu.Lock()
	s.feeds[tenant] = f
	conns := make([]*srcConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.beginInstall(f)
	}
	return f.observe
}

// observe is the wal.Options.Observer hook: fan the span out to every
// connection. It runs on the tenant's WAL flusher goroutine, before
// the group's acks — a slow follower is bounded by WriteTimeout, not
// allowed to wedge the flusher forever.
func (f *feed) observe(seg uint64, off int64, p []byte) {
	s := f.src
	s.mu.Lock()
	conns := make([]*srcConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.tail(f.tenant, seg, off, p)
	}
}

// Serve accepts follower connections on ln until Close. It returns
// nil after Close, like server.Serve.
func (s *Source) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("repl: source is closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.closed || s.sealed
			s.mu.Unlock()
			if done {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(nc)
		}()
	}
}

// Listen starts serving on addr in a background goroutine and returns
// the bound address.
func (s *Source) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Close stops accepting followers, drops every connection, and waits
// for the handler goroutines. Idempotent.
func (s *Source) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	close(s.done)
	ln := s.ln
	conns := make([]*srcConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.fail(errors.New("repl: source closed"))
	}
	s.wg.Wait()
	return nil
}

// Handoff hands the primary role to a fully warm connected follower:
// it stops accepting new followers, waits (bounded by PromoteTimeout)
// for a follower with every registered tenant installed and its
// buffered tails flushed, sends it Promote with epoch+1, and waits for
// the PromoteAck that confirms the follower is serving. The caller
// must have sealed the write path first (server.Handoff closes the
// Server before calling this) — a primary must never acknowledge a
// write after Promote is sent. Returns the new epoch.
//
// A follower that never warms within the bound refuses the handoff:
// promoting it would discard its still-installing tenants — including
// writes this primary already acked — so the caller must fall back to
// a plain drain instead.
func (s *Source) Handoff(reason string) (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, errors.New("repl: source is closed")
	}
	s.sealed = true
	if s.ln != nil {
		// Seal membership: no follower connected after the handoff
		// decision can win the promotion.
		s.ln.Close()
	}
	s.mu.Unlock()
	// The write path is already sealed, so no new tails arrive: every
	// in-flight install either completes (flushing its pending tails
	// as it flips to live) or fails its connection. Poll until one
	// follower holds everything this primary acked.
	deadline := time.Now().Add(s.cfg.PromoteTimeout)
	var target *srcConn
	for {
		s.mu.Lock()
		want := len(s.feeds)
		conns := make([]*srcConn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		var cand *srcConn
		best := -1
		for _, c := range conns {
			if n := c.liveTenants(); n > best {
				best, cand = n, c
			}
		}
		if cand == nil {
			return 0, errors.New("repl: no follower connected")
		}
		if best >= want {
			target = cand
			break
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("repl: no warm follower within %v (best has %d/%d tenants installed); refusing handoff",
				s.cfg.PromoteTimeout, best, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	newEpoch := s.cfg.Epoch + 1
	if !target.write(&wire.Frame{Kind: wire.KindPromote, Epoch: newEpoch, Detail: reason}) {
		return 0, errors.New("repl: promote write failed")
	}
	select {
	case acked := <-target.promoteAck:
		if acked != newEpoch {
			return 0, fmt.Errorf("repl: follower acked epoch %d, want %d", acked, newEpoch)
		}
	case <-time.After(s.cfg.PromoteTimeout):
		return 0, errors.New("repl: timed out waiting for PromoteAck")
	}
	s.cfg.Logf("repl: handed off to follower at epoch %d (%s)", newEpoch, reason)
	return newEpoch, nil
}

// Per-tenant shipping state on one connection.
const (
	stateBuffering  = iota // no install started: hold tails
	stateInstalling        // snapshot transfer in flight: hold tails
	stateLive              // installed: write tails through
)

type srcConn struct {
	src *Source
	nc  net.Conn

	// mu serializes the write side and guards the state below. Lock
	// ordering: Source.mu is never acquired while holding srcConn.mu.
	mu           sync.Mutex
	wbuf         []byte
	state        map[string]int
	pending      map[string][]wire.Frame
	pendingBytes int
	dead         bool

	promoteAck chan uint64
}

// handle runs one follower connection: handshake, install kickoff, and
// then a read loop whose only legitimate inbound frame is PromoteAck.
func (s *Source) handle(nc net.Conn) {
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(s.cfg.WriteTimeout))
	f, buf, err := wire.ReadFrame(nc, nil)
	if err != nil {
		s.cfg.Logf("repl: follower handshake read: %v", err)
		return
	}
	if f.Kind != wire.KindFollow {
		s.cfg.Logf("repl: expected Follow, got %v", f.Kind)
		return
	}
	// Refusal writes happen before the conn is registered in s.conns,
	// so Close cannot interrupt them: bound them with the same write
	// deadline writeLocked uses, or a peer that never reads could
	// stall this wg-tracked handler and delay Close.
	nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if f.Version != wire.Version {
		wire.WriteFrame(nc, buf[:0], &wire.Frame{Kind: wire.KindErr, Code: wire.CodeBadRequest,
			Detail: fmt.Sprintf("unsupported version %d", f.Version)})
		return
	}
	if f.Epoch > s.cfg.Epoch {
		// The fencing rule: a follower that promoted past us proves we
		// are deposed. Tell it, record it, and refuse to ship.
		s.mu.Lock()
		already := s.fenced
		s.fenced = true
		s.mu.Unlock()
		s.cfg.Logf("repl: FENCED: follower has epoch %d > our %d; this primary is deposed", f.Epoch, s.cfg.Epoch)
		if !already && s.cfg.OnFenced != nil {
			s.cfg.OnFenced()
		}
		wire.WriteFrame(nc, buf[:0], &wire.Frame{Kind: wire.KindErr, Code: wire.CodeFenced,
			Detail: fmt.Sprintf("primary epoch %d below follower epoch %d", s.cfg.Epoch, f.Epoch)})
		return
	}
	nc.SetReadDeadline(time.Time{})
	nc.SetWriteDeadline(time.Time{})

	c := &srcConn{
		src:        s,
		nc:         nc,
		state:      make(map[string]int),
		pending:    make(map[string][]wire.Frame),
		promoteAck: make(chan uint64, 1),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[c] = struct{}{}
	feeds := make([]*feed, 0, len(s.feeds))
	for _, fd := range s.feeds {
		feeds = append(feeds, fd)
	}
	s.mu.Unlock()

	if !c.write(&wire.Frame{Kind: wire.KindFollowAck, Epoch: s.cfg.Epoch}) {
		s.dropConn(c)
		return
	}
	s.cfg.Logf("repl: follower connected from %s (%d tenants to install)", nc.RemoteAddr(), len(feeds))
	// Not wg-tracked, like install goroutines: the heartbeat exits on
	// its next tick once the connection fails or the source closes.
	go c.heartbeat(s.cfg.HeartbeatEvery, s.done)
	for _, fd := range feeds {
		c.beginInstall(fd)
	}

	// The follower sends nothing after the handshake except a
	// PromoteAck; the read loop's real job is detecting disconnect.
	for {
		f, buf, err = wire.ReadFrame(nc, buf)
		if err != nil {
			s.dropConn(c)
			return
		}
		if f.Kind == wire.KindPromoteAck {
			select {
			case c.promoteAck <- f.Epoch:
			default:
			}
			continue
		}
		s.cfg.Logf("repl: unexpected %v frame from follower; dropping", f.Kind)
		s.dropConn(c)
		return
	}
}

func (s *Source) dropConn(c *srcConn) {
	c.fail(errors.New("repl: connection dropped"))
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// heartbeat writes Ping frames until the connection dies or the
// source closes. Pings interleave between data frames under c.mu, so
// an idle-but-healthy primary still proves its liveness to followers
// that bound the gap between frames.
func (c *srcConn) heartbeat(every time.Duration, done <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			if !c.write(&wire.Frame{Kind: wire.KindPing}) {
				return
			}
		}
	}
}

func (c *srcConn) liveTenants() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, st := range c.state {
		if st == stateLive {
			n++
		}
	}
	return n
}

// fail poisons the connection: every later write is a no-op and the
// socket is closed, which unblocks the handler's read loop. The close
// happens BEFORE taking c.mu: a write in flight under the lock (a
// wedged follower partway through its WriteTimeout) is interrupted
// immediately instead of holding fail — and through it Source.Close —
// until the deadline expires.
func (c *srcConn) fail(err error) {
	c.nc.Close()
	c.mu.Lock()
	c.failLocked(err)
	c.mu.Unlock()
}

func (c *srcConn) failLocked(err error) {
	if c.dead {
		return
	}
	c.dead = true
	c.pending = nil
	c.src.cfg.Logf("repl: dropping follower %s: %v", c.nc.RemoteAddr(), err)
	c.nc.Close()
}

func (c *srcConn) write(f *wire.Frame) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeLocked(f)
}

func (c *srcConn) writeLocked(f *wire.Frame) bool {
	if c.dead {
		return false
	}
	c.nc.SetWriteDeadline(time.Now().Add(c.src.cfg.WriteTimeout))
	var err error
	c.wbuf, err = wire.WriteFrame(c.nc, c.wbuf, f)
	if err != nil {
		c.failLocked(err)
		return false
	}
	return true
}

// tail ships one observed WAL span. Live tenants get it written
// through immediately (on the WAL flusher goroutine, before the acks —
// the zero-lost-acks shipping point); tenants still installing get it
// buffered, bounded by MaxPending.
func (c *srcConn) tail(tenant string, seg uint64, off int64, p []byte) {
	chunk := c.src.cfg.ChunkBytes
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return
	}
	for start := 0; start < len(p); start += chunk {
		end := start + chunk
		if end > len(p) {
			end = len(p)
		}
		f := wire.Frame{Kind: wire.KindTail, Tenant: tenant, Seg: seg, Off: off + int64(start), Data: p[start:end]}
		if c.state[tenant] == stateLive {
			if !c.writeLocked(&f) {
				return
			}
			continue
		}
		// Buffering (pre-install or mid-install): copy, because the WAL
		// reuses p after the observer returns.
		f.Data = append([]byte(nil), f.Data...)
		c.pending[tenant] = append(c.pending[tenant], f)
		c.pendingBytes += len(f.Data)
		if c.pendingBytes > c.src.cfg.MaxPending {
			c.failLocked(fmt.Errorf("pending tail buffer exceeded %d bytes during install", c.src.cfg.MaxPending))
			return
		}
	}
}

// beginInstall starts tenant f's snapshot transfer on this connection
// if it has not already started. Idempotent under the state map.
func (c *srcConn) beginInstall(f *feed) {
	c.mu.Lock()
	if c.dead || c.state[f.tenant] != stateBuffering {
		c.mu.Unlock()
		return
	}
	c.state[f.tenant] = stateInstalling
	c.mu.Unlock()
	// Not wg-tracked: an install goroutine exits promptly once the
	// connection fails (every write short-circuits), and tracking it
	// would race Export-triggered installs against Close's Wait.
	go c.install(f)
}

// install transfers tenant f's snapshot: checkpoint image, then every
// retained segment in chunks, then (atomically with going live) the
// tails buffered while the transfer ran, then Installed. File reads
// happen without holding c.mu, so live tails keep buffering in
// parallel. A file that vanishes mid-transfer (a checkpoint pruned it)
// fails the connection; the follower reconnects and reinstalls against
// the newer checkpoint.
func (c *srcConn) install(f *feed) {
	ckData, err := os.ReadFile(wal.CheckpointPath(f.dir))
	if err != nil && !os.IsNotExist(err) {
		c.fail(fmt.Errorf("read checkpoint for %q: %w", f.tenant, err))
		return
	}
	startSeg := uint64(1)
	if len(ckData) > 0 {
		ck, err := wal.DecodeCheckpoint(ckData)
		if err != nil {
			c.fail(fmt.Errorf("decode checkpoint for %q: %w", f.tenant, err))
			return
		}
		startSeg = ck.StartSeg
	}
	segs, err := wal.ListSegments(f.dir)
	if err != nil && !os.IsNotExist(err) {
		c.fail(fmt.Errorf("list segments for %q: %w", f.tenant, err))
		return
	}
	if !c.write(&wire.Frame{Kind: wire.KindCheckpointInstall, Tenant: f.tenant, Data: ckData}) {
		return
	}
	chunk := c.src.cfg.ChunkBytes
	for _, n := range segs {
		if n < startSeg {
			continue // covered by the checkpoint image
		}
		data, err := os.ReadFile(wal.SegmentPath(f.dir, n))
		if err != nil {
			c.fail(fmt.Errorf("read segment %d for %q: %w", n, f.tenant, err))
			return
		}
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if !c.write(&wire.Frame{Kind: wire.KindSegmentChunk, Tenant: f.tenant,
				Seg: n, Off: int64(off), Data: data[off:end]}) {
				return
			}
		}
	}
	// Flush the tails that accumulated during the transfer and flip to
	// live under one critical section: nothing can interleave between
	// the last buffered tail and the first written-through one.
	c.mu.Lock()
	defer c.mu.Unlock()
	pend := c.pending[f.tenant]
	for i := range pend {
		c.pendingBytes -= len(pend[i].Data)
		if !c.writeLocked(&pend[i]) {
			return
		}
	}
	if c.dead {
		return
	}
	delete(c.pending, f.tenant)
	c.state[f.tenant] = stateLive
	c.writeLocked(&wire.Frame{Kind: wire.KindInstalled, Tenant: f.tenant})
}
