// Batched admission: the paper's reallocation bounds are amortized over
// request *sequences*, so a caller that already holds a sequence (an
// arrival wave, a drained queue, a replayed log) should not pay full
// per-request dispatch, locking, and trim/repair overhead for every
// element. BatchScheduler is the optional bulk interface the amortized
// implementations provide; ApplyBatch is the uniform entry point that
// falls back to per-request application for schedulers without one.
//
// Batch semantics, shared by every implementation in this repository:
//
//   - Requests execute in order. A failed request does not abort the
//     batch; its error is recorded and the remaining requests run.
//   - The returned cost slice is parallel to the request slice.
//   - The error is nil when every request succeeded, otherwise a
//     *BatchError carrying the per-request errors.
//   - On sequences where no request fails (e.g. γ-underallocated
//     streams), the final schedule is identical to applying the same
//     requests one at a time with Apply. Per-request costs may differ —
//     that is the amortization — but the migration bound (at most one
//     migration per request) is preserved.
package sched

import (
	"fmt"
	"strings"

	"repro/internal/jobs"
	"repro/internal/metrics"
)

// BatchScheduler is implemented by schedulers with an amortized bulk
// admission path. ApplyBatch serves the whole request slice, returning
// one cost per request and a *BatchError aggregating any per-request
// failures.
type BatchScheduler interface {
	ApplyBatch(reqs []jobs.Request) ([]metrics.Cost, error)
}

// BatchError aggregates the per-request failures of one batch. Errs is
// parallel to the request slice (nil entries are successes), so callers
// can map failures back to requests by index. errors.Is and errors.As
// traverse every recorded failure via Unwrap.
type BatchError struct {
	// Failed is the number of requests that failed.
	Failed int
	// Errs has one entry per request of the batch; nil means success.
	Errs []error
	// Evicted names active jobs (admitted by earlier requests) that the
	// batch's rebuild recheck shed because they no longer fit the
	// shrunken trim cap. Evictions are not request failures — the
	// requests of this batch may all have succeeded — and occur only on
	// streams that are not sufficiently underallocated.
	Evicted []string
}

// WithEvictions attaches shed-job names to a batch error, creating one
// when every request succeeded. It returns err unchanged when there is
// nothing to attach.
func WithEvictions(err error, evicted []string) error {
	if len(evicted) == 0 {
		return err
	}
	be, ok := err.(*BatchError)
	if !ok {
		if err != nil {
			return err // never swallow a structural (non-batch) error
		}
		be = &BatchError{}
	}
	be.Evicted = append(be.Evicted, evicted...)
	return be
}

// NewBatchError builds a *BatchError from a per-request error slice, or
// returns nil when every entry is nil. The slice is retained.
func NewBatchError(errs []error) error {
	failed := 0
	for _, e := range errs {
		if e != nil {
			failed++
		}
	}
	if failed == 0 {
		return nil
	}
	return &BatchError{Failed: failed, Errs: errs}
}

// Error summarizes the failure count, the first failure, and any
// evictions.
func (e *BatchError) Error() string {
	var b strings.Builder
	b.WriteString("sched:")
	if e.Failed > 0 {
		i, first := e.First()
		fmt.Fprintf(&b, " %d of %d batched request(s) failed, first at index %d: %v",
			e.Failed, len(e.Errs), i, first)
	}
	if len(e.Evicted) > 0 {
		if e.Failed > 0 {
			b.WriteString(";")
		}
		fmt.Fprintf(&b, " batch rebuild shed %d active job(s) infeasible at the new cap: %s",
			len(e.Evicted), strings.Join(e.Evicted, ", "))
	}
	return b.String()
}

// First returns the index and error of the first failed request.
func (e *BatchError) First() (int, error) {
	for i, err := range e.Errs {
		if err != nil {
			return i, err
		}
	}
	return -1, nil
}

// At returns the error of request i (nil for successes).
func (e *BatchError) At(i int) error {
	if i < 0 || i >= len(e.Errs) {
		return nil
	}
	return e.Errs[i]
}

// Unwrap exposes the per-request failures to errors.Is / errors.As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, 0, e.Failed)
	for _, err := range e.Errs {
		if err != nil {
			out = append(out, err)
		}
	}
	return out
}

// BatchEvictor is implemented by bulk schedulers that can shed jobs
// during a batch: on streams that are not sufficiently underallocated,
// a trim rebuild's feasibility recheck may find a job admitted in an
// earlier request no longer fits the shrunken cap and drop it (the
// batch's error names it). TakeBatchEvictions returns and clears the
// names shed by the most recent ApplyBatch call, so wrapping layers can
// erase their own bookkeeping for those jobs; every wrapper in this
// repository drains its inner scheduler after each bulk call and
// re-exposes the names to the layer above.
type BatchEvictor interface {
	TakeBatchEvictions() []string
}

// TakeBatchEvictions drains s's batch evictions, or returns nil for
// schedulers that never shed jobs.
func TakeBatchEvictions(s Scheduler) []string {
	if e, ok := s.(BatchEvictor); ok {
		return e.TakeBatchEvictions()
	}
	return nil
}

// ApplyBatch routes a request slice to the scheduler's bulk path when it
// has one, and otherwise applies the requests one at a time with the
// same observable semantics (in-order execution, no abort on failure).
func ApplyBatch(s Scheduler, reqs []jobs.Request) ([]metrics.Cost, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if b, ok := s.(BatchScheduler); ok {
		return b.ApplyBatch(reqs)
	}
	costs := make([]metrics.Cost, len(reqs))
	errs := make([]error, len(reqs))
	for i, r := range reqs {
		costs[i], errs[i] = Apply(s, r)
	}
	return costs, NewBatchError(errs)
}

// RunBatched feeds a request sequence to the scheduler in chunks of
// batchSize through ApplyBatch, recording per-request costs. Like Run it
// stops at the first error and returns the index of the first failing
// request — but because failure detection happens at chunk granularity,
// requests after the failure within the failing chunk may already have
// been applied (bulk-admission semantics; use Run for strict
// stop-on-first-error behavior).
func RunBatched(s Scheduler, reqs []jobs.Request, batchSize int, rec *metrics.Recorder) (int, error) {
	if batchSize < 1 {
		batchSize = 1
	}
	for off := 0; off < len(reqs); off += batchSize {
		end := off + batchSize
		if end > len(reqs) {
			end = len(reqs)
		}
		chunk := reqs[off:end]
		costs, err := ApplyBatch(s, chunk)
		// Drain batch evictions every chunk: a shed job must surface on
		// the chunk that shed it, never leak silently out of Run or get
		// misattributed to a later bulk call on the same scheduler.
		if ev := TakeBatchEvictions(s); len(ev) > 0 {
			err = WithEvictions(err, ev)
		}
		if err != nil {
			var be *BatchError
			if asBatchError(err, &be) {
				k, first := be.First()
				if k < 0 {
					// Eviction-only error: every request in the chunk was
					// applied, but the batch shed active jobs. Record the
					// whole chunk and stop after it.
					if rec != nil {
						for _, c := range costs {
							rec.Record(c, s.Active())
						}
					}
					return end, err
				}
				// Record the served prefix of the chunk.
				if rec != nil {
					for i := 0; i < k; i++ {
						rec.Record(costs[i], s.Active())
					}
				}
				return off + k, fmt.Errorf("request %d (%s): %w", off+k, chunk[k], first)
			}
			return off, err
		}
		if rec != nil {
			for _, c := range costs {
				rec.Record(c, s.Active())
			}
		}
	}
	return len(reqs), nil
}

// asBatchError is errors.As specialized to *BatchError without pulling
// errors into the hot path.
func asBatchError(err error, target **BatchError) bool {
	be, ok := err.(*BatchError)
	if ok {
		*target = be
	}
	return ok
}
