package sched_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/naive"
	"repro/internal/sched"
)

func TestNewBatchErrorNilOnSuccess(t *testing.T) {
	if err := sched.NewBatchError([]error{nil, nil, nil}); err != nil {
		t.Fatalf("all-success batch reported %v", err)
	}
	if err := sched.NewBatchError(nil); err != nil {
		t.Fatalf("empty batch reported %v", err)
	}
}

func TestBatchErrorMapsFailuresToIndices(t *testing.T) {
	e0 := errors.New("boom")
	err := sched.NewBatchError([]error{nil, e0, nil, sched.ErrUnknownJob})
	var be *sched.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("NewBatchError returned %T", err)
	}
	if be.Failed != 2 {
		t.Errorf("Failed = %d, want 2", be.Failed)
	}
	if i, first := be.First(); i != 1 || first != e0 {
		t.Errorf("First() = (%d, %v), want (1, boom)", i, first)
	}
	if be.At(0) != nil || be.At(1) != e0 || be.At(3) == nil || be.At(99) != nil {
		t.Error("At() does not index the per-request errors")
	}
	if !errors.Is(err, sched.ErrUnknownJob) {
		t.Error("errors.Is does not traverse the recorded failures")
	}
	if !strings.Contains(err.Error(), "index 1") {
		t.Errorf("summary lacks first failure index: %v", err)
	}
}

// TestApplyBatchFallbackMatchesSequential: a scheduler without a bulk
// path gets the per-request loop with identical outcomes.
func TestApplyBatchFallbackMatchesSequential(t *testing.T) {
	reqs := []jobs.Request{
		jobs.InsertReq("a", 0, 4),
		jobs.InsertReq("a", 0, 4), // duplicate
		jobs.InsertReq("b", 4, 8),
		jobs.DeleteReq("a"),
		jobs.DeleteReq("ghost"), // unknown
	}
	batched := naive.New()
	costs, err := sched.ApplyBatch(batched, reqs)
	if len(costs) != len(reqs) {
		t.Fatalf("got %d costs for %d requests", len(costs), len(reqs))
	}
	var be *sched.BatchError
	if !errors.As(err, &be) || be.Failed != 2 {
		t.Fatalf("want 2 failures, got %v", err)
	}
	if !errors.Is(be.At(1), sched.ErrDuplicateJob) || !errors.Is(be.At(4), sched.ErrUnknownJob) {
		t.Errorf("failure indices wrong: %v", err)
	}

	seq := naive.New()
	for _, r := range reqs {
		_, _ = sched.Apply(seq, r)
	}
	if len(seq.Assignment()) != len(batched.Assignment()) {
		t.Errorf("fallback diverged: %d vs %d jobs", len(batched.Assignment()), len(seq.Assignment()))
	}
}

func TestRunBatchedStopsAtFirstFailedRequest(t *testing.T) {
	s := naive.New()
	reqs := []jobs.Request{
		jobs.InsertReq("a", 0, 1),
		jobs.InsertReq("b", 0, 1), // infeasible: slot 0 taken
		jobs.InsertReq("c", 4, 8),
	}
	rec := metrics.NewRecorder()
	n, err := sched.RunBatched(s, reqs, 2, rec)
	if err == nil {
		t.Fatal("error swallowed")
	}
	if n != 1 {
		t.Errorf("first failure at %d, want 1", n)
	}
	if rec.Len() != 1 {
		t.Errorf("recorded %d costs, want the served prefix of the failing chunk", rec.Len())
	}
	if !strings.Contains(err.Error(), "request 1") {
		t.Errorf("error lacks the global request index: %v", err)
	}
}

func TestRunBatchedServesEverything(t *testing.T) {
	s := naive.New()
	reqs := []jobs.Request{
		jobs.InsertReq("a", 0, 4),
		jobs.InsertReq("b", 0, 4),
		jobs.DeleteReq("a"),
		jobs.InsertReq("c", 0, 4),
		jobs.DeleteReq("b"),
	}
	rec := metrics.NewRecorder()
	n, err := sched.RunBatched(s, reqs, 2, rec)
	if err != nil || n != len(reqs) {
		t.Fatalf("RunBatched = (%d, %v), want (%d, nil)", n, err, len(reqs))
	}
	if rec.Len() != len(reqs) {
		t.Errorf("recorded %d costs, want %d", rec.Len(), len(reqs))
	}
	if s.Active() != 1 {
		t.Errorf("active = %d, want 1", s.Active())
	}
}
