package sched

import (
	"fmt"
	"sort"

	"repro/internal/jobs"
)

// RestoreJobs re-admits a checkpointed job set into a (typically fresh)
// scheduler: the jobs are inserted in canonical sorted-by-name order
// through the bulk path, which rebuilds every layer's internal state —
// interned IDs, trim caps, alignment tables, per-machine reservations —
// from nothing but the job set, without replaying the request history
// that produced it.
//
// Restoration is deterministic (canonical order, deterministic
// schedulers) but placements are recomputed: the restored assignment is
// a feasible schedule of the same jobs, not necessarily the
// checkpointed one.
//
// The returned slice holds the jobs that could NOT be re-admitted —
// rejected inserts plus jobs the bulk rebuild shed — for the caller to
// re-place elsewhere (the sharded front-end retries them through its
// overflow path). A non-batch (structural) failure is returned as an
// error.
func RestoreJobs(s Scheduler, js []jobs.Job) ([]jobs.Job, error) {
	if len(js) == 0 {
		return nil, nil
	}
	sorted := append([]jobs.Job(nil), js...)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i].Name < sorted[k].Name })
	reqs := make([]jobs.Request, len(sorted))
	for i, j := range sorted {
		reqs[i] = jobs.Request{Kind: jobs.Insert, Name: j.Name, Window: j.Window}
	}
	_, err := ApplyBatch(s, reqs)
	var be *BatchError
	if err != nil && !asBatchError(err, &be) {
		return nil, fmt.Errorf("sched: restore: %w", err)
	}
	lost := make(map[string]bool)
	for _, name := range TakeBatchEvictions(s) {
		lost[name] = true
	}
	var failed []jobs.Job
	for i, j := range sorted {
		if (be != nil && be.At(i) != nil) || lost[j.Name] {
			failed = append(failed, j)
		}
	}
	return failed, nil
}
