// Package sched defines the interfaces and shared errors implemented by
// every reallocating scheduler in this repository (the paper's Section 2
// model): the naive pecking-order scheduler, the reservation-based
// scheduler, the EDF/LLF baselines, and the multi-machine and alignment
// wrappers.
package sched

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/jobs"
	"repro/internal/metrics"
)

// The sentinels below are aliases into internal/fault, the repository's
// unified error vocabulary: errors.Is against sched.ErrInfeasible,
// fault.ErrInfeasible, and realloc.ErrInfeasible are all the same test.

// ErrDuplicateJob is returned when inserting a job whose name is already
// active.
var ErrDuplicateJob = fault.ErrDuplicateJob

// ErrUnknownJob is returned when deleting a job that is not active.
var ErrUnknownJob = fault.ErrUnknownJob

// ErrInfeasible is returned when the scheduler cannot place a job — for
// the greedy schedulers this means the instance is not feasible (or, for
// the reservation scheduler, not sufficiently underallocated).
var ErrInfeasible = fault.ErrInfeasible

// ErrMisaligned is returned by aligned-only schedulers when a window is
// not aligned.
var ErrMisaligned = fault.ErrMisaligned

// InfeasibleError wraps ErrInfeasible with context about the request that
// failed.
type InfeasibleError struct {
	Req    jobs.Request
	Detail string
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("%v: %s (%s)", ErrInfeasible, e.Req, e.Detail)
}

// Unwrap lets errors.Is(err, ErrInfeasible) succeed.
func (e *InfeasibleError) Unwrap() error { return ErrInfeasible }

// Scheduler is a reallocating scheduler: it maintains a feasible schedule
// for the active jobs across a sequence of insert/delete requests and
// reports the cost of each request.
type Scheduler interface {
	// Insert adds a job and returns the cost of the reallocation that
	// serviced the request.
	Insert(j jobs.Job) (metrics.Cost, error)
	// Delete removes an active job by name and returns the cost.
	Delete(name string) (metrics.Cost, error)
	// Assignment returns a snapshot of the current schedule.
	Assignment() jobs.Assignment
	// Active returns the number of active jobs.
	Active() int
	// Jobs returns a snapshot of the active job set.
	Jobs() []jobs.Job
	// Machines returns the number of machines the scheduler manages.
	Machines() int
	// SelfCheck revalidates every internal invariant, returning the
	// first violation. Intended for tests; may be slow.
	SelfCheck() error
}

// ErrNotElastic reports a resize against a scheduler (or wrapper chain)
// that does not support changing its machine pool.
var ErrNotElastic = fault.ErrNotElastic

// Poisoner is implemented by schedulers that can become permanently
// unusable after a failed request (the reservation core: a mid-request
// failure leaves partial reservation state). Wrappers probe it to
// decide whether a rejection needs a recovery rebuild — a clean
// rejection (duplicate, misaligned, cap exceeded) does not.
type Poisoner interface {
	// Poisoned returns the sticky failure, or nil while usable.
	Poisoned() error
}

// Poisoned reports s's sticky failure state: nil for healthy schedulers
// and for schedulers that cannot poison (no Poisoner implementation).
func Poisoned(s Scheduler) error {
	if p, ok := s.(Poisoner); ok {
		return p.Poisoned()
	}
	return nil
}

// Recycler is implemented by schedulers whose internal structures can
// be returned to allocation pools when the scheduler is discarded. The
// trimming wrappers rebuild by constructing a fresh inner scheduler and
// dropping the old one; recycling the old one lets the fresh build
// reuse its maps and structs instead of growing them from zero —
// rebuild-heavy workloads otherwise spend their time in the allocator.
//
// Contract: Recycle is called at most once, after which the scheduler
// must not be used — the caller drops every reference first.
type Recycler interface {
	Recycle()
}

// Recycle returns s's internal structures to their pools when s
// supports it, and is a no-op otherwise.
func Recycle(s Scheduler) {
	if r, ok := s.(Recycler); ok {
		r.Recycle()
	}
}

// Elastic is implemented by schedulers whose machine pool can be
// resized at runtime. Resizing is a control operation, not a request:
// it is not part of the paper's request model, but the reallocation
// costs it incurs are measured in the same two currencies.
//
// The contract mirrors the paper's migration discipline: growing the
// pool never moves a job, and shrinking the pool re-places only the
// jobs that lived on the drained machines — at most one migration per
// drained job. Jobs the shrunken pool cannot absorb are evicted and
// returned to the caller instead of being dropped silently.
type Elastic interface {
	// AddMachines grows the pool by n fresh machines. No job moves.
	AddMachines(n int) error
	// RemoveMachines shrinks the pool by its last n machines. Jobs on
	// the drained machines are re-placed on the surviving machines
	// where possible (one migration each, folded into the returned
	// cost); jobs that fit nowhere are removed from the scheduler and
	// returned as evicted.
	RemoveMachines(n int) (metrics.Cost, []jobs.Job, error)
}

// Apply routes one request to the scheduler.
func Apply(s Scheduler, r jobs.Request) (metrics.Cost, error) {
	switch r.Kind {
	case jobs.Insert:
		return s.Insert(jobs.Job{Name: r.Name, Window: r.Window})
	case jobs.Delete:
		return s.Delete(r.Name)
	default:
		return metrics.Cost{}, fmt.Errorf("sched: unknown request kind %d", r.Kind)
	}
}

// Run feeds a whole request sequence to the scheduler, recording costs.
// It stops at the first error, returning the index of the failing request
// alongside the error. The recorder always reflects the successfully
// served prefix.
func Run(s Scheduler, reqs []jobs.Request, rec *metrics.Recorder) (int, error) {
	for i, r := range reqs {
		c, err := Apply(s, r)
		if err != nil {
			return i, fmt.Errorf("request %d (%s): %w", i, r, err)
		}
		if rec != nil {
			rec.Record(c, s.Active())
		}
	}
	return len(reqs), nil
}

// RunChecked is Run with a SelfCheck after every request; it is the
// workhorse of the test suites.
func RunChecked(s Scheduler, reqs []jobs.Request, rec *metrics.Recorder) (int, error) {
	for i, r := range reqs {
		c, err := Apply(s, r)
		if err != nil {
			return i, fmt.Errorf("request %d (%s): %w", i, r, err)
		}
		if rec != nil {
			rec.Record(c, s.Active())
		}
		if err := s.SelfCheck(); err != nil {
			return i, fmt.Errorf("invariant violation after request %d (%s): %w", i, r, err)
		}
	}
	return len(reqs), nil
}
