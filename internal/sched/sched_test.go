package sched_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/naive"
	"repro/internal/sched"
)

func TestApplyRoutesRequests(t *testing.T) {
	s := naive.New()
	if _, err := sched.Apply(s, jobs.InsertReq("a", 0, 4)); err != nil {
		t.Fatal(err)
	}
	if s.Active() != 1 {
		t.Error("insert not routed")
	}
	if _, err := sched.Apply(s, jobs.DeleteReq("a")); err != nil {
		t.Fatal(err)
	}
	if s.Active() != 0 {
		t.Error("delete not routed")
	}
	if _, err := sched.Apply(s, jobs.Request{Kind: jobs.RequestKind(7), Name: "x"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunStopsAtFirstError(t *testing.T) {
	s := naive.New()
	reqs := []jobs.Request{
		jobs.InsertReq("a", 0, 1),
		jobs.InsertReq("b", 0, 1), // infeasible
		jobs.InsertReq("c", 4, 8), // never reached
	}
	rec := metrics.NewRecorder()
	n, err := sched.Run(s, reqs, rec)
	if err == nil {
		t.Fatal("error swallowed")
	}
	if n != 1 {
		t.Errorf("served %d before failing, want 1", n)
	}
	if rec.Len() != 1 {
		t.Errorf("recorded %d costs, want the successful prefix only", rec.Len())
	}
	if !strings.Contains(err.Error(), "request 1") {
		t.Errorf("error lacks request index: %v", err)
	}
}

func TestRunNilRecorder(t *testing.T) {
	s := naive.New()
	if _, err := sched.Run(s, []jobs.Request{jobs.InsertReq("a", 0, 4)}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckedReportsInvariantViolations(t *testing.T) {
	s := &corrupting{Scheduler: naive.New()}
	reqs := []jobs.Request{jobs.InsertReq("a", 0, 4), jobs.InsertReq("b", 0, 4)}
	_, err := sched.RunChecked(s, reqs, nil)
	if err == nil || !strings.Contains(err.Error(), "invariant violation") {
		t.Errorf("err = %v", err)
	}
}

// corrupting passes through but fails SelfCheck after the second insert.
type corrupting struct {
	*naive.Scheduler
	count int
}

func (c *corrupting) Insert(j jobs.Job) (metrics.Cost, error) {
	c.count++
	return c.Scheduler.Insert(j)
}

func (c *corrupting) SelfCheck() error {
	if c.count >= 2 {
		return errors.New("synthetic corruption")
	}
	return c.Scheduler.SelfCheck()
}

func TestInfeasibleErrorUnwraps(t *testing.T) {
	e := &sched.InfeasibleError{Req: jobs.InsertReq("a", 0, 1), Detail: "test"}
	if !errors.Is(e, sched.ErrInfeasible) {
		t.Error("InfeasibleError does not unwrap to ErrInfeasible")
	}
	if !strings.Contains(e.Error(), "insert a") || !strings.Contains(e.Error(), "test") {
		t.Errorf("message = %q", e.Error())
	}
}
