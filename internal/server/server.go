// Package server is reallocd's network front-end: a TCP server
// speaking the wire protocol over per-tenant scheduler namespaces.
//
// # Tenant model
//
// Every connection belongs to one tenant, named in its Hello frame.
// The first connection naming a tenant creates that tenant's
// shard.Scheduler lazily via Config.NewScheduler (which is where the
// binary wires in per-tenant WAL directories); later connections —
// concurrent ones included — share it. Tenants are isolated: separate
// schedulers, separate machine pools, separate admission budgets.
//
// # Admission control and coalescing
//
// Each tenant has a bounded inflight budget (Config.MaxInflight). A
// submit that would exceed it is rejected immediately with a
// CodeOverload ack — the server never queues unboundedly; the client
// backs off and retries. Admitted requests flow through the tenant's
// coalescer goroutine, which drains whatever has accumulated — across
// all of the tenant's connections — and serves it as ONE
// shard.Scheduler.ApplyBatch per tick, exactly the way the WAL
// group-commits concurrent appends: one routing lock, one coalesced
// trim rebuild, per-shard sub-batches, regardless of how many
// connections produced the requests.
//
// # Deadlines
//
// Submit/Batch frames carry an optional relative deadline. An admitted
// request that is still waiting when its deadline passes is rejected
// with CodeDeadline, having mutated nothing: the coalescer checks
// expiry when it builds a batch, and a request that travels alone also
// propagates its deadline into the scheduler (ApplyDeadline), where
// the shard ring enforces it while parked or queued.
//
// # Shutdown
//
// Close stops the listener, kicks every connection's reader, lets
// in-flight requests finish and their acks flush, then closes every
// tenant scheduler (which flushes tenant WALs). In-flight work is
// drained, not dropped.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/wire"
)

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// Config configures a Server. NewScheduler is required; the zero value
// of everything else is usable.
type Config struct {
	// NewScheduler builds the scheduler for a tenant on its first
	// connection. This is the binary's composition point: durability,
	// shard count, and machine pool all live in the closure.
	NewScheduler func(tenant string) (*shard.Scheduler, error)
	// MaxInflight is the per-tenant admission budget: requests admitted
	// but not yet acked. Beyond it, submits are rejected with
	// CodeOverload. Default 1024.
	MaxInflight int
	// BatchLimit caps how many queued requests one coalescer tick
	// serves as a single ApplyBatch. Default 128.
	BatchLimit int
	// MaxTenants bounds lazy tenant creation (0 = unbounded).
	MaxTenants int
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.NewScheduler == nil {
		panic("server: Config.NewScheduler is nil")
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.BatchLimit <= 0 {
		c.BatchLimit = 128
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Server serves the wire protocol over a listener.
type Server struct {
	cfg Config

	mu      sync.Mutex
	ln      net.Listener
	tenants map[string]*tenant
	conns   map[*conn]struct{}
	closed  bool

	wg sync.WaitGroup // live connection handlers
}

// New builds a Server. Call Serve (or use Listen) to start it.
func New(cfg Config) *Server {
	cfg.fill()
	return &Server{
		cfg:     cfg,
		tenants: make(map[string]*tenant),
		conns:   make(map[*conn]struct{}),
	}
}

// Listen starts a server on addr ("host:port") and serves it on a
// background goroutine. The caller owns the returned server and must
// Close it.
func Listen(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := New(cfg)
	s.mu.Lock()
	s.ln = ln // visible to Addr before Serve's goroutine runs
	s.mu.Unlock()
	go func() {
		if err := s.Serve(ln); err != nil && !errors.Is(err, ErrServerClosed) {
			s.cfg.Logf("server: serve: %v", err)
		}
	}()
	return s, nil
}

// Addr returns the listener address (nil before Serve/Listen).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Close, then returns
// ErrServerClosed. One Serve per Server.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			return err
		}
		s.wg.Add(1)
		go s.handle(nc)
	}
}

// Close stops accepting, drains every connection (in-flight requests
// finish and their acks flush), and closes every tenant scheduler.
// Idempotent; concurrent calls all wait for the drain.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	ln := s.ln
	kick := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		kick = append(kick, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range kick {
		c.kick()
	}
	s.wg.Wait()

	if already {
		// A concurrent Close owns the tenant teardown; the wg wait
		// above still made this call block until the drain.
		return nil
	}
	s.mu.Lock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()
	for _, t := range tenants {
		t.close()
	}
	return nil
}

// A Promoter hands the primary role to a warm follower after the
// local write path is sealed (internal/repl's Source implements it).
// It reports the new fencing epoch the follower promoted to.
type Promoter interface {
	Handoff(reason string) (uint64, error)
}

// Handoff performs a graceful primary-to-follower transition: seal
// first, promote second. Close drains every connection — each
// in-flight request's WAL group commit ships to the followers before
// its ack flushes, and the tenant teardown flushes and closes the WALs
// — and only then is the follower told to promote. The ordering
// enforces the fencing rule's third clause: this primary never
// acknowledges a write after Promote is sent. Returns the follower's
// new epoch.
func (s *Server) Handoff(p Promoter, reason string) (uint64, error) {
	if err := s.Close(); err != nil {
		return 0, err
	}
	return p.Handoff(reason)
}

// tenant returns (creating lazily) the named tenant.
func (s *Server) tenant(name string) (*tenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrServerClosed
	}
	if t, ok := s.tenants[name]; ok {
		return t, nil
	}
	if s.cfg.MaxTenants > 0 && len(s.tenants) >= s.cfg.MaxTenants {
		return nil, fmt.Errorf("server: tenant limit %d reached", s.cfg.MaxTenants)
	}
	sc, err := s.cfg.NewScheduler(name)
	if err != nil {
		return nil, fmt.Errorf("server: creating tenant %q: %w", name, err)
	}
	t := &tenant{
		name:  name,
		sched: sc,
		q:     make(chan item, s.cfg.MaxInflight),
		done:  make(chan struct{}),
	}
	go t.run(s.cfg.BatchLimit)
	s.tenants[name] = t
	return t, nil
}

// ---------------------------------------------------------------------
// tenant: one scheduler namespace + its coalescer
// ---------------------------------------------------------------------

// item is one queued unit of tenant work: a request with its ack
// callback, or a ctrl barrier (drain) that runs after everything
// queued before it has been served.
type item struct {
	req jobs.Request
	// exp is the request's absolute expiry (zero = none).
	exp  time.Time
	done func(code wire.Code, detail string)
	ctrl func()
}

type tenant struct {
	name  string
	sched *shard.Scheduler

	// inflight is the admission budget: admitted-not-yet-acked
	// requests. It is bounded by Config.MaxInflight, which also sizes
	// q — so an admitted enqueue never blocks the reader for long.
	inflight atomic.Int64

	// qmu guards qClosed and the channel send (the wal.Log sendMu
	// idiom: enqueuers hold the read side, close holds the write side).
	qmu     sync.RWMutex
	qClosed bool
	q       chan item
	done    chan struct{}

	// Coalescer-owned scratch, reused across ticks.
	reqs []jobs.Request
	idx  []int
}

// enqueue hands an item to the coalescer, reporting false if the
// tenant is shut down.
func (t *tenant) enqueue(it item) bool {
	t.qmu.RLock()
	defer t.qmu.RUnlock()
	if t.qClosed {
		return false
	}
	t.q <- it
	return true
}

// close stops the coalescer (serving everything already queued) and
// closes the scheduler, flushing its WAL.
func (t *tenant) close() {
	t.qmu.Lock()
	if !t.qClosed {
		t.qClosed = true
		close(t.q)
	}
	t.qmu.Unlock()
	<-t.done
	t.sched.Close()
}

// run is the coalescer loop: drain whatever has accumulated across
// the tenant's connections, serve it as one ApplyBatch. Mirrors the
// WAL flusher's group-commit drain.
func (t *tenant) run(batchLimit int) {
	defer close(t.done)
	batch := make([]item, 0, batchLimit)
	for it := range t.q {
		if it.ctrl != nil {
			it.ctrl()
			continue
		}
		batch = append(batch[:0], it)
	fill:
		for len(batch) < batchLimit {
			select {
			case it2, ok := <-t.q:
				if !ok {
					break fill
				}
				if it2.ctrl != nil {
					// Barrier: everything queued before it must be
					// served first.
					t.serve(batch)
					batch = batch[:0]
					it2.ctrl()
					continue
				}
				batch = append(batch, it2)
			default:
				break fill
			}
		}
		t.serve(batch)
	}
}

// serve executes one coalesced tick.
func (t *tenant) serve(batch []item) {
	if len(batch) == 0 {
		return
	}
	// Expiry check at batch build: a request that waited past its
	// deadline in the coalescer queue is rejected un-executed.
	now := time.Now()
	reqs, idx := t.reqs[:0], t.idx[:0]
	for i := range batch {
		it := &batch[i]
		if !it.exp.IsZero() && now.After(it.exp) {
			it.done(wire.CodeDeadline, "")
			continue
		}
		reqs = append(reqs, it.req)
		idx = append(idx, i)
	}
	switch len(reqs) {
	case 0:
	case 1:
		// A lone request keeps full deadline coverage: ApplyDeadline
		// enforces expiry inside the scheduler too (ring park, queue).
		it := &batch[idx[0]]
		var err error
		if it.exp.IsZero() {
			_, err = t.sched.Apply(it.req)
		} else if remain := time.Until(it.exp); remain <= 0 {
			// Expired since the batch-build check: a non-positive
			// timeout would read as "no deadline" downstream.
			err = shard.ErrDeadlineExceeded
		} else {
			_, err = t.sched.ApplyDeadline(it.req, remain)
		}
		it.done(codeOf(err))
	default:
		_, err := t.sched.ApplyBatch(reqs)
		var be *sched.BatchError
		if err != nil && !errors.As(err, &be) {
			be = nil
		}
		for k := range reqs {
			e := err
			if be != nil {
				e = be.At(k)
			}
			batch[idx[k]].done(codeOf(e))
		}
	}
	t.reqs, t.idx = reqs, idx // keep grown scratch
}

// codeOf maps a scheduler error to its wire code.
func codeOf(err error) (wire.Code, string) {
	switch {
	case err == nil:
		return wire.CodeOK, ""
	case errors.Is(err, shard.ErrDeadlineExceeded):
		return wire.CodeDeadline, ""
	case errors.Is(err, sched.ErrInfeasible):
		return wire.CodeInfeasible, err.Error()
	case errors.Is(err, sched.ErrDuplicateJob):
		return wire.CodeDuplicate, err.Error()
	case errors.Is(err, sched.ErrUnknownJob):
		return wire.CodeUnknownJob, err.Error()
	case errors.Is(err, shard.ErrClosed):
		return wire.CodeClosed, ""
	default:
		return wire.CodeInternal, err.Error()
	}
}

// ---------------------------------------------------------------------
// connection handling
// ---------------------------------------------------------------------

const handshakeTimeout = 30 * time.Second

type conn struct {
	nc net.Conn
	t  *tenant

	// out feeds the writer goroutine. Sends go through send() (closed
	// check under outMu); capacity covers the tenant budget so acks
	// rarely block the coalescer.
	outMu     sync.RWMutex
	outClosed bool
	out       chan wire.Frame
	wdone     chan struct{}

	// pending counts outstanding acks (submits, drains, snapshots):
	// teardown waits for them before closing out, so an accepted
	// request's ack is never dropped by a racing shutdown.
	pending sync.WaitGroup

	// kicked marks a shutdown kick; the handshake-deadline reset
	// re-checks it so a kick can never be erased.
	kicked atomic.Bool
}

// kick interrupts the connection's blocked read (server shutdown).
func (c *conn) kick() {
	c.kicked.Store(true)
	c.nc.SetReadDeadline(time.Now())
}

// send queues a frame for the writer, dropping it if the writer is
// gone (connection torn down — its client cannot receive anything).
func (c *conn) send(f wire.Frame) {
	c.outMu.RLock()
	defer c.outMu.RUnlock()
	if c.outClosed {
		return
	}
	c.out <- f
}

func (c *conn) closeOut() {
	c.outMu.Lock()
	if !c.outClosed {
		c.outClosed = true
		close(c.out)
	}
	c.outMu.Unlock()
}

// writeLoop is the connection's writer: one goroutine owns the socket
// write side, batching frames through bufio and flushing when the
// queue goes idle (the group-commit shape again). After a write error
// it keeps draining so producers never block on a dead connection.
func (c *conn) writeLoop() {
	defer close(c.wdone)
	bw := bufio.NewWriter(c.nc)
	var buf []byte
	var werr error
	for f := range c.out {
		if werr != nil {
			continue // drain
		}
		buf, werr = wire.WriteFrame(bw, buf, &f)
		if werr == nil && len(c.out) == 0 {
			werr = bw.Flush()
		}
	}
	if werr == nil {
		bw.Flush()
	}
}

// fatal writes a connection-fatal Err frame directly (the writer may
// not exist yet) and is followed by connection close.
func fatal(nc net.Conn, code wire.Code, detail string) {
	f := wire.Frame{Kind: wire.KindErr, Code: code, Detail: detail}
	b, err := wire.AppendFrame(nil, &f)
	if err == nil {
		nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
		nc.Write(b)
	}
}

// handle runs one connection: handshake, then the read loop.
func (s *Server) handle(nc net.Conn) {
	defer s.wg.Done()
	defer nc.Close()

	// Handshake under a read deadline so a silent client cannot pin
	// the handler forever.
	nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	hello, buf, err := wire.ReadFrame(nc, nil)
	if err != nil {
		return
	}
	if hello.Kind != wire.KindHello {
		fatal(nc, wire.CodeBadRequest, fmt.Sprintf("expected hello, got %s", hello.Kind))
		return
	}
	if hello.Version != wire.Version {
		fatal(nc, wire.CodeBadRequest, fmt.Sprintf("unsupported protocol version %d (want %d)", hello.Version, wire.Version))
		return
	}
	t, err := s.tenant(hello.Tenant)
	if err != nil {
		code := wire.CodeInternal
		if errors.Is(err, ErrServerClosed) {
			code = wire.CodeClosed
		}
		fatal(nc, code, err.Error())
		return
	}

	c := &conn{
		nc:    nc,
		t:     t,
		out:   make(chan wire.Frame, s.cfg.MaxInflight+64),
		wdone: make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		fatal(nc, wire.CodeClosed, ErrServerClosed.Error())
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()

	go c.writeLoop()
	c.send(wire.Frame{Kind: wire.KindWelcome, Shards: t.sched.Shards(), Machines: t.sched.Machines()})

	// Lift the handshake deadline — unless a shutdown kick raced the
	// reset, in which case re-arm it so the kick sticks.
	nc.SetReadDeadline(time.Time{})
	if c.kicked.Load() {
		nc.SetReadDeadline(time.Now())
	}

	s.readLoop(c, buf)

	// Drain: every accepted request acks, acks flush, then the socket
	// closes (via the deferred nc.Close).
	c.pending.Wait()
	c.closeOut()
	<-c.wdone
}

// readLoop dispatches frames until the connection ends (client close,
// protocol error, or shutdown kick).
func (s *Server) readLoop(c *conn, buf []byte) {
	for {
		f, b, err := wire.ReadFrame(c.nc, buf)
		buf = b
		if err != nil {
			if isWireError(err) {
				s.cfg.Logf("server: %s tenant %q: protocol error: %v", c.nc.RemoteAddr(), c.t.name, err)
				c.send(wire.Frame{Kind: wire.KindErr, Code: wire.CodeBadRequest, Detail: err.Error()})
			}
			return
		}
		switch f.Kind {
		case wire.KindSubmit:
			s.submit(c, &f)
		case wire.KindBatch:
			s.submitBatch(c, &f)
		case wire.KindDrain:
			s.drain(c, f.ID)
		case wire.KindSnapshotReq:
			s.snapshot(c, f.ID)
		case wire.KindResize:
			s.resize(c, f.ID, f.Machines)
		default:
			c.send(wire.Frame{Kind: wire.KindErr, Code: wire.CodeBadRequest,
				Detail: fmt.Sprintf("unexpected %s frame", f.Kind)})
			return
		}
	}
}

// isWireError distinguishes protocol violations (worth an Err frame)
// from transport ends (EOF, reset, kick) where nobody is listening.
func isWireError(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return false // read deadline (shutdown kick) or transport timeout
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return false // clean or torn client close
	}
	var oe *net.OpError
	return !errors.As(err, &oe)
}

func expiry(deadlineUS uint64) time.Time {
	if deadlineUS == 0 {
		return time.Time{}
	}
	return time.Now().Add(time.Duration(deadlineUS) * time.Microsecond)
}

// submit admits one request: budget check, then the coalescer queue.
func (s *Server) submit(c *conn, f *wire.Frame) {
	id := f.ID
	if err := f.Req.Validate(); err != nil {
		c.send(wire.Frame{Kind: wire.KindAck, ID: id, Code: wire.CodeBadRequest, Detail: err.Error()})
		return
	}
	t := c.t
	if t.inflight.Add(1) > int64(s.cfg.MaxInflight) {
		t.inflight.Add(-1)
		c.send(wire.Frame{Kind: wire.KindAck, ID: id, Code: wire.CodeOverload,
			Detail: wire.ErrOverload.Error()})
		return
	}
	c.pending.Add(1)
	ok := t.enqueue(item{req: f.Req, exp: expiry(f.DeadlineUS), done: func(code wire.Code, detail string) {
		c.send(wire.Frame{Kind: wire.KindAck, ID: id, Code: code, Detail: detail})
		t.inflight.Add(-1)
		c.pending.Done()
	}})
	if !ok {
		c.send(wire.Frame{Kind: wire.KindAck, ID: id, Code: wire.CodeClosed})
		t.inflight.Add(-1)
		c.pending.Done()
	}
}

// submitBatch admits a Batch frame: all-or-nothing on the budget, one
// BatchAck with per-request codes once every member settles.
func (s *Server) submitBatch(c *conn, f *wire.Frame) {
	id := f.ID
	t := c.t
	n := len(f.Batch)
	codes := make([]wire.Code, n)

	if t.inflight.Add(int64(n)) > int64(s.cfg.MaxInflight) {
		t.inflight.Add(int64(-n))
		for i := range codes {
			codes[i] = wire.CodeOverload
		}
		c.send(wire.Frame{Kind: wire.KindBatchAck, ID: id, Codes: codes})
		return
	}
	c.pending.Add(1)
	var remaining atomic.Int64
	exp := expiry(f.DeadlineUS)
	settle := func() {
		if remaining.Add(-1) == 0 {
			c.send(wire.Frame{Kind: wire.KindBatchAck, ID: id, Codes: codes})
			c.pending.Done()
		}
	}
	// Count every member before enqueueing any, so an early settle
	// cannot fire the ack while later members are still unqueued.
	remaining.Store(int64(n))
	for i, r := range f.Batch {
		i := i
		if err := r.Validate(); err != nil {
			codes[i] = wire.CodeBadRequest
			t.inflight.Add(-1)
			settle()
			continue
		}
		ok := t.enqueue(item{req: r, exp: exp, done: func(code wire.Code, _ string) {
			codes[i] = code
			t.inflight.Add(-1)
			settle()
		}})
		if !ok {
			codes[i] = wire.CodeClosed
			t.inflight.Add(-1)
			settle()
		}
	}
}

// drain enqueues a barrier: its ack means everything this tenant had
// queued before the drain has been served.
func (s *Server) drain(c *conn, id uint64) {
	t := c.t
	c.pending.Add(1)
	ok := t.enqueue(item{ctrl: func() {
		code, detail := codeOf(t.sched.Drain())
		c.send(wire.Frame{Kind: wire.KindDrainAck, ID: id, Code: code, Detail: detail})
		c.pending.Done()
	}})
	if !ok {
		c.send(wire.Frame{Kind: wire.KindDrainAck, ID: id, Code: wire.CodeClosed})
		c.pending.Done()
	}
}

// snapshot answers with a consistent schedule snapshot. It runs off
// the reader so a big snapshot never stalls request intake.
func (s *Server) snapshot(c *conn, id uint64) {
	t := c.t
	c.pending.Add(1)
	go func() {
		defer c.pending.Done()
		snap := t.sched.Snapshot()
		placed := make([]wire.PlacedJob, 0, len(snap.Jobs))
		for _, j := range snap.Jobs {
			placed = append(placed, wire.PlacedJob{Job: j, Placement: snap.Assignment[j.Name]})
		}
		c.send(wire.Frame{Kind: wire.KindSnapshot, ID: id, Machines: snap.Machines, Jobs: placed})
	}()
}

// resize re-partitions the tenant's machine pool.
func (s *Server) resize(c *conn, id uint64, machines int) {
	t := c.t
	c.pending.Add(1)
	go func() {
		defer c.pending.Done()
		_, err := t.sched.Resize(machines)
		code, detail := codeOf(err)
		c.send(wire.Frame{Kind: wire.KindAck, ID: id, Code: code, Detail: detail})
	}()
}
