// End-to-end tests for the reallocd front-end, driven through the real
// client over loopback TCP: tenant isolation, feasibility of the
// served schedules, explicit overload rejection, deadline expiry, and
// races between tenant creation, submission, and graceful shutdown.
//
// (Test files are free to import repro and repro/client; the layering
// gate covers only non-test sources.)
package server_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	realloc "repro"
	"repro/client"
	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/shard"
)

func newScheduler(string) (*shard.Scheduler, error) {
	return realloc.NewSharded(realloc.WithShards(2), realloc.WithMachines(8)), nil
}

func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.NewScheduler == nil {
		cfg.NewScheduler = newScheduler
	}
	s, err := server.Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dial(t *testing.T, s *server.Server, tenant string) *client.Client {
	t.Helper()
	c, err := client.Dial(s.Addr().String(), tenant)
	if err != nil {
		t.Fatalf("dial tenant %q: %v", tenant, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// verifySnapshot checks a client-side snapshot with the same oracle
// the in-process tests use.
func verifySnapshot(t *testing.T, snap client.Snapshot) {
	t.Helper()
	js := make([]jobs.Job, 0, len(snap.Jobs))
	asn := make(jobs.Assignment, len(snap.Jobs))
	for _, pj := range snap.Jobs {
		js = append(js, pj.Job)
		asn[pj.Job.Name] = pj.Placement
	}
	if err := feasible.VerifySchedule(js, asn, snap.Machines); err != nil {
		t.Fatalf("served schedule infeasible: %v", err)
	}
}

// TestServerTwoTenantsE2E: two tenants submit concurrently — including
// IDENTICAL job names — and each ends up with its own feasible
// schedule containing exactly its own jobs.
func TestServerTwoTenantsE2E(t *testing.T) {
	s := startServer(t, server.Config{})
	const perTenant = 64

	var wg sync.WaitGroup
	clients := make(map[string]*client.Client)
	for _, tenant := range []string{"acme", "globex"} {
		clients[tenant] = dial(t, s, tenant)
	}
	for tenant, c := range clients {
		wg.Add(1)
		go func(tenant string, c *client.Client) {
			defer wg.Done()
			// Pipelined inserts: both tenants use the same names, which
			// only works if their namespaces are really separate.
			pend := make([]*client.Pending, 0, perTenant)
			for i := 0; i < perTenant; i++ {
				start := int64(i%16) * 64
				p, err := c.SubmitAsync(jobs.InsertReq(fmt.Sprintf("job-%03d", i), start, start+64), 0)
				if err != nil {
					t.Errorf("%s: submit %d: %v", tenant, i, err)
					return
				}
				pend = append(pend, p)
			}
			for i, p := range pend {
				if err := p.Wait(); err != nil {
					t.Errorf("%s: insert %d rejected: %v", tenant, i, err)
				}
			}
			// Delete a slice of them synchronously.
			for i := 0; i < perTenant/4; i++ {
				if err := c.Submit(jobs.DeleteReq(fmt.Sprintf("job-%03d", i*4))); err != nil {
					t.Errorf("%s: delete %d: %v", tenant, i*4, err)
				}
			}
		}(tenant, c)
	}
	wg.Wait()

	for tenant, c := range clients {
		if err := c.Drain(); err != nil {
			t.Fatalf("%s: drain: %v", tenant, err)
		}
		snap, err := c.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot: %v", tenant, err)
		}
		want := perTenant - perTenant/4
		if len(snap.Jobs) != want {
			t.Fatalf("%s: snapshot holds %d jobs, want %d", tenant, len(snap.Jobs), want)
		}
		verifySnapshot(t, snap)
	}
}

// TestServerBatchAndResize: the batch frame reports per-request
// verdicts index-aligned, and a resize reshapes the pool visibly.
func TestServerBatchAndResize(t *testing.T) {
	s := startServer(t, server.Config{})
	c := dial(t, s, "acme")

	reqs := []jobs.Request{
		jobs.InsertReq("a", 0, 64),
		jobs.InsertReq("b", 0, 64),
		jobs.DeleteReq("nonexistent"),
		jobs.InsertReq("c", 64, 128),
	}
	errs, err := c.Batch(reqs, 0)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i, e := range errs {
		if i == 2 {
			if !errors.Is(e, client.ErrUnknownJob) {
				t.Fatalf("batch[2] = %v, want ErrUnknownJob", e)
			}
			continue
		}
		if e != nil {
			t.Fatalf("batch[%d] = %v, want nil", i, e)
		}
	}

	if err := c.Resize(16); err != nil {
		t.Fatalf("resize: %v", err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if snap.Machines != 16 {
		t.Fatalf("machines after resize = %d, want 16", snap.Machines)
	}
	if len(snap.Jobs) != 3 {
		t.Fatalf("snapshot holds %d jobs, want 3", len(snap.Jobs))
	}
	verifySnapshot(t, snap)
}

// TestServerOverloadExplicit: a batch larger than the tenant's
// inflight budget is rejected with an explicit overload verdict on
// every member — never queued, never silently dropped.
func TestServerOverloadExplicit(t *testing.T) {
	s := startServer(t, server.Config{MaxInflight: 4})
	c := dial(t, s, "acme")

	reqs := make([]jobs.Request, 8) // 8 > budget of 4
	for i := range reqs {
		reqs[i] = jobs.InsertReq(fmt.Sprintf("burst-%d", i), 0, 64)
	}
	errs, err := c.Batch(reqs, 0)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i, e := range errs {
		if !errors.Is(e, client.ErrOverload) {
			t.Fatalf("batch[%d] = %v, want ErrOverload", i, e)
		}
	}
	// The rejection refunded the budget: a fitting batch now succeeds.
	errs, err = c.Batch(reqs[:4], 0)
	if err != nil {
		t.Fatalf("retry batch: %v", err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("retry batch[%d] = %v, want nil", i, e)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServerOverloadBurst: an open-loop pipelined burst against a tiny
// budget yields only OK and ErrOverload verdicts — and exactly one
// verdict per request (no lost acks).
func TestServerOverloadBurst(t *testing.T) {
	s := startServer(t, server.Config{MaxInflight: 2})
	c := dial(t, s, "acme")

	const n = 256
	pend := make([]*client.Pending, 0, n)
	for i := 0; i < n; i++ {
		p, err := c.SubmitAsync(jobs.InsertReq(fmt.Sprintf("b-%03d", i), int64(i%8)*64, int64(i%8)*64+64), 0)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		pend = append(pend, p)
	}
	var ok, over int
	for i, p := range pend {
		switch err := p.Wait(); {
		case err == nil:
			ok++
		case errors.Is(err, client.ErrOverload):
			over++
		default:
			t.Fatalf("submit %d: unexpected verdict %v", i, err)
		}
	}
	if ok+over != n {
		t.Fatalf("verdicts %d+%d != %d submits", ok, over, n)
	}
	if ok == 0 {
		t.Fatal("no submit succeeded under overload")
	}
	t.Logf("burst: %d ok, %d overloaded", ok, over)
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != ok {
		t.Fatalf("snapshot holds %d jobs but %d submits were acked ok", len(snap.Jobs), ok)
	}
	verifySnapshot(t, snap)
}

// TestServerDeadlineExpiry: a microsecond deadline expires in the
// coalescer queue (or the shard ring) and is rejected un-executed with
// the deadline verdict; the schedule never contains the expired job.
func TestServerDeadlineExpiry(t *testing.T) {
	s := startServer(t, server.Config{})
	c := dial(t, s, "acme")

	expired := false
	for try := 0; try < 50 && !expired; try++ {
		err := c.SubmitDeadline(jobs.InsertReq(fmt.Sprintf("dl-%d", try), 0, 64), time.Microsecond)
		switch {
		case errors.Is(err, client.ErrDeadline):
			expired = true
		case err == nil:
			// Won the race this round; clean up and try again.
			if err := c.Submit(jobs.DeleteReq(fmt.Sprintf("dl-%d", try))); err != nil {
				t.Fatalf("cleanup delete: %v", err)
			}
		default:
			t.Fatalf("submit with 1µs deadline: unexpected %v", err)
		}
	}
	if !expired {
		t.Fatal("no 1µs-deadline submit expired in 50 tries")
	}
	// A comfortable deadline sails through.
	if err := c.SubmitDeadline(jobs.InsertReq("kept", 0, 64), time.Second); err != nil {
		t.Fatalf("submit with 1s deadline: %v", err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, pj := range snap.Jobs {
		if pj.Job.Name != "kept" {
			t.Fatalf("expired or stray job %q in schedule", pj.Job.Name)
		}
	}
}

// TestServerGracefulCloseDrains: close with submits in flight — every
// accepted request still gets exactly one verdict (possibly
// ErrClosed), and the server Close returns.
func TestServerGracefulCloseDrains(t *testing.T) {
	s := startServer(t, server.Config{})
	c := dial(t, s, "acme")

	const n = 128
	pend := make([]*client.Pending, 0, n)
	for i := 0; i < n; i++ {
		p, err := c.SubmitAsync(jobs.InsertReq(fmt.Sprintf("g-%03d", i), 0, 4096), 0)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		pend = append(pend, p)
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()

	var acked, failed int
	for _, p := range pend {
		switch err := p.Wait(); {
		case err == nil:
			acked++
		case errors.Is(err, client.ErrClosed):
			failed++
		default:
			failed++
		}
	}
	if acked+failed != n {
		t.Fatalf("%d+%d verdicts for %d submits", acked, failed, n)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server Close did not return")
	}
}

// TestServerConcurrentTenantsRace (-race): tenant creation, submission
// from many connections, and graceful shutdown all race; every
// submitted request observed exactly one verdict.
func TestServerConcurrentTenantsRace(t *testing.T) {
	s := startServer(t, server.Config{MaxInflight: 64})

	const (
		tenants   = 6
		connsPer  = 2
		perConn   = 40
		closeTrig = tenants * connsPer * perConn / 3
	)
	var verdicts atomic.Int64
	var submitted atomic.Int64
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		for ci := 0; ci < connsPer; ci++ {
			wg.Add(1)
			go func(ti, ci int) {
				defer wg.Done()
				c, err := client.Dial(s.Addr().String(), fmt.Sprintf("tenant-%d", ti))
				if err != nil {
					return // server may already be closing
				}
				defer c.Close()
				for i := 0; i < perConn; i++ {
					p, err := c.SubmitAsync(jobs.InsertReq(fmt.Sprintf("c%d-%03d", ci, i), 0, 4096), 0)
					if err != nil {
						return // connection torn down by shutdown
					}
					submitted.Add(1)
					p2 := p
					wg.Add(1)
					go func() {
						defer wg.Done()
						p2.Wait() // any verdict is fine; it must arrive
						verdicts.Add(1)
					}()
				}
			}(ti, ci)
		}
	}
	// Let the race build, then close mid-flight.
	for verdicts.Load() < closeTrig {
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if v, sub := verdicts.Load(), submitted.Load(); v != sub {
		t.Fatalf("%d verdicts for %d accepted submits — lost acks", v, sub)
	}
	t.Logf("race: %d submits, all acked", submitted.Load())
}
