package server_test

import (
	"errors"
	"testing"

	"repro/client"
	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/workload"
)

// TestServerHotKeyTraceReplay replays a hot-key trace through the
// served path: 80% of the inserts route to shard 0 of the 2-shard
// per-tenant scheduler, so the storm crosses the coalescer, the
// admission budget, and the shard overflow path at once. The contract
// under that pressure: every request gets exactly one verdict (no
// lost acks, no unbounded queueing — overload is an explicit ack),
// every verdict is OK/Overload/UnknownJob, and the final snapshot is
// exactly the set of OK-acked inserts minus OK-acked deletes.
func TestServerHotKeyTraceReplay(t *testing.T) {
	// The per-tenant scheduler (newScheduler) runs 2 shards with the
	// default routing policy, which is exactly NewRing(2,
	// DefaultReplicas) — so an identical client-side ring predicts the
	// server's routing and lets the trace aim at shard 0.
	ring := shard.NewRing(2, shard.DefaultReplicas)
	reqs, err := workload.TraceReplay(workload.TraceConfig{
		Seed: 11, Machines: 8, Steps: 600,
		HotFraction: 0.8,
		HotRoute:    func(name string) bool { return ring.Route(name, 2) == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}

	s := startServer(t, server.Config{MaxInflight: 64})
	c := dial(t, s, "acme")

	type pending struct {
		p   *client.Pending
		req jobs.Request
	}
	pend := make([]pending, 0, len(reqs))
	for i, r := range reqs {
		p, err := c.SubmitAsync(r, 0)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		pend = append(pend, pending{p, r})
	}

	live := map[string]bool{}
	var ok, over, unknown int
	for i, pe := range pend {
		switch err := pe.p.Wait(); {
		case err == nil:
			ok++
			if pe.req.Kind == jobs.Insert {
				live[pe.req.Name] = true
			} else {
				if !live[pe.req.Name] {
					t.Fatalf("request %d: delete of %q acked ok but its insert never was", i, pe.req.Name)
				}
				delete(live, pe.req.Name)
			}
		case errors.Is(err, client.ErrOverload):
			over++
		case errors.Is(err, client.ErrUnknownJob):
			unknown++
			// Only a delete whose insert was shed upstream may land
			// here; an unknown verdict for a live name is a desync.
			if pe.req.Kind != jobs.Delete {
				t.Fatalf("request %d: insert %q acked unknown-job", i, pe.req.Name)
			}
			if live[pe.req.Name] {
				t.Fatalf("request %d: delete of live job %q acked unknown-job", i, pe.req.Name)
			}
		default:
			t.Fatalf("request %d (%s): unexpected verdict %v", i, pe.req, err)
		}
	}
	if ok+over+unknown != len(reqs) {
		t.Fatalf("verdicts %d+%d+%d != %d submits", ok, over, unknown, len(reqs))
	}
	if over == 0 {
		t.Fatal("trace never tripped the admission budget — storm too gentle to test overload acks")
	}
	t.Logf("trace: %d ok, %d overloaded, %d unknown deletes", ok, over, unknown)

	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != len(live) {
		t.Fatalf("snapshot holds %d jobs but the acks say %d are live", len(snap.Jobs), len(live))
	}
	for _, pj := range snap.Jobs {
		if !live[pj.Job.Name] {
			t.Fatalf("snapshot holds %q which was never acked live", pj.Job.Name)
		}
	}
	verifySnapshot(t, snap)
}

// TestServerHotKeyTraceOverflowCounters replays the skewed trace and
// then checks the tenant's shard report: the hot shard must actually
// have rerouted inserts and the cold shard must have served overflow —
// proof the served path exercised the overflow machinery rather than
// absorbing the skew some other way.
func TestServerHotKeyTraceOverflowCounters(t *testing.T) {
	var tenantSched *shard.Scheduler
	cfg := server.Config{NewScheduler: func(tenant string) (*shard.Scheduler, error) {
		s, err := newScheduler(tenant)
		if err == nil && tenantSched == nil {
			tenantSched = s
		}
		return s, err
	}}
	ring := shard.NewRing(2, shard.DefaultReplicas)
	hotShard := ring.Route("probe", 2) // either shard works as the hot target
	// Gamma 1 over a short horizon: the global budget then admits up to
	// 8 jobs per slot while the hot shard's 4 machines hold only 4, so
	// skewed slots genuinely exceed local capacity. (With the stack's
	// usual gamma 8 the budget caps density below any shard's capacity
	// and no skew can force overflow.)
	reqs, err := workload.TraceReplay(workload.TraceConfig{
		Seed: 13, Machines: 8, Gamma: 1, Horizon: 64, Steps: 500,
		HotFraction: 0.9,
		HotRoute:    func(name string) bool { return ring.Route(name, 2) == hotShard },
	})
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, cfg)
	c := dial(t, s, "acme")
	for i, r := range reqs {
		// Synchronous submits: this test is about the shard counters,
		// not the admission budget. The tight budget makes occasional
		// terminal infeasibility legitimate (and its deletes unknown);
		// the counters below prove the overflow path ran.
		err := c.Submit(r)
		if err != nil && !errors.Is(err, client.ErrInfeasible) && !errors.Is(err, client.ErrUnknownJob) {
			t.Fatalf("submit %d (%s): %v", i, r, err)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	rep := tenantSched.Report()
	tot := rep.Total()
	if rep.Shards[hotShard].Rerouted == 0 {
		t.Errorf("hot shard %d never rerouted an insert — skew did not bite", hotShard)
	}
	if tot.Overflow == 0 {
		t.Error("no overflow placements — the served trace never exercised the overflow path")
	}
	t.Logf("served trace: rerouted=%d overflow=%d failures=%d", tot.Rerouted, tot.Overflow, tot.Failures)
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	verifySnapshot(t, snap)
}
