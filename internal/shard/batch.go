// Batched admission for the sharded front-end. ApplyBatch groups a
// request batch by target shard in one routing pass (inserts by the
// routing policy, deletes by the routing table — a delete of a name the
// batch itself inserts rides in the same group, after its insert), fans
// the per-shard sub-batches out to the shard workers concurrently as
// single control tasks, and reconciles the failures that need a second
// placement — inserts a shard rejected as locally infeasible (the
// overflow path) and deletes whose job a concurrent resize migrated
// away (the chase path) — in ONE second pass instead of one hop per
// request.
//
// Compared to per-request Apply, a batch pays one routing-table lock
// acquisition per request but only one channel round trip per involved
// shard, and each shard serves its sub-batch through the inner stack's
// own bulk path (alignment -> balanced delegation -> trimming), so the
// trim layer's rebuild coalescing applies per shard sub-batch.
//
// Ordering: requests on the same shard execute in batch order; requests
// on different shards execute concurrently, exactly like independent
// Apply calls from different goroutines. Per-name ordering is preserved
// because a name's insert and delete always land in the same group.
package shard

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/wal"
)

var _ sched.BatchScheduler = (*Scheduler)(nil)

// subScratch is the reusable per-shard sub-batch buffer of execBatchOn.
// Pooled so a steady stream of batches fans out without reallocating
// the request slices. Pooling invariant: reqs is cleared (request
// structs zeroed, dropping their name strings) before return-to-pool.
type subScratch struct {
	reqs  []jobs.Request
	flags []bool
}

var subPool = sync.Pool{New: func() any { return new(subScratch) }}

// routeScratch is ApplyBatch's reusable routing state: the per-shard
// groups, the per-request shard/primary tables, and the per-name
// overlay maps of the routing and reconcile passes. Pooled so a steady
// stream of batches reuses the buffers. Pooling invariant: the maps are
// cleared (dropping their name-string keys) and the slices resliced to
// zero length before return-to-pool.
type routeScratch struct {
	groups       [][]int
	shardOf      []int
	primaries    []int
	live         map[string]int
	deletedAt    map[string]int
	deferredName map[string]bool
	overflow     map[int]bool
	retriedTo    map[string]int
}

var routePool = sync.Pool{New: func() any {
	return &routeScratch{
		live:         make(map[string]int),
		deletedAt:    make(map[string]int),
		deferredName: make(map[string]bool),
		overflow:     make(map[int]bool),
		retriedTo:    make(map[string]int),
	}
}}

func takeRoute(shards, reqs int) *routeScratch {
	sc := routePool.Get().(*routeScratch)
	sc.resetGroups(shards)
	if cap(sc.shardOf) < reqs {
		sc.shardOf = make([]int, reqs)
		sc.primaries = make([]int, reqs)
	}
	sc.shardOf = sc.shardOf[:reqs]
	sc.primaries = sc.primaries[:reqs]
	return sc
}

// resetGroups readies the per-shard group lists for a routing pass,
// keeping each shard's backing array.
func (sc *routeScratch) resetGroups(shards int) {
	for len(sc.groups) < shards {
		sc.groups = append(sc.groups, nil)
	}
	sc.groups = sc.groups[:shards]
	for i := range sc.groups {
		sc.groups[i] = sc.groups[i][:0]
	}
}

func putRoute(sc *routeScratch) {
	clear(sc.live)
	clear(sc.deletedAt)
	clear(sc.deferredName)
	clear(sc.overflow)
	clear(sc.retriedTo)
	routePool.Put(sc)
}

func takeSub(n int) *subScratch {
	b := subPool.Get().(*subScratch)
	if cap(b.reqs) < n {
		b.reqs = make([]jobs.Request, n)
		b.flags = make([]bool, n)
	}
	b.reqs = b.reqs[:n]
	b.flags = b.flags[:n]
	clear(b.flags)
	return b
}

func putSub(b *subScratch) {
	clear(b.reqs) // zero the name strings before pooling
	subPool.Put(b)
}

// ApplyBatch serves the batch with shard-parallel sub-batches. It is
// synchronous (like Apply) and safe for concurrent use. See
// sched.BatchScheduler for the shared bulk semantics; after Close every
// request fails with ErrClosed.
func (s *Scheduler) ApplyBatch(reqs []jobs.Request) ([]metrics.Cost, error) {
	costs := make([]metrics.Cost, len(reqs))
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return costs, nil
	}
	if s.isClosed() {
		for i := range errs {
			errs[i] = ErrClosed
		}
		return costs, sched.NewBatchError(errs)
	}

	sc := takeRoute(len(s.workers), len(reqs))
	defer putRoute(sc)
	deferred := s.routeBatch(sc, reqs, errs)
	var shed []string
	s.fanOut(sc.groups, reqs, costs, errs, nil, &shed)
	s.reconcile(sc, reqs, deferred, costs, errs, &shed)
	err := sched.WithEvictions(sched.NewBatchError(errs), shed)
	if s.log != nil {
		// Group-commit the whole batch as ONE record before it is
		// acknowledged. The full original batch is logged (including
		// failed requests — their trim-recovery rebuilds mutate inner
		// state) so a replay through this same ApplyBatch path
		// reproduces the routing, the sub-batches, and every side
		// effect exactly.
		if werr := s.log.Append(wal.BatchRecord(reqs)); werr != nil {
			// Surface the broken durability promise without discarding
			// the batch verdict: %w keeps the *BatchError reachable via
			// errors.As for callers mapping failures to indices.
			if err == nil {
				err = fmt.Errorf("shard: batch applied but WAL append failed: %w", werr)
			} else {
				err = fmt.Errorf("shard: batch applied but WAL append failed (%v); batch result: %w", werr, err)
			}
		}
	}
	return costs, err
}

// routeBatch validates and routes every request, reserving insert names
// in the routing table (so concurrent inserts of the same name are
// rejected as duplicates, exactly like the per-request path). The whole
// batch is routed under ONE routing-table lock acquisition — the main
// front-end amortization — with two exceptions: deletes of
// resize-migrating jobs take a slow path that waits the migration out,
// and a re-insert of a name the batch deletes on a DIFFERENT shard than
// its routing primary is deferred to the reconcile pass (it must not
// execute before the delete, and cross-shard sub-batches are
// unordered). Same-name request chains on one shard ride in one group,
// in batch order, so a batch may freely insert, delete, and re-insert a
// name — exactly like back-to-back Apply calls.
//
// It fills sc.groups with the per-shard groups of batch indices (in
// batch order) and sc.shardOf with each routed request's shard (-1 when
// not routed in pass 1), and returns the deferred request indices.
func (s *Scheduler) routeBatch(sc *routeScratch, reqs []jobs.Request, errs []error) []int {
	groups := sc.groups
	shardOf := sc.shardOf
	primaries := sc.primaries
	for i, r := range reqs {
		shardOf[i] = -1
		primaries[i] = -1
		if err := r.Validate(); err != nil {
			errs[i] = err
		} else if r.Kind == jobs.Insert {
			primaries[i] = s.policy.Route(r.Name, len(s.workers))
		}
	}

	// Per-name batch state: live tracks names an in-batch insert owns
	// (value: its shard), deletedAt names whose latest in-batch request
	// is a delete (value: the delete's shard), deferredName names whose
	// chain moved to the reconcile pass — every later request on such a
	// name defers too, preserving its order.
	live := sc.live
	deletedAt := sc.deletedAt
	deferredName := sc.deferredName
	var deferred []int
	var slow []int // deletes of resize-migrating jobs
	s.mu.Lock()
	for i, r := range reqs {
		if errs[i] != nil {
			continue
		}
		if deferredName[r.Name] {
			deferred = append(deferred, i)
			continue
		}
		switch r.Kind {
		case jobs.Insert:
			if _, isLive := live[r.Name]; isLive {
				errs[i] = duplicateErr(r.Name)
				continue
			}
			if ds, wasDeleted := deletedAt[r.Name]; wasDeleted {
				// Re-insert after an in-batch delete. On the same shard it
				// rides behind the delete (the existing routing entry keeps
				// blocking concurrent inserts); across shards it defers.
				if primaries[i] == ds {
					s.inflight[ds]++
					shardOf[i] = ds
					groups[ds] = append(groups[ds], i)
					live[r.Name] = ds
					delete(deletedAt, r.Name)
					continue
				}
				deferredName[r.Name] = true
				deferred = append(deferred, i)
				continue
			}
			id := s.names.Intern(r.Name)
			if _, dup := s.routeOf(id); dup {
				errs[i] = duplicateErr(r.Name)
				continue
			}
			s.setRoute(id, reservedShard)
			s.inflight[primaries[i]]++
			shardOf[i] = primaries[i]
			groups[primaries[i]] = append(groups[primaries[i]], i)
			live[r.Name] = primaries[i]
		case jobs.Delete:
			// A delete of a name this batch owns rides behind it on the
			// same shard; its outcome then follows the chain's outcome,
			// like back-to-back Apply calls would.
			if si, isLive := live[r.Name]; isLive {
				shardOf[i] = si
				groups[si] = append(groups[si], i)
				delete(live, r.Name)
				deletedAt[r.Name] = si
				continue
			}
			if ds, wasDeleted := deletedAt[r.Name]; wasDeleted {
				// Double delete: execute on the chain's shard, where the
				// inner scheduler reports the truthful verdict.
				shardOf[i] = ds
				groups[ds] = append(groups[ds], i)
				continue
			}
			_, idx, ok := s.trackedID(r.Name)
			switch {
			case !ok || idx == reservedShard:
				errs[i] = fmt.Errorf("%w: %q", sched.ErrUnknownJob, r.Name)
			case idx >= 0:
				shardOf[i] = idx
				groups[idx] = append(groups[idx], i)
				deletedAt[r.Name] = idx
			default:
				slow = append(slow, i)
			}
		}
	}
	s.mu.Unlock()

	// Slow path: deletes of jobs a concurrent pool shrink is migrating.
	// They join their group after the fast-routed requests, which only
	// reorders them relative to unrelated names.
	for _, i := range slow {
		idx, err := s.resolveDeleteShard(reqs[i].Name)
		if err != nil {
			errs[i] = err
			continue
		}
		shardOf[i] = idx
		groups[idx] = append(groups[idx], i)
	}
	return deferred
}

// fanOut sends every non-empty group to its shard worker as one control
// task and waits for all of them. A non-nil overflow set marks the
// reconcile round (failures are terminal there) and names the requests
// that are genuine overflow retries (counted as Overflow on success).
func (s *Scheduler) fanOut(groups [][]int, reqs []jobs.Request, costs []metrics.Cost, errs []error, overflow map[int]bool, shed *[]string) {
	var wg sync.WaitGroup
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		si, idxs := si, idxs
		wg.Add(1)
		enq := monotonicNS()
		err := s.send(si, task{ctrlDone: &wg, ctrl: func(inner sched.Scheduler, st *metrics.ShardCost) {
			s.execBatchOn(si, inner, st, reqs, idxs, costs, errs, overflow, shed)
			// Every request of the sub-batch shares the control task's
			// enqueue-to-served latency — the same boundary the
			// per-request path records in exec.
			s.workers[si].lat.RecordN(monotonicNS()-enq, uint64(len(idxs)))
		}})
		if err != nil {
			wg.Done()
			s.mu.Lock()
			for _, i := range idxs {
				errs[i] = err
				if reqs[i].Kind != jobs.Insert {
					continue
				}
				s.inflight[si]--
				// Only drop an actual reservation: a ride-behind
				// re-insert holds none — the routing entry still belongs
				// to the committed job whose delete (in this same failed
				// group) never ran.
				if id, v, ok := s.trackedID(reqs[i].Name); ok && v == reservedShard {
					s.dropRoute(id)
				}
			}
			s.mu.Unlock()
		}
	}
	wg.Wait()
}

// execBatchOn runs one shard's sub-batch on the worker goroutine: it
// serves the requests through the inner scheduler's bulk path, folds
// the per-request statistics, and commits the routing-table bookkeeping
// before the control task finishes — so self-checks and snapshots
// queued behind the batch observe a consistent shard.
func (s *Scheduler) execBatchOn(si int, inner sched.Scheduler, st *metrics.ShardCost, reqs []jobs.Request, idxs []int, costs []metrics.Cost, errs []error, overflow map[int]bool, shedOut *[]string) {
	scratch := takeSub(len(idxs))
	defer putSub(scratch)
	sub := scratch.reqs
	for k, i := range idxs {
		sub[k] = reqs[i]
	}
	cs, err := sched.ApplyBatch(inner, sub)
	var be *sched.BatchError
	if err != nil {
		be, _ = err.(*sched.BatchError)
	}
	st.Batches++
	retryable := overflow == nil && len(s.workers) > 1
	rerouting := scratch.flags
	for k, i := range idxs {
		var e error
		switch {
		case be != nil:
			e = be.At(k)
		case err != nil:
			e = err
		}
		st.Requests++
		rerouting[k] = e != nil && retryable && reqs[i].Kind == jobs.Insert && errors.Is(e, sched.ErrInfeasible)
		switch {
		case rerouting[k]:
			st.Rerouted++
		case e != nil:
			st.Failures++
		case overflow[i] && reqs[i].Kind == jobs.Insert:
			st.Overflow++
		}
		st.Cost.Add(cs[k])
		costs[i] = cs[k]
		errs[i] = e
	}
	// Commit the routing-table bookkeeping for the whole sub-batch under
	// one lock acquisition. Jobs the inner stack's batch rebuild shed on
	// a non-underallocated stream leave the routing table too, and are
	// reported in the batch error via shedOut.
	shed := sched.TakeBatchEvictions(inner)
	s.mu.Lock()
	for _, name := range shed {
		if id, idx, ok := s.trackedID(name); ok && idx == si {
			s.dropRoute(id)
			s.loads[si]--
			s.active--
		}
	}
	*shedOut = append(*shedOut, shed...)
	for k, i := range idxs {
		switch reqs[i].Kind {
		case jobs.Insert:
			if rerouting[k] {
				// Keep the reservation: the reconcile pass retries the
				// insert on a fallback shard or settles the failure.
				continue
			}
			s.inflight[si]--
			if errs[i] != nil {
				// Drop the reservation — but only a reservation: a
				// ride-behind re-insert has no reservedShard entry of its
				// own (its chain's preceding delete may have failed,
				// leaving the committed entry in place).
				if id, v, ok := s.trackedID(reqs[i].Name); ok && v == reservedShard {
					s.dropRoute(id)
				}
				continue
			}
			// Intern, not Get: a ride-behind re-insert follows its
			// chain's delete, which released the name's previous ID in
			// this same commit loop.
			s.setRoute(s.names.Intern(reqs[i].Name), si)
			s.loads[si]++
			s.active++
		case jobs.Delete:
			if errs[i] == nil {
				if id, _, ok := s.trackedID(reqs[i].Name); ok {
					s.dropRoute(id)
					s.loads[si]--
					s.active--
				}
			}
		}
	}
	s.mu.Unlock()
}

// reconcile runs the single second pass over the batch: the requests
// routeBatch deferred (cross-shard re-insert chains, which must run
// after pass 1's deletes), infeasible inserts retrying on the
// least-loaded other shard (overflow), and unknown-job deletes whose
// name either belongs to a retried insert or resolved to a different
// shard (a concurrent resize migrated the job). Whatever still fails is
// terminal.
func (s *Scheduler) reconcile(sc *routeScratch, reqs []jobs.Request, deferred []int, costs []metrics.Cost, errs []error, shed *[]string) {
	// Pass 1's groups are fully served: reuse the scratch for the
	// reconcile groups. The overlay maps are reused likewise (the
	// overflow map must be non-nil even when empty — execBatchOn reads
	// nil as "this is pass 1").
	sc.resetGroups(len(s.workers))
	groups := sc.groups
	shardOf := sc.shardOf
	overflow := sc.overflow
	any := false

	// Deferred chains route against the post-pass-1 routing table, with
	// the same in-batch ordering rules as routeBatch.
	clear(sc.live)
	live := sc.live
	for _, i := range deferred {
		r := reqs[i]
		switch r.Kind {
		case jobs.Insert:
			primary := s.policy.Route(r.Name, len(s.workers))
			s.mu.Lock()
			if _, isLive := live[r.Name]; isLive {
				s.mu.Unlock()
				errs[i] = duplicateErr(r.Name)
				continue
			}
			id := s.names.Intern(r.Name)
			if _, dup := s.routeOf(id); dup {
				// The chain's pass-1 delete failed (or a concurrent insert
				// won the name): same verdict back-to-back Apply gives.
				s.mu.Unlock()
				errs[i] = duplicateErr(r.Name)
				continue
			}
			s.setRoute(id, reservedShard)
			s.inflight[primary]++
			s.mu.Unlock()
			shardOf[i] = primary
			groups[primary] = append(groups[primary], i)
			live[r.Name] = primary
			any = true
		case jobs.Delete:
			if si, isLive := live[r.Name]; isLive {
				shardOf[i] = si
				groups[si] = append(groups[si], i)
				delete(live, r.Name)
				any = true
				continue
			}
			errs[i] = fmt.Errorf("%w: %q", sched.ErrUnknownJob, r.Name)
		}
	}

	retriedTo := sc.retriedTo
	for i, r := range reqs {
		if errs[i] == nil || shardOf[i] < 0 {
			continue
		}
		switch {
		case r.Kind == jobs.Insert && len(s.workers) > 1 && errors.Is(errs[i], sched.ErrInfeasible):
			fb := s.leastLoaded(shardOf[i])
			if fb == shardOf[i] {
				s.mu.Lock()
				s.inflight[shardOf[i]]--
				if id, v, ok := s.trackedID(r.Name); ok && v == reservedShard {
					s.dropRoute(id)
				}
				s.mu.Unlock()
				continue
			}
			s.mu.Lock()
			s.inflight[shardOf[i]]--
			s.inflight[fb]++
			s.mu.Unlock()
			groups[fb] = append(groups[fb], i)
			overflow[i] = true
			retriedTo[r.Name] = fb
			any = true
		case r.Kind == jobs.Delete && errors.Is(errs[i], sched.ErrUnknownJob):
			if fb, ok := retriedTo[r.Name]; ok {
				// The delete trailed an insert that is being retried on
				// fb; chase it there, behind the insert.
				groups[fb] = append(groups[fb], i)
				any = true
				continue
			}
			cur, err := s.resolveDeleteShard(r.Name)
			if err != nil || cur == shardOf[i] {
				continue // terminal: the pass-1 error stands
			}
			groups[cur] = append(groups[cur], i)
			any = true
		}
	}
	if any {
		s.fanOut(groups, reqs, costs, errs, overflow, shed)
	}
}
