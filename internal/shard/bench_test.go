package shard

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/jobs"
	"repro/internal/workload"
)

// benchReqs generates one underallocated mixed churn sequence sized to
// the benchmark.
func benchReqs(b *testing.B, machines, steps int) []jobs.Request {
	b.Helper()
	g, err := workload.NewGenerator(workload.Config{
		Seed: 1, Machines: machines, Gamma: 8, Horizon: 1 << 14, Steps: steps,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g.Sequence()
}

// BenchmarkApplySequential measures the single-caller synchronous path
// at several shard counts.
func BenchmarkApplySequential(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			reqs := benchReqs(b, 8, 2048)
			s := New(Config{Shards: shards, Machines: 8, Factory: stackFactory})
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := reqs[i%len(reqs)]
				// Replaying the ring buffer re-applies inserts/deletes
				// of the same names; tolerate the resulting duplicate
				// and unknown errors — the cycle keeps a stable
				// population either way.
				_, _ = s.Apply(r)
			}
		})
	}
}

// BenchmarkSubmitParallel measures async throughput with concurrent
// submitters on disjoint name spaces.
func BenchmarkSubmitParallel(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := New(Config{Shards: shards, Machines: 8, Factory: stackFactory})
			defer s.Close()
			var next int64
			var mu sync.Mutex
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				id := next
				next++
				mu.Unlock()
				i := 0
				for pb.Next() {
					if i%2 == 0 {
						// Insert, then on the next iteration delete it.
						// The delete may race the async insert and fail
						// with ErrUnknownJob; tolerated — the benchmark
						// measures enqueue throughput, not semantics.
						_ = s.Submit(jobs.InsertReq(fmt.Sprintf("b%d-%06d", id, i), 0, 1<<14))
					} else {
						_ = s.Submit(jobs.DeleteReq(fmt.Sprintf("b%d-%06d", id, i-1)))
					}
					i++
				}
			})
			b.StopTimer()
			if err := s.Drain(); err != nil {
				b.Logf("drain: %v", err)
			}
		})
	}
}
