// Per-request deadline semantics: a request whose deadline passes
// before a worker executes it fails with ErrDeadlineExceeded, mutates
// nothing, releases its reservation, and — under a WAL — is never
// logged (recovery has no deadlines; a logged expiry would replay as a
// phantom mutation).
package shard

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/wal"
)

// blockWorker parks shard i's worker on a ctrl task until gate closes.
// It returns a WaitGroup that settles when the worker resumes.
func blockWorker(t *testing.T, s *Scheduler, i int, gate chan struct{}) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	err := s.send(i, task{ctrlDone: &wg, ctrl: func(sched.Scheduler, *metrics.ShardCost) { <-gate }})
	if err != nil {
		t.Fatalf("blocking ctrl send: %v", err)
	}
	return &wg
}

// TestApplyDeadlineExpiresInQueue: a request stuck behind slow work
// past its deadline is rejected un-executed, and the name is free for
// an immediate retry (the insert reservation is released).
func TestApplyDeadlineExpiresInQueue(t *testing.T) {
	s := newTestSharded(t, 1, 2)
	gate := make(chan struct{})
	wg := blockWorker(t, s, 0, gate)
	go func() {
		time.Sleep(60 * time.Millisecond)
		close(gate)
	}()

	_, err := s.ApplyDeadline(jobs.InsertReq("late", 0, 64), 10*time.Millisecond)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("ApplyDeadline behind a stalled worker = %v, want ErrDeadlineExceeded", err)
	}
	wg.Wait()
	if n := s.Active(); n != 0 {
		t.Fatalf("Active() = %d after a deadline rejection, want 0", n)
	}
	// The reservation is gone: the same name inserts cleanly.
	if _, err := s.Apply(jobs.InsertReq("late", 0, 64)); err != nil {
		t.Fatalf("re-insert after deadline rejection: %v", err)
	}
	if n := s.Active(); n != 1 {
		t.Fatalf("Active() = %d, want 1", n)
	}
}

// TestApplyDeadlineUncontended: a generous deadline on an idle
// scheduler never trips.
func TestApplyDeadlineUncontended(t *testing.T) {
	s := newTestSharded(t, 2, 4)
	for i := 0; i < 32; i++ {
		r := jobs.InsertReq(string(rune('a'+i)), 0, 4096)
		if _, err := s.ApplyDeadline(r, time.Second); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if n := s.Active(); n != 32 {
		t.Fatalf("Active() = %d, want 32", n)
	}
}

// TestSubmitDeadlineExpirySurfacesInDrain: an async deadline expiry is
// reported by Drain like any other async failure.
func TestSubmitDeadlineExpirySurfacesInDrain(t *testing.T) {
	s := newTestSharded(t, 1, 2)
	gate := make(chan struct{})
	wg := blockWorker(t, s, 0, gate)
	if err := s.SubmitDeadline(jobs.InsertReq("late", 0, 64), 5*time.Millisecond); err != nil {
		t.Fatalf("SubmitDeadline: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	close(gate)
	wg.Wait()
	err := s.Drain()
	if err == nil || !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Drain after async deadline expiry = %v, want ErrDeadlineExceeded", err)
	}
}

// TestDeadlineExpiryNotLogged: under a WAL, a deadline-expired request
// leaves no record — replaying the log after the run must reproduce
// exactly the successful requests.
func TestDeadlineExpiryNotLogged(t *testing.T) {
	dir := t.TempDir()
	log, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty {
		t.Fatal("fresh WAL dir not empty")
	}
	s := New(Config{Shards: 1, Machines: 2, Factory: stackFactory, WAL: log})

	if _, err := s.Apply(jobs.InsertReq("kept", 0, 64)); err != nil {
		t.Fatalf("insert kept: %v", err)
	}
	gate := make(chan struct{})
	wg := blockWorker(t, s, 0, gate)
	go func() {
		time.Sleep(40 * time.Millisecond)
		close(gate)
	}()
	if _, err := s.ApplyDeadline(jobs.InsertReq("expired", 0, 64), 5*time.Millisecond); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("ApplyDeadline = %v, want ErrDeadlineExceeded", err)
	}
	wg.Wait()
	s.Close()

	got, err := wal.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range got.Records {
		switch r.Kind {
		case wal.KindRequest:
			names = append(names, r.Req.Name)
		case wal.KindBatch:
			for _, q := range r.Batch {
				names = append(names, q.Name)
			}
		}
	}
	if len(names) != 1 || names[0] != "kept" {
		t.Fatalf("WAL holds %v, want exactly [kept]: the expired request must not be logged", names)
	}
}
