package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/alignsched"
	"repro/internal/core"
	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/multi"
	"repro/internal/sched"
	"repro/internal/trim"
)

// elasticStackFactory builds the always-elastic Theorem 1 stack
// realloc.NewSharded composes: the multi wrapper is present even over a
// single machine so the shard implements sched.Elastic.
func elasticStackFactory(machines int) sched.Scheduler {
	single := func() sched.Scheduler {
		return trim.New(8, func() sched.Scheduler { return core.New() })
	}
	return alignsched.New(multi.New(machines, multi.Factory(single)))
}

func newElasticSharded(t *testing.T, shards, machines int) *Scheduler {
	t.Helper()
	s := New(Config{Shards: shards, Machines: machines, Factory: elasticStackFactory})
	t.Cleanup(s.Close)
	return s
}

func TestResizeShardGrowMovesNothing(t *testing.T) {
	s := newElasticSharded(t, 2, 4)
	for i := 0; i < 24; i++ {
		if _, err := s.Insert(jobs.Job{Name: fmt.Sprintf("g%02d", i), Window: jobs.Window{Start: 0, End: 512}}); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Snapshot()
	rc, err := s.ResizeShard(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Cost.Migrations != 0 || rc.Evicted != 0 {
		t.Errorf("grow cost %+v, want zero migrations and evictions", rc)
	}
	if got := s.Machines(); got != 6 {
		t.Fatalf("Machines() = %d, want 6", got)
	}
	if got := s.ShardMachines(0); got != 4 {
		t.Fatalf("shard 0 machines = %d, want 4", got)
	}
	after := s.Snapshot()
	// Shard 0 jobs keep their exact placement; shard 1 jobs keep their
	// slot and shift machine index by the grow delta (a relabeling of
	// the global view, not a migration).
	for name, p := range before.Assignment {
		q, ok := after.Assignment[name]
		if !ok {
			t.Fatalf("job %q lost by grow", name)
		}
		if q.Slot != p.Slot {
			t.Errorf("grow moved %q from slot %d to %d", name, p.Slot, q.Slot)
		}
		if q.Machine != p.Machine && q.Machine != p.Machine+2 {
			t.Errorf("grow relabeled %q machine %d -> %d (want +0 or +2)", name, p.Machine, q.Machine)
		}
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if err := feasible.VerifySchedule(after.Jobs, after.Assignment, after.Machines); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if len(rep.Resizes) != 1 || rep.Resizes[0].Delta != 2 || rep.Resizes[0].Shard != 0 {
		t.Errorf("resize history = %+v", rep.Resizes)
	}
	if rep.Shards[0].Machines != 4 || rep.Shards[1].Machines != 2 {
		t.Errorf("report machines = %d,%d, want 4,2", rep.Shards[0].Machines, rep.Shards[1].Machines)
	}
}

func TestResizeShardShrinkReinsertsEvicted(t *testing.T) {
	// Pin every insert to shard 0 and saturate its two machines with
	// span-1 jobs, so shrinking it must evict across shards.
	s := New(Config{
		Shards: 2, Machines: 4, Factory: elasticStackFactory,
		Policy: PolicyFunc(func(string, int) int { return 0 }),
	})
	defer s.Close()
	for i := 0; i < 2; i++ {
		w := jobs.Window{Start: int64(i), End: int64(i) + 1}
		for k := 0; k < 2; k++ {
			if _, err := s.Insert(jobs.Job{Name: fmt.Sprintf("pin-%d-%d", i, k), Window: w}); err != nil {
				t.Fatal(err)
			}
		}
	}
	jobsBefore := s.Report().Shards[0].Active
	if jobsBefore != 4 {
		t.Fatalf("shard 0 holds %d jobs, want 4", jobsBefore)
	}
	rc, err := s.ResizeShard(0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Evicted == 0 {
		t.Fatal("shrink of a saturated shard evicted nothing")
	}
	if rc.Dropped != 0 || rc.Reinserted != rc.Evicted {
		t.Fatalf("resize cost %+v: want every evicted job reinserted", rc)
	}
	// The migration bound: at most one migration per job that lived on
	// the evicted shard.
	if rc.Cost.Migrations > jobsBefore {
		t.Errorf("%d migrations for a shard that held %d jobs", rc.Cost.Migrations, jobsBefore)
	}
	if got := s.Active(); got != 4 {
		t.Fatalf("Active() = %d, want 4 (no job lost)", got)
	}
	if got := s.Machines(); got != 3 {
		t.Fatalf("Machines() = %d, want 3", got)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Shards[1].ResizeAbsorbed != rc.Reinserted {
		t.Errorf("shard 1 absorbed %d, want %d", rep.Shards[1].ResizeAbsorbed, rc.Reinserted)
	}
	if rep.Shards[0].ResizeEvicted != rc.Evicted {
		t.Errorf("shard 0 evicted %d, want %d", rep.Shards[0].ResizeEvicted, rc.Evicted)
	}
	// Every job — including the migrated ones — must still be deletable.
	for i := 0; i < 2; i++ {
		for k := 0; k < 2; k++ {
			if _, err := s.Delete(fmt.Sprintf("pin-%d-%d", i, k)); err != nil {
				t.Fatalf("delete pin-%d-%d after shrink: %v", i, k, err)
			}
		}
	}
}

func TestResizePoolWide(t *testing.T) {
	s := newElasticSharded(t, 4, 8)
	for i := 0; i < 32; i++ {
		if _, err := s.Insert(jobs.Job{Name: fmt.Sprintf("p%02d", i), Window: jobs.Window{Start: 0, End: 1024}}); err != nil {
			t.Fatal(err)
		}
	}
	rc, err := s.Resize(10)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Delta != 2 || rc.Cost.Migrations != 0 {
		t.Errorf("grow to 10: %+v, want delta 2 with zero migrations", rc)
	}
	want := []int{3, 3, 2, 2}
	for i, w := range want {
		if got := s.ShardMachines(i); got != w {
			t.Errorf("shard %d machines = %d, want %d", i, got, w)
		}
	}
	if _, err := s.Resize(6); err != nil {
		t.Fatal(err)
	}
	if got := s.Machines(); got != 6 {
		t.Fatalf("Machines() = %d, want 6", got)
	}
	if got := s.Active(); got != 32 {
		t.Fatalf("Active() = %d, want 32 (no job lost across resizes)", got)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resize(3); err == nil {
		t.Error("Resize below the shard count accepted")
	}
}

func TestResizeValidation(t *testing.T) {
	s := newElasticSharded(t, 2, 4)
	if _, err := s.ResizeShard(5, 1); err == nil {
		t.Error("resize of a nonexistent shard accepted")
	}
	if _, err := s.ResizeShard(0, -2); err == nil {
		t.Error("resize leaving an empty shard accepted")
	}
	if rc, err := s.ResizeShard(0, 0); err != nil || rc.Delta != 0 {
		t.Errorf("zero-delta resize: %+v, %v", rc, err)
	}
	// A non-elastic inner scheduler must be reported, not crashed into.
	ne := New(Config{Shards: 2, Machines: 2, Factory: stackFactory})
	defer ne.Close()
	if _, err := ne.ResizeShard(0, 1); !errors.Is(err, ErrNotElastic) {
		t.Errorf("resize of non-elastic shard: %v, want ErrNotElastic", err)
	}
}

func TestSubmitResizeAsync(t *testing.T) {
	s := newElasticSharded(t, 2, 2)
	for i := 0; i < 8; i++ {
		if err := s.Submit(jobs.InsertReq(fmt.Sprintf("a%d", i), 0, 256)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SubmitResize(ResizeReq{Shard: -1, Machines: 6}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := s.Machines(); got != 6 {
		t.Fatalf("Machines() = %d, want 6 after async resize", got)
	}
	// An invalid async resize surfaces in Drain.
	if err := s.SubmitResize(ResizeReq{Shard: 0, Delta: -9}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err == nil {
		t.Error("invalid async resize surfaced no Drain error")
	}
	s.Close()
	if err := s.SubmitResize(ResizeReq{Shard: 0, Delta: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitResize after close: %v, want ErrClosed", err)
	}
}

// TestResizeStress churns jobs from many goroutines while the pool
// grows and shrinks, then cross-checks the final schedule with the
// external feasibility verifier. Run with -race (CI does).
func TestResizeStress(t *testing.T) {
	const (
		goroutines = 8
		shards     = 4
	)
	per := 400
	if testing.Short() {
		per = 100
	}
	s := newElasticSharded(t, shards, 8)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	resizerDone := make(chan struct{})
	// Resizer: breathe the pool 8 -> 16 -> 8 machines repeatedly.
	go func() {
		defer close(resizerDone)
		grow := true
		for {
			select {
			case <-stop:
				return
			default:
			}
			target := 8
			if grow {
				target = 16
			}
			if _, err := s.Resize(target); err != nil {
				t.Errorf("resize to %d: %v", target, err)
				return
			}
			grow = !grow
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var live []string
			for i := 0; i < per; i++ {
				if len(live) > 20 && i%2 == 0 {
					name := live[0]
					live = live[1:]
					if _, err := s.Delete(name); err != nil {
						t.Errorf("worker %d delete %s: %v", g, name, err)
						return
					}
					continue
				}
				name := fmt.Sprintf("w%d-%04d", g, i)
				start := int64((g*per + i) % 2048)
				if _, err := s.Insert(jobs.Job{Name: name, Window: jobs.Window{Start: start, End: start + 2048}}); err != nil {
					// A mid-shrink pool may genuinely reject; tolerate
					// infeasibility, nothing else.
					if !errors.Is(err, sched.ErrInfeasible) {
						t.Errorf("worker %d insert %s: %v", g, name, err)
						return
					}
					continue
				}
				live = append(live, name)
			}
		}(g)
	}
	// Wait for the churners, then stop the resizer.
	wg.Wait()
	close(stop)
	<-resizerDone

	if err := s.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck after resize stress: %v", err)
	}
	snap := s.Snapshot()
	if len(snap.Jobs) != len(snap.Assignment) {
		t.Fatalf("%d jobs but %d placements", len(snap.Jobs), len(snap.Assignment))
	}
	if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
		t.Fatalf("VerifySchedule after resize stress: %v", err)
	}
	rep := s.Report()
	if len(rep.Resizes) == 0 {
		t.Fatal("stress run recorded no resizes")
	}
	if rt := rep.ResizeTotal(); rt.Dropped != 0 {
		t.Errorf("resize stress dropped %d jobs", rt.Dropped)
	}
	t.Logf("resize stress: %d resizes, report:\n%s", len(rep.Resizes), rep)
}
