package shard

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/sched"
)

// FuzzApplyBatch drives the sharded front-end's bulk path with
// byte-decoded batches of mixed inserts, deletes, and pool resizes
// (mirroring internal/core's FuzzRequestStream). The fuzzer explores
// batch compositions the random workloads never produce — duplicate
// names inside one batch, insert/delete/insert chains, resizes between
// batches, infeasible bursts. After every batch the front-end must keep
// all invariants: SelfCheck passes, the snapshot is a feasible schedule
// for its job set (cross-checked against internal/feasible), and the
// per-request outcomes account exactly for the active population.
// Run with: go test -fuzz=FuzzApplyBatch ./internal/shard (CI smokes it
// under -race).
func FuzzApplyBatch(f *testing.F) {
	f.Add([]byte{0x03, 0x00, 0x11, 0x01, 0x22, 0x02, 0x33})
	f.Add([]byte{0x05, 0x01, 0x02, 0x81, 0x00, 0x03, 0x04, 0xc1, 0x10, 0x05, 0x06})
	f.Add([]byte{0x0f, 0xff, 0xfe, 0xfd, 0x10, 0x90, 0x20, 0xa0, 0xc0, 0x01, 0x02, 0x03})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(Config{Shards: 2, Machines: 4, Factory: stackFactory})
		defer s.Close()

		live := make(map[string]bool)
		id := 0
		pos := 0
		for batchNo := 0; pos < len(data) && batchNo < 64; batchNo++ {
			size := int(data[pos]%16) + 1
			pos++
			var batch []jobs.Request
			var names []string // tentative per-request name bookkeeping
			for k := 0; k < size && pos+1 < len(data); k++ {
				op, arg := data[pos], data[pos+1]
				pos += 2
				switch {
				case op&0xc0 == 0xc0:
					// Pool resize between requests: flush nothing (the
					// resize applies before the batch), tolerate errors —
					// shrinking to zero machines is rejected, not fatal.
					delta := 1
					if op&0x20 != 0 {
						delta = -1
					}
					if _, err := s.ResizeShard(int(arg)%s.Shards(), delta); err != nil &&
						!errors.Is(err, sched.ErrInfeasible) {
						// Structural rejections are fine; anything else
						// must still leave the scheduler consistent,
						// which the post-batch checks verify.
						_ = err
					}
				case op&0x80 != 0 && len(live) > 0:
					// Delete a live-ish job: pick deterministically by
					// walking the insertion counter.
					name := fmt.Sprintf("f%05d", int(arg)%id)
					batch = append(batch, jobs.DeleteReq(name))
					names = append(names, name)
				default:
					spanExp := uint(op&0x07) % 8
					span := int64(1) << spanExp
					start := mathx.AlignDown(int64(arg)*4, span)
					name := fmt.Sprintf("f%05d", id)
					id++
					batch = append(batch, jobs.Request{
						Kind: jobs.Insert, Name: name,
						Window: jobs.Window{Start: start, End: start + span},
					})
					names = append(names, name)
				}
			}
			if len(batch) == 0 {
				continue
			}
			costs, err := s.ApplyBatch(batch)
			if len(costs) != len(batch) {
				t.Fatalf("batch %d: %d costs for %d requests", batchNo, len(costs), len(batch))
			}
			var be *sched.BatchError
			if err != nil && !errors.As(err, &be) {
				t.Fatalf("batch %d: non-batch error %v", batchNo, err)
			}
			for k, r := range batch {
				var e error
				if be != nil {
					e = be.At(k)
				}
				if costs[k].Migrations > 1 {
					t.Fatalf("batch %d request %d: %d migrations", batchNo, k, costs[k].Migrations)
				}
				if e != nil {
					continue
				}
				if r.Kind == jobs.Insert {
					live[names[k]] = true
				} else {
					delete(live, names[k])
				}
			}

			if err := s.SelfCheck(); err != nil {
				t.Fatalf("batch %d: invariant violation: %v", batchNo, err)
			}
			snap := s.Snapshot()
			if s.Active() != len(snap.Jobs) {
				t.Fatalf("batch %d: %d jobs on shards but Active() = %d", batchNo, len(snap.Jobs), s.Active())
			}
			// Every scheduled job must be one the outcomes admitted — no
			// resurrections. The scheduler may hold FEWER jobs than the
			// outcome tracking: on non-underallocated streams a batch
			// rebuild can drop a job that no longer fits the shrunken
			// trim cap (the drop is reported on the crossing request);
			// resync the tracking to the snapshot afterwards.
			for _, j := range snap.Jobs {
				if !live[j.Name] {
					t.Fatalf("batch %d: job %q scheduled but never admitted", batchNo, j.Name)
				}
			}
			live = make(map[string]bool, len(snap.Jobs))
			for _, j := range snap.Jobs {
				live[j.Name] = true
			}
			if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
				t.Fatalf("batch %d: schedule infeasible: %v", batchNo, err)
			}
		}
	})
}
