package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/sched"
)

// FuzzApplyBatch drives the sharded front-end's bulk path with
// byte-decoded batches of mixed inserts, deletes, and pool resizes
// (mirroring internal/core's FuzzRequestStream). The fuzzer explores
// batch compositions the random workloads never produce — duplicate
// names inside one batch, insert/delete/insert chains, resizes between
// batches, infeasible bursts. After every batch the front-end must keep
// all invariants: SelfCheck passes, the snapshot is a feasible schedule
// for its job set (cross-checked against internal/feasible), and the
// per-request outcomes account exactly for the active population.
// Run with: go test -fuzz=FuzzApplyBatch ./internal/shard (CI smokes it
// under -race).
func FuzzApplyBatch(f *testing.F) {
	f.Add([]byte{0x03, 0x00, 0x11, 0x01, 0x22, 0x02, 0x33})
	f.Add([]byte{0x05, 0x01, 0x02, 0x81, 0x00, 0x03, 0x04, 0xc1, 0x10, 0x05, 0x06})
	f.Add([]byte{0x0f, 0xff, 0xfe, 0xfd, 0x10, 0x90, 0x20, 0xa0, 0xc0, 0x01, 0x02, 0x03})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(Config{Shards: 2, Machines: 4, Factory: stackFactory})
		defer s.Close()

		live := make(map[string]bool)
		id := 0
		pos := 0
		for batchNo := 0; pos < len(data) && batchNo < 64; batchNo++ {
			size := int(data[pos]%16) + 1
			pos++
			var batch []jobs.Request
			var names []string // tentative per-request name bookkeeping
			for k := 0; k < size && pos+1 < len(data); k++ {
				op, arg := data[pos], data[pos+1]
				pos += 2
				switch {
				case op&0xc0 == 0xc0:
					// Pool resize between requests: flush nothing (the
					// resize applies before the batch), tolerate errors —
					// shrinking to zero machines is rejected, not fatal.
					delta := 1
					if op&0x20 != 0 {
						delta = -1
					}
					if _, err := s.ResizeShard(int(arg)%s.Shards(), delta); err != nil &&
						!errors.Is(err, sched.ErrInfeasible) {
						// Structural rejections are fine; anything else
						// must still leave the scheduler consistent,
						// which the post-batch checks verify.
						_ = err
					}
				case op&0x80 != 0 && len(live) > 0:
					// Delete a live-ish job: pick deterministically by
					// walking the insertion counter.
					name := fmt.Sprintf("f%05d", int(arg)%id)
					batch = append(batch, jobs.DeleteReq(name))
					names = append(names, name)
				default:
					spanExp := uint(op&0x07) % 8
					span := int64(1) << spanExp
					start := mathx.AlignDown(int64(arg)*4, span)
					name := fmt.Sprintf("f%05d", id)
					id++
					batch = append(batch, jobs.Request{
						Kind: jobs.Insert, Name: name,
						Window: jobs.Window{Start: start, End: start + span},
					})
					names = append(names, name)
				}
			}
			if len(batch) == 0 {
				continue
			}
			costs, err := s.ApplyBatch(batch)
			if len(costs) != len(batch) {
				t.Fatalf("batch %d: %d costs for %d requests", batchNo, len(costs), len(batch))
			}
			var be *sched.BatchError
			if err != nil && !errors.As(err, &be) {
				t.Fatalf("batch %d: non-batch error %v", batchNo, err)
			}
			for k, r := range batch {
				var e error
				if be != nil {
					e = be.At(k)
				}
				if costs[k].Migrations > 1 {
					t.Fatalf("batch %d request %d: %d migrations", batchNo, k, costs[k].Migrations)
				}
				if e != nil {
					continue
				}
				if r.Kind == jobs.Insert {
					live[names[k]] = true
				} else {
					delete(live, names[k])
				}
			}

			if err := s.SelfCheck(); err != nil {
				t.Fatalf("batch %d: invariant violation: %v", batchNo, err)
			}
			snap := s.Snapshot()
			if s.Active() != len(snap.Jobs) {
				t.Fatalf("batch %d: %d jobs on shards but Active() = %d", batchNo, len(snap.Jobs), s.Active())
			}
			// Every scheduled job must be one the outcomes admitted — no
			// resurrections. The scheduler may hold FEWER jobs than the
			// outcome tracking: on non-underallocated streams a batch
			// rebuild can drop a job that no longer fits the shrunken
			// trim cap (the drop is reported on the crossing request);
			// resync the tracking to the snapshot afterwards.
			for _, j := range snap.Jobs {
				if !live[j.Name] {
					t.Fatalf("batch %d: job %q scheduled but never admitted", batchNo, j.Name)
				}
			}
			live = make(map[string]bool, len(snap.Jobs))
			for _, j := range snap.Jobs {
				live[j.Name] = true
			}
			if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
				t.Fatalf("batch %d: schedule infeasible: %v", batchNo, err)
			}
		}
	})
}

// FuzzRing drives the MPSC dispatch ring through byte-decoded
// operation scripts: the first byte picks the capacity, then each byte
// either pushes a sequenced payload from one of four producers (two
// bits pick the producer) or pops on the consumer side. A blocked push
// would deadlock the single-threaded script, so the script only pushes
// when the ring has room (the blocking path is covered by the ring race
// tests). After the script, a concurrent segment hammers the same ring
// from four real producer goroutines. Invariants: nothing is lost or
// duplicated, per-producer FIFO order holds, and a closed ring drains
// fully before reporting empty.
// Run with: go test -fuzz=FuzzRing ./internal/shard (CI smokes it
// under -race).
func FuzzRing(f *testing.F) {
	f.Add([]byte{0x04, 0x00, 0x41, 0x80, 0x02, 0xc3, 0x81})
	f.Add([]byte{0x01, 0xff, 0x00, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Add([]byte{0x20, 0x01, 0x02, 0x03, 0x80, 0x81, 0x82, 0x83, 0x04})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		r := newRing(int(data[0]%32) + 1)
		type model struct{ producer, seq int }
		var fifo []model // what the ring must pop, in order
		next := [4]int{} // per-producer next sequence number
		last := [4]int{}
		for i := range last {
			last[i] = -1
		}
		pending := func() uint64 { return r.tail.Load() - r.head.Load() }
		popOne := func(mustHave bool) {
			tk, ok := r.pop()
			if !ok {
				if mustHave {
					t.Fatalf("pop returned empty with %d tasks modeled", len(fifo))
				}
				if len(fifo) != 0 {
					t.Fatalf("ring empty but model holds %d tasks", len(fifo))
				}
				return
			}
			if len(fifo) == 0 {
				t.Fatal("ring popped a task the model never pushed")
			}
			want := fifo[0]
			fifo = fifo[1:]
			p, seq := int(tk.req.Kind), int(tk.req.Window.Start)
			if p != want.producer || seq != want.seq {
				t.Fatalf("pop = producer %d seq %d, want producer %d seq %d", p, seq, want.producer, want.seq)
			}
			if seq != last[p]+1 {
				t.Fatalf("producer %d: seq %d after %d", p, seq, last[p])
			}
			last[p] = seq
		}
		for _, op := range data[1:] {
			if op&0x80 == 0 || pending() >= r.size {
				popOne(false)
				continue
			}
			p := int(op >> 5 & 0x3)
			if err := r.push(task{req: jobs.Request{
				Kind: jobs.RequestKind(p), Window: jobs.Window{Start: jobs.Time(next[p])},
			}}); err != nil {
				t.Fatalf("push failed on open ring: %v", err)
			}
			fifo = append(fifo, model{p, next[p]})
			next[p]++
		}
		for len(fifo) > 0 {
			popOne(true)
		}

		// Concurrent segment: four producers, counts derived from the
		// data tail, consumer checks per-producer order and totals.
		counts := [4]int{}
		totalWant := 0
		for i := range counts {
			if len(data) > i+1 {
				counts[i] = int(data[i+1] % 64)
			}
			totalWant += counts[i]
		}
		var wg sync.WaitGroup
		for p, n := range counts {
			wg.Add(1)
			go func(p, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if err := r.push(task{req: jobs.Request{
						Kind: jobs.RequestKind(p), Window: jobs.Window{Start: jobs.Time(i)},
					}}); err != nil {
						t.Errorf("push failed on open ring: %v", err)
						return
					}
				}
			}(p, n)
		}
		go func() { wg.Wait(); r.close() }()
		lastSeen := [4]int{-1, -1, -1, -1}
		total := 0
		for {
			tk, ok := r.popWait()
			if !ok {
				break
			}
			total++
			p, seq := int(tk.req.Kind), int(tk.req.Window.Start)
			if seq <= lastSeen[p] {
				t.Fatalf("concurrent: producer %d seq %d after %d", p, seq, lastSeen[p])
			}
			lastSeen[p] = seq
		}
		if total != totalWant {
			t.Fatalf("concurrent: consumed %d, want %d", total, totalWant)
		}
	})
}
