package shard

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/sched"
)

// hotPolicy routes every "hot-" name to shard 0 and spreads the rest —
// the directed version of the skew a pathological tenant's key
// distribution produces on the consistent-hash ring.
func hotPolicy() Policy {
	ring := NewRing(4, 0)
	return PolicyFunc(func(name string, shards int) int {
		if strings.HasPrefix(name, "hot-") {
			return 0
		}
		return ring.Route(name, shards)
	})
}

func hotStormScheduler(t *testing.T) *Scheduler {
	t.Helper()
	s := New(Config{Shards: 4, Machines: 4, Factory: stackFactory, Policy: hotPolicy()})
	t.Cleanup(s.Close)
	return s
}

// hotInsert builds the storm request: every job wants the same aligned
// window [0, 4), so each one-machine shard holds exactly 4 of them.
func hotInsert(i int) jobs.Request {
	return jobs.InsertReq(fmt.Sprintf("hot-%02d", i), 0, 4)
}

// TestOverflowStormSequential drives 24 hot-key inserts at a 16-slot
// cluster whose policy routes all of them to shard 0 (capacity 4) and
// pins the overflow path's exact bookkeeping: single-hop termination,
// exact Overflow/Rerouted/Failures counters, and a feasible final
// schedule using the whole cluster, not just the hot shard.
func TestOverflowStormSequential(t *testing.T) {
	s := hotStormScheduler(t)
	okN, failN := 0, 0
	for i := 0; i < 24; i++ {
		_, err := s.Apply(hotInsert(i))
		switch {
		case err == nil:
			okN++
		case errors.Is(err, sched.ErrInfeasible):
			failN++
		default:
			t.Fatalf("insert %d: unexpected error %v", i, err)
		}
	}
	// Every request returned (no livelock), and exactly cluster
	// capacity committed: 4 on the hot shard, 12 via overflow.
	if okN != 16 || failN != 8 {
		t.Fatalf("ok=%d fail=%d, want 16/8", okN, failN)
	}
	rep := s.Report()
	tot := rep.Total()
	if tot.Active != 16 {
		t.Errorf("active = %d, want 16", tot.Active)
	}
	// The hot shard rejected everything past its 4 slots; nothing else
	// ever rerouted (a reroute on a fallback shard would mean the hop
	// ping-ponged instead of terminating).
	if rep.Shards[0].Rerouted != 20 || tot.Rerouted != 20 {
		t.Errorf("rerouted = %d on shard 0, %d total, want 20/20", rep.Shards[0].Rerouted, tot.Rerouted)
	}
	// Overflow counts successful single-hop placements only, and the
	// inflight-aware fallback pick spreads them evenly.
	if tot.Overflow != 12 {
		t.Errorf("overflow total = %d, want 12", tot.Overflow)
	}
	for i := 1; i <= 3; i++ {
		if rep.Shards[i].Overflow != 4 {
			t.Errorf("shard %d overflow = %d, want 4", i, rep.Shards[i].Overflow)
		}
	}
	if tot.Failures != 8 {
		t.Errorf("failures = %d, want 8", tot.Failures)
	}
	snap := s.Snapshot()
	if len(snap.Assignment) != 16 {
		t.Fatalf("snapshot has %d jobs, want 16", len(snap.Assignment))
	}
	if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
		t.Fatalf("final schedule infeasible: %v", err)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestOverflowStormNoThunderingHerd submits exactly cluster capacity
// asynchronously. The 12 overflow hops are chosen while their
// predecessors are still in flight, so only the inflight reservations
// in leastLoaded keep them from stampeding onto one victim shard and
// bouncing off its full book: with the reservations every job lands,
// without them some of the herd fails while other shards sit empty.
func TestOverflowStormNoThunderingHerd(t *testing.T) {
	s := hotStormScheduler(t)
	for i := 0; i < 16; i++ {
		if err := s.Submit(hotInsert(i)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain reported async failures: %v", err)
	}
	rep := s.Report()
	tot := rep.Total()
	if tot.Failures != 0 {
		t.Fatalf("failures = %d — overflow herd overran a shard that inflight accounting should have balanced", tot.Failures)
	}
	if tot.Active != 16 || tot.Overflow != 12 {
		t.Errorf("active = %d overflow = %d, want 16/12", tot.Active, tot.Overflow)
	}
	for i := 0; i < 4; i++ {
		if rep.Shards[i].Active != 4 {
			t.Errorf("shard %d active = %d, want a fully balanced 4", i, rep.Shards[i].Active)
		}
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestOverflowStormBatch pushes the same 24-insert storm through
// ApplyBatch: the reconcile pass must spread the 20 rerouted inserts
// with the same inflight-aware balance and the same exact counters as
// the per-request path.
func TestOverflowStormBatch(t *testing.T) {
	s := hotStormScheduler(t)
	reqs := make([]jobs.Request, 24)
	for i := range reqs {
		reqs[i] = hotInsert(i)
	}
	_, err := s.ApplyBatch(reqs)
	if err == nil {
		t.Fatal("want per-request failures past cluster capacity")
	}
	var be *sched.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("non-batch error: %v", err)
	}
	if len(be.Evicted) != 0 {
		t.Fatalf("storm shed committed jobs: %v", be.Evicted)
	}
	okN, failN := 0, 0
	for k := range reqs {
		switch e := be.At(k); {
		case e == nil:
			okN++
		case errors.Is(e, sched.ErrInfeasible):
			failN++
		default:
			t.Fatalf("request %d: unexpected error %v", k, e)
		}
	}
	if okN != 16 || failN != 8 {
		t.Fatalf("ok=%d fail=%d, want 16/8", okN, failN)
	}
	rep := s.Report()
	tot := rep.Total()
	if tot.Active != 16 || tot.Overflow != 12 || tot.Failures != 8 {
		t.Errorf("active=%d overflow=%d failures=%d, want 16/12/8", tot.Active, tot.Overflow, tot.Failures)
	}
	if rep.Shards[0].Rerouted != 20 || tot.Rerouted != 20 {
		t.Errorf("rerouted = %d on shard 0, %d total, want 20/20", rep.Shards[0].Rerouted, tot.Rerouted)
	}
	snap := s.Snapshot()
	if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
		t.Fatalf("final schedule infeasible: %v", err)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}
