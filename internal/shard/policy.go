package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Policy decides the primary shard for a job name. Implementations must
// be safe for concurrent use and deterministic: the same name must route
// to the same shard for the lifetime of the scheduler, because deletes
// start their lookup where the insert was first routed.
type Policy interface {
	// Route returns the primary shard index in [0, shards) for name.
	Route(name string, shards int) int
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(name string, shards int) int

// Route implements Policy.
func (f PolicyFunc) Route(name string, shards int) int { return f(name, shards) }

// HashMod is the trivial policy: FNV-1a hash of the name modulo the
// shard count. Cheap and even, but remapping under resharding is total;
// the ring policy below is the default.
func HashMod() Policy {
	return PolicyFunc(func(name string, shards int) int {
		return int(hash64(name) % uint64(shards))
	})
}

// Ring is a consistent-hash ring: each shard owns `replicas` virtual
// points on a 64-bit circle, and a name routes to the shard owning the
// first point at or after the name's hash. Adding or removing a shard
// only remaps the names falling between the moved points, which keeps
// most of the job population pinned when the shard count changes between
// runs.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultReplicas is the virtual-node count per shard used by NewRing
// when replicas <= 0. 64 points per shard keeps the expected spread
// within a few percent of even.
const DefaultReplicas = 64

// NewRing builds a consistent-hash ring over the given shard count.
func NewRing(shards, replicas int) *Ring {
	if shards < 1 {
		panic(fmt.Sprintf("shard: ring over %d shards", shards))
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*replicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			h := hash64(fmt.Sprintf("shard-%d-vnode-%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, k int) bool { return r.points[i].hash < r.points[k].hash })
	return r
}

// Route implements Policy. The shards argument must match the count the
// ring was built for.
func (r *Ring) Route(name string, shards int) int {
	if shards != r.shards {
		panic(fmt.Sprintf("shard: ring built for %d shards routed over %d", r.shards, shards))
	}
	h := hash64(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].shard
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmix64(h.Sum64())
}

// fmix64 is the murmur3 finalizer. Raw FNV-1a of sequential names
// ("job-00017", "job-00018", ...) differs mostly in low bits, and ring
// placement is governed by the high bits, so without a final avalanche
// step consecutive names clump onto a few arcs.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
