package shard

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/sched"
)

// TestCloseRacesOverflowHop closes the scheduler while overflow hops
// are in flight on their own goroutines: the hop's send must fail
// cleanly with ErrClosed instead of panicking on a closed channel or
// leaking the reservation. Run with -race (CI does).
func TestCloseRacesOverflowHop(t *testing.T) {
	for round := 0; round < 20; round++ {
		// Shard 0 rejects everything, so every insert overflows to
		// shard 1 via the hop goroutine.
		s := New(Config{
			Shards: 2, Machines: 2,
			Factory: func(m int) sched.Scheduler {
				return rejecting{stackFactory(m)}
			},
			Policy: PolicyFunc(func(string, int) int { return 0 }),
		})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					// Errors (infeasible or closed) are expected; the
					// point is the absence of panics and races.
					_ = s.Submit(jobs.InsertReq(fmt.Sprintf("r%d-g%d-%d", round, g, i), 0, 64))
				}
			}(g)
		}
		s.Close()
		wg.Wait()
		// Close is idempotent even with the hops settled afterward.
		s.Close()
	}
}

// TestDrainTruncatesRetainedErrors: the async failure log keeps only
// maxRetainedErrs entries but Drain must still report the full count,
// and the log must reset afterward.
func TestDrainTruncatesRetainedErrors(t *testing.T) {
	s := New(Config{
		Shards: 2, Machines: 2,
		Factory: func(m int) sched.Scheduler { return rejecting{stackFactory(m)} },
	})
	defer s.Close()
	const n = maxRetainedErrs + 9
	for i := 0; i < n; i++ {
		if err := s.Submit(jobs.InsertReq(fmt.Sprintf("fail-%02d", i), 0, 64)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	s.pendWait()
	s.errMu.Lock()
	retained := len(s.asyncErrs)
	s.errMu.Unlock()
	if retained != maxRetainedErrs {
		t.Errorf("retained %d errors, want the cap %d", retained, maxRetainedErrs)
	}
	err := s.Drain()
	if err == nil {
		t.Fatal("Drain reported no error for failing submits")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("%d async request(s) failed", n)) {
		t.Errorf("Drain error %q does not report the full count %d", err, n)
	}
	if err := s.Drain(); err != nil {
		t.Errorf("second Drain not clean: %v", err)
	}
}

// TestDrainConsumeOnce pins the drained-error handoff as consume-once:
// a failure is reported by exactly one Drain call. After a Drain that
// hit the maxRetainedErrs truncation, a later Drain must count ONLY the
// failures recorded after the first Drain's cut — never re-report (or
// re-count) errors the prior call already returned — and a Drain with
// nothing new must be clean.
func TestDrainConsumeOnce(t *testing.T) {
	s := New(Config{
		Shards: 2, Machines: 2,
		Factory: func(m int) sched.Scheduler { return rejecting{stackFactory(m)} },
	})
	defer s.Close()

	submitFailures := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := s.Submit(jobs.InsertReq(fmt.Sprintf("batch-%d-%02d", n, i), 0, 64)); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
	}

	const first = maxRetainedErrs + 5
	submitFailures(first)
	err := s.Drain()
	if err == nil {
		t.Fatal("first Drain reported no error")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("%d async request(s) failed", first)) {
		t.Fatalf("first Drain error %q does not report count %d", err, first)
	}

	// New failures after the cut: the second Drain reports exactly these,
	// not first+second.
	const second = 3
	submitFailures(second)
	err = s.Drain()
	if err == nil {
		t.Fatal("second Drain reported no error")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("%d async request(s) failed", second)) {
		t.Fatalf("second Drain error %q re-reports drained failures (want count %d)", err, second)
	}

	if err := s.Drain(); err != nil {
		t.Fatalf("third Drain with nothing new reported %v", err)
	}
}

// TestClosedSchedulerErrClosedConsistently pins the post-Close error
// contract: EVERY entry point — sync Apply (insert, delete of a known
// name, delete of an unknown name), the Insert/Delete methods, async
// Submit and SubmitResize, and the bulk ApplyBatch — reports the
// ErrClosed sentinel, never a routing-derived error like ErrUnknownJob
// and never a raw channel panic.
func TestClosedSchedulerErrClosedConsistently(t *testing.T) {
	s := New(Config{Shards: 2, Machines: 2, Factory: stackFactory})
	if _, err := s.Insert(jobs.Job{Name: "pre", Window: jobs.Window{Start: 0, End: 64}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	probes := map[string]func() error{
		"Apply insert": func() error {
			_, err := s.Apply(jobs.InsertReq("post", 0, 64))
			return err
		},
		"Apply delete known": func() error {
			_, err := s.Apply(jobs.DeleteReq("pre"))
			return err
		},
		"Apply delete unknown": func() error {
			_, err := s.Apply(jobs.DeleteReq("ghost"))
			return err
		},
		"Insert method": func() error {
			_, err := s.Insert(jobs.Job{Name: "post2", Window: jobs.Window{Start: 0, End: 64}})
			return err
		},
		"Delete method": func() error {
			_, err := s.Delete("pre")
			return err
		},
		"Submit": func() error {
			return s.Submit(jobs.InsertReq("post3", 0, 64))
		},
		"SubmitResize": func() error {
			return s.SubmitResize(ResizeReq{Shard: 0, Delta: 1})
		},
		"ApplyBatch": func() error {
			_, err := s.ApplyBatch([]jobs.Request{
				jobs.InsertReq("post4", 0, 64), jobs.DeleteReq("pre"), jobs.DeleteReq("ghost"),
			})
			return err
		},
	}
	for name, probe := range probes {
		if err := probe(); !errors.Is(err, ErrClosed) {
			t.Errorf("%s on closed scheduler returned %v, want ErrClosed", name, err)
		}
	}
}

// TestApplyBatchRacesClose drives concurrent ApplyBatch calls against
// Close: no panics, and every per-request failure must be ErrClosed or
// a legitimate scheduling rejection. Run with -race (CI does).
func TestApplyBatchRacesClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := New(Config{Shards: 2, Machines: 2, Factory: stackFactory})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for b := 0; b < 5; b++ {
					batch := make([]jobs.Request, 0, 8)
					for i := 0; i < 8; i++ {
						batch = append(batch, jobs.InsertReq(
							fmt.Sprintf("r%d-g%d-b%d-%d", round, g, b, i), 0, 512))
					}
					_, err := s.ApplyBatch(batch)
					if err == nil {
						continue
					}
					var be *sched.BatchError
					if !errors.As(err, &be) {
						t.Errorf("non-batch error from ApplyBatch: %v", err)
						return
					}
					for i, e := range be.Errs {
						if e == nil {
							continue
						}
						if !errors.Is(e, ErrClosed) && !errors.Is(e, sched.ErrInfeasible) &&
							!errors.Is(e, sched.ErrDuplicateJob) && !errors.Is(e, sched.ErrUnknownJob) {
							t.Errorf("request %d failed with unexpected error %v", i, e)
							return
						}
					}
				}
			}(g)
		}
		s.Close()
		wg.Wait()
		s.Close() // idempotent with batches settled
	}
}

// TestSnapshotConsistentUnderLoad is the regression test for the racy
// Verify: 8+ goroutines mutate while snapshots are verified. With
// separate Jobs()/Assignment() passes this fails within a few
// iterations; the one-pass Snapshot must never report a mismatch.
// Run with -race (CI does).
func TestSnapshotConsistentUnderLoad(t *testing.T) {
	const mutators = 8
	per := 400
	if testing.Short() {
		per = 100
	}
	s := newElasticSharded(t, 4, 8)
	var wg sync.WaitGroup
	for g := 0; g < mutators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				name := fmt.Sprintf("m%d-%04d", g, i)
				if _, err := s.Insert(jobs.Job{Name: name, Window: jobs.Window{Start: 0, End: 4096}}); err != nil {
					t.Errorf("insert %s: %v", name, err)
					return
				}
				if i%2 == 1 {
					if _, err := s.Delete(name); err != nil {
						t.Errorf("delete %s: %v", name, err)
						return
					}
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	verifies := 0
	for {
		select {
		case <-done:
			if verifies == 0 {
				t.Fatal("no snapshot verified while mutators ran")
			}
			snap := s.Snapshot()
			if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
				t.Fatalf("final snapshot: %v", err)
			}
			return
		default:
			snap := s.Snapshot()
			if len(snap.Jobs) != len(snap.Assignment) {
				t.Fatalf("snapshot tore: %d jobs, %d placements", len(snap.Jobs), len(snap.Assignment))
			}
			if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
				t.Fatalf("snapshot under load: %v", err)
			}
			verifies++
		}
	}
}
