package shard

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/sched"
)

// TestCloseRacesOverflowHop closes the scheduler while overflow hops
// are in flight on their own goroutines: the hop's send must fail
// cleanly with ErrClosed instead of panicking on a closed channel or
// leaking the reservation. Run with -race (CI does).
func TestCloseRacesOverflowHop(t *testing.T) {
	for round := 0; round < 20; round++ {
		// Shard 0 rejects everything, so every insert overflows to
		// shard 1 via the hop goroutine.
		s := New(Config{
			Shards: 2, Machines: 2,
			Factory: func(m int) sched.Scheduler {
				return rejecting{stackFactory(m)}
			},
			Policy: PolicyFunc(func(string, int) int { return 0 }),
		})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					// Errors (infeasible or closed) are expected; the
					// point is the absence of panics and races.
					_ = s.Submit(jobs.InsertReq(fmt.Sprintf("r%d-g%d-%d", round, g, i), 0, 64))
				}
			}(g)
		}
		s.Close()
		wg.Wait()
		// Close is idempotent even with the hops settled afterward.
		s.Close()
	}
}

// TestDrainTruncatesRetainedErrors: the async failure log keeps only
// maxRetainedErrs entries but Drain must still report the full count,
// and the log must reset afterward.
func TestDrainTruncatesRetainedErrors(t *testing.T) {
	s := New(Config{
		Shards: 2, Machines: 2,
		Factory: func(m int) sched.Scheduler { return rejecting{stackFactory(m)} },
	})
	defer s.Close()
	const n = maxRetainedErrs + 9
	for i := 0; i < n; i++ {
		if err := s.Submit(jobs.InsertReq(fmt.Sprintf("fail-%02d", i), 0, 64)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	s.pendWait()
	s.errMu.Lock()
	retained := len(s.asyncErrs)
	s.errMu.Unlock()
	if retained != maxRetainedErrs {
		t.Errorf("retained %d errors, want the cap %d", retained, maxRetainedErrs)
	}
	err := s.Drain()
	if err == nil {
		t.Fatal("Drain reported no error for failing submits")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("%d async request(s) failed", n)) {
		t.Errorf("Drain error %q does not report the full count %d", err, n)
	}
	if err := s.Drain(); err != nil {
		t.Errorf("second Drain not clean: %v", err)
	}
}

// TestSnapshotConsistentUnderLoad is the regression test for the racy
// Verify: 8+ goroutines mutate while snapshots are verified. With
// separate Jobs()/Assignment() passes this fails within a few
// iterations; the one-pass Snapshot must never report a mismatch.
// Run with -race (CI does).
func TestSnapshotConsistentUnderLoad(t *testing.T) {
	const mutators = 8
	per := 400
	if testing.Short() {
		per = 100
	}
	s := newElasticSharded(t, 4, 8)
	var wg sync.WaitGroup
	for g := 0; g < mutators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				name := fmt.Sprintf("m%d-%04d", g, i)
				if _, err := s.Insert(jobs.Job{Name: name, Window: jobs.Window{Start: 0, End: 4096}}); err != nil {
					t.Errorf("insert %s: %v", name, err)
					return
				}
				if i%2 == 1 {
					if _, err := s.Delete(name); err != nil {
						t.Errorf("delete %s: %v", name, err)
						return
					}
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	verifies := 0
	for {
		select {
		case <-done:
			if verifies == 0 {
				t.Fatal("no snapshot verified while mutators ran")
			}
			snap := s.Snapshot()
			if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
				t.Fatalf("final snapshot: %v", err)
			}
			return
		default:
			snap := s.Snapshot()
			if len(snap.Jobs) != len(snap.Assignment) {
				t.Fatalf("snapshot tore: %d jobs, %d placements", len(snap.Jobs), len(snap.Assignment))
			}
			if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
				t.Fatalf("snapshot under load: %v", err)
			}
			verifies++
		}
	}
}
