// Checkpoint restoration: rebuild a sharded front-end from a durable
// point-in-time image without replaying the request history that
// produced it. The machine-range partition is resurrected exactly as
// checkpointed; each shard's job set is re-admitted on its original
// shard through the inner stack's bulk path, which rebuilds every layer
// — interned ID tables, trim caps and queues, alignment windows,
// per-machine reservation structures, fullCount caches — from the job
// set alone in O(jobs), not O(history). Placements are recomputed (the
// restored schedule is feasible for the same jobs, not bit-identical to
// the checkpointed one); job→shard locality IS preserved, so restored
// shards stay balanced the way the live scheduler had balanced them.
package shard

import (
	"fmt"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/wal"
)

// Restore builds a sharded scheduler from a checkpoint image. The
// checkpoint is authoritative for the shard count and the machine
// partition: cfg.Shards and cfg.Machines must be zero or match it
// (a mismatch is an error, not a silent re-partition). The remaining
// config (Factory, Policy, Buffer, BatchSize) applies as in New; leave
// cfg.WAL nil and attach the log with AttachWAL once the tail replay is
// done, so replaying a record cannot re-append it.
//
// Jobs whose original shard rejects them (possible only when the
// checkpointed set is not shard-locally underallocated, e.g. after a
// config change) are retried through the normal routed path with
// overflow; only jobs NO shard can absorb make Restore fail, and the
// error names them.
func Restore(cfg Config, ck *wal.Checkpoint) (*Scheduler, error) {
	if ck == nil {
		return nil, fmt.Errorf("shard: Restore with nil checkpoint")
	}
	shards := len(ck.ShardMachines)
	if shards == 0 {
		return nil, fmt.Errorf("shard: checkpoint with no shards")
	}
	machines := 0
	for i, m := range ck.ShardMachines {
		if m < 1 {
			return nil, fmt.Errorf("shard: checkpoint shard %d with %d machines", i, m)
		}
		machines += m
	}
	if cfg.Shards != 0 && cfg.Shards != shards {
		return nil, fmt.Errorf("shard: config wants %d shards but the checkpoint has %d", cfg.Shards, shards)
	}
	if cfg.Machines != 0 && cfg.Machines != machines {
		return nil, fmt.Errorf("shard: config wants %d machines but the checkpoint has %d", cfg.Machines, machines)
	}

	// Partition the checkpointed jobs by the shard whose machine range
	// held them.
	perShard := make([][]jobs.Job, shards)
	for _, j := range ck.Jobs {
		pl, ok := ck.Assignment[j.Name]
		if !ok {
			return nil, fmt.Errorf("shard: checkpoint job %q has no placement", j.Name)
		}
		si, err := shardOfMachine(ck.ShardMachines, pl.Machine)
		if err != nil {
			return nil, fmt.Errorf("shard: checkpoint job %q: %w", j.Name, err)
		}
		perShard[si] = append(perShard[si], j)
	}

	s := newScheduler(cfg, append([]int(nil), ck.ShardMachines...))
	var leftover []jobs.Job
	for i := range s.workers {
		if len(perShard[i]) == 0 {
			continue
		}
		var failed []jobs.Job
		var restoreErr error
		err := s.ctrlOn(i, func(inner sched.Scheduler, _ *metrics.ShardCost) {
			failed, restoreErr = sched.RestoreJobs(inner, perShard[i])
		})
		if err == nil {
			err = restoreErr
		}
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("shard: restoring shard %d: %w", i, err)
		}
		notAdmitted := make(map[string]bool, len(failed))
		for _, j := range failed {
			notAdmitted[j.Name] = true
		}
		s.mu.Lock()
		for _, j := range perShard[i] {
			if notAdmitted[j.Name] {
				continue
			}
			s.setRoute(s.names.Intern(j.Name), i)
			s.loads[i]++
			s.active++
		}
		s.mu.Unlock()
		leftover = append(leftover, failed...)
	}

	// Second chance: route the stragglers like fresh inserts (primary by
	// policy, overflow to the least-loaded shard on local infeasibility).
	var lost []string
	for _, j := range leftover {
		if _, err := s.Apply(jobs.Request{Kind: jobs.Insert, Name: j.Name, Window: j.Window}); err != nil {
			lost = append(lost, j.Name)
		}
	}
	if len(lost) > 0 {
		s.Close()
		return nil, fmt.Errorf("shard: restore could not re-admit %d checkpointed job(s): %v", len(lost), lost)
	}
	return s, nil
}

// shardOfMachine maps a global machine index to the shard owning it
// under the given partition.
func shardOfMachine(shardMachines []int, machine int) (int, error) {
	base := 0
	for i, m := range shardMachines {
		if machine < base+m {
			if machine < base {
				break
			}
			return i, nil
		}
		base += m
	}
	return 0, fmt.Errorf("machine %d outside the %d-machine pool", machine, base)
}
