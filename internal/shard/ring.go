// Bounded MPSC ring dispatch. Each shard worker used to be fed by a
// mutex-guarded buffered channel; under bursty multi-producer load the
// channel's single lock serializes every enqueue and its wakeups rattle
// the tail. This ring replaces it: producers reserve slots with a CAS
// on the tail cursor (no lock on the hot path, per-slot sequence
// numbers in the style of Vyukov's bounded queue), the single consumer
// — the shard worker — pops without any atomics contention on the data
// itself, and both sides park when they run out of work or space:
//
//   - empty ring: the consumer sets a "sleeping" flag, re-checks (so a
//     racing producer cannot publish between the check and the park),
//     and blocks on a 1-slot wake channel; producers hand it a token
//     only when they observe the flag, so a busy ring never pays for
//     wakeups.
//   - full ring: producers register as space waiters and block on a
//     condvar; the consumer broadcasts only when it frees a slot while
//     waiters are registered. This preserves the old channel's
//     backpressure semantics — send blocks, it does not fail.
//
// FIFO order is preserved per ring (the CAS reservation order is the
// execution order), matching the channel it replaces. close() follows
// the channel contract the worker relied on: after close, pushes fail
// and the consumer drains every published slot before observing
// "closed, empty".
package shard

import (
	"sync"
	"sync/atomic"
)

// slot is one ring cell. seq is the Vyukov sequence: slot k is free for
// the producer of position p (p%size == k) when seq == p, published for
// the consumer when seq == p+1, and free for the next lap's producer
// when the consumer stores p+size.
type slot struct {
	seq atomic.Uint64
	t   task
}

type ring struct {
	slots []slot
	mask  uint64
	size  uint64

	// tail is the producers' reservation cursor; head is the consumer's
	// cursor, atomic only so producers can estimate fullness while
	// deciding to park.
	tail atomic.Uint64
	head atomic.Uint64

	closed atomic.Bool

	// sleeping is set by the consumer before parking on wake; producers
	// that observe it post a token (the channel holds at most one — a
	// spurious token costs one empty re-check, never a lost wakeup).
	sleeping atomic.Bool
	wake     chan struct{}

	// Space waiters (producers blocked on a full ring). spaceWaiters is
	// written under mu; the atomic lets the consumer skip the lock
	// entirely when nobody waits.
	mu           sync.Mutex
	spaceCond    *sync.Cond
	spaceWaiters atomic.Int64
}

// newRing builds a ring with capacity >= want (rounded up to a power of
// two, minimum 2).
func newRing(want int) *ring {
	size := uint64(2)
	for size < uint64(want) {
		size <<= 1
	}
	r := &ring{
		slots: make([]slot, size),
		mask:  size - 1,
		size:  size,
		wake:  make(chan struct{}, 1),
	}
	r.spaceCond = sync.NewCond(&r.mu)
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues t, blocking while the ring is full (backpressure). It
// returns false only when the ring is closed.
//
//reallocvet:hotpath
func (r *ring) push(t task) bool {
	for {
		if r.closed.Load() {
			return false
		}
		pos := r.tail.Load()
		s := &r.slots[pos&r.mask]
		switch seq := s.seq.Load(); {
		case seq == pos:
			if !r.tail.CompareAndSwap(pos, pos+1) {
				continue // lost the slot to another producer
			}
			s.t = t
			s.seq.Store(pos + 1) // publish
			if r.sleeping.Load() {
				select {
				case r.wake <- struct{}{}:
				default:
				}
			}
			return true
		case seq < pos:
			// The consumer has not freed this slot yet: the ring is a
			// full lap behind. Park until space opens up.
			r.waitSpace()
		default:
			// Another producer claimed pos between our load of tail and
			// of seq; reload and retry.
		}
	}
}

// waitSpace parks the producer until the consumer frees a slot (or the
// ring closes). The full-ring condition is re-checked under mu, and the
// consumer broadcasts under mu after freeing a slot whenever waiters
// are registered, so a wakeup cannot be lost between the check and the
// wait.
func (r *ring) waitSpace() {
	r.mu.Lock()
	r.spaceWaiters.Add(1)
	for !r.closed.Load() && r.tail.Load()-r.head.Load() >= r.size {
		r.spaceCond.Wait()
	}
	r.spaceWaiters.Add(-1)
	r.mu.Unlock()
}

// pop removes the next task without blocking. Single consumer only.
//
//reallocvet:hotpath
func (r *ring) pop() (task, bool) {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos+1 {
		return task{}, false // empty (or the slot is mid-publish)
	}
	t := s.t
	s.t = task{} // drop the request's references before freeing the slot
	s.seq.Store(pos + r.size)
	r.head.Store(pos + 1)
	if r.spaceWaiters.Load() > 0 {
		r.mu.Lock()
		r.spaceCond.Broadcast()
		r.mu.Unlock()
	}
	return t, true
}

// popWait removes the next task, parking while the ring is empty. It
// returns ok=false only when the ring is closed AND fully drained —
// every push that returned true is handed to the consumer first.
//
//reallocvet:hotpath
func (r *ring) popWait() (task, bool) {
	for {
		if t, ok := r.pop(); ok {
			return t, true
		}
		r.sleeping.Store(true)
		// Re-check after raising the flag: a producer that published
		// before seeing the flag is caught here; one that published
		// after seeing it has left a wake token.
		if t, ok := r.pop(); ok {
			r.sleeping.Store(false)
			return t, true
		}
		if r.closed.Load() {
			// Closed and observed empty after the flag re-check: the
			// ring is drained (close() happens after all sends).
			if t, ok := r.pop(); ok {
				r.sleeping.Store(false)
				return t, true
			}
			return task{}, false
		}
		<-r.wake
		r.sleeping.Store(false)
	}
}

// close marks the ring closed and wakes both sides: parked producers
// fail their push, the parked consumer drains and exits.
func (r *ring) close() {
	r.closed.Store(true)
	r.mu.Lock()
	r.spaceCond.Broadcast()
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
}
