// Bounded MPSC ring dispatch. Each shard worker used to be fed by a
// mutex-guarded buffered channel; under bursty multi-producer load the
// channel's single lock serializes every enqueue and its wakeups rattle
// the tail. This ring replaces it: producers reserve slots with a CAS
// on the tail cursor (no lock on the hot path, per-slot sequence
// numbers in the style of Vyukov's bounded queue), the single consumer
// — the shard worker — pops without any atomics contention on the data
// itself, and both sides park when they run out of work or space:
//
//   - empty ring: the consumer sets a "sleeping" flag, re-checks (so a
//     racing producer cannot publish between the check and the park),
//     and blocks on a 1-slot wake channel; producers hand it a token
//     only when they observe the flag, so a busy ring never pays for
//     wakeups.
//   - full ring: producers register as space waiters and block on a
//     generation channel (close-and-replace under mu); the consumer
//     signals only when it frees a slot while waiters are registered.
//     This preserves the old channel's backpressure semantics — send
//     blocks — but, unlike a condvar, a channel park composes with
//     select, so a parked producer also wakes on ring close (returning
//     ErrClosed) and on its request's deadline (returning
//     ErrDeadlineExceeded). A condvar has no timed or cancellable
//     wait; this is why the park is a channel.
//
// FIFO order is preserved per ring (the CAS reservation order is the
// execution order), matching the channel it replaces. close() follows
// the channel contract the worker relied on: after close, pushes fail
// and the consumer drains every published slot before observing
// "closed, empty".
package shard

import (
	"sync"
	"sync/atomic"
	"time"
)

// slot is one ring cell. seq is the Vyukov sequence: slot k is free for
// the producer of position p (p%size == k) when seq == p, published for
// the consumer when seq == p+1, and free for the next lap's producer
// when the consumer stores p+size.
type slot struct {
	seq atomic.Uint64
	t   task
}

type ring struct {
	slots []slot
	mask  uint64
	size  uint64

	// tail is the producers' reservation cursor; head is the consumer's
	// cursor, atomic only so producers can estimate fullness while
	// deciding to park.
	tail atomic.Uint64
	head atomic.Uint64

	closed atomic.Bool
	// closedCh is closed exactly once by close(); parked producers
	// select on it so shutdown interrupts a full-ring wait.
	closedCh chan struct{}

	// sleeping is set by the consumer before parking on wake; producers
	// that observe it post a token (the channel holds at most one — a
	// spurious token costs one empty re-check, never a lost wakeup).
	sleeping atomic.Bool
	wake     chan struct{}

	// Space waiters (producers blocked on a full ring). space is a
	// generation channel guarded by mu: waiters grab the current
	// generation and park on it; the consumer wakes them by closing it
	// and installing a fresh one. spaceWaiters lets the consumer skip
	// the lock entirely when nobody waits.
	mu           sync.Mutex
	space        chan struct{}
	spaceWaiters atomic.Int64
}

// newRing builds a ring with capacity >= want (rounded up to a power of
// two, minimum 2).
func newRing(want int) *ring {
	size := uint64(2)
	for size < uint64(want) {
		size <<= 1
	}
	r := &ring{
		slots:    make([]slot, size),
		mask:     size - 1,
		size:     size,
		wake:     make(chan struct{}, 1),
		closedCh: make(chan struct{}),
		space:    make(chan struct{}),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues t, blocking while the ring is full (backpressure). It
// returns ErrClosed when the ring is (or becomes, while parked)
// closed, and ErrDeadlineExceeded when t carries a deadline that
// expires while parked on a full ring. A nil return means the task is
// published and will be handed to the consumer.
//
//reallocvet:hotpath
func (r *ring) push(t task) error {
	for {
		if r.closed.Load() {
			return ErrClosed
		}
		pos := r.tail.Load()
		s := &r.slots[pos&r.mask]
		switch seq := s.seq.Load(); {
		case seq == pos:
			if !r.tail.CompareAndSwap(pos, pos+1) {
				continue // lost the slot to another producer
			}
			s.t = t
			s.seq.Store(pos + 1) // publish
			if r.sleeping.Load() {
				select {
				case r.wake <- struct{}{}:
				default:
				}
			}
			return nil
		case seq < pos:
			// The consumer has not freed this slot yet: the ring is a
			// full lap behind. Park until space opens up, the ring
			// closes, or the task's deadline passes.
			if err := r.waitSpace(t.deadline); err != nil {
				return err
			}
		default:
			// Another producer claimed pos between our load of tail and
			// of seq; reload and retry.
		}
	}
}

// waitSpace parks the producer until the consumer frees a slot, the
// ring closes (ErrClosed), or the deadline — absolute monotonicNS, 0
// for none — expires (ErrDeadlineExceeded). A nil return is a hint,
// not a reservation: the caller re-runs the push loop.
//
// No lost wakeups: the waiter grabs the current space generation and
// registers under mu, then re-checks fullness. The consumer frees the
// slot (head advance) before loading spaceWaiters, both seq-cst — so
// either the consumer sees the registration and closes the very
// generation the waiter holds, or the waiter's re-check sees the
// advanced head and returns without parking.
func (r *ring) waitSpace(deadline int64) error {
	r.mu.Lock()
	ch := r.space
	r.spaceWaiters.Add(1)
	r.mu.Unlock()
	defer r.spaceWaiters.Add(-1)
	if r.closed.Load() {
		return ErrClosed
	}
	if r.tail.Load()-r.head.Load() < r.size {
		return nil // space opened between the full observation and registration
	}
	if deadline == 0 {
		select {
		case <-ch:
			return nil
		case <-r.closedCh:
			return ErrClosed
		}
	}
	remain := deadline - monotonicNS()
	if remain <= 0 {
		return ErrDeadlineExceeded
	}
	timer := time.NewTimer(time.Duration(remain))
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-r.closedCh:
		return ErrClosed
	case <-timer.C:
		return ErrDeadlineExceeded
	}
}

// pop removes the next task without blocking. Single consumer only.
//
//reallocvet:hotpath
func (r *ring) pop() (task, bool) {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos+1 {
		return task{}, false // empty (or the slot is mid-publish)
	}
	t := s.t
	s.t = task{} // drop the request's references before freeing the slot
	s.seq.Store(pos + r.size)
	r.head.Store(pos + 1)
	if r.spaceWaiters.Load() > 0 {
		r.signalSpace()
	}
	return t, true
}

// signalSpace wakes every parked producer by retiring the current
// space generation. Waiters re-check fullness and re-park on the new
// generation if they lose the freed slot to a faster producer.
func (r *ring) signalSpace() {
	r.mu.Lock()
	close(r.space)
	r.space = make(chan struct{})
	r.mu.Unlock()
}

// popWait removes the next task, parking while the ring is empty. It
// returns ok=false only when the ring is closed AND fully drained —
// every push that returned true is handed to the consumer first.
//
//reallocvet:hotpath
func (r *ring) popWait() (task, bool) {
	for {
		if t, ok := r.pop(); ok {
			return t, true
		}
		r.sleeping.Store(true)
		// Re-check after raising the flag: a producer that published
		// before seeing the flag is caught here; one that published
		// after seeing it has left a wake token.
		if t, ok := r.pop(); ok {
			r.sleeping.Store(false)
			return t, true
		}
		if r.closed.Load() {
			// Closed and observed empty after the flag re-check: the
			// ring is drained (close() happens after all sends).
			if t, ok := r.pop(); ok {
				r.sleeping.Store(false)
				return t, true
			}
			return task{}, false
		}
		<-r.wake
		r.sleeping.Store(false)
	}
}

// close marks the ring closed and wakes both sides: parked producers
// fail their push with ErrClosed (closedCh reaches every space
// generation at once), the parked consumer drains and exits. close is
// idempotent.
func (r *ring) close() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	close(r.closedCh)
	select {
	case r.wake <- struct{}{}:
	default:
	}
}
