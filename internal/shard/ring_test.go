package shard

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/jobs"
)

// numbered wraps a payload value into a task the ring can carry,
// using the request name as the payload channel.
func numbered(v string) task {
	return task{req: jobs.Request{Kind: jobs.Insert, Name: v}}
}

func TestRingFIFOSingleProducer(t *testing.T) {
	r := newRing(8)
	want := []string{"a", "b", "c", "d", "e"}
	for _, v := range want {
		if err := r.push(numbered(v)); err != nil {
			t.Fatalf("push failed on open ring: %v", err)
		}
	}
	for _, v := range want {
		got, ok := r.pop()
		if !ok || got.req.Name != v {
			t.Fatalf("pop = %q/%v, want %q", got.req.Name, ok, v)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop on empty ring returned a task")
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for want, size := range map[int]uint64{0: 2, 1: 2, 2: 2, 3: 4, 256: 256, 257: 512} {
		if r := newRing(want); r.size != size {
			t.Errorf("newRing(%d).size = %d, want %d", want, r.size, size)
		}
	}
}

// TestRingBackpressure: a push into a full ring blocks until the
// consumer frees a slot, and then completes (the old channel-send
// semantics).
func TestRingBackpressure(t *testing.T) {
	r := newRing(2)
	r.push(numbered("1"))
	r.push(numbered("2"))

	unblocked := make(chan struct{})
	go func() {
		r.push(numbered("3")) // must block: ring is full
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("push into a full ring did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if got, ok := r.pop(); !ok || got.req.Name != "1" {
		t.Fatalf("pop = %q/%v, want 1", got.req.Name, ok)
	}
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("push did not unblock after a slot was freed")
	}
	for _, want := range []string{"2", "3"} {
		if got, ok := r.pop(); !ok || got.req.Name != want {
			t.Fatalf("pop = %q/%v, want %q", got.req.Name, ok, want)
		}
	}
}

// TestRingCloseDrains: tasks pushed before close are all delivered;
// popWait reports closed only after the ring is empty, and pushes after
// close fail.
func TestRingCloseDrains(t *testing.T) {
	r := newRing(8)
	for _, v := range []string{"a", "b", "c"} {
		r.push(numbered(v))
	}
	r.close()
	if err := r.push(numbered("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("push on a closed ring = %v, want ErrClosed", err)
	}
	for _, want := range []string{"a", "b", "c"} {
		got, ok := r.popWait()
		if !ok || got.req.Name != want {
			t.Fatalf("popWait = %q/%v, want %q", got.req.Name, ok, want)
		}
	}
	if _, ok := r.popWait(); ok {
		t.Fatal("popWait returned a task from a drained closed ring")
	}
}

// TestRingCloseWakesBlockedProducer: a producer parked on a full ring
// observes close and fails its push instead of hanging.
func TestRingCloseWakesBlockedProducer(t *testing.T) {
	r := newRing(2)
	r.push(numbered("1"))
	r.push(numbered("2"))
	res := make(chan error)
	go func() { res <- r.push(numbered("3")) }()
	time.Sleep(10 * time.Millisecond) // let the producer park
	r.close()
	select {
	case err := <-res:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("push on closed ring = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked producer not woken by close")
	}
}

// TestRingDeadlineWhileParked: a producer parked on a full ring whose
// task deadline expires gives up with ErrDeadlineExceeded instead of
// blocking past it — and the ring's contents are untouched.
func TestRingDeadlineWhileParked(t *testing.T) {
	r := newRing(2)
	r.push(numbered("1"))
	r.push(numbered("2"))

	late := numbered("late")
	late.deadline = monotonicNS() + int64(30*time.Millisecond)
	res := make(chan error)
	go func() { res <- r.push(late) }()
	select {
	case err := <-res:
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("push past deadline = %v, want ErrDeadlineExceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked producer not woken by its deadline")
	}

	// An already-expired deadline fails without parking at all.
	late.deadline = monotonicNS() - 1
	if err := r.push(late); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("push with expired deadline = %v, want ErrDeadlineExceeded", err)
	}

	// The expired pushes published nothing; the ring still serves the
	// earlier tasks and accepts new ones once drained.
	for _, want := range []string{"1", "2"} {
		if got, ok := r.pop(); !ok || got.req.Name != want {
			t.Fatalf("pop = %q/%v, want %q", got.req.Name, ok, want)
		}
	}
	ok := numbered("after")
	ok.deadline = monotonicNS() + int64(time.Second)
	if err := r.push(ok); err != nil {
		t.Fatalf("push with future deadline on non-full ring: %v", err)
	}
	if got, _ := r.pop(); got.req.Name != "after" {
		t.Fatalf("pop = %q, want after", got.req.Name)
	}
	r.close()
}

// TestRingDeadlineSurvivesSpaceRace: a parked producer with a deadline
// that wakes on freed space (not the timer) still completes its push.
func TestRingDeadlineSurvivesSpaceRace(t *testing.T) {
	r := newRing(2)
	r.push(numbered("1"))
	r.push(numbered("2"))
	late := numbered("3")
	late.deadline = monotonicNS() + int64(5*time.Second)
	res := make(chan error)
	go func() { res <- r.push(late) }()
	time.Sleep(10 * time.Millisecond) // let the producer park
	if got, ok := r.pop(); !ok || got.req.Name != "1" {
		t.Fatalf("pop = %q/%v, want 1", got.req.Name, ok)
	}
	select {
	case err := <-res:
		if err != nil {
			t.Fatalf("push woken by freed space = %v, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked producer not woken by freed space")
	}
	for _, want := range []string{"2", "3"} {
		if got, ok := r.pop(); !ok || got.req.Name != want {
			t.Fatalf("pop = %q/%v, want %q", got.req.Name, ok, want)
		}
	}
	r.close()
}

// TestRingParkUnpark: the consumer parks on an empty ring and a later
// push wakes it.
func TestRingParkUnpark(t *testing.T) {
	r := newRing(8)
	got := make(chan string)
	go func() {
		tk, ok := r.popWait()
		if !ok {
			got <- "<closed>"
			return
		}
		got <- tk.req.Name
	}()
	time.Sleep(10 * time.Millisecond) // consumer should be parked now
	r.push(numbered("wakeup"))
	select {
	case v := <-got:
		if v != "wakeup" {
			t.Fatalf("popWait = %q, want wakeup", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked consumer never woke for a push")
	}
}

// TestRingMPSCStress: many producers, one consumer, small ring (so the
// full/empty park paths are exercised constantly). Checks no loss, no
// duplication, and per-producer FIFO order. Run under -race in CI.
func TestRingMPSCStress(t *testing.T) {
	const producers = 8
	const perP = 5000
	r := newRing(16)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				if err := r.push(task{overflow: p%2 == 0, req: jobs.Request{
					Kind: jobs.RequestKind(p), Window: jobs.Window{Start: jobs.Time(i)},
				}}); err != nil {
					t.Errorf("push failed on open ring: %v", err)
					return
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); r.close(); close(done) }()

	lastSeen := make([]int, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	total := 0
	for {
		tk, ok := r.popWait()
		if !ok {
			break
		}
		total++
		p := int(tk.req.Kind)
		seq := int(tk.req.Window.Start)
		if seq <= lastSeen[p] {
			t.Fatalf("producer %d: saw seq %d after %d (order broken or duplicated)", p, seq, lastSeen[p])
		}
		lastSeen[p] = seq
	}
	<-done
	if total != producers*perP {
		t.Fatalf("consumed %d tasks, want %d", total, producers*perP)
	}
	for p, last := range lastSeen {
		if last != perP-1 {
			t.Fatalf("producer %d: last seq %d, want %d (lost tasks)", p, last, perP-1)
		}
	}
}

// TestRingIdleNoSpin: a parked consumer must actually block (no busy
// wait) — pin it by checking the wake token accounting rather than CPU,
// which is unmeasurable in CI: after a push-wake cycle the ring is
// empty and popWait must park again until the next push.
func TestRingIdleNoSpin(t *testing.T) {
	r := newRing(4)
	var served atomic.Int64
	go func() {
		for {
			if _, ok := r.popWait(); !ok {
				return
			}
			served.Add(1)
		}
	}()
	for i := 0; i < 100; i++ {
		r.push(numbered("x"))
		time.Sleep(100 * time.Microsecond)
	}
	deadline := time.Now().Add(2 * time.Second)
	for served.Load() != 100 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if served.Load() != 100 {
		t.Fatalf("served %d of 100 pushes across park/unpark cycles", served.Load())
	}
	r.close()
}

func BenchmarkRingPushPop(b *testing.B) {
	r := newRing(256)
	t := numbered("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.push(t)
		r.pop()
	}
}

func BenchmarkRingMPSC(b *testing.B) {
	r := newRing(256)
	var consumed atomic.Int64
	go func() {
		for {
			if _, ok := r.popWait(); !ok {
				return
			}
			consumed.Add(1)
		}
	}()
	t := numbered("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.push(t)
		}
	})
	b.StopTimer()
	r.close()
}
