// Package shard implements a thread-safe, horizontally sharded front-end
// over the single-threaded reallocating schedulers of this repository.
//
// The machine pool is partitioned into S independent shards, each owning
// a contiguous machine range and one inner sched.Scheduler (typically a
// full Theorem 1 stack). Requests route to a primary shard by consistent
// hashing of the job name; an insert the primary rejects as infeasible
// overflows to the least-loaded shard. Each shard runs one worker
// goroutine fed by a buffered request channel, so independent shards
// serve requests in parallel and a burst against one shard pipelines
// into batches instead of blocking the caller per request.
//
// Two request paths are exposed: Apply (and the Insert/Delete methods of
// sched.Scheduler) is synchronous — it returns the request's cost after
// the owning worker has served it — while Submit enqueues a request and
// returns immediately, with Drain waiting for every outstanding request
// and reporting asynchronous failures.
//
// Sharding trades the paper's global cost bounds for throughput: each
// shard preserves Theorem 1's guarantees on its own machine range, but
// underallocation is only enforced shard-locally, which is why overflow
// routing exists. Report exposes the per-shard cost breakdown so callers
// can watch the balance.
package shard

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// ErrClosed reports a request sent to a closed scheduler.
var ErrClosed = errors.New("shard: scheduler is closed")

// reservedShard marks a name whose insert is still in flight.
const reservedShard = -1

// defaultBuffer is the per-shard request channel capacity.
const defaultBuffer = 256

// maxBatch bounds how many queued requests a worker drains per wakeup.
const maxBatch = 64

// Factory builds the inner scheduler of one shard, given the number of
// machines the shard owns.
type Factory func(machines int) sched.Scheduler

// Config configures New.
type Config struct {
	// Shards is the number of shards S (default 1).
	Shards int
	// Machines is the total machine pool, partitioned near-evenly
	// across shards (default Shards; must be >= Shards).
	Machines int
	// Factory builds each shard's inner scheduler (required).
	Factory Factory
	// Policy routes job names to primary shards (default: consistent
	// hash ring with DefaultReplicas virtual nodes).
	Policy Policy
	// Buffer is the per-shard request channel capacity (default 256).
	Buffer int
}

// Scheduler is the sharded front-end. It implements sched.Scheduler and
// is safe for concurrent use by any number of goroutines.
type Scheduler struct {
	workers []*worker
	policy  Policy

	mu     sync.RWMutex
	byJob  map[string]int // name -> shard, or reservedShard while in flight
	active int            // committed entries in byJob

	// sendMu serializes request sends against Close: senders hold the
	// read side, Close holds the write side while closing channels.
	sendMu sync.RWMutex
	closed bool

	// pendMu/pendCond/pendN track outstanding Submit requests. A plain
	// WaitGroup cannot be used: Submit may Add while another goroutine
	// is already blocked in Drain, which WaitGroup forbids.
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pendN    int

	errMu     sync.Mutex
	asyncErrs []error
	errCount  int
}

var _ sched.Scheduler = (*Scheduler)(nil)

// worker owns one shard: its inner scheduler, machine range, request
// channel, and statistics. Only the worker goroutine touches inner and
// stats after startup.
type worker struct {
	idx      int
	base     int // global index of the shard's first machine
	machines int
	inner    sched.Scheduler
	reqs     chan task
	done     chan struct{}
	stats    metrics.ShardCost
}

type task struct {
	req      jobs.Request
	overflow bool
	// retryable marks a primary insert that the front-end will retry on
	// a fallback shard if this shard rejects it as infeasible; such a
	// rejection counts as Rerouted, not as a terminal Failure.
	retryable bool
	finish    func(metrics.Cost, error)
	// ctrl, when non-nil, runs on the worker goroutine instead of req
	// (snapshots, self-checks, reports); ctrlDone signals completion.
	ctrl     func(inner sched.Scheduler, st *metrics.ShardCost)
	ctrlDone *sync.WaitGroup
}

// New builds a sharded scheduler. It panics on invalid configuration,
// matching the constructors of the inner schedulers.
func New(cfg Config) *Scheduler {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Machines == 0 {
		cfg.Machines = cfg.Shards
	}
	if cfg.Shards < 1 || cfg.Machines < cfg.Shards {
		panic(fmt.Sprintf("shard: %d shards over %d machines", cfg.Shards, cfg.Machines))
	}
	if cfg.Factory == nil {
		panic("shard: nil Factory")
	}
	if cfg.Policy == nil {
		cfg.Policy = NewRing(cfg.Shards, DefaultReplicas)
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = defaultBuffer
	}
	s := &Scheduler{
		workers: make([]*worker, cfg.Shards),
		policy:  cfg.Policy,
		byJob:   make(map[string]int),
	}
	s.pendCond = sync.NewCond(&s.pendMu)
	base := 0
	for i := range s.workers {
		m := cfg.Machines / cfg.Shards
		if i < cfg.Machines%cfg.Shards {
			m++ // spread the remainder over the earliest shards
		}
		w := &worker{
			idx:      i,
			base:     base,
			machines: m,
			inner:    cfg.Factory(m),
			reqs:     make(chan task, cfg.Buffer),
			done:     make(chan struct{}),
		}
		w.stats.Shard = i
		w.stats.Machines = m
		base += m
		s.workers[i] = w
		go w.run()
	}
	return s
}

// run is the shard worker loop: drain up to maxBatch queued tasks per
// wakeup and serve them back to back.
func (w *worker) run() {
	defer close(w.done)
	batch := make([]task, 0, maxBatch)
	for {
		t, ok := <-w.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], t)
	fill:
		for len(batch) < maxBatch {
			select {
			case t2, ok2 := <-w.reqs:
				if !ok2 {
					break fill
				}
				batch = append(batch, t2)
			default:
				break fill
			}
		}
		w.stats.Batches++
		for _, t := range batch {
			w.exec(t)
		}
	}
}

func (w *worker) exec(t task) {
	if t.ctrl != nil {
		t.ctrl(w.inner, &w.stats)
		t.ctrlDone.Done()
		return
	}
	c, err := sched.Apply(w.inner, t.req)
	w.stats.Requests++
	switch {
	case err != nil && t.retryable && errors.Is(err, sched.ErrInfeasible):
		w.stats.Rerouted++
	case err != nil:
		w.stats.Failures++
	case t.overflow:
		w.stats.Overflow++
	}
	w.stats.Cost.Add(c)
	t.finish(c, err)
}

// send enqueues a task on shard i, blocking when the shard's buffer is
// full (backpressure). It fails with ErrClosed after Close.
func (s *Scheduler) send(i int, t task) error {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.workers[i].reqs <- t
	return nil
}

// Shards returns the shard count.
func (s *Scheduler) Shards() int { return len(s.workers) }

// Machines returns the total machine pool size.
func (s *Scheduler) Machines() int {
	last := s.workers[len(s.workers)-1]
	return last.base + last.machines
}

// Active returns the number of committed active jobs.
func (s *Scheduler) Active() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.active
}

// Insert adds a job synchronously. Implements sched.Scheduler.
func (s *Scheduler) Insert(j jobs.Job) (metrics.Cost, error) {
	return s.Apply(jobs.Request{Kind: jobs.Insert, Name: j.Name, Window: j.Window})
}

// Delete removes a job synchronously. Implements sched.Scheduler.
func (s *Scheduler) Delete(name string) (metrics.Cost, error) {
	return s.Apply(jobs.DeleteReq(name))
}

// Apply serves one request synchronously: it returns after the owning
// shard worker has executed the request (including any overflow hop).
func (s *Scheduler) Apply(r jobs.Request) (metrics.Cost, error) {
	type response struct {
		cost metrics.Cost
		err  error
	}
	ch := make(chan response, 1)
	if err := s.dispatch(r, func(c metrics.Cost, err error) { ch <- response{c, err} }); err != nil {
		return metrics.Cost{}, err
	}
	resp := <-ch
	return resp.cost, resp.err
}

// Submit enqueues one request and returns immediately; the result is
// folded into the shard report and Drain's error summary. Submit blocks
// only when the owning shard's buffer is full. Requests touching the
// same job name must not be in flight concurrently (Drain between an
// async insert and a delete of the same name); requests for different
// names are unordered across shards by design.
func (s *Scheduler) Submit(r jobs.Request) error {
	s.pendAdd()
	err := s.dispatch(r, func(_ metrics.Cost, err error) {
		if err != nil {
			s.recordAsyncErr(r, err)
		}
		s.pendDone()
	})
	if err != nil {
		s.pendDone()
		return err
	}
	return nil
}

func (s *Scheduler) pendAdd() {
	s.pendMu.Lock()
	s.pendN++
	s.pendMu.Unlock()
}

func (s *Scheduler) pendDone() {
	s.pendMu.Lock()
	s.pendN--
	if s.pendN == 0 {
		s.pendCond.Broadcast()
	}
	s.pendMu.Unlock()
}

func (s *Scheduler) pendWait() {
	s.pendMu.Lock()
	for s.pendN > 0 {
		s.pendCond.Wait()
	}
	s.pendMu.Unlock()
}

// Drain blocks until every outstanding Submit has been served, then
// reports asynchronous failures: nil if all succeeded, otherwise an
// error summarizing the count and the first few failures. The failure
// log resets on return.
func (s *Scheduler) Drain() error {
	s.pendWait()
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.errCount == 0 {
		return nil
	}
	err := fmt.Errorf("shard: %d async request(s) failed, first: %w", s.errCount, s.asyncErrs[0])
	s.asyncErrs = nil
	s.errCount = 0
	return err
}

const maxRetainedErrs = 16

func (s *Scheduler) recordAsyncErr(r jobs.Request, err error) {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	s.errCount++
	if len(s.asyncErrs) < maxRetainedErrs {
		s.asyncErrs = append(s.asyncErrs, fmt.Errorf("%s: %w", r, err))
	}
}

// dispatch validates, reserves (for inserts), routes, and enqueues one
// request. finish runs exactly once with the request's final outcome —
// on a worker goroutine, so it must not block on scheduler operations.
func (s *Scheduler) dispatch(r jobs.Request, finish func(metrics.Cost, error)) error {
	if err := r.Validate(); err != nil {
		return err
	}
	switch r.Kind {
	case jobs.Insert:
		return s.dispatchInsert(r, finish)
	case jobs.Delete:
		return s.dispatchDelete(r, finish)
	default:
		return fmt.Errorf("shard: unknown request kind %d", r.Kind)
	}
}

func (s *Scheduler) dispatchInsert(r jobs.Request, finish func(metrics.Cost, error)) error {
	s.mu.Lock()
	if _, dup := s.byJob[r.Name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", sched.ErrDuplicateJob, r.Name)
	}
	s.byJob[r.Name] = reservedShard
	s.mu.Unlock()

	primary := s.policy.Route(r.Name, len(s.workers))
	err := s.send(primary, task{req: r, retryable: len(s.workers) > 1, finish: func(c metrics.Cost, err error) {
		if err != nil && errors.Is(err, sched.ErrInfeasible) && len(s.workers) > 1 {
			// Primary shard is locally overallocated: overflow to the
			// least-loaded shard. The hop runs on a fresh goroutine so
			// shard workers never block sending to each other.
			if fb := s.leastLoaded(primary); fb != primary {
				go s.overflow(r, fb, finish)
				return
			}
		}
		s.commitInsert(r.Name, primary, err)
		finish(c, err)
	}})
	if err != nil {
		s.unreserve(r.Name)
		return err
	}
	return nil
}

// overflow retries a rejected insert on shard fb.
func (s *Scheduler) overflow(r jobs.Request, fb int, finish func(metrics.Cost, error)) {
	err := s.send(fb, task{req: r, overflow: true, finish: func(c metrics.Cost, err error) {
		s.commitInsert(r.Name, fb, err)
		finish(c, err)
	}})
	if err != nil {
		s.unreserve(r.Name)
		finish(metrics.Cost{}, err)
	}
}

func (s *Scheduler) commitInsert(name string, shardIdx int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		delete(s.byJob, name)
		return
	}
	s.byJob[name] = shardIdx
	s.active++
}

func (s *Scheduler) unreserve(name string) {
	s.mu.Lock()
	delete(s.byJob, name)
	s.mu.Unlock()
}

func (s *Scheduler) dispatchDelete(r jobs.Request, finish func(metrics.Cost, error)) error {
	s.mu.RLock()
	idx, ok := s.byJob[r.Name]
	s.mu.RUnlock()
	if !ok || idx == reservedShard {
		return fmt.Errorf("%w: %q", sched.ErrUnknownJob, r.Name)
	}
	return s.send(idx, task{req: r, finish: func(c metrics.Cost, err error) {
		if err == nil {
			s.mu.Lock()
			delete(s.byJob, r.Name)
			s.active--
			s.mu.Unlock()
		}
		finish(c, err)
	}})
}

// leastLoaded returns the shard with the fewest committed jobs per
// machine, excluding shard `not` (ties to the lowest index).
func (s *Scheduler) leastLoaded(not int) int {
	load := make([]int, len(s.workers))
	s.mu.RLock()
	for _, idx := range s.byJob {
		if idx >= 0 {
			load[idx]++
		}
	}
	s.mu.RUnlock()
	best, bestLoad := not, -1.0
	for i, w := range s.workers {
		if i == not {
			continue
		}
		l := float64(load[i]) / float64(w.machines)
		if bestLoad < 0 || l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// each runs fn on every shard worker goroutine and waits for all of
// them; fn must not call back into the Scheduler's request paths. Even
// when a send fails (scheduler closed mid-call), each waits for the
// control tasks already queued — workers drain their buffers before
// exiting — so fn never runs after each returns.
func (s *Scheduler) each(fn func(shardIdx int, inner sched.Scheduler, st *metrics.ShardCost)) error {
	var wg sync.WaitGroup
	var firstErr error
	for i := range s.workers {
		i := i
		wg.Add(1)
		err := s.send(i, task{ctrlDone: &wg, ctrl: func(inner sched.Scheduler, st *metrics.ShardCost) {
			fn(i, inner, st)
		}})
		if err != nil {
			wg.Done()
			firstErr = err
			break
		}
	}
	wg.Wait()
	return firstErr
}

// Assignment returns a snapshot of the global schedule, with per-shard
// machine indices remapped into the global machine range.
func (s *Scheduler) Assignment() jobs.Assignment {
	out := make(jobs.Assignment)
	var mu sync.Mutex
	_ = s.each(func(i int, inner sched.Scheduler, _ *metrics.ShardCost) {
		base := s.workers[i].base
		local := inner.Assignment()
		mu.Lock()
		for name, p := range local {
			out[name] = jobs.Placement{Machine: base + p.Machine, Slot: p.Slot}
		}
		mu.Unlock()
	})
	return out
}

// Jobs returns a snapshot of the active job set.
func (s *Scheduler) Jobs() []jobs.Job {
	var out []jobs.Job
	var mu sync.Mutex
	_ = s.each(func(_ int, inner sched.Scheduler, _ *metrics.ShardCost) {
		js := inner.Jobs()
		mu.Lock()
		out = append(out, js...)
		mu.Unlock()
	})
	return out
}

// Report returns the shard-aware cost report: per-shard totals of
// requests, failures, overflow hops, batches, and costs.
func (s *Scheduler) Report() metrics.ShardReport {
	rep := metrics.ShardReport{Shards: make([]metrics.ShardCost, len(s.workers))}
	_ = s.each(func(i int, inner sched.Scheduler, st *metrics.ShardCost) {
		snap := *st
		snap.Active = inner.Active()
		rep.Shards[i] = snap
	})
	return rep
}

// SelfCheck validates every shard's internal invariants plus the
// front-end's routing table. Implements sched.Scheduler.
func (s *Scheduler) SelfCheck() error {
	errs := make([]error, len(s.workers))
	routed := make([]map[string]bool, len(s.workers))
	if err := s.each(func(i int, inner sched.Scheduler, _ *metrics.ShardCost) {
		if err := inner.SelfCheck(); err != nil {
			errs[i] = fmt.Errorf("shard %d: %w", i, err)
			return
		}
		names := make(map[string]bool)
		for _, j := range inner.Jobs() {
			names[j.Name] = true
		}
		routed[i] = names
	}); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	committed := 0
	for name, idx := range s.byJob {
		if idx == reservedShard {
			continue
		}
		committed++
		if !routed[idx][name] {
			return fmt.Errorf("shard: job %q routed to shard %d but not present there", name, idx)
		}
	}
	total := 0
	for _, names := range routed {
		total += len(names)
	}
	if total != committed {
		return fmt.Errorf("shard: %d jobs on shards, %d committed in routing table", total, committed)
	}
	if committed != s.active {
		return fmt.Errorf("shard: active count %d, routing table holds %d", s.active, committed)
	}
	return nil
}

// Close drains outstanding asynchronous requests, stops every shard
// worker, and releases the request channels. Requests after Close fail
// with ErrClosed. Close is idempotent.
func (s *Scheduler) Close() {
	s.pendWait()
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return
	}
	s.closed = true
	for _, w := range s.workers {
		close(w.reqs)
	}
	s.sendMu.Unlock()
	for _, w := range s.workers {
		<-w.done
	}
}
