// Package shard implements a thread-safe, horizontally sharded front-end
// over the single-threaded reallocating schedulers of this repository.
//
// The machine pool is partitioned into S independent shards, each owning
// a contiguous machine range and one inner sched.Scheduler (typically a
// full Theorem 1 stack). Requests route to a primary shard by consistent
// hashing of the job name; an insert the primary rejects as infeasible
// overflows to the least-loaded shard. Each shard runs one worker
// goroutine fed by a bounded MPSC ring buffer (lock-free CAS producers,
// single consumer, park/unpark on empty/full — see ring.go), so
// independent shards serve requests in parallel and a burst against one
// shard pipelines into batches instead of blocking the caller per
// request. Every request's dispatch latency (enqueue to served) lands
// in a per-shard HDR histogram surfaced through Report.
//
// Two request paths are exposed: Apply (and the Insert/Delete methods of
// sched.Scheduler) is synchronous — it returns the request's cost after
// the owning worker has served it — while Submit enqueues a request and
// returns immediately, with Drain waiting for every outstanding request
// and reporting asynchronous failures.
//
// The machine pool is elastic: Resize and ResizeShard grow or shrink
// shards' machine ranges at runtime with bounded migrations — growing
// never moves a job, shrinking re-places only the jobs that lived on
// the drained machines (first within the shard, then via the overflow
// path to the least-loaded shards). SubmitResize is the asynchronous
// variant; per-resize migration counts land in the shard report.
//
// Sharding trades the paper's global cost bounds for throughput: each
// shard preserves Theorem 1's guarantees on its own machine range, but
// underallocation is only enforced shard-locally, which is why overflow
// routing exists. Report exposes the per-shard cost breakdown so callers
// can watch the balance.
//
//reallocvet:deterministic
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/hdr"
	"repro/internal/ident"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/wal"
)

// ErrClosed reports a request sent to a closed scheduler. It aliases
// fault.ErrClosed, the repo-wide sentinel for the failure class.
var ErrClosed = fault.ErrClosed

// ErrDeadlineExceeded reports a request whose deadline passed before
// its shard worker executed it — while parked on a full ring, or while
// queued behind earlier work. Such a request never reaches the inner
// scheduler, mutates nothing, and (under a WAL) is never logged, so a
// deadline rejection needs no compensation on either side. It aliases
// fault.ErrDeadlineExceeded.
var ErrDeadlineExceeded = fault.ErrDeadlineExceeded

// ErrNotElastic reports a resize against a shard whose inner scheduler
// does not implement sched.Elastic (or whose wrapper chain bottoms out
// in a non-elastic scheduler).
var ErrNotElastic = sched.ErrNotElastic

// Routing-table markers for names without a committed shard.
const (
	// reservedShard marks a name whose insert is still in flight.
	reservedShard = -1
	// migratingShard marks a name a pool shrink evicted from its shard
	// and is moving to another; deletes wait for the move to settle.
	migratingShard = -2
	// noShard marks an unused slot of the ID-indexed routing table (the
	// ID is not currently issued, or its insert never committed).
	noShard = -3
)

// defaultBuffer is the per-shard request ring capacity.
const defaultBuffer = 256

// maxBatch bounds how many queued requests a worker drains per wakeup.
const maxBatch = 64

// migrateSettleStep / migrateSettleMax bound how long a delete waits for
// an in-flight resize migration of its job to land. Resize migrations
// settle in milliseconds; if one somehow exceeds the cap, the delete
// fails with a "timed out waiting for its resize migration" error while
// the job stays scheduled on its new shard — the delete can simply be
// retried.
const (
	migrateSettleStep = 100 * time.Microsecond
	migrateSettleMax  = 2 * time.Second
)

// Factory builds the inner scheduler of one shard, given the number of
// machines the shard owns. For the pool to be resizable the returned
// scheduler must implement sched.Elastic.
type Factory func(machines int) sched.Scheduler

// Config configures New.
//
// Validation matches realloc.NewSharded: a zero value means "use the
// default" (documented per field), and negative values panic. The one
// intentional difference is the Shards default — 1 here, 4 there — and
// the Machines < Shards case, which panics here (the low-level API does
// not resize what you asked for) but grows the pool there.
type Config struct {
	// Shards is the number of shards S (0 means 1; negative panics).
	Shards int
	// Machines is the total machine pool, partitioned near-evenly
	// across shards (0 means Shards; must otherwise be >= Shards).
	Machines int
	// Factory builds each shard's inner scheduler (required).
	Factory Factory
	// Policy routes job names to primary shards (default: consistent
	// hash ring with DefaultReplicas virtual nodes).
	Policy Policy
	// Buffer is the per-shard request ring capacity (default 256,
	// rounded up to a power of two).
	Buffer int
	// BatchSize is the preferred bulk-admission chunk size reported by
	// Scheduler.BatchSize (0 means 1, i.e. no auto-chunking; negative
	// panics). It does not change ApplyBatch itself, which serves
	// whatever slice it is given.
	BatchSize int
	// WAL, when non-nil, makes the scheduler durable: every admission
	// path (sync Apply, async Submit, bulk ApplyBatch) and every resize
	// appends a record to the log BEFORE the request is acknowledged —
	// the ack is deferred until the record's group commit completes, so
	// an acknowledged request is always recoverable. Ownership of the
	// log transfers to the scheduler: Close closes it. When nil (the
	// default) the admission paths are untouched — no record types, no
	// extra allocations, the PR 4 zero-alloc hot path is preserved.
	WAL *wal.Log
}

// Scheduler is the sharded front-end. It implements sched.Scheduler and
// is safe for concurrent use by any number of goroutines.
type Scheduler struct {
	workers   []*worker
	policy    Policy
	batchSize int

	// names interns every tracked job name; routing is the ID-indexed
	// shard table, holding a shard index or a negative marker
	// (reservedShard, migratingShard, noShard). Invariant, under mu: a
	// name is interned if and only if its routing slot is not noShard —
	// whoever transitions a slot to noShard releases the ID in the same
	// critical section, so captured IDs stay valid exactly as long as
	// their routing entry is owned. Every intern/release deliberately
	// runs UNDER mu (a 1-stripe table, so IDs stay fully dense):
	// interning outside the lock would race ID release/reuse — a freed
	// ID could be reissued to a different name between a dispatcher's
	// intern and its routing-table write, and two names would then claim
	// one routing slot.
	mu       sync.RWMutex
	names    *ident.Table
	routing  []int32
	active   int   // committed entries in the routing table
	loads    []int // committed jobs per shard
	inflight []int // in-flight insert reservations per shard
	resizes  []metrics.ResizeCost

	// rangeMu guards the machine-range view (worker.base/machines):
	// resizes renumber under the write lock, snapshots and load
	// estimates read under the read lock.
	rangeMu sync.RWMutex

	// resizeMu serializes resize operations.
	resizeMu sync.Mutex

	// sendMu serializes request sends against Close: senders hold the
	// read side, Close holds the write side while closing channels.
	// closed is atomic so fast-path pre-checks (dispatch, ApplyBatch,
	// SubmitResize) read it without touching sendMu; it is only ever set
	// under the sendMu write lock, so a sender holding the read lock
	// that observes it false is guaranteed the channels are still open.
	sendMu sync.RWMutex
	closed atomic.Bool

	// pendMu/pendCond/pendN track outstanding Submit requests. A plain
	// WaitGroup cannot be used: Submit may Add while another goroutine
	// is already blocked in Drain, which WaitGroup forbids.
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pendN    int

	errMu     sync.Mutex
	asyncErrs []error
	errCount  int

	// log is the attached write-ahead log (nil = durability off). It is
	// set at construction (Config.WAL) or once by AttachWAL before the
	// scheduler is shared — never mutated concurrently with requests.
	log *wal.Log
}

var _ sched.Scheduler = (*Scheduler)(nil)

// worker owns one shard: its inner scheduler, machine range, request
// ring, and statistics. Only the worker goroutine touches inner and
// stats after startup. base is guarded by rangeMu; machines is atomic
// because worker-side code (the overflow load heuristic) reads it and
// must never block on rangeMu — a resize holds that lock while waiting
// for the worker. lat is the shard's admission-latency histogram
// (enqueue to served), recorded on the worker and snapshotted into the
// shard report; hdr.Record is atomic and allocation-free, so it rides
// the hot path.
type worker struct {
	idx      int
	base     int          // global index of the shard's first machine
	machines atomic.Int64 // current machine count
	inner    sched.Scheduler
	ring     *ring
	done     chan struct{}
	lat      *hdr.Histogram
	stats    metrics.ShardCost
}

type task struct {
	req      jobs.Request
	overflow bool
	// enq is when the task entered the dispatch boundary (just before
	// its ring push, so a push blocked on a full ring counts as queue
	// delay); the worker records served-enq into the shard's latency
	// histogram. It is monotonic nanoseconds since the package epoch —
	// one clock read, no wall-time component, 8 bytes in the ring slot.
	enq int64
	// retryable marks a primary insert that the front-end will retry on
	// a fallback shard if this shard rejects it as infeasible; such a
	// rejection counts as Rerouted, not as a terminal Failure.
	retryable bool
	// resizeMove marks the re-insert of a job another shard evicted
	// during a pool shrink; it is counted as resize work, not as a
	// client request.
	resizeMove bool
	// deadline is the request's absolute expiry in monotonicNS (0 =
	// none). It bounds both the full-ring park (push fails with
	// ErrDeadlineExceeded instead of blocking past it) and queue time
	// (the worker rejects an expired task instead of executing it).
	deadline int64
	finish   func(metrics.Cost, error)
	// ctrl, when non-nil, runs on the worker goroutine instead of req
	// (snapshots, self-checks, reports, resizes); ctrlDone signals
	// completion.
	ctrl     func(inner sched.Scheduler, st *metrics.ShardCost)
	ctrlDone *sync.WaitGroup
}

// New builds a sharded scheduler. It panics on invalid configuration,
// matching the constructors of the inner schedulers.
func New(cfg Config) *Scheduler {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Machines == 0 {
		cfg.Machines = cfg.Shards
	}
	if cfg.Shards < 1 || cfg.Machines < cfg.Shards {
		panic(fmt.Sprintf("shard: %d shards over %d machines", cfg.Shards, cfg.Machines))
	}
	perShard := make([]int, cfg.Shards)
	for i := range perShard {
		perShard[i] = cfg.Machines / cfg.Shards
		if i < cfg.Machines%cfg.Shards {
			perShard[i]++ // spread the remainder over the earliest shards
		}
	}
	return newScheduler(cfg, perShard)
}

// newScheduler builds the front-end over an explicit per-shard machine
// partition. It is New's execution half, shared with Restore (which
// resurrects a checkpointed partition instead of splitting evenly).
func newScheduler(cfg Config, perShard []int) *Scheduler {
	if cfg.Factory == nil {
		panic("shard: nil Factory")
	}
	if cfg.Policy == nil {
		cfg.Policy = NewRing(len(perShard), DefaultReplicas)
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = defaultBuffer
	}
	if cfg.BatchSize < 0 {
		panic(fmt.Sprintf("shard: BatchSize %d", cfg.BatchSize))
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 1
	}
	s := &Scheduler{
		workers:   make([]*worker, len(perShard)),
		policy:    cfg.Policy,
		batchSize: cfg.BatchSize,
		names:     ident.New(),
		loads:     make([]int, len(perShard)),
		inflight:  make([]int, len(perShard)),
		log:       cfg.WAL,
	}
	s.pendCond = sync.NewCond(&s.pendMu)
	base := 0
	for i, m := range perShard {
		w := &worker{
			idx:   i,
			base:  base,
			inner: cfg.Factory(m),
			ring:  newRing(cfg.Buffer),
			done:  make(chan struct{}),
			lat:   hdr.New(),
		}
		w.machines.Store(int64(m))
		w.stats.Shard = i
		w.stats.Machines = m
		base += m
		s.workers[i] = w
		go w.run()
	}
	return s
}

// run is the shard worker loop: park until the ring has work, then
// serve up to maxBatch queued tasks back to back per wakeup.
func (w *worker) run() {
	defer close(w.done)
	for {
		t, ok := w.ring.popWait()
		if !ok {
			return
		}
		w.stats.Batches++
		w.exec(t)
		for n := 1; n < maxBatch; n++ {
			t, ok := w.ring.pop()
			if !ok {
				break
			}
			w.exec(t)
		}
	}
}

//reallocvet:hotpath
func (w *worker) exec(t task) {
	if t.ctrl != nil {
		t.ctrl(w.inner, &w.stats)
		t.ctrlDone.Done()
		return
	}
	if t.deadline != 0 && monotonicNS() > t.deadline {
		// Expired while queued: reject without touching the inner
		// scheduler, so the request provably mutated nothing and its
		// reservation is released by the ordinary failure path.
		w.stats.Requests++
		w.stats.Failures++
		w.lat.Record(monotonicNS() - t.enq)
		t.finish(metrics.Cost{}, ErrDeadlineExceeded)
		return
	}
	c, err := sched.Apply(w.inner, t.req)
	if t.resizeMove {
		// Resize work is accounted separately from client requests.
		if err == nil {
			w.stats.ResizeAbsorbed++
			w.stats.Cost.Add(c)
		}
		t.finish(c, err)
		return
	}
	w.stats.Requests++
	switch {
	case err != nil && t.retryable && errors.Is(err, sched.ErrInfeasible):
		w.stats.Rerouted++
	case err != nil:
		w.stats.Failures++
	case t.overflow:
		w.stats.Overflow++
	}
	w.stats.Cost.Add(c)
	w.lat.Record(monotonicNS() - t.enq)
	t.finish(c, err)
}

// routeOf returns the routing value of id and whether it is tracked.
// Requires mu (read) held.
func (s *Scheduler) routeOf(id ident.ID) (int, bool) {
	if int(id) < len(s.routing) && s.routing[id] != noShard {
		return int(s.routing[id]), true
	}
	return 0, false
}

// setRoute writes id's routing value, growing the table on demand.
// Requires mu (write) held.
func (s *Scheduler) setRoute(id ident.ID, v int) {
	for int(id) >= len(s.routing) {
		s.routing = append(s.routing, noShard)
	}
	s.routing[id] = int32(v)
}

// dropRoute removes id from the routing table and releases the ID,
// reporting whether it was tracked. Requires mu (write) held; this is
// the ONLY place a tracked ID is released, which is what keeps the
// interned⇔tracked invariant.
func (s *Scheduler) dropRoute(id ident.ID) bool {
	if _, ok := s.routeOf(id); !ok {
		return false
	}
	s.routing[id] = noShard
	s.names.Release(id)
	return true
}

// trackedID resolves a name to its ID if the name is currently tracked.
// Requires mu (read) held.
func (s *Scheduler) trackedID(name string) (ident.ID, int, bool) {
	id, ok := s.names.Get(name)
	if !ok {
		return ident.None, 0, false
	}
	v, ok := s.routeOf(id)
	return id, v, ok
}

// send enqueues a task on shard i, blocking when the shard's ring is
// full (backpressure). It fails with ErrClosed after Close, and with
// ErrDeadlineExceeded when the task's deadline expires while parked on
// the full ring.
//
//reallocvet:hotpath
func (s *Scheduler) send(i int, t task) error {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.closed.Load() {
		return ErrClosed
	}
	t.enq = monotonicNS()
	return s.workers[i].ring.push(t)
}

// epoch anchors the monotonic clock used for dispatch-latency stamps.
var epoch = time.Now()

// monotonicNS returns nanoseconds since the package epoch — a single
// monotonic clock read, cheaper than time.Now (which also reads the
// wall clock) and immune to wall-time jumps.
func monotonicNS() int64 { return int64(time.Since(epoch)) }

// Shards returns the shard count (fixed for the scheduler's lifetime;
// only the machine pool is elastic).
func (s *Scheduler) Shards() int { return len(s.workers) }

// BatchSize returns the preferred bulk-admission chunk size configured
// at construction (1 when unset); realloc.Run auto-chunks request
// sequences through ApplyBatch when it exceeds 1.
func (s *Scheduler) BatchSize() int { return s.batchSize }

// isClosed samples the closed flag without touching the send lock.
func (s *Scheduler) isClosed() bool { return s.closed.Load() }

// Machines returns the total machine pool size.
func (s *Scheduler) Machines() int {
	s.rangeMu.RLock()
	defer s.rangeMu.RUnlock()
	return s.machinesLocked()
}

func (s *Scheduler) machinesLocked() int {
	last := s.workers[len(s.workers)-1]
	return last.base + int(last.machines.Load())
}

// ShardMachines returns shard i's current machine count.
func (s *Scheduler) ShardMachines(i int) int {
	return int(s.workers[i].machines.Load())
}

// Active returns the number of committed active jobs.
func (s *Scheduler) Active() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.active
}

// Insert adds a job synchronously. Implements sched.Scheduler.
func (s *Scheduler) Insert(j jobs.Job) (metrics.Cost, error) {
	return s.Apply(jobs.Request{Kind: jobs.Insert, Name: j.Name, Window: j.Window})
}

// Delete removes a job synchronously. Implements sched.Scheduler.
func (s *Scheduler) Delete(name string) (metrics.Cost, error) {
	return s.Apply(jobs.DeleteReq(name))
}

// response carries a synchronous request's outcome from the worker back
// to the caller. The channels are pooled: a served request leaves its
// channel empty, so it can immediately carry the next request.
type response struct {
	cost metrics.Cost
	err  error
}

var respPool = sync.Pool{New: func() any { return make(chan response, 1) }}

// Apply serves one request synchronously: it returns after the owning
// shard worker has executed the request (including any overflow hop).
func (s *Scheduler) Apply(r jobs.Request) (metrics.Cost, error) {
	return s.ApplyDeadline(r, 0)
}

// ApplyDeadline is Apply with a request deadline: if timeout elapses
// before a shard worker picks the request up — parked on a full ring,
// or queued behind earlier work — the request fails with
// ErrDeadlineExceeded, having mutated nothing. Execution itself is
// never interrupted: once a worker starts the request it runs to
// completion, so a nil error always means the job state changed.
// timeout <= 0 means no deadline.
func (s *Scheduler) ApplyDeadline(r jobs.Request, timeout time.Duration) (metrics.Cost, error) {
	ch := respPool.Get().(chan response)
	if err := s.dispatchTimed(r, deadlineFrom(timeout), func(c metrics.Cost, err error) { ch <- response{c, err} }); err != nil {
		respPool.Put(ch)
		return metrics.Cost{}, err
	}
	resp := <-ch
	respPool.Put(ch)
	return resp.cost, resp.err
}

// deadlineFrom converts a relative timeout to an absolute monotonicNS
// deadline (0 = none).
func deadlineFrom(timeout time.Duration) int64 {
	if timeout <= 0 {
		return 0
	}
	return monotonicNS() + int64(timeout)
}

// Submit enqueues one request and returns immediately; the result is
// folded into the shard report and Drain's error summary. Submit blocks
// only when the owning shard's buffer is full. Requests touching the
// same job name must not be in flight concurrently (Drain between an
// async insert and a delete of the same name); requests for different
// names are unordered across shards by design.
func (s *Scheduler) Submit(r jobs.Request) error {
	return s.SubmitDeadline(r, 0)
}

// SubmitDeadline is Submit with a request deadline (see ApplyDeadline
// for the semantics). A deadline expiry surfaces like any other async
// failure: folded into Drain's error summary.
func (s *Scheduler) SubmitDeadline(r jobs.Request, timeout time.Duration) error {
	s.pendAdd()
	err := s.dispatchTimed(r, deadlineFrom(timeout), func(_ metrics.Cost, err error) {
		if err != nil {
			s.recordAsyncErr(r.String(), err)
		}
		s.pendDone()
	})
	if err != nil {
		s.pendDone()
		return err
	}
	return nil
}

func (s *Scheduler) pendAdd() {
	s.pendMu.Lock()
	s.pendN++
	s.pendMu.Unlock()
}

func (s *Scheduler) pendDone() {
	s.pendMu.Lock()
	s.pendN--
	if s.pendN == 0 {
		s.pendCond.Broadcast()
	}
	s.pendMu.Unlock()
}

func (s *Scheduler) pendWait() {
	s.pendMu.Lock()
	for s.pendN > 0 {
		s.pendCond.Wait()
	}
	s.pendMu.Unlock()
}

// Drain blocks until every outstanding Submit has been served, then
// reports asynchronous failures: nil if all succeeded, otherwise an
// error summarizing the count and the first retained failure.
//
// The handoff is consume-once: Drain takes the whole retained log (and
// the count, which keeps counting past the maxRetainedErrs retention
// cap) in one atomic cut, so a failure is reported by exactly one Drain
// call — a later Drain never re-reports errors a prior Drain already
// returned, and failures recorded after the cut wait for the next
// Drain.
func (s *Scheduler) Drain() error {
	s.pendWait()
	errs, n := s.takeAsyncErrs()
	if n == 0 {
		return nil
	}
	return fmt.Errorf("shard: %d async request(s) failed, first: %w", n, errs[0])
}

// takeAsyncErrs atomically consumes the retained failure log.
func (s *Scheduler) takeAsyncErrs() ([]error, int) {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	errs, n := s.asyncErrs, s.errCount
	s.asyncErrs, s.errCount = nil, 0
	return errs, n
}

const maxRetainedErrs = 16

func (s *Scheduler) recordAsyncErr(what string, err error) {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	s.errCount++
	if len(s.asyncErrs) < maxRetainedErrs {
		s.asyncErrs = append(s.asyncErrs, fmt.Errorf("%s: %w", what, err))
	}
}

// dispatch validates, reserves (for inserts), routes, and enqueues one
// request. finish runs exactly once with the request's final outcome —
// on a worker goroutine, so it must not block on scheduler operations.
func (s *Scheduler) dispatch(r jobs.Request, finish func(metrics.Cost, error)) error {
	return s.dispatchTimed(r, 0, finish)
}

// dispatchTimed is dispatch with an absolute monotonicNS deadline (0 =
// none) carried into the task so both the ring park and the worker's
// pre-execution check can honor it.
func (s *Scheduler) dispatchTimed(r jobs.Request, deadline int64, finish func(metrics.Cost, error)) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if s.isClosed() {
		// Fail fast with the sentinel so every post-Close request — sync
		// or async, insert or delete, known name or not — reports
		// ErrClosed instead of whatever routing would conclude first.
		// (Closing between this check and the enqueue is still safe: the
		// send itself re-checks under the lock.)
		return ErrClosed
	}
	if s.log != nil {
		finish = s.durableFinish(r, finish)
	}
	switch r.Kind {
	case jobs.Insert:
		return s.dispatchInsert(r, deadline, finish)
	case jobs.Delete:
		return s.dispatchDelete(r, deadline, finish)
	default:
		return fmt.Errorf("shard: unknown request kind %d", r.Kind)
	}
}

// durableFinish interposes the WAL between a request's execution and
// its acknowledgement: once the worker settles the outcome, the record
// is handed to the group-commit flusher and the original finish runs
// only after the group is written — so a caller that sees its ack can
// always recover the request. The request is logged whatever its
// outcome: a failed insert can still mutate inner state (trim recovery
// rebuilds), and replaying the failure reproduces that state exactly.
// Requests rejected before reaching a worker (validation, duplicate or
// unknown name at routing) never execute, mutate nothing, and are not
// logged — dispatch returns before the wrapper is involved.
//
// Log order vs execution order: a record is enqueued on the worker
// goroutine that settled its request, after the routing-table commit,
// so two requests on the SAME shard always log in execution order.
// Requests for the same name on DIFFERENT shards (a delete on the
// job's overflow shard racing a re-insert on its primary) could log
// out of execution order — but only if the caller issues same-name
// requests concurrently, which the front-end's request contract
// already forbids (see Submit): issue the re-insert after the delete's
// ack and the delete's record is durable first, because acks happen
// after the append.
func (s *Scheduler) durableFinish(r jobs.Request, finish func(metrics.Cost, error)) func(metrics.Cost, error) {
	return func(c metrics.Cost, err error) {
		if errors.Is(err, ErrDeadlineExceeded) {
			// The request expired before reaching the inner scheduler:
			// it mutated nothing, so logging it would create a phantom
			// mutation on replay (recovery has no deadlines and would
			// apply it). Ack without an append, like every other
			// rejected-before-execution request.
			finish(c, err)
			return
		}
		s.log.Enqueue(wal.RequestRecord(r), func(werr error) {
			if werr != nil && err == nil {
				// The request is applied but not durable: surface the
				// broken promise instead of acking cleanly.
				err = fmt.Errorf("shard: request applied but WAL append failed: %w", werr)
			}
			finish(c, err)
		})
	}
}

func (s *Scheduler) dispatchInsert(r jobs.Request, deadline int64, finish func(metrics.Cost, error)) error {
	primary := s.policy.Route(r.Name, len(s.workers))
	s.mu.Lock()
	id := s.names.Intern(r.Name)
	if _, dup := s.routeOf(id); dup {
		s.mu.Unlock()
		return duplicateErr(r.Name)
	}
	s.setRoute(id, reservedShard)
	s.inflight[primary]++
	s.mu.Unlock()

	err := s.send(primary, task{req: r, deadline: deadline, retryable: len(s.workers) > 1, finish: func(c metrics.Cost, err error) {
		if err != nil && errors.Is(err, sched.ErrInfeasible) && len(s.workers) > 1 {
			// Primary shard is locally overallocated: overflow to the
			// least-loaded shard. The hop runs on a fresh goroutine so
			// shard workers never block sending to each other.
			if fb := s.leastLoaded(primary); fb != primary {
				s.mu.Lock()
				s.inflight[primary]--
				s.inflight[fb]++
				s.mu.Unlock()
				go s.overflow(r, id, fb, deadline, finish)
				return
			}
		}
		s.commitInsert(id, primary, err)
		finish(c, err)
	}})
	if err != nil {
		s.unreserve(id, primary)
		return err
	}
	return nil
}

// overflow retries a rejected insert on shard fb. id is the insert's
// reserved routing entry, owned by this in-flight request. The hop
// keeps the original request's deadline: the clock covers the whole
// request, not each attempt.
func (s *Scheduler) overflow(r jobs.Request, id ident.ID, fb int, deadline int64, finish func(metrics.Cost, error)) {
	err := s.send(fb, task{req: r, overflow: true, deadline: deadline, finish: func(c metrics.Cost, err error) {
		s.commitInsert(id, fb, err)
		finish(c, err)
	}})
	if err != nil {
		s.unreserve(id, fb)
		finish(metrics.Cost{}, err)
	}
}

// commitInsert settles an in-flight insert reservation on shard
// shardIdx: into the routing table on success, dropped on failure.
func (s *Scheduler) commitInsert(id ident.ID, shardIdx int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight[shardIdx]--
	if err != nil {
		s.dropRoute(id)
		return
	}
	s.setRoute(id, shardIdx)
	s.loads[shardIdx]++
	s.active++
}

// duplicateErr is the duplicate-insert rejection shared by the
// per-request and batch routing passes.
func duplicateErr(name string) error {
	return fmt.Errorf("%w: %q", sched.ErrDuplicateJob, name)
}

func (s *Scheduler) unreserve(id ident.ID, shardIdx int) {
	s.mu.Lock()
	s.inflight[shardIdx]--
	s.dropRoute(id)
	s.mu.Unlock()
}

// resolveDeleteShard looks up the shard holding name, waiting out an
// in-flight resize migration of the job.
func (s *Scheduler) resolveDeleteShard(name string) (int, error) {
	for waited := time.Duration(0); ; waited += migrateSettleStep {
		s.mu.RLock()
		_, idx, ok := s.trackedID(name)
		s.mu.RUnlock()
		switch {
		case !ok || idx == reservedShard:
			return 0, fmt.Errorf("%w: %q", sched.ErrUnknownJob, name)
		case idx >= 0:
			return idx, nil
		case waited >= migrateSettleMax:
			return 0, fmt.Errorf("shard: delete of %q timed out waiting for its resize migration", name)
		}
		time.Sleep(migrateSettleStep)
	}
}

func (s *Scheduler) dispatchDelete(r jobs.Request, deadline int64, finish func(metrics.Cost, error)) error {
	idx, err := s.resolveDeleteShard(r.Name)
	if err != nil {
		return err
	}
	return s.sendDelete(idx, r, deadline, finish, 2)
}

// sendDelete enqueues a delete on shard idx. If the shard no longer
// holds the job because a resize migrated it away between routing and
// execution, the delete chases the job to its new shard (bounded hops).
func (s *Scheduler) sendDelete(idx int, r jobs.Request, deadline int64, finish func(metrics.Cost, error), hops int) error {
	return s.send(idx, task{req: r, deadline: deadline, finish: func(c metrics.Cost, err error) {
		if err == nil {
			s.mu.Lock()
			// Re-resolve the name before dropping: if the job was shed
			// and re-inserted while this delete sat in the queue, the
			// captured ID may have been recycled to another name, and
			// dropping it blindly would corrupt that entry. The name's
			// CURRENT entry on this shard is the one the inner delete
			// just removed.
			if curID, v, ok := s.trackedID(r.Name); ok && v == idx && s.dropRoute(curID) {
				s.loads[idx]--
				s.active--
			}
			s.mu.Unlock()
			finish(c, nil)
			return
		}
		if errors.Is(err, sched.ErrUnknownJob) && hops > 0 {
			// The job may be mid-migration: re-resolve off the worker
			// goroutine and chase it.
			go func() {
				cur, rerr := s.resolveDeleteShard(r.Name)
				if rerr != nil || cur == idx {
					finish(c, err)
					return
				}
				if serr := s.sendDelete(cur, r, deadline, finish, hops-1); serr != nil {
					finish(c, serr)
				}
			}()
			return
		}
		finish(c, err)
	}})
}

// leastLoaded returns the shard with the fewest jobs per machine —
// counting both committed jobs and in-flight insert reservations, so a
// burst of concurrent overflows spreads out instead of stampeding onto
// one fallback — excluding shard `not` (ties to the lowest index).
func (s *Scheduler) leastLoaded(not int) int {
	order := s.loadOrder(not)
	if len(order) == 0 {
		return not
	}
	return order[0]
}

// loadOrder returns every shard except `exclude`, sorted by ascending
// (committed + in-flight) jobs per machine, ties to the lowest index.
func (s *Scheduler) loadOrder(exclude int) []int {
	mach := make([]int, len(s.workers))
	for i, w := range s.workers {
		mach[i] = int(w.machines.Load())
	}

	s.mu.RLock()
	load := make([]float64, len(s.workers))
	for i := range s.workers {
		load[i] = float64(s.loads[i]+s.inflight[i]) / float64(mach[i])
	}
	s.mu.RUnlock()

	out := make([]int, 0, len(s.workers)-1)
	for i := range s.workers {
		if i != exclude {
			out = append(out, i)
		}
	}
	// Insertion sort: shard counts are small.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && load[out[k]] < load[out[k-1]]; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// each runs fn on every shard worker goroutine and waits for all of
// them; fn must not call back into the Scheduler's request paths. Even
// when a send fails (scheduler closed mid-call), each waits for the
// control tasks already queued — workers drain their buffers before
// exiting — so fn never runs after each returns.
func (s *Scheduler) each(fn func(shardIdx int, inner sched.Scheduler, st *metrics.ShardCost)) error {
	var wg sync.WaitGroup
	var firstErr error
	for i := range s.workers {
		i := i
		wg.Add(1)
		err := s.send(i, task{ctrlDone: &wg, ctrl: func(inner sched.Scheduler, st *metrics.ShardCost) {
			fn(i, inner, st)
		}})
		if err != nil {
			wg.Done()
			firstErr = err
			break
		}
	}
	wg.Wait()
	return firstErr
}

// ctrlOn runs fn on shard i's worker goroutine and waits for it.
func (s *Scheduler) ctrlOn(i int, fn func(inner sched.Scheduler, st *metrics.ShardCost)) error {
	var wg sync.WaitGroup
	wg.Add(1)
	if err := s.send(i, task{ctrlDone: &wg, ctrl: fn}); err != nil {
		wg.Done()
		return err
	}
	wg.Wait()
	return nil
}

// Snapshot is a consistent view of the scheduler's schedule: the active
// jobs, their placements (machine indices in the global range), and the
// machine pool size, all captured in ONE control pass. Each shard
// contributes its jobs and its placements at the same instant, so a job
// present in Jobs always has its placement in Assignment and vice versa
// — unlike calling Jobs() and Assignment() back to back, which lets
// concurrent requests slip between the two passes.
//
// Consistency caveat: the cut is per-shard-atomic, not global — shards
// are sampled at slightly different times, so two requests racing the
// snapshot on different shards may land on either side of it. That
// cannot produce a job/placement mismatch (a job lives on exactly one
// shard), but ordering across shards is not preserved. Snapshots also
// serialize against pool resizes, so the machine ranges are stable
// within one snapshot.
type Snapshot struct {
	Jobs       []jobs.Job
	Assignment jobs.Assignment
	Machines   int
	// ShardMachines is each shard's machine count, in shard order (the
	// machine-range partition a checkpoint must preserve).
	ShardMachines []int
}

// Snapshot captures jobs + assignment + pool size in one control pass.
func (s *Scheduler) Snapshot() Snapshot {
	s.rangeMu.RLock()
	defer s.rangeMu.RUnlock()
	type part struct {
		js  []jobs.Job
		asn jobs.Assignment
	}
	parts := make([]part, len(s.workers))
	_ = s.each(func(i int, inner sched.Scheduler, _ *metrics.ShardCost) {
		parts[i] = part{js: inner.Jobs(), asn: inner.Assignment()}
	})
	snap := Snapshot{
		Machines:      s.machinesLocked(),
		Assignment:    make(jobs.Assignment),
		ShardMachines: make([]int, len(s.workers)),
	}
	for i, p := range parts {
		base := s.workers[i].base
		snap.ShardMachines[i] = int(s.workers[i].machines.Load())
		snap.Jobs = append(snap.Jobs, p.js...)
		for name, pl := range p.asn { //reallocvet:orderinsensitive (merge into the snapshot map; job names are unique across shards)
			snap.Assignment[name] = jobs.Placement{Machine: base + pl.Machine, Slot: pl.Slot}
		}
	}
	return snap
}

// Assignment returns a snapshot of the global schedule, with per-shard
// machine indices remapped into the global machine range. Prefer
// Snapshot when the job set must be consistent with the assignment.
func (s *Scheduler) Assignment() jobs.Assignment {
	return s.Snapshot().Assignment
}

// Jobs returns a snapshot of the active job set. Prefer Snapshot when
// the job set must be consistent with the assignment.
func (s *Scheduler) Jobs() []jobs.Job {
	return s.Snapshot().Jobs
}

// Report returns the shard-aware cost report: per-shard totals of
// requests, failures, overflow hops, batches, resizes, costs, and the
// admission-latency histogram (enqueue to served, per request).
func (s *Scheduler) Report() metrics.ShardReport {
	rep := metrics.ShardReport{Shards: make([]metrics.ShardCost, len(s.workers))}
	_ = s.each(func(i int, inner sched.Scheduler, st *metrics.ShardCost) {
		snap := *st
		snap.Active = inner.Active()
		snap.Latency = s.workers[i].lat.Snapshot()
		rep.Shards[i] = snap
	})
	s.mu.RLock()
	rep.Resizes = append([]metrics.ResizeCost(nil), s.resizes...)
	s.mu.RUnlock()
	return rep
}

// Resize grows or shrinks the total machine pool to `machines`,
// re-partitioning it near-evenly across the shards (remainder on the
// earliest shards, like New). Growing shards never moves a job;
// shrinking shards re-places only the jobs of the drained machines.
// Grows apply before shrinks so evicted jobs can land on the freshly
// grown shards. The aggregate resize cost is returned; per-shard
// entries land in the report's resize history.
func (s *Scheduler) Resize(machines int) (metrics.ResizeCost, error) {
	total := metrics.ResizeCost{Shard: -1}
	if machines < len(s.workers) {
		return total, fmt.Errorf("shard: cannot resize %d shards to %d machines (every shard needs one)",
			len(s.workers), machines)
	}
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()

	s.rangeMu.RLock()
	deltas := make([]int, len(s.workers))
	for i, w := range s.workers {
		m := machines / len(s.workers)
		if i < machines%len(s.workers) {
			m++
		}
		deltas[i] = m - int(w.machines.Load())
	}
	s.rangeMu.RUnlock()

	// WRITE-AHEAD: the record is durable before any shard changes size.
	// Requests that are admitted thanks to the new capacity ack (and
	// log) only after they execute, i.e. after this append, so a
	// recovered log always replays the resize before them. (The reverse
	// order would let an acked insert replay against the old pool and
	// vanish.) If the record cannot be made durable the resize does not
	// run at all.
	if err := s.logResize(wal.ResizeRecord(-1, 0, machines)); err != nil {
		return total, err
	}
	var firstErr error
	for _, shrink := range []bool{false, true} {
		for i, d := range deltas {
			if d == 0 || (d < 0) != shrink {
				continue
			}
			rc, err := s.resizeShardLocked(i, d)
			total.Add(rc)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return total, firstErr
}

// logResize appends a resize record write-ahead and waits for its group
// commit (a no-op without an attached WAL). Requires resizeMu held, so
// the log order of resize records matches their execution order.
func (s *Scheduler) logResize(rec wal.Record) error {
	if s.log == nil {
		return nil
	}
	if err := s.log.Append(rec); err != nil {
		return fmt.Errorf("shard: resize not applied, WAL append failed: %w", err)
	}
	return nil
}

// ResizeShard grows (delta > 0) or shrinks (delta < 0) shard i's
// machine range by delta machines. Growing never moves a job. Shrinking
// drains the shard's last machines: their jobs are re-placed inside the
// shard where possible, and the remainder is evicted and re-inserted on
// the least-loaded other shards (one migration per moved job). The
// returned ResizeCost records the migration bill; it is also appended
// to the report's resize history.
func (s *Scheduler) ResizeShard(i, delta int) (metrics.ResizeCost, error) {
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	// Write-ahead, like Resize: durable before any machine moves.
	if err := s.logResize(wal.ResizeRecord(i, delta, 0)); err != nil {
		return metrics.ResizeCost{Shard: i, Delta: delta}, err
	}
	return s.resizeShardLocked(i, delta)
}

func (s *Scheduler) resizeShardLocked(i, delta int) (metrics.ResizeCost, error) {
	rc := metrics.ResizeCost{Shard: i, Delta: delta}
	if i < 0 || i >= len(s.workers) {
		return rc, fmt.Errorf("shard: resize of shard %d of %d", i, len(s.workers))
	}
	if delta == 0 {
		return rc, nil
	}
	cur := int(s.workers[i].machines.Load())
	if cur+delta < 1 {
		return rc, fmt.Errorf("shard: resize leaves shard %d with %d machines", i, cur+delta)
	}

	if delta > 0 {
		err := s.resizeInner(i, delta, func(el sched.Elastic, st *metrics.ShardCost) error {
			if err := el.AddMachines(delta); err != nil {
				return err
			}
			st.Machines += delta
			return nil
		})
		if err != nil {
			return rc, err
		}
		s.recordResize(rc)
		return rc, nil
	}

	// Shrink: drain on the worker, then re-home the evictions.
	drop := -delta
	var evicted []jobs.Job
	err := s.resizeInner(i, delta, func(el sched.Elastic, st *metrics.ShardCost) error {
		cost, ev, rerr := el.RemoveMachines(drop)
		if rerr != nil {
			return rerr
		}
		st.Machines -= drop
		st.Cost.Add(cost)
		st.ResizeEvicted += len(ev)
		rc.Cost.Add(cost)
		evicted = ev
		// Mark the evictions as migrating before the worker serves
		// anything else, so deletes queued behind this control task
		// chase the jobs instead of failing.
		s.mu.Lock()
		for _, j := range ev {
			if id, _, ok := s.trackedID(j.Name); ok {
				s.setRoute(id, migratingShard)
			}
		}
		s.loads[i] -= len(ev)
		s.active -= len(ev)
		s.mu.Unlock()
		return nil
	})
	if err != nil {
		return rc, err
	}

	rc.Evicted = len(evicted)
	var dropped []string
	for _, j := range evicted {
		c, err := s.placeEvicted(j, i)
		if err != nil {
			rc.Dropped++
			dropped = append(dropped, j.Name)
			continue
		}
		rc.Reinserted++
		rc.Cost.Add(c)
		rc.Cost.Migrations++ // the job crossed shards
	}
	s.recordResize(rc)
	if rc.Dropped > 0 {
		// The scheduler no longer holds these jobs; name them so the
		// caller can re-create them (or scale back up first). On
		// γ-underallocated workloads this cannot happen — the evicted
		// jobs always fit the remaining pool.
		return rc, fmt.Errorf("shard: shrink of shard %d dropped %d job(s) no shard could absorb: %v",
			i, rc.Dropped, dropped)
	}
	return rc, nil
}

// placeEvicted synchronously re-inserts a resize-evicted job on another
// shard, least-loaded first, with the evicting shard itself as the last
// resort. On total failure the job leaves the routing table and the
// caller reports it dropped by name.
func (s *Scheduler) placeEvicted(j jobs.Job, evictor int) (metrics.Cost, error) {
	r := jobs.Request{Kind: jobs.Insert, Name: j.Name, Window: j.Window}
	lastErr := fmt.Errorf("%w: no fallback shard", sched.ErrInfeasible)
	for _, fb := range append(s.loadOrder(evictor), evictor) {
		s.mu.Lock()
		s.inflight[fb]++
		s.mu.Unlock()
		c, err := s.applyOn(fb, r)
		if err == nil {
			s.mu.Lock()
			s.inflight[fb]--
			if id, _, ok := s.trackedID(j.Name); ok {
				s.setRoute(id, fb)
				s.loads[fb]++
				s.active++
			}
			s.mu.Unlock()
			return c, nil
		}
		s.mu.Lock()
		s.inflight[fb]--
		s.mu.Unlock()
		lastErr = err
		if !errors.Is(err, sched.ErrInfeasible) {
			break // closed or structural failure: stop probing
		}
	}
	s.mu.Lock()
	if id, _, ok := s.trackedID(j.Name); ok {
		s.dropRoute(id)
	}
	s.mu.Unlock()
	return metrics.Cost{}, lastErr
}

// applyOn serves one request synchronously on a specific shard,
// bypassing routing (resize re-placements only).
func (s *Scheduler) applyOn(i int, r jobs.Request) (metrics.Cost, error) {
	ch := respPool.Get().(chan response)
	err := s.send(i, task{req: r, resizeMove: true, finish: func(c metrics.Cost, err error) {
		ch <- response{c, err}
	}})
	if err != nil {
		respPool.Put(ch)
		return metrics.Cost{}, err
	}
	resp := <-ch
	respPool.Put(ch)
	return resp.cost, resp.err
}

// resizeInner runs the elastic operation on shard i's worker and, on
// success, applies the machine-count delta to the shard and shifts the
// bases of the shards after it, keeping the global range contiguous.
//
// Both steps happen under the rangeMu write lock: snapshots and load
// estimates (readers of base/machines) are locked out from the moment
// the inner pool changes until the global numbering is consistent
// again. Otherwise a freshly grown shard could place jobs on machines
// whose global indices still overlap the next shard's range in a
// concurrent snapshot.
//
// Global machine indices are a dense *view* over the per-shard pools:
// renumbering does not move any job between physical machines, it only
// relabels where later shards' machines appear in snapshots.
func (s *Scheduler) resizeInner(i, delta int, op func(el sched.Elastic, st *metrics.ShardCost) error) error {
	s.rangeMu.Lock()
	defer s.rangeMu.Unlock()
	var ctrlErr error
	err := s.ctrlOn(i, func(inner sched.Scheduler, st *metrics.ShardCost) {
		el, ok := inner.(sched.Elastic)
		if !ok {
			ctrlErr = fmt.Errorf("%w (shard %d: %T)", ErrNotElastic, i, inner)
			return
		}
		ctrlErr = op(el, st)
	})
	if err == nil {
		err = ctrlErr
	}
	if err != nil {
		return err
	}
	s.workers[i].machines.Add(int64(delta))
	for k := i + 1; k < len(s.workers); k++ {
		s.workers[k].base += delta
	}
	return nil
}

func (s *Scheduler) recordResize(rc metrics.ResizeCost) {
	s.mu.Lock()
	s.resizes = append(s.resizes, rc)
	s.mu.Unlock()
}

// ResizeReq is an asynchronous pool-resize request for SubmitResize.
type ResizeReq struct {
	// Shard is the shard to resize, or -1 to re-partition the whole
	// pool to Machines.
	Shard int
	// Delta is the machine-count change for Shard >= 0.
	Delta int
	// Machines is the new pool total for Shard == -1.
	Machines int
}

// SubmitResize enqueues a resize and returns immediately; Drain waits
// for it like any Submit, and failures surface in Drain's summary.
func (s *Scheduler) SubmitResize(r ResizeReq) error {
	if s.isClosed() {
		return ErrClosed
	}
	s.pendAdd()
	go func() {
		defer s.pendDone()
		var err error
		if r.Shard < 0 {
			_, err = s.Resize(r.Machines)
		} else {
			_, err = s.ResizeShard(r.Shard, r.Delta)
		}
		if err != nil {
			s.recordAsyncErr(fmt.Sprintf("resize %+v", r), err)
		}
	}()
	return nil
}

// SelfCheck validates every shard's internal invariants plus the
// front-end's routing table. Implements sched.Scheduler.
func (s *Scheduler) SelfCheck() error {
	errs := make([]error, len(s.workers))
	routed := make([]map[string]bool, len(s.workers))
	if err := s.each(func(i int, inner sched.Scheduler, _ *metrics.ShardCost) {
		if err := inner.SelfCheck(); err != nil {
			errs[i] = fmt.Errorf("shard %d: %w", i, err)
			return
		}
		names := make(map[string]bool)
		for _, j := range inner.Jobs() {
			names[j.Name] = true
		}
		routed[i] = names
	}); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	committed := 0
	perShard := make([]int, len(s.workers))
	var fail error
	s.names.Range(func(id ident.ID, name string) bool {
		idx, ok := s.routeOf(id)
		if !ok {
			fail = fmt.Errorf("shard: name %q interned without a routing entry", name)
			return false
		}
		if idx < 0 {
			return true // reserved or migrating: settled by in-flight work
		}
		committed++
		perShard[idx]++
		if !routed[idx][name] {
			fail = fmt.Errorf("shard: job %q routed to shard %d but not present there", name, idx)
			return false
		}
		return true
	})
	if fail != nil {
		return fail
	}
	total := 0
	for _, names := range routed {
		total += len(names)
	}
	if total != committed {
		return fmt.Errorf("shard: %d jobs on shards, %d committed in routing table", total, committed)
	}
	if committed != s.active {
		return fmt.Errorf("shard: active count %d, routing table holds %d", s.active, committed)
	}
	for i, n := range perShard {
		if s.loads[i] != n {
			return fmt.Errorf("shard: shard %d load counter %d, routing table holds %d", i, s.loads[i], n)
		}
	}
	return nil
}

// AttachWAL binds a write-ahead log to the scheduler so every later
// admission appends before acking (see Config.WAL, which is the same
// wiring at construction time). It exists for the recovery path: the
// replay of a recovered log must run with logging off — replaying a
// record must not re-append it — and the log is attached once the tail
// is applied. Attach before the scheduler is shared with other
// goroutines; ownership of the log transfers (Close closes it).
func (s *Scheduler) AttachWAL(l *wal.Log) {
	s.log = l
}

// Checkpoint atomically captures a point-in-time image of the scheduler
// (jobs, placements, machine-range partition) and installs it as the
// WAL directory's checkpoint, bounding recovery to "restore the image,
// replay the tail". The sequence is rotate-then-snapshot: the log first
// rotates to a fresh segment, then the snapshot is taken, so the image
// covers every record of the pruned segments. Requests racing the
// snapshot may land in both the image and the new segment; recovery
// replay tolerates the resulting duplicate-insert/unknown-delete
// rejections, which is why the overlap is harmless. Checkpoint
// serializes against resizes (a half-resized partition never reaches a
// checkpoint) and requires an attached WAL.
func (s *Scheduler) Checkpoint() error {
	if s.log == nil {
		return errors.New("shard: Checkpoint requires a WAL (realloc.WithWAL)")
	}
	if s.isClosed() {
		return ErrClosed
	}
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	seg, err := s.log.Rotate()
	if err != nil {
		return fmt.Errorf("shard: checkpoint rotation: %w", err)
	}
	snap := s.Snapshot()
	if err := s.log.WriteCheckpoint(wal.Checkpoint{
		StartSeg:      seg,
		ShardMachines: snap.ShardMachines,
		Jobs:          snap.Jobs,
		Assignment:    snap.Assignment,
	}); err != nil {
		return fmt.Errorf("shard: checkpoint write: %w", err)
	}
	return nil
}

// Close drains outstanding asynchronous requests, stops every shard
// worker, closes the attached WAL (if any), and releases the request
// channels. Requests after Close fail with ErrClosed. Close is
// idempotent.
func (s *Scheduler) Close() {
	s.pendWait()
	s.sendMu.Lock()
	if s.closed.Load() {
		s.sendMu.Unlock()
		return
	}
	s.closed.Store(true)
	for _, w := range s.workers {
		w.ring.close()
	}
	s.sendMu.Unlock()
	for _, w := range s.workers {
		<-w.done
	}
	if s.log != nil {
		// Workers are drained: every record they enqueued is in the
		// flusher's queue, and closing the log flushes it.
		_ = s.log.Close()
	}
}
