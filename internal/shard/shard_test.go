package shard

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/alignsched"
	"repro/internal/core"
	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/multi"
	"repro/internal/sched"
	"repro/internal/trim"
)

// stackFactory builds the same Theorem 1 stack realloc.New composes,
// sized to one shard's machine share.
func stackFactory(machines int) sched.Scheduler {
	single := func() sched.Scheduler {
		return trim.New(8, func() sched.Scheduler { return core.New() })
	}
	var s sched.Scheduler
	if machines == 1 {
		s = single()
	} else {
		s = multi.New(machines, multi.Factory(single))
	}
	return alignsched.New(s)
}

func newTestSharded(t *testing.T, shards, machines int) *Scheduler {
	t.Helper()
	s := New(Config{Shards: shards, Machines: machines, Factory: stackFactory})
	t.Cleanup(s.Close)
	return s
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	const shards = 8
	r := NewRing(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < 4000; i++ {
		name := fmt.Sprintf("job-%05d", i)
		a := r.Route(name, shards)
		if b := r.Route(name, shards); a != b {
			t.Fatalf("ring not deterministic: %q -> %d then %d", name, a, b)
		}
		counts[a]++
	}
	// Sequential names are the adversarial case for weak hashes: without
	// an avalanche finalizer they clump onto a few arcs of the ring.
	for i, c := range counts {
		if c < 4000/shards/4 {
			t.Errorf("shard %d received %d of 4000 jobs — want at least a quarter of the fair share", i, c)
		}
		if c > 4000/2 {
			t.Errorf("shard %d received %d of 4000 jobs — pathological skew", i, c)
		}
	}
}

func TestRingConsistency(t *testing.T) {
	// Growing the ring by one shard should remap well under half of the
	// population (hash-mod would remap ~80%).
	r4, r5 := NewRing(4, 0), NewRing(5, 0)
	moved := 0
	const n = 4000
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("job-%05d", i)
		if r4.Route(name, 4) != r5.Route(name, 5) {
			moved++
		}
	}
	if moved > n/2 {
		t.Errorf("4->5 shards remapped %d/%d jobs; want < half", moved, n)
	}
	if moved == 0 {
		t.Error("4->5 shards remapped nothing — ring is not routing by hash")
	}
}

func TestHashModRoutes(t *testing.T) {
	p := HashMod()
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		idx := p.Route(fmt.Sprintf("j%d", i), 4)
		if idx < 0 || idx >= 4 {
			t.Fatalf("HashMod routed to %d, want [0,4)", idx)
		}
		seen[idx] = true
	}
	if len(seen) != 4 {
		t.Errorf("HashMod hit %d of 4 shards over 200 names", len(seen))
	}
}

func TestApplyInsertDelete(t *testing.T) {
	s := newTestSharded(t, 4, 8)
	if got := s.Machines(); got != 8 {
		t.Fatalf("Machines() = %d, want 8", got)
	}
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("job-%03d", i)
		c, err := s.Insert(jobs.Job{Name: name, Window: jobs.Window{Start: 0, End: 256}})
		if err != nil {
			t.Fatalf("insert %s: %v", name, err)
		}
		if c.Reallocations < 1 {
			t.Errorf("insert %s cost %+v, want >= 1 reallocation", name, c)
		}
	}
	if got := s.Active(); got != 40 {
		t.Fatalf("Active() = %d, want 40", got)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck: %v", err)
	}
	if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), s.Machines()); err != nil {
		t.Fatalf("VerifySchedule: %v", err)
	}
	// Machine indices must land in the global range.
	for name, p := range s.Assignment() {
		if p.Machine < 0 || p.Machine >= s.Machines() {
			t.Fatalf("job %q on machine %d, want [0,%d)", name, p.Machine, s.Machines())
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := s.Delete(fmt.Sprintf("job-%03d", i)); err != nil {
			t.Fatalf("delete job-%03d: %v", i, err)
		}
	}
	if got := s.Active(); got != 0 {
		t.Fatalf("Active() after deletes = %d, want 0", got)
	}
}

func TestDuplicateAndUnknown(t *testing.T) {
	s := newTestSharded(t, 2, 2)
	j := jobs.Job{Name: "dup", Window: jobs.Window{Start: 0, End: 64}}
	if _, err := s.Insert(j); err != nil {
		t.Fatalf("first insert: %v", err)
	}
	if _, err := s.Insert(j); !errors.Is(err, sched.ErrDuplicateJob) {
		t.Errorf("second insert err = %v, want ErrDuplicateJob", err)
	}
	if _, err := s.Delete("ghost"); !errors.Is(err, sched.ErrUnknownJob) {
		t.Errorf("delete ghost err = %v, want ErrUnknownJob", err)
	}
	// The failed duplicate must not corrupt the routing table.
	if _, err := s.Delete("dup"); err != nil {
		t.Errorf("delete dup after duplicate attempt: %v", err)
	}
}

func TestSubmitDrain(t *testing.T) {
	s := newTestSharded(t, 4, 4)
	for i := 0; i < 100; i++ {
		if err := s.Submit(jobs.InsertReq(fmt.Sprintf("async-%03d", i), 0, 1024)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := s.Active(); got != 100 {
		t.Fatalf("Active() = %d, want 100", got)
	}
	rep := s.Report()
	if tot := rep.Total(); tot.Requests != 100 || tot.Failures != 0 {
		t.Errorf("report total = %+v, want 100 requests, 0 failures", tot)
	}
	// An async failure must surface in Drain, then reset.
	if err := s.Submit(jobs.InsertReq("async-000", 0, 1024)); err == nil {
		// Duplicate detection is synchronous at dispatch; either path
		// (sync error or drained error) is acceptable, but one must fire.
		if err := s.Drain(); err == nil {
			t.Error("duplicate async insert surfaced no error")
		}
	}
	if err := s.Drain(); err != nil {
		t.Errorf("second drain should be clean, got %v", err)
	}
}

// rejecting wraps a scheduler and refuses every insert, simulating a
// shard whose machine range is locally overallocated.
type rejecting struct{ sched.Scheduler }

func (r rejecting) Insert(jobs.Job) (metrics.Cost, error) {
	return metrics.Cost{}, sched.ErrInfeasible
}

func TestOverflowFallback(t *testing.T) {
	built := 0
	factory := func(machines int) sched.Scheduler {
		built++
		inner := stackFactory(machines)
		if built == 1 {
			return rejecting{inner}
		}
		return inner
	}
	// Route everything to the rejecting shard 0; inserts must overflow
	// to the other shard and deletes must find them there.
	s := New(Config{
		Shards: 2, Machines: 2, Factory: factory,
		Policy: PolicyFunc(func(string, int) int { return 0 }),
	})
	defer s.Close()
	for i := 0; i < 10; i++ {
		if _, err := s.Insert(jobs.Job{Name: fmt.Sprintf("ovf-%d", i), Window: jobs.Window{Start: 0, End: 128}}); err != nil {
			t.Fatalf("insert ovf-%d: %v", i, err)
		}
	}
	rep := s.Report()
	if rep.Shards[0].Active != 0 {
		t.Errorf("rejecting shard holds %d jobs, want 0", rep.Shards[0].Active)
	}
	// A rejection that a fallback absorbed is rerouted, not a terminal
	// failure; the report must show every insert as served.
	if rep.Shards[0].Rerouted != 10 || rep.Shards[0].Failures != 0 {
		t.Errorf("rejecting shard = %+v, want 10 rerouted, 0 failures", rep.Shards[0])
	}
	if rep.Shards[1].Active != 10 || rep.Shards[1].Overflow != 10 {
		t.Errorf("fallback shard = %+v, want 10 active, 10 overflow", rep.Shards[1])
	}
	if got := rep.Served(); got != 10 {
		t.Errorf("Served() = %d, want 10", got)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Delete(fmt.Sprintf("ovf-%d", i)); err != nil {
			t.Fatalf("delete ovf-%d: %v", i, err)
		}
	}
}

func TestOverflowExhausted(t *testing.T) {
	// Every shard rejects: the insert must fail with ErrInfeasible and
	// leave no residue in the routing table.
	s := New(Config{
		Shards: 2, Machines: 2,
		Factory: func(m int) sched.Scheduler { return rejecting{stackFactory(m)} },
	})
	defer s.Close()
	if _, err := s.Insert(jobs.Job{Name: "doomed", Window: jobs.Window{Start: 0, End: 64}}); !errors.Is(err, sched.ErrInfeasible) {
		t.Fatalf("insert err = %v, want ErrInfeasible", err)
	}
	if got := s.Active(); got != 0 {
		t.Errorf("Active() = %d, want 0", got)
	}
	rep := s.Report()
	if tot := rep.Total(); tot.Failures != 1 || tot.Rerouted != 1 {
		t.Errorf("report total = %+v, want 1 terminal failure and 1 reroute", tot)
	}
	if got := rep.Served(); got != 0 {
		t.Errorf("Served() = %d, want 0", got)
	}
	// The name must be reusable after the failure.
	if _, err := s.Delete("doomed"); !errors.Is(err, sched.ErrUnknownJob) {
		t.Errorf("delete doomed err = %v, want ErrUnknownJob", err)
	}
}

func TestMachinePartition(t *testing.T) {
	// 10 machines over 4 shards: 3,3,2,2 with contiguous bases.
	s := newTestSharded(t, 4, 10)
	rep := s.Report()
	want := []int{3, 3, 2, 2}
	for i, sc := range rep.Shards {
		if sc.Machines != want[i] {
			t.Errorf("shard %d machines = %d, want %d", i, sc.Machines, want[i])
		}
	}
	if got := s.Machines(); got != 10 {
		t.Errorf("Machines() = %d, want 10", got)
	}
}

func TestClose(t *testing.T) {
	s := New(Config{Shards: 2, Machines: 2, Factory: stackFactory})
	if _, err := s.Insert(jobs.Job{Name: "a", Window: jobs.Window{Start: 0, End: 64}}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Insert(jobs.Job{Name: "b", Window: jobs.Window{Start: 0, End: 64}}); !errors.Is(err, ErrClosed) {
		t.Errorf("insert after close err = %v, want ErrClosed", err)
	}
	if err := s.Submit(jobs.DeleteReq("a")); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close err = %v, want ErrClosed", err)
	}
}

func TestShardReportString(t *testing.T) {
	s := newTestSharded(t, 2, 2)
	if _, err := s.Insert(jobs.Job{Name: "x", Window: jobs.Window{Start: 0, End: 64}}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	rep := s.Report()
	if rep.Imbalance() <= 0 {
		t.Errorf("Imbalance() = %v, want > 0 after a request", rep.Imbalance())
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}
