package shard

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/workload"
)

// TestConcurrentStress hammers one sharded scheduler from many
// goroutines — mixing the synchronous Apply path with the asynchronous
// Submit path — and cross-checks the final assignment against the
// external feasibility verifier. Run with -race (CI does).
func TestConcurrentStress(t *testing.T) {
	const (
		goroutines = 12
		machines   = 8
		shards     = 4
	)
	steps := 6000
	if testing.Short() {
		steps = 1500
	}
	g, err := workload.NewGenerator(workload.Config{
		Seed: 42, Machines: machines, Gamma: 8, Horizon: 1 << 14, Steps: steps,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := g.Sequence()

	s := New(Config{Shards: shards, Machines: machines, Factory: stackFactory})
	defer s.Close()

	// Partition the sequence by job name so each goroutine replays its
	// jobs' inserts and deletes in order; across goroutines requests
	// are unsynchronized and hit the shards concurrently.
	lanes := make([][]jobs.Request, goroutines)
	for _, r := range reqs {
		lane := int(hash64(r.Name) % uint64(goroutines))
		lanes[lane] = append(lanes[lane], r)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for lane, rs := range lanes {
		wg.Add(1)
		go func(lane int, rs []jobs.Request) {
			defer wg.Done()
			// Names whose insert failed (shard-locally infeasible even
			// after overflow) or was dropped with it; their deletes
			// must be skipped.
			failed := make(map[string]bool)
			for i, r := range rs {
				if r.Kind == jobs.Delete && failed[r.Name] {
					continue
				}
				// Inserts always go through the sync path so a later
				// delete of the same name (same lane, by the name
				// partition) finds it settled; deletes alternate
				// between the sync and async paths.
				if r.Kind == jobs.Insert {
					if _, err := s.Apply(r); err != nil {
						failed[r.Name] = true
					}
					continue
				}
				if i%2 == 0 {
					if _, err := s.Apply(r); err != nil {
						errCh <- fmt.Errorf("lane %d: %s: %w", lane, r, err)
						return
					}
				} else if err := s.Submit(r); err != nil {
					errCh <- fmt.Errorf("lane %d: submit %s: %w", lane, r, err)
					return
				}
			}
		}(lane, rs)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if err := s.Drain(); err != nil {
		// Async deletes may race an earlier failed insert; only report
		// drain errors when no insert ever failed.
		t.Logf("drain: %v", err)
	}

	if err := s.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck after stress: %v", err)
	}
	js, asg := s.Jobs(), s.Assignment()
	if len(js) != len(asg) {
		t.Fatalf("%d active jobs but %d placements", len(js), len(asg))
	}
	if err := feasible.VerifySchedule(js, asg, s.Machines()); err != nil {
		t.Fatalf("VerifySchedule after stress: %v", err)
	}
	rep := s.Report()
	tot := rep.Total()
	if tot.Requests == 0 {
		t.Fatal("no requests reached the shards")
	}
	t.Logf("stress report:\n%s", rep)
}

// TestConcurrentSubmitOnly floods the async path from many goroutines
// with disjoint name spaces, then drains and verifies.
func TestConcurrentSubmitOnly(t *testing.T) {
	const goroutines = 8
	per := 300
	if testing.Short() {
		per = 60
	}
	s := New(Config{Shards: 8, Machines: 8, Factory: stackFactory})
	defer s.Close()

	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				name := fmt.Sprintf("g%d-j%04d", gi, i)
				if err := s.Submit(jobs.InsertReq(name, 0, 1<<14)); err != nil {
					t.Errorf("submit %s: %v", name, err)
					return
				}
				if i%3 == 2 {
					// Settle this goroutine's outstanding inserts, then
					// delete one of its own jobs via the sync path.
					if err := s.Drain(); err != nil {
						t.Errorf("drain: %v", err)
						return
					}
					victim := fmt.Sprintf("g%d-j%04d", gi, i-2)
					if _, err := s.Delete(victim); err != nil {
						t.Errorf("delete %s: %v", victim, err)
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	if err := s.Drain(); err != nil {
		t.Fatalf("final drain: %v", err)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck: %v", err)
	}
	if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), s.Machines()); err != nil {
		t.Fatalf("VerifySchedule: %v", err)
	}
	wantActive := goroutines * (per - per/3)
	if got := s.Active(); got != wantActive {
		t.Fatalf("Active() = %d, want %d", got, wantActive)
	}
}
