// Durability tests for the sharded front-end: checkpoint restoration
// and the Checkpoint-vs-traffic race (the "restore-vs-submit" family).
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/wal"
)

// jobSet renders a sorted "name window" list for set comparison.
func jobSet(js []jobs.Job) []string {
	out := make([]string, 0, len(js))
	for _, j := range js {
		out = append(out, fmt.Sprintf("%s %v", j.Name, j.Window))
	}
	sort.Strings(out)
	return out
}

func equalJobSets(t *testing.T, got, want []jobs.Job) {
	t.Helper()
	g, w := jobSet(got), jobSet(want)
	if len(g) != len(w) {
		t.Fatalf("job sets differ: %d vs %d jobs", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("job sets differ at %d: %q vs %q", i, g[i], w[i])
		}
	}
}

// TestRestoreFromCheckpoint: a checkpointed image restores into a
// scheduler with the identical job set, the identical machine-range
// partition, the identical job→shard locality, a feasible schedule,
// and consistent routing bookkeeping.
func TestRestoreFromCheckpoint(t *testing.T) {
	s := newElasticSharded(t, 3, 7) // uneven partition: 3,2,2
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("job-%03d", i)
		if _, err := s.Insert(jobs.Job{Name: name, Window: jobs.Window{Start: 0, End: 4096}}); err != nil {
			t.Fatalf("insert %s: %v", name, err)
		}
	}
	for i := 0; i < 60; i += 3 {
		if _, err := s.Delete(fmt.Sprintf("job-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	ck := &wal.Checkpoint{
		StartSeg:      1,
		ShardMachines: snap.ShardMachines,
		Jobs:          snap.Jobs,
		Assignment:    snap.Assignment,
	}

	r, err := Restore(Config{Factory: elasticStackFactory}, ck)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rsnap := r.Snapshot()
	equalJobSets(t, rsnap.Jobs, snap.Jobs)
	if rsnap.Machines != snap.Machines {
		t.Fatalf("restored %d machines, want %d", rsnap.Machines, snap.Machines)
	}
	if len(rsnap.ShardMachines) != len(snap.ShardMachines) {
		t.Fatalf("restored %d shards, want %d", len(rsnap.ShardMachines), len(snap.ShardMachines))
	}
	for i := range snap.ShardMachines {
		if rsnap.ShardMachines[i] != snap.ShardMachines[i] {
			t.Fatalf("shard %d restored with %d machines, want %d", i, rsnap.ShardMachines[i], snap.ShardMachines[i])
		}
	}
	if err := feasible.VerifySchedule(rsnap.Jobs, rsnap.Assignment, rsnap.Machines); err != nil {
		t.Fatalf("restored schedule infeasible: %v", err)
	}
	if err := r.SelfCheck(); err != nil {
		t.Fatalf("restored self-check: %v", err)
	}
	// Job→shard locality: each job's restored machine lies in the same
	// shard's range as its checkpointed machine.
	shardOf := func(machine int) int {
		si, err := shardOfMachine(snap.ShardMachines, machine)
		if err != nil {
			t.Fatal(err)
		}
		return si
	}
	for name, pl := range snap.Assignment {
		rpl, ok := rsnap.Assignment[name]
		if !ok {
			t.Fatalf("job %q lost by restore", name)
		}
		if shardOf(pl.Machine) != shardOf(rpl.Machine) {
			t.Errorf("job %q moved from shard %d to shard %d across restore",
				name, shardOf(pl.Machine), shardOf(rpl.Machine))
		}
	}
	// The restored scheduler keeps serving.
	if _, err := r.Insert(jobs.Job{Name: "post-restore", Window: jobs.Window{Start: 0, End: 4096}}); err != nil {
		t.Fatalf("post-restore insert: %v", err)
	}
	if _, err := r.Delete("job-001"); err != nil {
		t.Fatalf("post-restore delete: %v", err)
	}
}

// TestRestoreIsDeterministic: two restores of one image are
// assignment-identical.
func TestRestoreIsDeterministic(t *testing.T) {
	s := newElasticSharded(t, 2, 4)
	for i := 0; i < 40; i++ {
		if _, err := s.Insert(jobs.Job{Name: fmt.Sprintf("d%02d", i), Window: jobs.Window{Start: 0, End: 2048}}); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	ck := &wal.Checkpoint{StartSeg: 1, ShardMachines: snap.ShardMachines, Jobs: snap.Jobs, Assignment: snap.Assignment}
	a, err := Restore(Config{Factory: elasticStackFactory}, ck)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Restore(Config{Factory: elasticStackFactory}, ck)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	asnA, asnB := a.Snapshot().Assignment, b.Snapshot().Assignment
	if len(asnA) != len(asnB) {
		t.Fatalf("restores disagree on job count: %d vs %d", len(asnA), len(asnB))
	}
	for name, pa := range asnA {
		if pb, ok := asnB[name]; !ok || pa != pb {
			t.Fatalf("restores disagree on %q: %+v vs %+v", name, pa, asnB[name])
		}
	}
}

// TestRestoreConfigMismatch: a config contradicting the checkpoint's
// partition is an error, not a silent re-partition.
func TestRestoreConfigMismatch(t *testing.T) {
	ck := &wal.Checkpoint{
		StartSeg:      1,
		ShardMachines: []int{2, 2},
		Assignment:    jobs.Assignment{},
	}
	if _, err := Restore(Config{Shards: 3, Factory: elasticStackFactory}, ck); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	if _, err := Restore(Config{Machines: 7, Factory: elasticStackFactory}, ck); err == nil {
		t.Fatal("machine-count mismatch accepted")
	}
	if _, err := Restore(Config{Factory: elasticStackFactory}, nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
}

// TestCheckpointRacesSubmitAndResize is the restore-vs-submit race
// test: Checkpoint() runs repeatedly while Submit, ApplyBatch, and
// SubmitResize traffic is in flight. Every checkpoint written must be a
// consistent point-in-time image — every job placed, every placement
// inside the checkpointed machine range, feasible as a schedule — and
// the final checkpoint must restore to exactly the final job set.
// Run with -race (CI does).
func TestCheckpointRacesSubmitAndResize(t *testing.T) {
	dir := t.TempDir()
	log, recovered, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !recovered.Empty {
		t.Fatal("fresh dir not empty")
	}
	s := New(Config{Shards: 4, Machines: 8, Factory: elasticStackFactory, WAL: log})

	const mutators = 4
	per := 150
	if testing.Short() {
		per = 40
	}
	var wg sync.WaitGroup
	var resizes atomic.Int32
	for g := 0; g < mutators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				name := fmt.Sprintf("c%d-%04d", g, i)
				switch i % 3 {
				case 0:
					if err := s.Submit(jobs.InsertReq(name, 0, 4096)); err != nil {
						t.Errorf("submit %s: %v", name, err)
						return
					}
				case 1:
					batch := []jobs.Request{
						jobs.InsertReq(name+"-a", 0, 2048),
						jobs.InsertReq(name+"-b", 2048, 4096),
						jobs.DeleteReq(name + "-a"),
					}
					if _, err := s.ApplyBatch(batch); err != nil {
						t.Errorf("batch %s: %v", name, err)
						return
					}
				case 2:
					if _, err := s.Insert(jobs.Job{Name: name, Window: jobs.Window{Start: 0, End: 4096}}); err != nil {
						t.Errorf("insert %s: %v", name, err)
						return
					}
					if g == 0 && i%15 == 2 {
						if err := s.SubmitResize(ResizeReq{Shard: -1, Machines: 8 + int(resizes.Add(1))%4}); err != nil {
							t.Errorf("resize: %v", err)
							return
						}
					}
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	checkpoints := 0
	for {
		select {
		case <-done:
			if checkpoints == 0 {
				t.Fatal("no checkpoint raced the mutators")
			}
			goto settled
		default:
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("checkpoint under load: %v", err)
			}
			checkpoints++
			ck, err := wal.ReadCheckpoint(dir)
			if err != nil {
				t.Fatalf("reading checkpoint %d: %v", checkpoints, err)
			}
			if ck == nil {
				t.Fatal("checkpoint file missing after Checkpoint()")
			}
			if len(ck.Jobs) != len(ck.Assignment) {
				t.Fatalf("checkpoint tore: %d jobs, %d placements", len(ck.Jobs), len(ck.Assignment))
			}
			if err := feasible.VerifySchedule(ck.Jobs, ck.Assignment, ck.Machines()); err != nil {
				t.Fatalf("checkpoint %d not a feasible point-in-time image: %v", checkpoints, err)
			}
		}
	}
settled:
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	finalSnap := s.Snapshot()
	s.Close()

	ck, err := wal.ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(Config{Factory: elasticStackFactory}, ck)
	if err != nil {
		t.Fatalf("restoring final checkpoint: %v", err)
	}
	defer r.Close()
	rsnap := r.Snapshot()
	equalJobSets(t, rsnap.Jobs, finalSnap.Jobs)
	if err := feasible.VerifySchedule(rsnap.Jobs, rsnap.Assignment, rsnap.Machines); err != nil {
		t.Fatalf("restored final image infeasible: %v", err)
	}
	if err := r.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}
