package sim

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/alignsched"
	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/feasible"
	"repro/internal/jobs"
	"repro/internal/lowerbound"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/mixed"
	"repro/internal/multi"
	"repro/internal/naive"
	"repro/internal/pma"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/sized"
	"repro/internal/trim"
	"repro/internal/workload"
)

// Experiment reproduces one claim of the paper. Run(quick) executes it;
// quick mode shrinks parameters for use in tests.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(quick bool) (*Table, error)
}

// All returns every experiment in DESIGN.md's index order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Reservation scheduler cost vs n",
			Claim: "Theorem 1 / Lemma 9: per-request reallocation cost O(min{log* n, log* Δ}) — flat as n grows",
			Run:   runE1},
		{ID: "E2", Title: "Naive pecking-order cost vs Δ",
			Claim: "Lemma 4: naive cascades grow like log Δ",
			Run:   runE2},
		{ID: "E3", Title: "EDF brittleness vs reservation robustness",
			Claim: "Section 4 intro: EDF moves Θ(n) jobs per urgent insert even when 16-underallocated; reservations move O(1)",
			Run:   runE3},
		{ID: "E4", Title: "Migration lower bound (adaptive adversary)",
			Claim: "Lemma 11: any scheduler pays Ω(s) migrations over s requests (>= s/12)",
			Run:   runE4},
		{ID: "E5", Title: "Quadratic reallocations without underallocation",
			Claim: "Lemma 12: fully subscribed chains force Ω(s²) total reallocations",
			Run:   runE5},
		{ID: "E6", Title: "Mixed job sizes {1, k}",
			Claim: "Observation 13: Θ(n) requests force Ω(kn) reallocations despite constant underallocation",
			Run:   runE6},
		{ID: "E7", Title: "Migrations per request on m machines",
			Claim: "Theorem 1: at most one machine migration per request",
			Run:   runE7},
		{ID: "E8", Title: "History independence of reservations",
			Claim: "Observation 7: fulfilled/waitlisted reservation state depends only on the active job multiset",
			Run:   runE8},
		{ID: "E9", Title: "Underallocation threshold sweep",
			Claim: "Lemma 8 needs 8-underallocation: below the threshold the reservation invariant can fail; above it, costs stay O(1)",
			Run:   runE9},
		{ID: "E10", Title: "Window trimming and amortized rebuilds",
			Claim: "Section 4: doubling/halving n* with full rebuilds costs amortized O(1) per request",
			Run:   runE10},
		{ID: "E11", Title: "End-to-end Theorem 1 stack",
			Claim: "Lemmas 10+3+9 compose: unaligned windows on m machines, O(log* n) reallocations, <= 1 migration",
			Run:   runE11},
		{ID: "E12", Title: "Open question 1: sizes up to k with matching bounds",
			Claim: "Section 7 asks for a scheduler for sizes <= k matching Observation 13's Ω(k); the block-aligned greedy scheduler achieves O(k) per request",
			Run:   runE12},
		{ID: "E13", Title: "Per-level cascade anatomy",
			Claim: "Lemma 9's proof structure: each request causes O(1) reallocations at each level, across O(log* Δ) levels",
			Run:   runE13},
		{ID: "E14", Title: "Hunting the Lemma 8 boundary",
			Claim: "Lemma 8: under 8-underallocation every window keeps at least x+1 fulfilled reservations; how close do tight instances get?",
			Run:   runE14},
		{ID: "E15", Title: "The framework beyond scheduling: sparse arrays",
			Claim: "Introduction: maintaining a sparse array is also a reallocation problem; a packed-memory array pays Θ(log² n) per update vs the scheduler's O(log* n)",
			Run:   runE15},
		{ID: "E16", Title: "Sharded front-end cost parity",
			Claim: "Engineering extension: partitioning the machine pool into consistent-hash shards (each its own Theorem 1 stack) keeps total reallocations and migrations within a small constant of the sequential stack on the mixed workload",
			Run:   runE16},
		{ID: "E17", Title: "Elastic pool resizing with bounded migrations",
			Claim: "Engineering extension: growing the sharded pool moves zero jobs, and every shrink migrates at most as many jobs as the shrunken shard held — the autoscaling analogue of Theorem 1's one-migration bound",
			Run:   runE17},
	}
}

// ByID looks an experiment up by its ID (case-sensitive).
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment.
func RunAll(quick bool) ([]*Table, error) {
	var out []*Table
	for _, e := range All() {
		t, err := e.Run(quick)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}

func newTable(e string, header ...string) *Table {
	exp, _ := ByID(e)
	return &Table{ID: exp.ID, Title: exp.Title, Claim: exp.Claim, Header: header}
}

// --- E1: reservation scheduler cost vs n -------------------------------

func runE1(quick bool) (*Table, error) {
	sizes := []int{256, 1024, 4096, 16384}
	if quick {
		sizes = []int{64, 256}
	}
	t := newTable("E1", "target n", "requests", "max cost", "mean cost", "p99", "log*(n)")
	for _, n := range sizes {
		horizon := mathx.CeilPow2(int64(64 * n))
		g, err := workload.NewGenerator(workload.Config{
			Seed: int64(n), Gamma: 8, Horizon: horizon, Target: n, Steps: 4 * n,
		})
		if err != nil {
			return nil, err
		}
		s := core.New(core.WithMaxIntervals(1 << 24))
		rec := metrics.NewRecorder()
		if _, err := sched.Run(s, g.Sequence(), rec); err != nil {
			return nil, err
		}
		sum := rec.Summary()
		t.AddRow(n, sum.Requests, sum.MaxReallocations, sum.MeanReallocations,
			sum.P99Reallocations, mathx.LogStar(int64(n)))
	}
	t.Notes = append(t.Notes,
		"max cost stays flat while n grows 64x: the O(log* n) bound (log* is effectively constant here)")
	return t, nil
}

// --- E2: naive pecking-order cost vs Δ ----------------------------------

func runE2(quick bool) (*Table, error) {
	deltas := []int64{1 << 6, 1 << 10, 1 << 14, 1 << 18}
	probes := 50
	if quick {
		deltas = []int64{1 << 6, 1 << 10}
		probes = 10
	}
	t := newTable("E2", "Δ", "log2(Δ)", "max probe cost", "mean probe cost")
	for _, d := range deltas {
		s := naive.New()
		reqs := workload.NestedCascade(d, probes)
		rec := metrics.NewRecorder()
		if _, err := sched.Run(s, reqs, rec); err != nil {
			return nil, err
		}
		// Probe costs are the insert halves of the trailing toggles.
		costs := rec.Costs()
		nFill := len(reqs) - 2*probes
		maxP, sumP := 0, 0
		for p := 0; p < probes; p++ {
			c := costs[nFill+2*p].Reallocations
			if c > maxP {
				maxP = c
			}
			sumP += c
		}
		t.AddRow(d, mathx.Log2Floor(d), maxP, float64(sumP)/float64(probes))
	}
	t.Notes = append(t.Notes,
		"probe cost grows linearly in log2(Δ): the Lemma 4 cascade reallocates one job per span")
	return t, nil
}

// --- E3: EDF brittleness vs reservation robustness ----------------------

func runE3(quick bool) (*Table, error) {
	sizes := []int{64, 256, 1024}
	probes := 16
	if quick {
		sizes = []int{32, 128}
		probes = 4
	}
	t := newTable("E3", "n", "EDF mean probe cost", "reservation mean probe cost", "ratio")
	for _, n := range sizes {
		seq := lowerbound.FrontInsertSequence(n, probes)
		edfRec, err := lowerbound.MeasureDiffCosts(edf.New(1, edf.TieByArrival), seq)
		if err != nil {
			return nil, err
		}
		coreRec, err := lowerbound.MeasureDiffCosts(
			alignsched.New(core.New(core.WithMaxIntervals(1<<24))), seq)
		if err != nil {
			return nil, err
		}
		e := meanProbeCost(edfRec, n, probes)
		c := meanProbeCost(coreRec, n, probes)
		t.AddRow(n, e, c, e/c)
	}
	t.Notes = append(t.Notes,
		"EDF probe cost grows linearly with n; the reservation scheduler's stays constant")
	return t, nil
}

func meanProbeCost(rec *metrics.Recorder, n, probes int) float64 {
	costs := rec.Costs()
	sum := 0
	for p := 0; p < probes; p++ {
		sum += costs[n+2*p].Reallocations
	}
	return float64(sum) / float64(probes)
}

// --- E4: Lemma 11 migration lower bound ---------------------------------

func runE4(quick bool) (*Table, error) {
	ms := []int{2, 4, 8}
	rounds := 10
	if quick {
		ms = []int{2, 4}
		rounds = 3
	}
	t := newTable("E4", "m", "requests s", "migrations", "paper bound s/12", "migrations/request")
	for _, m := range ms {
		stack := alignsched.New(multi.New(m, func() sched.Scheduler { return core.New() }))
		res, err := lowerbound.RunLemma11(stack, rounds)
		if err != nil {
			return nil, err
		}
		t.AddRow(m, res.Requests, res.TotalMigrations, res.PaperLowerBound,
			float64(res.TotalMigrations)/float64(res.Requests))
	}
	t.Notes = append(t.Notes,
		"measured migrations sit between the paper's s/12 lower bound and Theorem 1's 1-per-request upper bound")
	return t, nil
}

// --- E5: Lemma 12 quadratic reallocations --------------------------------

func runE5(quick bool) (*Table, error) {
	etas := []int{16, 64, 256}
	if quick {
		etas = []int{8, 32}
	}
	t := newTable("E5", "eta", "requests s", "total reallocations", "total/s", "s²/16 reference")
	for _, eta := range etas {
		cycles := eta / 2
		seq := lowerbound.Lemma12Sequence(eta, cycles)
		rec, err := lowerbound.MeasureDiffCosts(edf.New(1, edf.TieByArrival), seq)
		if err != nil {
			return nil, err
		}
		s := len(seq)
		total := rec.Summary().TotalReallocations
		t.AddRow(eta, s, total, float64(total)/float64(s), s*s/16)
	}
	t.Notes = append(t.Notes,
		"total cost grows quadratically in the sequence length: per-request cost is Θ(s), impossible to amortize")
	return t, nil
}

// --- E6: Observation 13 mixed sizes --------------------------------------

func runE6(quick bool) (*Table, error) {
	ks := []int64{4, 16, 64, 256}
	sweeps := 8
	if quick {
		ks = []int64{4, 16}
		sweeps = 3
	}
	t := newTable("E6", "k", "requests", "total cost", "min sweep cost", "paper bound k", "cost/(k·sweeps)")
	for _, k := range ks {
		res, err := mixed.RunObservation13(k, 2, sweeps)
		if err != nil {
			return nil, err
		}
		t.AddRow(k, res.Requests, res.TotalCost, res.MinSweepCost, res.PaperLowerBound,
			float64(res.TotalCost)/float64(k*int64(sweeps)))
	}
	t.Notes = append(t.Notes,
		"aggregate cost scales linearly with k at fixed request count: the Ω(kn) bound for sizes {1,k}")
	return t, nil
}

// --- E7: migrations per request on m machines ----------------------------

func runE7(quick bool) (*Table, error) {
	ms := []int{2, 4, 8, 16}
	steps := 2000
	if quick {
		ms = []int{2, 4}
		steps = 300
	}
	t := newTable("E7", "m", "requests", "max migrations/request", "total migrations", "max reallocations/request")
	for _, m := range ms {
		g, err := workload.NewGenerator(workload.Config{
			Seed: int64(m), Machines: m, Gamma: 12, Horizon: 4096, Steps: steps,
		})
		if err != nil {
			return nil, err
		}
		s := multi.New(m, func() sched.Scheduler { return core.New() })
		rec := metrics.NewRecorder()
		if _, err := sched.Run(s, g.Sequence(), rec); err != nil {
			return nil, err
		}
		sum := rec.Summary()
		if err := feasible.VerifySchedule(s.Jobs(), s.Assignment(), m); err != nil {
			return nil, fmt.Errorf("E7 m=%d: %w", m, err)
		}
		t.AddRow(m, sum.Requests, sum.MaxMigrations, sum.TotalMigrations, sum.MaxReallocations)
	}
	t.Notes = append(t.Notes, "max migrations per request is exactly <= 1 at every machine count (Theorem 1)")
	return t, nil
}

// --- E8: history independence --------------------------------------------

func runE8(quick bool) (*Table, error) {
	trials := 20
	steps := 200
	if quick {
		trials = 5
		steps = 80
	}
	t := newTable("E8", "trial", "active jobs", "snapshot entries", "identical")
	identical := 0
	for trial := 0; trial < trials; trial++ {
		g, err := workload.NewGenerator(workload.Config{
			Seed: int64(trial) + 1000, Gamma: 8, Horizon: 1024, Steps: steps,
		})
		if err != nil {
			return nil, err
		}
		s1 := core.New()
		if _, err := sched.Run(s1, g.Sequence(), nil); err != nil {
			return nil, err
		}
		// Rebuild the final multiset directly, in sorted-name order (a
		// different history).
		s2 := core.New()
		for _, j := range g.Active() {
			if _, err := s2.Insert(j); err != nil {
				return nil, err
			}
		}
		snap1, snap2 := s1.ReservationSnapshot(), s2.ReservationSnapshot()
		same := len(snap1) == len(snap2)
		if same {
			for i := range snap1 {
				if snap1[i] != snap2[i] {
					same = false
					break
				}
			}
		}
		if same {
			identical++
		}
		t.AddRow(trial, len(g.Active()), len(snap1), same)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d/%d trials produced byte-identical reservation states (Observation 7)",
		identical, trials))
	if identical != trials {
		return t, fmt.Errorf("history independence violated in %d trials", trials-identical)
	}
	return t, nil
}

// --- E9: underallocation threshold sweep ----------------------------------

func runE9(quick bool) (*Table, error) {
	gammas := []int64{1, 2, 4, 8, 16}
	steps := 1500
	seeds := 5
	if quick {
		steps = 200
		seeds = 2
	}
	t := newTable("E9", "gamma", "random runs", "completed", "max cost", "adversarial exact-fit")
	for _, gamma := range gammas {
		completed, maxCost := 0, 0
		for seed := 0; seed < seeds; seed++ {
			g, err := workload.NewGenerator(workload.Config{
				Seed: int64(seed), Gamma: gamma, Horizon: 2048, Steps: steps,
			})
			if err != nil {
				return nil, err
			}
			s := core.New()
			rec := metrics.NewRecorder()
			if _, err := sched.Run(s, g.Sequence(), rec); err == nil {
				completed++
				if m := rec.Summary().MaxReallocations; m > maxCost {
					maxCost = m
				}
			}
		}
		t.AddRow(gamma, seeds, completed, maxCost, adversarialExactFit(gamma))
	}
	t.Notes = append(t.Notes,
		"Lemma 8 guarantees success at gamma >= 8; measured, both random churn and the adversarial exact-fit complete even at gamma=1",
		"this matches the paper's own closing remark that its gamma 'is very large, and the paper does not attempt to optimize this constant' — the implementation (which prefers job-free slots at every choice point) is far more robust than the worst-case analysis requires")
	return t, nil
}

// adversarialExactFit packs a span-64 level-1 window with 32/gamma
// same-window jobs and then 32/gamma span-1 base jobs aimed at distinct
// slots, the densest squeeze a gamma-underallocated instance can apply
// to one window's allowance. Returns "ok" or the failing step.
func adversarialExactFit(gamma int64) string {
	s := core.New()
	n := int(32 / gamma)
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		if _, err := s.Insert(jobs.Job{Name: fmt.Sprintf("w%d", i),
			Window: jobs.Window{Start: 0, End: 64}}); err != nil {
			return fmt.Sprintf("failed at wide insert %d", i)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := s.Insert(jobs.Job{Name: fmt.Sprintf("b%d", i),
			Window: jobs.Window{Start: int64(i), End: int64(i) + 1}}); err != nil {
			return fmt.Sprintf("failed at base insert %d", i)
		}
	}
	return "ok"
}

// --- E10: trimming and amortized rebuilds ----------------------------------

func runE10(quick bool) (*Table, error) {
	rounds := []int{128, 512, 2048}
	if quick {
		rounds = []int{64, 128}
	}
	t := newTable("E10", "variant", "peak n", "requests", "rebuilds", "total cost", "amortized/request", "max single request")
	factory := func() sched.Scheduler { return core.New(core.WithMaxIntervals(1 << 24)) }
	for _, peak := range rounds {
		for _, variant := range []string{"amortized", "incremental"} {
			var s sched.Scheduler
			rebuilds := func() int { return 0 }
			switch variant {
			case "amortized":
				am := trim.New(8, factory)
				rebuilds = am.Rebuilds
				s = am
			case "incremental":
				inc := trim.NewIncremental(8, factory)
				rebuilds = inc.Transitions
				s = inc
			}
			total, maxOne, requests := 0, 0, 0
			apply := func(c metrics.Cost) {
				total += c.Reallocations
				if c.Reallocations > maxOne {
					maxOne = c.Reallocations
				}
				requests++
			}
			for i := 0; i < peak; i++ {
				c, err := s.Insert(jobs.Job{Name: fmt.Sprintf("g%d", i),
					Window: jobs.Window{Start: 0, End: 1 << 40}})
				if err != nil {
					return nil, err
				}
				apply(c)
			}
			for i := 0; i < peak; i++ {
				c, err := s.Delete(fmt.Sprintf("g%d", i))
				if err != nil {
					return nil, err
				}
				apply(c)
			}
			t.AddRow(variant, peak, requests, rebuilds(), total,
				float64(total)/float64(requests), maxOne)
		}
	}
	t.Notes = append(t.Notes,
		"amortized: cost per request stays constant while peak n grows 16x, but single requests spike to O(n) at rebuilds",
		"incremental (the paper's even/odd-slot deamortization): same amortized cost, worst single request O(1)")
	return t, nil
}

// --- E11: end-to-end Theorem 1 stack ---------------------------------------

func runE11(quick bool) (*Table, error) {
	type cfg struct {
		m     int
		steps int
	}
	cfgs := []cfg{{2, 1000}, {4, 2000}, {8, 4000}}
	if quick {
		cfgs = []cfg{{2, 200}, {4, 300}}
	}
	t := newTable("E11", "m", "requests", "max cost", "mean cost", "max migrations", "feasible")
	for _, c := range cfgs {
		s := alignsched.New(multi.New(c.m, func() sched.Scheduler { return core.New() }))
		g, err := workload.NewGenerator(workload.Config{
			Seed: int64(c.m), Machines: c.m, Gamma: 24, Horizon: 8192, Steps: c.steps,
		})
		if err != nil {
			return nil, err
		}
		rec := metrics.NewRecorder()
		// Un-align the generator's windows by jittering the edges: the
		// stack must still serve them (alignment is internal).
		reqs := g.Sequence()
		jittered := make([]jobs.Request, len(reqs))
		for i, r := range reqs {
			jittered[i] = r
			if r.Kind == jobs.Insert {
				// Widening windows preserves underallocation.
				w := r.Window
				jittered[i].Window = jobs.Window{Start: w.Start, End: w.End + w.Span()/3}
			}
		}
		if _, err := sched.Run(s, jittered, rec); err != nil {
			return nil, err
		}
		feas := feasible.VerifySchedule(s.Jobs(), s.Assignment(), c.m) == nil
		sum := rec.Summary()
		t.AddRow(c.m, sum.Requests, sum.MaxReallocations, sum.MeanReallocations, sum.MaxMigrations, feas)
		if !feas {
			return t, fmt.Errorf("E11 m=%d: infeasible schedule", c.m)
		}
	}
	t.Notes = append(t.Notes,
		"the full composition (align -> round-robin -> reservations) keeps costs constant and migrations <= 1 on unaligned input")
	return t, nil
}

// --- E12: the open question — sizes up to k ---------------------------------

func runE12(quick bool) (*Table, error) {
	ks := []int64{4, 16, 64, 256}
	sweeps := 6
	if quick {
		ks = []int64{4, 16}
		sweeps = 2
	}
	t := newTable("E12", "k", "requests", "max slide cost", "O(k) bound k+1", "min sweep cost", "Ω(k) bound k")
	for _, k := range ks {
		res, err := sized.RunSlide(k, 2, sweeps)
		if err != nil {
			return nil, err
		}
		t.AddRow(k, res.Requests, res.MaxSlideCost, k+1, res.MinSweepCost, k)
		if res.MaxSlideCost > int(k)+1 {
			return t, fmt.Errorf("E12 k=%d: slide cost %d exceeds O(k) bound", k, res.MaxSlideCost)
		}
		if res.MinSweepCost < int(k) {
			return t, fmt.Errorf("E12 k=%d: sweep cost %d below Ω(k) bound", k, res.MinSweepCost)
		}
	}
	t.Notes = append(t.Notes,
		"per-request cost sits between Observation 13's Ω(k) and the greedy block scheduler's O(k): the bounds meet for power-of-two sizes",
		"the general integer-size case (non-power-of-two, recursive displacement) remains open, as the paper notes")
	return t, nil
}

// --- E13: per-level cascade anatomy ------------------------------------------

func runE13(quick bool) (*Table, error) {
	steps := 6000
	if quick {
		steps = 600
	}
	g, err := workload.NewGenerator(workload.Config{
		Seed: 13, Gamma: 8, Horizon: 16384, Steps: steps,
	})
	if err != nil {
		return nil, err
	}
	s := core.New(core.WithMaxIntervals(1 << 24))
	perLevelTotal := [align.NumLevels]int{}
	perLevelMax := [align.NumLevels]int{}
	requests := 0
	for i := 0; i < steps; i++ {
		if _, err := sched.Apply(s, g.Next()); err != nil {
			return nil, err
		}
		requests++
		lc := s.LastCostByLevel()
		for l, c := range lc {
			perLevelTotal[l] += c
			if c > perLevelMax[l] {
				perLevelMax[l] = c
			}
		}
	}
	t := newTable("E13", "level", "span range", "total reallocations", "mean/request", "max in one request")
	ranges := []string{"(0, 32]", "(32, 256]", "(256, 2^62]"}
	for l := 0; l < align.NumLevels; l++ {
		t.AddRow(l, ranges[l], perLevelTotal[l],
			float64(perLevelTotal[l])/float64(requests), perLevelMax[l])
		if perLevelMax[l] > 8 {
			return t, fmt.Errorf("E13: level %d saw %d reallocations in one request (Lemma 9 wants O(1))",
				l, perLevelMax[l])
		}
	}
	t.Notes = append(t.Notes,
		"every level contributes at most a small constant per request — the structure behind Lemma 9's proof (one MOVE per level, each causing at most two reallocations)")
	return t, nil
}

// --- E14: hunting the Lemma 8 boundary ---------------------------------------

// exactFitMinSlack runs the E9 exact-fit squeeze at the given gamma and
// reports the minimum Lemma-8 slack reached.
func exactFitMinSlack(gamma int64) int {
	s := core.New()
	n := int(32 / gamma)
	if n < 1 {
		n = 1
	}
	minSlack := 1 << 30
	track := func() {
		if sl := s.MinLemma8Slack(); sl < minSlack {
			minSlack = sl
		}
	}
	for i := 0; i < n; i++ {
		if _, err := s.Insert(jobs.Job{Name: fmt.Sprintf("ew%d", i),
			Window: jobs.Window{Start: 0, End: 64}}); err != nil {
			return minSlack
		}
		track()
	}
	for i := 0; i < n; i++ {
		if _, err := s.Insert(jobs.Job{Name: fmt.Sprintf("eb%d", i),
			Window: jobs.Window{Start: int64(i), End: int64(i) + 1}}); err != nil {
			return minSlack
		}
		track()
	}
	return minSlack
}

func runE14(quick bool) (*Table, error) {
	seeds := 25
	steps := 800
	if quick {
		seeds = 5
		steps = 150
	}
	t := newTable("E14", "gamma", "runs", "op failures", "invariant violations", "min slack (random)", "min slack (exact-fit)")
	for _, gamma := range []int64{1, 2, 4, 8} {
		opFailures, violations := 0, 0
		minSlack := 1 << 30
		for seed := 0; seed < seeds; seed++ {
			g, err := workload.NewGenerator(workload.Config{
				Seed: int64(seed)*31 + gamma, Gamma: gamma, Horizon: 1024, Steps: steps,
			})
			if err != nil {
				return nil, err
			}
			s := core.New()
			for i := 0; i < steps; i++ {
				if _, err := sched.Apply(s, g.Next()); err != nil {
					opFailures++
					break
				}
				if slack := s.MinLemma8Slack(); slack < minSlack {
					minSlack = slack
				}
				if err := s.VerifyLemma8(); err != nil {
					violations++
					break
				}
			}
		}
		slackStr := "n/a"
		if minSlack != 1<<30 {
			slackStr = fmt.Sprintf("%d", minSlack)
		}
		t.AddRow(gamma, seeds, opFailures, violations, slackStr, exactFitMinSlack(gamma))
	}
	t.Notes = append(t.Notes,
		"min slack is fulfilled-minus-x minimized over all windows and all states; Lemma 8 guarantees >= 1 at gamma >= 8",
		"the exact-fit adversary (a window squeezed by pinned base jobs) drives the slack to 0 at gamma=1 — Lemma 8's CONCLUSION is violated there, yet no operation ever needed the missing slot, so scheduling still succeeded",
		"at low gamma the slack is driven toward the boundary but (with this implementation's job-free-slot preference) never below it on any sampled run — the guarantee constant is conservative, as the paper's Section 7 anticipates")
	return t, nil
}

// --- E15: the reallocation framework beyond scheduling -----------------------

func runE15(quick bool) (*Table, error) {
	sizes := []int64{1024, 4096, 16384}
	if quick {
		sizes = []int64{256, 1024}
	}
	t := newTable("E15", "n (ascending inserts)", "amortized moves/insert", "log²(n)", "scheduler (E1) cost", "log*(n)")
	for _, n := range sizes {
		p := pma.New()
		total := 0
		for i := int64(1); i <= n; i++ {
			moves, err := p.Insert(i)
			if err != nil {
				return nil, err
			}
			total += moves
		}
		lg := float64(mathx.Log2Ceil(n))
		t.AddRow(n, float64(total)/float64(n), lg*lg, "O(1) measured (see E1)", mathx.LogStar(n))
	}
	t.Notes = append(t.Notes,
		"the paper frames sparse-array maintenance as a sibling reallocation problem (introduction, refs [9,17,31-33])",
		"the PMA pays Θ(log² n) reallocations per update while the paper's scheduler pays O(log* n): both are members of the same framework with very different reallocation prices")
	return t, nil
}

// --- E16: sharded front-end cost parity --------------------------------------

// shardStack builds the Theorem 1 stack for one shard's machine share,
// mirroring realloc.New's composition.
func shardStack(machines int) sched.Scheduler {
	single := func() sched.Scheduler {
		return trim.New(8, func() sched.Scheduler { return core.New(core.WithMaxIntervals(1 << 20)) })
	}
	var s sched.Scheduler
	if machines == 1 {
		s = single()
	} else {
		s = multi.New(machines, multi.Factory(single))
	}
	return alignsched.New(s)
}

func runE16(quick bool) (*Table, error) {
	machines := 8
	steps := 12000
	if quick {
		steps = 2000
	}
	reqs, err := workload.Mixed(workload.MixedConfig{
		Seed: 3, Machines: machines, Horizon: 1 << 14, Steps: steps,
	})
	if err != nil {
		return nil, err
	}
	t := newTable("E16", "config", "served", "failed", "total realloc", "mean realloc", "total migr", "overflow hops", "imbalance")

	// Sequential baseline.
	seq := shardStack(machines)
	rec := metrics.NewRecorder()
	served, failed := 0, 0
	skip := make(map[string]bool)
	for _, r := range reqs {
		if r.Kind == jobs.Delete && skip[r.Name] {
			continue
		}
		c, err := sched.Apply(seq, r)
		if err != nil {
			failed++
			if r.Kind == jobs.Insert {
				skip[r.Name] = true
			}
			continue
		}
		served++
		rec.Record(c, seq.Active())
	}
	sum := rec.Summary()
	t.AddRow("sequential", served, failed, sum.TotalReallocations, sum.MeanReallocations,
		sum.TotalMigrations, 0, "n/a")
	baseline := sum.TotalReallocations

	for _, shards := range []int{1, 4, 8} {
		s := shard.New(shard.Config{Shards: shards, Machines: machines, Factory: shardStack})
		skip := make(map[string]bool)
		for _, r := range reqs {
			if r.Kind == jobs.Delete && skip[r.Name] {
				continue
			}
			if _, err := s.Apply(r); err != nil && r.Kind == jobs.Insert {
				skip[r.Name] = true
			}
		}
		rep := s.Report()
		tot := rep.Total()
		mean := 0.0
		if n := rep.Served(); n > 0 {
			mean = float64(tot.Cost.Reallocations) / float64(n)
		}
		t.AddRow(fmt.Sprintf("sharded-%d", shards), rep.Served(), tot.Failures,
			tot.Cost.Reallocations, mean, tot.Cost.Migrations, tot.Overflow,
			rep.Imbalance())
		if tot.Cost.Reallocations > 3*baseline {
			s.Close()
			return t, fmt.Errorf("E16: sharded-%d paid %d reallocations, >3x the sequential %d",
				shards, tot.Cost.Reallocations, baseline)
		}
		s.Close()
	}
	t.Notes = append(t.Notes,
		"each shard preserves Theorem 1's bounds on its own machine range; totals track the sequential stack",
		"overflow hops count inserts the primary shard rejected as locally infeasible and a fallback shard absorbed",
		"imbalance is max/mean requests per shard under consistent-hash routing of job names")
	return t, nil
}

// --- E17: elastic pool resizing with bounded migrations -----------------------

// elasticShardStack is shardStack with the multi wrapper always present
// so every shard implements sched.Elastic (mirrors realloc.NewSharded).
func elasticShardStack(machines int) sched.Scheduler {
	single := func() sched.Scheduler {
		return trim.New(8, func() sched.Scheduler { return core.New(core.WithMaxIntervals(1 << 20)) })
	}
	return alignsched.New(multi.New(machines, multi.Factory(single)))
}

func runE17(quick bool) (*Table, error) {
	const shards = 4
	steps := 1500
	if quick {
		steps = 300
	}
	phases, err := workload.Elastic(workload.ElasticConfig{
		Seed: 17, BaseMachines: 8, PeakMachines: 16, StepsPerPhase: steps,
	})
	if err != nil {
		return nil, err
	}
	s := shard.New(shard.Config{Shards: shards, Machines: phases[0].Machines, Factory: elasticShardStack})
	defer s.Close()

	t := newTable("E17", "phase", "pool", "served", "failed", "resize migrations", "shard jobs before", "bound holds")
	for _, p := range phases {
		// Resize shard by shard (grows before shrinks, like Resize),
		// capturing each shard's job count immediately before its own
		// shrink: earlier shrinks in the same re-partition re-home
		// evictions onto later shards, so a count taken up front would
		// understate what the later shard legitimately holds.
		deltas := make([]int, shards)
		for i := range deltas {
			m := p.Machines / shards
			if i < p.Machines%shards {
				m++
			}
			deltas[i] = m - s.ShardMachines(i)
		}
		migr, before, ok := 0, 0, true
		for _, shrink := range []bool{false, true} {
			for i, d := range deltas {
				if d == 0 || (d < 0) != shrink {
					continue
				}
				jobsNow := s.Report().Shards[i].Active
				rc, err := s.ResizeShard(i, d)
				if err != nil {
					return t, fmt.Errorf("E17: resize shard %d by %d: %w", i, d, err)
				}
				migr += rc.Cost.Migrations
				if d > 0 && rc.Cost.Migrations != 0 {
					ok = false // growing must never move a job
				}
				if d < 0 {
					before += jobsNow
					if rc.Cost.Migrations > jobsNow {
						ok = false // shrink bound: <= jobs the shard held
					}
				}
				if rc.Dropped != 0 {
					return t, fmt.Errorf("E17: resize dropped %d jobs", rc.Dropped)
				}
			}
		}

		served, failed := 0, 0
		for _, r := range p.Reqs {
			if _, err := s.Apply(r); err != nil {
				failed++
				continue
			}
			served++
		}
		t.AddRow(p.Name, p.Machines, served, failed, migr, before, ok)
		if !ok {
			return t, fmt.Errorf("E17: migration bound violated in phase %s", p.Name)
		}
		if failed != 0 {
			return t, fmt.Errorf("E17: %d requests failed in phase %s (scenario is underallocated by construction)",
				failed, p.Name)
		}
		snap := s.Snapshot()
		if err := feasible.VerifySchedule(snap.Jobs, snap.Assignment, snap.Machines); err != nil {
			return t, fmt.Errorf("E17: phase %s: %w", p.Name, err)
		}
	}
	t.Notes = append(t.Notes,
		"growing the pool relabels the global machine view but moves zero jobs",
		"each shrink migrates at most the shrunken shard's job count (drained-machine jobs re-placed locally or on the least-loaded shards)",
		"every phase replays with zero failed requests while the pool breathes base -> peak -> base")
	return t, nil
}
