package sim

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("%d experiments registered, want 17", len(all))
	}
	seen := map[string]bool{}
	for i, e := range all {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Errorf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("%s incomplete: %+v", e.ID, e)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E3"); !ok {
		t.Error("E3 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 found")
	}
}

// Every experiment must run to completion in quick mode and produce a
// non-empty table.
func TestRunAllQuick(t *testing.T) {
	tables, err := RunAll(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 17 {
		t.Fatalf("%d tables", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", tab.ID)
		}
		if len(tab.Header) == 0 {
			t.Errorf("%s has no header", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s row width %d != header width %d", tab.ID, len(row), len(tab.Header))
			}
		}
	}
}

// Spot-check experiment shapes in quick mode.

func TestE3ShowsBrittlenessGap(t *testing.T) {
	e, _ := ByID("E3")
	tab, err := e.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	// Ratio column (last) must exceed 2 at the larger n.
	last := tab.Rows[len(tab.Rows)-1]
	ratio, err := strconv.ParseFloat(last[len(last)-1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 2 {
		t.Errorf("EDF/reservation cost ratio %.2f too small", ratio)
	}
}

func TestE7MigrationBound(t *testing.T) {
	e, _ := ByID("E7")
	tab, err := e.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		maxMigr, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		if maxMigr > 1 {
			t.Errorf("m=%s: max migrations per request %d > 1", row[0], maxMigr)
		}
	}
}

func TestE9GammaSweepShape(t *testing.T) {
	e, _ := ByID("E9")
	tab, err := e.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	// At gamma = 8 and 16 every run must complete.
	for _, row := range tab.Rows {
		if row[0] == "8" || row[0] == "16" {
			if row[1] != row[2] {
				t.Errorf("gamma=%s: %s/%s runs completed", row[0], row[2], row[1])
			}
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Claim: "c", Header: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("xyz", "w")
	tab.Notes = append(tab.Notes, "a note")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T — demo", "claim: c", "a    bb", "1    2.50", "xyz  w", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Header: []string{"x", "y"}}
	tab.AddRow(1, "a,b")
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,\"a,b\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestE16ShardedParity(t *testing.T) {
	e, _ := ByID("E16")
	tab, err := e.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows, want sequential + sharded-{1,4,8}", len(tab.Rows))
	}
	// No configuration may fail requests on the underallocated mixed
	// workload... except shard-local overflow exhaustion, which the
	// experiment itself bounds; here just require most requests served.
	for _, row := range tab.Rows {
		served, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		if served == 0 {
			t.Errorf("%s served no requests", row[0])
		}
	}
}

func TestE17ElasticResizing(t *testing.T) {
	e, _ := ByID("E17")
	tab, err := e.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d phases, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if fmt.Sprint(row[len(row)-1]) != "true" {
			t.Errorf("migration bound violated: %v", row)
		}
		if fmt.Sprint(row[3]) != "0" {
			t.Errorf("failed requests in phase: %v", row)
		}
	}
}
