// Package sim is the experiment harness: it defines one experiment per
// theorem/lemma/observation of the paper (see DESIGN.md's experiment
// index) and renders their results as text tables or CSV. The cmd/
// reallocsim binary and the repository benchmarks drive everything
// through this package.
package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result: a titled grid of cells.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim being validated
	Header []string
	Rows   [][]string
	Notes  []string // free-form observations appended below the table
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Claim != "" {
		if _, err := fmt.Fprintf(w, "claim: %s\n", t.Claim); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return "  " + strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 2
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, "  "+strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table (header + rows) as CSV, without title or notes.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
