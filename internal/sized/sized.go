// Package sized explores the paper's first open question (Section 7):
// reallocation scheduling when job sizes are integers up to k rather
// than 1. Observation 13 shows any such scheduler pays Ω(k) per request
// in the worst case, so the goal is a matching O(k) upper bound.
//
// This package implements a block-aligned greedy reallocating scheduler
// for power-of-two job sizes: a size-s job occupies an s-aligned block
// of s consecutive slots inside its (aligned) window, buddy-allocator
// style. Insertion prefers a free block; failing that it evicts the
// strictly smaller jobs under one candidate block and relocates each of
// them to free slots — at most s evictions, each relocated in one move,
// for O(s) <= O(k) reallocations per request. The sized experiment (E12)
// measures this against Observation 13's Ω(k) lower bound: upper and
// lower bounds meet, answering the open question for the power-of-two,
// greedy-relocatable regime (the general integer-size case remains
// open).
package sized

import (
	"fmt"
	"sort"

	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/metrics"
)

// Job is a job of power-of-two size with an aligned window.
type Job struct {
	Name   string
	Size   int64 // power of two, >= 1
	Window jobs.Window
}

// Validate reports whether the job is well-formed: size a power of two,
// window aligned with span >= size.
func (j Job) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("sized: empty name")
	}
	if !mathx.IsPow2(j.Size) {
		return fmt.Errorf("sized: size %d not a power of two", j.Size)
	}
	if err := j.Window.Validate(); err != nil {
		return err
	}
	if !j.Window.IsAligned() {
		return fmt.Errorf("sized: window %v not aligned", j.Window)
	}
	if j.Window.Span() < j.Size {
		return fmt.Errorf("sized: window %v too small for size %d", j.Window, j.Size)
	}
	return nil
}

type placed struct {
	job   Job
	block jobs.Time // start of the occupied size-aligned block
}

// Scheduler is the block-aligned greedy sized-job scheduler.
type Scheduler struct {
	jobs  map[string]*placed
	slots map[jobs.Time]*placed // every covered slot -> job
}

// New returns an empty sized-job scheduler.
func New() *Scheduler {
	return &Scheduler{
		jobs:  make(map[string]*placed),
		slots: make(map[jobs.Time]*placed),
	}
}

// Active returns the number of active jobs.
func (s *Scheduler) Active() int { return len(s.jobs) }

// Placement returns the block start of an active job.
func (s *Scheduler) Placement(name string) (jobs.Time, bool) {
	p, ok := s.jobs[name]
	if !ok {
		return 0, false
	}
	return p.block, true
}

// Insert places the job, evicting strictly smaller jobs from one
// candidate block if necessary. Cost is 1 + the number of relocated
// smaller jobs (each <= size/1, so O(size) total).
func (s *Scheduler) Insert(j Job) (metrics.Cost, error) {
	if err := j.Validate(); err != nil {
		return metrics.Cost{}, err
	}
	if _, dup := s.jobs[j.Name]; dup {
		return metrics.Cost{}, fmt.Errorf("sized: job %q already active", j.Name)
	}
	// Pass 1: a completely free aligned block.
	if b, ok := s.findBlock(j, false); ok {
		s.occupy(&placed{job: j, block: b})
		return metrics.Cost{Reallocations: 1}, nil
	}
	// Pass 2: a block whose occupants are all strictly smaller; evict and
	// relocate each of them into free space.
	b, ok := s.findBlock(j, true)
	if !ok {
		return metrics.Cost{}, fmt.Errorf("sized: no block for %q (size %d) in %v", j.Name, j.Size, j.Window)
	}
	victims := s.occupants(b, j.Size)
	oldBlocks := make([]jobs.Time, len(victims))
	for i, v := range victims {
		oldBlocks[i] = v.block
		s.vacate(v)
	}
	self := &placed{job: j, block: b}
	s.occupy(self)
	cost := metrics.Cost{Reallocations: 1}
	for i, v := range victims {
		nb, ok := s.findBlock(v.job, false)
		if !ok {
			// Roll back so a failed insert leaves the schedule untouched.
			for k := 0; k < i; k++ {
				s.vacate(victims[k])
			}
			s.vacate(self)
			for k, w := range victims {
				w.block = oldBlocks[k]
				s.occupy(w)
			}
			return metrics.Cost{}, fmt.Errorf("sized: cannot relocate evicted %q (instance too tight)", v.job.Name)
		}
		v.block = nb
		s.occupy(v)
		cost.Reallocations++
	}
	return cost, nil
}

// Delete removes an active job.
func (s *Scheduler) Delete(name string) (metrics.Cost, error) {
	p, ok := s.jobs[name]
	if !ok {
		return metrics.Cost{}, fmt.Errorf("sized: unknown job %q", name)
	}
	s.vacate(p)
	return metrics.Cost{}, nil
}

// findBlock scans the size-aligned candidate blocks of j's window. With
// evictable=false it returns the first fully free block; with
// evictable=true, the first block whose occupants are all strictly
// smaller than j (choosing the block with the fewest occupied slots).
func (s *Scheduler) findBlock(j Job, evictable bool) (jobs.Time, bool) {
	bestBlock, bestOccupied := jobs.Time(0), int64(1)<<62
	found := false
	for b := mathx.AlignUp(j.Window.Start, j.Size); b+j.Size <= j.Window.End; b += j.Size {
		occupied := int64(0)
		ok := true
		for t := b; t < b+j.Size; t++ {
			p, taken := s.slots[t]
			if !taken {
				continue
			}
			occupied++
			if !evictable || p.job.Size >= j.Size {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if !evictable {
			if occupied == 0 {
				return b, true
			}
			continue
		}
		if occupied < bestOccupied {
			bestBlock, bestOccupied, found = b, occupied, true
		}
	}
	return bestBlock, found
}

// occupants returns the distinct jobs covering [b, b+size), sorted by
// block for determinism.
func (s *Scheduler) occupants(b jobs.Time, size int64) []*placed {
	seen := map[string]*placed{}
	for t := b; t < b+size; t++ {
		if p, ok := s.slots[t]; ok {
			seen[p.job.Name] = p
		}
	}
	out := make([]*placed, 0, len(seen))
	for _, p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].block < out[k].block })
	return out
}

func (s *Scheduler) occupy(p *placed) {
	for t := p.block; t < p.block+p.job.Size; t++ {
		if prev, taken := s.slots[t]; taken {
			panic(fmt.Sprintf("sized: slot %d already held by %q", t, prev.job.Name))
		}
		s.slots[t] = p
	}
	s.jobs[p.job.Name] = p
}

func (s *Scheduler) vacate(p *placed) {
	for t := p.block; t < p.block+p.job.Size; t++ {
		delete(s.slots, t)
	}
	delete(s.jobs, p.job.Name)
}

// SelfCheck validates block alignment, window containment, and slot
// coverage.
func (s *Scheduler) SelfCheck() error {
	covered := 0
	for name, p := range s.jobs {
		if p.block%p.job.Size != 0 {
			return fmt.Errorf("sized: %q block %d not %d-aligned", name, p.block, p.job.Size)
		}
		if p.block < p.job.Window.Start || p.block+p.job.Size > p.job.Window.End {
			return fmt.Errorf("sized: %q block [%d,%d) outside window %v",
				name, p.block, p.block+p.job.Size, p.job.Window)
		}
		for t := p.block; t < p.block+p.job.Size; t++ {
			if s.slots[t] != p {
				return fmt.Errorf("sized: slot %d of %q not registered", t, name)
			}
			covered++
		}
	}
	if covered != len(s.slots) {
		return fmt.Errorf("sized: %d covered slots but %d registered", covered, len(s.slots))
	}
	return nil
}

// SlideResult reports the measured cost of the generalized
// Observation 13 workload served by this scheduler.
type SlideResult struct {
	K            int64
	Sweeps       int
	Requests     int
	TotalCost    int
	MaxSlideCost int // worst single slide (upper bound check: O(k))
	MinSweepCost int // per-sweep lower bound check: Ω(k)
}

// RunSlide measures the sliding size-k workload: k unit jobs with a full
// window, one size-k job sliding across 2γ positions per sweep. The
// per-slide cost must be O(k) (this scheduler's guarantee) and the
// per-sweep cost Ω(k) (Observation 13) — matching bounds.
func RunSlide(k, gamma int64, sweeps int) (SlideResult, error) {
	if !mathx.IsPow2(k) || gamma < 1 || sweeps < 1 {
		return SlideResult{}, fmt.Errorf("sized: bad parameters k=%d gamma=%d sweeps=%d", k, gamma, sweeps)
	}
	horizon := mathx.CeilPow2(2 * gamma * k)
	window := jobs.Window{Start: 0, End: horizon}
	s := New()
	res := SlideResult{K: k, Sweeps: sweeps}

	for i := int64(0); i < k; i++ {
		c, err := s.Insert(Job{Name: fmt.Sprintf("u%04d", i), Size: 1, Window: window})
		if err != nil {
			return res, err
		}
		res.TotalCost += c.Reallocations
		res.Requests++
	}
	positions := horizon / k
	res.MinSweepCost = 1 << 30
	for sweep := 0; sweep < sweeps; sweep++ {
		sweepCost := 0
		for pos := int64(0); pos < positions; pos++ {
			if sweep > 0 || pos > 0 {
				if _, err := s.Delete("p"); err != nil {
					return res, err
				}
				res.Requests++
			}
			// Pin the big job to exactly [pos*k, (pos+1)*k) via a
			// window of span k.
			c, err := s.Insert(Job{Name: "p", Size: k,
				Window: jobs.Window{Start: pos * k, End: (pos + 1) * k}})
			if err != nil {
				return res, err
			}
			res.Requests++
			sweepCost += c.Reallocations
			res.TotalCost += c.Reallocations
			if c.Reallocations > res.MaxSlideCost {
				res.MaxSlideCost = c.Reallocations
			}
			if err := s.SelfCheck(); err != nil {
				return res, err
			}
		}
		if sweepCost < res.MinSweepCost {
			res.MinSweepCost = sweepCost
		}
	}
	return res, nil
}
