package sized

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/jobs"
	"repro/internal/mathx"
)

func win(start, end int64) jobs.Window { return jobs.Window{Start: start, End: end} }

func TestValidate(t *testing.T) {
	cases := []struct {
		j  Job
		ok bool
	}{
		{Job{Name: "a", Size: 4, Window: win(0, 16)}, true},
		{Job{Name: "", Size: 4, Window: win(0, 16)}, false},
		{Job{Name: "a", Size: 3, Window: win(0, 16)}, false},  // non-pow2 size
		{Job{Name: "a", Size: 4, Window: win(1, 17)}, false},  // misaligned window
		{Job{Name: "a", Size: 32, Window: win(0, 16)}, false}, // window too small
	}
	for _, c := range cases {
		err := c.j.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v", c.j, err)
		}
	}
}

func TestInsertDeleteBasic(t *testing.T) {
	s := New()
	c, err := s.Insert(Job{Name: "a", Size: 4, Window: win(0, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if c.Reallocations != 1 {
		t.Errorf("cost %+v", c)
	}
	b, ok := s.Placement("a")
	if !ok || b%4 != 0 {
		t.Errorf("placement %d, %v", b, ok)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if s.Active() != 0 {
		t.Error("not deleted")
	}
}

func TestBlockAlignment(t *testing.T) {
	s := New()
	// A unit job at slot 2 blocks the size-4 block [0,4) but not [4,8).
	if _, err := s.Insert(Job{Name: "u", Size: 1, Window: win(2, 3)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(Job{Name: "big", Size: 4, Window: win(0, 8)}); err != nil {
		t.Fatal(err)
	}
	b, _ := s.Placement("big")
	if b != 4 {
		t.Errorf("big at %d, want 4", b)
	}
}

func TestEvictionOfSmallerJobs(t *testing.T) {
	s := New()
	// Unit jobs across [0, 8) with wide windows; a size-8 job evicts them.
	for i := int64(0); i < 4; i++ {
		if _, err := s.Insert(Job{Name: fmt.Sprintf("u%d", i), Size: 1, Window: win(0, 32)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := s.Insert(Job{Name: "big", Size: 8, Window: win(0, 8)})
	if err != nil {
		t.Fatal(err)
	}
	// Evicted units that were inside [0,8) are relocated: cost = 1 + moved.
	if c.Reallocations < 2 {
		t.Errorf("cost %+v, expected evictions", c)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestNeverEvictsEqualOrLarger(t *testing.T) {
	s := New()
	if _, err := s.Insert(Job{Name: "a", Size: 4, Window: win(0, 4)}); err != nil {
		t.Fatal(err)
	}
	// Another size-4 job confined to the same block must fail, not evict.
	_, err := s.Insert(Job{Name: "b", Size: 4, Window: win(0, 4)})
	if err == nil || !strings.Contains(err.Error(), "no block") {
		t.Errorf("err = %v", err)
	}
}

func TestRelocationFailureReported(t *testing.T) {
	s := New()
	// Fill every slot of [0,4) with unit jobs pinned to their slots.
	for i := int64(0); i < 4; i++ {
		if _, err := s.Insert(Job{Name: fmt.Sprintf("p%d", i), Size: 1,
			Window: win(i, i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Insert(Job{Name: "big", Size: 4, Window: win(0, 4)})
	if err == nil {
		t.Error("impossible insert accepted")
	}
}

func TestDuplicateAndUnknown(t *testing.T) {
	s := New()
	if _, err := s.Insert(Job{Name: "a", Size: 1, Window: win(0, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(Job{Name: "a", Size: 1, Window: win(0, 2)}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := s.Delete("ghost"); err == nil {
		t.Error("unknown delete accepted")
	}
}

// The headline result: per-slide cost is O(k) (upper bound) while
// per-sweep cost is Ω(k) (Observation 13 lower bound) — matching bounds
// for the power-of-two regime.
func TestRunSlideMatchingBounds(t *testing.T) {
	for _, k := range []int64{4, 16, 64} {
		res, err := RunSlide(k, 2, 4)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.MinSweepCost < int(k) {
			t.Errorf("k=%d: min sweep cost %d below Ω(k)", k, res.MinSweepCost)
		}
		// O(k) upper bound: one slide touches at most k unit jobs plus the
		// big job itself.
		if res.MaxSlideCost > int(k)+1 {
			t.Errorf("k=%d: max slide cost %d exceeds O(k) bound %d", k, res.MaxSlideCost, k+1)
		}
	}
}

func TestRunSlideBadParams(t *testing.T) {
	if _, err := RunSlide(3, 2, 1); err == nil {
		t.Error("non-pow2 k accepted")
	}
	if _, err := RunSlide(4, 0, 1); err == nil {
		t.Error("gamma 0 accepted")
	}
}

// Property: random mixed-size churn keeps all invariants.
func TestRandomMixedChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var names []string
		id := 0
		for step := 0; step < 120; step++ {
			if len(names) > 20 && rng.Intn(2) == 0 {
				i := rng.Intn(len(names))
				if _, err := s.Delete(names[i]); err != nil {
					return false
				}
				names = append(names[:i], names[i+1:]...)
				continue
			}
			size := int64(1) << uint(rng.Intn(4)) // 1..8
			spanExp := uint(rng.Intn(3)) + uint(mathx.Log2Exact(size)) + 2
			span := int64(1) << spanExp
			start := mathx.AlignDown(rng.Int63n(512), span)
			name := fmt.Sprintf("m%d", id)
			id++
			_, err := s.Insert(Job{Name: name, Size: size, Window: win(start, start+span)})
			if err != nil {
				continue // tight random instance: fine
			}
			names = append(names, name)
			if s.SelfCheck() != nil {
				return false
			}
		}
		return s.SelfCheck() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
