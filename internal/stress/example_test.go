package stress_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stress"
	"repro/internal/workload"
)

// A clean stress run returns nil; a failure would carry a minimized
// reproducer via Shrink.
func ExampleRun() {
	failure := stress.Run(stress.Config{
		Factory:  func() sched.Scheduler { return core.New() },
		Workload: workload.Config{Seed: 42, Gamma: 8, Horizon: 512, Steps: 150},
	})
	fmt.Printf("clean run: %v\n", failure == nil)
	// Output:
	// clean run: true
}
