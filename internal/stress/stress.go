// Package stress provides a randomized stress harness for reallocating
// schedulers and a failing-sequence minimizer. When a long random run
// trips an invariant, the minimizer shrinks the request sequence to a
// small reproducer by repeatedly deleting insert/delete pairs that do
// not affect the failure — the debugging workflow this repository used
// while bringing up the reservation scheduler.
package stress

import (
	"fmt"

	"repro/internal/jobs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Factory builds a fresh scheduler under test.
type Factory func() sched.Scheduler

// Config parameterizes a stress run.
type Config struct {
	Factory  Factory
	Workload workload.Config
	// CheckEvery runs SelfCheck after every N requests (default 1).
	CheckEvery int
}

// Failure describes a stress failure, with the (possibly minimized)
// request sequence that reproduces it.
type Failure struct {
	Step int            // index of the failing request in Reqs
	Err  error          // the scheduler error or invariant violation
	Reqs []jobs.Request // sequence that reproduces the failure
}

func (f *Failure) Error() string {
	return fmt.Sprintf("stress: failure at step %d of %d: %v", f.Step, len(f.Reqs), f.Err)
}

// Run executes the configured random workload, self-checking as it goes.
// It returns nil on a clean run, or a Failure carrying the full failing
// prefix.
func Run(cfg Config) *Failure {
	if cfg.Factory == nil {
		panic("stress: nil factory")
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 1
	}
	g, err := workload.NewGenerator(cfg.Workload)
	if err != nil {
		return &Failure{Err: err}
	}
	reqs := g.Sequence()
	if step, err := replay(cfg.Factory, reqs, cfg.CheckEvery); err != nil {
		return &Failure{Step: step, Err: err, Reqs: reqs[:step+1]}
	}
	return nil
}

// replay runs the sequence with periodic self-checks, returning the index
// and error of the first failure.
func replay(factory Factory, reqs []jobs.Request, checkEvery int) (int, error) {
	s := factory()
	for i, r := range reqs {
		if _, err := sched.Apply(s, r); err != nil {
			return i, err
		}
		if (i+1)%checkEvery == 0 {
			if err := s.SelfCheck(); err != nil {
				return i, fmt.Errorf("invariant violation: %w", err)
			}
		}
	}
	if err := s.SelfCheck(); err != nil {
		return len(reqs) - 1, fmt.Errorf("final invariant violation: %w", err)
	}
	return -1, nil
}

// Fails reports whether the sequence reproduces a failure under the
// factory (any scheduler error or invariant violation, excluding
// well-formedness errors caused by the reduction itself).
func Fails(factory Factory, reqs []jobs.Request) bool {
	if !wellFormed(reqs) {
		return false
	}
	step, err := replay(factory, reqs, 1)
	return err != nil && step >= 0
}

// wellFormed checks that deletes target live names and inserts do not
// duplicate live names — reductions must preserve this or they would
// "fail" for uninteresting reasons.
func wellFormed(reqs []jobs.Request) bool {
	live := make(map[string]bool)
	for _, r := range reqs {
		switch r.Kind {
		case jobs.Insert:
			if live[r.Name] {
				return false
			}
			live[r.Name] = true
		case jobs.Delete:
			if !live[r.Name] {
				return false
			}
			delete(live, r.Name)
		}
	}
	return true
}

// Shrink minimizes a failing request sequence: it repeatedly removes
// whole insert/delete lifecycles (and truncates the tail) while the
// sequence still fails, until no single removal keeps it failing. The
// result is a locally minimal reproducer.
func Shrink(factory Factory, reqs []jobs.Request) []jobs.Request {
	cur := append([]jobs.Request{}, reqs...)
	if !Fails(factory, cur) {
		return cur // not failing: nothing to shrink
	}
	// First truncate to the failing prefix.
	if step, err := replay(factory, cur, 1); err != nil && step >= 0 {
		cur = cur[:step+1]
	}
	for {
		improved := false
		// Try removing each job lifecycle, most recent first (later
		// lifecycles are more likely incidental).
		names := lifecycleNames(cur)
		for i := len(names) - 1; i >= 0; i-- {
			candidate := removeLifecycle(cur, names[i])
			if len(candidate) < len(cur) && Fails(factory, candidate) {
				cur = candidate
				improved = true
			}
		}
		// Then re-truncate to the failing prefix.
		if step, err := replay(factory, cur, 1); err != nil && step+1 < len(cur) {
			cur = cur[:step+1]
			improved = true
		}
		if !improved {
			return cur
		}
	}
}

// lifecycleNames lists distinct job names in first-appearance order.
func lifecycleNames(reqs []jobs.Request) []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range reqs {
		if !seen[r.Name] {
			seen[r.Name] = true
			out = append(out, r.Name)
		}
	}
	return out
}

// removeLifecycle drops every request mentioning the given name.
func removeLifecycle(reqs []jobs.Request, name string) []jobs.Request {
	out := make([]jobs.Request, 0, len(reqs))
	for _, r := range reqs {
		if r.Name != name {
			out = append(out, r)
		}
	}
	return out
}
