package stress

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/naive"
	"repro/internal/sched"
	"repro/internal/workload"
)

func coreFactory() sched.Scheduler { return core.New() }

func TestCleanRun(t *testing.T) {
	f := Run(Config{
		Factory:  coreFactory,
		Workload: workload.Config{Seed: 1, Gamma: 8, Horizon: 512, Steps: 200},
	})
	if f != nil {
		t.Fatalf("clean workload failed: %v", f)
	}
}

func TestCleanRunNaive(t *testing.T) {
	f := Run(Config{
		Factory:    func() sched.Scheduler { return naive.New() },
		Workload:   workload.Config{Seed: 2, Gamma: 8, Horizon: 512, Steps: 200},
		CheckEvery: 5,
	})
	if f != nil {
		t.Fatalf("clean workload failed: %v", f)
	}
}

func TestWellFormed(t *testing.T) {
	good := []jobs.Request{
		jobs.InsertReq("a", 0, 4), jobs.DeleteReq("a"), jobs.InsertReq("a", 0, 4),
	}
	if !wellFormed(good) {
		t.Error("good sequence rejected")
	}
	if wellFormed([]jobs.Request{jobs.DeleteReq("x")}) {
		t.Error("delete of unknown accepted")
	}
	if wellFormed([]jobs.Request{jobs.InsertReq("a", 0, 4), jobs.InsertReq("a", 0, 4)}) {
		t.Error("duplicate insert accepted")
	}
}

// brokenScheduler fails when a configurable number of jobs with span 1
// are simultaneously active — a stand-in for a subtle invariant bug.
type brokenScheduler struct {
	*naive.Scheduler
	span1 int
}

func newBroken() *brokenScheduler { return &brokenScheduler{Scheduler: naive.New()} }

func (b *brokenScheduler) Insert(j jobs.Job) (metrics.Cost, error) {
	c, err := b.Scheduler.Insert(j)
	if err == nil && j.Window.Span() == 1 {
		b.span1++
		if b.span1 >= 3 {
			return c, errors.New("synthetic bug: three span-1 jobs")
		}
	}
	return c, err
}

func (b *brokenScheduler) Delete(name string) (metrics.Cost, error) {
	// Track span-1 deletions via the job list before deleting.
	for _, j := range b.Scheduler.Jobs() {
		if j.Name == name && j.Window.Span() == 1 {
			b.span1--
		}
	}
	return b.Scheduler.Delete(name)
}

func TestShrinkFindsMinimalReproducer(t *testing.T) {
	factory := func() sched.Scheduler { return newBroken() }

	// A long sequence with lots of irrelevant jobs and three span-1
	// inserts buried inside.
	var reqs []jobs.Request
	for i := 0; i < 40; i++ {
		span := int64(4)
		start := int64(i%8) * 4
		reqs = append(reqs, jobs.InsertReq(fmt.Sprintf("noise%02d", i), start, start+span))
		if i%3 == 0 {
			reqs = append(reqs, jobs.DeleteReq(fmt.Sprintf("noise%02d", i)))
		}
		if i == 10 || i == 20 || i == 30 {
			reqs = append(reqs, jobs.InsertReq(fmt.Sprintf("tiny%02d", i), int64(i), int64(i)+1))
		}
	}
	if !Fails(factory, reqs) {
		t.Fatal("synthetic bug not triggered by the full sequence")
	}
	small := Shrink(factory, reqs)
	if !Fails(factory, small) {
		t.Fatal("shrunk sequence no longer fails")
	}
	// Minimal reproducer: exactly the three span-1 inserts.
	if len(small) != 3 {
		t.Errorf("shrunk to %d requests, want 3: %v", len(small), small)
	}
	for _, r := range small {
		if r.Kind != jobs.Insert || r.Window.Span() != 1 {
			t.Errorf("non-essential request survived shrinking: %v", r)
		}
	}
}

func TestShrinkOnPassingSequence(t *testing.T) {
	reqs := []jobs.Request{jobs.InsertReq("a", 0, 4)}
	out := Shrink(coreFactory, reqs)
	if len(out) != 1 {
		t.Errorf("passing sequence altered: %v", out)
	}
}

func TestFailsRejectsMalformed(t *testing.T) {
	if Fails(coreFactory, []jobs.Request{jobs.DeleteReq("ghost")}) {
		t.Error("malformed sequence reported as interesting failure")
	}
}

func TestRunPanicsWithoutFactory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil factory accepted")
		}
	}()
	Run(Config{})
}
