package trace_test

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/trace"
)

// Record writes an annotated JSONL trace; Replay verifies a fresh
// scheduler reproduces exactly the recorded costs.
func ExampleRecord() {
	reqs := []jobs.Request{
		jobs.InsertReq("a", 0, 64),
		jobs.InsertReq("b", 0, 64),
		jobs.DeleteReq("a"),
	}
	var buf bytes.Buffer
	if _, err := trace.Record(core.New(), reqs, &buf); err != nil {
		panic(err)
	}
	events, err := trace.ReadEvents(&buf)
	if err != nil {
		panic(err)
	}
	if err := trace.Replay(core.New(), events); err != nil {
		panic(err)
	}
	fmt.Printf("replayed %d events, costs matched\n", len(events))
	// Output:
	// replayed 3 events, costs matched
}
