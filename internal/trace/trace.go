// Package trace serializes request sequences and per-request costs as
// JSON Lines, so experiment runs are reproducible artifacts: a recorded
// trace can be stored, diffed, and replayed against any scheduler.
//
// Format: one JSON object per line.
//
//	{"op":"insert","name":"j1","start":0,"end":64}
//	{"op":"delete","name":"j1"}
//
// An annotated trace (written by Record) adds the observed costs:
//
//	{"op":"insert","name":"j1","start":0,"end":64,"reallocs":1,"migrations":0}
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Event is one line of a trace: a request plus (optionally) its cost.
type Event struct {
	Op    string `json:"op"`              // "insert" or "delete"
	Name  string `json:"name"`            // job name
	Start int64  `json:"start,omitempty"` // window start (insert only)
	End   int64  `json:"end,omitempty"`   // window end (insert only)

	Reallocs   *int `json:"reallocs,omitempty"`   // observed cost, if annotated
	Migrations *int `json:"migrations,omitempty"` // observed cost, if annotated
}

// FromRequest converts a request to an (unannotated) event.
func FromRequest(r jobs.Request) Event {
	e := Event{Name: r.Name}
	switch r.Kind {
	case jobs.Insert:
		e.Op = "insert"
		e.Start = r.Window.Start
		e.End = r.Window.End
	case jobs.Delete:
		e.Op = "delete"
	}
	return e
}

// Request converts the event back to a request.
func (e Event) Request() (jobs.Request, error) {
	switch e.Op {
	case "insert":
		r := jobs.InsertReq(e.Name, e.Start, e.End)
		if err := r.Validate(); err != nil {
			return jobs.Request{}, err
		}
		return r, nil
	case "delete":
		r := jobs.DeleteReq(e.Name)
		return r, r.Validate()
	default:
		return jobs.Request{}, fmt.Errorf("trace: unknown op %q", e.Op)
	}
}

// Write serializes requests as JSONL.
func Write(w io.Writer, reqs []jobs.Request) error {
	enc := json.NewEncoder(w)
	for i, r := range reqs {
		if err := enc.Encode(FromRequest(r)); err != nil {
			return fmt.Errorf("trace: writing request %d: %w", i, err)
		}
	}
	return nil
}

// Read parses a JSONL trace into requests (cost annotations, if present,
// are ignored; use ReadEvents to keep them).
func Read(r io.Reader) ([]jobs.Request, error) {
	events, err := ReadEvents(r)
	if err != nil {
		return nil, err
	}
	out := make([]jobs.Request, 0, len(events))
	for i, e := range events {
		req, err := e.Request()
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", i+1, err)
		}
		out = append(out, req)
	}
	return out, nil
}

// ReadEvents parses a JSONL trace preserving annotations. Blank lines
// and lines starting with '#' are skipped.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 || raw[0] == '#' {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// Record replays the requests against the scheduler, writing an
// annotated trace of every served request to w. It stops at the first
// scheduler error, returning how many requests were served.
func Record(s sched.Scheduler, reqs []jobs.Request, w io.Writer) (int, error) {
	enc := json.NewEncoder(w)
	for i, r := range reqs {
		c, err := sched.Apply(s, r)
		if err != nil {
			return i, fmt.Errorf("trace: request %d (%s): %w", i, r, err)
		}
		e := FromRequest(r)
		re, mi := c.Reallocations, c.Migrations
		e.Reallocs, e.Migrations = &re, &mi
		if err := enc.Encode(e); err != nil {
			return i, fmt.Errorf("trace: writing request %d: %w", i, err)
		}
	}
	return len(reqs), nil
}

// Replay runs an annotated trace against a scheduler and compares the
// observed costs with the recorded ones, returning the first mismatch.
// Unannotated events are replayed without comparison. This is the
// regression check for cost accounting.
func Replay(s sched.Scheduler, events []Event) error {
	for i, e := range events {
		r, err := e.Request()
		if err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		c, err := sched.Apply(s, r)
		if err != nil {
			return fmt.Errorf("trace: event %d (%s): %w", i, r, err)
		}
		if e.Reallocs != nil && *e.Reallocs != c.Reallocations {
			return fmt.Errorf("trace: event %d (%s): recorded %d reallocations, observed %d",
				i, r, *e.Reallocs, c.Reallocations)
		}
		if e.Migrations != nil && *e.Migrations != c.Migrations {
			return fmt.Errorf("trace: event %d (%s): recorded %d migrations, observed %d",
				i, r, *e.Migrations, c.Migrations)
		}
	}
	return nil
}

// Costs extracts the annotated costs of a trace into a metrics recorder
// (events without annotations contribute zero cost).
func Costs(events []Event) *metrics.Recorder {
	rec := metrics.NewRecorder()
	active := 0
	for _, e := range events {
		if e.Op == "insert" {
			active++
		} else if e.Op == "delete" {
			active--
		}
		var c metrics.Cost
		if e.Reallocs != nil {
			c.Reallocations = *e.Reallocs
		}
		if e.Migrations != nil {
			c.Migrations = *e.Migrations
		}
		rec.Record(c, active)
	}
	return rec
}
