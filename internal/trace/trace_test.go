package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	reqs := []jobs.Request{
		jobs.InsertReq("a", 0, 64),
		jobs.InsertReq("b", 32, 96),
		jobs.DeleteReq("a"),
	}
	var buf bytes.Buffer
	if err := Write(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reqs) {
		t.Fatalf("round trip length %d", len(back))
	}
	for i := range reqs {
		if back[i] != reqs[i] {
			t.Errorf("request %d: %v != %v", i, back[i], reqs[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := strings.NewReader(`# a comment

{"op":"insert","name":"x","start":0,"end":8}
`)
	reqs, err := Read(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0].Name != "x" {
		t.Errorf("got %v", reqs)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"op":"explode","name":"x"}` + "\n")); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := Read(strings.NewReader(`{"op":"insert","name":"x","start":5,"end":5}` + "\n")); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := Read(strings.NewReader(`{"op":"insert","name":"","start":0,"end":1}` + "\n")); err == nil {
		t.Error("nameless accepted")
	}
}

func TestRecordAndReplay(t *testing.T) {
	g, err := workload.NewGenerator(workload.Config{Seed: 5, Gamma: 8, Horizon: 512, Steps: 120})
	if err != nil {
		t.Fatal(err)
	}
	reqs := g.Sequence()

	var buf bytes.Buffer
	n, err := Record(core.New(), reqs, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(reqs) {
		t.Fatalf("recorded %d of %d", n, len(reqs))
	}

	events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(reqs) {
		t.Fatalf("parsed %d events", len(events))
	}
	// Costs must be annotated.
	if events[0].Reallocs == nil || *events[0].Reallocs < 1 {
		t.Errorf("first insert not annotated: %+v", events[0])
	}

	// Replay against a fresh identical scheduler: costs must match
	// exactly (the scheduler is deterministic).
	if err := Replay(core.New(), events); err != nil {
		t.Fatal(err)
	}
}

func TestReplayDetectsMismatch(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(core.New(), []jobs.Request{jobs.InsertReq("a", 0, 64)}, &buf); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bogus := 999
	events[0].Reallocs = &bogus
	if err := Replay(core.New(), events); err == nil {
		t.Error("cost mismatch not detected")
	}
}

func TestCostsExtraction(t *testing.T) {
	one, zero := 3, 0
	events := []Event{
		{Op: "insert", Name: "a", Start: 0, End: 8, Reallocs: &one, Migrations: &zero},
		{Op: "delete", Name: "a"},
	}
	rec := Costs(events)
	if rec.Len() != 2 {
		t.Fatalf("len %d", rec.Len())
	}
	if rec.Summary().TotalReallocations != 3 {
		t.Errorf("total %d", rec.Summary().TotalReallocations)
	}
}

func TestEventRequestDelete(t *testing.T) {
	e := Event{Op: "delete", Name: "z"}
	r, err := e.Request()
	if err != nil || r.Kind != jobs.Delete || r.Name != "z" {
		t.Errorf("delete round trip: %v %v", r, err)
	}
}
